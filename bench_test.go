package silcfm

// One benchmark per table/figure of the paper's evaluation (§IV-V), plus
// ablation benches for SILC-FM's design choices. Each bench runs a
// laptop-scale version of the experiment (4 cores, NM 4 MiB / FM 16 MiB,
// footprints scaled 1/8) and reports the headline metric of that figure
// via b.ReportMetric; cmd/silcfm-experiments regenerates the full-scale
// versions recorded in EXPERIMENTS.md.

import (
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/dram"
	"silcfm/internal/harness"
	"silcfm/internal/mem"
	"silcfm/internal/sim"
)

// benchExp is the shared laptop-scale experiment configuration.
func benchExp(workloads ...string) ExperimentOptions {
	return ExperimentOptions{
		InstrPerCore:      250_000,
		Workloads:         workloads,
		Cores:             4,
		NMCapacity:        4 << 20,
		FMCapacity:        16 << 20,
		FootprintScaleDen: 8,
		Parallelism:       2,
	}
}

// BenchmarkTableISwapOps drives the six swap scenarios of Table I through
// the SILC-FM controller as fast as the functional model allows.
func BenchmarkTableISwapOps(b *testing.B) {
	m := config.Small()
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	ctl, err := harness.NewController(m, sys)
	if err != nil {
		b.Fatal(err)
	}
	nmCap := m.NM.Capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate NM- and FM-space addresses over a few congruence sets
		// so all Table I rows occur.
		var pa uint64
		if i&1 == 0 {
			pa = uint64(i%64) * 2048
		} else {
			pa = nmCap + uint64(i%256)*2048 + uint64(i%32)*64
		}
		ctl.Handle(&mem.Access{PC: uint64(i % 16), PAddr: pa})
		if i%512 == 0 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkTableIIPeakBandwidth saturates both devices with streaming reads
// and reports the achieved NM:FM bandwidth ratio (Table II: 4.0).
func BenchmarkTableIIPeakBandwidth(b *testing.B) {
	measure := func(cfg config.DRAMConfig) float64 {
		eng := sim.NewEngine()
		sys := mem.NewSystem(config.Machine{NM: cfg, FM: cfg}, eng)
		dev := sys.NM
		n := 20000
		for i := 0; i < n; i++ {
			dev.Submit(dram.Request{Addr: uint64(i) * 64, Bytes: 64})
		}
		eng.Run()
		return float64(n*64) / float64(eng.Now()) // bytes per CPU cycle
	}
	var nmBPC, fmBPC float64
	for i := 0; i < b.N; i++ {
		nmBPC = measure(config.HBM(64 << 20))
		fmBPC = measure(config.DDR3(64 << 20))
	}
	b.ReportMetric(nmBPC/fmBPC, "NM:FM-ratio")
	b.ReportMetric(nmBPC*float64(config.CPUFreqMHz)*1e6/1e9, "NM-GB/s")
	b.ReportMetric(fmBPC*float64(config.CPUFreqMHz)*1e6/1e9, "FM-GB/s")
}

// BenchmarkTableIIIWorkloads measures every workload's MPKI and footprint
// through the cache hierarchy (Table III).
func BenchmarkTableIIIWorkloads(b *testing.B) {
	var tbl *Table
	var err error
	for i := 0; i < b.N; i++ {
		o := benchExp()
		o.InstrPerCore = 100_000 // all 14 workloads; keep the sweep tractable
		tbl, err = TableIII(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkFigure6Breakdown regenerates the feature-breakdown figure and
// reports the total geomean improvement of full SILC-FM over static random
// placement (paper: +82%).
func BenchmarkFigure6Breakdown(b *testing.B) {
	var tbl *Table
	for i := 0; i < b.N; i++ {
		f6, t, err := harness.Figure6(benchExp("milc", "gems", "mcf", "xalanc").expConfig())
		if err != nil {
			b.Fatal(err)
		}
		tbl = wrap(t)
		if r := f6.GeoMeanSpeedup("rand"); r > 0 {
			b.ReportMetric(f6.GeoMeanSpeedup("+bypass")/r-1, "total-over-static")
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkFigure7Schemes regenerates the scheme comparison and reports
// SILC-FM's geomean advantage over the best alternative (paper: +36% over
// CAMEO).
func BenchmarkFigure7Schemes(b *testing.B) {
	var tbl *Table
	for i := 0; i < b.N; i++ {
		sw, t, err := harness.Figure7(benchExp("milc", "lbm", "mcf", "dealII").expConfig())
		if err != nil {
			b.Fatal(err)
		}
		tbl = wrap(t)
		silc := sw.GeoMeanSpeedup("silc")
		best := 0.0
		for _, v := range harness.Figure7Variants() {
			if v.Label != "silc" {
				if g := sw.GeoMeanSpeedup(v.Label); g > best {
					best = g
				}
			}
		}
		if best > 0 {
			b.ReportMetric(silc/best-1, "over-best-alt")
		}
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkFigure8BandwidthSplit regenerates the demand-bandwidth split and
// reports SILC-FM's mean NM fraction (paper: 0.76, ideal 0.80).
func BenchmarkFigure8BandwidthSplit(b *testing.B) {
	var tbl *Table
	for i := 0; i < b.N; i++ {
		sw, _, err := harness.Figure7(benchExp("milc", "lbm").expConfig())
		if err != nil {
			b.Fatal(err)
		}
		tbl = wrap(harness.Figure8(sw))
		s := 0.0
		for _, wl := range []string{"milc", "lbm"} {
			s += sw.Runs["silc"][wl].Mem.DemandNMFraction()
		}
		b.ReportMetric(s/2, "silc-NM-fraction")
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkFigure9Capacity sweeps the NM:FM ratio (paper Figure 9) and
// reports SILC-FM's geomean at the smallest (1/16) capacity.
func BenchmarkFigure9Capacity(b *testing.B) {
	var tbl *Table
	for i := 0; i < b.N; i++ {
		t, data, err := harness.Figure9(benchExp("milc", "lbm").expConfig())
		if err != nil {
			b.Fatal(err)
		}
		tbl = wrap(t)
		b.ReportMetric(data[16]["silc"], "silc-geomean-1/16")
		b.ReportMetric(data[4]["silc"], "silc-geomean-1/4")
	}
	b.Log("\n" + tbl.String())
}

// BenchmarkHeadlineNumbers derives the abstract's numbers from Figure 6+7
// sweeps (paper: +82% over static, +36% over CAMEO, 13% EDP reduction).
func BenchmarkHeadlineNumbers(b *testing.B) {
	var h *Headline
	var err error
	for i := 0; i < b.N; i++ {
		h, err = ComputeHeadline(benchExp("milc", "lbm", "mcf"))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(h.TotalOverStatic, "total-over-static")
	b.ReportMetric(h.OverBestAlt, "over-best-alt")
	b.ReportMetric(h.EDPReduction, "EDP-reduction")
	b.Log("\n" + h.Text)
}

// --- Ablations: the design choices DESIGN.md calls out ---

func ablationRun(b *testing.B, mutate func(*Features)) float64 {
	b.Helper()
	f := FullFeatures()
	mutate(&f)
	o := tiny(SILCFM, "milc")
	o.InstrPerCore = 300_000
	o.SILC = &f
	r, err := Run(o)
	if err != nil {
		b.Fatal(err)
	}
	return float64(r.Cycles)
}

// BenchmarkAblationHistory measures the bit vector history table's
// contribution (§III-A).
func BenchmarkAblationHistory(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = ablationRun(b, func(f *Features) {})
		without = ablationRun(b, func(f *Features) { f.History = false })
	}
	b.ReportMetric(without/with-1, "history-gain")
}

// BenchmarkAblationPredictor measures the way/location predictor's latency
// benefit (§III-F).
func BenchmarkAblationPredictor(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = ablationRun(b, func(f *Features) {})
		without = ablationRun(b, func(f *Features) { f.Predictor = false })
	}
	b.ReportMetric(without/with-1, "predictor-gain")
}

// BenchmarkAblationAssociativity sweeps 1/2/4 ways (§III-C).
func BenchmarkAblationAssociativity(b *testing.B) {
	var w1, w2, w4 float64
	for i := 0; i < b.N; i++ {
		w1 = ablationRun(b, func(f *Features) { f.Ways = 1 })
		w2 = ablationRun(b, func(f *Features) { f.Ways = 2 })
		w4 = ablationRun(b, func(f *Features) { f.Ways = 4 })
	}
	b.ReportMetric(w1/w4-1, "4way-over-1way")
	b.ReportMetric(w2/w4-1, "4way-over-2way")
}

// BenchmarkAblationThreshold sweeps the locking threshold (§III-C: the
// paper found 50 best at its scale; ours is 16).
func BenchmarkAblationThreshold(b *testing.B) {
	run := func(th uint32) float64 {
		o := tiny(SILCFM, "milc")
		o.InstrPerCore = 300_000
		o.Tuning = &Tuning{HotThreshold: th}
		r, err := Run(o)
		if err != nil {
			b.Fatal(err)
		}
		return float64(r.Cycles)
	}
	var lo, mid, hi float64
	for i := 0; i < b.N; i++ {
		lo, mid, hi = run(4), run(16), run(48)
	}
	b.ReportMetric(lo/mid, "th4-vs-th16")
	b.ReportMetric(hi/mid, "th48-vs-th16")
}

// BenchmarkAblationBypassTarget sweeps the bypass operating point (§III-E:
// 0.8 matches the 4:1 bandwidth ratio; 1.0 disables balancing).
func BenchmarkAblationBypassTarget(b *testing.B) {
	run := func(target float64) float64 {
		o := tiny(SILCFM, "milc")
		o.InstrPerCore = 300_000
		o.Tuning = &Tuning{BypassTarget: target}
		r, err := Run(o)
		if err != nil {
			b.Fatal(err)
		}
		return float64(r.Cycles)
	}
	var t6, t8, t10 float64
	for i := 0; i < b.N; i++ {
		t6, t8, t10 = run(0.6), run(0.8), run(0.9999)
	}
	b.ReportMetric(t6/t8, "t0.6-vs-t0.8")
	b.ReportMetric(t10/t8, "t1.0-vs-t0.8")
}
