#!/bin/sh
# Local CI gate: formatting, vet, build, and the test suite under the race
# detector. Run from the repo root.
set -eu

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

# Fast-fail stage: the observability packages (stats counters, memory-system
# attribution, telemetry writers) gate everything downstream and their tests
# are quick — vet and race-test them first so broken instrumentation fails in
# seconds, not after the full sweep-driven suite.
go vet ./internal/stats ./internal/mem ./internal/telemetry
go test -race ./internal/stats ./internal/mem ./internal/telemetry

go vet ./...
go build ./...
go test -race ./...
