#!/bin/sh
# Local CI gate: formatting, vet, build, bench-smoke regression diff, and
# the test suite under the race detector. Run from the repo root.
#
#   ./ci.sh          # everything
#   ./ci.sh bench    # only the bench-smoke + manifest-diff stage
set -eu

# Bench-smoke stage: rerun the short manifest suite and diff its
# deterministic counters against the committed trajectory baseline. Any
# counter drift fails here in seconds — a whole-system correctness tripwire
# that runs before the slow race-detector suite. Host-timing metrics are
# skipped (-noise 0): the baseline was produced on a different machine.
bench_smoke() {
	go build -o /tmp/silcfm-bench ./cmd/silcfm-bench
	/tmp/silcfm-bench -short -quiet -out /tmp/bench_smoke.json
	/tmp/silcfm-bench -diff -subset -noise 0 BENCH_PR4.json /tmp/bench_smoke.json
}

if [ "${1:-}" = "bench" ]; then
	bench_smoke
	exit 0
fi

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

# Fast-fail stage: the observability packages (stats counters, memory-system
# attribution, manifest encoding, telemetry writers) gate everything
# downstream and their tests are quick — vet and race-test them first so
# broken instrumentation fails in seconds, not after the full sweep-driven
# suite.
go vet ./internal/stats ./internal/mem ./internal/telemetry ./internal/manifest
go test -race ./internal/stats ./internal/mem ./internal/telemetry ./internal/manifest

go vet ./...
go build ./...
bench_smoke
go test -race ./...
