#!/bin/sh
# Local CI gate: formatting, vet, build, and the test suite under the race
# detector. Run from the repo root.
set -eu

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

go vet ./...
go build ./...
go test -race ./...
