#!/bin/sh
# Local CI gate: formatting, vet, build, bench-smoke regression diff,
# live-observability endpoint checks, and the test suite under the race
# detector. Run from the repo root.
#
#   ./ci.sh          # everything
#   ./ci.sh bench    # only the bench-smoke + manifest-diff stage
#   ./ci.sh perf     # only the perf-regression stage (speed/alloc bands)
#   ./ci.sh live     # only the live-server endpoint + inertness stage
#   ./ci.sh postmortem # only the flight-recorder capture/determinism/inertness stage
#   ./ci.sh exemplars # only the tail-exemplar capture/determinism/inertness stage
#   ./ci.sh history  # only the cross-PR trajectory-report stage
set -eu

# Bench-smoke stage: rerun the short manifest suite and diff its
# deterministic counters against the committed trajectory baseline. Any
# counter drift fails here in seconds — a whole-system correctness tripwire
# that runs before the slow race-detector suite. Host-timing metrics are
# skipped (-noise 0): the baseline was produced on a different machine.
bench_smoke() {
	go build -o /tmp/silcfm-bench ./cmd/silcfm-bench
	/tmp/silcfm-bench -short -quiet -out /tmp/bench_smoke.json
	/tmp/silcfm-bench -diff -subset -noise 0 BENCH_PR10.json /tmp/bench_smoke.json
}

# Perf-regression stage: rerun the short suite best-of-5 and gate the
# direction-aware host metrics against the committed PR6 baseline. The speed
# band is generous (-speed-noise 0.6: CI machines differ and host timing
# jitters ±50% even best-of-5) — it exists to catch order-of-magnitude
# regressions like an allocation or scan creeping back into the inner loop,
# not 10% wobbles. The alloc band is tight (-alloc-noise 0.25): steady-state
# allocation counts are nearly deterministic, so any real leak trips it.
# -noise 0 still skips wall_seconds, and sim counters stay exact as always.
perf_gate() {
	go build -o /tmp/silcfm-bench ./cmd/silcfm-bench
	/tmp/silcfm-bench -short -quiet -reps 5 -out /tmp/bench_perf.json
	/tmp/silcfm-bench -diff -subset -noise 0 -speed-noise 0.6 -alloc-noise 0.25 \
		BENCH_PR10.json /tmp/bench_perf.json
}

# Live-observability stage: run a short simulation with the embedded HTTP
# server, validate the dashboard, /api/runs, /events, /metrics, /healthz
# and /progress while it lingers, then rerun the identical simulation (a)
# with no server and (b) with the server plus three concurrent SSE
# subscribers draining /events throughout the run, and assert every
# deterministic counter (incidents included) is byte-identical across all
# three legs — the observability layer, streaming included, must be
# provably inert.
live_smoke() {
	go build -o /tmp/silcfm-bench ./cmd/silcfm-bench
	go build -o /tmp/silcfm-sim ./cmd/silcfm-sim
	go build -o /tmp/livecheck ./internal/tools/livecheck
	rm -f /tmp/live_on.json /tmp/live_stderr.log
	/tmp/silcfm-sim -workload milc -instr 100000 -scale-instr=false \
		-nm 8 -fm 32 -footscale 16 \
		-listen 127.0.0.1:0 -listen-linger 60s \
		-manifest-out /tmp/live_on.json >/dev/null 2>/tmp/live_stderr.log &
	sim_pid=$!
	trap 'kill $sim_pid 2>/dev/null || true' EXIT
	# The sim announces "live: http://ADDR" on stderr at startup and writes
	# the manifest when the run completes (the server then lingers).
	url=""
	for _ in $(seq 1 300); do
		url=$(sed -n 's/^live: //p' /tmp/live_stderr.log 2>/dev/null | head -1)
		[ -n "$url" ] && [ -s /tmp/live_on.json ] && break
		url=""
		sleep 0.1
	done
	if [ -z "$url" ]; then
		echo "live_smoke: server never came up or run never finished" >&2
		cat /tmp/live_stderr.log >&2
		exit 1
	fi
	/tmp/livecheck "$url"
	kill $sim_pid 2>/dev/null || true
	wait $sim_pid 2>/dev/null || true
	trap - EXIT
	# No-server leg: identical flags minus -listen.
	/tmp/silcfm-sim -workload milc -instr 100000 -scale-instr=false \
		-nm 8 -fm 32 -footscale 16 \
		-manifest-out /tmp/live_off.json >/dev/null
	/tmp/silcfm-bench -diff -noise 0 /tmp/live_off.json /tmp/live_on.json
	# Subscriber leg: same run with three /events streams attached before
	# the first instruction dispatches.
	/tmp/silcfm-sim -workload milc -instr 100000 -scale-instr=false \
		-nm 8 -fm 32 -footscale 16 \
		-listen 127.0.0.1:0 -sse-subs 3 \
		-manifest-out /tmp/live_subs.json >/dev/null 2>&1
	/tmp/silcfm-bench -diff -noise 0 /tmp/live_off.json /tmp/live_subs.json
}

# Postmortem stage: run a thrashy configuration that opens incidents, and
# prove the flight recorder's three contracts end to end: (1) it captures —
# a bundle file appears and silcfm-postmortem renders a report naming the
# trigger; (2) it is deterministic — a repeat run produces a byte-identical
# bundle; (3) it is inert — the manifest of a recorder-on run is
# byte-identical to a -flightrec=false run (the recorder may observe the
# simulation but never perturb it).
postmortem_smoke() {
	go build -o /tmp/silcfm-sim ./cmd/silcfm-sim
	go build -o /tmp/silcfm-postmortem ./cmd/silcfm-postmortem
	rm -rf /tmp/pm_a /tmp/pm_b
	/tmp/silcfm-sim -workload milc -instr 100000 -scale-instr=false \
		-nm 8 -fm 32 -footscale 16 \
		-postmortem-out /tmp/pm_a -manifest-out /tmp/pm_on.json >/dev/null
	if [ ! -s /tmp/pm_a/bundle-000.json ]; then
		echo "postmortem_smoke: thrash config produced no bundle" >&2
		exit 1
	fi
	/tmp/silcfm-postmortem -o /tmp/pm_report.md /tmp/pm_a
	grep -q '^# Postmortem: ' /tmp/pm_report.md
	grep -q 'Evidence window' /tmp/pm_report.md
	# Determinism: an identical rerun must reproduce every bundle byte.
	/tmp/silcfm-sim -workload milc -instr 100000 -scale-instr=false \
		-nm 8 -fm 32 -footscale 16 \
		-postmortem-out /tmp/pm_b >/dev/null
	for f in /tmp/pm_a/bundle-*.json; do
		cmp "$f" "/tmp/pm_b/$(basename "$f")"
	done
	# Inertness: recorder off must leave the simulation manifest untouched.
	/tmp/silcfm-sim -workload milc -instr 100000 -scale-instr=false \
		-nm 8 -fm 32 -footscale 16 \
		-flightrec=false -manifest-out /tmp/pm_off.json >/dev/null
	go build -o /tmp/silcfm-bench ./cmd/silcfm-bench
	/tmp/silcfm-bench -diff -noise 0 /tmp/pm_off.json /tmp/pm_on.json
}

# Tail-exemplar stage: run the capacity-pressured thrash configuration and
# prove the exemplar recorder's contracts end to end: (1) it captures — the
# printed report closes with a "tail exemplars:" waterfall and
# -exemplars-out writes the worst-K records as JSONL; (2) it is
# deterministic — an identical rerun reproduces the JSONL byte-for-byte;
# (3) it is inert — a -exemplars=false run's manifest is byte-identical to
# the recorder-on manifest everywhere outside the sim.exemplars leaf itself.
exemplars_smoke() {
	go build -o /tmp/silcfm-sim ./cmd/silcfm-sim
	/tmp/silcfm-sim -workload milc -instr 100000 -scale-instr=false \
		-nm 8 -fm 32 -footscale 16 \
		-exemplars-out /tmp/ex_a.jsonl -manifest-out /tmp/ex_on.json >/tmp/ex_report.txt
	grep -q '^tail exemplars:' /tmp/ex_report.txt
	grep -q 'max=' /tmp/ex_report.txt
	if [ ! -s /tmp/ex_a.jsonl ]; then
		echo "exemplars_smoke: run captured no exemplars" >&2
		exit 1
	fi
	# Determinism: an identical rerun must reproduce every JSONL byte.
	/tmp/silcfm-sim -workload milc -instr 100000 -scale-instr=false \
		-nm 8 -fm 32 -footscale 16 \
		-exemplars-out /tmp/ex_b.jsonl >/dev/null
	cmp /tmp/ex_a.jsonl /tmp/ex_b.jsonl
	# Inertness: recorder off must change nothing but its own manifest leaf.
	/tmp/silcfm-sim -workload milc -instr 100000 -scale-instr=false \
		-nm 8 -fm 32 -footscale 16 \
		-exemplars=false -manifest-out /tmp/ex_off.json >/dev/null
	python3 - /tmp/ex_on.json /tmp/ex_off.json <<'EOF'
import json, sys
on, off = (json.load(open(p)) for p in sys.argv[1:3])
for e in off["entries"]:
    if "exemplars" in e["sim"]:
        sys.exit("exemplars_smoke: -exemplars=false manifest still has sim.exemplars")
for m in (on, off):
    for e in m["entries"]:
        e["sim"].pop("exemplars", None)
        e["host"] = {}
if on != off:
    sys.exit("exemplars_smoke: on/off manifests differ outside the exemplars leaf")
EOF
}

# Trajectory stage: regenerate the cross-PR trajectory report from the
# committed BENCH_PR*.json baselines and require it to match the committed
# TRAJECTORY.md byte-for-byte. The report is a pure function of the input
# manifests, so any drift means either the baselines changed without the
# report (regenerate it) or the report generator changed behavior.
history_smoke() {
	go build -o /tmp/silcfm-bench ./cmd/silcfm-bench
	/tmp/silcfm-bench -history -history-md /tmp/trajectory.md 'BENCH_PR*.json' >/dev/null
	if ! diff -u TRAJECTORY.md /tmp/trajectory.md; then
		echo "history_smoke: TRAJECTORY.md is stale; regenerate with:" >&2
		echo "  go run ./cmd/silcfm-bench -history -history-md TRAJECTORY.md 'BENCH_PR*.json'" >&2
		exit 1
	fi
	# Explicit ordered paths must agree with the glob expansion.
	/tmp/silcfm-bench -history BENCH_PR4.json BENCH_PR5.json BENCH_PR6.json BENCH_PR9.json BENCH_PR10.json >/tmp/trajectory_explicit.md
	diff -u TRAJECTORY.md /tmp/trajectory_explicit.md
}

if [ "${1:-}" = "bench" ]; then
	bench_smoke
	exit 0
fi
if [ "${1:-}" = "perf" ]; then
	perf_gate
	exit 0
fi
if [ "${1:-}" = "live" ]; then
	live_smoke
	exit 0
fi
if [ "${1:-}" = "postmortem" ]; then
	postmortem_smoke
	exit 0
fi
if [ "${1:-}" = "exemplars" ]; then
	exemplars_smoke
	exit 0
fi
if [ "${1:-}" = "history" ]; then
	history_smoke
	exit 0
fi

fmt=$(gofmt -l .)
if [ -n "$fmt" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$fmt" >&2
	exit 1
fi

# Fast-fail stage: the observability packages (stats counters, memory-system
# attribution, manifest encoding, telemetry writers, health detector, live
# server) gate everything downstream and their tests are quick — vet and
# race-test them first so broken instrumentation fails in seconds, not after
# the full sweep-driven suite.
go vet ./internal/stats ./internal/mem ./internal/telemetry ./internal/manifest \
	./internal/health ./internal/telemetry/live ./internal/telemetry/exemplar
go test -race ./internal/stats ./internal/mem ./internal/telemetry ./internal/manifest \
	./internal/health ./internal/telemetry/live ./internal/telemetry/exemplar

go vet ./...
go build ./...
bench_smoke
perf_gate
live_smoke
postmortem_smoke
exemplars_smoke
history_smoke
go test -race ./...
