// Command silcfm-bench runs the fixed laptop-scale regression suite across
// every scheme, emits a canonical run manifest (BENCH_PR<N>.json), and
// diffs two manifests into a regression verdict.
//
// Usage:
//
//	silcfm-bench -out BENCH_PR6.json -label PR6     # full suite
//	silcfm-bench -short -out /tmp/bench.json        # CI smoke subset
//	silcfm-bench -diff BENCH_PR5.json BENCH_PR6.json
//	silcfm-bench -diff -subset -noise 0 BENCH_PR4.json /tmp/bench.json
//	silcfm-bench -history 'BENCH_PR*.json'            # cross-PR trajectory
//	silcfm-bench -history -history-md TRAJECTORY.md BENCH_PR4.json BENCH_PR5.json BENCH_PR6.json
//
// (Flags precede the positional manifest paths, per Go flag convention.)
//
// In -diff mode deterministic simulation metrics (cycles, counters,
// histogram sums, energy) must match exactly — any difference exits
// non-zero as a correctness/behavior regression — while host-timing
// metrics (wall time, throughput, allocations) are compared within the
// -noise band (default ±10%; 0 skips them, for cross-machine diffs).
//
// In -history mode the positional arguments are an ordered list of
// manifest paths (globs expand in natural order), oldest first, and the
// output is a cross-PR trajectory report: per-cell metric curves aligned
// by config fingerprint, plus fleet-level geomean summaries. The report is
// a pure function of the input manifests, so a committed TRAJECTORY.md can
// be regenerated and diffed by CI.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"silcfm/internal/config"
	"silcfm/internal/harness"
	"silcfm/internal/manifest"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry/live"
)

// The suite mirrors bench_test.go's benchExp configuration: 4 cores,
// NM 4 MiB / FM 16 MiB, footprints scaled 1/8, 250k base instructions per
// core — small enough that the full suite finishes in well under a minute,
// large enough that every scheme exercises its swap/lock/bypass machinery.
var (
	fullWorkloads  = []string{"milc", "mcf"}
	shortWorkloads = []string{"milc"}
)

func suiteMachine() config.Machine {
	m := config.Default()
	m.Cores = 4
	m.NM = config.HBM(4 << 20)
	m.FM = config.DDR3(16 << 20)
	return m
}

func allSchemes() []config.SchemeName {
	return append([]config.SchemeName{config.SchemeBaseline}, config.AllSchemes...)
}

func main() {
	var (
		out   = flag.String("out", "BENCH.json", "write the suite manifest to this file")
		label = flag.String("label", "", "manifest label (e.g. PR4)")
		short = flag.Bool("short", false, "run only the smoke subset of the suite (same per-cell config, fewer cells)")
		reps  = flag.Int("reps", 1, "testing.B-style reruns per cell; host metrics keep the fastest rep")
		instr = flag.Uint64("instr", 250_000, "base instructions per core (scaled by MPKI class)")
		seed  = flag.Int64("seed", 0, "random seed (0 = default)")
		quiet = flag.Bool("quiet", false, "suppress the per-cell progress and summary table")

		listen = flag.String("listen", "", "serve live observability HTTP on this address (dashboard, /api/runs, /events, /metrics, /healthz, /progress, /debug/pprof)")

		diff       = flag.Bool("diff", false, "diff mode: compare two manifests (old.json new.json)")
		noise      = flag.Float64("noise", 0.10, "relative noise band for host-timing metrics (0 skips them)")
		speedNoise = flag.Float64("speed-noise", 0, "diff mode: band for host.sim_cycles_per_sec, breaching only when slower (0 falls back to -noise)")
		allocNoise = flag.Float64("alloc-noise", 0, "diff mode: band for host.alloc_objects/bytes, breaching only when higher (0 falls back to -noise)")
		subset     = flag.Bool("subset", false, "diff mode: allow baseline entries the new manifest did not rerun")

		history   = flag.Bool("history", false, "history mode: build a cross-PR trajectory report from ordered manifest paths/globs")
		historyMD = flag.String("history-md", "", "history mode: write the markdown report here instead of stdout")
		historyJS = flag.String("history-out", "", "history mode: also write the trajectory as canonical JSON here")
	)
	flag.Parse()

	if *history {
		os.Exit(runHistory(flag.Args(), *historyMD, *historyJS))
	}
	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "silcfm-bench: -diff needs exactly two manifest paths (old new)")
			os.Exit(2)
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), manifest.DiffOptions{
			Noise:      *noise,
			SpeedNoise: *speedNoise,
			AllocNoise: *allocNoise,
			Subset:     *subset,
		}))
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "silcfm-bench: unexpected arguments (did you mean -diff?):", flag.Args())
		os.Exit(2)
	}
	var srv *live.Server
	if *listen != "" {
		var err error
		if srv, err = live.New(*listen); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-bench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "live:", srv.URL())
	}
	code := runSuite(*out, *label, *short, *reps, *instr, *seed, *quiet, srv)
	if srv != nil {
		srv.Close()
	}
	os.Exit(code)
}

func runSuite(out, label string, short bool, reps int, instr uint64, seed int64, quiet bool, srv *live.Server) int {
	if reps < 1 {
		reps = 1
	}
	workloads := fullWorkloads
	if short {
		workloads = shortWorkloads
	}
	m := manifest.New("silcfm-bench", label)
	tbl := &stats.Table{
		Title:   "silcfm-bench suite",
		Columns: []string{"entry", "cycles", "access-rate", "speedup", "wall s", "Mcyc/s", "allocs"},
	}

	// Cells run sequentially, one at a time, so wall time and throughput
	// measure the simulator rather than scheduler contention.
	baseline := map[string]uint64{} // workload -> baseline cycles
	for _, wl := range workloads {
		for _, scheme := range allSchemes() {
			mach := suiteMachine()
			mach.Scheme = scheme
			if seed != 0 {
				mach.Seed = seed
			}
			spec := harness.Spec{
				Machine:           mach,
				Workload:          wl,
				InstrPerCore:      instr,
				ScaleInstrByClass: true,
				FootScaleNum:      1,
				FootScaleDen:      8,
			}
			id := string(scheme) + "/" + wl
			e, r, err := runCell(id, spec, reps, srv)
			if err != nil {
				fmt.Fprintf(os.Stderr, "silcfm-bench: %s: %v\n", id, err)
				return 1
			}
			if !quiet {
				fmt.Fprintf(os.Stderr, "done %-12s %8d kcyc  %6.2fs wall\n",
					id, e.Sim.Cycles/1000, e.Host.WallSeconds)
			}
			if scheme == config.SchemeBaseline {
				baseline[wl] = r.Cycles
			}
			speedup := "-"
			if b := baseline[wl]; b > 0 && scheme != config.SchemeBaseline {
				speedup = stats.F2(r.Speedup(b))
			}
			tbl.AddRow(id, fmt.Sprint(e.Sim.Cycles), stats.F(r.Mem.AccessRate()), speedup,
				fmt.Sprintf("%.3f", e.Host.WallSeconds),
				fmt.Sprintf("%.1f", e.Host.SimCyclesPerSec/1e6),
				fmt.Sprint(e.Host.AllocObjects))
			m.Add(*e)
		}
	}

	if err := m.WriteFile(out); err != nil {
		fmt.Fprintln(os.Stderr, "silcfm-bench:", err)
		return 1
	}
	if !quiet {
		fmt.Println(tbl)
	}
	fmt.Printf("wrote %s (%d entries)\n", out, len(m.Entries))
	return 0
}

// runCell executes one suite cell reps times and keeps the fastest rep's
// host metrics (the deterministic sim metrics are identical across reps by
// construction — that is the whole point of the manifest).
func runCell(id string, spec harness.Spec, reps int, srv *live.Server) (*manifest.Entry, *harness.Result, error) {
	var best *manifest.Entry
	var bestRes *harness.Result
	for rep := 0; rep < reps; rep++ {
		// Each rep republished under the same id: the server shows the
		// latest, and Done stamps the final incident list.
		spec.Publish = srv.Hook(id)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		res, err := harness.Run(spec)
		runtime.ReadMemStats(&after)
		if res != nil {
			srv.Done(id, res.Health)
		}
		if err != nil {
			return nil, nil, err
		}
		for _, audit := range []struct {
			name string
			err  error
		}{{"data-integrity audit", res.AuditErr}, {"shadow check", res.ShadowErr}, {"counter conservation", res.ConservationErr}} {
			if audit.err != nil {
				return nil, nil, fmt.Errorf("%s failed: %w", audit.name, audit.err)
			}
		}
		e := manifest.FromResult(id, res)
		e.Host.AllocObjects = after.Mallocs - before.Mallocs
		e.Host.AllocBytes = after.TotalAlloc - before.TotalAlloc
		e.Host.Reps = reps
		if best == nil || e.Host.WallSeconds < best.Host.WallSeconds {
			best, bestRes = &e, res
		}
	}
	return best, bestRes, nil
}

// runHistory expands the ordered path/glob arguments and renders the
// trajectory report. Globs expand in natural order (embedded integers
// compared numerically, so PR10 follows PR9 rather than PR1); explicit
// paths keep their command-line order, so mixed usage stays predictable.
func runHistory(patterns []string, outMD, outJSON string) int {
	var paths []string
	for _, p := range patterns {
		matches, err := filepath.Glob(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "silcfm-bench: bad -history pattern %q: %v\n", p, err)
			return 2
		}
		if len(matches) == 0 {
			// Not a glob (or nothing matched): keep the literal path and let
			// LoadHistory report the missing file with its name.
			paths = append(paths, p)
			continue
		}
		manifest.NaturalSort(matches)
		paths = append(paths, matches...)
	}
	steps, err := manifest.LoadHistory(paths)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcfm-bench:", err)
		return 2
	}
	t := manifest.BuildTrajectory(steps)
	md := t.Markdown()
	if outMD != "" {
		if err := os.WriteFile(outMD, []byte(md), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-bench:", err)
			return 2
		}
		fmt.Printf("wrote %s (%d steps, %d cells)\n", outMD, len(t.Steps), len(t.Cells))
	} else {
		fmt.Print(md)
	}
	if outJSON != "" {
		b, err := manifest.Canonical(t)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-bench:", err)
			return 2
		}
		if err := os.WriteFile(outJSON, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-bench:", err)
			return 2
		}
		fmt.Printf("wrote %s\n", outJSON)
	}
	return 0
}

func runDiff(oldPath, newPath string, opt manifest.DiffOptions) int {
	oldM, err := manifest.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcfm-bench:", err)
		return 2
	}
	newM, err := manifest.ReadFile(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcfm-bench:", err)
		return 2
	}
	d, err := manifest.Compare(oldM, newM, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcfm-bench:", err)
		return 2
	}
	if len(d.Table.Rows) > 0 {
		fmt.Println(d.Table)
	}
	if len(d.Uncovered) > 0 && opt.Subset {
		fmt.Printf("note: %d baseline entries not rerun by %s (subset mode)\n", len(d.Uncovered), newPath)
	}
	fmt.Printf("%s -> %s\n%s\n", oldPath, newPath, d.Summary())
	if !d.OK() {
		return 1
	}
	return 0
}
