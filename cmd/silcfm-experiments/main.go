// Command silcfm-experiments regenerates the tables and figures of the
// paper's evaluation section (§V).
//
// Usage:
//
//	silcfm-experiments -which all
//	silcfm-experiments -which fig7 -instr 1000000
//	silcfm-experiments -which fig9 -workloads milc,lbm,mcf
//
// With -which all, the Figure 6 and Figure 7 sweeps are run once each and
// shared by Figure 8 and the headline summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"silcfm/internal/config"
	"silcfm/internal/flightrec"
	"silcfm/internal/harness"
	"silcfm/internal/health"
	"silcfm/internal/manifest"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry"
	"silcfm/internal/telemetry/live"
)

// outFiles records every per-run output file the telemetry layer creates,
// so the summary can cross-link them by relative path.
type outFiles struct {
	mu   sync.Mutex
	byID map[string]map[string]string // "label/wl" -> kind -> relative path
}

func (o *outFiles) add(label, wl, kind, path string) {
	if rel, err := filepath.Rel(".", path); err == nil {
		path = rel
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.byID == nil {
		o.byID = map[string]map[string]string{}
	}
	id := label + "/" + wl
	if o.byID[id] == nil {
		o.byID[id] = map[string]string{}
	}
	o.byID[id][kind] = path
}

// table renders the recorded files as one row per run, one column per kind.
func (o *outFiles) table(kinds []string) *stats.Table {
	o.mu.Lock()
	defer o.mu.Unlock()
	t := &stats.Table{
		Title:   "Per-run output files",
		Columns: append([]string{"run"}, kinds...),
	}
	ids := make([]string, 0, len(o.byID))
	for id := range o.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		row := []string{id}
		for _, k := range kinds {
			p := o.byID[id][k]
			if p == "" {
				p = "-"
			}
			row = append(row, p)
		}
		t.AddRow(row...)
	}
	return t
}

func main() {
	var (
		which = flag.String("which", "all", "experiment: table3, fig6, fig7, fig8, fig9, headline, all")
		instr = flag.Uint64("instr", 1_000_000, "base instructions per core (scaled by MPKI class)")
		wls   = flag.String("workloads", "", "comma-separated workload subset (default: all 14)")
		par   = flag.Int("par", 0, "parallel simulations (default GOMAXPROCS)")
		seed  = flag.Int64("seed", 0, "random seed")
		csv   = flag.Bool("csv", false, "emit CSV instead of aligned tables")

		metricsDir   = flag.String("metrics-out", "", "write per-run epoch metrics into this directory as <label>_<workload>.jsonl")
		metricsEpoch = flag.Uint64("metrics-epoch", 0, "metrics sampling period in cycles (0 = default 200000)")
		traceDir     = flag.String("trace-out", "", "write per-run Perfetto movement traces into this directory as <label>_<workload>.json")
		traceLimit   = flag.Int("trace-limit", 0, "movement-trace ring buffer size in events (0 = default 262144)")
		profileDir   = flag.String("profile-out", "", "write per-run hotness profiles into this directory as <label>_<workload>.profile.jsonl")
		healthDir    = flag.String("health-out", "", "write per-run health incidents into this directory as <label>_<workload>.health.jsonl (baseline included)")
		pmDir        = flag.String("postmortem-out", "", "write per-run postmortem bundles into this directory under <label>_<workload>/ (only runs that opened an incident)")
		progress     = flag.Bool("progress", false, "print one line per completed run to stderr")
		shadowOn     = flag.Bool("shadow", false, "run the continuous shadow-data integrity checker on every run (slower)")
		manifestOut  = flag.String("manifest-out", "", "write a run manifest covering every table3/fig6/fig7 run to this file")
		listen       = flag.String("listen", "", "serve live observability HTTP on this address (dashboard, /api/runs, /events, /metrics, /healthz, /progress, /debug/pprof)")
	)
	flag.Parse()

	var files outFiles
	m := config.Default()
	if *seed != 0 {
		m.Seed = *seed
	}
	cfg := harness.ExpConfig{
		Machine:      m,
		InstrPerCore: *instr,
		Parallelism:  *par,
		ShadowCheck:  *shadowOn,
	}
	if *wls != "" {
		cfg.Workloads = strings.Split(*wls, ",")
	}
	if *progress {
		cfg.Progress = os.Stderr
	}
	if *listen != "" {
		srv, err := live.New(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-experiments:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "live:", srv.URL())
		cfg.Live = srv
		defer srv.Close()
	}
	for _, dir := range []string{*healthDir, *pmDir} {
		if dir == "" {
			continue
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-experiments:", err)
			os.Exit(1)
		}
	}
	// writeCell records one finished run's incident outputs: its health
	// JSONL (every cell, healthy ones included — an empty file is evidence
	// too) and its postmortem bundle directory (only cells that captured).
	writeCell := func(label, wl string, r *harness.Result) {
		if *healthDir != "" {
			path := filepath.Join(*healthDir, label+"_"+wl+".health.jsonl")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "silcfm-experiments:", err)
				os.Exit(1)
			}
			werr := health.WriteJSONL(f, r.Health)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "silcfm-experiments:", werr)
				os.Exit(1)
			}
			files.add(label, wl, "health", path)
		}
		if *pmDir != "" && len(r.Bundles) > 0 {
			dir := filepath.Join(*pmDir, label+"_"+wl)
			if _, err := flightrec.WriteDir(dir, r.Bundles); err != nil {
				fmt.Fprintln(os.Stderr, "silcfm-experiments:", err)
				os.Exit(1)
			}
			files.add(label, wl, "postmortem", dir)
		}
	}
	if *metricsDir != "" || *traceDir != "" || *profileDir != "" {
		for _, dir := range []string{*metricsDir, *traceDir, *profileDir} {
			if dir == "" {
				continue
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "silcfm-experiments:", err)
				os.Exit(1)
			}
		}
		cfg.Telemetry = func(label, wl string) *telemetry.Config {
			tc := &telemetry.Config{EpochCycles: *metricsEpoch, TraceLimit: *traceLimit}
			name := label + "_" + wl
			if *metricsDir != "" {
				path := filepath.Join(*metricsDir, name+".jsonl")
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "silcfm-experiments:", err)
					return nil
				}
				tc.MetricsW = f
				files.add(label, wl, "metrics", path)
			}
			if *traceDir != "" {
				path := filepath.Join(*traceDir, name+".json")
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "silcfm-experiments:", err)
					if c, ok := tc.MetricsW.(*os.File); ok {
						c.Close()
					}
					return nil
				}
				tc.TraceW = f
				files.add(label, wl, "trace", path)
			}
			if *profileDir != "" {
				path := filepath.Join(*profileDir, name+".profile.jsonl")
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintln(os.Stderr, "silcfm-experiments:", err)
					for _, w := range []any{tc.MetricsW, tc.TraceW} {
						if c, ok := w.(*os.File); ok {
							c.Close()
						}
					}
					return nil
				}
				tc.ProfileW = f
				files.add(label, wl, "profile", path)
			}
			return tc
		}
	}

	emit := func(t *stats.Table) {
		if *csv {
			fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
		} else {
			fmt.Println(t)
		}
	}
	fail := func(name string, err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "silcfm-experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	timed := func(name string, f func()) {
		t0 := time.Now()
		f()
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", name, time.Since(t0).Round(time.Second))
	}

	man := manifest.New("silcfm-experiments", "")
	addSweep := func(figure string, sw *harness.SweepResult) {
		if sw == nil {
			return
		}
		for wl, r := range sw.Baseline {
			if *manifestOut != "" {
				man.Add(manifest.FromResult(figure+"/baseline/"+wl, r))
			}
			writeCell("baseline", wl, r)
		}
		for label, runs := range sw.Runs {
			for wl, r := range runs {
				if *manifestOut != "" {
					man.Add(manifest.FromResult(figure+"/"+label+"/"+wl, r))
				}
				writeCell(label, wl, r)
			}
		}
	}

	sel := strings.ToLower(*which)
	all := sel == "all"

	if all || sel == "table3" {
		timed("table3", func() {
			t, runs, err := harness.TableIII(cfg)
			fail("table3", err)
			emit(t)
			for wl, r := range runs {
				if *manifestOut != "" {
					man.Add(manifest.FromResult("table3/base/"+wl, r))
				}
				writeCell("base", wl, r)
			}
		})
	}

	var f6, f7 *harness.SweepResult
	if all || sel == "fig6" || sel == "headline" {
		timed("fig6", func() {
			sw, t, err := harness.Figure6(cfg)
			fail("fig6", err)
			f6 = sw
			if all || sel == "fig6" {
				emit(t)
				fmt.Println(sw.WallFooter())
			}
			addSweep("fig6", sw)
		})
	}
	if all || sel == "fig7" || sel == "fig8" || sel == "headline" {
		timed("fig7", func() {
			sw, t, err := harness.Figure7(cfg)
			fail("fig7", err)
			f7 = sw
			if all || sel == "fig7" {
				emit(t)
				fmt.Println(sw.WallFooter())
			}
			addSweep("fig7", sw)
		})
	}
	if all || sel == "fig8" {
		emit(harness.Figure8(f7))
	}
	if all || sel == "fig9" {
		timed("fig9", func() {
			t, _, err := harness.Figure9(cfg)
			fail("fig9", err)
			emit(t)
		})
	}
	if all || sel == "headline" {
		h := harness.ComputeHeadline(f6, f7)
		fmt.Println("Headline numbers (paper abstract):")
		fmt.Println(h.String())
	}

	if *manifestOut != "" {
		if err := man.WriteFile(*manifestOut); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-experiments:", err)
			os.Exit(1)
		}
		if rel, err := filepath.Rel(".", *manifestOut); err == nil {
			fmt.Printf("\nmanifest:           %s (%d entries)\n", rel, len(man.Entries))
		} else {
			fmt.Printf("\nmanifest:           %s (%d entries)\n", *manifestOut, len(man.Entries))
		}
	}
	// Cross-link the per-run output files so offender/profile/metrics
	// artifacts are discoverable from the summary itself.
	if len(files.byID) > 0 {
		fmt.Println()
		fmt.Println(files.table([]string{"metrics", "trace", "profile", "health", "postmortem"}))
	}
}
