// Command silcfm-postmortem renders an incident postmortem bundle (written
// by silcfm-sim -postmortem-out, silcfm-experiments -postmortem-out, or the
// hub's /api/incidents/<id> endpoint) into a human-readable markdown
// report: the trigger, the rule metadata explaining what fired and where
// to look, the captured epoch window with evidence sparklines, the top
// offender blocks, and the movement-event excerpt.
//
// Usage:
//
//	silcfm-postmortem postmortems/bundle-000.json
//	silcfm-postmortem -o report.md postmortems/bundle-000.json
//	silcfm-postmortem postmortems/          # render every bundle in a dir
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"silcfm/internal/flightrec"
	"silcfm/internal/health"
	"silcfm/internal/telemetry"
)

func main() {
	out := flag.String("o", "", "write the report here instead of stdout")
	events := flag.Int("events", 12, "movement-event excerpt rows per end (head and tail)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: silcfm-postmortem [-o report.md] <bundle.json | dir>...")
		os.Exit(2)
	}
	var paths []string
	for _, arg := range flag.Args() {
		fi, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-postmortem:", err)
			os.Exit(1)
		}
		if fi.IsDir() {
			matches, err := filepath.Glob(filepath.Join(arg, "bundle-*.json"))
			if err == nil {
				sort.Strings(matches)
				paths = append(paths, matches...)
			}
		} else {
			paths = append(paths, arg)
		}
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "silcfm-postmortem: no bundles found")
		os.Exit(1)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-postmortem:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	for i, p := range paths {
		b, err := flightrec.ReadFile(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-postmortem:", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Fprintln(w, "\n---")
		}
		render(w, b, p, *events)
	}
}

// sparkRunes maps a normalized series onto eight block heights.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// spark renders vals as a unicode sparkline normalized to its own max.
func spark(vals []float64) string {
	var max float64
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 {
			i = int(v / max * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[i])
	}
	return sb.String()
}

func render(w io.Writer, b *flightrec.Bundle, path string, evRows int) {
	fmt.Fprintf(w, "# Postmortem: %s\n\n", b.Trigger)
	fmt.Fprintf(w, "- **Bundle:** `%s` (seq %d, schema %s)\n", path, b.Seq, b.Schema)
	if b.Run != "" {
		fmt.Fprintf(w, "- **Run:** %s\n", b.Run)
	}
	fmt.Fprintf(w, "- **Config fingerprint:** `%s`\n", b.Fingerprint)
	fmt.Fprintf(w, "- **Window:** epochs %d-%d, cycles %d-%d (%d pre-trigger epoch(s) of history)\n",
		b.FirstEpoch, b.LastEpoch, b.FirstCycle, b.LastCycle, b.PreEpochs)
	if b.Forced {
		still := "incident(s)"
		if len(b.OpenKinds) > 0 {
			still = strings.Join(b.OpenKinds, ", ")
		}
		fmt.Fprintf(w, "- **Forced flush:** the run ended with %s still open\n", still)
	}
	if b.EpochsDropped > 0 || b.EventsDropped > 0 {
		fmt.Fprintf(w, "- **Capture bounds hit:** %d epoch(s) and %d event(s) beyond the buffer limits were dropped\n",
			b.EpochsDropped, b.EventsDropped)
	}

	if len(b.Rules) > 0 {
		fmt.Fprintf(w, "\n## Rules fired\n\n")
		for _, tr := range b.Rules {
			fmt.Fprintf(w, "### %s\n\n", tr.Kind)
			fmt.Fprintf(w, "Open at %d epoch boundaries, epochs %d-%d, peak severity %.2f.\n",
				tr.OpenEpochs, tr.FirstEpoch, tr.LastEpoch, tr.PeakSeverity)
			if info, ok := health.Info(tr.Kind); ok {
				fmt.Fprintf(w, "\n%s\n\n", info.Description)
				fmt.Fprintf(w, "- **Fires when:** %s\n", info.Threshold)
				fmt.Fprintf(w, "- **Look first at:** %s\n", strings.Join(info.FirstLook, ", "))
			}
			fmt.Fprintln(w)
		}
	}

	if len(b.Incidents) > 0 {
		fmt.Fprintf(w, "## Incident records\n\n")
		fmt.Fprintf(w, "| kind | epochs | cycles | firing | peak severity |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|\n")
		for i := range b.Incidents {
			in := &b.Incidents[i]
			fmt.Fprintf(w, "| %s | %d-%d | %d-%d | %d | %.2f |\n",
				in.Kind, in.FirstEpoch, in.LastEpoch, in.FirstCycle, in.LastCycle,
				in.Epochs, in.PeakSeverity)
		}
		fmt.Fprintln(w)
	}

	if len(b.Epochs) > 0 {
		fmt.Fprintf(w, "## Evidence window\n\n")
		series := func(name string, f func(*telemetry.Sample) float64) {
			vals := make([]float64, len(b.Epochs))
			var last float64
			for i := range b.Epochs {
				vals[i] = f(&b.Epochs[i].Sample)
				last = vals[i]
			}
			fmt.Fprintf(w, "    %-16s %s  (last %g)\n", name, spark(vals), last)
		}
		fmt.Fprintf(w, "Per-epoch deltas across the captured window (trigger at epoch %d):\n\n", b.FirstEpoch+uint64(b.PreEpochs))
		series("llc_misses", func(s *telemetry.Sample) float64 { return float64(s.LLCMisses) })
		series("access_rate", func(s *telemetry.Sample) float64 { return s.AccessRate })
		series("swaps_in", func(s *telemetry.Sample) float64 { return float64(s.SwapsIn) })
		series("locks", func(s *telemetry.Sample) float64 { return float64(s.Locks) })
		series("unlocks", func(s *telemetry.Sample) float64 { return float64(s.Unlocks) })
		series("bypassed", func(s *telemetry.Sample) float64 { return float64(s.Bypassed) })
		series("peak_queue_nm", func(s *telemetry.Sample) float64 { return float64(s.PeakQueueNM) })
		series("peak_queue_fm", func(s *telemetry.Sample) float64 { return float64(s.PeakQueueFM) })
		fmt.Fprintln(w)

		fmt.Fprintf(w, "| epoch | cycle | misses | rate | swaps i/o | locks/unlocks | bypass | peakQ nm/fm | open rules |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|---|\n")
		for i := range b.Epochs {
			e := &b.Epochs[i]
			s := &e.Sample
			var rules []string
			for _, r := range e.Rules {
				rules = append(rules, fmt.Sprintf("%s (%.2f)", r.Kind, r.Severity))
			}
			marker := ""
			if i == b.PreEpochs {
				marker = " ←trigger"
			}
			fmt.Fprintf(w, "| %d%s | %d | %d | %.3f | %d/%d | %d/%d | %d | %d/%d | %s |\n",
				s.Epoch, marker, s.Cycle, s.LLCMisses, s.AccessRate,
				s.SwapsIn, s.SwapsOut, s.Locks, s.Unlocks, s.Bypassed,
				s.PeakQueueNM, s.PeakQueueFM, strings.Join(rules, ", "))
		}
		fmt.Fprintln(w)
	}

	// Attribution: where the trigger epoch's latency went, by path.
	if ti := b.PreEpochs; ti < len(b.Epochs) && len(b.Epochs[ti].Attr) > 0 {
		fmt.Fprintf(w, "## Latency attribution at trigger epoch\n\n")
		fmt.Fprintf(w, "| path | completions | queue | service | meta | swap-ser | mispred | other |\n")
		fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|\n")
		for _, a := range b.Epochs[ti].Attr {
			fmt.Fprintf(w, "| %s | %d | %d | %d | %d | %d | %d | %d |\n",
				a.Path, a.Count, a.Queue, a.Service, a.MetaFetch, a.SwapSerial, a.Mispredict, a.Other)
		}
		fmt.Fprintln(w)
	}

	if len(b.Offenders) > 0 {
		fmt.Fprintf(w, "## Top offender blocks (window-wide)\n\n")
		fmt.Fprintf(w, "| block | address | demands | avg latency |\n")
		fmt.Fprintf(w, "|---|---|---|---|\n")
		for _, o := range b.Offenders {
			avg := 0.0
			if o.Demands > 0 {
				avg = float64(o.LatCycles) / float64(o.Demands)
			}
			fmt.Fprintf(w, "| %d | 0x%x | %d | %.0f cyc |\n", o.Block, o.Block<<11, o.Demands, avg)
		}
		fmt.Fprintln(w)
	}

	if len(b.Events) > 0 {
		counts := map[string]int{}
		for i := range b.Events {
			counts[b.Events[i].Kind]++
		}
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		var parts []string
		for _, k := range kinds {
			parts = append(parts, fmt.Sprintf("%d %s", counts[k], k))
		}
		fmt.Fprintf(w, "## Movement events\n\n")
		fmt.Fprintf(w, "%d captured (%s)", len(b.Events), strings.Join(parts, ", "))
		if b.EventsDropped > 0 {
			fmt.Fprintf(w, "; %d more fell outside the buffer", b.EventsDropped)
		}
		fmt.Fprintf(w, ".\n\n")
		show := func(ev *flightrec.EventRecord) {
			switch ev.Kind {
			case "swap":
				fmt.Fprintf(w, "- cycle %d: swap %s:0x%x ↔ %s:0x%x\n", ev.Cycle, ev.SrcLevel, ev.Src, ev.DstLevel, ev.Dst)
			case "lock", "unlock":
				fmt.Fprintf(w, "- cycle %d: %s frame %d, block %d\n", ev.Cycle, ev.Kind, ev.Src, ev.Dst)
			default: // bypass, mispredict
				fmt.Fprintf(w, "- cycle %d: %s block %d (latency %d)\n", ev.Cycle, ev.Kind, ev.Src, ev.Dst)
			}
		}
		n := len(b.Events)
		if n <= 2*evRows {
			for i := range b.Events {
				show(&b.Events[i])
			}
		} else {
			for i := 0; i < evRows; i++ {
				show(&b.Events[i])
			}
			fmt.Fprintf(w, "- … %d events elided …\n", n-2*evRows)
			for i := n - evRows; i < n; i++ {
				show(&b.Events[i])
			}
		}
	}
}
