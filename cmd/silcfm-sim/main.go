// Command silcfm-sim runs one flat-memory simulation and prints its
// statistics.
//
// Usage:
//
//	silcfm-sim -scheme silc -workload mcf -instr 1000000
//	silcfm-sim -scheme silc -workload milc -compare   # also run the baseline
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"silcfm"
	"silcfm/internal/health"
	"silcfm/internal/manifest"
	"silcfm/internal/stats"
)

func main() {
	var (
		scheme   = flag.String("scheme", "silc", "scheme: base, rand, hma, cam, camp, pom, silc")
		wl       = flag.String("workload", "mcf", "workload: "+strings.Join(silcfm.Workloads(), ", "))
		instr    = flag.Uint64("instr", 1_000_000, "instructions per core")
		scale    = flag.Bool("scale-instr", true, "scale instructions by MPKI class")
		cores    = flag.Int("cores", 0, "core count (0 = Table II default of 16)")
		nm       = flag.Uint64("nm", 0, "NM capacity in MiB (0 = default 128)")
		fm       = flag.Uint64("fm", 0, "FM capacity in MiB (0 = default 512)")
		seed     = flag.Int64("seed", 0, "random seed (0 = default)")
		compare  = flag.Bool("compare", false, "also run the no-NM baseline and report speedup")
		noLock   = flag.Bool("no-lock", false, "disable SILC-FM locking")
		noBypass = flag.Bool("no-bypass", false, "disable SILC-FM bypassing")
		ways     = flag.Int("ways", 4, "SILC-FM associativity (1, 2, 4)")
		trace    = flag.String("trace", "", "replay a trace file instead of the synthetic workload")
		mix      = flag.String("mix", "", "comma-separated heterogeneous mix (core i runs mix[i mod n])")
		foot     = flag.Int("footscale", 0, "divide workload footprints by N (for small -nm/-fm machines)")
		shadowOn = flag.Bool("shadow", false, "run the continuous shadow-data integrity checker (slower)")

		metricsOut   = flag.String("metrics-out", "", "stream epoch time-series metrics to this file (JSONL; .csv extension switches to CSV)")
		metricsEpoch = flag.Uint64("metrics-epoch", 0, "metrics sampling period in cycles (0 = default 200000)")
		traceOut     = flag.String("trace-out", "", "write a Chrome/Perfetto trace of movement events to this file")
		traceLimit   = flag.Int("trace-limit", 0, "movement-trace ring buffer size in events (0 = default 262144)")
		progress     = flag.Bool("progress", false, "print a progress line per metrics epoch to stderr")
		profileOut   = flag.String("profile-out", "", "write the per-block/per-PC hotness profile to this file (JSONL)")
		profileTopK  = flag.Int("profile-topk", 0, "print the K hottest blocks and PCs after the run (0 = off)")
		healthOut    = flag.String("health-out", "", "write the run's health incidents to this file (JSONL)")
		pmOut        = flag.String("postmortem-out", "", "write incident postmortem bundles into this directory (bundle-NNN.json; render with silcfm-postmortem)")
		flightrecOn  = flag.Bool("flightrec", true, "run the incident flight recorder (inert; -flightrec=false proves it)")
		exemplarsOut = flag.String("exemplars-out", "", "write the captured tail exemplars (worst-K accesses per path) to this file (JSONL)")
		exemplarsOn  = flag.Bool("exemplars", true, "run the tail-exemplar recorder (inert; -exemplars=false proves it)")
		listen       = flag.String("listen", "", "serve live observability HTTP on this address (dashboard, /api/runs, /events, /metrics, /healthz, /progress, /debug/pprof)")
		linger       = flag.Duration("listen-linger", 0, "keep the -listen server up this long after the run completes")
		sseSubs      = flag.Int("sse-subs", 0, "attach this many draining /events SSE subscribers before the run starts (inertness testing)")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the simulator process to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile of the simulator process to this file")

		jsonOut     = flag.Bool("json", false, "emit the report as canonical JSON instead of text")
		manifestOut = flag.String("manifest-out", "", "write a run manifest to this file (with -compare, both legs)")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-sim:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-sim:", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "silcfm-sim:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "silcfm-sim:", err)
			}
		}()
	}

	// When replaying a trace, the workload name defaults to the trace's
	// own label unless -workload was given explicitly.
	if *trace != "" {
		explicit := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "workload" {
				explicit = true
			}
		})
		if !explicit {
			*wl = ""
		}
	}

	opts := silcfm.Options{
		Scheme:            silcfm.Scheme(*scheme),
		Workload:          *wl,
		TracePath:         *trace,
		Mix:               splitNonEmpty(*mix),
		InstrPerCore:      *instr,
		ScaleInstrByClass: *scale,
		Cores:             *cores,
		NMCapacity:        *nm << 20,
		FMCapacity:        *fm << 20,
		FootprintScaleDen: *foot,
		ShadowCheck:       *shadowOn,
		MetricsOut:        *metricsOut,
		MetricsEpoch:      *metricsEpoch,
		TraceOut:          *traceOut,
		TraceLimit:        *traceLimit,
		ProfileOut:        *profileOut,
		ProfileTopK:       *profileTopK,
		HealthOut:         *healthOut,
		PostmortemOut:     *pmOut,
		DisableFlightrec:  !*flightrecOn,
		ExemplarsOut:      *exemplarsOut,
		DisableExemplars:  !*exemplarsOn,
		Seed:              *seed,
	}
	if *progress {
		opts.ProgressOut = os.Stderr
	}
	if *listen != "" {
		srv, err := silcfm.Serve(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-sim:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "live:", srv.URL())
		opts.Live = srv
		defer func() {
			if *linger > 0 {
				time.Sleep(*linger)
			}
			srv.Close()
		}()
		// Attach the subscribers synchronously (http.Get returns once the
		// handler has subscribed and sent headers) so every epoch frame of
		// the run flows through their bounded queues; the drain goroutines
		// end when Close drops the streams.
		for i := 0; i < *sseSubs; i++ {
			resp, err := http.Get(srv.URL() + "/events")
			if err != nil {
				fmt.Fprintln(os.Stderr, "silcfm-sim: sse subscriber:", err)
				os.Exit(1)
			}
			go func() {
				defer resp.Body.Close()
				io.Copy(io.Discard, resp.Body)
			}()
		}
		if *sseSubs > 0 {
			fmt.Fprintf(os.Stderr, "live: %d SSE subscribers attached\n", *sseSubs)
		}
	}
	if *noLock || *noBypass || *ways != 4 {
		f := silcfm.FullFeatures()
		f.Locking = !*noLock
		f.Bypass = !*noBypass
		f.Ways = *ways
		opts.SILC = &f
	}

	wlLabel := *wl
	if wlLabel == "" {
		wlLabel = "trace"
	}
	r, entry, err := silcfm.RunEntry(opts, string(opts.Scheme)+"/"+wlLabel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcfm-sim:", err)
		os.Exit(1)
	}
	man := manifest.New("silcfm-sim", "")
	man.Add(*entry)

	var base *silcfm.Report
	if *compare {
		b := opts
		b.Scheme = silcfm.Baseline
		// The baseline leg is only a cycle-count reference: skip the shadow
		// checker (it verifies nothing a non-remapping scheme can violate
		// and would double the -compare runtime) and don't let its
		// telemetry clobber the main run's output files.
		b.ShadowCheck = false
		b.MetricsOut, b.TraceOut, b.ProgressOut = "", "", nil
		b.ProfileOut, b.ProfileTopK = "", 0
		b.HealthOut, b.PostmortemOut = "", ""
		b.ExemplarsOut = ""
		var bentry *manifest.Entry
		base, bentry, err = silcfm.RunEntry(b, "base/"+wlLabel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-sim: baseline:", err)
			os.Exit(1)
		}
		man.Add(*bentry)
	}

	if *manifestOut != "" {
		if err := man.WriteFile(*manifestOut); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-sim:", err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		printJSON(r, base, *shadowOn)
		return
	}
	printReport(r)
	if *shadowOn {
		fmt.Println("shadow check:       passed")
	}
	if base != nil {
		fmt.Printf("\nbaseline cycles:    %d\n", base.Cycles)
		fmt.Printf("baseline wall:      %.3f s  (%.1f Mcycles/s)\n",
			base.WallSeconds, base.SimCyclesPerSec/1e6)
		fmt.Printf("speedup:            %.3f\n", r.SpeedupOver(base))
		// stats.Ratio: a zero-length baseline run has EDP 0; report 0
		// rather than printing Inf/NaN.
		fmt.Printf("EDP vs baseline:    %.3f\n", stats.Ratio(r.EDP, base.EDP))
	}
}

// printJSON emits the run (and the -compare baseline leg) as one canonical
// JSON object on stdout.
func printJSON(r, base *silcfm.Report, shadow bool) {
	out := struct {
		Run         *silcfm.Report `json:"run"`
		Baseline    *silcfm.Report `json:"baseline,omitempty"`
		Speedup     float64        `json:"speedup,omitempty"`
		EDPRatio    float64        `json:"edp_ratio,omitempty"`
		ShadowCheck string         `json:"shadow_check,omitempty"`
	}{Run: r, Baseline: base}
	if base != nil {
		out.Speedup = r.SpeedupOver(base)
		out.EDPRatio = stats.Ratio(r.EDP, base.EDP)
	}
	if shadow {
		out.ShadowCheck = "passed"
	}
	b, err := manifest.Canonical(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "silcfm-sim:", err)
		os.Exit(1)
	}
	os.Stdout.Write(b)
}

func printReport(r *silcfm.Report) {
	fmt.Printf("workload:           %s\n", r.Workload)
	fmt.Printf("scheme:             %s\n", r.Scheme)
	fmt.Printf("instructions:       %d\n", r.Instructions)
	fmt.Printf("execution cycles:   %d\n", r.Cycles)
	fmt.Printf("avg MPKI/core:      %.2f\n", r.AvgMPKI)
	fmt.Printf("access rate:        %.3f\n", r.AccessRate)
	fmt.Printf("NM demand fraction: %.3f\n", r.NMDemandFraction)
	fmt.Printf("migration overhead: %.2f bytes/demand byte\n", r.MigrationOverhead)
	fmt.Printf("footprint:          %.1f MiB\n", float64(r.FootprintBytes)/(1<<20))
	fmt.Printf("energy:             %.3f mJ   EDP: %.3g\n", r.EnergyNJ/1e6, r.EDP)
	if r.Scheme == "silc" {
		fmt.Printf("locks/unlocks:      %d / %d\n", r.Locks, r.Unlocks)
		fmt.Printf("swaps in/out:       %d / %d\n", r.SwapsIn, r.SwapsOut)
		fmt.Printf("bypassed:           %d\n", r.BypassedAccesses)
		fmt.Printf("predictor accuracy: %.3f\n", r.PredictorAccuracy)
	}
	if r.Migrations > 0 {
		fmt.Printf("migrations:         %d\n", r.Migrations)
	}
	fmt.Printf("wall time:          %.3f s  (%.1f Mcycles/s)\n",
		r.WallSeconds, r.SimCyclesPerSec/1e6)
	for _, p := range r.DemandLatency {
		fmt.Printf("latency %-11s n=%-9d mean=%-8.1f p50=%-6d p95=%-6d p99=%-6d max=%d\n",
			p.Path+":", p.Count, p.Mean, p.P50, p.P95, p.P99, p.Max)
	}
	for _, s := range r.Attribution {
		fmt.Printf("spans   %-11s queue=%-10d service=%-10d meta=%-9d swap-ser=%-8d mispred=%-8d other=%d\n",
			s.Path+":", s.Queue, s.Service, s.MetaFetch, s.SwapSerial, s.Mispredict, s.Other)
	}
	if r.TailExemplars != "" {
		fmt.Print(r.TailExemplars)
	}
	if len(r.Health) == 0 {
		fmt.Println("health:             ok")
	} else {
		fmt.Printf("health:             %d incident(s)\n", len(r.Health))
		for _, h := range r.Health {
			fmt.Printf("  %-19s epochs %d-%d  cycles %d-%d  peak severity %.2f\n",
				h.Kind, h.FirstEpoch, h.LastEpoch, h.FirstCycle, h.LastCycle, h.PeakSeverity)
			if info, ok := health.Info(h.Kind); ok {
				fmt.Printf("    fires when:      %s\n", info.Threshold)
				fmt.Printf("    look first at:   %s\n", strings.Join(info.FirstLook, ", "))
			}
		}
	}
	if r.TopOffenders != "" {
		fmt.Println()
		fmt.Print(r.TopOffenders)
	}
}

// splitNonEmpty splits a comma-separated list, returning nil for "".
func splitNonEmpty(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}
