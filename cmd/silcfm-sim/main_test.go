package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"silcfm"
	"silcfm/internal/stats"
)

// TestPrintJSONZeroBaseline pins the zero-length-baseline guard: comparing
// against a run with zero cycles and zero energy (EDP 0) must emit a valid
// JSON document with finite ratios, not NaN/Inf tokens.
func TestPrintJSONZeroBaseline(t *testing.T) {
	r := &silcfm.Report{Scheme: "silc", Workload: "milc", Cycles: 1000, EDP: 42}
	base := &silcfm.Report{Scheme: "base", Workload: "milc"} // zero cycles, zero EDP

	old := os.Stdout
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = pw
	printJSON(r, base, false)
	pw.Close()
	os.Stdout = old
	out, err := io.ReadAll(pr)
	if err != nil {
		t.Fatal(err)
	}

	if bytes.Contains(out, []byte("NaN")) || bytes.Contains(out, []byte("Inf")) {
		t.Fatalf("JSON output contains NaN/Inf:\n%s", out)
	}
	var doc struct {
		Speedup  float64 `json:"speedup"`
		EDPRatio float64 `json:"edp_ratio"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if doc.EDPRatio != 0 {
		t.Fatalf("edp_ratio vs zero-EDP baseline = %v, want 0", doc.EDPRatio)
	}
}

// TestEDPTextLineZeroBaseline pins the human-readable comparison line's
// arithmetic (the same stats.Ratio guard main uses for "EDP vs baseline").
func TestEDPTextLineZeroBaseline(t *testing.T) {
	r := &silcfm.Report{EDP: 42}
	base := &silcfm.Report{} // EDP 0
	line := strings.TrimSpace(
		// mirrors the main() report footer formatting
		"EDP vs baseline: " + stats.F(stats.Ratio(r.EDP, base.EDP)))
	if strings.Contains(line, "NaN") || strings.Contains(line, "Inf") {
		t.Fatalf("line contains NaN/Inf: %q", line)
	}
	if !strings.HasSuffix(line, "0.000") {
		t.Fatalf("zero-EDP baseline line = %q, want ratio 0.000", line)
	}
}
