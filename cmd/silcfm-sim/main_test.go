package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"

	"silcfm"
	"silcfm/internal/stats"
)

// TestPrintJSONZeroBaseline pins the zero-length-baseline guard: comparing
// against a run with zero cycles and zero energy (EDP 0) must emit a valid
// JSON document with finite ratios, not NaN/Inf tokens.
func TestPrintJSONZeroBaseline(t *testing.T) {
	r := &silcfm.Report{Scheme: "silc", Workload: "milc", Cycles: 1000, EDP: 42}
	base := &silcfm.Report{Scheme: "base", Workload: "milc"} // zero cycles, zero EDP

	old := os.Stdout
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = pw
	printJSON(r, base, false)
	pw.Close()
	os.Stdout = old
	out, err := io.ReadAll(pr)
	if err != nil {
		t.Fatal(err)
	}

	if bytes.Contains(out, []byte("NaN")) || bytes.Contains(out, []byte("Inf")) {
		t.Fatalf("JSON output contains NaN/Inf:\n%s", out)
	}
	var doc struct {
		Speedup  float64 `json:"speedup"`
		EDPRatio float64 `json:"edp_ratio"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	if doc.EDPRatio != 0 {
		t.Fatalf("edp_ratio vs zero-EDP baseline = %v, want 0", doc.EDPRatio)
	}
}

// TestEDPTextLineZeroBaseline pins the human-readable comparison line's
// arithmetic (the same stats.Ratio guard main uses for "EDP vs baseline").
func TestEDPTextLineZeroBaseline(t *testing.T) {
	r := &silcfm.Report{EDP: 42}
	base := &silcfm.Report{} // EDP 0
	line := strings.TrimSpace(
		// mirrors the main() report footer formatting
		"EDP vs baseline: " + stats.F(stats.Ratio(r.EDP, base.EDP)))
	if strings.Contains(line, "NaN") || strings.Contains(line, "Inf") {
		t.Fatalf("line contains NaN/Inf: %q", line)
	}
	if !strings.HasSuffix(line, "0.000") {
		t.Fatalf("zero-EDP baseline line = %q, want ratio 0.000", line)
	}
}

// TestPrintReportLatencyLinesGolden pins the human-readable latency lines
// byte-for-byte: per-path count, mean and percentiles plus the exact max,
// followed by the tail-exemplar waterfall block when one was rendered.
func TestPrintReportLatencyLinesGolden(t *testing.T) {
	r := &silcfm.Report{
		Workload: "milc",
		Scheme:   "silc",
		DemandLatency: []silcfm.PathLatency{
			{Path: "nm-hit", Count: 1200, Mean: 43.5, P50: 40, P95: 80, P99: 120, Max: 913},
			{Path: "swap", Count: 7, Mean: 210.0, P50: 200, P95: 260, P99: 260, Max: 264},
		},
		TailExemplars: "tail exemplars:\n  spans: .=queue #=service m=meta-fetch s=swap-serial !=mispredict -=other\n",
	}

	old := os.Stdout
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = pw
	printReport(r)
	pw.Close()
	os.Stdout = old
	out, err := io.ReadAll(pr)
	if err != nil {
		t.Fatal(err)
	}

	want := []string{
		"latency nm-hit:     n=1200      mean=43.5     p50=40     p95=80     p99=120    max=913\n",
		"latency swap:       n=7         mean=210.0    p50=200    p95=260    p99=260    max=264\n",
		"tail exemplars:\n",
	}
	for _, w := range want {
		if !strings.Contains(string(out), w) {
			t.Fatalf("report output missing golden line %q:\n%s", w, out)
		}
	}
}
