// Command silcfm-trace captures synthetic workload reference streams into
// trace files and inspects existing traces.
//
// Usage:
//
//	silcfm-trace -gen -workload mcf -n 1000000 -o mcf.sfmt
//	silcfm-trace -inspect mcf.sfmt
//	silcfm-trace -inspect run.json -path swap -slowest 5   # Perfetto trace
//	silcfm-trace -characterize          # profile all 14 synthetic workloads
//
// -inspect also understands the Perfetto/Chrome trace JSON the simulator
// writes with -trace-out: it locates the injected tail-exemplar span trees
// ("exemplar:<path>" tracks) and prints their waterfalls, filtered with
// -path (demand path substring) and -slowest N (worst N by duration).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"silcfm/internal/memunits"
	"silcfm/internal/stats"
	"silcfm/internal/workload"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate a trace")
		inspect = flag.String("inspect", "", "inspect a trace file")
		char    = flag.Bool("characterize", false, "profile the synthetic workloads")
		wl      = flag.String("workload", "mcf", "workload to capture")
		n       = flag.Uint64("n", 1_000_000, "references to capture")
		out     = flag.String("o", "", "output file (default <workload>.sfmt)")
		seed    = flag.Int64("seed", 1, "generator seed")

		metricsOut   = flag.String("metrics-out", "", "with -gen: stream windowed workload-characterization JSONL to this file")
		metricsEpoch = flag.Uint64("metrics-epoch", 100_000, "references per characterization window")
		progress     = flag.Bool("progress", false, "with -gen: print a progress line per window to stderr")
		topK         = flag.Int("topk", 0, "with -inspect: also list the K hottest 2 KB pages and PCs")
		pathFilter   = flag.String("path", "", "with -inspect on a Perfetto trace: only exemplar span trees on this demand path (substring match)")
		slowest      = flag.Int("slowest", 0, "with -inspect on a Perfetto trace: only the N slowest exemplar span trees (0 = all)")
	)
	flag.Parse()

	switch {
	case *gen:
		if err := generate(*wl, *n, *out, *seed, *metricsOut, *metricsEpoch, *progress); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-trace:", err)
			os.Exit(1)
		}
	case *inspect != "":
		if isPerfettoTrace(*inspect) {
			if err := inspectPerfetto(*inspect, *pathFilter, *slowest); err != nil {
				fmt.Fprintln(os.Stderr, "silcfm-trace:", err)
				os.Exit(1)
			}
			return
		}
		if err := inspectFile(*inspect, *topK); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-trace:", err)
			os.Exit(1)
		}
	case *char:
		characterizeAll(*n, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(wl string, n uint64, out string, seed int64, metricsOut string, window uint64, progress bool) error {
	g, ok := workload.New(wl, seed)
	if !ok {
		return fmt.Errorf("unknown workload %q", wl)
	}
	if out == "" {
		out = wl + ".sfmt"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := workload.NewTraceWriter(f, wl)
	if err != nil {
		return err
	}
	var mw *windowMetrics
	if metricsOut != "" {
		mf, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		defer mf.Close()
		mw = newWindowMetrics(mf, window)
	}
	start := time.Now()
	var r workload.Ref
	for i := uint64(0); i < n; i++ {
		g.Next(&r)
		if err := w.Write(r); err != nil {
			return err
		}
		if mw != nil {
			if err := mw.observe(&r); err != nil {
				return err
			}
		}
		if progress && window > 0 && (i+1)%window == 0 {
			done := i + 1
			note := ""
			// Same host-rate/ETA arithmetic as the simulator's telemetry
			// progress line, in references instead of cycles.
			// stats.Ratio guards the zero-elapsed and zero-done edges so a
			// sub-millisecond or empty capture never prints NaN/Inf.
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				note = fmt.Sprintf(" %.1f Mref/s", stats.Ratio(float64(done), elapsed)/1e6)
				if done < n {
					eta := time.Duration(elapsed * stats.Ratio(float64(n-done), float64(done)) * float64(time.Second))
					note += " eta " + eta.Round(time.Second).String()
				}
			}
			fmt.Fprintf(os.Stderr, "progress: refs=%d/%d (%.1f%%)%s\n",
				done, n, 100*stats.Ratio(float64(done), float64(n)), note)
		}
	}
	if mw != nil {
		if err := mw.finish(); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d references for %s to %s\n", w.Count(), wl, out)
	return nil
}

// windowMetrics streams per-window workload characterization as JSONL: one
// line per `window` references with reference, write, instruction and
// unique-page/subblock counts. Field order is fixed, so output is
// byte-deterministic for a fixed seed.
type windowMetrics struct {
	w      io.Writer
	window uint64

	idx       uint64
	refs      uint64
	writes    uint64
	instr     uint64
	pages     map[uint64]struct{}
	subblocks map[uint64]struct{}
}

type windowSample struct {
	Window    uint64  `json:"window"`
	Refs      uint64  `json:"refs"`
	Writes    uint64  `json:"writes"`
	WriteFrac float64 `json:"write_frac"`
	Instr     uint64  `json:"instr"`
	MeanGap   float64 `json:"mean_gap"`
	Pages     int     `json:"pages"`
	Subblocks int     `json:"subblocks"`
	// SubblocksPerPage measures spatial locality within the window.
	SubblocksPerPage float64 `json:"subblocks_per_page"`
}

func newWindowMetrics(w io.Writer, window uint64) *windowMetrics {
	if window == 0 {
		window = 100_000
	}
	return &windowMetrics{
		w: w, window: window,
		pages:     map[uint64]struct{}{},
		subblocks: map[uint64]struct{}{},
	}
}

func (m *windowMetrics) observe(r *workload.Ref) error {
	m.refs++
	if r.Write {
		m.writes++
	}
	m.instr += uint64(r.Gap)
	m.pages[memunits.BlockOf(r.VAddr)] = struct{}{}
	m.subblocks[memunits.SubblockOf(r.VAddr)] = struct{}{}
	if m.refs < m.window {
		return nil
	}
	return m.flush()
}

func (m *windowMetrics) finish() error {
	if m.refs == 0 {
		return nil
	}
	return m.flush()
}

func (m *windowMetrics) flush() error {
	s := windowSample{
		Window:    m.idx,
		Refs:      m.refs,
		Writes:    m.writes,
		Instr:     m.instr,
		Pages:     len(m.pages),
		Subblocks: len(m.subblocks),
	}
	// stats.Ratio: an empty window (no references, no pages) emits 0 for
	// each derived rate instead of NaN in the JSONL stream.
	s.WriteFrac = stats.Ratio(float64(m.writes), float64(m.refs))
	s.MeanGap = stats.Ratio(float64(m.instr), float64(m.refs))
	s.SubblocksPerPage = stats.Ratio(float64(len(m.subblocks)), float64(len(m.pages)))
	b, err := json.Marshal(&s)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := m.w.Write(b); err != nil {
		return err
	}
	m.idx++
	m.refs, m.writes, m.instr = 0, 0, 0
	m.pages = map[uint64]struct{}{}
	m.subblocks = map[uint64]struct{}{}
	return nil
}

// isPerfettoTrace sniffs whether path holds the Chrome trace-event JSON the
// simulator's -trace-out writes (as opposed to a binary .sfmt reference
// trace): the file starts with '{'.
func isPerfettoTrace(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var b [1]byte
	if _, err := io.ReadFull(f, b[:]); err != nil {
		return false
	}
	return b[0] == '{'
}

// perfettoEvent is the subset of the Chrome trace-event shape -inspect
// needs to locate exemplar span trees.
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// spanTree is one exemplar's parent span plus its child component spans.
type spanTree struct {
	track    string // "exemplar:<path>"
	name     string // "pa=0x..."
	ts, dur  uint64
	children []perfettoEvent
}

// inspectPerfetto summarizes a Perfetto trace and prints its injected
// exemplar span trees, filtered by demand path substring and bounded to the
// N slowest (by parent duration; ties broken by start then track for a
// deterministic listing).
func inspectPerfetto(path, pathFilter string, slowest int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []perfettoEvent `json:"traceEvents"`
		OtherData   struct {
			Events       uint64 `json:"events"`
			Dropped      uint64 `json:"dropped"`
			Spans        uint64 `json:"spans"`
			SpansDropped uint64 `json:"spans_dropped"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: not a Perfetto trace: %w", path, err)
	}
	tracks := map[int]string{}
	var instants int
	for i := range doc.TraceEvents {
		e := &doc.TraceEvents[i]
		switch e.Ph {
		case "M":
			if e.Name == "thread_name" {
				if name, ok := e.Args["name"].(string); ok {
					tracks[e.Tid] = name
				}
			}
		case "i":
			instants++
		}
	}
	// Exemplar parents are the "pa=0x..." spans on "exemplar:*" tracks;
	// the component spans that follow a parent on its track nest inside it
	// by time containment.
	var trees []spanTree
	for i := range doc.TraceEvents {
		e := &doc.TraceEvents[i]
		if e.Ph != "X" || !strings.HasPrefix(tracks[e.Tid], "exemplar:") {
			continue
		}
		if strings.HasPrefix(e.Name, "pa=") {
			trees = append(trees, spanTree{track: tracks[e.Tid], name: e.Name, ts: e.Ts, dur: e.Dur})
			continue
		}
		for j := len(trees) - 1; j >= 0; j-- {
			t := &trees[j]
			if t.track == tracks[e.Tid] && e.Ts >= t.ts && e.Ts+e.Dur <= t.ts+t.dur {
				t.children = append(t.children, *e)
				break
			}
		}
	}
	fmt.Printf("perfetto trace: %d movement events kept (%d observed, %d dropped), %d injected spans (%d dropped), %d exemplar span trees\n",
		instants, doc.OtherData.Events, doc.OtherData.Dropped, doc.OtherData.Spans, doc.OtherData.SpansDropped, len(trees))
	if pathFilter != "" {
		kept := trees[:0]
		for _, t := range trees {
			if strings.Contains(strings.TrimPrefix(t.track, "exemplar:"), pathFilter) {
				kept = append(kept, t)
			}
		}
		trees = kept
		fmt.Printf("path filter %q: %d span trees match\n", pathFilter, len(trees))
	}
	sort.SliceStable(trees, func(i, j int) bool {
		if trees[i].dur != trees[j].dur {
			return trees[i].dur > trees[j].dur
		}
		if trees[i].ts != trees[j].ts {
			return trees[i].ts < trees[j].ts
		}
		return trees[i].track < trees[j].track
	})
	if slowest > 0 && len(trees) > slowest {
		fmt.Printf("showing the %d slowest of %d\n", slowest, len(trees))
		trees = trees[:slowest]
	}
	for _, t := range trees {
		fmt.Printf("%s  %s  start=%d dur=%d\n", t.track, t.name, t.ts, t.dur)
		for _, c := range t.children {
			fmt.Printf("    %-12s +%-8d %d cycles\n", c.Name, c.Ts-t.ts, c.Dur)
		}
	}
	return nil
}

func inspectFile(path string, topK int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := workload.LoadReplay(f)
	if err != nil {
		return err
	}
	p := workload.Characterize(rp.CloneAt(0, 1), rp.Len())
	fmt.Printf("workload:      %s\n", rp.Name())
	fmt.Printf("references:    %d (%.1f%% writes)\n", p.Refs, 100*p.WriteFrac)
	fmt.Printf("instructions:  %d (%.1f per reference)\n", p.Instructions, p.MeanGap)
	fmt.Printf("footprint:     %d pages (%.1f MiB), %d subblocks\n",
		p.Pages, float64(p.FootprintBytes())/(1<<20), p.Subblocks)
	fmt.Printf("spatial:       %.1f touched subblocks per touched page\n", p.SubblocksPerPage)
	fmt.Printf("hot-set skew:  %.1f%% of references hit the 64 hottest pages\n", 100*p.Top64Share)
	if topK > 0 {
		fmt.Println()
		printTopK(rp, topK)
	}
	return nil
}

// printTopK lists the trace's hottest 2 KB pages and PCs by static
// reference count — the workload-side view of the simulator's dynamic
// hotness profile (silcfm-sim -profile-topk).
func printTopK(rp *workload.Replay, k int) {
	type kc struct {
		key, count uint64
	}
	pages := map[uint64]uint64{}
	pcs := map[uint64]uint64{}
	g := rp.CloneAt(0, 1)
	var r workload.Ref
	for i := 0; i < rp.Len(); i++ {
		g.Next(&r)
		pages[memunits.BlockOf(r.VAddr)]++
		pcs[r.PC]++
	}
	top := func(m map[uint64]uint64) []kc {
		out := make([]kc, 0, len(m))
		for key, c := range m {
			out = append(out, kc{key, c})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].count != out[j].count {
				return out[i].count > out[j].count
			}
			return out[i].key < out[j].key
		})
		if len(out) > k {
			out = out[:k]
		}
		return out
	}
	fmt.Printf("top %d pages (of %d):\n", k, len(pages))
	for _, e := range top(pages) {
		fmt.Printf("  page %-10d refs=%d\n", e.key, e.count)
	}
	fmt.Printf("top %d PCs (of %d):\n", k, len(pcs))
	for _, e := range top(pcs) {
		fmt.Printf("  pc 0x%-10x refs=%d\n", e.key, e.count)
	}
}

// characterizeAll profiles every Table III workload over n references.
func characterizeAll(n uint64, seed int64) {
	fmt.Printf("%-8s %6s %9s %9s %8s %8s %8s\n",
		"name", "class", "pages", "spatial", "top64", "writes", "gap")
	for _, name := range workload.Names {
		g, _ := workload.New(name, seed)
		params, _ := workload.Spec(name)
		p := workload.Characterize(g, int(n))
		fmt.Printf("%-8s %6s %9d %9.1f %7.1f%% %7.1f%% %8.1f\n",
			name, params.Class, p.Pages, p.SubblocksPerPage,
			100*p.Top64Share, 100*p.WriteFrac, p.MeanGap)
	}
}
