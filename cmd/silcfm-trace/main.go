// Command silcfm-trace captures synthetic workload reference streams into
// trace files and inspects existing traces.
//
// Usage:
//
//	silcfm-trace -gen -workload mcf -n 1000000 -o mcf.sfmt
//	silcfm-trace -inspect mcf.sfmt
//	silcfm-trace -characterize          # profile all 14 synthetic workloads
package main

import (
	"flag"
	"fmt"
	"os"

	"silcfm/internal/workload"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate a trace")
		inspect = flag.String("inspect", "", "inspect a trace file")
		char    = flag.Bool("characterize", false, "profile the synthetic workloads")
		wl      = flag.String("workload", "mcf", "workload to capture")
		n       = flag.Uint64("n", 1_000_000, "references to capture")
		out     = flag.String("o", "", "output file (default <workload>.sfmt)")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	switch {
	case *gen:
		if err := generate(*wl, *n, *out, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-trace:", err)
			os.Exit(1)
		}
	case *inspect != "":
		if err := inspectFile(*inspect); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-trace:", err)
			os.Exit(1)
		}
	case *char:
		characterizeAll(*n, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(wl string, n uint64, out string, seed int64) error {
	g, ok := workload.New(wl, seed)
	if !ok {
		return fmt.Errorf("unknown workload %q", wl)
	}
	if out == "" {
		out = wl + ".sfmt"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := workload.NewTraceWriter(f, wl)
	if err != nil {
		return err
	}
	var r workload.Ref
	for i := uint64(0); i < n; i++ {
		g.Next(&r)
		if err := w.Write(r); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d references for %s to %s\n", w.Count(), wl, out)
	return nil
}

func inspectFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := workload.LoadReplay(f)
	if err != nil {
		return err
	}
	p := workload.Characterize(rp.CloneAt(0, 1), rp.Len())
	fmt.Printf("workload:      %s\n", rp.Name())
	fmt.Printf("references:    %d (%.1f%% writes)\n", p.Refs, 100*p.WriteFrac)
	fmt.Printf("instructions:  %d (%.1f per reference)\n", p.Instructions, p.MeanGap)
	fmt.Printf("footprint:     %d pages (%.1f MiB), %d subblocks\n",
		p.Pages, float64(p.FootprintBytes())/(1<<20), p.Subblocks)
	fmt.Printf("spatial:       %.1f touched subblocks per touched page\n", p.SubblocksPerPage)
	fmt.Printf("hot-set skew:  %.1f%% of references hit the 64 hottest pages\n", 100*p.Top64Share)
	return nil
}

// characterizeAll profiles every Table III workload over n references.
func characterizeAll(n uint64, seed int64) {
	fmt.Printf("%-8s %6s %9s %9s %8s %8s %8s\n",
		"name", "class", "pages", "spatial", "top64", "writes", "gap")
	for _, name := range workload.Names {
		g, _ := workload.New(name, seed)
		params, _ := workload.Spec(name)
		p := workload.Characterize(g, int(n))
		fmt.Printf("%-8s %6s %9d %9.1f %7.1f%% %7.1f%% %8.1f\n",
			name, params.Class, p.Pages, p.SubblocksPerPage,
			100*p.Top64Share, 100*p.WriteFrac, p.MeanGap)
	}
}
