// Command silcfm-trace captures synthetic workload reference streams into
// trace files and inspects existing traces.
//
// Usage:
//
//	silcfm-trace -gen -workload mcf -n 1000000 -o mcf.sfmt
//	silcfm-trace -inspect mcf.sfmt
//	silcfm-trace -characterize          # profile all 14 synthetic workloads
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"silcfm/internal/memunits"
	"silcfm/internal/stats"
	"silcfm/internal/workload"
)

func main() {
	var (
		gen     = flag.Bool("gen", false, "generate a trace")
		inspect = flag.String("inspect", "", "inspect a trace file")
		char    = flag.Bool("characterize", false, "profile the synthetic workloads")
		wl      = flag.String("workload", "mcf", "workload to capture")
		n       = flag.Uint64("n", 1_000_000, "references to capture")
		out     = flag.String("o", "", "output file (default <workload>.sfmt)")
		seed    = flag.Int64("seed", 1, "generator seed")

		metricsOut   = flag.String("metrics-out", "", "with -gen: stream windowed workload-characterization JSONL to this file")
		metricsEpoch = flag.Uint64("metrics-epoch", 100_000, "references per characterization window")
		progress     = flag.Bool("progress", false, "with -gen: print a progress line per window to stderr")
		topK         = flag.Int("topk", 0, "with -inspect: also list the K hottest 2 KB pages and PCs")
	)
	flag.Parse()

	switch {
	case *gen:
		if err := generate(*wl, *n, *out, *seed, *metricsOut, *metricsEpoch, *progress); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-trace:", err)
			os.Exit(1)
		}
	case *inspect != "":
		if err := inspectFile(*inspect, *topK); err != nil {
			fmt.Fprintln(os.Stderr, "silcfm-trace:", err)
			os.Exit(1)
		}
	case *char:
		characterizeAll(*n, *seed)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func generate(wl string, n uint64, out string, seed int64, metricsOut string, window uint64, progress bool) error {
	g, ok := workload.New(wl, seed)
	if !ok {
		return fmt.Errorf("unknown workload %q", wl)
	}
	if out == "" {
		out = wl + ".sfmt"
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := workload.NewTraceWriter(f, wl)
	if err != nil {
		return err
	}
	var mw *windowMetrics
	if metricsOut != "" {
		mf, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		defer mf.Close()
		mw = newWindowMetrics(mf, window)
	}
	start := time.Now()
	var r workload.Ref
	for i := uint64(0); i < n; i++ {
		g.Next(&r)
		if err := w.Write(r); err != nil {
			return err
		}
		if mw != nil {
			if err := mw.observe(&r); err != nil {
				return err
			}
		}
		if progress && window > 0 && (i+1)%window == 0 {
			done := i + 1
			note := ""
			// Same host-rate/ETA arithmetic as the simulator's telemetry
			// progress line, in references instead of cycles.
			// stats.Ratio guards the zero-elapsed and zero-done edges so a
			// sub-millisecond or empty capture never prints NaN/Inf.
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				note = fmt.Sprintf(" %.1f Mref/s", stats.Ratio(float64(done), elapsed)/1e6)
				if done < n {
					eta := time.Duration(elapsed * stats.Ratio(float64(n-done), float64(done)) * float64(time.Second))
					note += " eta " + eta.Round(time.Second).String()
				}
			}
			fmt.Fprintf(os.Stderr, "progress: refs=%d/%d (%.1f%%)%s\n",
				done, n, 100*stats.Ratio(float64(done), float64(n)), note)
		}
	}
	if mw != nil {
		if err := mw.finish(); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %d references for %s to %s\n", w.Count(), wl, out)
	return nil
}

// windowMetrics streams per-window workload characterization as JSONL: one
// line per `window` references with reference, write, instruction and
// unique-page/subblock counts. Field order is fixed, so output is
// byte-deterministic for a fixed seed.
type windowMetrics struct {
	w      io.Writer
	window uint64

	idx       uint64
	refs      uint64
	writes    uint64
	instr     uint64
	pages     map[uint64]struct{}
	subblocks map[uint64]struct{}
}

type windowSample struct {
	Window    uint64  `json:"window"`
	Refs      uint64  `json:"refs"`
	Writes    uint64  `json:"writes"`
	WriteFrac float64 `json:"write_frac"`
	Instr     uint64  `json:"instr"`
	MeanGap   float64 `json:"mean_gap"`
	Pages     int     `json:"pages"`
	Subblocks int     `json:"subblocks"`
	// SubblocksPerPage measures spatial locality within the window.
	SubblocksPerPage float64 `json:"subblocks_per_page"`
}

func newWindowMetrics(w io.Writer, window uint64) *windowMetrics {
	if window == 0 {
		window = 100_000
	}
	return &windowMetrics{
		w: w, window: window,
		pages:     map[uint64]struct{}{},
		subblocks: map[uint64]struct{}{},
	}
}

func (m *windowMetrics) observe(r *workload.Ref) error {
	m.refs++
	if r.Write {
		m.writes++
	}
	m.instr += uint64(r.Gap)
	m.pages[memunits.BlockOf(r.VAddr)] = struct{}{}
	m.subblocks[memunits.SubblockOf(r.VAddr)] = struct{}{}
	if m.refs < m.window {
		return nil
	}
	return m.flush()
}

func (m *windowMetrics) finish() error {
	if m.refs == 0 {
		return nil
	}
	return m.flush()
}

func (m *windowMetrics) flush() error {
	s := windowSample{
		Window:    m.idx,
		Refs:      m.refs,
		Writes:    m.writes,
		Instr:     m.instr,
		Pages:     len(m.pages),
		Subblocks: len(m.subblocks),
	}
	// stats.Ratio: an empty window (no references, no pages) emits 0 for
	// each derived rate instead of NaN in the JSONL stream.
	s.WriteFrac = stats.Ratio(float64(m.writes), float64(m.refs))
	s.MeanGap = stats.Ratio(float64(m.instr), float64(m.refs))
	s.SubblocksPerPage = stats.Ratio(float64(len(m.subblocks)), float64(len(m.pages)))
	b, err := json.Marshal(&s)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if _, err := m.w.Write(b); err != nil {
		return err
	}
	m.idx++
	m.refs, m.writes, m.instr = 0, 0, 0
	m.pages = map[uint64]struct{}{}
	m.subblocks = map[uint64]struct{}{}
	return nil
}

func inspectFile(path string, topK int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rp, err := workload.LoadReplay(f)
	if err != nil {
		return err
	}
	p := workload.Characterize(rp.CloneAt(0, 1), rp.Len())
	fmt.Printf("workload:      %s\n", rp.Name())
	fmt.Printf("references:    %d (%.1f%% writes)\n", p.Refs, 100*p.WriteFrac)
	fmt.Printf("instructions:  %d (%.1f per reference)\n", p.Instructions, p.MeanGap)
	fmt.Printf("footprint:     %d pages (%.1f MiB), %d subblocks\n",
		p.Pages, float64(p.FootprintBytes())/(1<<20), p.Subblocks)
	fmt.Printf("spatial:       %.1f touched subblocks per touched page\n", p.SubblocksPerPage)
	fmt.Printf("hot-set skew:  %.1f%% of references hit the 64 hottest pages\n", 100*p.Top64Share)
	if topK > 0 {
		fmt.Println()
		printTopK(rp, topK)
	}
	return nil
}

// printTopK lists the trace's hottest 2 KB pages and PCs by static
// reference count — the workload-side view of the simulator's dynamic
// hotness profile (silcfm-sim -profile-topk).
func printTopK(rp *workload.Replay, k int) {
	type kc struct {
		key, count uint64
	}
	pages := map[uint64]uint64{}
	pcs := map[uint64]uint64{}
	g := rp.CloneAt(0, 1)
	var r workload.Ref
	for i := 0; i < rp.Len(); i++ {
		g.Next(&r)
		pages[memunits.BlockOf(r.VAddr)]++
		pcs[r.PC]++
	}
	top := func(m map[uint64]uint64) []kc {
		out := make([]kc, 0, len(m))
		for key, c := range m {
			out = append(out, kc{key, c})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].count != out[j].count {
				return out[i].count > out[j].count
			}
			return out[i].key < out[j].key
		})
		if len(out) > k {
			out = out[:k]
		}
		return out
	}
	fmt.Printf("top %d pages (of %d):\n", k, len(pages))
	for _, e := range top(pages) {
		fmt.Printf("  page %-10d refs=%d\n", e.key, e.count)
	}
	fmt.Printf("top %d PCs (of %d):\n", k, len(pcs))
	for _, e := range top(pcs) {
		fmt.Printf("  pc 0x%-10x refs=%d\n", e.key, e.count)
	}
}

// characterizeAll profiles every Table III workload over n references.
func characterizeAll(n uint64, seed int64) {
	fmt.Printf("%-8s %6s %9s %9s %8s %8s %8s\n",
		"name", "class", "pages", "spatial", "top64", "writes", "gap")
	for _, name := range workload.Names {
		g, _ := workload.New(name, seed)
		params, _ := workload.Spec(name)
		p := workload.Characterize(g, int(n))
		fmt.Printf("%-8s %6s %9d %9.1f %7.1f%% %7.1f%% %8.1f\n",
			name, params.Class, p.Pages, p.SubblocksPerPage,
			100*p.Top64Share, 100*p.WriteFrac, p.MeanGap)
	}
}
