package main

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestEmptyWindowFlushHasNoNaN pins the empty-trace guard: a window with
// zero references and zero pages must emit 0 for every derived rate
// (write_frac, mean_gap, subblocks_per_page), not NaN — a NaN renders as an
// invalid JSON token and corrupts the JSONL stream.
func TestEmptyWindowFlushHasNoNaN(t *testing.T) {
	var buf bytes.Buffer
	m := newWindowMetrics(&buf, 10)
	if err := m.flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	out := buf.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("empty-window sample contains NaN/Inf: %s", out)
	}
	var s windowSample
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("unparseable sample %q: %v", out, err)
	}
	if s.WriteFrac != 0 || s.MeanGap != 0 || s.SubblocksPerPage != 0 {
		t.Fatalf("empty window rates = %v %v %v, want all 0",
			s.WriteFrac, s.MeanGap, s.SubblocksPerPage)
	}
}

// TestPartialWindowRatesFinite feeds one window's worth of references and
// checks the derived rates stay finite and correct.
func TestPartialWindowRatesFinite(t *testing.T) {
	var buf bytes.Buffer
	m := newWindowMetrics(&buf, 4)
	m.refs = 4
	m.writes = 1
	m.instr = 40
	m.pages[0] = struct{}{}
	m.subblocks[0] = struct{}{}
	m.subblocks[1] = struct{}{}
	if err := m.flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	var s windowSample
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if s.WriteFrac != 0.25 || s.MeanGap != 10 || s.SubblocksPerPage != 2 {
		t.Fatalf("rates = %v %v %v, want 0.25 10 2",
			s.WriteFrac, s.MeanGap, s.SubblocksPerPage)
	}
	for _, v := range []float64{s.WriteFrac, s.MeanGap, s.SubblocksPerPage} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite rate %v", v)
		}
	}
}
