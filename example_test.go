package silcfm_test

import (
	"fmt"
	"log"

	"silcfm"
)

// The basic workflow: run a scheme and the baseline, compare.
func Example() {
	base, err := silcfm.Run(silcfm.Options{Scheme: silcfm.Baseline, Workload: "milc"})
	if err != nil {
		log.Fatal(err)
	}
	silc, err := silcfm.Run(silcfm.Options{Scheme: silcfm.SILCFM, Workload: "milc"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speedup %.2fx at access rate %.2f\n", silc.SpeedupOver(base), silc.AccessRate)
}

// Feature ablation: disable the bypass governor (Figure 6's last step).
func ExampleFeatures() {
	f := silcfm.FullFeatures()
	f.Bypass = false
	r, err := silcfm.Run(silcfm.Options{
		Scheme:   silcfm.SILCFM,
		Workload: "milc",
		SILC:     &f,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.BypassedAccesses) // always 0 with bypass disabled
}

// Parameter ablation: a stricter locking threshold.
func ExampleTuning() {
	r, err := silcfm.Run(silcfm.Options{
		Scheme:   silcfm.SILCFM,
		Workload: "xalanc",
		Tuning:   &silcfm.Tuning{HotThreshold: 32},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Locks)
}

// Regenerating a paper figure at reduced scale.
func ExampleFigure7() {
	tbl, err := silcfm.Figure7(silcfm.ExperimentOptions{
		InstrPerCore: 200_000,
		Workloads:    []string{"milc", "lbm"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tbl)
}

// A heterogeneous multiprogrammed mix: odd cores run mcf, even cores milc.
func ExampleOptions_mix() {
	r, err := silcfm.Run(silcfm.Options{
		Scheme:            silcfm.SILCFM,
		Mix:               []string{"milc", "mcf"},
		ScaleInstrByClass: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Workload) // "mix(milc,mcf)"
}
