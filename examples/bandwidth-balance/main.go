// Bandwidth balancing: the milc story (§III-E, §V-A). When the access rate
// would exceed 0.8, SILC-FM deliberately services a fraction of requests
// from far memory so the system uses NM and FM bandwidth together (the
// 4:1 bandwidth split makes 0.8 the ideal operating point). This example
// contrasts SILC-FM with bypassing on and off.
//
//	go run ./examples/bandwidth-balance
package main

import (
	"fmt"
	"log"

	"silcfm"
)

func main() {
	const wl = "milc" // access rate pushes past 0.8 on this workload

	run := func(bypass bool) *silcfm.Report {
		f := silcfm.FullFeatures()
		f.Bypass = bypass
		r, err := silcfm.Run(silcfm.Options{
			Scheme:            silcfm.SILCFM,
			Workload:          wl,
			InstrPerCore:      1_000_000,
			ScaleInstrByClass: true,
			SILC:              &f,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	base, err := silcfm.Run(silcfm.Options{
		Scheme:            silcfm.Baseline,
		Workload:          wl,
		InstrPerCore:      1_000_000,
		ScaleInstrByClass: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	off := run(false)
	on := run(true)

	fmt.Printf("%-18s %12s %9s %12s %10s\n", "configuration", "cycles", "speedup", "NM fraction", "bypassed")
	fmt.Printf("%-18s %12d %8.2fx %12.3f %10d\n", "bypass off", off.Cycles, off.SpeedupOver(base), off.NMDemandFraction, off.BypassedAccesses)
	fmt.Printf("%-18s %12d %8.2fx %12.3f %10d\n", "bypass on", on.Cycles, on.SpeedupOver(base), on.NMDemandFraction, on.BypassedAccesses)

	fmt.Printf("\nideal NM share of demand bandwidth for a 4:1 system: 0.800\n")
	fmt.Printf("with bypassing, %d requests were served from otherwise-idle FM\n", on.BypassedAccesses)
}
