// Capacity sweep: a miniature of Figure 9 (§V-C). The NM:FM capacity ratio
// sweeps from 1/16 to 1/4; SILC-FM's locking and associativity keep its
// advantage at small NM sizes where direct-mapped CAMEO suffers conflicts.
//
//	go run ./examples/capacity-sweep
package main

import (
	"fmt"
	"log"

	"silcfm"
)

func main() {
	const (
		wl = "milc"
		fm = 512 << 20
	)
	schemes := []silcfm.Scheme{silcfm.CAMEO, silcfm.SILCFM}

	fmt.Printf("NM:FM capacity sweep on %s (FM fixed at 512 MiB)\n\n", wl)
	fmt.Printf("%8s", "NM")
	for _, s := range schemes {
		fmt.Printf(" %8s", s)
	}
	fmt.Println()

	for _, den := range []uint64{16, 8, 4} {
		nm := uint64(fm / den)
		base, err := silcfm.Run(silcfm.Options{
			Scheme: silcfm.Baseline, Workload: wl,
			InstrPerCore: 600_000, ScaleInstrByClass: true,
			NMCapacity: nm, FMCapacity: fm,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5d MB", nm>>20)
		for _, s := range schemes {
			r, err := silcfm.Run(silcfm.Options{
				Scheme: s, Workload: wl,
				InstrPerCore: 600_000, ScaleInstrByClass: true,
				NMCapacity: nm, FMCapacity: fm,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %7.2fx", r.SpeedupOver(base))
		}
		fmt.Println()
	}
	fmt.Println("\nlarger NM lifts every scheme; SILC-FM holds its lead at 1/16.")
}
