// Hot-set shift: the gemsFDTD story (§V-B). gems has many short-lived hot
// pages; an epoch-based OS scheme migrates them only at epoch boundaries,
// by which time they may no longer be hot, while SILC-FM's hardware
// swapping and anytime locking react immediately.
//
//	go run ./examples/hotset-shift
package main

import (
	"fmt"
	"log"

	"silcfm"
)

func main() {
	const wl = "gems" // short-lived hot pages (PhaseRefs is small)

	fmt.Printf("workload %s: hot set rotates every ~120k references\n\n", wl)

	run := func(s silcfm.Scheme) *silcfm.Report {
		r, err := silcfm.Run(silcfm.Options{
			Scheme:            s,
			Workload:          wl,
			InstrPerCore:      1_000_000,
			ScaleInstrByClass: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	base := run(silcfm.Baseline)
	hma := run(silcfm.HMA)
	silc := run(silcfm.SILCFM)

	fmt.Printf("%-22s %12s %9s %12s\n", "scheme", "cycles", "speedup", "access rate")
	for _, r := range []*silcfm.Report{hma, silc} {
		fmt.Printf("%-22s %12d %8.2fx %12.3f\n", r.Scheme, r.Cycles, r.SpeedupOver(base), r.AccessRate)
	}

	fmt.Printf("\nepoch-based migrations: %d (each waits for an epoch boundary)\n", hma.Migrations)
	fmt.Printf("SILC-FM subblock swaps: %d in / %d out, %d locks (no epochs)\n",
		silc.SwapsIn, silc.SwapsOut, silc.Locks)
	if silc.SpeedupOver(base) > hma.SpeedupOver(base) {
		fmt.Println("\nSILC-FM tracks the moving hot set; the epoch scheme lags it.")
	}
}
