// Quickstart: simulate SILC-FM against the no-HBM baseline on one workload
// and print the paper's figure of merit.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"silcfm"
)

func main() {
	const wl = "milc"

	fmt.Printf("simulating %s on the Table II machine (this takes a minute)...\n\n", wl)

	base, err := silcfm.Run(silcfm.Options{
		Scheme:       silcfm.Baseline,
		Workload:     wl,
		InstrPerCore: 1_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	silc, err := silcfm.Run(silcfm.Options{
		Scheme:       silcfm.SILCFM,
		Workload:     wl,
		InstrPerCore: 1_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("no-NM baseline:  %12d cycles\n", base.Cycles)
	fmt.Printf("SILC-FM:         %12d cycles\n", silc.Cycles)
	fmt.Printf("speedup:         %.2fx\n\n", silc.SpeedupOver(base))
	fmt.Printf("access rate:     %.3f of LLC misses serviced from near memory\n", silc.AccessRate)
	fmt.Printf("NM demand share: %.3f (bypass targets 0.8)\n", silc.NMDemandFraction)
	fmt.Printf("locked blocks:   %d locks, %d unlocks\n", silc.Locks, silc.Unlocks)
	fmt.Printf("energy-delay:    %.2fx of baseline\n", silc.EDP/base.EDP)
}
