package silcfm

import (
	"silcfm/internal/config"
	"silcfm/internal/harness"
	"silcfm/internal/stats"
)

// ExperimentOptions sizes a paper-experiment sweep.
type ExperimentOptions struct {
	// InstrPerCore is the base per-core instruction target (default 1M),
	// always scaled per workload class.
	InstrPerCore uint64
	// Workloads restricts the sweep (default: all 14 of Table III).
	Workloads []string
	// Parallelism caps concurrent simulations (default: GOMAXPROCS).
	Parallelism int
	// Cores / NMCapacity / FMCapacity override the Table II machine.
	Cores      int
	NMCapacity uint64
	FMCapacity uint64
	// FootprintScaleDen divides workload footprints (see Options).
	FootprintScaleDen int
	Seed              int64
}

func (o ExperimentOptions) expConfig() harness.ExpConfig {
	m := config.Default()
	if o.Cores > 0 {
		m.Cores = o.Cores
	}
	if o.NMCapacity > 0 {
		m.NM = config.HBM(o.NMCapacity)
	}
	if o.FMCapacity > 0 {
		m.FM = config.DDR3(o.FMCapacity)
	}
	if o.Seed != 0 {
		m.Seed = o.Seed
	}
	cfg := harness.ExpConfig{
		Machine:      m,
		InstrPerCore: o.InstrPerCore,
		Workloads:    o.Workloads,
		Parallelism:  o.Parallelism,
	}
	if o.FootprintScaleDen > 1 {
		cfg.FootScaleNum, cfg.FootScaleDen = 1, o.FootprintScaleDen
	}
	return cfg
}

// Table mirrors one rendered experiment table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	text    string
	csv     string
}

// String renders the table with aligned columns.
func (t *Table) String() string { return t.text }

// CSV renders the table as comma-separated values (header row first).
func (t *Table) CSV() string { return t.csv }

// Figure6 regenerates the paper's feature-breakdown figure: per-workload
// speedups over the no-NM baseline for Random placement and for SILC-FM as
// swap, locking, associativity and bypassing are enabled in turn.
func Figure6(o ExperimentOptions) (*Table, error) {
	_, tbl, err := harness.Figure6(o.expConfig())
	if err != nil {
		return nil, err
	}
	return wrap(tbl), nil
}

// Figure7 regenerates the scheme-comparison figure (rand, hma, cam, camp,
// pom, silc speedups over the no-NM baseline).
func Figure7(o ExperimentOptions) (*Table, error) {
	_, tbl, err := harness.Figure7(o.expConfig())
	if err != nil {
		return nil, err
	}
	return wrap(tbl), nil
}

// Figure8 regenerates the demand-bandwidth-split figure: the fraction of
// demand bytes serviced from NM per scheme (ideal 0.8 for the 4:1 machine).
func Figure8(o ExperimentOptions) (*Table, error) {
	sw, _, err := harness.Figure7(o.expConfig())
	if err != nil {
		return nil, err
	}
	return wrap(harness.Figure8(sw)), nil
}

// Figure9 regenerates the capacity-sensitivity figure: geometric-mean
// speedups at NM = FM/16, FM/8 and FM/4.
func Figure9(o ExperimentOptions) (*Table, error) {
	tbl, _, err := harness.Figure9(o.expConfig())
	if err != nil {
		return nil, err
	}
	return wrap(tbl), nil
}

// TableIII reports each workload's measured MPKI class and footprint.
func TableIII(o ExperimentOptions) (*Table, error) {
	tbl, _, err := harness.TableIII(o.expConfig())
	if err != nil {
		return nil, err
	}
	return wrap(tbl), nil
}

// Headline summarizes the paper's abstract-level numbers: the per-feature
// improvement stack, the gain over the best alternative scheme, and the
// EDP delta.
type Headline struct {
	SwapOverStatic  float64 // paper: +55%
	LockIncrement   float64 // paper: +11%
	AssocIncrement  float64 // paper: +8%
	BypassIncrement float64 // paper: +8%
	TotalOverStatic float64 // paper: +82%
	OverBestAlt     float64 // paper: +36%
	BestAlt         string
	EDPReduction    float64 // paper: 13%
	Text            string
}

// ComputeHeadline runs the Figure 6 and Figure 7 sweeps and derives the
// headline numbers.
func ComputeHeadline(o ExperimentOptions) (*Headline, error) {
	cfg := o.expConfig()
	f6, _, err := harness.Figure6(cfg)
	if err != nil {
		return nil, err
	}
	f7, _, err := harness.Figure7(cfg)
	if err != nil {
		return nil, err
	}
	h := harness.ComputeHeadline(f6, f7)
	return &Headline{
		SwapOverStatic:  h.SwapOverStatic,
		LockIncrement:   h.LockIncrement,
		AssocIncrement:  h.AssocIncrement,
		BypassIncrement: h.BypassIncrement,
		TotalOverStatic: h.TotalOverStatic,
		OverBestAlt:     h.OverBestAlt,
		BestAlt:         h.BestAlt,
		EDPReduction:    h.EDPReduction,
		Text:            h.String(),
	}, nil
}

func wrap(t *stats.Table) *Table {
	return &Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows, text: t.String(), csv: t.CSV()}
}
