module silcfm

go 1.22
