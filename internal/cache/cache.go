// Package cache implements the on-chip SRAM cache hierarchy of Table II:
// per-core private L1 data caches and one shared L2 last-level cache,
// set-associative with true-LRU replacement and write-back/write-allocate
// semantics. The hierarchy's job in this reproduction is to filter the
// reference stream into the LLC-miss stream that drives the flat-memory
// schemes, and to account MPKI (Table III).
//
// Timing is additive hit latency; SRAM port contention is not modeled, as
// in the paper's evaluation (which reports only cache latencies).
package cache

import (
	"fmt"
	"math/bits"

	"silcfm/internal/config"
)

// Cache is a single set-associative cache level. Line metadata is kept in
// parallel arrays (structure-of-arrays), with the valid bit folded into the
// stored tag word (tag<<1 | 1; 0 = invalid), so the per-access way scan is
// a single equality compare over one contiguous array — a 16-way lookup
// touches two cache lines of tags instead of eight lines of per-way
// structs.
type Cache struct {
	name     string
	sets     uint64
	ways     int
	lineSize uint64
	latency  uint64
	tags     []uint64 // sets*ways, row-major by set; tag<<1|1, 0 = invalid
	dirty    []bool   // sets*ways
	lru      []uint64 // larger = more recently used
	mru      []uint8  // per-set most-recently-touched way, probed first
	clock    uint64   // LRU timestamp source

	// lineShift/setShift/setMask are the shift-and-mask forms of the
	// lineSize/sets divisions (both enforced powers of two): index() runs
	// once per reference per level, and hardware divides dominate it
	// otherwise.
	lineShift uint
	setShift  uint
	setMask   uint64

	Hits, Misses, Writebacks uint64
}

// New builds a cache from its configuration.
func New(name string, cfg config.CacheConfig) *Cache {
	sets := cfg.Size / (cfg.LineSize * uint64(cfg.Ways))
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, sets))
	}
	if cfg.LineSize == 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic(fmt.Sprintf("cache %s: line size %d not a power of two", name, cfg.LineSize))
	}
	if cfg.Ways > 256 {
		panic(fmt.Sprintf("cache %s: %d ways overflows the uint8 MRU index", name, cfg.Ways))
	}
	n := sets * uint64(cfg.Ways)
	return &Cache{
		name:      name,
		sets:      sets,
		ways:      cfg.Ways,
		lineSize:  cfg.LineSize,
		latency:   cfg.LatencyCyc,
		tags:      make([]uint64, n),
		dirty:     make([]bool, n),
		lru:       make([]uint64, n),
		mru:       make([]uint8, sets),
		lineShift: uint(bits.TrailingZeros64(cfg.LineSize)),
		setShift:  uint(bits.TrailingZeros64(sets)),
		setMask:   sets - 1,
	}
}

// Latency returns the hit latency in CPU cycles.
func (c *Cache) Latency() uint64 { return c.latency }

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() uint64 { return c.sets }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	blk := addr >> c.lineShift
	return blk & c.setMask, blk >> c.setShift
}

// Access performs a read or write lookup. On a miss it allocates the line,
// evicting the LRU way. It returns hit, and for misses the evicted victim:
// wbAddr/wbDirty describe a valid victim line that must be written back if
// dirty.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victimAddr uint64, victimValid, victimDirty bool) {
	set, tag := c.index(addr)
	base := set * uint64(c.ways)
	c.clock++
	want := tag<<1 | 1

	// Lookup: probe the set's most-recently-touched way first. Hit streams
	// are heavily biased toward it (temporal locality), so the common case
	// is one compare instead of a way scan; a wrong guess just falls
	// through to the full scan below.
	if i := base + uint64(c.mru[set]); c.tags[i] == want {
		c.Hits++
		c.lru[i] = c.clock
		if write {
			c.dirty[i] = true
		}
		return true, 0, false, false
	}
	for i := base; i < base+uint64(c.ways); i++ {
		if c.tags[i] == want {
			c.Hits++
			c.lru[i] = c.clock
			c.mru[set] = uint8(i - base)
			if write {
				c.dirty[i] = true
			}
			return true, 0, false, false
		}
	}
	c.Misses++

	// Victim selection: invalid way first, else LRU.
	victim := base
	var oldest uint64 = ^uint64(0)
	for i := base; i < base+uint64(c.ways); i++ {
		if c.tags[i] == 0 {
			victim = i
			oldest = 0
			break
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	victimValid = c.tags[victim] != 0
	victimDirty = victimValid && c.dirty[victim]
	if victimValid {
		victimAddr = ((c.tags[victim]>>1)*c.sets + set) * c.lineSize
		if victimDirty {
			c.Writebacks++
		}
	}
	c.tags[victim] = want
	c.dirty[victim] = write
	c.lru[victim] = c.clock
	c.mru[set] = uint8(victim - base)
	return false, victimAddr, victimValid, victimDirty
}

// Probe reports whether addr is present without updating state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * uint64(c.ways)
	for i := base; i < base+uint64(c.ways); i++ {
		if c.tags[i] == tag<<1|1 {
			return true
		}
	}
	return false
}

// Invalidate drops addr if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	base := set * uint64(c.ways)
	for i := base; i < base+uint64(c.ways); i++ {
		if c.tags[i] == tag<<1|1 {
			d := c.dirty[i]
			c.tags[i] = 0
			c.dirty[i] = false
			return true, d
		}
	}
	return false, false
}

// MissRate returns misses / accesses.
func (c *Cache) MissRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Misses) / float64(t)
}

// Outcome describes where a hierarchy access was satisfied.
type Outcome int

const (
	HitL1 Outcome = iota
	HitL2
	MissLLC
)

func (o Outcome) String() string {
	switch o {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	default:
		return "memory"
	}
}

// Hierarchy ties per-core L1s to a shared L2 (the LLC). Physical addresses
// index both levels (the paper translates before the hierarchy; we do the
// same so multiprogrammed instances contend realistically in the shared
// LLC).
type Hierarchy struct {
	L1s []*Cache
	L2  *Cache
	// Writeback is invoked for dirty LLC victims; the memory system turns
	// it into an FM/NM write. Set by the owner before use.
	Writeback func(addr uint64)
}

// NewHierarchy builds the Table II hierarchy for n cores.
func NewHierarchy(n int, l1 config.CacheConfig, l2 config.CacheConfig) *Hierarchy {
	h := &Hierarchy{L2: New("L2", l2)}
	for i := 0; i < n; i++ {
		h.L1s = append(h.L1s, New(fmt.Sprintf("L1d%d", i), l1))
	}
	return h
}

// Access runs one reference from core through the hierarchy. It returns the
// outcome and the accumulated SRAM latency in CPU cycles. LLC misses still
// pay the full L1+L2 lookup latency before memory is consulted.
func (h *Hierarchy) Access(core int, addr uint64, write bool) (Outcome, uint64) {
	l1 := h.L1s[core]
	lat := l1.Latency()
	if hit, vAddr, vValid, vDirty := l1.Access(addr, write); hit {
		return HitL1, lat
	} else if vValid && vDirty {
		// Dirty L1 victim is absorbed by L2 (write-back).
		if h2, v2Addr, v2Valid, v2Dirty := h.L2.Access(vAddr, true); !h2 && v2Valid && v2Dirty {
			h.writeback(v2Addr)
		}
	}
	lat += h.L2.Latency()
	hit, vAddr, vValid, vDirty := h.L2.Access(addr, write)
	if !hit && vValid && vDirty {
		h.writeback(vAddr)
	}
	if hit {
		return HitL2, lat
	}
	return MissLLC, lat
}

func (h *Hierarchy) writeback(addr uint64) {
	if h.Writeback != nil {
		h.Writeback(addr)
	}
}
