// Package cache implements the on-chip SRAM cache hierarchy of Table II:
// per-core private L1 data caches and one shared L2 last-level cache,
// set-associative with true-LRU replacement and write-back/write-allocate
// semantics. The hierarchy's job in this reproduction is to filter the
// reference stream into the LLC-miss stream that drives the flat-memory
// schemes, and to account MPKI (Table III).
//
// Timing is additive hit latency; SRAM port contention is not modeled, as
// in the paper's evaluation (which reports only cache latencies).
package cache

import (
	"fmt"

	"silcfm/internal/config"
)

// line is one cache line's metadata.
type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // larger = more recently used
}

// Cache is a single set-associative cache level.
type Cache struct {
	name     string
	sets     uint64
	ways     int
	lineSize uint64
	latency  uint64
	lines    []line // sets*ways, row-major by set
	clock    uint64 // LRU timestamp source

	Hits, Misses, Writebacks uint64
}

// New builds a cache from its configuration.
func New(name string, cfg config.CacheConfig) *Cache {
	sets := cfg.Size / (cfg.LineSize * uint64(cfg.Ways))
	if sets == 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, sets))
	}
	return &Cache{
		name:     name,
		sets:     sets,
		ways:     cfg.Ways,
		lineSize: cfg.LineSize,
		latency:  cfg.LatencyCyc,
		lines:    make([]line, sets*uint64(cfg.Ways)),
	}
}

// Latency returns the hit latency in CPU cycles.
func (c *Cache) Latency() uint64 { return c.latency }

// Sets returns the number of sets (for tests).
func (c *Cache) Sets() uint64 { return c.sets }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	blk := addr / c.lineSize
	return blk % c.sets, blk / c.sets
}

// Access performs a read or write lookup. On a miss it allocates the line,
// evicting the LRU way. It returns hit, and for misses the evicted victim:
// wbAddr/wbDirty describe a valid victim line that must be written back if
// dirty.
func (c *Cache) Access(addr uint64, write bool) (hit bool, victimAddr uint64, victimValid, victimDirty bool) {
	set, tag := c.index(addr)
	base := set * uint64(c.ways)
	c.clock++

	// Lookup.
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+uint64(w)]
		if l.valid && l.tag == tag {
			c.Hits++
			l.lru = c.clock
			if write {
				l.dirty = true
			}
			return true, 0, false, false
		}
	}
	c.Misses++

	// Victim selection: invalid way first, else LRU.
	victim := 0
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+uint64(w)]
		if !l.valid {
			victim = w
			oldest = 0
			break
		}
		if l.lru < oldest {
			oldest = l.lru
			victim = w
		}
	}
	v := &c.lines[base+uint64(victim)]
	victimValid = v.valid
	victimDirty = v.valid && v.dirty
	if victimValid {
		victimAddr = (v.tag*c.sets + set) * c.lineSize
		if victimDirty {
			c.Writebacks++
		}
	}
	*v = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return false, victimAddr, victimValid, victimDirty
}

// Probe reports whether addr is present without updating state.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+uint64(w)]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr if present, returning whether it was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	base := set * uint64(c.ways)
	for w := 0; w < c.ways; w++ {
		l := &c.lines[base+uint64(w)]
		if l.valid && l.tag == tag {
			d := l.dirty
			l.valid = false
			l.dirty = false
			return true, d
		}
	}
	return false, false
}

// MissRate returns misses / accesses.
func (c *Cache) MissRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Misses) / float64(t)
}

// Outcome describes where a hierarchy access was satisfied.
type Outcome int

const (
	HitL1 Outcome = iota
	HitL2
	MissLLC
)

func (o Outcome) String() string {
	switch o {
	case HitL1:
		return "L1"
	case HitL2:
		return "L2"
	default:
		return "memory"
	}
}

// Hierarchy ties per-core L1s to a shared L2 (the LLC). Physical addresses
// index both levels (the paper translates before the hierarchy; we do the
// same so multiprogrammed instances contend realistically in the shared
// LLC).
type Hierarchy struct {
	L1s []*Cache
	L2  *Cache
	// Writeback is invoked for dirty LLC victims; the memory system turns
	// it into an FM/NM write. Set by the owner before use.
	Writeback func(addr uint64)
}

// NewHierarchy builds the Table II hierarchy for n cores.
func NewHierarchy(n int, l1 config.CacheConfig, l2 config.CacheConfig) *Hierarchy {
	h := &Hierarchy{L2: New("L2", l2)}
	for i := 0; i < n; i++ {
		h.L1s = append(h.L1s, New(fmt.Sprintf("L1d%d", i), l1))
	}
	return h
}

// Access runs one reference from core through the hierarchy. It returns the
// outcome and the accumulated SRAM latency in CPU cycles. LLC misses still
// pay the full L1+L2 lookup latency before memory is consulted.
func (h *Hierarchy) Access(core int, addr uint64, write bool) (Outcome, uint64) {
	l1 := h.L1s[core]
	lat := l1.Latency()
	if hit, vAddr, vValid, vDirty := l1.Access(addr, write); hit {
		return HitL1, lat
	} else if vValid && vDirty {
		// Dirty L1 victim is absorbed by L2 (write-back).
		if h2, v2Addr, v2Valid, v2Dirty := h.L2.Access(vAddr, true); !h2 && v2Valid && v2Dirty {
			h.writeback(v2Addr)
		}
	}
	lat += h.L2.Latency()
	hit, vAddr, vValid, vDirty := h.L2.Access(addr, write)
	if !hit && vValid && vDirty {
		h.writeback(vAddr)
	}
	if hit {
		return HitL2, lat
	}
	return MissLLC, lat
}

func (h *Hierarchy) writeback(addr uint64) {
	if h.Writeback != nil {
		h.Writeback(addr)
	}
}
