package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"silcfm/internal/config"
)

func small() config.CacheConfig {
	return config.CacheConfig{Size: 1 << 12, Ways: 4, LatencyCyc: 4, LineSize: 64, WriteBack: true}
}

func TestHitAfterMiss(t *testing.T) {
	c := New("t", small())
	if hit, _, _, _ := c.Access(0x1000, false); hit {
		t.Fatal("cold access hit")
	}
	if hit, _, _, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access missed")
	}
	if hit, _, _, _ := c.Access(0x1038, false); !hit {
		t.Fatal("same-line access missed")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New("t", small()) // 16 sets, 4 ways
	sets := c.Sets()
	// Fill one set's 4 ways.
	for w := uint64(0); w < 4; w++ {
		c.Access(w*sets*64, false)
	}
	// Touch way 0 to make way 1 the LRU.
	c.Access(0, false)
	// Insert a 5th line: must evict way 1's line (tag 1).
	_, vAddr, vValid, _ := c.Access(4*sets*64, false)
	if !vValid {
		t.Fatal("no victim on full set")
	}
	if vAddr != 1*sets*64 {
		t.Fatalf("evicted %x, want %x (LRU)", vAddr, sets*64)
	}
	if !c.Probe(0) || c.Probe(1*sets*64) {
		t.Fatal("wrong line evicted")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New("t", small())
	sets := c.Sets()
	c.Access(0, true) // dirty
	for w := uint64(1); w < 4; w++ {
		c.Access(w*sets*64, false)
	}
	_, vAddr, vValid, vDirty := c.Access(4*sets*64, false)
	if !vValid || !vDirty || vAddr != 0 {
		t.Fatalf("victim addr=%x valid=%v dirty=%v, want dirty addr 0", vAddr, vValid, vDirty)
	}
	if c.Writebacks != 1 {
		t.Fatalf("Writebacks = %d", c.Writebacks)
	}
}

func TestCleanVictimNotDirty(t *testing.T) {
	c := New("t", small())
	sets := c.Sets()
	for w := uint64(0); w < 5; w++ {
		_, _, _, vDirty := c.Access(w*sets*64, false)
		if vDirty {
			t.Fatal("clean line reported dirty")
		}
	}
}

func TestInvalidate(t *testing.T) {
	c := New("t", small())
	c.Access(0x40, true)
	present, dirty := c.Invalidate(0x40)
	if !present || !dirty {
		t.Fatalf("Invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Probe(0x40) {
		t.Fatal("line still present after invalidate")
	}
	if p, _ := c.Invalidate(0x9999940); p {
		t.Fatal("invalidate of absent line reported present")
	}
}

func TestVictimAddressReconstruction(t *testing.T) {
	// Property: the victim address reported on eviction equals the address
	// originally inserted (line-aligned).
	f := func(raw []uint32) bool {
		c := New("t", small())
		inserted := map[uint64]bool{}
		for _, r := range raw {
			addr := uint64(r) &^ 63
			hit, vAddr, vValid, _ := c.Access(addr, false)
			if !hit {
				if vValid {
					if !inserted[vAddr] {
						return false // evicted something never inserted
					}
					delete(inserted, vAddr)
				}
				inserted[addr] = true
			}
		}
		// Everything believed resident must probe true.
		for a := range inserted {
			if !c.Probe(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMissRate(t *testing.T) {
	c := New("t", small())
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	if got := c.MissRate(); got != 0.25 {
		t.Fatalf("MissRate = %v, want 0.25", got)
	}
	var empty Cache
	if empty.MissRate() != 0 {
		t.Fatal("empty miss rate")
	}
}

func TestHierarchyOutcomes(t *testing.T) {
	h := NewHierarchy(2,
		config.CacheConfig{Size: 1 << 10, Ways: 2, LatencyCyc: 4, LineSize: 64, WriteBack: true},
		config.CacheConfig{Size: 1 << 14, Ways: 4, LatencyCyc: 11, LineSize: 64, WriteBack: true})
	out, lat := h.Access(0, 0x1000, false)
	if out != MissLLC {
		t.Fatalf("cold access outcome = %v", out)
	}
	if lat != 15 {
		t.Fatalf("miss latency = %d, want 4+11", lat)
	}
	out, lat = h.Access(0, 0x1000, false)
	if out != HitL1 || lat != 4 {
		t.Fatalf("second access: %v lat %d", out, lat)
	}
	// Other core's L1 is cold, but shared L2 has the line.
	out, lat = h.Access(1, 0x1000, false)
	if out != HitL2 || lat != 15 {
		t.Fatalf("cross-core access: %v lat %d", out, lat)
	}
}

func TestHierarchyWritebackReachesMemory(t *testing.T) {
	l1 := config.CacheConfig{Size: 128, Ways: 1, LatencyCyc: 4, LineSize: 64, WriteBack: true}
	l2 := config.CacheConfig{Size: 256, Ways: 1, LatencyCyc: 11, LineSize: 64, WriteBack: true}
	h := NewHierarchy(1, l1, l2)
	var wb []uint64
	h.Writeback = func(addr uint64) { wb = append(wb, addr) }
	// Dirty a line, then stream conflicting lines through the tiny L2 to
	// force it out.
	h.Access(0, 0, true)
	for i := uint64(1); i < 16; i++ {
		h.Access(0, i*256, false) // L2 has 4 sets of 1 way: set 0 conflicts every 256B
	}
	found := false
	for _, a := range wb {
		if a == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirty line 0 never written back; wb=%v", wb)
	}
}

func TestHierarchyMPKIFiltering(t *testing.T) {
	// A working set fitting in L2 but not L1 must produce L2 hits, not LLC
	// misses, after warmup.
	h := NewHierarchy(1,
		config.CacheConfig{Size: 1 << 10, Ways: 2, LatencyCyc: 4, LineSize: 64, WriteBack: true},
		config.CacheConfig{Size: 1 << 16, Ways: 8, LatencyCyc: 11, LineSize: 64, WriteBack: true})
	rng := rand.New(rand.NewSource(3))
	// 32KB working set: fits in 64KB L2, not in 1KB L1.
	warm, miss := 0, 0
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(512)) * 64
		out, _ := h.Access(0, addr, false)
		if i >= 10000 {
			warm++
			if out == MissLLC {
				miss++
			}
		}
	}
	if miss != 0 {
		t.Fatalf("%d/%d warm accesses missed LLC for an L2-resident set", miss, warm)
	}
}

func TestPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two sets")
		}
	}()
	New("bad", config.CacheConfig{Size: 3 * 64, Ways: 1, LineSize: 64})
}

func BenchmarkCacheAccess(b *testing.B) {
	c := New("bench", config.CacheConfig{Size: 8 << 20, Ways: 16, LatencyCyc: 11, LineSize: 64, WriteBack: true})
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1<<26)) &^ 63
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&4095], i&7 == 0)
	}
}
