// Package config describes the simulated machine (paper Table II) and the
// parameters of every memory-organization scheme, at capacities scaled down
// proportionally so simulations finish in seconds rather than days. The
// NM:FM capacity ratio (1:4 by default), the HBM:DDR3 bandwidth ratio (4:1)
// and all timing relationships from the paper are preserved.
package config

import (
	"fmt"

	"silcfm/internal/memunits"
)

// DRAMTiming holds per-device timing parameters in *memory bus* cycles,
// following Table II's tCAS-tRCD-tRP-tRAS row.
type DRAMTiming struct {
	TCAS uint64 // column access (read latency from open row)
	TRCD uint64 // row activate to column
	TRP  uint64 // precharge
	TRAS uint64 // minimum row-open time
	TWR  uint64 // write recovery
	// Refresh: every TREFI cycles all banks of a channel are unavailable
	// for TRFC cycles (0 disables refresh).
	TREFI uint64
	TRFC  uint64
}

// PagePolicy selects the row-buffer management policy.
type PagePolicy int

const (
	// OpenPage keeps rows open after access (Table II's policy).
	OpenPage PagePolicy = iota
	// ClosedPage auto-precharges after every access: no row hits, no row
	// conflicts. Provided for ablation studies.
	ClosedPage
)

// DRAMConfig describes one memory device per Table II.
type DRAMConfig struct {
	Name          string
	Capacity      uint64 // bytes
	BusMHz        uint64 // bus clock (DDR: data rate is 2x)
	BusWidthBits  uint64 // per channel
	Channels      int
	RanksPerChan  int
	BanksPerRank  int
	RowBufferSize uint64
	Policy        PagePolicy // row-buffer policy (default OpenPage)
	Timing        DRAMTiming
	ReadQueueLen  int // FR-FCFS scheduling window, per channel
	WriteQueueLen int

	// Energy model (per-device technology constants).
	ReadEnergyPJPerBit  float64
	WriteEnergyPJPerBit float64
	ActivateEnergyPJ    float64 // per row activation
	BackgroundMWPerChan float64 // static power per channel, milliwatts
}

// CPUFreqMHz is the core clock (Table II: 3.2 GHz).
const CPUFreqMHz = 3200

// MemCyclesToCPU converts memory-bus cycles to CPU cycles for a device.
func (d DRAMConfig) MemCyclesToCPU(mc uint64) uint64 {
	return mc * CPUFreqMHz / d.BusMHz
}

// BurstCPUCycles returns the CPU cycles the data bus is occupied
// transferring `bytes` on one channel (DDR: two beats per bus cycle).
func (d DRAMConfig) BurstCPUCycles(bytes uint64) uint64 {
	beats := (bytes*8 + d.BusWidthBits - 1) / d.BusWidthBits
	memCycles := (beats + 1) / 2 // DDR
	if memCycles == 0 {
		memCycles = 1
	}
	return d.MemCyclesToCPU(memCycles)
}

// PeakBandwidthGBs returns the theoretical peak bandwidth in GB/s.
func (d DRAMConfig) PeakBandwidthGBs() float64 {
	bytesPerSec := float64(d.BusMHz) * 1e6 * 2 * float64(d.BusWidthBits) / 8 * float64(d.Channels)
	return bytesPerSec / 1e9
}

// HBM returns the near-memory device configuration (Table II, HBM gen2,
// JEDEC 235A-derived timings) at the given capacity.
func HBM(capacity uint64) DRAMConfig {
	return DRAMConfig{
		Name:          "HBM",
		Capacity:      capacity,
		BusMHz:        800,
		BusWidthBits:  128,
		Channels:      8,
		RanksPerChan:  1,
		BanksPerRank:  8,
		RowBufferSize: 8 << 10,
		Timing:        DRAMTiming{TCAS: 9, TRCD: 9, TRP: 9, TRAS: 22, TWR: 10, TREFI: 6240, TRFC: 208},
		ReadQueueLen:  32,
		WriteQueueLen: 32,

		ReadEnergyPJPerBit:  4.0,
		WriteEnergyPJPerBit: 4.4,
		ActivateEnergyPJ:    900,
		BackgroundMWPerChan: 55,
	}
}

// DDR3 returns the far-memory device configuration (Table II, DDR3-1600,
// JEDEC/vendor datasheet timings) at the given capacity.
func DDR3(capacity uint64) DRAMConfig {
	return DRAMConfig{
		Name:          "DDR3",
		Capacity:      capacity,
		BusMHz:        800,
		BusWidthBits:  64,
		Channels:      4,
		RanksPerChan:  1,
		BanksPerRank:  8,
		RowBufferSize: 8 << 10,
		Timing:        DRAMTiming{TCAS: 11, TRCD: 11, TRP: 11, TRAS: 28, TWR: 12, TREFI: 6240, TRFC: 208},
		ReadQueueLen:  32,
		WriteQueueLen: 32,

		ReadEnergyPJPerBit:  19.5,
		WriteEnergyPJPerBit: 21.1,
		ActivateEnergyPJ:    2500,
		BackgroundMWPerChan: 90,
	}
}

// CacheConfig describes one cache level (Table II).
type CacheConfig struct {
	Size       uint64
	Ways       int
	LatencyCyc uint64
	LineSize   uint64
	WriteBack  bool
}

// CoreConfig describes the core model (Table II: 4-wide OoO, 128-entry ROB).
type CoreConfig struct {
	IssueWidth int // retired instructions per cycle when unblocked
	ROBSize    int // max instructions in flight past oldest outstanding miss
	MSHRs      int // max outstanding LLC misses per core
}

// SchemeName identifies a memory-organization scheme.
type SchemeName string

const (
	SchemeBaseline SchemeName = "base" // FM only (no die-stacked DRAM)
	SchemeRandom   SchemeName = "rand" // random static placement, no migration
	SchemeHMA      SchemeName = "hma"  // epoch-based OS migration
	SchemeCAMEO    SchemeName = "cam"  // 64B hardware swapping
	SchemeCAMEOP   SchemeName = "camp" // CAMEO + next-3-line prefetch
	SchemePoM      SchemeName = "pom"  // 2KB hardware migration
	SchemeSILCFM   SchemeName = "silc" // the paper's scheme
)

// AllSchemes lists every implemented scheme in the order the paper plots
// them (Figure 7).
var AllSchemes = []SchemeName{
	SchemeRandom, SchemeHMA, SchemeCAMEO, SchemeCAMEOP, SchemePoM, SchemeSILCFM,
}

// SILCFeatures selects which SILC-FM mechanisms are active, enabling the
// Figure 6 breakdown (swap -> +locking -> +associativity -> +bypass).
type SILCFeatures struct {
	Locking       bool
	Ways          int // NM set associativity: 1 (direct-mapped) .. 4
	Bypass        bool
	Predictor     bool // way/location predictor (latency optimization, §III-F)
	BitVecHistory bool // bit vector history table replay (§III-A)
}

// FullSILC enables every feature at the paper's chosen design point.
func FullSILC() SILCFeatures {
	return SILCFeatures{Locking: true, Ways: 4, Bypass: true, Predictor: true, BitVecHistory: true}
}

// SILCConfig holds SILC-FM tuning parameters (§III-B/C/E/F).
type SILCConfig struct {
	Features SILCFeatures

	HotThreshold     uint32  // counter value at which a block is locked (paper: 50)
	CounterBits      int     // aging counter width (paper: 6)
	AgingInterval    uint64  // memory accesses between right-shifts (paper: 1M)
	BypassTarget     float64 // access-rate ceiling (paper: 0.8 for 4:1 bandwidth)
	HistoryEntries   int     // bit vector history table entries
	PredictorEntries int     // way/location predictor entries (paper: 4K)
}

// DefaultSILC returns the paper's design point, scaled where noted.
func DefaultSILC() SILCConfig {
	return SILCConfig{
		Features:         FullSILC(),
		HotThreshold:     16, // paper: 50 at 16 B instructions; scaled with run length
		CounterBits:      6,
		AgingInterval:    1 << 19, // paper: 1M accesses; scaled with run length
		BypassTarget:     0.8,
		HistoryEntries:   1 << 16, // scaled from 1M with capacity
		PredictorEntries: 4096,
	}
}

// HMAConfig holds the epoch-based OS scheme's parameters (§II-C).
type HMAConfig struct {
	EpochCycles        uint64 // epoch length in CPU cycles
	HotThreshold       uint32 // per-page access count to mark hot
	PerPageOSOverhead  uint64 // CPU cycles per migrated page (PTE+TLB shootdown)
	EpochFixedOverhead uint64 // CPU cycles per epoch (sweep, context switch)
}

// DefaultHMA scales the paper's hundreds-of-ms epochs down with capacity.
func DefaultHMA() HMAConfig {
	return HMAConfig{
		EpochCycles:        4 << 20, // ~4.2M cycles (~1.3ms at 3.2GHz), scaled
		HotThreshold:       10,      // scaled with the shortened epoch
		PerPageOSOverhead:  250,     // PTE update + amortized, batched TLB shootdown
		EpochFixedOverhead: 50000,
	}
}

// PoMConfig holds Part-of-Memory parameters (§II-B).
type PoMConfig struct {
	MigrationThreshold uint32 // accesses before a 2KB block migrates
	Ways               int    // remap associativity within a congruence set
}

// DefaultPoM mirrors the PoM paper's threshold-triggered migration.
func DefaultPoM() PoMConfig { return PoMConfig{MigrationThreshold: 16, Ways: 1} }

// CAMEOConfig holds CAMEO parameters.
type CAMEOConfig struct {
	PrefetchLines int // 0 for original CAMEO; 3 for CAMEOP (paper §IV-A)
}

// Machine is the complete simulated system configuration.
type Machine struct {
	Cores    int
	Core     CoreConfig
	L1D      CacheConfig
	L2       CacheConfig // shared LLC
	NM       DRAMConfig
	FM       DRAMConfig
	PageSize uint64 // OS page size == large block size (2KB)
	Scheme   SchemeName
	SILC     SILCConfig
	HMA      HMAConfig
	PoM      PoMConfig
	CAMEO    CAMEOConfig
	Seed     int64
}

// Default returns the scaled Table II machine: 16 cores, 8MB shared LLC,
// NM = 128 MB HBM, FM = 512 MB DDR3 (1:4, as in the paper's main results).
func Default() Machine {
	return Machine{
		Cores:    16,
		Core:     CoreConfig{IssueWidth: 4, ROBSize: 128, MSHRs: 16},
		L1D:      CacheConfig{Size: 16 << 10, Ways: 4, LatencyCyc: 4, LineSize: 64, WriteBack: true},
		L2:       CacheConfig{Size: 8 << 20, Ways: 16, LatencyCyc: 11, LineSize: 64, WriteBack: true},
		NM:       HBM(128 << 20),
		FM:       DDR3(512 << 20),
		PageSize: memunits.BlockSize,
		Scheme:   SchemeSILCFM,
		SILC:     DefaultSILC(),
		HMA:      DefaultHMA(),
		PoM:      DefaultPoM(),
		CAMEO:    CAMEOConfig{},
		Seed:     1,
	}
}

// Small returns a reduced machine for fast unit/integration tests:
// 4 cores, NM 4 MB, FM 16 MB, 1 MB LLC.
func Small() Machine {
	m := Default()
	m.Cores = 4
	m.L2 = CacheConfig{Size: 512 << 10, Ways: 16, LatencyCyc: 11, LineSize: 64, WriteBack: true}
	m.NM = HBM(4 << 20)
	m.FM = DDR3(16 << 20)
	m.SILC.AgingInterval = 1 << 16
	m.SILC.HistoryEntries = 1 << 12
	m.HMA.EpochCycles = 1 << 18
	return m
}

// WithNMRatio returns a copy of m with NM capacity set to FM/den (Figure 9
// sweeps den = 16, 8, 4).
func (m Machine) WithNMRatio(den uint64) Machine {
	m.NM = HBM(m.FM.Capacity / den)
	return m
}

// TotalCapacity returns the OS-visible flat capacity (NM + FM for
// part-of-memory schemes; FM alone for the no-NM baseline).
func (m Machine) TotalCapacity() uint64 {
	if m.Scheme == SchemeBaseline {
		return m.FM.Capacity
	}
	return m.NM.Capacity + m.FM.Capacity
}

// Validate checks internal consistency.
func (m Machine) Validate() error {
	if m.Cores <= 0 {
		return fmt.Errorf("config: cores = %d", m.Cores)
	}
	if m.PageSize != memunits.BlockSize {
		return fmt.Errorf("config: page size %d != large block size %d", m.PageSize, memunits.BlockSize)
	}
	if m.NM.Capacity%memunits.BlockSize != 0 || m.FM.Capacity%memunits.BlockSize != 0 {
		return fmt.Errorf("config: capacities must be multiples of %d", memunits.BlockSize)
	}
	if m.FM.Capacity%m.NM.Capacity != 0 {
		return fmt.Errorf("config: FM capacity %d not a multiple of NM capacity %d", m.FM.Capacity, m.NM.Capacity)
	}
	if w := m.SILC.Features.Ways; w != 1 && w != 2 && w != 4 {
		return fmt.Errorf("config: SILC ways = %d, want 1, 2 or 4", w)
	}
	if m.SILC.BypassTarget <= 0 || m.SILC.BypassTarget > 1 {
		return fmt.Errorf("config: bypass target %v out of (0,1]", m.SILC.BypassTarget)
	}
	if m.Core.IssueWidth <= 0 || m.Core.ROBSize <= 0 || m.Core.MSHRs <= 0 {
		return fmt.Errorf("config: core parameters must be positive: %+v", m.Core)
	}
	for _, c := range []CacheConfig{m.L1D, m.L2} {
		if c.LineSize != memunits.SubblockSize {
			return fmt.Errorf("config: cache line size %d != subblock size", c.LineSize)
		}
		if c.Size%(c.LineSize*uint64(c.Ways)) != 0 {
			return fmt.Errorf("config: cache size %d not divisible into %d ways", c.Size, c.Ways)
		}
	}
	return nil
}
