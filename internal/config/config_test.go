package config

import (
	"math"
	"testing"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Small().Validate(); err != nil {
		t.Fatal(err)
	}
}

// Table II: HBM peak bandwidth must be 4x DDR3 peak bandwidth; this ratio is
// what makes the paper's 0.8 bypass target optimal.
func TestBandwidthRatioIs4to1(t *testing.T) {
	nm := HBM(128 << 20)
	fm := DDR3(512 << 20)
	ratio := nm.PeakBandwidthGBs() / fm.PeakBandwidthGBs()
	if math.Abs(ratio-4.0) > 1e-9 {
		t.Fatalf("NM:FM peak bandwidth ratio = %v, want 4.0", ratio)
	}
	// Absolute values per Table II: 8ch x 128b x 1600MT/s = 204.8 GB/s HBM,
	// 4ch x 64b x 1600MT/s = 51.2 GB/s DDR3.
	if math.Abs(nm.PeakBandwidthGBs()-204.8) > 0.1 {
		t.Errorf("HBM peak = %v GB/s, want 204.8", nm.PeakBandwidthGBs())
	}
	if math.Abs(fm.PeakBandwidthGBs()-51.2) > 0.1 {
		t.Errorf("DDR3 peak = %v GB/s, want 51.2", fm.PeakBandwidthGBs())
	}
}

func TestMemCyclesToCPU(t *testing.T) {
	d := DDR3(1 << 20)
	// 800 MHz bus under a 3200 MHz core: 1 mem cycle = 4 CPU cycles.
	if got := d.MemCyclesToCPU(1); got != 4 {
		t.Fatalf("MemCyclesToCPU(1) = %d, want 4", got)
	}
	if got := d.MemCyclesToCPU(11); got != 44 {
		t.Fatalf("MemCyclesToCPU(11) = %d, want 44", got)
	}
}

func TestBurstCycles(t *testing.T) {
	fm := DDR3(1 << 20)
	// 64B on a 64-bit DDR bus: 8 beats = 4 mem cycles = 16 CPU cycles.
	if got := fm.BurstCPUCycles(64); got != 16 {
		t.Fatalf("DDR3 64B burst = %d CPU cycles, want 16", got)
	}
	nm := HBM(1 << 20)
	// 64B on a 128-bit DDR bus: 4 beats = 2 mem cycles = 8 CPU cycles.
	if got := nm.BurstCPUCycles(64); got != 8 {
		t.Fatalf("HBM 64B burst = %d CPU cycles, want 8", got)
	}
	if got := nm.BurstCPUCycles(1); got == 0 {
		t.Fatal("burst of 1 byte must occupy at least one cycle")
	}
}

func TestNMLatencyAdvantage(t *testing.T) {
	nm, fm := HBM(1<<20), DDR3(1<<20)
	nmMiss := nm.MemCyclesToCPU(nm.Timing.TRP + nm.Timing.TRCD + nm.Timing.TCAS)
	fmMiss := fm.MemCyclesToCPU(fm.Timing.TRP + fm.Timing.TRCD + fm.Timing.TCAS)
	if nmMiss >= fmMiss {
		t.Fatalf("NM row-miss latency %d !< FM %d; paper: NM has slightly reduced latency", nmMiss, fmMiss)
	}
}

func TestWithNMRatio(t *testing.T) {
	m := Default()
	for _, den := range []uint64{16, 8, 4} {
		m2 := m.WithNMRatio(den)
		if m2.NM.Capacity*den != m2.FM.Capacity {
			t.Errorf("ratio 1/%d: NM=%d FM=%d", den, m2.NM.Capacity, m2.FM.Capacity)
		}
		if err := m2.Validate(); err != nil {
			t.Errorf("ratio 1/%d invalid: %v", den, err)
		}
	}
}

func TestTotalCapacity(t *testing.T) {
	m := Default()
	if m.TotalCapacity() != m.NM.Capacity+m.FM.Capacity {
		t.Fatal("part-of-memory schemes must expose NM+FM")
	}
	m.Scheme = SchemeBaseline
	if m.TotalCapacity() != m.FM.Capacity {
		t.Fatal("baseline exposes FM only")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Machine)
	}{
		{"zero cores", func(m *Machine) { m.Cores = 0 }},
		{"bad page size", func(m *Machine) { m.PageSize = 4096 }},
		{"NM not multiple of block", func(m *Machine) { m.NM.Capacity = 12345 }},
		{"FM not multiple of NM", func(m *Machine) { m.FM.Capacity = m.NM.Capacity*3 + 2048 }},
		{"bad ways", func(m *Machine) { m.SILC.Features.Ways = 3 }},
		{"bad bypass", func(m *Machine) { m.SILC.BypassTarget = 1.5 }},
		{"bad core", func(m *Machine) { m.Core.MSHRs = 0 }},
		{"bad line size", func(m *Machine) { m.L1D.LineSize = 32 }},
		{"indivisible cache", func(m *Machine) { m.L2.Size = 1<<20 + 64 }},
	}
	for _, c := range cases {
		m := Default()
		c.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", c.name)
		}
	}
}

func TestEnergyOrdering(t *testing.T) {
	nm, fm := HBM(1), DDR3(1)
	if nm.ReadEnergyPJPerBit >= fm.ReadEnergyPJPerBit {
		t.Fatal("HBM access energy must be below DDR3 (paper: die-stacked DRAM's low energy)")
	}
}
