package core

// bypassGovernor implements §III-E's bandwidth balancing: it tracks the NM
// access rate over a sliding window and, when the rate exceeds the target
// (0.8 for a 4:1 NM:FM bandwidth ratio), enables bypassing — new subblock
// swaps stop and non-resident requests are serviced straight from FM, so
// the otherwise-idle FM bandwidth contributes to system throughput. When
// the rate falls back under the target, bypassing turns off.
type bypassGovernor struct {
	enabled bool // feature flag (Figure 6's +bypass step)
	target  float64
	window  uint64

	misses uint64
	nmHits uint64
	active bool

	toggles uint64
}

func newBypassGovernor(enabled bool, target float64) *bypassGovernor {
	return &bypassGovernor{enabled: enabled, target: target, window: 2048}
}

// record notes one LLC miss and whether it was serviced from NM, and
// re-evaluates the bypass decision at window boundaries.
func (g *bypassGovernor) record(nm bool) {
	if !g.enabled {
		return
	}
	g.misses++
	if nm {
		g.nmHits++
	}
	if g.misses < g.window {
		return
	}
	rate := float64(g.nmHits) / float64(g.misses)
	next := rate > g.target
	if next != g.active {
		g.toggles++
	}
	g.active = next
	g.misses, g.nmHits = 0, 0
}

// bypassing reports whether new swaps are currently suppressed.
func (g *bypassGovernor) bypassing() bool { return g.enabled && g.active }
