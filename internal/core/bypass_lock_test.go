package core

import (
	"testing"

	"silcfm/internal/config"
)

// Coverage for the bypass-governor interactions fixed alongside the shadow
// checker: the swapped-out-home FM service is accounted as bypassed, and
// lock completion (which generates a burst of swap traffic) defers while
// the governor is balancing bandwidth.

// TestBypassedHomeAccessCounted: an NM-address access whose home subblock
// is swapped out and serviced from FM because of bypassing (not because of
// a lock) must count toward BypassedAccesses.
func TestBypassedHomeAccessCounted(t *testing.T) {
	r := newRig(nil)
	// Interleave FM block 0's subblock 3 into frame 0: home subblock 3 is
	// now swapped out to FM.
	r.access(1, fmBlockAddr(0, 3), false)
	r.c.gov.active = true

	st := r.sys.Stats
	preByp, preFM, preOut := st.BypassedAccesses, st.ServicedFM, st.SwapsOut
	r.access(2, uint64(3*64), false) // home subblock 3 of NM block 0
	if st.ServicedFM != preFM+1 {
		t.Fatal("swapped-out home access not FM-serviced under bypass")
	}
	if st.SwapsOut != preOut {
		t.Fatal("bypass did not suppress the swap-back")
	}
	if st.BypassedAccesses != preByp+1 {
		t.Fatalf("BypassedAccesses = %d, want %d (home-address bypass uncounted)",
			st.BypassedAccesses, preByp+1)
	}
}

// TestLockedHomeAccessNotCountedAsBypassed: the same FM service caused by a
// locked frame is lock behavior, not bypassing, and must not inflate the
// counter.
func TestLockedHomeAccessNotCountedAsBypassed(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) {
		c.HotThreshold = 3
		c.Features.Ways = 1
	})
	for i := 0; i < 4; i++ {
		r.access(1, fmBlockAddr(0, 0), false)
	}
	if r.c.LockedFrames() != 1 {
		t.Fatal("setup: not locked")
	}
	pre := r.sys.Stats.BypassedAccesses
	r.access(2, uint64(5*64), false) // home of the locked frame, FM-serviced
	if r.sys.Stats.BypassedAccesses != pre {
		t.Fatalf("locked-frame FM service counted as bypassed (%d -> %d)",
			pre, r.sys.Stats.BypassedAccesses)
	}
}

// TestRemapLockDeferredUnderBypass: crossing the hotness threshold while
// the governor is bypassing must not complete the lock (the completion
// swaps in every missing subblock); the lock lands on the next access after
// bypassing clears.
func TestRemapLockDeferredUnderBypass(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) { c.HotThreshold = 3 })
	r.access(1, fmBlockAddr(0, 0), false) // interleave, fmCtr=1
	r.access(1, fmBlockAddr(0, 0), false) // row 1, fmCtr=2
	r.c.gov.active = true

	preIn := r.sys.Stats.SwapsIn
	r.access(1, fmBlockAddr(0, 0), false) // fmCtr=3 crosses the threshold
	if r.c.LockedFrames() != 0 {
		t.Fatal("lock completed while bypassing")
	}
	if r.sys.Stats.SwapsIn != preIn {
		t.Fatal("lock-completion swaps issued while bypassing")
	}

	r.c.gov.active = false
	r.access(1, fmBlockAddr(0, 0), false)
	if r.c.LockedFrames() != 1 {
		t.Fatal("lock did not complete after bypassing cleared")
	}
	if r.sys.Stats.SwapsIn != preIn+31 { // the 31 missing subblocks
		t.Fatalf("lock completion swapped %d subblocks, want 31",
			r.sys.Stats.SwapsIn-preIn)
	}
}

// TestHomeLockDeferredUnderBypass: a hot home block over an interleaved
// frame needs a restore (swap traffic) before locking; that too defers
// while bypassing.
func TestHomeLockDeferredUnderBypass(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) { c.HotThreshold = 2 })
	r.access(1, fmBlockAddr(0, 0), false) // frame 0 interleaved, bit 0 set
	r.c.gov.active = true

	preOut := r.sys.Stats.SwapsOut
	r.access(2, uint64(5*64), false) // home resident, nmCtr=1
	r.access(2, uint64(5*64), false) // nmCtr=2 crosses the threshold
	if r.c.LockedFrames() != 0 {
		t.Fatal("home lock completed while bypassing")
	}
	if r.sys.Stats.SwapsOut != preOut {
		t.Fatal("restore issued while bypassing")
	}

	r.c.gov.active = false
	r.access(2, uint64(5*64), false)
	fr := &r.c.fs.frames[0]
	if !fr.locked || !fr.lockHome {
		t.Fatalf("home lock missing after bypass cleared: locked=%v home=%v",
			fr.locked, fr.lockHome)
	}
	if fr.remap != noRemap {
		t.Fatal("home lock kept the interleaved block")
	}
}
