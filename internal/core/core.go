// Package core implements SILC-FM, the paper's contribution (§III): a flat
// NM+FM organization that remaps at large-block (2 KB) granularity but
// moves data at subblock (64 B) granularity, interleaving subblocks of one
// FM block into an NM frame under a per-frame bit vector. On top of the
// base swap mechanism it provides the bit-vector history table (spatially
// batched swap-ins), activity-counter-driven locking of hot blocks, set
// associativity for the interleaved blocks, bandwidth-balancing bypass, and
// a way/location predictor that hides metadata latency.
//
// Remap metadata lives in near memory (one 64-byte line per set holding all
// four way entries, placed in rows beyond the data region so the paper's
// "separate channel" row-buffer isolation is preserved); see DESIGN.md for
// the fidelity notes.
package core

import (
	"silcfm/internal/config"
	"silcfm/internal/dram"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/stats"
)

// metaEntrySize is one way's remap entry (remap address, bit vector,
// counters, flags) as fetched on a predicted access.
const metaEntrySize = 16

// Controller is the SILC-FM scheme.
type Controller struct {
	sys *mem.System
	cfg config.SILCConfig

	nmBlocks uint64
	fs       *frameSet
	hist     *historyTable
	pred     *predictor
	gov      *bypassGovernor
	// meta is the dedicated metadata channel (§III-D: "the metadata is
	// stored in a separate channel to increase the NM row buffer hit rate
	// of accessing metadata"): one HBM channel holding one 64-byte line of
	// remap entries per set. Same-set metadata operations coalesce at the
	// controller the way demand misses coalesce in MSHRs.
	meta          *dram.Device
	metaBgPend    []bool // set -> metadata read queued
	metaWritePend []bool // set -> dirty-update already queued
	// freeMeta/freeDispatch recycle the metadata-completion and serialized
	//-dispatch continuations so the per-miss control flow allocates
	// nothing in steady state.
	freeMeta     *metaOp
	freeDispatch *dispatchOp
	// metaLatency is the serialized remap-entry check paid on the demand
	// path without a correct way/location prediction (one unloaded NM
	// metadata access; §III-F).
	metaLatency uint64

	ctrMax   uint32
	accesses uint64

	// Restores counts full interleaved-block restorations (victimization).
	Restores uint64
	// HistoryPrefetches counts subblocks swapped in by history replay.
	HistoryPrefetches uint64
}

// New builds a SILC-FM controller over sys.
func New(sys *mem.System, cfg config.SILCConfig) *Controller {
	nmBlocks := memunits.BlocksIn(sys.NMCap)
	ways := cfg.Features.Ways
	if ways == 0 {
		ways = 1
	}
	fs := newFrameSet(nmBlocks, ways)
	// One 64-byte line of remap entries per SET (all ways share the line),
	// not per frame: sizing by frame count would over-provision the channel
	// by the associativity factor and skew energy/row-buffer accounting.
	metaCfg := config.HBM(fs.sets * 64)
	metaCfg.Name = "HBM-meta"
	metaCfg.Channels = 1
	c := &Controller{
		sys:           sys,
		cfg:           cfg,
		nmBlocks:      nmBlocks,
		fs:            fs,
		hist:          newHistoryTable(cfg.HistoryEntries),
		pred:          newPredictor(cfg.PredictorEntries),
		gov:           newBypassGovernor(cfg.Features.Bypass, cfg.BypassTarget),
		meta:          dram.New(metaCfg, sys.Eng),
		metaBgPend:    make([]bool, fs.sets),
		metaWritePend: make([]bool, fs.sets),
		ctrMax:        counterMax(cfg.CounterBits),
	}
	c.metaLatency = c.meta.UnloadedReadLatency()
	return c
}

// MetaDeviceStats exposes the metadata channel's counters (for energy
// accounting and tests).
func (c *Controller) MetaDeviceStats() *dram.Stats { return c.meta.Stats() }

// MetaDevice exposes the dedicated metadata channel itself, so the
// conservation audit can fold its traffic into the NM level.
func (c *Controller) MetaDevice() *dram.Device { return c.meta }

// Name implements mem.Controller.
func (c *Controller) Name() string { return "silc" }

// nmLoc returns the device location of subblock idx of NM frame f.
func (c *Controller) nmLoc(f uint64, idx uint) mem.Location {
	return mem.Location{Level: stats.NM, DevAddr: memunits.SubblockAddr(f, idx)}
}

// fmHome returns the device location of subblock idx of flat FM block b.
func (c *Controller) fmHome(b uint64, idx uint) mem.Location {
	return mem.Location{Level: stats.FM, DevAddr: memunits.SubblockAddr(b-c.nmBlocks, idx)}
}

// Locate implements mem.Controller.
func (c *Controller) Locate(pa uint64) mem.Location {
	b := memunits.BlockOf(pa)
	idx := memunits.SubblockIndex(pa)
	if b < c.nmBlocks {
		fr := &c.fs.frames[b]
		if fr.remap != noRemap && fr.bits.Test(idx) {
			return c.fmHome(fr.remap, idx)
		}
		return c.nmLoc(b, idx)
	}
	s := c.fs.setOf(b)
	if f, ok := c.fs.findRemap(s, b); ok && c.fs.frames[f].bits.Test(idx) {
		return c.nmLoc(f, idx)
	}
	return c.fmHome(b, idx)
}

// Handle implements mem.Controller.
func (c *Controller) Handle(a *mem.Access) {
	st := c.sys.Stats
	st.LLCMisses++
	c.accesses++
	if c.cfg.AgingInterval > 0 && c.accesses%c.cfg.AgingInterval == 0 {
		c.ageAndUnlock()
	}

	b := memunits.BlockOf(a.PAddr)
	idx := memunits.SubblockIndex(a.PAddr)

	// Way/location prediction decides whether the demand path waits for
	// the serialized metadata fetch (§III-F).
	actualNM, actualWay := c.actualLocation(b, idx)
	serialized := true
	mispred := false
	if c.cfg.Features.Predictor {
		pNM, pWay, ok := c.pred.predict(a.PC, a.PAddr)
		if ok && pNM == actualNM && (!pNM || pWay == actualWay) {
			st.PredictorHits++
			serialized = false
		} else {
			st.PredictorMisses++
			mispred = true
		}
		c.pred.update(a.PC, a.PAddr, actualNM, actualWay)
	}

	if serialized {
		// Pay the serialized remap-entry fetch latency (§III-F: without a
		// correct prediction, the way entries are checked in series before
		// the data access; the predictor's saved time is this NM access
		// latency). The metadata line transfer itself rides the dedicated
		// channel off the demand queues. The stall is attributed as a
		// mispredict-retry penalty when a predictor miss caused it, else as
		// a plain metadata fetch (predictor disabled).
		span := stats.SpanMetaFetch
		if mispred {
			span = stats.SpanMispredict
		}
		a.AddSpan(span, c.metaLatency)
		c.readMeta(b, 64)
		op := c.freeDispatch
		if op == nil {
			op = &dispatchOp{c: c}
			op.fn = op.run
		} else {
			c.freeDispatch = op.next
		}
		op.a, op.b, op.idx, op.mispred = a, b, idx, mispred
		c.sys.Eng.After(c.metaLatency, op.fn)
		return
	}
	// Predicted: the verification fetch proceeds off the critical path.
	c.readMeta(b, metaEntrySize)
	c.dispatch(a, b, idx, mispred)
}

// pathOr classifies a demand under base unless the access paid the
// serialized metadata fetch after a predictor miss, which dominates.
func pathOr(base stats.DemandPath, mispred bool) stats.DemandPath {
	if mispred {
		return stats.PathMispredict
	}
	return base
}

// readMeta charges block b's set-metadata transfer to the dedicated
// channel. Reads of a set with one already in flight dedupe MSHR-style.
// The demand-path cost of a metadata fetch is the fixed serialized latency
// applied in Handle, not this queue.
func (c *Controller) readMeta(b uint64, n uint64) {
	s := c.fs.setOf(b)
	if c.metaBgPend[s] {
		return
	}
	c.metaBgPend[s] = true
	c.sys.Stats.AddBytes(stats.NM, stats.Metadata, n)
	c.meta.Submit(dram.Request{Addr: s * 64, Bytes: n, Background: true,
		Done: c.metaDone(s, c.metaBgPend)})
}

// metaOp is a pooled metadata-request completion: it clears the set's
// pending flag and recycles itself. fn is the method value bound once at
// pool-object creation.
type metaOp struct {
	c    *Controller
	s    uint64
	pend []bool
	fn   func()
	next *metaOp
}

func (op *metaOp) run() {
	c := op.c
	op.pend[op.s] = false
	op.pend = nil
	op.next = c.freeMeta
	c.freeMeta = op
}

// metaDone returns a pooled callback clearing pend[s] at completion.
func (c *Controller) metaDone(s uint64, pend []bool) func() {
	op := c.freeMeta
	if op == nil {
		op = &metaOp{c: c}
		op.fn = op.run
	} else {
		c.freeMeta = op.next
	}
	op.s, op.pend = s, pend
	return op.fn
}

// dispatchOp is the pooled continuation of a serialized-metadata dispatch
// (the After(metaLatency, ...) leg of Handle).
type dispatchOp struct {
	c       *Controller
	a       *mem.Access
	b       uint64
	idx     uint
	mispred bool
	fn      func()
	next    *dispatchOp
}

func (op *dispatchOp) run() {
	c, a, b, idx, mispred := op.c, op.a, op.b, op.idx, op.mispred
	op.a = nil
	op.next = c.freeDispatch
	c.freeDispatch = op
	c.dispatch(a, b, idx, mispred)
}

// actualLocation computes where the requested subblock resides and, when in
// NM, which way holds it.
func (c *Controller) actualLocation(b uint64, idx uint) (inNM bool, way uint8) {
	if b < c.nmBlocks {
		fr := &c.fs.frames[b]
		if fr.remap != noRemap && fr.bits.Test(idx) {
			return false, 0
		}
		return true, uint8(c.fs.wayOf(b))
	}
	s := c.fs.setOf(b)
	if f, ok := c.fs.findRemap(s, b); ok && c.fs.frames[f].bits.Test(idx) {
		return true, uint8(c.fs.wayOf(f))
	}
	return false, 0
}

// dispatch runs the Table I state machine for one access. mispred records
// whether the access already paid the serialized metadata fetch (for path
// latency classification).
func (c *Controller) dispatch(a *mem.Access, b uint64, idx uint, mispred bool) {
	if b < c.nmBlocks {
		c.handleNMAddress(a, b, idx, mispred)
	} else {
		c.handleFMAddress(a, b, idx, mispred)
	}
}

// handleNMAddress serves a request whose flat address belongs to the NM
// space (Table I rows with "NM Address = yes" plus the remap-match row for
// the home block).
func (c *Controller) handleNMAddress(a *mem.Access, b uint64, idx uint, mispred bool) {
	fr := &c.fs.frames[b]
	fr.lastUse = c.sys.Eng.Now()
	bump(&fr.nmCtr, c.ctrMax)
	st := c.sys.Stats

	swappedOut := fr.remap != noRemap && fr.bits.Test(idx)
	if !swappedOut {
		// Home subblock resident: service from NM.
		c.serviceNM(a, c.nmLoc(b, idx), pathOr(stats.PathNMHit, mispred))
		c.maybeLockHome(b)
		return
	}
	// The home subblock currently sits at the remapped block's FM home.
	if fr.locked || c.gov.bypassing() {
		// Locked frames keep the interleaved block pinned; under bypass no
		// state changes either. Service from FM.
		path := stats.PathFM
		if !fr.locked {
			st.BypassedAccesses++
			path = stats.PathBypass
		}
		c.serviceFM(a, c.fmHome(fr.remap, idx), pathOr(path, mispred))
		c.maybeLockHome(b)
		return
	}
	// Swap the home subblock back from FM (Table I: mismatch / bit 1 / NM
	// address). The interleaved block's subblock returns to its FM home.
	fr.bits.Clear(idx)
	st.SwapsOut++
	c.moveBetween(a, c.fmHome(fr.remap, idx), c.nmLoc(b, idx), pathOr(stats.PathSwap, mispred))
	c.writeMetaUpdate(c.fs.setOf(b))
	c.maybeLockHome(b)
}

// handleFMAddress serves a request whose flat address belongs to FM space.
func (c *Controller) handleFMAddress(a *mem.Access, b uint64, idx uint, mispred bool) {
	s := c.fs.setOf(b)
	st := c.sys.Stats
	f, found := c.fs.findRemap(s, b)
	if found {
		fr := &c.fs.frames[f]
		fr.lastUse = c.sys.Eng.Now()
		bump(&fr.fmCtr, c.ctrMax)
		if fr.bits.Test(idx) {
			// Table I row 1: remap match, bit set -> service from NM.
			c.serviceNM(a, c.nmLoc(f, idx), pathOr(stats.PathNMHit, mispred))
			c.maybeLockRemap(f)
			return
		}
		// Table I row 2: remap match, bit clear -> swap subblock from FM.
		if c.gov.bypassing() {
			st.BypassedAccesses++
			c.serviceFM(a, c.fmHome(b, idx), pathOr(stats.PathBypass, mispred))
			return
		}
		fr.bits.Set(idx)
		st.SwapsIn++
		c.moveBetween(a, c.fmHome(b, idx), c.nmLoc(f, idx), pathOr(stats.PathSwap, mispred))
		c.writeMetaUpdate(s)
		c.maybeLockRemap(f)
		return
	}

	// No frame in the set holds this block: service from FM, then decide
	// whether to start interleaving it (Table I rows 5/6 when a victim
	// must first be restored). The governor is consulted after recording
	// this miss, exactly as the service call ordered it before.
	c.gov.record(false)
	bypassed := c.gov.bypassing()
	path := stats.PathFM
	if bypassed {
		path = stats.PathBypass
	}
	c.sys.ServiceAccess(a, c.fmHome(b, idx), pathOr(path, mispred))
	if bypassed {
		st.BypassedAccesses++
		return
	}
	v, ok := c.fs.victim(s)
	if !ok {
		return // every way locked
	}
	vf := &c.fs.frames[v]
	if vf.remap != noRemap {
		c.restore(v)
		c.Restores++
	}
	c.fs.setRemap(v, b)
	vf.bits = 0
	vf.fmCtr = 1
	vf.lastUse = c.sys.Eng.Now()
	vf.firstPC = a.PC
	vf.firstAddr = a.PAddr

	// Swap in the requested subblock (demand already serviced from FM; the
	// residual traffic is the install + eviction exchange).
	vf.bits.Set(idx)
	st.SwapsIn++
	c.sys.ExchangeSubblocks(c.fmHome(b, idx), c.nmLoc(v, idx), nil)

	// Replay the bit vector history: previously useful subblocks swap in
	// together (§III-A), the scheme's spatial-locality edge over CAMEO.
	if c.cfg.Features.BitVecHistory {
		vec := c.hist.lookup(a.PC, a.PAddr)
		for i := uint(0); i < memunits.SubblocksPerBlock; i++ {
			if i != idx && vec.Test(i) {
				vf.bits.Set(i)
				st.SwapsIn++
				c.HistoryPrefetches++
				c.sys.ExchangeSubblocks(c.fmHome(b, i), c.nmLoc(v, i), nil)
			}
		}
	}
	c.writeMetaUpdate(s)
	c.maybeLockRemap(v)
}

// restore returns frame f's interleaved block to its FM home entirely,
// saving the bit vector in the history table.
func (c *Controller) restore(f uint64) {
	fr := &c.fs.frames[f]
	if fr.remap == noRemap {
		return
	}
	c.hist.save(fr.firstPC, fr.firstAddr, fr.bits)
	for i := uint(0); i < memunits.SubblocksPerBlock; i++ {
		if fr.bits.Test(i) {
			c.sys.Stats.SwapsOut++
			c.sys.ExchangeSubblocks(c.nmLoc(f, i), c.fmHome(fr.remap, i), nil)
		}
	}
	c.fs.setRemap(f, noRemap)
	fr.bits = 0
	fr.fmCtr = 0
	fr.locked = false
	fr.lockHome = false
}

// maybeLockRemap locks frame f's interleaved FM block when its counter
// crosses the hotness threshold, completing the large-block remap by
// swapping in all missing subblocks (§III-C).
func (c *Controller) maybeLockRemap(f uint64) {
	if !c.cfg.Features.Locking {
		return
	}
	fr := &c.fs.frames[f]
	if fr.locked || fr.remap == noRemap || fr.fmCtr < c.cfg.HotThreshold || fr.fmCtr < fr.nmCtr {
		return
	}
	// §III-E: bandwidth balancing suppresses new swaps, and completing a
	// lock pulls in every missing subblock — defer until bypassing clears
	// (the counters stay hot, so the next access retries).
	if c.gov.bypassing() {
		return
	}
	for i := uint(0); i < memunits.SubblocksPerBlock; i++ {
		if !fr.bits.Test(i) {
			fr.bits.Set(i)
			c.sys.Stats.SwapsIn++
			c.sys.ExchangeSubblocks(c.fmHome(fr.remap, i), c.nmLoc(f, i), nil)
		}
	}
	fr.locked = true
	fr.lockHome = false
	c.sys.Stats.Locks++
	c.sys.NoteLock(f, fr.remap, false)
	c.writeMetaUpdate(c.fs.setOf(f))
}

// maybeLockHome locks frame b to protect a hot home block from being
// victimized by interleaving; any swapped-out home subblocks are restored
// first.
func (c *Controller) maybeLockHome(b uint64) {
	if !c.cfg.Features.Locking {
		return
	}
	fr := &c.fs.frames[b]
	if fr.locked || fr.nmCtr < c.cfg.HotThreshold || fr.nmCtr < fr.fmCtr {
		return
	}
	if fr.remap != noRemap {
		// Restoring the interleaved block is swap traffic; defer the lock
		// while the governor is balancing bandwidth (§III-E).
		if c.gov.bypassing() {
			return
		}
		c.restore(b)
		c.Restores++
	}
	fr.locked = true
	fr.lockHome = true
	c.sys.Stats.Locks++
	c.sys.NoteLock(b, b, true)
	c.writeMetaUpdate(c.fs.setOf(b))
}

// ageAndUnlock right-shifts all activity counters and clears locks whose
// block is no longer hot. An unlocked interleaved block keeps all its
// subblocks resident (bits stay Full) and simply rejoins normal swapping
// (§III-C).
func (c *Controller) ageAndUnlock() {
	c.fs.age()
	if !c.cfg.Features.Locking {
		return
	}
	for i := range c.fs.frames {
		fr := &c.fs.frames[i]
		if !fr.locked {
			continue
		}
		hot := fr.fmCtr
		if fr.lockHome {
			hot = fr.nmCtr
		}
		// Unlock with hysteresis: a block must cool to half the locking
		// threshold before it rejoins swapping, avoiding lock/unlock churn
		// at the boundary.
		if hot < c.cfg.HotThreshold/2 {
			blk := fr.remap
			if fr.lockHome {
				blk = uint64(i)
			}
			fr.locked = false
			fr.lockHome = false
			c.sys.Stats.Unlocks++
			c.sys.NoteUnlock(uint64(i), blk)
		}
	}
}

// serviceNM completes a demand access from near memory.
func (c *Controller) serviceNM(a *mem.Access, loc mem.Location, path stats.DemandPath) {
	c.gov.record(true)
	c.sys.ServiceAccess(a, loc, path)
}

// serviceFM completes a demand access from far memory.
func (c *Controller) serviceFM(a *mem.Access, loc mem.Location, path stats.DemandPath) {
	c.gov.record(false)
	c.sys.ServiceAccess(a, loc, path)
}

// moveBetween services the demand at src and installs the data at dst,
// sending dst's previous contents back to src — the interleaved swap of
// Figure 2, with the demand transfer doubling as a migration transfer.
func (c *Controller) moveBetween(a *mem.Access, src, dst mem.Location, path stats.DemandPath) {
	c.gov.record(src.Level == stats.NM)
	c.sys.SwapAccess(a, src, dst, path)
}

// writeMetaUpdate charges the metadata write-back for a state change.
// Updates to a set with a write already queued merge into it.
func (c *Controller) writeMetaUpdate(s uint64) {
	if c.metaWritePend[s] {
		return
	}
	c.metaWritePend[s] = true
	c.sys.Stats.AddBytes(stats.NM, stats.Metadata, metaEntrySize)
	c.meta.Submit(dram.Request{Addr: s * 64, Bytes: metaEntrySize, Write: true,
		Done: c.metaDone(s, c.metaWritePend)})
}

// Bypassing reports whether the governor currently suppresses swaps.
func (c *Controller) Bypassing() bool { return c.gov.bypassing() }

// HistoryStats returns (stores, lookups, hits) of the bit vector history
// table.
func (c *Controller) HistoryStats() (stores, lookups, hits uint64) {
	return c.hist.stores, c.hist.lookups, c.hist.hits
}

// Gauges implements mem.GaugeProvider: the instantaneous scheme state the
// epoch sampler reports alongside counter deltas (§III mechanisms: frame
// residency, locking, the bypass governor, the history table, the
// dedicated metadata channel).
func (c *Controller) Gauges() []mem.Gauge {
	snap := c.Snapshot()
	used, total := c.hist.occupancy()
	_, lookups, hits := c.HistoryStats()
	histRate := 0.0
	if lookups > 0 {
		histRate = float64(hits) / float64(lookups)
	}
	bypassing := 0.0
	if c.gov.bypassing() {
		bypassing = 1
	}
	ms := c.meta.Stats()
	metaRowRate := 0.0
	if t := ms.RowHits + ms.RowMisses; t > 0 {
		metaRowRate = float64(ms.RowHits) / float64(t)
	}
	return []mem.Gauge{
		{Name: "locked_frames", Value: float64(snap.Locked)},
		{Name: "locked_home_frames", Value: float64(snap.LockedHome)},
		{Name: "interleaved_frames", Value: float64(snap.Interleaved)},
		{Name: "resident_subblocks", Value: float64(snap.ResidentSubblocks)},
		{Name: "mean_residency", Value: snap.MeanResidency()},
		{Name: "bypassing", Value: bypassing},
		{Name: "bypass_toggles", Value: float64(c.gov.toggles)},
		{Name: "history_occupancy", Value: float64(used) / float64(total)},
		{Name: "history_hit_rate", Value: histRate},
		{Name: "history_prefetches", Value: float64(c.HistoryPrefetches)},
		{Name: "restores", Value: float64(c.Restores)},
		{Name: "meta_row_hit_rate", Value: metaRowRate},
		{Name: "meta_queue_depth", Value: float64(c.meta.QueueDepth())},
	}
}

// LockState implements mem.LockProbe: the lock state of the NM frame
// backing pa's flat block. For an NM-range address that is the home frame;
// for an FM-range address it is the frame (if any) whose remap currently
// interleaves the block. Pure and O(associativity).
func (c *Controller) LockState(pa uint64) (locked, home bool) {
	b := memunits.BlockOf(pa)
	if b < c.nmBlocks {
		fr := &c.fs.frames[b]
		return fr.locked, fr.lockHome
	}
	if f, ok := c.fs.findRemap(c.fs.setOf(b), b); ok {
		fr := &c.fs.frames[f]
		return fr.locked, fr.lockHome
	}
	return false, false
}

// LockedFrames counts currently locked frames.
func (c *Controller) LockedFrames() int {
	n := 0
	for i := range c.fs.frames {
		if c.fs.frames[i].locked {
			n++
		}
	}
	return n
}
