package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
)

// testRig builds a small SILC-FM instance: NM 256KB (128 frames), FM 1MB
// (512 blocks); with 4 ways that is 32 sets.
type testRig struct {
	eng *sim.Engine
	sys *mem.System
	c   *Controller
}

func newRig(mut func(*config.SILCConfig)) *testRig {
	m := config.Small()
	m.NM = config.HBM(256 << 10)
	m.FM = config.DDR3(1 << 20)
	cfg := config.DefaultSILC()
	cfg.AgingInterval = 0 // no aging unless a test enables it
	cfg.HistoryEntries = 256
	if mut != nil {
		mut(&cfg)
	}
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	return &testRig{eng: eng, sys: sys, c: New(sys, cfg)}
}

// access issues one access and drains the engine.
func (r *testRig) access(pc, pa uint64, write bool) {
	r.c.Handle(&mem.Access{PC: pc, PAddr: pa, Write: write})
	r.eng.Run()
}

// nmBlocks in the rig.
const rigNMBlocks = (256 << 10) / memunits.BlockSize // 128

// fmBlockAddr returns the flat address of FM block i (0-based among FM
// blocks), subblock idx.
func fmBlockAddr(i int, idx uint) uint64 {
	return uint64(rigNMBlocks+uint64(i))*memunits.BlockSize + uint64(idx)*64
}

func TestTableIRow1And2_RemapMatch(t *testing.T) {
	r := newRig(nil)
	b := fmBlockAddr(0, 3)

	// First touch: no remap anywhere -> serviced from FM, interleaving
	// starts, subblock 3 swaps in.
	r.access(100, b, false)
	if r.sys.Stats.ServicedFM != 1 {
		t.Fatalf("first touch ServicedFM = %d", r.sys.Stats.ServicedFM)
	}
	if loc := r.c.Locate(b); loc.Level != stats.NM {
		t.Fatalf("subblock not swapped in: %+v", loc)
	}

	// Row 1: remap match, bit set -> service from NM.
	r.access(100, b, false)
	if r.sys.Stats.ServicedNM != 1 {
		t.Fatalf("row 1: ServicedNM = %d, want 1", r.sys.Stats.ServicedNM)
	}

	// Row 2: remap match, bit clear -> swap subblock from FM.
	b7 := fmBlockAddr(0, 7)
	pre := r.sys.Stats.SwapsIn
	r.access(100, b7, false)
	if r.sys.Stats.ServicedFM != 2 {
		t.Fatalf("row 2: ServicedFM = %d, want 2", r.sys.Stats.ServicedFM)
	}
	if r.sys.Stats.SwapsIn != pre+1 {
		t.Fatalf("row 2: SwapsIn = %d, want +1", r.sys.Stats.SwapsIn)
	}
	if loc := r.c.Locate(b7); loc.Level != stats.NM {
		t.Fatalf("row 2: subblock not resident after swap: %+v", loc)
	}
}

func TestTableIRow3And4_NMAddress(t *testing.T) {
	r := newRig(nil)
	// Interleave FM block 0 (set 0) into frame 0: subblock 3 swaps in, so
	// home block 0's subblock 3 moves to FM.
	fm := fmBlockAddr(0, 3)
	r.access(100, fm, false)

	homeSub3 := uint64(3 * 64) // NM block 0, subblock 3
	if loc := r.c.Locate(homeSub3); loc.Level != stats.FM {
		t.Fatalf("home subblock not swapped out: %+v", loc)
	}

	// Row 4: NM address, bit clear for that subblock -> service from NM.
	homeSub5 := uint64(5 * 64)
	r.access(100, homeSub5, false)
	if r.sys.Stats.ServicedNM != 1 {
		t.Fatalf("row 4: ServicedNM = %d", r.sys.Stats.ServicedNM)
	}

	// Row 3: NM address, bit set -> swap subblock back from FM.
	preOut := r.sys.Stats.SwapsOut
	r.access(100, homeSub3, false)
	if r.sys.Stats.SwapsOut != preOut+1 {
		t.Fatalf("row 3: SwapsOut = %d, want +1", r.sys.Stats.SwapsOut)
	}
	if loc := r.c.Locate(homeSub3); loc.Level != stats.NM {
		t.Fatalf("row 3: home subblock not restored: %+v", loc)
	}
	// And the FM block's subblock 3 went home.
	if loc := r.c.Locate(fm); loc.Level != stats.FM {
		t.Fatalf("row 3: interleaved subblock not returned: %+v", loc)
	}
}

func TestTableIRow5And6_RestoreOnVictim(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) { c.Features.Ways = 1; c.Features.BitVecHistory = false })
	// With 128 sets (direct-mapped), FM blocks i and i+128 share set i.
	a := fmBlockAddr(0, 1)
	b := fmBlockAddr(128, 2)
	r.access(100, a, false)
	if loc := r.c.Locate(a); loc.Level != stats.NM {
		t.Fatal("block A not interleaved")
	}
	// Request to B maps to the same frame with a mismatching remap ->
	// restore A, then interleave B.
	r.access(101, b, false)
	if r.c.Restores != 1 {
		t.Fatalf("Restores = %d, want 1", r.c.Restores)
	}
	if loc := r.c.Locate(a); loc.Level != stats.FM {
		t.Fatalf("A not fully restored: %+v", loc)
	}
	if loc := r.c.Locate(b); loc.Level != stats.NM {
		t.Fatalf("B not interleaved after restore: %+v", loc)
	}
}

func TestAssociativityAvoidsRestore(t *testing.T) {
	r := newRig(nil) // 4 ways, 32 sets
	// Four FM blocks in the same set (stride 32 blocks) can coexist.
	for k := 0; k < 4; k++ {
		r.access(uint64(100+k), fmBlockAddr(k*32, 0), false)
	}
	if r.c.Restores != 0 {
		t.Fatalf("restores with free ways: %d", r.c.Restores)
	}
	for k := 0; k < 4; k++ {
		if loc := r.c.Locate(fmBlockAddr(k*32, 0)); loc.Level != stats.NM {
			t.Fatalf("block %d not resident", k)
		}
	}
	// A fifth block forces an LRU restore.
	r.access(200, fmBlockAddr(4*32, 0), false)
	if r.c.Restores != 1 {
		t.Fatalf("fifth block: Restores = %d, want 1", r.c.Restores)
	}
	// LRU: block 0 (oldest untouched) must be the one evicted.
	if loc := r.c.Locate(fmBlockAddr(0, 0)); loc.Level != stats.FM {
		t.Fatal("LRU victim was not block 0")
	}
	if loc := r.c.Locate(fmBlockAddr(32, 0)); loc.Level != stats.NM {
		t.Fatal("non-LRU block was evicted")
	}
}

func TestLockingPinsHotBlock(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) {
		c.HotThreshold = 4
		c.Features.Ways = 1
	})
	hot := fmBlockAddr(0, 0)
	for i := 0; i < 5; i++ {
		r.access(100, hot, false)
	}
	if r.c.LockedFrames() != 1 {
		t.Fatalf("LockedFrames = %d, want 1", r.c.LockedFrames())
	}
	if r.sys.Stats.Locks != 1 {
		t.Fatalf("Locks = %d", r.sys.Stats.Locks)
	}
	// All 32 subblocks of the locked block are now in NM.
	for idx := uint(0); idx < 32; idx++ {
		if loc := r.c.Locate(fmBlockAddr(0, idx)); loc.Level != stats.NM {
			t.Fatalf("locked block subblock %d not resident", idx)
		}
	}
	// A conflicting block cannot displace it (all ways locked).
	conflict := fmBlockAddr(128, 0)
	pre := r.c.Restores
	r.access(200, conflict, false)
	if r.c.Restores != pre {
		t.Fatal("locked frame was restored")
	}
	if loc := r.c.Locate(hot); loc.Level != stats.NM {
		t.Fatal("locked block displaced")
	}
	if loc := r.c.Locate(conflict); loc.Level != stats.FM {
		t.Fatal("conflicting block interleaved into a locked frame")
	}
}

func TestUnlockAfterAging(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) {
		c.HotThreshold = 4
		c.AgingInterval = 16
		c.Features.Ways = 1
	})
	hot := fmBlockAddr(0, 0)
	for i := 0; i < 6; i++ {
		r.access(100, hot, false)
	}
	if r.c.LockedFrames() != 1 {
		t.Fatal("not locked")
	}
	// Advance the aging clock with cold traffic spread over many other
	// sets, so no new block crosses the threshold.
	for i := 0; i < 100; i++ {
		r.access(300, fmBlockAddr(1+i%32, 0), false)
	}
	if r.c.LockedFrames() != 0 {
		t.Fatalf("lock survived aging: counters should have decayed below threshold")
	}
	if r.sys.Stats.Unlocks != 1 {
		t.Fatalf("Unlocks = %d", r.sys.Stats.Unlocks)
	}
	// After unlocking, the block keeps all subblocks resident.
	if loc := r.c.Locate(hot); loc.Level != stats.NM {
		t.Fatal("unlocked block lost residency")
	}
}

func TestLockHomeProtectsNMBlock(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) {
		c.HotThreshold = 4
		c.Features.Ways = 1
	})
	home := uint64(0) // NM block 0, subblock 0
	for i := 0; i < 5; i++ {
		r.access(100, home, false)
	}
	if r.c.LockedFrames() != 1 {
		t.Fatal("hot home block not locked")
	}
	// FM block in the same set cannot interleave now.
	fm := fmBlockAddr(0, 3)
	r.access(200, fm, false)
	if loc := r.c.Locate(fm); loc.Level != stats.NM {
		// good: it stayed in FM
	} else {
		t.Fatal("interleaving into a home-locked frame")
	}
}

func TestBitVectorHistoryReplay(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) { c.Features.Ways = 1 })
	pc := uint64(0xBEEF)
	first := fmBlockAddr(0, 4)
	// Build up residency {4, 9, 20} for block 0.
	r.access(pc, first, false)
	r.access(pc, fmBlockAddr(0, 9), false)
	r.access(pc, fmBlockAddr(0, 20), false)
	// Evict block 0 by touching the conflicting block 128.
	r.access(500, fmBlockAddr(128, 0), false)
	if r.c.Restores != 1 {
		t.Fatal("expected eviction")
	}
	stores, _, _ := r.c.HistoryStats()
	if stores != 1 {
		t.Fatalf("history stores = %d", stores)
	}
	// Re-access block 0 with the same PC and first address: the history
	// vector brings 9 and 20 along immediately.
	pre := r.c.HistoryPrefetches
	r.access(pc, first, false)
	if r.c.HistoryPrefetches != pre+2 {
		t.Fatalf("HistoryPrefetches = %d, want +2", r.c.HistoryPrefetches)
	}
	for _, idx := range []uint{4, 9, 20} {
		if loc := r.c.Locate(fmBlockAddr(0, idx)); loc.Level != stats.NM {
			t.Fatalf("history subblock %d not resident", idx)
		}
	}
	if loc := r.c.Locate(fmBlockAddr(0, 5)); loc.Level != stats.FM {
		t.Fatal("never-used subblock was fetched")
	}
}

func TestHistoryDisabledFetchesOnlyDemand(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) {
		c.Features.Ways = 1
		c.Features.BitVecHistory = false
	})
	pc := uint64(0xBEEF)
	first := fmBlockAddr(0, 4)
	r.access(pc, first, false)
	r.access(pc, fmBlockAddr(0, 9), false)
	r.access(500, fmBlockAddr(128, 0), false)
	r.access(pc, first, false)
	if r.c.HistoryPrefetches != 0 {
		t.Fatal("history replay ran while disabled")
	}
	if loc := r.c.Locate(fmBlockAddr(0, 9)); loc.Level != stats.FM {
		t.Fatal("subblock 9 fetched without history")
	}
}

func TestBypassStopsSwaps(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) { c.Features.Ways = 1 })
	r.c.gov.window = 64
	// Drive the access rate to ~1.0 with a resident hot subblock.
	hot := fmBlockAddr(0, 0)
	r.access(1, hot, false)
	for i := 0; i < 200; i++ {
		r.access(1, hot, false)
	}
	if !r.c.Bypassing() {
		t.Fatalf("governor not bypassing at access rate %.2f", r.sys.Stats.AccessRate())
	}
	// A new FM block is serviced from FM without interleaving.
	other := fmBlockAddr(5, 0)
	preSwaps := r.sys.Stats.SwapsIn
	r.access(2, other, false)
	if loc := r.c.Locate(other); loc.Level != stats.NM {
		// stayed in FM as expected
	} else {
		t.Fatal("swap occurred under bypass")
	}
	if r.sys.Stats.SwapsIn != preSwaps {
		t.Fatal("SwapsIn grew under bypass")
	}
	if r.sys.Stats.BypassedAccesses == 0 {
		t.Fatal("bypassed accesses not counted")
	}
	// Resident data still serves from NM under bypass.
	pre := r.sys.Stats.ServicedNM
	r.access(1, hot, false)
	if r.sys.Stats.ServicedNM != pre+1 {
		t.Fatal("resident subblock not NM-serviced under bypass")
	}
}

func TestBypassDisabledFeature(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) { c.Features.Bypass = false })
	r.c.gov.window = 64
	hot := fmBlockAddr(0, 0)
	for i := 0; i < 200; i++ {
		r.access(1, hot, false)
	}
	if r.c.Bypassing() {
		t.Fatal("bypass active with feature disabled")
	}
}

func TestPredictorAccuracyCounted(t *testing.T) {
	r := newRig(nil)
	a := fmBlockAddr(0, 0)
	r.access(7, a, false) // cold predictor: miss
	for i := 0; i < 10; i++ {
		r.access(7, a, false) // stable: hits
	}
	if r.sys.Stats.PredictorHits < 9 {
		t.Fatalf("PredictorHits = %d", r.sys.Stats.PredictorHits)
	}
	if r.sys.Stats.PredictorMisses < 1 {
		t.Fatalf("PredictorMisses = %d", r.sys.Stats.PredictorMisses)
	}
}

func TestPredictorLatencyBenefit(t *testing.T) {
	// A predicted access must complete no later than a mispredicted one.
	lat := func(train bool) sim.Cycle {
		r := newRig(nil)
		a := fmBlockAddr(3, 0)
		if train {
			r.access(7, a, false)
			r.access(7, a, false)
		}
		start := r.eng.Now()
		var done sim.Cycle
		r.c.Handle(&mem.Access{PC: 7, PAddr: a, Done: func() { done = r.eng.Now() }})
		r.eng.Run()
		return done - start
	}
	trained, cold := lat(true), lat(false)
	if trained >= cold {
		t.Fatalf("trained latency %d !< cold latency %d", trained, cold)
	}
}

func TestWritePath(t *testing.T) {
	r := newRig(nil)
	a := fmBlockAddr(0, 0)
	done := false
	r.c.Handle(&mem.Access{PC: 1, PAddr: a, Write: true, Done: func() { done = true }})
	r.eng.Run()
	if !done {
		t.Fatal("write not acknowledged")
	}
	if loc := r.c.Locate(a); loc.Level != stats.NM {
		t.Fatal("written subblock not installed in NM")
	}
}

// The big one: any access sequence leaves the flat address space a
// bijection onto device locations, and remap entries stay unique per set.
func TestAuditAfterRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		r := newRig(func(c *config.SILCConfig) {
			c.HotThreshold = 6
			c.AgingInterval = 512
		})
		r.c.gov.window = 128
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 4000; i++ {
			pa := uint64(rng.Intn((256 << 10) + (1 << 20)))
			r.c.Handle(&mem.Access{
				PC:    uint64(rng.Intn(64)),
				PAddr: pa,
				Write: rng.Intn(4) == 0,
			})
			if i%256 == 0 {
				r.eng.Run()
			}
		}
		r.eng.Run()
		if err := mem.Audit(r.c, r.sys.NMCap, r.sys.FMCap); err != nil {
			t.Logf("audit: %v", err)
			return false
		}
		// No FM block may be remapped into two frames.
		seen := map[uint64]bool{}
		for i := range r.c.fs.frames {
			rm := r.c.fs.frames[i].remap
			if rm == noRemap {
				continue
			}
			if seen[rm] {
				t.Logf("block %d remapped twice", rm)
				return false
			}
			seen[rm] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectMappedVsAssociativeConflicts(t *testing.T) {
	// Two hot FM blocks in the same congruence set: direct-mapped SILC-FM
	// thrashes (restores), 4-way does not. This is the Figure 6
	// associativity story.
	run := func(ways int) uint64 {
		r := newRig(func(c *config.SILCConfig) {
			c.Features.Ways = ways
			c.Features.Locking = false
		})
		// Set count differs with ways; use blocks 0 and k*sets so they
		// collide in both geometries: with 128 frames, ways=1 -> 128 sets,
		// ways=4 -> 32 sets. Blocks 0 and 128 collide in both.
		for i := 0; i < 50; i++ {
			r.access(1, fmBlockAddr(0, uint(i%4)), false)
			r.access(2, fmBlockAddr(128, uint(i%4)), false)
		}
		return r.c.Restores
	}
	dm, assoc := run(1), run(4)
	if assoc != 0 {
		t.Fatalf("4-way restores = %d, want 0", assoc)
	}
	if dm < 50 {
		t.Fatalf("direct-mapped restores = %d, want heavy thrashing", dm)
	}
}

func TestMetadataTrafficCharged(t *testing.T) {
	r := newRig(nil)
	r.access(1, fmBlockAddr(0, 0), false)
	if r.sys.Stats.Bytes[stats.NM][stats.Metadata] == 0 {
		t.Fatal("no metadata bytes charged")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, float64) {
		r := newRig(func(c *config.SILCConfig) { c.AgingInterval = 256 })
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 3000; i++ {
			r.c.Handle(&mem.Access{
				PC:    uint64(rng.Intn(32)),
				PAddr: uint64(rng.Intn((256 << 10) + (1 << 20))),
			})
			if i%128 == 0 {
				r.eng.Run()
			}
		}
		r.eng.Run()
		return r.eng.Now(), r.sys.Stats.SwapsIn, r.sys.Stats.AccessRate()
	}
	t1, s1, a1 := run()
	t2, s2, a2 := run()
	if t1 != t2 || s1 != s2 || a1 != a2 {
		t.Fatalf("nondeterministic: (%d,%d,%f) vs (%d,%d,%f)", t1, s1, a1, t2, s2, a2)
	}
}

func BenchmarkSILCHandle(b *testing.B) {
	r := newRig(nil)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.c.Handle(&mem.Access{
			PC:    uint64(rng.Intn(64)),
			PAddr: uint64(rng.Intn((256 << 10) + (1 << 20))),
		})
		if i%1024 == 0 {
			r.eng.Run()
		}
	}
	r.eng.Run()
}
