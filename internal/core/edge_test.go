package core

import (
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
)

// Additional edge-case coverage for the Table I state machine and the
// feature interactions around it.

func TestWriteToSwappedOutHomeSubblock(t *testing.T) {
	r := newRig(nil)
	// Interleave FM block 0 subblock 3 into frame 0.
	r.access(1, fmBlockAddr(0, 3), false)
	homeSub3 := uint64(3 * 64)
	if loc := r.c.Locate(homeSub3); loc.Level != stats.FM {
		t.Fatal("setup: home subblock not swapped out")
	}
	// A write (LLC writeback) to the home subblock swaps it back and the
	// new data lands in NM.
	done := false
	r.c.Handle(&mem.Access{PC: 2, PAddr: homeSub3, Write: true, Done: func() { done = true }})
	r.eng.Run()
	if !done {
		t.Fatal("write not acknowledged")
	}
	if loc := r.c.Locate(homeSub3); loc.Level != stats.NM {
		t.Fatalf("home subblock not restored by write: %+v", loc)
	}
	if loc := r.c.Locate(fmBlockAddr(0, 3)); loc.Level != stats.FM {
		t.Fatal("interleaved subblock not evicted by write swap-back")
	}
}

func TestLockedFrameServesHomeFromFM(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) {
		c.HotThreshold = 3
		c.Features.Ways = 1
	})
	// Lock FM block 0 into frame 0.
	for i := 0; i < 4; i++ {
		r.access(1, fmBlockAddr(0, 0), false)
	}
	if r.c.LockedFrames() != 1 {
		t.Fatal("setup: not locked")
	}
	// A request to the home block must be serviced from FM (the full
	// remap sent it there) without unlocking or swapping.
	preSwaps := r.sys.Stats.SwapsOut
	pre := r.sys.Stats.ServicedFM
	r.access(2, uint64(5*64), false) // NM block 0, subblock 5
	if r.sys.Stats.ServicedFM != pre+1 {
		t.Fatal("home access under lock not FM-serviced")
	}
	if r.sys.Stats.SwapsOut != preSwaps {
		t.Fatal("locked frame swapped")
	}
	if r.c.LockedFrames() != 1 {
		t.Fatal("lock lost")
	}
}

func TestLockPreferenceFollowsHotterCounter(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) {
		c.HotThreshold = 5
		c.Features.Ways = 1
	})
	// Home block 0 much hotter than the interleaved block: the frame must
	// home-lock, evicting the interleaved subblocks.
	r.access(1, fmBlockAddr(0, 0), false) // interleave FM block once
	for i := 0; i < 6; i++ {
		r.access(2, uint64(1*64), false) // heat home block 0
	}
	fr := &r.c.fs.frames[0]
	if !fr.locked || !fr.lockHome {
		t.Fatalf("expected home lock: locked=%v lockHome=%v", fr.locked, fr.lockHome)
	}
	if fr.remap != noRemap {
		t.Fatal("home lock kept a remap")
	}
	if loc := r.c.Locate(fmBlockAddr(0, 0)); loc.Level != stats.FM {
		t.Fatal("interleaved subblock not restored on home lock")
	}
}

func TestBypassLeavesLockedBlocksServed(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) { c.HotThreshold = 3 })
	r.c.gov.window = 32
	// Lock a block, then force bypassing with hot resident traffic.
	for i := 0; i < 4; i++ {
		r.access(1, fmBlockAddr(0, 0), false)
	}
	for i := 0; i < 100; i++ {
		r.access(1, fmBlockAddr(0, uint(i%32)), false)
	}
	if !r.c.Bypassing() {
		t.Skip("access pattern did not trigger bypass at this scale")
	}
	pre := r.sys.Stats.ServicedNM
	r.access(1, fmBlockAddr(0, 7), false)
	if r.sys.Stats.ServicedNM != pre+1 {
		t.Fatal("locked block not NM-serviced under bypass")
	}
}

func TestVictimChurnBoundedByHistory(t *testing.T) {
	// Two conflicting blocks alternating: history replay re-fetches each
	// block's useful subblocks on re-interleave, so residency recovers in
	// one access instead of one per subblock.
	r := newRig(func(c *config.SILCConfig) { c.Features.Ways = 1 })
	pcA, pcB := uint64(0xA), uint64(0xB)
	firstA, firstB := fmBlockAddr(0, 0), fmBlockAddr(128, 0)
	// Warm block A with 4 subblocks, then B (evicts A), then A again.
	for _, idx := range []uint{0, 5, 9, 13} {
		r.access(pcA, fmBlockAddr(0, idx), false)
	}
	r.access(pcB, firstB, false)
	pre := r.c.HistoryPrefetches
	r.access(pcA, firstA, false)
	if r.c.HistoryPrefetches <= pre {
		t.Fatal("history replay did not fire on re-interleave")
	}
	for _, idx := range []uint{5, 9, 13} {
		if loc := r.c.Locate(fmBlockAddr(0, idx)); loc.Level != stats.NM {
			t.Fatalf("subblock %d not replayed", idx)
		}
	}
}

func TestAgingDisabledWhenIntervalZero(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) {
		c.AgingInterval = 0
		c.HotThreshold = 2
	})
	for i := 0; i < 4; i++ {
		r.access(1, fmBlockAddr(0, 0), false)
	}
	locked := r.c.LockedFrames()
	for i := 0; i < 2000; i++ {
		r.access(2, fmBlockAddr(1, 0), false)
	}
	if r.c.LockedFrames() < locked {
		t.Fatal("unlock happened with aging disabled")
	}
}

func TestMetaChannelTrafficScalesWithMisses(t *testing.T) {
	r := newRig(nil)
	for i := 0; i < 64; i++ {
		r.access(uint64(i), fmBlockAddr(i%8, uint(i%32)), false)
	}
	ms := r.c.MetaDeviceStats()
	if ms.Reads == 0 {
		t.Fatal("no metadata reads on the dedicated channel")
	}
	if ms.Writes == 0 {
		t.Fatal("no metadata write-backs")
	}
}

func TestDirectMappedDegenerateSingleSet(t *testing.T) {
	// NM of 2 blocks with 4 configured ways degenerates to one set of 2
	// ways and must still behave.
	m := config.Small()
	m.NM = config.HBM(2 * 2048)
	m.FM = config.DDR3(8 * 2048)
	cfg := config.DefaultSILC()
	r := &testRig{}
	r.eng = sim.NewEngine()
	r.sys = mem.NewSystem(m, r.eng)
	r.c = New(r.sys, cfg)
	for i := 0; i < 50; i++ {
		r.access(uint64(i%4), uint64((2+i%8)*2048+(i%32)*64), false)
	}
	if err := mem.Audit(r.c, r.sys.NMCap, r.sys.FMCap); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshot(t *testing.T) {
	r := newRig(func(c *config.SILCConfig) { c.HotThreshold = 3 })
	s := r.c.Snapshot()
	if s.Interleaved != 0 || s.Locked != 0 || s.MeanResidency() != 0 {
		t.Fatalf("fresh snapshot dirty: %+v", s)
	}
	if s.Frames != 128 || s.Sets != 32 || s.Ways != 4 {
		t.Fatalf("geometry: %+v", s)
	}
	// Interleave two subblocks of one block, then lock another block.
	r.access(1, fmBlockAddr(1, 0), false)
	r.access(1, fmBlockAddr(1, 5), false)
	for i := 0; i < 4; i++ {
		r.access(2, fmBlockAddr(2, 0), false)
	}
	s = r.c.Snapshot()
	if s.Interleaved != 2 {
		t.Fatalf("Interleaved = %d, want 2", s.Interleaved)
	}
	if s.Locked != 1 || s.LockedHome != 0 {
		t.Fatalf("Locked = %d/%d", s.Locked, s.LockedHome)
	}
	if s.FullyResident != 1 { // the locked block fetched all 32
		t.Fatalf("FullyResident = %d", s.FullyResident)
	}
	if s.BitsHistogram[2] != 1 || s.BitsHistogram[32] != 1 {
		t.Fatalf("histogram: %v", s.BitsHistogram)
	}
	if got := s.MeanResidency(); got != 17 { // (2+32)/2
		t.Fatalf("MeanResidency = %v", got)
	}
	// Set occupancy: sets 1 and 2 have one interleaved way each.
	if s.SetOccupancy[1] != 2 || s.SetOccupancy[0] != 30 {
		t.Fatalf("occupancy: %v", s.SetOccupancy)
	}
}
