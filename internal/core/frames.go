package core

import (
	"silcfm/internal/memunits"
)

// noRemap marks a frame with no interleaved FM block.
const noRemap = ^uint64(0)

// frame is the per-NM-large-block metadata of Figure 4: remap entry, bit
// vector, NM/FM activity counters, lock and LRU state. Frame f is the home
// of flat NM block f; set membership is f mod sets.
type frame struct {
	remap uint64 // flat FM block interleaved here, or noRemap
	// bits: bit i set means subblock i of this frame holds remap's
	// subblock i, and the home block's subblock i sits at remap's FM home.
	bits memunits.BitVector
	// locked pins the frame's current contents: when lockHome is false the
	// remapped FM block is fully resident (bits == Full); when true the
	// home block is pinned and no interleaving is allowed.
	locked   bool
	lockHome bool
	nmCtr    uint32 // accesses to the home block (aging, 6-bit)
	fmCtr    uint32 // accesses to the remapped FM block
	lastUse  uint64 // engine cycle of last access, for LRU
	// firstPC/firstAddr identify the first swapped-in subblock, the bit
	// vector history table's index (§III-A).
	firstPC   uint64
	firstAddr uint64
}

// counterMax is the 6-bit aging counter ceiling (§III-B).
func counterMax(bits int) uint32 { return 1<<bits - 1 }

// bump increments a saturating counter.
func bump(c *uint32, max uint32) {
	if *c < max {
		*c++
	}
}

// frameSet provides set/way geometry over the frame array.
type frameSet struct {
	frames []frame
	sets   uint64
	ways   int

	// remapW mirrors frames[*].remap in per-set-contiguous layout
	// (remapW[s*ways+w] == frames[frameID(s,w)].remap). findRemap runs
	// once per LLC miss, and the ways of a set sit sets*sizeof(frame)
	// bytes apart in the frames array — a cache miss per way probed; the
	// mirror packs a set's entries into one or two lines. All remap
	// writes go through setRemap to keep the two in sync.
	remapW []uint64
}

func newFrameSet(nmBlocks uint64, ways int) *frameSet {
	if ways <= 0 {
		ways = 1
	}
	sets := nmBlocks / uint64(ways)
	if sets == 0 {
		sets = 1
		ways = int(nmBlocks)
	}
	fs := &frameSet{
		frames: make([]frame, nmBlocks),
		sets:   sets,
		ways:   ways,
		remapW: make([]uint64, nmBlocks),
	}
	for i := range fs.frames {
		fs.frames[i].remap = noRemap
	}
	for i := range fs.remapW {
		fs.remapW[i] = noRemap
	}
	return fs
}

// setRemap updates frame f's remap entry and its mirror slot.
func (fs *frameSet) setRemap(f, b uint64) {
	fs.frames[f].remap = b
	fs.remapW[(f%fs.sets)*uint64(fs.ways)+f/fs.sets] = b
}

// rebuildRemapW resyncs the mirror from the frame array (after a bulk
// restore that bypassed setRemap).
func (fs *frameSet) rebuildRemapW() {
	for f := range fs.frames {
		fs.remapW[(uint64(f)%fs.sets)*uint64(fs.ways)+uint64(f)/fs.sets] = fs.frames[f].remap
	}
}

// setOf returns the congruence set of a flat block (NM or FM).
func (fs *frameSet) setOf(b uint64) uint64 { return b % fs.sets }

// frameID returns the frame index of way w in set s.
func (fs *frameSet) frameID(s uint64, w int) uint64 { return s + uint64(w)*fs.sets }

// wayOf returns the way index of frame f within its set.
func (fs *frameSet) wayOf(f uint64) int { return int(f / fs.sets) }

// findRemap scans set s for the frame holding remap == b. Returns the frame
// index and true, or 0 and false.
func (fs *frameSet) findRemap(s, b uint64) (uint64, bool) {
	base := s * uint64(fs.ways)
	for w, r := range fs.remapW[base : base+uint64(fs.ways)] {
		if r == b {
			return fs.frameID(s, w), true
		}
	}
	return 0, false
}

// victim picks the frame of set s to host a new interleaved block: an
// unlocked frame without a remap if one exists, else the least recently
// used unlocked frame. ok is false when every way is locked (§III-C: locked
// blocks make the rest of the set's FM blocks unswappable; associativity
// reduces how often this happens).
func (fs *frameSet) victim(s uint64) (uint64, bool) {
	best := uint64(0)
	found := false
	var bestUse uint64
	for w := 0; w < fs.ways; w++ {
		f := fs.frameID(s, w)
		fr := &fs.frames[f]
		if fr.locked {
			continue
		}
		if fr.remap == noRemap {
			return f, true
		}
		if !found || fr.lastUse < bestUse {
			best, bestUse, found = f, fr.lastUse, true
		}
	}
	return best, found
}

// age right-shifts every activity counter (the paper's aging at 1 M-access
// boundaries; unlock decisions are taken by the controller afterwards).
func (fs *frameSet) age() {
	for i := range fs.frames {
		fs.frames[i].nmCtr >>= 1
		fs.frames[i].fmCtr >>= 1
	}
}
