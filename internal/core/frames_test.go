package core

import (
	"testing"
	"testing/quick"
)

func TestFrameSetGeometry(t *testing.T) {
	fs := newFrameSet(128, 4)
	if fs.sets != 32 || fs.ways != 4 {
		t.Fatalf("sets=%d ways=%d", fs.sets, fs.ways)
	}
	// Frame IDs of a set are congruent mod sets.
	for w := 0; w < 4; w++ {
		f := fs.frameID(5, w)
		if fs.setOf(f) != 5 {
			t.Fatalf("frame %d not in set 5", f)
		}
		if fs.wayOf(f) != w {
			t.Fatalf("wayOf(%d) = %d, want %d", f, fs.wayOf(f), w)
		}
	}
}

func TestFrameSetDegenerate(t *testing.T) {
	// More ways than blocks: clamps to one set.
	fs := newFrameSet(2, 4)
	if fs.sets != 1 || fs.ways != 2 {
		t.Fatalf("degenerate: sets=%d ways=%d", fs.sets, fs.ways)
	}
	// Zero ways defaults to direct-mapped.
	fs = newFrameSet(8, 0)
	if fs.ways != 1 || fs.sets != 8 {
		t.Fatalf("zero ways: sets=%d ways=%d", fs.sets, fs.ways)
	}
}

func TestFindRemap(t *testing.T) {
	fs := newFrameSet(128, 4)
	if _, ok := fs.findRemap(3, 1000); ok {
		t.Fatal("found remap in empty set")
	}
	fs.setRemap(fs.frameID(3, 2), 1000)
	f, ok := fs.findRemap(3, 1000)
	if !ok || f != fs.frameID(3, 2) {
		t.Fatalf("findRemap: %d %v", f, ok)
	}
}

func TestVictimPreference(t *testing.T) {
	fs := newFrameSet(128, 4)
	s := uint64(7)
	// All empty: first way.
	v, ok := fs.victim(s)
	if !ok || v != fs.frameID(s, 0) {
		t.Fatalf("empty set victim: %d %v", v, ok)
	}
	// Fill ways 0-2 with remaps; way 3 empty -> prefer way 3.
	for w := 0; w < 3; w++ {
		fs.frames[fs.frameID(s, w)].remap = uint64(1000 + w)
		fs.frames[fs.frameID(s, w)].lastUse = uint64(10 + w)
	}
	v, ok = fs.victim(s)
	if !ok || v != fs.frameID(s, 3) {
		t.Fatalf("want empty way 3, got %d", v)
	}
	// All occupied: LRU (way 0, lastUse 10).
	fs.frames[fs.frameID(s, 3)].remap = 1003
	fs.frames[fs.frameID(s, 3)].lastUse = 50
	v, ok = fs.victim(s)
	if !ok || v != fs.frameID(s, 0) {
		t.Fatalf("want LRU way 0, got %d", v)
	}
	// Locked frames are skipped.
	fs.frames[fs.frameID(s, 0)].locked = true
	v, ok = fs.victim(s)
	if !ok || v != fs.frameID(s, 1) {
		t.Fatalf("want way 1 after lock, got %d", v)
	}
	// Everything locked: no victim.
	for w := 0; w < 4; w++ {
		fs.frames[fs.frameID(s, w)].locked = true
	}
	if _, ok = fs.victim(s); ok {
		t.Fatal("victim found in fully locked set")
	}
}

func TestAgingShiftsCounters(t *testing.T) {
	fs := newFrameSet(8, 1)
	fs.frames[3].nmCtr = 40
	fs.frames[3].fmCtr = 7
	fs.age()
	if fs.frames[3].nmCtr != 20 || fs.frames[3].fmCtr != 3 {
		t.Fatalf("after age: nm=%d fm=%d", fs.frames[3].nmCtr, fs.frames[3].fmCtr)
	}
}

func TestSaturatingBump(t *testing.T) {
	var c uint32 = 62
	max := counterMax(6)
	if max != 63 {
		t.Fatalf("counterMax(6) = %d", max)
	}
	bump(&c, max)
	bump(&c, max)
	bump(&c, max)
	if c != 63 {
		t.Fatalf("counter overflowed: %d", c)
	}
}

// Property: every frame belongs to exactly the set setOf reports, and
// frameID/wayOf round-trip.
func TestFrameIDRoundTrip(t *testing.T) {
	f := func(nBlocks uint16, waysSel uint8) bool {
		n := uint64(nBlocks%1024) + 8
		ways := []int{1, 2, 4}[waysSel%3]
		fs := newFrameSet(n, ways)
		for s := uint64(0); s < fs.sets; s++ {
			for w := 0; w < fs.ways; w++ {
				f := fs.frameID(s, w)
				if f >= uint64(len(fs.frames)) {
					return false
				}
				if fs.setOf(f) != s || fs.wayOf(f) != w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryTable(t *testing.T) {
	h := newHistoryTable(64)
	if v := h.lookup(1, 2); v != 0 {
		t.Fatal("cold lookup nonzero")
	}
	h.save(0xAB, 0x12345, 0b1010)
	if v := h.lookup(0xAB, 0x12345); v != 0b1010 {
		t.Fatalf("lookup = %b", v)
	}
	// Same page, different subblock: block-granular key still matches.
	if v := h.lookup(0xAB, 0x12345+64); v != 0b1010 {
		t.Fatalf("block-granular lookup failed: %b", v)
	}
	// Different page misses (unless aliased; use a distant address).
	if v := h.lookup(0xAB, 0x9990000); v != 0 {
		t.Logf("alias hit (allowed, small table): %b", v)
	}
	// Zero vectors are not stored.
	pre := h.stores
	h.save(1, 2, 0)
	if h.stores != pre {
		t.Fatal("zero vector stored")
	}
}

func TestPredictorTrainPredict(t *testing.T) {
	p := newPredictor(128)
	if _, _, ok := p.predict(5, 0x1000); ok {
		t.Fatal("cold predictor claimed validity")
	}
	p.update(5, 0x1000, true, 3)
	inNM, way, ok := p.predict(5, 0x1000)
	if !ok || !inNM || way != 3 {
		t.Fatalf("predict: %v %d %v", inNM, way, ok)
	}
	// Same block trains one entry (block-granular index).
	inNM, way, ok = p.predict(5, 0x1000+512)
	if !ok || !inNM || way != 3 {
		t.Fatal("block-granular prediction failed")
	}
	p.update(5, 0x1000, false, 0)
	if inNM, _, _ := p.predict(5, 0x1000); inNM {
		t.Fatal("retraining failed")
	}
}

func TestBypassGovernor(t *testing.T) {
	g := newBypassGovernor(true, 0.8)
	g.window = 10
	// 9 NM / 1 FM per window: rate 0.9 > 0.8 -> bypassing turns on.
	for i := 0; i < 10; i++ {
		g.record(i != 0)
	}
	if !g.bypassing() {
		t.Fatal("governor did not engage at rate 0.9")
	}
	// 5/10: disengage.
	for i := 0; i < 10; i++ {
		g.record(i%2 == 0)
	}
	if g.bypassing() {
		t.Fatal("governor did not disengage at rate 0.5")
	}
	if g.toggles != 2 {
		t.Fatalf("toggles = %d", g.toggles)
	}
	// Disabled feature never engages.
	off := newBypassGovernor(false, 0.8)
	off.window = 4
	for i := 0; i < 20; i++ {
		off.record(true)
	}
	if off.bypassing() {
		t.Fatal("disabled governor engaged")
	}
}
