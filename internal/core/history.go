package core

import "silcfm/internal/memunits"

// historyTable is the bit vector history table of §III-A: when an
// interleaved block is restored to FM, its residency bit vector is saved,
// keyed by the PC and address of the first subblock that was swapped in.
// When the same (PC, address) combination triggers a new swap-in, the saved
// vector is replayed to fetch the previously useful subblocks together,
// converting CAMEO-style single-line fetches into spatially batched ones.
type historyTable struct {
	tags []uint32
	vecs []memunits.BitVector
	mask uint64

	stores, hits, lookups uint64
}

// newHistoryTable builds a table with entries rounded down to a power of
// two (minimum 1).
func newHistoryTable(entries int) *historyTable {
	n := 1
	for n*2 <= entries {
		n *= 2
	}
	return &historyTable{
		tags: make([]uint32, n),
		vecs: make([]memunits.BitVector, n),
		mask: uint64(n - 1),
	}
}

// key hashes the PC and the first swapped-in subblock's large-block
// address; block granularity lets a recurring (PC, page) pair match even
// when the visit starts at a different subblock.
func (h *historyTable) key(pc, addr uint64) (idx uint64, tag uint32) {
	x := (pc ^ (addr >> 11)) * 0x9e3779b97f4a7c15
	return x & h.mask, uint32(x>>40) | 1 // non-zero tag
}

// save records a bit vector at restore time.
func (h *historyTable) save(pc, addr uint64, vec memunits.BitVector) {
	if vec == 0 {
		return
	}
	idx, tag := h.key(pc, addr)
	h.tags[idx] = tag
	h.vecs[idx] = vec
	h.stores++
}

// occupancy reports how many table entries hold a saved vector.
func (h *historyTable) occupancy() (used, total int) {
	for _, t := range h.tags {
		if t != 0 {
			used++
		}
	}
	return used, len(h.tags)
}

// lookup returns the saved vector for (pc, addr), or 0.
func (h *historyTable) lookup(pc, addr uint64) memunits.BitVector {
	h.lookups++
	idx, tag := h.key(pc, addr)
	if h.tags[idx] != tag {
		return 0
	}
	h.hits++
	return h.vecs[idx]
}

// predictor is the 4K-entry way/location predictor of §III-F, indexed by
// PC xor data-address offset. Each entry speculates the matching way and
// whether the data lives in NM or FM; a correct FM speculation lets the FM
// request launch in parallel with the remap-entry fetch, hiding the NM
// metadata latency.
type predictor struct {
	entries []predEntry
	mask    uint64
}

type predEntry struct {
	valid bool
	inNM  bool
	way   uint8
}

func newPredictor(entries int) *predictor {
	n := 1
	for n*2 <= entries {
		n *= 2
	}
	return &predictor{entries: make([]predEntry, n), mask: uint64(n - 1)}
}

// index hashes the PC with the large-block address: residency decisions
// (remap, lock) are block-granular, so block-level entries train faster and
// stay accurate for fully resident or absent blocks.
func (p *predictor) index(pc, addr uint64) uint64 {
	return (pc ^ (addr >> 11)) & p.mask
}

// predict returns the speculated (inNM, way); ok is false for a cold entry
// (treated as a misprediction: the serialized path is taken).
func (p *predictor) predict(pc, addr uint64) (inNM bool, way uint8, ok bool) {
	e := p.entries[p.index(pc, addr)]
	return e.inNM, e.way, e.valid
}

// update trains the entry with the access's true location.
func (p *predictor) update(pc, addr uint64, inNM bool, way uint8) {
	p.entries[p.index(pc, addr)] = predEntry{valid: true, inNM: inNM, way: way}
}
