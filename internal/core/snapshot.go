package core

import "silcfm/internal/memunits"

// Snapshot summarizes the controller's frame state at one instant, for
// introspection in tests, examples and ablation studies.
type Snapshot struct {
	Frames            int
	Sets              int
	Ways              int
	Interleaved       int // frames hosting a remapped FM block
	Locked            int
	LockedHome        int // of Locked, frames pinning their home block
	FullyResident     int // interleaved frames with all 32 subblocks in NM
	ResidentSubblocks int // total swapped-in subblocks across frames
	// BitsHistogram[k] counts interleaved frames with exactly k resident
	// subblocks (k in 0..32).
	BitsHistogram [memunits.SubblocksPerBlock + 1]int
	// SetOccupancy[w] counts sets with exactly w interleaved ways.
	SetOccupancy []int
}

// Snapshot captures the current frame state.
func (c *Controller) Snapshot() Snapshot {
	s := Snapshot{
		Frames:       len(c.fs.frames),
		Sets:         int(c.fs.sets),
		Ways:         c.fs.ways,
		SetOccupancy: make([]int, c.fs.ways+1),
	}
	perSet := make([]int, c.fs.sets)
	for i := range c.fs.frames {
		fr := &c.fs.frames[i]
		if fr.locked {
			s.Locked++
			if fr.lockHome {
				s.LockedHome++
			}
		}
		if fr.remap == noRemap {
			continue
		}
		s.Interleaved++
		perSet[c.fs.setOf(uint64(i))]++
		n := fr.bits.Count()
		s.ResidentSubblocks += n
		s.BitsHistogram[n]++
		if n == memunits.SubblocksPerBlock {
			s.FullyResident++
		}
	}
	for _, n := range perSet {
		s.SetOccupancy[n]++
	}
	return s
}

// MeanResidency returns the average number of resident subblocks per
// interleaved frame (0 when nothing is interleaved).
func (s Snapshot) MeanResidency() float64 {
	if s.Interleaved == 0 {
		return 0
	}
	return float64(s.ResidentSubblocks) / float64(s.Interleaved)
}

// State is a deep copy of the controller's mutable frame state — remap
// entries, bit vectors, locks, activity counters, LRU and history-index
// fields — for save/restore round-trips in checkpointing tests and
// ablation drivers. It covers exactly the state Locate and the Table I
// state machine read; auxiliary structures (history table, predictor,
// governor) are not included.
type State struct {
	frames []frame
}

// SaveState deep-copies the frame state. The frame struct holds no
// pointers, so a value copy of the slice is a full snapshot.
func (c *Controller) SaveState() *State {
	st := &State{frames: make([]frame, len(c.fs.frames))}
	copy(st.frames, c.fs.frames)
	return st
}

// RestoreState restores a previously saved frame state. The snapshot must
// come from a controller with the same NM geometry.
func (c *Controller) RestoreState(st *State) {
	if len(st.frames) != len(c.fs.frames) {
		panic("core: RestoreState with mismatched frame geometry")
	}
	copy(c.fs.frames, st.frames)
	c.fs.rebuildRemapW()
}
