package core

import (
	"math/rand"
	"reflect"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
)

// churn drives a random access mix through the rig to build up remap,
// lock and counter state.
func churn(r *testRig, rng *rand.Rand, n int) {
	for i := 0; i < n; i++ {
		var pa uint64
		if rng.Intn(2) == 0 {
			pa = fmBlockAddr(rng.Intn(64), uint(rng.Intn(32)))
		} else {
			pa = uint64(rng.Intn(64))*memunits.BlockSize + uint64(rng.Intn(32))*64
		}
		r.access(uint64(100+rng.Intn(8)), pa, rng.Intn(3) == 0)
	}
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	r := newRig(func(cfg *config.SILCConfig) {
		cfg.HotThreshold = 4 // lock quickly so locks are part of the state
	})
	rng := rand.New(rand.NewSource(42))
	churn(r, rng, 800)

	saved := r.c.SaveState()
	snapAt := r.c.Snapshot()
	locAt := make(map[uint64]mem.Location)
	for sb := uint64(0); sb < memunits.SubblocksIn(r.sys.NMCap+r.sys.FMCap); sb += 7 {
		pa := memunits.SubblockBase(sb)
		locAt[pa] = r.c.Locate(pa)
	}

	// Keep churning: the live state diverges from the snapshot.
	churn(r, rng, 800)
	if reflect.DeepEqual(r.c.Snapshot(), snapAt) {
		t.Fatal("state did not diverge; test is vacuous")
	}

	r.c.RestoreState(saved)
	if got := r.c.Snapshot(); !reflect.DeepEqual(got, snapAt) {
		t.Errorf("snapshot after restore differs:\n got %+v\nwant %+v", got, snapAt)
	}
	for pa, want := range locAt {
		if got := r.c.Locate(pa); got != want {
			t.Errorf("Locate(%#x) = %v after restore, want %v", pa, got, want)
		}
	}
}

func TestSaveStateIsDeepCopy(t *testing.T) {
	r := newRig(nil)
	rng := rand.New(rand.NewSource(7))
	churn(r, rng, 300)

	saved := r.c.SaveState()
	before := make([]frame, len(saved.frames))
	copy(before, saved.frames)

	// Mutating the live controller must not leak into the snapshot.
	churn(r, rng, 300)
	if !reflect.DeepEqual(saved.frames, before) {
		t.Fatal("SaveState aliases live frame storage")
	}
}

func TestRestorePreservesFrameFields(t *testing.T) {
	r := newRig(func(cfg *config.SILCConfig) { cfg.HotThreshold = 4 })
	rng := rand.New(rand.NewSource(9))
	churn(r, rng, 1000)

	saved := r.c.SaveState()
	want := make([]frame, len(r.c.fs.frames))
	copy(want, r.c.fs.frames)

	churn(r, rng, 500)
	r.c.RestoreState(saved)

	// Field-level round trip: remap, bits, locks, counters, LRU, history
	// index all survive.
	if !reflect.DeepEqual(r.c.fs.frames, want) {
		t.Fatal("frame fields differ after restore")
	}
	// And the restored mapping is still a valid bijection.
	if err := mem.Audit(r.c, r.sys.NMCap, r.sys.FMCap); err != nil {
		t.Fatalf("restored state fails audit: %v", err)
	}
}

func TestRestoreRejectsMismatchedGeometry(t *testing.T) {
	r := newRig(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("RestoreState accepted a mismatched snapshot")
		}
	}()
	r.c.RestoreState(&State{frames: make([]frame, 1)})
}
