// Package cpu models the processor side of the evaluation (§IV-A): 4-wide
// out-of-order cores with a 128-entry ROB, driven by workload reference
// streams in SPEC rate mode (one instance per core, private address
// spaces). The model is an ROB-occupancy model: a core retires up to
// IssueWidth instructions per cycle, may run at most ROBSize instructions
// past its oldest outstanding LLC miss, and holds at most MSHRs outstanding
// misses — reproducing the memory-level-parallelism, latency- and
// bandwidth-sensitivity that the paper's figures measure, without
// simulating an ISA.
package cpu

import (
	"silcfm/internal/cache"
	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
	"silcfm/internal/workload"
)

// Translate maps a core's virtual address to a flat physical address.
type Translate func(core int, va uint64) uint64

// Core executes one workload instance.
type Core struct {
	id     int
	cfg    config.CoreConfig
	eng    *sim.Engine
	gen    workload.Generator
	hier   *cache.Hierarchy
	xlate  Translate
	ctl    mem.Controller
	target uint64

	clock       sim.Cycle // local logical time; may run ahead of the engine briefly
	instr       uint64
	outstanding []uint64 // instruction numbers of in-flight LLC misses, ascending
	waiting     bool
	blockedAt   sim.Cycle
	finished    bool

	// runFn is c.run bound once, so rescheduling the core never allocates.
	runFn func()
	// ref is the reference-stream scratch slot. It lives on the core (not
	// the run loop's stack) because its address crosses the Generator
	// interface boundary, which would otherwise heap-allocate it per
	// reference.
	ref workload.Ref
	// freeMiss recycles miss tokens (the Access plus its completion
	// callback) so a steady stream of LLC misses allocates nothing.
	freeMiss *missToken
	// doneCtr, when wired by NewComplexTargets, is bumped once when the
	// core retires its target, giving Complex.AllDone an O(1) answer.
	doneCtr *int

	Stats stats.Core
}

// missToken is a pooled in-flight LLC miss: the mem.Access handed to the
// controller and the completion callback, recycled through the core's free
// list. doneFn is the method value bound once at token creation.
type missToken struct {
	c       *Core
	instrAt uint64
	acc     mem.Access
	doneFn  func()
	next    *missToken
}

// fire recycles the token and retires the miss. The token is released first
// so the resumed core can reuse it for its next miss.
func (t *missToken) fire() {
	c := t.c
	instrAt := t.instrAt
	t.next = c.freeMiss
	c.freeMiss = t
	c.completeMiss(instrAt)
}

// NewCore wires one core. target is the instruction count to retire.
func NewCore(id int, cfg config.CoreConfig, eng *sim.Engine, gen workload.Generator,
	hier *cache.Hierarchy, xlate Translate, ctl mem.Controller, target uint64) *Core {
	c := &Core{
		id: id, cfg: cfg, eng: eng, gen: gen, hier: hier,
		xlate: xlate, ctl: ctl, target: target,
	}
	c.runFn = c.run
	return c
}

// Start schedules the core's first step.
func (c *Core) Start() { c.eng.At(0, c.runFn) }

// Done reports whether the core has retired its target.
func (c *Core) Done() bool { return c.finished }

// run executes references until the core must wait for simulated time or
// for a miss to complete.
func (c *Core) run() {
	if c.finished {
		return
	}
	if c.clock < c.eng.Now() {
		c.clock = c.eng.Now()
	}
	for {
		if c.instr >= c.target {
			c.finished = true
			c.Stats.FinishCycle = c.clock
			if c.doneCtr != nil {
				*c.doneCtr++
			}
			return
		}
		// Structural stalls: MSHRs exhausted, or the ROB window has run
		// ahead of the oldest outstanding miss.
		if len(c.outstanding) >= c.cfg.MSHRs ||
			(len(c.outstanding) > 0 && c.instr-c.outstanding[0] >= uint64(c.cfg.ROBSize)) {
			c.waiting = true
			c.blockedAt = c.eng.Now()
			return
		}
		// The core's logical clock has outrun the simulation: yield and
		// resume when the engine catches up.
		if c.clock > c.eng.Now() {
			c.eng.At(c.clock, c.runFn)
			return
		}

		r := &c.ref
		c.gen.Next(r)
		c.instr += uint64(r.Gap)
		c.Stats.Instructions += uint64(r.Gap)
		c.Stats.MemRefs++
		c.clock += sim.Cycle((r.Gap + uint32(c.cfg.IssueWidth) - 1) / uint32(c.cfg.IssueWidth))

		pa := c.xlate(c.id, r.VAddr)
		outcome, _ := c.hier.Access(c.id, pa, r.Write)
		switch outcome {
		case cache.HitL1:
			c.Stats.L1Hits++
		case cache.HitL2:
			c.Stats.L2Hits++
		default:
			c.Stats.LLCMisses++
			instrAt := c.instr
			c.insertOutstanding(instrAt)
			// Write-allocate: a store miss fetches the line like a load
			// miss; memory-level writes happen only on dirty evictions
			// (the hierarchy's Writeback path).
			t := c.freeMiss
			if t == nil {
				t = &missToken{c: c}
				t.doneFn = t.fire
			} else {
				c.freeMiss = t.next
			}
			t.instrAt = instrAt
			t.acc.Reset(c.id, r.PC, pa, false, c.eng.Now(), t.doneFn)
			c.ctl.Handle(&t.acc)
		}
	}
}

func (c *Core) insertOutstanding(instrAt uint64) {
	c.outstanding = append(c.outstanding, instrAt)
}

// completeMiss retires an outstanding miss and resumes a waiting core.
func (c *Core) completeMiss(instrAt uint64) {
	for i, v := range c.outstanding {
		if v == instrAt {
			c.outstanding = append(c.outstanding[:i], c.outstanding[i+1:]...)
			break
		}
	}
	if c.waiting {
		c.waiting = false
		c.Stats.StallCycles += c.eng.Now() - c.blockedAt
		// The core resumes at the later of its own logical time (pending
		// compute) and the engine clock; never rewind.
		if c.clock < c.eng.Now() {
			c.clock = c.eng.Now()
		}
		c.run()
	}
}

// Complex ties cores, caches and the memory controller together for one
// simulation.
type Complex struct {
	Cores []*Core
	Hier  *cache.Hierarchy

	// doneCount tracks retired cores (see Core.doneCtr); freeWB recycles
	// writeback tokens the same way cores recycle miss tokens.
	doneCount int
	freeWB    *wbToken
}

// wbToken is a pooled dirty-LLC-victim writeback Access; its only
// completion work is returning itself to the free list.
type wbToken struct {
	cx     *Complex
	acc    mem.Access
	doneFn func()
	next   *wbToken
}

func (t *wbToken) fire() {
	t.next = t.cx.freeWB
	t.cx.freeWB = t
}

// NewComplex builds n cores running the given per-core generators against a
// shared hierarchy and controller, all retiring the same instruction
// target. Dirty LLC victims are written back through the controller.
func NewComplex(m config.Machine, eng *sim.Engine, gens []workload.Generator,
	xlate Translate, ctl mem.Controller, targetInstr uint64) *Complex {
	targets := make([]uint64, len(gens))
	for i := range targets {
		targets[i] = targetInstr
	}
	return NewComplexTargets(m, eng, gens, xlate, ctl, targets)
}

// NewComplexTargets is NewComplex with per-core instruction targets, for
// heterogeneous multiprogrammed mixes where each instance runs a different
// benchmark (and so a different class-scaled target).
func NewComplexTargets(m config.Machine, eng *sim.Engine, gens []workload.Generator,
	xlate Translate, ctl mem.Controller, targets []uint64) *Complex {
	hier := cache.NewHierarchy(len(gens), m.L1D, m.L2)
	cx := &Complex{Hier: hier}
	hier.Writeback = func(pa uint64) {
		t := cx.freeWB
		if t == nil {
			t = &wbToken{cx: cx}
			t.doneFn = t.fire
		} else {
			cx.freeWB = t.next
		}
		t.acc.Reset(0, 0, pa, true, eng.Now(), t.doneFn)
		ctl.Handle(&t.acc)
	}
	for i, g := range gens {
		c := NewCore(i, m.Core, eng, g, hier, xlate, ctl, targets[i])
		c.doneCtr = &cx.doneCount
		cx.Cores = append(cx.Cores, c)
	}
	return cx
}

// Start launches all cores.
func (cx *Complex) Start() {
	for _, c := range cx.Cores {
		c.Start()
	}
}

// AllDone reports whether every core finished. O(1): cores built by
// NewComplexTargets bump doneCount as they retire their targets.
func (cx *Complex) AllDone() bool { return cx.doneCount == len(cx.Cores) }

// ExecutionCycles returns the rate-mode execution time: the cycle at which
// the last core retired its target.
func (cx *Complex) ExecutionCycles() sim.Cycle {
	var max sim.Cycle
	for _, c := range cx.Cores {
		if c.Stats.FinishCycle > max {
			max = c.Stats.FinishCycle
		}
	}
	return max
}

// OutstandingLen reports in-flight LLC misses (instrumentation).
func (c *Core) OutstandingLen() int { return len(c.outstanding) }
