package cpu

import (
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/schemes/flat"
	"silcfm/internal/sim"
	"silcfm/internal/workload"
)

// fixedGen replays a fixed list of refs, looping.
type fixedGen struct {
	refs []workload.Ref
	pos  int
}

func (g *fixedGen) Name() string           { return "fixed" }
func (g *fixedGen) FootprintBytes() uint64 { return 1 << 20 }
func (g *fixedGen) Next(r *workload.Ref) {
	*r = g.refs[g.pos%len(g.refs)]
	g.pos++
}

func ident(core int, va uint64) uint64 { return va }

func newComplex(t *testing.T, gens []workload.Generator, target uint64) (*sim.Engine, *Complex, *mem.System) {
	t.Helper()
	m := config.Small()
	m.Cores = len(gens)
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	ctl := flat.NewStatic(sys)
	cx := NewComplex(m, eng, gens, ident, ctl, target)
	return eng, cx, sys
}

func TestCoreRetiresTarget(t *testing.T) {
	g := &fixedGen{refs: []workload.Ref{{PC: 1, VAddr: 0, Gap: 10}}}
	eng, cx, _ := newComplex(t, []workload.Generator{g}, 1000)
	cx.Start()
	eng.Run()
	if !cx.AllDone() {
		t.Fatal("core never finished")
	}
	c := cx.Cores[0]
	if c.Stats.Instructions < 1000 {
		t.Fatalf("retired %d < target", c.Stats.Instructions)
	}
	if cx.ExecutionCycles() == 0 {
		t.Fatal("no execution time recorded")
	}
}

func TestCacheHitsAreFast(t *testing.T) {
	// A single hot line: everything after the first access is an L1 hit,
	// so execution time ~ instructions / width.
	g := &fixedGen{refs: []workload.Ref{{PC: 1, VAddr: 64, Gap: 4}}}
	eng, cx, _ := newComplex(t, []workload.Generator{g}, 40_000)
	cx.Start()
	eng.Run()
	c := cx.Cores[0]
	if c.Stats.L1Hits == 0 {
		t.Fatal("no L1 hits")
	}
	if c.Stats.LLCMisses > 2 {
		t.Fatalf("LLC misses = %d for a one-line workload", c.Stats.LLCMisses)
	}
	// 40000 instr / 4-wide = 10000 cycles, plus one miss latency.
	if got := cx.ExecutionCycles(); got > 11_000 {
		t.Fatalf("hit-dominated run took %d cycles, want ~10000", got)
	}
}

func TestMissBoundSlowdown(t *testing.T) {
	// Striding through memory misses every access; execution time is
	// dominated by memory latency, far beyond instructions/width.
	refs := make([]workload.Ref, 4096)
	for i := range refs {
		refs[i] = workload.Ref{PC: 2, VAddr: uint64(i) * 4096, Gap: 4}
	}
	g := &fixedGen{refs: refs}
	eng, cx, _ := newComplex(t, []workload.Generator{g}, 16384)
	cx.Start()
	eng.Run()
	c := cx.Cores[0]
	if c.Stats.LLCMisses < 3000 {
		t.Fatalf("LLC misses = %d, want ~4096", c.Stats.LLCMisses)
	}
	if got, min := cx.ExecutionCycles(), uint64(16384/4*2); got < min {
		t.Fatalf("miss-bound run took %d cycles, want > %d", got, min)
	}
}

func TestMLPOverlapsMisses(t *testing.T) {
	// With 16 MSHRs and gap 4 (ROB covers 128/4 = 32 misses), misses
	// overlap: total time must be far less than misses x latency.
	refs := make([]workload.Ref, 8192)
	for i := range refs {
		refs[i] = workload.Ref{PC: 3, VAddr: uint64(i) * 4096, Gap: 4}
	}
	g := &fixedGen{refs: refs}
	eng, cx, _ := newComplex(t, []workload.Generator{g}, 32768)
	cx.Start()
	eng.Run()
	c := cx.Cores[0]
	serial := c.Stats.LLCMisses * 100 // ~100 cycles unloaded FM latency
	if got := cx.ExecutionCycles(); got*2 >= serial {
		t.Fatalf("no MLP: %d cycles vs serial estimate %d", got, serial)
	}
}

func TestROBLimitsRunahead(t *testing.T) {
	// With a huge gap (one miss per 256 instructions > ROB 128), the core
	// cannot overlap misses: time ~ misses x latency.
	refs := make([]workload.Ref, 4096)
	for i := range refs {
		refs[i] = workload.Ref{PC: 4, VAddr: uint64(i) * 4096, Gap: 256}
	}
	g := &fixedGen{refs: refs}
	eng, cx, _ := newComplex(t, []workload.Generator{g}, 256*256)
	cx.Start()
	eng.Run()
	c := cx.Cores[0]
	if c.Stats.LLCMisses < 250 {
		t.Fatalf("misses = %d", c.Stats.LLCMisses)
	}
	perMiss := float64(cx.ExecutionCycles()) / float64(c.Stats.LLCMisses)
	if perMiss < 60 {
		t.Fatalf("%.1f cycles/miss: ROB failed to serialize distant misses", perMiss)
	}
	if c.Stats.StallCycles == 0 {
		t.Fatal("no stall cycles recorded")
	}
}

func TestRateModeMultiCore(t *testing.T) {
	var gens []workload.Generator
	for i := 0; i < 4; i++ {
		g, _ := workload.New("gcc", int64(i+1))
		gens = append(gens, g)
	}
	eng, cx, sys := newComplex(t, gens, 50_000)
	cx.Start()
	eng.Run()
	if !cx.AllDone() {
		t.Fatal("not all cores finished")
	}
	for i, c := range cx.Cores {
		if c.Stats.Instructions < 50_000 {
			t.Fatalf("core %d retired %d", i, c.Stats.Instructions)
		}
	}
	if sys.Stats.LLCMisses == 0 {
		t.Fatal("no memory traffic")
	}
	// Shared-LLC contention: 4 cores take longer than 1 core would per
	// instruction, but all finish.
	if cx.ExecutionCycles() == 0 {
		t.Fatal("zero execution time")
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() uint64 {
		g, _ := workload.New("mcf", 9)
		eng, cx, _ := newComplex(t, []workload.Generator{g}, 100_000)
		cx.Start()
		eng.Run()
		return cx.ExecutionCycles()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic execution: %d vs %d", a, b)
	}
}

func TestWritebacksFlowToMemory(t *testing.T) {
	// Dirty lines streaming through the hierarchy must generate memory
	// writes when evicted.
	refs := make([]workload.Ref, 65536)
	for i := range refs {
		refs[i] = workload.Ref{PC: 5, VAddr: uint64(i) * 64, Gap: 4, Write: true}
	}
	g := &fixedGen{refs: refs}
	eng, cx, sys := newComplex(t, []workload.Generator{g}, 300_000)
	cx.Start()
	eng.Run()
	if sys.FM.Stats().Writes+sys.NM.Stats().Writes == 0 {
		t.Fatal("no writebacks reached memory")
	}
	_ = cx
}
