// Package dram implements an event-driven DRAM device timing model in the
// spirit of Ramulator, at the fidelity the paper's evaluation depends on:
// per-channel command scheduling with FR-FCFS read prioritization and write
// draining, per-bank row-buffer state under an open-page policy, tCAS /
// tRCD / tRP / tRAS / tWR timing, burst-occupied data buses and bounded
// scheduling windows (Table II: 32-entry read and write queues per channel).
//
// One Device models one memory level (the HBM near memory or the DDR3 far
// memory). Addresses given to a Device are device-local physical addresses
// in [0, Capacity).
package dram

import (
	"silcfm/internal/config"
	"silcfm/internal/sim"
)

// Request is one transfer submitted to a device.
type Request struct {
	Addr  uint64 // device-local byte address
	Write bool
	Bytes uint64 // transfer size; 64 for a cache line
	// MetaBytes models metadata carried in an extended burst (CAMEO keeps
	// the remap entry next to data and lengthens the burst; §II-B).
	MetaBytes uint64
	// Background marks a read that is not on any demand path (metadata
	// verification, speculative traffic): it is scheduled at write
	// priority so demand reads are never delayed behind it.
	Background bool
	// Done is invoked at completion time. May be nil (typical for writes).
	Done func()
	// Trace, when non-nil, receives the request's latency decomposition at
	// completion time, immediately before Done: service is the minimal
	// device-service time for the observed row outcome (precharge/activate
	// + column + burst) and queue is everything else the request waited on
	// (scheduling window, bank readiness, bus, refresh). queue + service
	// always equals completion - arrival exactly.
	Trace func(queue, service uint64)
}

// Stats holds per-device counters.
type Stats struct {
	Reads, Writes           uint64
	BytesRead, BytesWritten uint64
	// BytesMeta counts metadata carried in extended bursts (Request.
	// MetaBytes); kept apart so BytesRead/BytesWritten stay payload-only.
	BytesMeta          uint64
	RowHits, RowMisses uint64 // row-buffer outcome per access
	Activations        uint64
	Refreshes          uint64 // periodic all-bank refreshes applied
	BusBusyCycles      uint64 // sum of burst occupancy over channels
	DynamicEnergyPJ    float64
	ReadLatency        LatencySummary
}

// LatencySummary accumulates request latencies without storing samples.
type LatencySummary struct {
	N   uint64
	Sum uint64
	Max uint64
}

// Add records one latency sample.
func (l *LatencySummary) Add(v uint64) {
	l.N++
	l.Sum += v
	if v > l.Max {
		l.Max = v
	}
}

// Mean returns the average latency.
func (l *LatencySummary) Mean() float64 {
	if l.N == 0 {
		return 0
	}
	return float64(l.Sum) / float64(l.N)
}

// BankCounters is the cumulative microarchitectural ledger of one bank.
// RowHits/RowMisses/RowConflicts split the aggregate Stats.RowHits/RowMisses
// pair by bank and by outcome (RowMisses here counts closed-bank misses
// only; the aggregate folds conflicts in). BusyCycles sums the cycles the
// bank spent executing commands (precharge/activate/column/burst/recovery);
// RefreshCloses counts rows force-closed by periodic refresh.
type BankCounters struct {
	RowHits       uint64
	RowMisses     uint64 // closed-bank activates
	RowConflicts  uint64 // precharge-then-activate (different row open)
	RefreshCloses uint64
	BusyCycles    uint64
}

// Accesses returns the bank's total row operations.
func (b *BankCounters) Accesses() uint64 { return b.RowHits + b.RowMisses + b.RowConflicts }

// ChannelCounters is the cumulative per-channel ledger: data-bus occupancy
// and the cycles requests spent queued (arrival to issue) per queue class.
type ChannelCounters struct {
	BusBusyCycles  uint64
	ReadQueueWait  uint64 // cycles demand reads waited in the read queue
	WriteQueueWait uint64 // cycles writes/background reads waited in the write queue
}

type op struct {
	req     Request
	bank    int // global bank index within channel (rank*banks + bank)
	row     uint64
	arrival sim.Cycle
}

type bankState struct {
	openRow int64     // -1 when precharged
	actAt   sim.Cycle // when the open row was activated (for tRAS)
	readyAt sim.Cycle // earliest start of the next command on this bank
}

// opQueue is a FIFO of ops with a consumed-prefix head index. FR-FCFS only
// ever removes from within the bounded scheduling window at the front, so
// removal shifts the short live prefix [0, pick) right by one — O(window) —
// instead of shifting the unbounded tail left, which dominated the
// scheduler's cost on long write queues.
type opQueue struct {
	ops  []op
	head int
}

// pushSlot appends a zeroed op and returns it for in-place fill, avoiding
// a pass-by-value copy of the wide op struct.
func (q *opQueue) pushSlot() *op {
	q.ops = append(q.ops, op{})
	return &q.ops[len(q.ops)-1]
}

func (q *opQueue) len() int     { return len(q.ops) - q.head }
func (q *opQueue) at(i int) *op { return &q.ops[q.head+i] }

// drop discards the op at live position i, preserving the FIFO order of the
// remainder exactly. The caller must be done with any pointer obtained from
// at(): the shift invalidates it.
func (q *opQueue) drop(i int) {
	p := q.head + i
	copy(q.ops[q.head+1:p+1], q.ops[q.head:p])
	q.ops[q.head] = op{} // release Done/Trace references
	q.head++
	if q.head == len(q.ops) {
		q.ops = q.ops[:0]
		q.head = 0
	} else if q.head >= 1024 {
		// A queue that never fully drains would otherwise grow its dead
		// prefix without bound; compact it occasionally.
		n := copy(q.ops, q.ops[q.head:])
		for j := n; j < len(q.ops); j++ {
			q.ops[j] = op{}
		}
		q.ops = q.ops[:n]
		q.head = 0
	}
}

type channel struct {
	readQ     opQueue
	writeQ    opQueue
	busFreeAt sim.Cycle
	banks     []bankState
	inflight  int
	draining  bool
	// lastRefresh is the time of the most recently applied periodic
	// refresh (lazy catch-up; see refreshCatchup).
	lastRefresh sim.Cycle
}

// completion is the pooled completion event of one issued op — the state
// the per-request closure used to capture, recycled through a per-device
// free list so steady-state issue allocates nothing. fireFn is the method
// value bound once at pool-object creation and passed to the engine on
// every reuse.
type completion struct {
	d       *Device
	ch      int
	done    sim.Cycle
	arrival sim.Cycle
	service sim.Cycle
	isRead  bool
	cb      func()
	tr      func(queue, service uint64)
	fireFn  func()
	next    *completion
}

// fire performs the op's completion: it releases the channel's inflight
// slot, records read latency, reports the latency decomposition, chains the
// request callback and re-kicks the channel — in exactly the order the
// original closure did. The completion object is recycled before the
// callbacks run, so a callback that submits new requests can reuse it.
func (c *completion) fire() {
	d := c.d
	ch := c.ch
	d.chans[ch].inflight--
	if c.isRead {
		d.stats.ReadLatency.Add(c.done - c.arrival)
	}
	tr, cb := c.tr, c.cb
	queue, service := uint64(c.done-c.arrival-c.service), uint64(c.service)
	c.tr, c.cb = nil, nil
	c.next = d.freeComp
	d.freeComp = c
	if tr != nil {
		// done >= arrival + service by construction (start >= arrival and
		// every data-path delay only pushes completion later), so the queue
		// component never underflows.
		tr(queue, service)
	}
	if cb != nil {
		cb()
	}
	d.kick(ch)
}

// Device is one DRAM device (a set of channels).
type Device struct {
	Cfg   config.DRAMConfig
	eng   *sim.Engine
	chans []channel
	stats Stats

	// freeComp is the completion free list (see completion).
	freeComp *completion

	// queued mirrors QueueDepth() incrementally (ops submitted but not
	// yet issued, across all channels); peakQueued is its high-water mark
	// since the last TakePeakQueueDepth, for the telemetry epoch sampler.
	queued     int
	peakQueued int

	// Introspection ledgers, flat-indexed [ch*banksPerChan+bank] and [ch].
	// Allocated once at New and updated in place on the issue path, so the
	// layer is allocation-free in steady state.
	bankCtr []BankCounters
	chanCtr []ChannelCounters
	// bankQueued mirrors, per bank, the ops submitted but not yet issued —
	// the O(1) backing for BankLoad.
	bankQueued []int32

	// geometry, precomputed
	nChan        uint64
	banksPerChan uint64
	blocksPerRow uint64

	// timing in CPU cycles, precomputed
	tCAS, tRCD, tRP, tRAS, tWR sim.Cycle
	tREFI, tRFC                sim.Cycle

	// maxInflight bounds ops issued but not completed per channel, so
	// later arrivals can still be reordered by FR-FCFS.
	maxInflight int
}

// New builds a device on the given engine.
func New(cfg config.DRAMConfig, eng *sim.Engine) *Device {
	d := &Device{
		Cfg:          cfg,
		eng:          eng,
		nChan:        uint64(cfg.Channels),
		banksPerChan: uint64(cfg.RanksPerChan * cfg.BanksPerRank),
		blocksPerRow: cfg.RowBufferSize / 64,
		tCAS:         cfg.MemCyclesToCPU(cfg.Timing.TCAS),
		tRCD:         cfg.MemCyclesToCPU(cfg.Timing.TRCD),
		tRP:          cfg.MemCyclesToCPU(cfg.Timing.TRP),
		tRAS:         cfg.MemCyclesToCPU(cfg.Timing.TRAS),
		tWR:          cfg.MemCyclesToCPU(cfg.Timing.TWR),
		tREFI:        cfg.MemCyclesToCPU(cfg.Timing.TREFI),
		tRFC:         cfg.MemCyclesToCPU(cfg.Timing.TRFC),
		// Enough issued-but-incomplete ops to keep every bank busy while
		// the bus streams; later arrivals still reorder within the window.
		maxInflight: 2 * cfg.RanksPerChan * cfg.BanksPerRank,
	}
	d.chans = make([]channel, cfg.Channels)
	for i := range d.chans {
		d.chans[i].banks = make([]bankState, d.banksPerChan)
		for b := range d.chans[i].banks {
			d.chans[i].banks[b].openRow = -1
		}
	}
	d.bankCtr = make([]BankCounters, cfg.Channels*int(d.banksPerChan))
	d.chanCtr = make([]ChannelCounters, cfg.Channels)
	d.bankQueued = make([]int32, cfg.Channels*int(d.banksPerChan))
	return d
}

// Stats returns the accumulated counters.
func (d *Device) Stats() *Stats { return &d.stats }

// Geometry reports the device's channel/bank shape, the index space of
// BankCounters and ChannelCounters.
func (d *Device) Geometry() (channels, banksPerChannel int) {
	return int(d.nChan), int(d.banksPerChan)
}

// BankCounters returns the live per-bank ledger, flat-indexed
// [channel*banksPerChannel + bank]. Read-only for callers; the device keeps
// mutating it.
func (d *Device) BankCounters() []BankCounters { return d.bankCtr }

// ChannelCounters returns the live per-channel ledger. Read-only for
// callers.
func (d *Device) ChannelCounters() []ChannelCounters { return d.chanCtr }

// TotalBankCounters sums the per-bank ledger into one BankCounters.
func (d *Device) TotalBankCounters() BankCounters {
	var t BankCounters
	for i := range d.bankCtr {
		b := &d.bankCtr[i]
		t.RowHits += b.RowHits
		t.RowMisses += b.RowMisses
		t.RowConflicts += b.RowConflicts
		t.RefreshCloses += b.RefreshCloses
		t.BusyCycles += b.BusyCycles
	}
	return t
}

// TotalChannelCounters sums the per-channel ledger into one
// ChannelCounters.
func (d *Device) TotalChannelCounters() ChannelCounters {
	var t ChannelCounters
	for i := range d.chanCtr {
		c := &d.chanCtr[i]
		t.BusBusyCycles += c.BusBusyCycles
		t.ReadQueueWait += c.ReadQueueWait
		t.WriteQueueWait += c.WriteQueueWait
	}
	return t
}

// RowOpen reports whether the row holding addr is currently open in its
// bank's row buffer — the locality query a row-buffer-aware placement
// scheme asks before steering an access. O(1); allocation-free. Refreshes
// are applied lazily at issue time, so a row reported open here may still
// be closed by a pending refresh before the next access issues.
func (d *Device) RowOpen(addr uint64) bool {
	ch, bank, row := d.mapAddr(addr)
	b := &d.chans[ch].banks[bank]
	return b.openRow >= 0 && uint64(b.openRow) == row
}

// BankLoad reports how many requests are queued (submitted, not yet
// issued) for the bank holding addr — the contention signal for
// bank-occupancy-aware steering. O(1); allocation-free.
func (d *Device) BankLoad(addr uint64) int {
	ch, bank, _ := d.mapAddr(addr)
	return int(d.bankQueued[ch*int(d.banksPerChan)+bank])
}

// mapAddr decomposes a device address: 64B blocks interleave across
// channels, then banks; consecutive same-bank blocks share a row until the
// 8KB row buffer wraps, so streaming accesses enjoy row hits.
func (d *Device) mapAddr(addr uint64) (ch int, bank int, row uint64) {
	blk := addr >> 6
	ch = int(blk % d.nChan)
	bc := blk / d.nChan
	bank = int(bc % d.banksPerChan)
	bcb := bc / d.banksPerChan
	row = bcb / d.blocksPerRow
	return
}

// Submit enqueues a request. Requests are always admitted; the bounded
// FR-FCFS window and bus/bank availability provide the contention delays,
// while end-to-end backpressure comes from the cores' MSHR/ROB limits.
func (d *Device) Submit(r Request) {
	if r.Bytes == 0 {
		r.Bytes = 64
	}
	ch, bank, row := d.mapAddr(r.Addr)
	c := &d.chans[ch]
	q := &c.readQ
	if r.Write || r.Background {
		q = &c.writeQ
	}
	s := q.pushSlot()
	s.req = r
	s.bank = bank
	s.row = row
	s.arrival = d.eng.Now()
	d.bankQueued[ch*int(d.banksPerChan)+bank]++
	d.queued++
	if d.queued > d.peakQueued {
		d.peakQueued = d.queued
	}
	d.kick(ch)
}

// kick issues as many ops as the inflight bound allows on channel ch.
func (d *Device) kick(ch int) {
	c := &d.chans[ch]
	for c.inflight < d.maxInflight {
		q, pick := d.selectOp(c)
		if q == nil {
			return
		}
		d.issue(ch, c, q, pick)
	}
}

// selectOp implements FR-FCFS with write draining over the bounded
// scheduling windows. It returns the queue and live position of the chosen
// op (nil when nothing is queued); the caller consumes the op in place and
// drops it, so selection never copies the wide op struct.
func (d *Device) selectOp(c *channel) (*opQueue, int) {
	// Enter drain mode when the write queue saturates its window; drain a
	// small batch so waiting reads are not starved. Reads otherwise have
	// priority.
	if c.draining {
		if c.writeQ.len() <= d.Cfg.WriteQueueLen*3/4 {
			c.draining = false
		}
	} else if c.writeQ.len() >= d.Cfg.WriteQueueLen {
		c.draining = true
	}
	useWrites := c.draining || c.readQ.len() == 0
	q := &c.readQ
	if useWrites {
		q = &c.writeQ
	}
	if q.len() == 0 {
		return nil, 0
	}
	window := q.len()
	limit := d.Cfg.ReadQueueLen
	if useWrites {
		limit = d.Cfg.WriteQueueLen
	}
	if window > limit {
		window = limit
	}
	// First ready (row hit) within the window, else oldest.
	pick := 0
	for i := 0; i < window; i++ {
		o := q.at(i)
		b := &c.banks[o.bank]
		if b.openRow >= 0 && uint64(b.openRow) == o.row {
			pick = i
			break
		}
	}
	return q, pick
}

// refreshCatchup applies any periodic refreshes due since the channel was
// last serviced: every tREFI all banks close their rows and become
// unavailable for tRFC. Refreshes are applied lazily at issue time so an
// idle device schedules no events. Activate energy is charged only for
// banks that actually had a row open to close — a precharged bank's
// refresh is covered by the static background power model, not the
// per-activate dynamic charge.
func (d *Device) refreshCatchup(ch int, c *channel, now sim.Cycle) {
	if d.tREFI == 0 {
		return
	}
	base := ch * int(d.banksPerChan)
	for c.lastRefresh+d.tREFI <= now {
		c.lastRefresh += d.tREFI
		d.stats.Refreshes++
		for i := range c.banks {
			b := &c.banks[i]
			start := c.lastRefresh
			if b.readyAt > start {
				start = b.readyAt
			}
			b.readyAt = start + d.tRFC
			if b.openRow >= 0 {
				d.stats.DynamicEnergyPJ += d.Cfg.ActivateEnergyPJ
				d.bankCtr[base+i].RefreshCloses++
				b.openRow = -1
			}
		}
	}
}

// issue computes the timing of the op at live position pick of q, reserves
// bank and bus, schedules its completion, and drops the op from the queue.
func (d *Device) issue(ch int, c *channel, q *opQueue, pick int) {
	o := q.at(pick)
	b := &c.banks[o.bank]
	bc := &d.bankCtr[ch*int(d.banksPerChan)+o.bank]
	cc := &d.chanCtr[ch]
	now := d.eng.Now()
	d.refreshCatchup(ch, c, now)
	start := b.readyAt
	if start < now {
		start = now
	}
	var colAt sim.Cycle
	// rowPenalty is the row-outcome component of the request's minimal
	// service time; tRAS/bus/refresh waits count as queueing instead.
	var rowPenalty sim.Cycle
	switch {
	case b.openRow >= 0 && uint64(b.openRow) == o.row:
		// Row hit: column command only.
		d.stats.RowHits++
		bc.RowHits++
		colAt = start
	case b.openRow < 0:
		// Closed: activate then column.
		d.stats.RowMisses++
		d.stats.Activations++
		d.stats.DynamicEnergyPJ += d.Cfg.ActivateEnergyPJ
		bc.RowMisses++
		rowPenalty = d.tRCD
		colAt = start + d.tRCD
		b.actAt = start
		b.openRow = int64(o.row)
	default:
		// Conflict: precharge (respecting tRAS), activate, column.
		d.stats.RowMisses++
		d.stats.Activations++
		d.stats.DynamicEnergyPJ += d.Cfg.ActivateEnergyPJ
		bc.RowConflicts++
		rowPenalty = d.tRP + d.tRCD
		preAt := start
		if min := b.actAt + d.tRAS; preAt < min {
			preAt = min
		}
		actAt := preAt + d.tRP
		colAt = actAt + d.tRCD
		b.actAt = actAt
		b.openRow = int64(o.row)
	}

	burst := d.Cfg.BurstCPUCycles(o.req.Bytes + o.req.MetaBytes)
	var dataAt sim.Cycle
	if o.req.Write {
		// Write data moves over the bus at the column command.
		dataAt = colAt
		if dataAt < c.busFreeAt {
			dataAt = c.busFreeAt
		}
		b.readyAt = dataAt + burst + d.tWR
	} else {
		dataAt = colAt + d.tCAS
		if dataAt < c.busFreeAt {
			dataAt = c.busFreeAt
		}
		// Column commands pipeline at tCCD (~ one burst): row-hit reads
		// stream at bus rate while the CAS latency overlaps.
		effCol := dataAt - d.tCAS // actual column-command time after bus delays
		b.readyAt = effCol + burst
	}
	if d.Cfg.Policy == config.ClosedPage {
		// Auto-precharge: the row closes after the access and the bank
		// needs tRP before its next activate.
		b.openRow = -1
		b.readyAt += d.tRP
	}
	c.busFreeAt = dataAt + burst
	d.stats.BusBusyCycles += burst
	cc.BusBusyCycles += burst
	// Bank occupancy: commands on one bank serialize through readyAt, so
	// [start, readyAt) intervals never overlap and their lengths sum to the
	// bank's busy time.
	bc.BusyCycles += uint64(b.readyAt - start)
	// Queue residency, attributed to the queue the op waited in.
	if q == &c.readQ {
		cc.ReadQueueWait += uint64(now - o.arrival)
	} else {
		cc.WriteQueueWait += uint64(now - o.arrival)
	}

	done := dataAt + burst
	bits := float64((o.req.Bytes + o.req.MetaBytes) * 8)
	d.stats.BytesMeta += o.req.MetaBytes
	if o.req.Write {
		d.stats.Writes++
		d.stats.BytesWritten += o.req.Bytes
		d.stats.DynamicEnergyPJ += bits * d.Cfg.WriteEnergyPJPerBit
	} else {
		d.stats.Reads++
		d.stats.BytesRead += o.req.Bytes
		d.stats.DynamicEnergyPJ += bits * d.Cfg.ReadEnergyPJPerBit
	}

	// Minimal service time for the observed row outcome; reads add the CAS
	// latency, writes move data at the column command.
	service := rowPenalty + burst
	if !o.req.Write {
		service += d.tCAS
	}

	c.inflight++
	comp := d.freeComp
	if comp == nil {
		comp = &completion{d: d}
		comp.fireFn = comp.fire
	} else {
		d.freeComp = comp.next
	}
	comp.ch = ch
	comp.done = done
	comp.arrival = o.arrival
	comp.service = service
	comp.isRead = !o.req.Write
	comp.cb = o.req.Done
	comp.tr = o.req.Trace
	bank := o.bank
	q.drop(pick) // o is dead past this point
	d.bankQueued[ch*int(d.banksPerChan)+bank]--
	d.queued--
	d.eng.At(done, comp.fireFn)
}

// PendingBytes reports bytes (including extended-burst metadata) submitted
// but not yet issued. The conservation audit uses it to bridge the two
// byte-accounting instants: mem-side counters tick at submit, device-side
// counters at issue.
func (d *Device) PendingBytes() uint64 {
	var n uint64
	for i := range d.chans {
		for _, q := range []*opQueue{&d.chans[i].readQ, &d.chans[i].writeQ} {
			for _, o := range q.ops[q.head:] {
				n += o.req.Bytes + o.req.MetaBytes
			}
		}
	}
	return n
}

// PeakQueueDepth reports the highest QueueDepth seen since the last
// TakePeakQueueDepth (or device creation), without resetting it.
func (d *Device) PeakQueueDepth() int { return d.peakQueued }

// TakePeakQueueDepth returns the queue-depth high-water mark since the
// last call and restarts it at the current depth, so each telemetry epoch
// observes its own peak. Instantaneous boundary sampling aliases bursts;
// the saturation detector needs the peak.
func (d *Device) TakePeakQueueDepth() int {
	p := d.peakQueued
	d.peakQueued = d.queued
	return p
}

// QueueDepth reports total queued (not yet issued) requests, for tests.
func (d *Device) QueueDepth() int {
	n := 0
	for i := range d.chans {
		n += d.chans[i].readQ.len() + d.chans[i].writeQ.len()
	}
	return n
}

// UnloadedReadLatency returns the CPU-cycle latency of an isolated read that
// misses the row buffer on an idle device (activate + column + burst).
func (d *Device) UnloadedReadLatency() sim.Cycle {
	return d.tRCD + d.tCAS + d.Cfg.BurstCPUCycles(64)
}

// Join returns a callback that invokes fn after being called n times. It is
// the device-level fan-in helper for multi-subblock transfers. If n == 0,
// fn runs immediately.
func Join(n int, fn func()) func() {
	if n <= 0 {
		if fn != nil {
			fn()
		}
		return func() {}
	}
	remaining := n
	return func() {
		remaining--
		if remaining == 0 && fn != nil {
			fn()
		}
	}
}
