package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"silcfm/internal/config"
	"silcfm/internal/sim"
)

func newFM(t testing.TB) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, New(config.DDR3(64<<20), eng)
}

func newNM(t testing.TB) (*sim.Engine, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, New(config.HBM(16<<20), eng)
}

func TestSingleReadLatency(t *testing.T) {
	eng, d := newFM(t)
	var done sim.Cycle
	d.Submit(Request{Addr: 0, Done: func() { done = eng.Now() }})
	eng.Run()
	// Idle device, closed bank: tRCD + tCAS + burst = (11+11)*4 + 16 = 104.
	want := d.tRCD + d.tCAS + d.Cfg.BurstCPUCycles(64)
	if done != want {
		t.Fatalf("read completed at %d, want %d", done, want)
	}
	if d.stats.RowMisses != 1 || d.stats.RowHits != 0 {
		t.Fatalf("row stats: hits=%d misses=%d", d.stats.RowHits, d.stats.RowMisses)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	eng, d := newFM(t)
	var t1, t2 sim.Cycle
	d.Submit(Request{Addr: 0, Done: func() { t1 = eng.Now() }})
	eng.Run()
	// Same 64B block again: same row, now open.
	d.Submit(Request{Addr: 0, Done: func() { t2 = eng.Now() }})
	eng.Run()
	lat2 := t2 - t1
	if lat2 >= t1 {
		t.Fatalf("row hit latency %d !< row miss latency %d", lat2, t1)
	}
	if d.stats.RowHits != 1 {
		t.Fatalf("expected a row hit, got %d", d.stats.RowHits)
	}
}

func TestRowConflictSlower(t *testing.T) {
	eng, d := newFM(t)
	// Two addresses in the same channel+bank but different rows: stride by
	// channels*banks*rowBuffer bytes.
	stride := uint64(d.Cfg.Channels) * d.banksPerChan * d.Cfg.RowBufferSize
	var t1, t2 sim.Cycle
	d.Submit(Request{Addr: 0, Done: func() { t1 = eng.Now() }})
	eng.Run()
	base := eng.Now()
	d.Submit(Request{Addr: stride, Done: func() { t2 = eng.Now() }})
	eng.Run()
	confLat := t2 - base
	if confLat <= t1 {
		t.Fatalf("conflict latency %d !> first-access latency %d", confLat, t1)
	}
	ch1, b1, r1 := d.mapAddr(0)
	ch2, b2, r2 := d.mapAddr(stride)
	if ch1 != ch2 || b1 != b2 || r1 == r2 {
		t.Fatalf("stride did not produce a row conflict: (%d,%d,%d) vs (%d,%d,%d)", ch1, b1, r1, ch2, b2, r2)
	}
}

func TestChannelInterleaving(t *testing.T) {
	_, d := newFM(t)
	seen := map[int]bool{}
	for blk := uint64(0); blk < uint64(d.Cfg.Channels); blk++ {
		ch, _, _ := d.mapAddr(blk * 64)
		seen[ch] = true
	}
	if len(seen) != d.Cfg.Channels {
		t.Fatalf("consecutive blocks hit %d channels, want %d", len(seen), d.Cfg.Channels)
	}
}

// Property: address mapping is a bijection at 64B granularity within any
// sampled set (no two blocks share channel/bank/row/position implicitly --
// we verify injectivity of (ch,bank,row,colblk)).
func TestMapAddrInjective(t *testing.T) {
	_, d := newFM(t)
	f := func(a, b uint32) bool {
		x := (uint64(a) % (64 << 20)) &^ 63
		y := (uint64(b) % (64 << 20)) &^ 63
		if x == y {
			return true
		}
		cx, bx, rx := d.mapAddr(x)
		cy, by, ry := d.mapAddr(y)
		// Same (channel,bank,row) is allowed only for different columns;
		// reconstruct column block to check full injectivity.
		colx := (x >> 6) / d.nChan / d.banksPerChan % d.blocksPerRow
		coly := (y >> 6) / d.nChan / d.banksPerChan % d.blocksPerRow
		return !(cx == cy && bx == by && rx == ry && colx == coly)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBankParallelismBeatsSerial(t *testing.T) {
	// N row-missing reads to DIFFERENT banks should finish sooner than N
	// row-conflicting reads to the SAME bank.
	run := func(stride uint64) sim.Cycle {
		eng, d := newFM(t)
		n := 4
		var last sim.Cycle
		cb := func() { last = eng.Now() }
		for i := 0; i < n; i++ {
			d.Submit(Request{Addr: uint64(i) * stride, Done: cb})
		}
		eng.Run()
		return last
	}
	_, d := newFM(t)
	sameBank := uint64(d.Cfg.Channels) * d.banksPerChan * d.Cfg.RowBufferSize
	diffBank := uint64(d.Cfg.Channels) * 64 // next bank, same channel
	tSame := run(sameBank)
	tDiff := run(diffBank)
	if tDiff >= tSame {
		t.Fatalf("bank-parallel %d !< bank-serial %d", tDiff, tSame)
	}
}

func TestWritesComplete(t *testing.T) {
	eng, d := newFM(t)
	doneReads := 0
	for i := 0; i < 50; i++ {
		d.Submit(Request{Addr: uint64(i) * 64, Write: true})
	}
	d.Submit(Request{Addr: 0, Done: func() { doneReads++ }})
	eng.Run()
	if d.stats.Writes != 50 || doneReads != 1 {
		t.Fatalf("writes=%d reads done=%d", d.stats.Writes, doneReads)
	}
	if d.stats.BytesWritten != 50*64 {
		t.Fatalf("BytesWritten = %d", d.stats.BytesWritten)
	}
}

func TestReadPriorityOverWrites(t *testing.T) {
	// A read arriving amid background writes should not wait for the whole
	// write queue (reads have priority outside drain mode).
	eng, d := newFM(t)
	for i := 0; i < 20; i++ {
		d.Submit(Request{Addr: uint64(i) * 4096, Write: true})
	}
	var readDone sim.Cycle
	d.Submit(Request{Addr: 1 << 20, Done: func() { readDone = eng.Now() }})
	eng.Run()
	total := eng.Now()
	if readDone >= total {
		t.Fatalf("read finished last (%d of %d); write priority broken", readDone, total)
	}
}

func TestHBMFasterThanDDR3UnderLoad(t *testing.T) {
	run := func(mk func(testing.TB) (*sim.Engine, *Device)) sim.Cycle {
		eng, d := mk(t)
		rng := rand.New(rand.NewSource(7))
		n := 2000
		remaining := n
		for i := 0; i < n; i++ {
			d.Submit(Request{Addr: uint64(rng.Intn(1<<22)) &^ 63, Done: func() { remaining-- }})
		}
		eng.Run()
		if remaining != 0 {
			t.Fatalf("%d requests unfinished", remaining)
		}
		return eng.Now()
	}
	tNM := run(newNM)
	tFM := run(newFM)
	// HBM has 4x the bandwidth; a saturating burst should finish in well
	// under half the DDR3 time.
	if tNM*2 >= tFM {
		t.Fatalf("HBM burst %d !<< DDR3 burst %d", tNM, tFM)
	}
}

func TestStreamingRowHitRate(t *testing.T) {
	eng, d := newFM(t)
	n := 1024
	for i := 0; i < n; i++ {
		d.Submit(Request{Addr: uint64(i) * 64})
	}
	eng.Run()
	hitRate := float64(d.stats.RowHits) / float64(d.stats.RowHits+d.stats.RowMisses)
	if hitRate < 0.9 {
		t.Fatalf("streaming row hit rate = %.3f, want > 0.9 (open-page policy)", hitRate)
	}
}

func TestMetaBytesLengthenBurst(t *testing.T) {
	_, d := newFM(t)
	plain := d.Cfg.BurstCPUCycles(64)
	ext := d.Cfg.BurstCPUCycles(64 + 16)
	if ext <= plain {
		t.Fatalf("extended burst %d !> plain %d", ext, plain)
	}
}

func TestLatencySummary(t *testing.T) {
	var l LatencySummary
	if l.Mean() != 0 {
		t.Fatal("empty mean")
	}
	l.Add(10)
	l.Add(30)
	if l.Mean() != 20 || l.Max != 30 || l.N != 2 {
		t.Fatalf("summary: %+v", l)
	}
}

func TestJoin(t *testing.T) {
	fired := 0
	cb := Join(3, func() { fired++ })
	cb()
	cb()
	if fired != 0 {
		t.Fatal("join fired early")
	}
	cb()
	if fired != 1 {
		t.Fatal("join did not fire")
	}
	// n == 0 fires immediately.
	ran := false
	Join(0, func() { ran = true })
	if !ran {
		t.Fatal("Join(0) must run immediately")
	}
}

func TestEnergyAccumulates(t *testing.T) {
	eng, d := newFM(t)
	d.Submit(Request{Addr: 0})
	d.Submit(Request{Addr: 4096, Write: true})
	eng.Run()
	if d.stats.DynamicEnergyPJ <= 0 {
		t.Fatal("no energy recorded")
	}
	// At least one activation plus read+write bit energy.
	min := d.Cfg.ActivateEnergyPJ + 64*8*(d.Cfg.ReadEnergyPJPerBit+d.Cfg.WriteEnergyPJPerBit)
	if d.stats.DynamicEnergyPJ < min {
		t.Fatalf("energy %v < floor %v", d.stats.DynamicEnergyPJ, min)
	}
}

// Property: all submitted reads complete exactly once, in any order of
// random addresses.
func TestAllReadsCompleteOnce(t *testing.T) {
	f := func(addrs []uint32) bool {
		eng, d := newFM(t)
		count := 0
		for _, a := range addrs {
			d.Submit(Request{Addr: uint64(a) % (64 << 20), Done: func() { count++ }})
		}
		eng.Run()
		return count == len(addrs) && d.QueueDepth() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() sim.Cycle {
		eng, d := newFM(t)
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 500; i++ {
			d.Submit(Request{Addr: uint64(rng.Intn(1<<24)) &^ 63, Write: rng.Intn(4) == 0})
		}
		eng.Run()
		return eng.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func BenchmarkDeviceRandomReads(b *testing.B) {
	eng := sim.NewEngine()
	d := New(config.DDR3(256<<20), eng)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(Request{Addr: uint64(rng.Intn(1<<26)) &^ 63})
		if d.QueueDepth() > 256 {
			eng.Run()
		}
	}
	eng.Run()
}

func TestRefreshAppliesPeriodically(t *testing.T) {
	eng := sim.NewEngine()
	d := New(config.DDR3(64<<20), eng)
	// First access at t=0, second long after several tREFI periods: the
	// catch-up must count the elapsed refreshes and close the row.
	d.Submit(Request{Addr: 0})
	eng.Run()
	if d.stats.Refreshes != 0 {
		t.Fatalf("refreshes before tREFI: %d", d.stats.Refreshes)
	}
	late := 3*d.tREFI + 10
	eng.At(late, func() { d.Submit(Request{Addr: 0}) })
	eng.Run()
	if d.stats.Refreshes != 3 {
		t.Fatalf("Refreshes = %d, want 3", d.stats.Refreshes)
	}
	// The row was closed by refresh, so the second access to the same
	// address is a row miss, not a hit.
	if d.stats.RowHits != 0 {
		t.Fatalf("row survived refresh: hits=%d", d.stats.RowHits)
	}
}

func TestRefreshDelaysAccess(t *testing.T) {
	eng := sim.NewEngine()
	d := New(config.DDR3(64<<20), eng)
	// An access issued right at a refresh boundary waits out tRFC.
	var done sim.Cycle
	eng.At(d.tREFI, func() { d.Submit(Request{Addr: 0, Done: func() { done = eng.Now() }}) })
	eng.Run()
	unloaded := d.UnloadedReadLatency()
	if done < d.tREFI+d.tRFC+unloaded {
		t.Fatalf("access at refresh completed at %d, want >= %d", done, d.tREFI+d.tRFC+unloaded)
	}
}

func TestRefreshDisabled(t *testing.T) {
	cfg := config.DDR3(64 << 20)
	cfg.Timing.TREFI = 0
	eng := sim.NewEngine()
	d := New(cfg, eng)
	d.Submit(Request{Addr: 0})
	eng.RunUntil(1 << 30)
	eng.At(1<<30, func() { d.Submit(Request{Addr: 0}) })
	eng.Run()
	if d.stats.Refreshes != 0 {
		t.Fatalf("refreshes with TREFI=0: %d", d.stats.Refreshes)
	}
}

func TestBackgroundReadsYieldToDemand(t *testing.T) {
	eng := sim.NewEngine()
	d := New(config.DDR3(64<<20), eng)
	// Flood with background reads, then submit one demand read: it must
	// not finish last.
	for i := 0; i < 64; i++ {
		d.Submit(Request{Addr: uint64(i) * 4096, Background: true})
	}
	var demandDone sim.Cycle
	d.Submit(Request{Addr: 1 << 20, Done: func() { demandDone = eng.Now() }})
	eng.Run()
	if demandDone >= eng.Now() {
		t.Fatalf("demand read finished last (%d of %d)", demandDone, eng.Now())
	}
}

func TestClosedPagePolicy(t *testing.T) {
	cfg := config.DDR3(64 << 20)
	cfg.Policy = config.ClosedPage
	eng := sim.NewEngine()
	d := New(cfg, eng)
	// Repeated access to the same row: no row hits under closed page.
	for i := 0; i < 16; i++ {
		d.Submit(Request{Addr: 0})
		eng.Run()
	}
	if d.stats.RowHits != 0 {
		t.Fatalf("closed page produced %d row hits", d.stats.RowHits)
	}
	// But also no conflict penalty: alternating rows costs the same as
	// repeating one row (every access activates from precharged).
	run := func(stride uint64) sim.Cycle {
		eng := sim.NewEngine()
		d := New(cfg, eng)
		for i := 0; i < 16; i++ {
			d.Submit(Request{Addr: uint64(i%2) * stride})
			eng.Run()
		}
		return eng.Now()
	}
	conflictStride := uint64(cfg.Channels) * uint64(cfg.RanksPerChan*cfg.BanksPerRank) * cfg.RowBufferSize
	same, alt := run(0), run(conflictStride)
	if alt > same+uint64(16)*4 {
		t.Fatalf("closed page penalizes alternating rows: %d vs %d", alt, same)
	}
	// Open page is faster for row-hit streams.
	open := config.DDR3(64 << 20)
	engO := sim.NewEngine()
	dO := New(open, engO)
	for i := 0; i < 16; i++ {
		dO.Submit(Request{Addr: 0})
		engO.Run()
	}
	engC := sim.NewEngine()
	dC := New(cfg, engC)
	for i := 0; i < 16; i++ {
		dC.Submit(Request{Addr: 0})
		engC.Run()
	}
	if engO.Now() >= engC.Now() {
		t.Fatalf("open page %d !< closed page %d on a row-hit stream", engO.Now(), engC.Now())
	}
}

// Property: a read never completes faster than the unloaded row-hit floor
// (tCAS + burst), and throughput never exceeds the device's peak bandwidth.
func TestPhysicalBounds(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		d := New(config.DDR3(64<<20), eng)
		rng := rand.New(rand.NewSource(seed))
		floor := d.tCAS + d.Cfg.BurstCPUCycles(64)
		okFloor := true
		n := 400
		for i := 0; i < n; i++ {
			submitAt := eng.Now()
			d.Submit(Request{Addr: uint64(rng.Intn(1<<24)) &^ 63, Done: func() {
				if eng.Now()-submitAt < floor {
					okFloor = false
				}
			}})
			if rng.Intn(4) == 0 {
				eng.Run()
			}
		}
		eng.Run()
		if !okFloor {
			return false
		}
		// Peak bandwidth bound: bytes moved <= elapsed * peak.
		peakBytesPerCycle := d.Cfg.PeakBandwidthGBs() * 1e9 / (float64(config.CPUFreqMHz) * 1e6)
		moved := float64(d.stats.BytesRead + d.stats.BytesWritten)
		return moved <= float64(eng.Now())*peakBytesPerCycle+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: FIFO fairness floor — no read waits forever; with a bounded
// request count every callback fires exactly once (no lost wakeups in the
// kick/issue loop).
func TestNoLostWakeups(t *testing.T) {
	eng := sim.NewEngine()
	d := New(config.HBM(16<<20), eng)
	rng := rand.New(rand.NewSource(3))
	fired := make([]int, 3000)
	for i := 0; i < len(fired); i++ {
		i := i
		d.Submit(Request{
			Addr:       uint64(rng.Intn(1<<22)) &^ 63,
			Write:      rng.Intn(5) == 0,
			Background: rng.Intn(7) == 0,
			Done:       func() { fired[i]++ },
		})
	}
	eng.Run()
	for i, n := range fired {
		if n != 1 {
			t.Fatalf("request %d completed %d times", i, n)
		}
	}
}

func TestPeakQueueDepthHighWaterMark(t *testing.T) {
	eng, d := newFM(t)
	// Flood one instant with far more requests than the inflight window
	// admits, so a deep queue builds before anything drains.
	const n = 256
	for i := 0; i < n; i++ {
		d.Submit(Request{Addr: uint64(i) * 64})
	}
	depth := d.QueueDepth()
	peak := d.PeakQueueDepth()
	if peak == 0 {
		t.Fatal("no peak recorded after a burst of submits")
	}
	if peak < depth {
		t.Fatalf("peak %d below instantaneous depth %d", peak, depth)
	}
	if got := d.TakePeakQueueDepth(); got != peak {
		t.Fatalf("TakePeakQueueDepth = %d, want %d", got, peak)
	}
	// After the take the mark restarts at the current depth, and once the
	// device drains, a quiet epoch's peak falls to that restart level and
	// then to zero.
	if got := d.PeakQueueDepth(); got != depth {
		t.Fatalf("after take, peak = %d, want current depth %d", got, depth)
	}
	eng.Run()
	if d.QueueDepth() != 0 {
		t.Fatalf("device did not drain: depth %d", d.QueueDepth())
	}
	if got := d.TakePeakQueueDepth(); got != depth {
		t.Fatalf("post-drain take = %d, want the restart level %d", got, depth)
	}
	if got := d.TakePeakQueueDepth(); got != 0 {
		t.Fatalf("idle epoch peak = %d, want 0", got)
	}
}

// TestSteadyStateRequestAllocs pins the request pool: once the queues,
// completion free list and engine wheel are warm, a submit/complete cycle
// allocates nothing — the tentpole's per-request closure and op-copy heap
// traffic must not creep back in.
func TestSteadyStateRequestAllocs(t *testing.T) {
	eng, d := newFM(t)
	done := func() {}
	// Warm up: grow every queue slice, the completion free list, and the
	// scheduler's wheel buckets.
	for i := 0; i < 2000; i++ {
		d.Submit(Request{Addr: uint64(i%64) * 64, Done: done})
		d.Submit(Request{Addr: uint64(i%64) * 64, Write: true, Done: done})
	}
	eng.Run()

	avg := testing.AllocsPerRun(500, func() {
		d.Submit(Request{Addr: 4096, Done: done})
		d.Submit(Request{Addr: 8192, Write: true, Done: done})
		eng.Run()
	})
	if avg > 0 {
		t.Fatalf("steady-state request path allocates %.2f objects/op, want 0", avg)
	}
}

// TestRefreshEnergyChargesOnlyOpenRows pins the refresh energy model on an
// idle-then-refreshed device: a periodic refresh of a bank that is already
// precharged performs no activate, so it must charge no activate energy.
// (The old model charged ActivateEnergyPJ for every bank on every refresh,
// inflating an idle DDR3 channel by 32 activates per tREFI.)
func TestRefreshEnergyChargesOnlyOpenRows(t *testing.T) {
	eng, d := newFM(t)
	// Device idle across three refresh periods, then one read: the catch-up
	// applies 3 refreshes to all-precharged banks. Total dynamic energy must
	// be exactly the read's own activate + bit energy — nothing from refresh.
	late := 3*d.tREFI + 10
	eng.At(late, func() { d.Submit(Request{Addr: 0}) })
	eng.Run()
	if d.stats.Refreshes != 3 {
		t.Fatalf("Refreshes = %d, want 3", d.stats.Refreshes)
	}
	want := d.Cfg.ActivateEnergyPJ + 64*8*d.Cfg.ReadEnergyPJPerBit
	if d.stats.DynamicEnergyPJ != want {
		t.Fatalf("idle-then-refreshed energy = %v pJ, want exactly %v (refresh of precharged banks must be free)",
			d.stats.DynamicEnergyPJ, want)
	}
	if got := d.TotalBankCounters().RefreshCloses; got != 0 {
		t.Fatalf("RefreshCloses = %d on an idle device, want 0", got)
	}

	// Second regression arm: one bank HAS an open row when refresh hits.
	// Exactly one close is charged, and only once — the two later refreshes
	// find the bank precharged again.
	eng2, d2 := newFM(t)
	d2.Submit(Request{Addr: 0}) // opens a row in channel 0, bank 0
	eng2.Run()
	e1 := d2.stats.DynamicEnergyPJ
	eng2.At(3*d2.tREFI+10, func() { d2.Submit(Request{Addr: 0}) })
	eng2.Run()
	// One refresh-close activate, then the read reopens the row (activate +
	// bits). Anything larger means precharged banks were charged again.
	want2 := e1 + 2*d2.Cfg.ActivateEnergyPJ + 64*8*d2.Cfg.ReadEnergyPJPerBit
	if d2.stats.DynamicEnergyPJ != want2 {
		t.Fatalf("refreshed-once energy = %v pJ, want exactly %v", d2.stats.DynamicEnergyPJ, want2)
	}
	if got := d2.TotalBankCounters().RefreshCloses; got != 1 {
		t.Fatalf("RefreshCloses = %d, want 1", got)
	}
}

// TestMapAddrPartitionProperty pins the interleave contract the per-bank
// counters key on: consecutive 64B blocks partition exhaustively and evenly
// across (channel, bank), and same-bank neighbours share a row exactly
// until the row buffer wraps.
func TestMapAddrPartitionProperty(t *testing.T) {
	_, d := newFM(t)
	nCh, nBk := d.Geometry()
	rows := d.Cfg.Capacity / (uint64(nCh) * uint64(nBk) * d.Cfg.RowBufferSize)

	// Exhaustive, even partition: K full interleave turns land K blocks on
	// every (channel, bank) pair, and every decomposition is in range.
	const turns = 64
	counts := make([]uint64, nCh*nBk)
	for blk := uint64(0); blk < uint64(turns*nCh*nBk); blk++ {
		ch, bank, row := d.mapAddr(blk * 64)
		if ch < 0 || ch >= nCh || bank < 0 || bank >= nBk || row >= rows {
			t.Fatalf("block %d maps out of range: (%d,%d,%d)", blk, ch, bank, row)
		}
		counts[ch*nBk+bank]++
	}
	for i, n := range counts {
		if n != turns {
			t.Fatalf("(ch=%d,bank=%d) received %d blocks, want %d (uneven partition)", i/nBk, i%nBk, n, turns)
		}
	}

	// Row locality: walking the same bank in address order (stride = one
	// interleave turn) stays in one row for exactly blocksPerRow steps, then
	// advances to the next row.
	stride := uint64(nCh*nBk) * 64
	steps := 3 * d.blocksPerRow
	ch0, bk0, _ := d.mapAddr(0)
	for s := uint64(0); s < steps; s++ {
		ch, bank, row := d.mapAddr(s * stride)
		if ch != ch0 || bank != bk0 {
			t.Fatalf("step %d left the bank: (%d,%d), want (%d,%d)", s, ch, bank, ch0, bk0)
		}
		if want := s / d.blocksPerRow; row != want {
			t.Fatalf("step %d row = %d, want %d (row must wrap every %d same-bank blocks)",
				s, row, want, d.blocksPerRow)
		}
	}
}

// TestSelectOpFRFCFS pins the scheduler's two-phase policy as a unit test
// on hand-built channel state: a row hit inside the scheduling window wins
// over the oldest op, the oldest op wins when no row hit exists, and a hit
// beyond the window cannot jump the queue.
func TestSelectOpFRFCFS(t *testing.T) {
	_, d := newFM(t)
	c := &d.chans[0]
	push := func(bank int, row uint64) {
		s := c.readQ.pushSlot()
		s.bank = bank
		s.row = row
	}

	// Bank 0 holds row 5 open; the oldest op wants row 7 (conflict), a
	// younger in-window op wants the open row 5: FR-FCFS picks the hit.
	c.banks[0].openRow = 5
	push(0, 7)
	push(0, 5)
	if q, pick := d.selectOp(c); q != &c.readQ || pick != 1 {
		t.Fatalf("row hit in window: picked %d, want 1", pick)
	}

	// Precharged bank: no row hit anywhere, fall back to the oldest.
	c.banks[0].openRow = -1
	if q, pick := d.selectOp(c); q != &c.readQ || pick != 0 {
		t.Fatalf("no-hit fallback: picked %d, want 0 (oldest)", pick)
	}

	// A row hit parked beyond the scheduling window must not be selected.
	c.banks[0].openRow = 5
	c.readQ.ops = c.readQ.ops[:0]
	c.readQ.head = 0
	for i := 0; i < d.Cfg.ReadQueueLen; i++ {
		push(0, 7) // in-window: all conflicts
	}
	push(0, 5) // the hit, one past the window
	if _, pick := d.selectOp(c); pick != 0 {
		t.Fatalf("hit beyond window: picked %d, want 0 (oldest)", pick)
	}
}

// TestIntrospectionLedgersReconcile drives a mixed load and checks the
// per-bank/per-channel ledgers against the aggregate Stats they refine,
// plus the RowOpen/BankLoad query API.
func TestIntrospectionLedgersReconcile(t *testing.T) {
	eng, d := newFM(t)
	// Conflict pair: same channel+bank, different rows.
	confStride := uint64(d.Cfg.Channels) * d.banksPerChan * d.Cfg.RowBufferSize
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		switch i % 4 {
		case 0:
			d.Submit(Request{Addr: uint64(i%2) * confStride}) // alternating rows, same bank
		case 1:
			d.Submit(Request{Addr: uint64(rng.Intn(1<<24)) &^ 63})
		case 2:
			d.Submit(Request{Addr: uint64(rng.Intn(1<<24)) &^ 63, Write: true})
		default:
			d.Submit(Request{Addr: uint64(i) * 64})
		}
		if d.QueueDepth() > 128 {
			eng.Run()
		}
	}
	eng.Run()

	bt := d.TotalBankCounters()
	ct := d.TotalChannelCounters()
	if bt.RowHits != d.stats.RowHits {
		t.Fatalf("per-bank hits %d != aggregate %d", bt.RowHits, d.stats.RowHits)
	}
	if bt.RowMisses+bt.RowConflicts != d.stats.RowMisses {
		t.Fatalf("per-bank misses %d + conflicts %d != aggregate misses %d",
			bt.RowMisses, bt.RowConflicts, d.stats.RowMisses)
	}
	if bt.RowConflicts == 0 {
		t.Fatal("conflict stride produced no per-bank conflicts")
	}
	if ct.BusBusyCycles != d.stats.BusBusyCycles {
		t.Fatalf("per-channel bus busy %d != aggregate %d", ct.BusBusyCycles, d.stats.BusBusyCycles)
	}
	if bt.BusyCycles == 0 || ct.ReadQueueWait == 0 || ct.WriteQueueWait == 0 {
		t.Fatalf("ledger holes: busy=%d readWait=%d writeWait=%d",
			bt.BusyCycles, ct.ReadQueueWait, ct.WriteQueueWait)
	}
	// Bank busy time cannot exceed wall time summed over banks.
	if max := uint64(eng.Now()) * uint64(len(d.bankCtr)); bt.BusyCycles > max {
		t.Fatalf("bank busy %d exceeds %d bank-cycles of wall time", bt.BusyCycles, max)
	}

	// Row-locality query: a fresh read leaves its row open (open page), and
	// the conflicting row in the same bank reads as closed.
	d.Submit(Request{Addr: 0})
	eng.Run()
	if !d.RowOpen(0) {
		t.Fatal("RowOpen(0) = false immediately after a read")
	}
	if d.RowOpen(confStride) {
		t.Fatal("RowOpen reports the conflicting row open")
	}

	// Bank load: flood one bank without draining; every queued op targets it.
	for i := 0; i < 40; i++ {
		d.Submit(Request{Addr: 0})
	}
	if got, want := d.BankLoad(0), d.QueueDepth(); got != want {
		t.Fatalf("BankLoad = %d, want queued depth %d", got, want)
	}
	if d.BankLoad(64) != 0 { // next channel's bank is idle
		t.Fatalf("BankLoad(64) = %d, want 0", d.BankLoad(64))
	}
	eng.Run()
	if d.BankLoad(0) != 0 {
		t.Fatalf("drained BankLoad = %d, want 0", d.BankLoad(0))
	}
}

// TestIntrospectionAllocFree extends the steady-state allocation pin to the
// new counter paths and the query API: per-bank/per-channel accounting,
// RowOpen/BankLoad and ledger snapshots must all be allocation-free.
func TestIntrospectionAllocFree(t *testing.T) {
	eng, d := newFM(t)
	done := func() {}
	for i := 0; i < 2000; i++ {
		d.Submit(Request{Addr: uint64(i%64) * 64, Done: done})
		d.Submit(Request{Addr: uint64(i%64) * 64, Write: true, Done: done})
	}
	eng.Run()

	var sink uint64
	avg := testing.AllocsPerRun(500, func() {
		d.Submit(Request{Addr: 4096, Done: done})
		d.Submit(Request{Addr: 8192, Write: true, Done: done})
		if d.RowOpen(4096) {
			sink++
		}
		sink += uint64(d.BankLoad(4096))
		eng.Run()
		sink += d.TotalBankCounters().RowHits + d.TotalChannelCounters().BusBusyCycles
	})
	if avg > 0 {
		t.Fatalf("introspection path allocates %.2f objects/op, want 0 (sink=%d)", avg, sink)
	}
}
