package dram

import (
	"math/rand"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/sim"
)

func TestTraceDecomposesUnloadedRead(t *testing.T) {
	eng, d := newFM(t)
	var q, s uint64
	var done sim.Cycle
	d.Submit(Request{Addr: 0, Trace: func(queue, service uint64) { q, s = queue, service }, Done: func() { done = eng.Now() }})
	eng.Run()
	// Idle device, closed bank: no queueing, service is the full unloaded
	// latency (tRCD + tCAS + burst).
	if q != 0 {
		t.Errorf("unloaded read queued %d cycles, want 0", q)
	}
	if want := uint64(d.UnloadedReadLatency()); s != want {
		t.Errorf("service = %d, want %d", s, want)
	}
	if q+s != uint64(done) {
		t.Errorf("queue %d + service %d != end-to-end %d", q, s, done)
	}
}

func TestTraceQueueAccountsContention(t *testing.T) {
	eng, d := newFM(t)
	// Two reads to the same channel+bank+row submitted together: the second
	// waits behind the first, and that wait must land in queue.
	stride := uint64(d.Cfg.Channels) * d.banksPerChan * 64 // same bank, next row block
	type rec struct{ q, s, total uint64 }
	var out []rec
	for i := 0; i < 2; i++ {
		arrival := eng.Now()
		r := rec{}
		d.Submit(Request{
			Addr:  uint64(i) * stride,
			Trace: func(queue, service uint64) { r.q, r.s = queue, service },
			Done: func() {
				r.total = uint64(eng.Now()) - uint64(arrival)
				out = append(out, r)
			},
		})
	}
	eng.Run()
	if len(out) != 2 {
		t.Fatalf("got %d completions, want 2", len(out))
	}
	for i, r := range out {
		if r.q+r.s != r.total {
			t.Errorf("read %d: queue %d + service %d != total %d", i, r.q, r.s, r.total)
		}
	}
	if out[1].q == 0 {
		t.Error("second same-bank read reports no queueing")
	}
}

// Property: queue + service == completion - arrival for every traced
// request under a random read/write mix.
func TestTraceTelescopesUnderLoad(t *testing.T) {
	eng := sim.NewEngine()
	d := New(config.DDR3(64<<20), eng)
	rng := rand.New(rand.NewSource(11))
	bad := 0
	for i := 0; i < 800; i++ {
		arrival := eng.Now()
		var q, s uint64
		traced := false
		d.Submit(Request{
			Addr:  uint64(rng.Intn(1<<24)) &^ 63,
			Write: rng.Intn(4) == 0,
			Trace: func(queue, service uint64) { q, s, traced = queue, service, true },
			Done: func() {
				if !traced || q+s != uint64(eng.Now())-uint64(arrival) {
					bad++
				}
			},
		})
		if rng.Intn(8) == 0 {
			eng.Run()
		}
	}
	eng.Run()
	if bad != 0 {
		t.Fatalf("%d traced requests did not telescope", bad)
	}
}

func TestPendingBytesBridgesAccounting(t *testing.T) {
	eng, d := newFM(t)
	// Flood one channel so requests sit queued: submitted bytes must equal
	// issued bytes + pending bytes at every instant.
	total := uint64(0)
	for i := 0; i < 200; i++ {
		n := uint64(64)
		var meta uint64
		if i%3 == 0 {
			meta = 16
		}
		d.Submit(Request{Addr: 0, Bytes: n, MetaBytes: meta, Write: i%2 == 0})
		total += n + meta
		issued := d.stats.BytesRead + d.stats.BytesWritten + d.stats.BytesMeta
		if got := issued + d.PendingBytes(); got != total {
			t.Fatalf("after submit %d: issued %d + pending %d != submitted %d", i, issued, d.PendingBytes(), total)
		}
	}
	eng.Run()
	if d.PendingBytes() != 0 {
		t.Fatalf("pending bytes after drain: %d", d.PendingBytes())
	}
	if got := d.stats.BytesRead + d.stats.BytesWritten + d.stats.BytesMeta; got != total {
		t.Fatalf("issued bytes %d != submitted %d", got, total)
	}
}
