// Package energy computes the memory-system energy and the Energy-Delay
// Product the paper reports (abstract, §V: SILC-FM reduces EDP by 13%
// versus the best state-of-the-art scheme thanks to die-stacked DRAM's low
// per-bit energy). Dynamic energy comes from the DRAM devices' per-access
// accounting (bit transfer + row activations); background power is charged
// per channel over the execution time; traffic accounted in aggregate by a
// scheme (HMA's bulk migrations) arrives via stats.Memory.ExtraEnergyPJ.
package energy

import (
	"silcfm/internal/config"
	"silcfm/internal/dram"
	"silcfm/internal/stats"
)

// Breakdown itemizes the energy of one simulation run, in nanojoules.
type Breakdown struct {
	NMDynamicNJ  float64
	FMDynamicNJ  float64
	BackgroundNJ float64
	AggregateNJ  float64 // scheme-level aggregate traffic (HMA migrations)
}

// TotalNJ sums the components.
func (b Breakdown) TotalNJ() float64 {
	return b.NMDynamicNJ + b.FMDynamicNJ + b.BackgroundNJ + b.AggregateNJ
}

// Compute derives the run energy from device counters, the memory stats and
// the execution time.
func Compute(nmCfg, fmCfg config.DRAMConfig, nmStats, fmStats *dram.Stats,
	memStats *stats.Memory, cycles uint64) Breakdown {

	seconds := float64(cycles) / (config.CPUFreqMHz * 1e6)
	bgMW := nmCfg.BackgroundMWPerChan*float64(nmCfg.Channels) +
		fmCfg.BackgroundMWPerChan*float64(fmCfg.Channels)
	return Breakdown{
		NMDynamicNJ:  nmStats.DynamicEnergyPJ / 1e3,
		FMDynamicNJ:  fmStats.DynamicEnergyPJ / 1e3,
		BackgroundNJ: bgMW * 1e-3 * seconds * 1e9, // W * s -> J -> nJ
		AggregateNJ:  memStats.ExtraEnergyPJ / 1e3,
	}
}

// EDP returns the energy-delay product in nanojoule-cycles.
func EDP(b Breakdown, cycles uint64) float64 {
	return b.TotalNJ() * float64(cycles)
}
