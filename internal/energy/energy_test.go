package energy

import (
	"math"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/dram"
	"silcfm/internal/stats"
)

func TestComputeComponents(t *testing.T) {
	nmCfg, fmCfg := config.HBM(1<<20), config.DDR3(4<<20)
	nm := &dram.Stats{DynamicEnergyPJ: 2_000}
	fm := &dram.Stats{DynamicEnergyPJ: 6_000}
	ms := &stats.Memory{ExtraEnergyPJ: 1_000}
	b := Compute(nmCfg, fmCfg, nm, fm, ms, 3_200_000) // 1 ms at 3.2 GHz

	if math.Abs(b.NMDynamicNJ-2) > 1e-9 || math.Abs(b.FMDynamicNJ-6) > 1e-9 {
		t.Fatalf("dynamic: %+v", b)
	}
	if math.Abs(b.AggregateNJ-1) > 1e-9 {
		t.Fatalf("aggregate: %+v", b)
	}
	// Background: (55*8 + 90*4) mW = 800 mW over 1 ms = 0.8 mJ = 8e5 nJ.
	if math.Abs(b.BackgroundNJ-8e5) > 1 {
		t.Fatalf("background = %v, want 8e5", b.BackgroundNJ)
	}
	if math.Abs(b.TotalNJ()-(2+6+1+8e5)) > 1e-6 {
		t.Fatalf("total = %v", b.TotalNJ())
	}
}

func TestEDPScalesWithDelay(t *testing.T) {
	b := Breakdown{NMDynamicNJ: 10}
	if EDP(b, 100) != 1000 {
		t.Fatalf("EDP = %v", EDP(b, 100))
	}
	if EDP(b, 200) <= EDP(b, 100) {
		t.Fatal("EDP must grow with delay")
	}
}

func TestBackgroundDominatesLongIdleRuns(t *testing.T) {
	nmCfg, fmCfg := config.HBM(1<<20), config.DDR3(4<<20)
	short := Compute(nmCfg, fmCfg, &dram.Stats{}, &dram.Stats{}, &stats.Memory{}, 1000)
	long := Compute(nmCfg, fmCfg, &dram.Stats{}, &dram.Stats{}, &stats.Memory{}, 1_000_000)
	if long.BackgroundNJ <= short.BackgroundNJ {
		t.Fatal("background energy must scale with time")
	}
}
