package flightrec

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"silcfm/internal/health"
	"silcfm/internal/telemetry"
	"silcfm/internal/telemetry/exemplar"
)

// BundleSchema versions the bundle JSON layout.
const BundleSchema = "silcfm-postmortem-v1"

// Bundle is one incident capture's postmortem evidence, self-contained and
// immutable once emitted: everything the renderer, the drill-down API and a
// human need to reconstruct what the run was doing before, during and just
// after the incident. Field order is fixed and no maps appear in the
// encoded form, so the canonical encoding is byte-deterministic.
type Bundle struct {
	Schema string `json:"schema"`
	// Fingerprint is the run's config identity (harness.Spec.Fingerprint),
	// matching the manifest's config.fingerprint for cross-referencing.
	Fingerprint string `json:"fingerprint"`
	// Run labels the source run, "<scheme>/<workload>" in sweeps.
	Run string `json:"run,omitempty"`
	// Seq numbers this run's bundles in emission order.
	Seq int `json:"seq"`
	// Trigger is the kind of the incident that opened the capture.
	Trigger string `json:"trigger"`
	// FirstEpoch..LastEpoch / FirstCycle..LastCycle delimit the captured
	// window (pre-trigger history included).
	FirstEpoch uint64 `json:"first_epoch"`
	LastEpoch  uint64 `json:"last_epoch"`
	FirstCycle uint64 `json:"first_cycle"`
	LastCycle  uint64 `json:"last_cycle"`
	// PreEpochs counts the leading epochs that predate the trigger.
	PreEpochs int `json:"pre_epochs"`
	// Forced marks an end-of-run flush with incidents still open.
	Forced bool `json:"forced,omitempty"`
	// OpenKinds lists kinds still open at finalize (forced bundles).
	OpenKinds []string `json:"open_kinds,omitempty"`
	// Incidents are the closed incident records observed during the
	// capture, plus snapshots of still-open ones for forced bundles.
	Incidents []health.Incident `json:"incidents,omitempty"`
	// Rules summarizes each rule's firing trace across the window.
	Rules []RuleTrace `json:"rules,omitempty"`
	// Offenders is the window-wide top-K offender table.
	Offenders []Offender `json:"offenders,omitempty"`
	// Exemplars is the tail-exemplar reservoir frozen at incident open:
	// the worst-K demand accesses per path leading into the incident
	// (path-grouped, worst-first), when the exemplar recorder was attached.
	Exemplars []exemplar.Exemplar `json:"exemplars,omitempty"`
	// Epochs is the captured window, oldest first.
	Epochs        []EpochRecord `json:"epochs"`
	EpochsDropped uint64        `json:"epochs_dropped,omitempty"`
	// Events is the movement-event excerpt, oldest first.
	Events        []EventRecord `json:"events,omitempty"`
	EventsDropped uint64        `json:"events_dropped,omitempty"`
}

// EpochRecord is one captured epoch: the telemetry sample (with scheme
// gauges), the epoch's attribution delta, which rules were open at the
// boundary, and the epoch's top-K offender blocks.
type EpochRecord struct {
	Sample telemetry.Sample `json:"sample"`
	// Attr breaks the epoch's demand completions down by path; only paths
	// with activity appear, in stats.DemandPath order.
	Attr []PathDelta `json:"attr,omitempty"`
	// Rules lists the kinds open at this boundary, detector order.
	Rules []RuleState `json:"rules,omitempty"`
	// Offenders is this epoch's top-K (demand count desc, block asc).
	Offenders []Offender `json:"offenders,omitempty"`
	// OffenderBlocks counts distinct blocks demanded this epoch;
	// OffendersDropped counts demands the bounded table could not key.
	OffenderBlocks   int    `json:"offender_blocks,omitempty"`
	OffendersDropped uint64 `json:"offenders_dropped,omitempty"`
}

// EventRecord is one movement event in bundle form. Src/Dst are
// kind-dependent: device-local addresses for swaps (with levels), frame and
// flat block index for lock/unlock, flat block index and completion latency
// for bypass/mispredict completions.
type EventRecord struct {
	Cycle    uint64 `json:"cycle"`
	Kind     string `json:"kind"`
	Src      uint64 `json:"src"`
	Dst      uint64 `json:"dst"`
	SrcLevel string `json:"src_level,omitempty"`
	DstLevel string `json:"dst_level,omitempty"`
	Home     bool   `json:"home,omitempty"`
}

// PathDelta is one demand path's per-epoch completion count and span-cycle
// attribution (the same spans as stats.Attribution, flattened to named
// fields for a stable encoding).
type PathDelta struct {
	Path       string `json:"path"`
	Count      uint64 `json:"count"`
	Queue      uint64 `json:"queue,omitempty"`
	Service    uint64 `json:"service,omitempty"`
	MetaFetch  uint64 `json:"meta_fetch,omitempty"`
	SwapSerial uint64 `json:"swap_serial,omitempty"`
	Mispredict uint64 `json:"mispredict,omitempty"`
	Other      uint64 `json:"other,omitempty"`
}

// RuleState is one rule open at an epoch boundary with the open incident's
// running peak severity.
type RuleState struct {
	Kind     string  `json:"kind"`
	Severity float64 `json:"severity"`
}

// RuleTrace reduces one rule's firing across the captured window.
type RuleTrace struct {
	Kind         string  `json:"kind"`
	OpenEpochs   int     `json:"open_epochs"`
	FirstEpoch   uint64  `json:"first_epoch"`
	LastEpoch    uint64  `json:"last_epoch"`
	PeakSeverity float64 `json:"peak_severity"`
}

// Offender is one flat 2KiB block's demand activity.
type Offender struct {
	// Block is the flat block index (address = Block << 11).
	Block uint64 `json:"block"`
	// Demands counts completed demand accesses to the block.
	Demands uint64 `json:"demands"`
	// LatCycles sums those demands' completion latencies.
	LatCycles uint64 `json:"lat_cycles"`
}

// Encode writes the bundle's canonical JSON form (two-space indent plus a
// trailing newline, matching manifest.Canonical) to w.
func (b *Bundle) Encode(w io.Writer) error {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return fmt.Errorf("flightrec: encode bundle: %w", err)
	}
	out = append(out, '\n')
	_, err = w.Write(out)
	return err
}

// Decode reads one bundle from r, rejecting unknown schemas.
func Decode(r io.Reader) (*Bundle, error) {
	var b Bundle
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("flightrec: decode bundle: %w", err)
	}
	if b.Schema != BundleSchema {
		return nil, fmt.Errorf("flightrec: unsupported bundle schema %q (want %q)", b.Schema, BundleSchema)
	}
	return &b, nil
}

// ReadFile decodes the bundle at path.
func ReadFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// BundleFileName is the canonical per-bundle file name inside a postmortem
// output directory.
func BundleFileName(seq int) string { return fmt.Sprintf("bundle-%03d.json", seq) }

// WriteDir writes each bundle to dir (created if needed) under its
// canonical file name and returns the written paths in order.
func WriteDir(dir string, bundles []Bundle) ([]string, error) {
	if len(bundles) == 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(bundles))
	for i := range bundles {
		p := filepath.Join(dir, BundleFileName(bundles[i].Seq))
		f, err := os.Create(p)
		if err != nil {
			return paths, err
		}
		err = bundles[i].Encode(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return paths, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}
