// Package flightrec is the always-on incident flight recorder: a bounded,
// allocation-conscious capture layer that keeps the recent past of a run in
// ring buffers — epoch telemetry samples with scheme gauges, attribution
// deltas, top-K offender blocks, and semantic movement events — and, when
// the online health detector (internal/health) opens an incident, freezes
// the pre-trigger window, keeps recording until the incident closes plus a
// short tail, and emits a self-contained postmortem Bundle.
//
// Like every observability layer in this repo the recorder is provably
// inert: it only copies counters and appends to preallocated buffers on the
// simulation goroutine, never schedules events or touches simulation state,
// so enabling it cannot change Cycles, any stats.Memory counter, or the
// incident stream itself. For a fixed seed its bundles are byte-
// deterministic (fixed struct field order, no maps in encoded forms, no
// wall clock).
package flightrec

import (
	"silcfm/internal/health"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry"
	"silcfm/internal/telemetry/exemplar"
)

// Defaults for the zero Config.
const (
	// DefaultHistoryEpochs is the pre-trigger epoch window kept in the
	// history ring.
	DefaultHistoryEpochs = 16
	// DefaultTailEpochs is how many quiet epochs are captured after the
	// last incident of a capture closes.
	DefaultTailEpochs = 4
	// DefaultEventRing bounds the movement-event ring (pre-trigger events).
	DefaultEventRing = 4096
	// DefaultMaxBundleEvents bounds the events captured while an incident
	// is open (the ring excerpt plus live capture); overflow is counted.
	DefaultMaxBundleEvents = 2048
	// DefaultTopK is how many offender blocks each epoch snapshot keeps.
	DefaultTopK = 8
	// DefaultMaxBundles bounds bundles per run; captures past the cap are
	// counted as dropped.
	DefaultMaxBundles = 8
	// DefaultMaxCaptureEpochs bounds one capture's epoch record (pre-window
	// included) so a never-closing incident cannot grow a bundle without
	// bound; later epochs are counted as dropped.
	DefaultMaxCaptureEpochs = 256

	// offenderTableSlots is the per-epoch offender hash table capacity.
	// First-come-keeps-slot with linear probing: the profiled set is a
	// deterministic function of the access stream, overflow is counted.
	offenderTableSlots = 1024
)

// Config tunes the recorder's windows and bounds. The zero value means
// "defaults"; harness.Run attaches a recorder to every run unless Disabled
// is set.
type Config struct {
	// Disabled turns the recorder off entirely.
	Disabled bool
	// HistoryEpochs is the pre-trigger window length (default 16).
	HistoryEpochs int
	// TailEpochs is the post-close capture tail (default 4).
	TailEpochs int
	// EventRing bounds the movement-event ring (default 4096).
	EventRing int
	// MaxBundleEvents bounds one bundle's event excerpt (default 2048).
	MaxBundleEvents int
	// TopK is the per-epoch offender table depth (default 8).
	TopK int
	// MaxBundles bounds bundles per run (default 8).
	MaxBundles int
	// MaxCaptureEpochs bounds one capture's epoch window (default 256).
	MaxCaptureEpochs int
	// OnBundle, when set, receives each finalized bundle on the simulation
	// goroutine (the live registry attaches here). Bundles are immutable
	// once emitted, so the callback may retain and share them freely.
	OnBundle func(*Bundle)
	// Exemplars, when set, is called at incident open to freeze the
	// tail-latency exemplar reservoirs into the capture (the harness wires
	// it to the exemplar recorder's Snapshot). The returned slice must be
	// immutable.
	Exemplars func() []exemplar.Exemplar
}

func (c Config) withDefaults() Config {
	if c.HistoryEpochs <= 0 {
		c.HistoryEpochs = DefaultHistoryEpochs
	}
	if c.TailEpochs <= 0 {
		c.TailEpochs = DefaultTailEpochs
	}
	if c.EventRing <= 0 {
		c.EventRing = DefaultEventRing
	}
	if c.MaxBundleEvents <= 0 {
		c.MaxBundleEvents = DefaultMaxBundleEvents
	}
	if c.TopK <= 0 {
		c.TopK = DefaultTopK
	}
	if c.TopK > offenderTableSlots {
		c.TopK = offenderTableSlots
	}
	if c.MaxBundles <= 0 {
		c.MaxBundles = DefaultMaxBundles
	}
	if c.MaxCaptureEpochs <= c.HistoryEpochs {
		c.MaxCaptureEpochs = DefaultMaxCaptureEpochs
		if c.MaxCaptureEpochs <= c.HistoryEpochs {
			c.MaxCaptureEpochs = 2 * c.HistoryEpochs
		}
	}
	return c
}

// event is the compact fixed-size ring form of one movement event.
type event struct {
	cycle    uint64
	src, dst uint64
	kind     uint8 // eventKind
	srcLevel int8  // stats.MemLevel, -1 = none
	dstLevel int8
	home     bool
}

const (
	evSwap = iota
	evLock
	evUnlock
	evBypass
	evMispredict
)

var eventKindNames = [...]string{
	evSwap: "swap", evLock: "lock", evUnlock: "unlock",
	evBypass: "bypass", evMispredict: "mispredict",
}

// offSlot is one offender-table entry: key+1 keyed (0 = empty), cleared
// each epoch.
type offSlot struct {
	key     uint64 // flat block index + 1
	demands uint64
	lat     uint64
}

// epochSlot is one history-ring entry: a full value copy of the epoch's
// telemetry sample (gauges rebound into a per-slot reusable buffer), the
// attribution delta, the per-rule health trace and the epoch's offender
// top-K.
type epochSlot struct {
	sample     telemetry.Sample
	gaugeBuf   []mem.Gauge
	attr       stats.Attribution // per-epoch delta, not cumulative
	ruleOpen   []bool            // health.Kinds() order
	ruleSev    []float64
	off        []Offender // top-K, count desc then block asc
	nOff       int
	offTotal   int    // distinct blocks seen this epoch
	offDropped uint64 // table-overflow demands not attributed to a block
}

// Recorder is one run's flight recorder. It implements mem.Observer,
// mem.SchemeObserver and mem.DemandObserver for the event feed, and is fed
// epoch state + health status by the harness's OnEpoch chain (Observe).
// Not safe for concurrent use: everything runs on the simulation goroutine.
type Recorder struct {
	cfg Config
	eng *sim.Engine

	// fingerprint/run identify the capture source, stamped into bundles.
	fingerprint string
	run         string

	kinds   []string // health.Kinds(), index-aligned with slot rule traces
	kindIdx map[string]int

	// Epoch history ring: last HistoryEpochs epochs, oldest at (head) when
	// full. head is the next write position; n <= HistoryEpochs.
	ring []epochSlot
	head int
	n    int

	// Movement-event ring.
	events  []event
	evHead  int
	evN     int
	evTotal uint64 // lifetime count, for drop accounting

	prevAttr stats.Attribution

	// Offender table for the current epoch.
	offTable   [offenderTableSlots]offSlot
	offUsed    int
	offDropped uint64

	cap          *capture
	bundles      []*Bundle
	dropped      int // captures refused past MaxBundles
	bundleAllocs int // monotone bundle sequence
}

// capture is one in-flight incident capture.
type capture struct {
	trigger    string // kind of the first opened incident
	firstEpoch uint64
	preEpochs  int
	epochs     []EpochRecord
	events     []EventRecord
	evDropped  uint64
	epDropped  uint64
	incidents  []health.Incident // closes observed during the capture
	openKinds  map[string]bool
	quiet      int                 // consecutive all-closed epochs (tail countdown)
	exemplars  []exemplar.Exemplar // tail reservoirs frozen at open
}

// New builds a recorder over sys with cfg's bounds (zero fields take the
// documented defaults). fingerprint is the run's config fingerprint
// (harness.Spec.Fingerprint) and run its "<scheme>/<workload>" label; both
// are stamped into every bundle. Returns nil when cfg.Disabled is set; all
// Recorder methods are nil-safe.
func New(cfg Config, sys *mem.System, fingerprint, run string) *Recorder {
	if cfg.Disabled {
		return nil
	}
	r := &Recorder{
		cfg:         cfg.withDefaults(),
		eng:         sys.Eng,
		fingerprint: fingerprint,
		run:         run,
		kinds:       health.Kinds(),
	}
	r.kindIdx = make(map[string]int, len(r.kinds))
	for i, k := range r.kinds {
		r.kindIdx[k] = i
	}
	r.ring = make([]epochSlot, r.cfg.HistoryEpochs)
	for i := range r.ring {
		r.ring[i].ruleOpen = make([]bool, len(r.kinds))
		r.ring[i].ruleSev = make([]float64, len(r.kinds))
		r.ring[i].off = make([]Offender, r.cfg.TopK)
	}
	r.events = make([]event, r.cfg.EventRing)
	return r
}

// --- mem.Observer -----------------------------------------------------

// Demand/Capture/Deliver/Relocate are part of the raw dataflow stream; the
// recorder keys its event record off the semantic SchemeObserver/
// DemandObserver events instead, so these are no-ops (implementing the
// base interface is what lets the recorder join the fanout).
func (r *Recorder) Demand(pa uint64, loc mem.Location, write bool) {}
func (r *Recorder) Capture(loc mem.Location)                       {}
func (r *Recorder) Deliver(src, dst mem.Location)                  {}
func (r *Recorder) Relocate(src, dst mem.Location)                 {}

// --- mem.SchemeObserver -----------------------------------------------

// Swap records an initiated exchange between two device locations.
func (r *Recorder) Swap(a, b mem.Location) {
	if r == nil {
		return
	}
	r.push(event{
		cycle: r.eng.Now(), kind: evSwap,
		src: a.DevAddr, srcLevel: int8(a.Level),
		dst: b.DevAddr, dstLevel: int8(b.Level),
	})
}

// Lock records an NM frame locking flat block index block.
func (r *Recorder) Lock(frame, block uint64, home bool) {
	if r == nil {
		return
	}
	r.push(event{cycle: r.eng.Now(), kind: evLock, src: frame, dst: block,
		srcLevel: -1, dstLevel: -1, home: home})
}

// Unlock records an NM frame releasing flat block index block.
func (r *Recorder) Unlock(frame, block uint64) {
	if r == nil {
		return
	}
	r.push(event{cycle: r.eng.Now(), kind: evUnlock, src: frame, dst: block,
		srcLevel: -1, dstLevel: -1})
}

// --- mem.DemandObserver -----------------------------------------------

// DemandComplete feeds the per-epoch offender table (every completion) and
// the event ring (bypass and mispredict completions — the paths that mark
// scheme decisions going wrong).
func (r *Recorder) DemandComplete(a *mem.Access, path stats.DemandPath, lat uint64) {
	if r == nil {
		return
	}
	r.bump(uint64(memunits.BlockOf(a.PAddr)), lat)
	switch path {
	case stats.PathBypass:
		r.push(event{cycle: r.eng.Now(), kind: evBypass,
			src: uint64(memunits.BlockOf(a.PAddr)), srcLevel: -1, dstLevel: -1, dst: lat})
	case stats.PathMispredict:
		r.push(event{cycle: r.eng.Now(), kind: evMispredict,
			src: uint64(memunits.BlockOf(a.PAddr)), srcLevel: -1, dstLevel: -1, dst: lat})
	}
}

// push appends ev to the event ring (overwriting the oldest when full) and,
// during a capture, to the capture's bounded event list.
func (r *Recorder) push(ev event) {
	r.evTotal++
	r.events[r.evHead] = ev
	r.evHead++
	if r.evHead == len(r.events) {
		r.evHead = 0
	}
	if r.evN < len(r.events) {
		r.evN++
	}
	if c := r.cap; c != nil {
		if len(c.events) < r.cfg.MaxBundleEvents {
			c.events = append(c.events, jsonEvent(&ev))
		} else {
			c.evDropped++
		}
	}
}

// bump charges one demand completion to flat block b in the per-epoch
// offender table: open addressing, linear probe, first-come-keeps-slot.
func (r *Recorder) bump(b, lat uint64) {
	key := b + 1
	// Fibonacci hash of the block index into the fixed table.
	i := int((b * 0x9e3779b97f4a7c15) >> 54 % offenderTableSlots)
	for probes := 0; probes < offenderTableSlots; probes++ {
		s := &r.offTable[i]
		if s.key == key {
			s.demands++
			s.lat += lat
			return
		}
		if s.key == 0 {
			s.key = key
			s.demands = 1
			s.lat = lat
			r.offUsed++
			return
		}
		i++
		if i == offenderTableSlots {
			i = 0
		}
	}
	r.offDropped++
}

// Observe feeds one telemetry epoch boundary: the sample (with gauges), the
// live cumulative attribution, and the health status for the same boundary.
// Called by the harness's OnEpoch chain after the detector has stepped.
func (r *Recorder) Observe(st telemetry.EpochState, hs health.Status) {
	if r == nil || st.Sample == nil {
		return
	}
	// Record the epoch into the history ring.
	slot := &r.ring[r.head]
	r.head++
	if r.head == len(r.ring) {
		r.head = 0
	}
	if r.n < len(r.ring) {
		r.n++
	}
	r.fillSlot(slot, st, hs)

	// Advance the capture state machine.
	if c := r.cap; c != nil {
		if len(c.epochs) < r.cfg.MaxCaptureEpochs {
			c.epochs = append(c.epochs, recordOf(slot))
		} else {
			c.epDropped++
		}
		c.incidents = append(c.incidents, hs.Closed...)
		for _, in := range hs.Opened {
			c.openKinds[in.Kind] = true
		}
		for _, in := range hs.Closed {
			delete(c.openKinds, in.Kind)
		}
		if len(hs.Open) == 0 {
			c.quiet++
			if c.quiet >= r.cfg.TailEpochs {
				r.finalize(false)
			}
		} else {
			c.quiet = 0
		}
		return
	}
	if len(hs.Opened) > 0 {
		if len(r.bundles) >= r.cfg.MaxBundles {
			r.dropped++
			return
		}
		r.openCapture(st.Sample.Epoch, hs)
	}
}

// fillSlot copies one epoch into a ring slot without allocating in steady
// state (the gauge buffer is reused once it has grown to the gauge count).
func (r *Recorder) fillSlot(slot *epochSlot, st telemetry.EpochState, hs health.Status) {
	slot.sample = *st.Sample
	slot.gaugeBuf = append(slot.gaugeBuf[:0], st.Sample.Gauges...)
	slot.sample.Gauges = slot.gaugeBuf

	// Attribution delta: cumulative minus previous cumulative.
	if st.Attr != nil {
		cur := *st.Attr
		d := cur
		for p := 0; p < int(stats.NumDemandPaths); p++ {
			d.Count[p] -= r.prevAttr.Count[p]
			for s := 0; s < int(stats.NumSpans); s++ {
				d.Spans[p][s] -= r.prevAttr.Spans[p][s]
			}
		}
		slot.attr = d
		r.prevAttr = cur
	} else {
		slot.attr = stats.Attribution{}
	}

	// Per-rule trace: which kinds are open at this boundary, and the open
	// incident's running peak severity.
	for i := range slot.ruleOpen {
		slot.ruleOpen[i] = false
		slot.ruleSev[i] = 0
	}
	for i := range hs.Open {
		if k, ok := r.kindIdx[hs.Open[i].Kind]; ok {
			slot.ruleOpen[k] = true
			slot.ruleSev[k] = hs.Open[i].PeakSeverity
		}
	}

	// Offender top-K: deterministic selection (count desc, block asc) over
	// the table, then clear it for the next epoch.
	slot.nOff = 0
	slot.offTotal = r.offUsed
	slot.offDropped = r.offDropped
	for i := range r.offTable {
		s := &r.offTable[i]
		if s.key == 0 {
			continue
		}
		r.rankOffender(slot, Offender{Block: s.key - 1, Demands: s.demands, LatCycles: s.lat})
		s.key = 0
	}
	r.offUsed = 0
	r.offDropped = 0
}

// rankOffender insertion-sorts o into slot's fixed top-K array.
func (r *Recorder) rankOffender(slot *epochSlot, o Offender) {
	worse := func(a, b Offender) bool { // is a ranked below b?
		if a.Demands != b.Demands {
			return a.Demands < b.Demands
		}
		return a.Block > b.Block
	}
	if slot.nOff == len(slot.off) {
		if worse(o, slot.off[slot.nOff-1]) {
			return
		}
		slot.nOff--
	}
	i := slot.nOff
	for i > 0 && worse(slot.off[i-1], o) {
		slot.off[i] = slot.off[i-1]
		i--
	}
	slot.off[i] = o
	slot.nOff++
}

// openCapture freezes the history ring as the pre-trigger window and starts
// recording. The triggering epoch is already in the ring, so it becomes the
// first "during" record; everything older is the pre-window.
func (r *Recorder) openCapture(epoch uint64, hs health.Status) {
	c := &capture{
		trigger:   hs.Opened[0].Kind,
		openKinds: make(map[string]bool, len(r.kinds)),
	}
	// Freeze the tail-exemplar reservoirs as they stood when the incident
	// opened: the slow accesses that led INTO the incident, not the ones
	// that followed it.
	if r.cfg.Exemplars != nil {
		c.exemplars = r.cfg.Exemplars()
	}
	for _, in := range hs.Open {
		c.openKinds[in.Kind] = true
	}
	c.preEpochs = r.n - 1
	c.epochs = make([]EpochRecord, 0, r.n+r.cfg.TailEpochs+4)
	// Oldest-first walk of the ring.
	start := r.head - r.n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.n; i++ {
		j := start + i
		if j >= len(r.ring) {
			j -= len(r.ring)
		}
		c.epochs = append(c.epochs, recordOf(&r.ring[j]))
	}
	if len(c.epochs) > 0 {
		c.firstEpoch = c.epochs[0].Sample.Epoch
	} else {
		c.firstEpoch = epoch
	}
	// Pre-trigger events: the ring excerpt inside the pre-window's cycle
	// span, oldest first, bounded by MaxBundleEvents (newest kept — the
	// events nearest the trigger explain it best).
	var firstCycle uint64
	if len(c.epochs) > 0 {
		firstCycle = c.epochs[0].Sample.Cycle - c.epochs[0].Sample.SpanCycles
	}
	c.events = make([]EventRecord, 0, r.cfg.MaxBundleEvents)
	evStart := r.evHead - r.evN
	if evStart < 0 {
		evStart += len(r.events)
	}
	skip := 0
	if r.evN > r.cfg.MaxBundleEvents {
		skip = r.evN - r.cfg.MaxBundleEvents
	}
	for i := 0; i < r.evN; i++ {
		j := evStart + i
		if j >= len(r.events) {
			j -= len(r.events)
		}
		ev := &r.events[j]
		if ev.cycle < firstCycle {
			continue
		}
		if skip > 0 {
			skip--
			c.evDropped++
			continue
		}
		c.events = append(c.events, jsonEvent(ev))
	}
	// Events that fell off the ring before the capture opened are part of
	// the window but unrecoverable; account for them.
	if r.evTotal > uint64(r.evN) && r.n == len(r.ring) {
		// Unknown how many of the overwritten events fall inside the
		// window; the excerpt is best-effort by construction. Only the
		// explicit skips above are counted.
		_ = firstCycle
	}
	r.cap = c
}

// finalize closes the active capture into a Bundle. forced marks an
// end-of-run flush with incidents still open.
func (r *Recorder) finalize(forced bool) {
	c := r.cap
	if c == nil {
		return
	}
	r.cap = nil
	b := &Bundle{
		Schema:        BundleSchema,
		Fingerprint:   r.fingerprint,
		Run:           r.run,
		Seq:           r.bundleAllocs,
		Trigger:       c.trigger,
		PreEpochs:     c.preEpochs,
		Forced:        forced,
		Epochs:        c.epochs,
		EpochsDropped: c.epDropped,
		Events:        c.events,
		EventsDropped: c.evDropped,
		Incidents:     c.incidents,
		Exemplars:     c.exemplars,
	}
	r.bundleAllocs++
	if len(c.epochs) > 0 {
		first, last := &c.epochs[0].Sample, &c.epochs[len(c.epochs)-1].Sample
		b.FirstEpoch, b.LastEpoch = first.Epoch, last.Epoch
		b.FirstCycle, b.LastCycle = first.Cycle-first.SpanCycles, last.Cycle
	}
	// Open kinds at finalize, in detector order (forced flushes only).
	for _, k := range r.kinds {
		if c.openKinds[k] {
			b.OpenKinds = append(b.OpenKinds, k)
		}
	}
	b.Rules = r.ruleTraces(c.epochs)
	b.Offenders = aggregateOffenders(c.epochs, r.cfg.TopK)
	r.bundles = append(r.bundles, b)
	if r.cfg.OnBundle != nil {
		r.cfg.OnBundle(b)
	}
}

// ruleTraces reduces the per-epoch rule columns into one trace per rule
// that fired anywhere in the window.
func (r *Recorder) ruleTraces(epochs []EpochRecord) []RuleTrace {
	var out []RuleTrace
	for i, kind := range r.kinds {
		tr := RuleTrace{Kind: kind}
		for e := range epochs {
			for _, rs := range epochs[e].Rules {
				if rs.Kind != kind {
					continue
				}
				tr.OpenEpochs++
				if rs.Severity > tr.PeakSeverity {
					tr.PeakSeverity = rs.Severity
				}
				if tr.OpenEpochs == 1 {
					tr.FirstEpoch = epochs[e].Sample.Epoch
				}
				tr.LastEpoch = epochs[e].Sample.Epoch
			}
		}
		if tr.OpenEpochs == 0 {
			continue
		}
		_ = i
		out = append(out, tr)
	}
	return out
}

// aggregateOffenders merges every epoch's top-K into a window-wide top-K
// (demand-count desc, block asc).
func aggregateOffenders(epochs []EpochRecord, k int) []Offender {
	sum := map[uint64]*Offender{}
	for e := range epochs {
		for _, o := range epochs[e].Offenders {
			if a, ok := sum[o.Block]; ok {
				a.Demands += o.Demands
				a.LatCycles += o.LatCycles
			} else {
				c := o
				sum[o.Block] = &c
			}
		}
	}
	out := make([]Offender, 0, len(sum))
	for _, o := range sum {
		out = append(out, *o)
	}
	sortOffenders(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func sortOffenders(out []Offender) {
	// Insertion sort: the window-wide aggregation is tiny (<= epochs x K).
	for i := 1; i < len(out); i++ {
		o := out[i]
		j := i
		for j > 0 && (out[j-1].Demands < o.Demands ||
			(out[j-1].Demands == o.Demands && out[j-1].Block > o.Block)) {
			out[j] = out[j-1]
			j--
		}
		out[j] = o
	}
}

// recordOf converts a ring slot into the bundle's JSON-friendly epoch form
// (fresh copies: bundles outlive the ring).
func recordOf(slot *epochSlot) EpochRecord {
	rec := EpochRecord{Sample: slot.sample}
	rec.Sample.Gauges = append([]mem.Gauge(nil), slot.sample.Gauges...)
	for p := stats.DemandPath(0); p < stats.NumDemandPaths; p++ {
		if slot.attr.Count[p] == 0 && slot.attr.PathTotal(p) == 0 {
			continue
		}
		rec.Attr = append(rec.Attr, PathDelta{
			Path:       p.String(),
			Count:      slot.attr.Count[p],
			Queue:      slot.attr.Spans[p][stats.SpanQueue],
			Service:    slot.attr.Spans[p][stats.SpanService],
			MetaFetch:  slot.attr.Spans[p][stats.SpanMetaFetch],
			SwapSerial: slot.attr.Spans[p][stats.SpanSwapSerial],
			Mispredict: slot.attr.Spans[p][stats.SpanMispredict],
			Other:      slot.attr.Spans[p][stats.SpanOther],
		})
	}
	kinds := health.Kinds()
	for i := range slot.ruleOpen {
		if !slot.ruleOpen[i] {
			continue
		}
		rec.Rules = append(rec.Rules, RuleState{Kind: kinds[i], Severity: slot.ruleSev[i]})
	}
	rec.Offenders = append(rec.Offenders, slot.off[:slot.nOff]...)
	rec.OffenderBlocks = slot.offTotal
	rec.OffendersDropped = slot.offDropped
	return rec
}

// jsonEvent converts a compact ring event into its bundle form.
func jsonEvent(ev *event) EventRecord {
	rec := EventRecord{Cycle: ev.cycle, Kind: eventKindNames[ev.kind],
		Src: ev.src, Dst: ev.dst, Home: ev.home}
	if ev.srcLevel >= 0 {
		rec.SrcLevel = stats.MemLevel(ev.srcLevel).String()
		rec.DstLevel = stats.MemLevel(ev.dstLevel).String()
	}
	return rec
}

// Finish flushes an in-flight capture (incidents still open at end of run
// become a forced bundle) and returns every bundle the run produced, in
// emission order. Call once, after telemetry Finish has pumped the final
// partial epoch.
func (r *Recorder) Finish() []Bundle {
	if r == nil {
		return nil
	}
	r.finalize(true)
	out := make([]Bundle, len(r.bundles))
	for i, b := range r.bundles {
		out[i] = *b
	}
	return out
}

// Bundles returns pointers to the bundles emitted so far (immutable).
func (r *Recorder) Bundles() []*Bundle {
	if r == nil {
		return nil
	}
	return append([]*Bundle(nil), r.bundles...)
}

// DroppedCaptures reports incident opens refused because MaxBundles was
// already reached.
func (r *Recorder) DroppedCaptures() int {
	if r == nil {
		return 0
	}
	return r.dropped
}
