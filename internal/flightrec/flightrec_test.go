package flightrec_test

import (
	"bytes"
	"strings"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/flightrec"
	"silcfm/internal/harness"
	"silcfm/internal/health"
	"silcfm/internal/mem"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry"
)

// newRec builds a recorder over a bare system (engine only — the synthetic
// tests feed Observe/DemandComplete directly, no simulation runs).
func newRec(t *testing.T, cfg flightrec.Config) *flightrec.Recorder {
	t.Helper()
	r := flightrec.New(cfg, &mem.System{Eng: sim.NewEngine()}, "test-fp", "test/run")
	if r == nil {
		t.Fatal("New returned nil for an enabled config")
	}
	return r
}

// epochState synthesizes one epoch boundary. Epoch e spans cycles
// [e*1000, (e+1)*1000), so epoch 0's window starts at cycle 0 and ring
// events stamped at cycle 0 fall inside any pre-window that reaches it.
func epochState(epoch uint64) telemetry.EpochState {
	return telemetry.EpochState{
		Sample: &telemetry.Sample{
			Epoch:      epoch,
			Cycle:      (epoch + 1) * 1000,
			SpanCycles: 1000,
			LLCMisses:  100 + epoch,
			Gauges:     []mem.Gauge{{Name: "locked_frames", Value: float64(epoch)}},
		},
	}
}

// incident builds a minimal open-incident record for kind at epoch e.
func incident(kind string, e uint64) health.Incident {
	return health.Incident{Kind: kind, FirstEpoch: e, LastEpoch: e, PeakSeverity: 1.5}
}

// feed observes epochs [from, to) with no incident activity.
func feed(r *flightrec.Recorder, from, to uint64) {
	for e := from; e < to; e++ {
		r.Observe(epochState(e), health.Status{})
	}
}

// trigger opens kind at epoch e (the incident appears in Opened and Open).
func trigger(r *flightrec.Recorder, kind string, e uint64) {
	in := incident(kind, e)
	r.Observe(epochState(e), health.Status{
		Open:   []health.Incident{in},
		Opened: []health.Incident{in},
	})
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *flightrec.Recorder
	r.Swap(mem.Location{}, mem.Location{})
	r.Lock(1, 2, true)
	r.Unlock(1, 2)
	r.DemandComplete(&mem.Access{}, stats.PathBypass, 10)
	r.Observe(epochState(0), health.Status{})
	if b := r.Finish(); b != nil {
		t.Errorf("nil recorder Finish = %v, want nil", b)
	}
	if b := r.Bundles(); b != nil {
		t.Errorf("nil recorder Bundles = %v, want nil", b)
	}
	if d := r.DroppedCaptures(); d != 0 {
		t.Errorf("nil recorder DroppedCaptures = %d, want 0", d)
	}
}

func TestDisabledConfigReturnsNil(t *testing.T) {
	r := flightrec.New(flightrec.Config{Disabled: true}, &mem.System{Eng: sim.NewEngine()}, "fp", "run")
	if r != nil {
		t.Fatal("New with Disabled returned a live recorder")
	}
}

// TestCaptureLifecycle walks the full state machine: history fills, an
// incident opens (freezing the ring as the pre-window), stays open, closes,
// and the tail countdown finalizes an unforced bundle.
func TestCaptureLifecycle(t *testing.T) {
	r := newRec(t, flightrec.Config{HistoryEpochs: 4, TailEpochs: 2})
	feed(r, 0, 5) // ring now holds epochs 1-4
	trigger(r, health.KindSwapThrash, 5)
	// Open through epoch 6, closed at 7, quiet 7 and 8 -> finalize at 8.
	open := incident(health.KindSwapThrash, 5)
	r.Observe(epochState(6), health.Status{Open: []health.Incident{open}})
	closed := open
	closed.LastEpoch = 7
	r.Observe(epochState(7), health.Status{Closed: []health.Incident{closed}})
	r.Observe(epochState(8), health.Status{})

	bundles := r.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("got %d bundles, want 1 (tail should have finalized)", len(bundles))
	}
	b := bundles[0]
	if b.Trigger != health.KindSwapThrash || b.Forced {
		t.Errorf("trigger=%q forced=%v, want %q unforced", b.Trigger, b.Forced, health.KindSwapThrash)
	}
	// Ring held epochs 2-5 at trigger time (capacity 4, trigger included).
	if b.PreEpochs != 3 || b.FirstEpoch != 2 || b.LastEpoch != 8 {
		t.Errorf("window pre=%d epochs %d-%d, want pre=3 epochs 2-8", b.PreEpochs, b.FirstEpoch, b.LastEpoch)
	}
	if b.FirstCycle != 2000 || b.LastCycle != 9000 {
		t.Errorf("cycles %d-%d, want 2000-9000", b.FirstCycle, b.LastCycle)
	}
	if len(b.Epochs) != 7 {
		t.Errorf("captured %d epochs, want 7 (4 ring + 6,7,8)", len(b.Epochs))
	}
	if b.Epochs[b.PreEpochs].Sample.Epoch != 5 {
		t.Errorf("trigger record is epoch %d, want 5", b.Epochs[b.PreEpochs].Sample.Epoch)
	}
	if len(b.Incidents) != 1 || b.Incidents[0].LastEpoch != 7 {
		t.Errorf("incidents = %+v, want the one closed record", b.Incidents)
	}
	if len(b.OpenKinds) != 0 {
		t.Errorf("unforced bundle has open kinds %v", b.OpenKinds)
	}
	if len(b.Rules) != 1 || b.Rules[0].Kind != health.KindSwapThrash || b.Rules[0].OpenEpochs != 2 {
		t.Errorf("rule traces = %+v, want swap-thrash open at 2 boundaries", b.Rules)
	}
	// Finish with nothing in flight adds no forced bundle.
	if out := r.Finish(); len(out) != 1 {
		t.Errorf("Finish returned %d bundles, want 1", len(out))
	}
}

// TestRingCapacityOne is the tightest boundary: a one-slot history ring
// means the trigger epoch is the whole window and there is no pre-history.
func TestRingCapacityOne(t *testing.T) {
	r := newRec(t, flightrec.Config{HistoryEpochs: 1, TailEpochs: 1})
	feed(r, 0, 5)
	trigger(r, health.KindLockChurn, 5)
	r.Observe(epochState(6), health.Status{})
	bundles := r.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("got %d bundles, want 1", len(bundles))
	}
	b := bundles[0]
	if b.PreEpochs != 0 || b.FirstEpoch != 5 {
		t.Errorf("pre=%d first=%d, want pre=0 first=5", b.PreEpochs, b.FirstEpoch)
	}
	if len(b.Epochs) != 2 || b.Epochs[0].Sample.Epoch != 5 {
		t.Errorf("epochs = %d starting at %d, want 2 starting at 5", len(b.Epochs), b.Epochs[0].Sample.Epoch)
	}
}

// TestPreWindowShorterThanHistory: an incident in the run's first epochs
// must capture only what exists, not a full ring of stale slots.
func TestPreWindowShorterThanHistory(t *testing.T) {
	r := newRec(t, flightrec.Config{HistoryEpochs: 16, TailEpochs: 1})
	feed(r, 0, 2)
	trigger(r, health.KindQueueSaturation, 2)
	r.Observe(epochState(3), health.Status{})
	bundles := r.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("got %d bundles, want 1", len(bundles))
	}
	b := bundles[0]
	if b.PreEpochs != 2 || b.FirstEpoch != 0 || len(b.Epochs) != 4 {
		t.Errorf("pre=%d first=%d n=%d, want pre=2 first=0 n=4", b.PreEpochs, b.FirstEpoch, len(b.Epochs))
	}
	for i := range b.Epochs {
		if b.Epochs[i].Sample.Epoch != uint64(i) {
			t.Fatalf("epoch record %d holds epoch %d, want oldest-first 0,1,2,3", i, b.Epochs[i].Sample.Epoch)
		}
	}
}

// TestRingExactWrap fills the ring an exact multiple of its capacity before
// triggering, so head has wrapped back to zero: the oldest-first walk must
// still produce strictly increasing epochs.
func TestRingExactWrap(t *testing.T) {
	r := newRec(t, flightrec.Config{HistoryEpochs: 4, TailEpochs: 1})
	feed(r, 0, 8) // two full revolutions; head back at slot 0
	trigger(r, health.KindSwapThrash, 8)
	r.Observe(epochState(9), health.Status{})
	bundles := r.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("got %d bundles, want 1", len(bundles))
	}
	b := bundles[0]
	if b.PreEpochs != 3 || b.FirstEpoch != 5 {
		t.Errorf("pre=%d first=%d, want pre=3 first=5", b.PreEpochs, b.FirstEpoch)
	}
	want := uint64(5)
	for i := range b.Epochs {
		if b.Epochs[i].Sample.Epoch != want {
			t.Fatalf("epoch record %d holds epoch %d, want %d", i, b.Epochs[i].Sample.Epoch, want)
		}
		want++
	}
	// Each record owns its gauges: ring reuse after capture must not reach
	// into an emitted bundle.
	feed(r, 10, 20)
	if g := b.Epochs[0].Sample.Gauges[0].Value; g != 5 {
		t.Errorf("bundle gauge mutated to %v after ring reuse, want 5", g)
	}
}

// TestForcedFlushAtFinish: a capture still in flight at end of run becomes
// a forced bundle naming the still-open kinds in detector order.
func TestForcedFlushAtFinish(t *testing.T) {
	r := newRec(t, flightrec.Config{HistoryEpochs: 4})
	feed(r, 0, 3)
	trigger(r, health.KindSwapThrash, 3)
	open := []health.Incident{incident(health.KindSwapThrash, 3), incident(health.KindQueueSaturation, 4)}
	r.Observe(epochState(4), health.Status{Open: open, Opened: open[1:]})
	out := r.Finish()
	if len(out) != 1 {
		t.Fatalf("Finish returned %d bundles, want 1 forced", len(out))
	}
	b := out[0]
	if !b.Forced || b.Trigger != health.KindSwapThrash {
		t.Errorf("forced=%v trigger=%q, want forced swap-thrash", b.Forced, b.Trigger)
	}
	wantKinds := []string{health.KindSwapThrash, health.KindQueueSaturation}
	if len(b.OpenKinds) != 2 || b.OpenKinds[0] != wantKinds[0] || b.OpenKinds[1] != wantKinds[1] {
		t.Errorf("open kinds = %v, want %v (detector order)", b.OpenKinds, wantKinds)
	}
}

// TestMaxBundlesDropsLaterCaptures: opens past the bundle cap are refused
// and counted, never silently captured.
func TestMaxBundlesDropsLaterCaptures(t *testing.T) {
	r := newRec(t, flightrec.Config{HistoryEpochs: 2, TailEpochs: 1, MaxBundles: 1})
	trigger(r, health.KindSwapThrash, 0)
	r.Observe(epochState(1), health.Status{}) // tail -> bundle 0
	trigger(r, health.KindSwapThrash, 2)      // refused: cap reached
	r.Observe(epochState(3), health.Status{})
	if n := len(r.Bundles()); n != 1 {
		t.Errorf("got %d bundles, want 1", n)
	}
	if d := r.DroppedCaptures(); d != 1 {
		t.Errorf("DroppedCaptures = %d, want 1", d)
	}
}

// TestEventExcerptBounds: the pre-trigger excerpt keeps the newest events
// when the ring holds more than MaxBundleEvents, and during-capture
// overflow is counted rather than grown.
func TestEventExcerptBounds(t *testing.T) {
	r := newRec(t, flightrec.Config{HistoryEpochs: 2, TailEpochs: 1, MaxBundleEvents: 4})
	for i := uint64(0); i < 10; i++ {
		r.Lock(i, 100+i, false) // engine never advances: all at cycle 0
	}
	trigger(r, health.KindLockChurn, 0) // epoch 0 spans cycle 0: all in window
	for i := uint64(0); i < 3; i++ {
		r.Unlock(i, 100+i) // during capture, but the excerpt is already full
	}
	r.Observe(epochState(1), health.Status{})
	bundles := r.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("got %d bundles, want 1", len(bundles))
	}
	b := bundles[0]
	if len(b.Events) != 4 {
		t.Fatalf("excerpt holds %d events, want 4", len(b.Events))
	}
	// Newest pre-trigger events kept: locks of frames 6-9.
	for i, ev := range b.Events {
		if ev.Kind != "lock" || ev.Src != uint64(6+i) {
			t.Errorf("event %d = %+v, want lock frame %d", i, ev, 6+i)
		}
	}
	if b.EventsDropped != 9 { // 6 older pre-trigger + 3 during-capture
		t.Errorf("EventsDropped = %d, want 9", b.EventsDropped)
	}
}

// TestOffenderTopK: per-epoch top-K selection is count desc then block asc,
// and the table resets between epochs.
func TestOffenderTopK(t *testing.T) {
	r := newRec(t, flightrec.Config{HistoryEpochs: 2, TailEpochs: 1, TopK: 3})
	hit := func(block, times uint64) {
		a := &mem.Access{PAddr: block << 11}
		for i := uint64(0); i < times; i++ {
			r.DemandComplete(a, stats.PathNMHit, 100)
		}
	}
	hit(7, 5)
	hit(3, 5) // ties block 7 on count; lower block ranks first
	hit(9, 9)
	hit(1, 1) // squeezed out of the top 3
	trigger(r, health.KindSwapThrash, 0)
	hit(42, 2) // next epoch's table starts clean
	r.Observe(epochState(1), health.Status{})
	bundles := r.Bundles()
	if len(bundles) != 1 {
		t.Fatalf("got %d bundles, want 1", len(bundles))
	}
	b := bundles[0]
	ep0 := b.Epochs[0]
	want := []flightrec.Offender{
		{Block: 9, Demands: 9, LatCycles: 900},
		{Block: 3, Demands: 5, LatCycles: 500},
		{Block: 7, Demands: 5, LatCycles: 500},
	}
	if len(ep0.Offenders) != len(want) {
		t.Fatalf("epoch 0 offenders = %+v, want %+v", ep0.Offenders, want)
	}
	for i := range want {
		if ep0.Offenders[i] != want[i] {
			t.Errorf("epoch 0 offender %d = %+v, want %+v", i, ep0.Offenders[i], want[i])
		}
	}
	if ep0.OffenderBlocks != 4 {
		t.Errorf("epoch 0 distinct blocks = %d, want 4", ep0.OffenderBlocks)
	}
	ep1 := b.Epochs[1]
	if len(ep1.Offenders) != 1 || ep1.Offenders[0].Block != 42 {
		t.Errorf("epoch 1 offenders = %+v, want only block 42 (table not cleared?)", ep1.Offenders)
	}
	// Window-wide aggregation merges both epochs.
	if len(b.Offenders) == 0 || b.Offenders[0].Block != 9 {
		t.Errorf("window offenders = %+v, want block 9 first", b.Offenders)
	}
}

// TestSteadyStateObserveDoesNotAllocate: with no incident in flight, the
// per-epoch and per-event paths must stay allocation-free once the gauge
// buffers have warmed up — the recorder is always on, so its steady state
// rides the simulation inner loop.
func TestSteadyStateObserveDoesNotAllocate(t *testing.T) {
	r := newRec(t, flightrec.Config{})
	st := epochState(0)
	attr := &stats.Attribution{}
	st.Attr = attr
	feed(r, 0, 32) // warm the gauge buffers through a full ring revolution
	epoch := uint64(32)
	avg := testing.AllocsPerRun(200, func() {
		st.Sample.Epoch = epoch
		st.Sample.Cycle = (epoch + 1) * 1000
		attr.Count[stats.PathNMHit] += 10
		r.Observe(st, health.Status{})
		epoch++
	})
	if avg != 0 {
		t.Errorf("steady-state Observe allocates %.1f objects/epoch, want 0", avg)
	}
	a := &mem.Access{PAddr: 123 << 11}
	avg = testing.AllocsPerRun(200, func() {
		r.DemandComplete(a, stats.PathBypass, 50)
		r.Swap(mem.Location{Level: stats.NM, DevAddr: 1}, mem.Location{Level: stats.FM, DevAddr: 2})
	})
	if avg != 0 {
		t.Errorf("steady-state event feed allocates %.1f objects/event, want 0", avg)
	}
}

// TestSyntheticBundleDeterminism: two recorders fed the same sequence emit
// byte-identical bundles, and the encoding round-trips through Decode.
func TestSyntheticBundleDeterminism(t *testing.T) {
	mk := func() *flightrec.Bundle {
		r := newRec(t, flightrec.Config{HistoryEpochs: 4, TailEpochs: 2})
		for i := uint64(0); i < 6; i++ {
			r.Lock(i, 200+i, i%2 == 0)
			r.DemandComplete(&mem.Access{PAddr: (300 + i) << 11}, stats.PathFM, 80+i)
		}
		feed(r, 0, 3)
		trigger(r, health.KindSwapThrash, 3)
		r.Observe(epochState(4), health.Status{})
		r.Observe(epochState(5), health.Status{})
		out := r.Finish()
		if len(out) != 1 {
			t.Fatalf("got %d bundles, want 1", len(out))
		}
		return &out[0]
	}
	var a, b bytes.Buffer
	if err := mk().Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := mk().Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("identical feeds produced different bundle bytes:\n%s\nvs\n%s", a.String(), b.String())
	}
	dec, err := flightrec.Decode(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if dec.Trigger != health.KindSwapThrash || len(dec.Epochs) != 6 {
		t.Errorf("round-trip = trigger %q, %d epochs; want swap-thrash, 6", dec.Trigger, len(dec.Epochs))
	}
	if _, err := flightrec.Decode(strings.NewReader(`{"schema":"bogus-v9"}`)); err == nil {
		t.Error("Decode accepted an unknown schema")
	}
}

// thrashSpec is the small SILC-FM configuration the CI postmortem stage
// uses: an 8 MB near memory under a milc footprint slice that reliably
// opens swap-thrash (at epoch 0) and queue-saturation incidents.
func thrashSpec() harness.Spec {
	m := config.Default()
	m.Scheme = config.SchemeSILCFM
	m.NM = config.HBM(8 << 20)
	m.FM = config.DDR3(32 << 20)
	return harness.Spec{
		Machine:      m,
		Workload:     "milc",
		InstrPerCore: 100_000,
		FootScaleNum: 1,
		FootScaleDen: 16,
	}
}

// TestHarnessBundleByteDeterminism: a real thrashing run captures at least
// one bundle, repeat runs reproduce every byte, and disabling the recorder
// leaves the simulation's deterministic outcome untouched (inertness).
func TestHarnessBundleByteDeterminism(t *testing.T) {
	run := func(spec harness.Spec) *harness.Result {
		t.Helper()
		res, err := harness.Run(spec)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res
	}
	a := run(thrashSpec())
	if len(a.Bundles) == 0 {
		t.Fatal("thrash config captured no bundles")
	}
	if a.Bundles[0].Trigger == "" || a.Bundles[0].Fingerprint == "" {
		t.Errorf("bundle missing trigger/fingerprint: %+v", a.Bundles[0])
	}
	b := run(thrashSpec())
	if len(a.Bundles) != len(b.Bundles) {
		t.Fatalf("repeat run captured %d bundles, first captured %d", len(b.Bundles), len(a.Bundles))
	}
	for i := range a.Bundles {
		var ba, bb bytes.Buffer
		if err := a.Bundles[i].Encode(&ba); err != nil {
			t.Fatal(err)
		}
		if err := b.Bundles[i].Encode(&bb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Errorf("bundle %d differs between identical runs", i)
		}
	}

	off := thrashSpec()
	off.Flightrec = &flightrec.Config{Disabled: true}
	c := run(off)
	if len(c.Bundles) != 0 {
		t.Errorf("disabled recorder produced %d bundles", len(c.Bundles))
	}
	if a.Cycles != c.Cycles {
		t.Errorf("recorder changed Cycles: %d vs %d", a.Cycles, c.Cycles)
	}
	if a.Mem != c.Mem {
		t.Errorf("recorder changed memory counters:\non  %+v\noff %+v", a.Mem, c.Mem)
	}
}
