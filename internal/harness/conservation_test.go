package harness

import (
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/stats"
)

// TestConservationAcrossSchemes runs every scheme on a small machine and
// checks that the end-of-run counter-conservation audit holds, and that the
// latency attribution reconciles exactly with the per-path latency
// histograms: same sample count and same cycle sum for every path.
func TestConservationAcrossSchemes(t *testing.T) {
	schemes := []config.SchemeName{
		config.SchemeBaseline, config.SchemeRandom, config.SchemeHMA,
		config.SchemeCAMEO, config.SchemeCAMEOP, config.SchemePoM,
		config.SchemeSILCFM,
	}
	for _, s := range schemes {
		s := s
		t.Run(string(s), func(t *testing.T) {
			m := config.Small()
			m.Scheme = s
			r, err := Run(Spec{
				Machine:      m,
				Workload:     "milc",
				InstrPerCore: 30_000,
				FootScaleNum: 1,
				FootScaleDen: 16,
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if r.ConservationErr != nil {
				t.Errorf("conservation: %v", r.ConservationErr)
			}
			if r.AuditErr != nil {
				t.Errorf("audit: %v", r.AuditErr)
			}
			for p := stats.DemandPath(0); p < stats.NumDemandPaths; p++ {
				h := &r.Lat.Hist[p]
				if got := r.Attr.Count[p]; got != h.N {
					t.Errorf("path %s: attribution count %d, latency samples %d", p, got, h.N)
				}
				if got := r.Attr.PathTotal(p); got != h.Sum {
					t.Errorf("path %s: span sum %d, latency sum %d", p, got, h.Sum)
				}
			}
			if r.Mem.LLCMisses == 0 {
				t.Fatal("no misses simulated; test is vacuous")
			}
		})
	}
}
