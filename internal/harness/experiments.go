package harness

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"silcfm/internal/config"
	"silcfm/internal/health"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry"
	"silcfm/internal/telemetry/live"
	"silcfm/internal/workload"
)

// ExpConfig sizes an experiment sweep.
type ExpConfig struct {
	Machine      config.Machine // base machine; Scheme/SILC are overridden per variant
	InstrPerCore uint64
	Workloads    []string // defaults to all of Table III
	FootScaleNum int
	FootScaleDen int
	Parallelism  int
	// ShadowCheck enables the continuous integrity checker on every run.
	ShadowCheck bool
	// Telemetry, when non-nil, builds a per-run telemetry config (the
	// baseline leg gets label "baseline"). Returned writers implementing
	// io.Closer are closed when the run finishes; return nil to skip a run.
	Telemetry func(label, wl string) *telemetry.Config
	// Live, when non-nil, attaches every run in the sweep to a live
	// observability server; each run publishes under "<label>/<workload>"
	// and is marked done (with its incidents) as it completes.
	Live *live.Server
	// Progress, when non-nil, receives one completion line per finished run.
	Progress io.Writer
}

func (c ExpConfig) workloads() []string {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return workload.Names
}

func (c ExpConfig) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.NumCPU()
}

// Variant is one configuration under comparison (a scheme, or a SILC-FM
// feature level for Figure 6).
type Variant struct {
	Label  string
	Mutate func(*config.Machine)
}

// SchemeVariant wraps a plain scheme selection.
func SchemeVariant(s config.SchemeName) Variant {
	return Variant{Label: string(s), Mutate: func(m *config.Machine) { m.Scheme = s }}
}

// Figure6Variants returns the paper's breakdown stack: Random placement,
// then SILC-FM gaining swap, locking, associativity and bypassing one at a
// time (§V-A).
func Figure6Variants() []Variant {
	silc := func(lock bool, ways int, bypass bool) func(*config.Machine) {
		return func(m *config.Machine) {
			m.Scheme = config.SchemeSILCFM
			m.SILC.Features.Locking = lock
			m.SILC.Features.Ways = ways
			m.SILC.Features.Bypass = bypass
		}
	}
	return []Variant{
		SchemeVariant(config.SchemeRandom),
		{Label: "swap", Mutate: silc(false, 1, false)},
		{Label: "+lock", Mutate: silc(true, 1, false)},
		{Label: "+assoc", Mutate: silc(true, 4, false)},
		{Label: "+bypass", Mutate: silc(true, 4, true)},
	}
}

// Figure7Variants returns the cross-scheme comparison set.
func Figure7Variants() []Variant {
	out := make([]Variant, 0, len(config.AllSchemes))
	for _, s := range config.AllSchemes {
		out = append(out, SchemeVariant(s))
	}
	return out
}

// SweepResult holds a full (variant x workload) sweep plus the shared
// no-NM baseline runs used for normalization.
type SweepResult struct {
	Cfg      ExpConfig
	Variants []Variant
	// Runs[variant label][workload]
	Runs map[string]map[string]*Result
	// Baseline[workload] is the system-without-NM run.
	Baseline map[string]*Result
	// WallSeconds is the host wall-clock time of the whole sweep
	// (parallel legs overlap, so it is less than the per-leg sum).
	WallSeconds float64
}

// WallFooter renders host-side cost per sweep leg: each variant's summed
// wall time over its workloads and its aggregate simulation throughput
// (total simulated cycles per host second spent in the event loop).
func (s *SweepResult) WallFooter() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wall clock: sweep %.1fs", s.WallSeconds)
	legs := append([]string{"baseline"}, variantLabels(s.Variants)...)
	for _, label := range legs {
		runs := s.Runs[label]
		if label == "baseline" {
			runs = s.Baseline
		}
		var wall, loop float64
		var cycles uint64
		for _, wl := range s.Cfg.workloads() {
			r := runs[wl]
			if r == nil {
				continue
			}
			wall += r.WallSeconds
			cycles += r.Cycles
			loop += stats.Ratio(float64(r.Cycles), r.SimCyclesPerSec)
		}
		if wall == 0 {
			continue
		}
		tput := stats.Ratio(float64(cycles), loop)
		fmt.Fprintf(&b, "; %s %.1fs @ %.1f Mcyc/s", label, wall, tput/1e6)
	}
	return b.String()
}

// Speedup returns a variant's speedup over the baseline for one workload.
func (s *SweepResult) Speedup(label, wl string) float64 {
	r := s.Runs[label][wl]
	b := s.Baseline[wl]
	if r == nil || b == nil {
		return 0
	}
	return r.Speedup(b.Cycles)
}

// GeoMeanSpeedup aggregates a variant over all workloads.
func (s *SweepResult) GeoMeanSpeedup(label string) float64 {
	var xs []float64
	for _, wl := range s.Cfg.workloads() {
		xs = append(xs, s.Speedup(label, wl))
	}
	return stats.GeoMean(xs)
}

// Sweep runs every (variant, workload) pair plus baselines, in parallel.
func Sweep(cfg ExpConfig, variants []Variant) (*SweepResult, error) {
	sweepStart := time.Now()
	type job struct {
		label string
		wl    string
		mach  config.Machine
	}
	var jobs []job
	for _, wl := range cfg.workloads() {
		m := cfg.Machine
		m.Scheme = config.SchemeBaseline
		jobs = append(jobs, job{label: "", wl: wl, mach: m})
		for _, v := range variants {
			m := cfg.Machine
			v.Mutate(&m)
			jobs = append(jobs, job{label: v.Label, wl: wl, mach: m})
		}
	}

	res := &SweepResult{
		Cfg:      cfg,
		Variants: variants,
		Runs:     map[string]map[string]*Result{},
		Baseline: map[string]*Result{},
	}
	for _, v := range variants {
		res.Runs[v.Label] = map[string]*Result{}
	}

	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, cfg.parallelism())
	var wg sync.WaitGroup
	for _, j := range jobs {
		j := j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			label := j.label
			if label == "" {
				label = "baseline"
			}
			var tcfg *telemetry.Config
			if cfg.Telemetry != nil {
				tcfg = cfg.Telemetry(label, j.wl)
			}
			runID := label + "/" + j.wl
			r, err := Run(Spec{
				Machine:           j.mach,
				Workload:          j.wl,
				InstrPerCore:      cfg.InstrPerCore,
				ScaleInstrByClass: true,
				FootScaleNum:      cfg.FootScaleNum,
				FootScaleDen:      cfg.FootScaleDen,
				ShadowCheck:       cfg.ShadowCheck,
				Telemetry:         tcfg,
				Publish:           cfg.Live.Hook(runID),
			})
			closeTelemetry(tcfg)
			var final []health.Incident
			if r != nil {
				final = r.Health
			}
			cfg.Live.Done(runID, final)
			mu.Lock()
			defer mu.Unlock()
			if cfg.Progress != nil {
				status := "ok"
				if err != nil {
					status = "error: " + err.Error()
				}
				fmt.Fprintf(cfg.Progress, "done %s/%s: %s\n", label, j.wl, status)
			}
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s/%s: %w", j.label, j.wl, err)
				}
				return
			}
			if r.AuditErr != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s/%s: %w", j.label, j.wl, r.AuditErr)
				return
			}
			if r.ShadowErr != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s/%s: %w", j.label, j.wl, r.ShadowErr)
				return
			}
			if r.ConservationErr != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s/%s: %w", j.label, j.wl, r.ConservationErr)
				return
			}
			if j.label == "" {
				res.Baseline[j.wl] = r
			} else {
				res.Runs[j.label][j.wl] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	res.WallSeconds = time.Since(sweepStart).Seconds()
	return res, nil
}

// Figure6 regenerates the feature-breakdown figure: per-workload speedup of
// each SILC-FM feature level over the no-NM baseline.
func Figure6(cfg ExpConfig) (*SweepResult, *stats.Table, error) {
	sw, err := Sweep(cfg, Figure6Variants())
	if err != nil {
		return nil, nil, err
	}
	return sw, speedupTable("Figure 6: SILC-FM performance breakdown (speedup vs no-NM baseline)", sw), nil
}

// Figure7 regenerates the scheme comparison figure.
func Figure7(cfg ExpConfig) (*SweepResult, *stats.Table, error) {
	sw, err := Sweep(cfg, Figure7Variants())
	if err != nil {
		return nil, nil, err
	}
	return sw, speedupTable("Figure 7: performance comparison with other schemes (speedup vs no-NM baseline)", sw), nil
}

// Figure8 derives the demand-bandwidth split from a Figure-7-style sweep:
// the fraction of demand bytes serviced by NM per scheme (ideal 0.8).
func Figure8(sw *SweepResult) *stats.Table {
	t := &stats.Table{
		Title:   "Figure 8: fraction of demand bandwidth consumed from NM (ideal 0.8)",
		Columns: append([]string{"workload"}, variantLabels(sw.Variants)...),
	}
	for _, wl := range sw.Cfg.workloads() {
		row := []string{wl}
		for _, v := range sw.Variants {
			row = append(row, stats.F(sw.Runs[v.Label][wl].Mem.DemandNMFraction()))
		}
		t.AddRow(row...)
	}
	avg := []string{"mean"}
	for _, v := range sw.Variants {
		s := 0.0
		for _, wl := range sw.Cfg.workloads() {
			s += sw.Runs[v.Label][wl].Mem.DemandNMFraction()
		}
		avg = append(avg, stats.F(s/float64(len(sw.Cfg.workloads()))))
	}
	t.AddRow(avg...)
	return t
}

// Figure9 sweeps the NM:FM capacity ratio (1/16, 1/8, 1/4) for the
// migrating schemes and reports geometric-mean speedups.
func Figure9(cfg ExpConfig) (*stats.Table, map[uint64]map[string]float64, error) {
	schemes := []config.SchemeName{
		config.SchemeCAMEO, config.SchemeCAMEOP, config.SchemeHMA,
		config.SchemePoM, config.SchemeSILCFM,
	}
	ratios := []uint64{16, 8, 4}
	t := &stats.Table{
		Title:   "Figure 9: geomean speedup with various NM capacities (NM = FM/N)",
		Columns: []string{"ratio"},
	}
	for _, s := range schemes {
		t.Columns = append(t.Columns, string(s))
	}
	out := map[uint64]map[string]float64{}
	for _, den := range ratios {
		c := cfg
		c.Machine = cfg.Machine.WithNMRatio(den)
		var variants []Variant
		for _, s := range schemes {
			variants = append(variants, SchemeVariant(s))
		}
		sw, err := Sweep(c, variants)
		if err != nil {
			return nil, nil, fmt.Errorf("ratio 1/%d: %w", den, err)
		}
		row := []string{fmt.Sprintf("1/%d", den)}
		out[den] = map[string]float64{}
		for _, s := range schemes {
			g := sw.GeoMeanSpeedup(string(s))
			out[den][string(s)] = g
			row = append(row, stats.F2(g))
		}
		t.AddRow(row...)
	}
	return t, out, nil
}

// TableIII reports each workload's measured per-core MPKI and footprint
// through the cache hierarchy, using the baseline machine.
func TableIII(cfg ExpConfig) (*stats.Table, map[string]*Result, error) {
	t := &stats.Table{
		Title:   "Table III: workload characteristics (measured)",
		Columns: []string{"benchmark", "class", "MPKI/core", "footprint MB"},
	}
	out := map[string]*Result{}
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, cfg.parallelism())
	var wg sync.WaitGroup
	for _, wl := range cfg.workloads() {
		wl := wl
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			m := cfg.Machine
			m.Scheme = config.SchemeBaseline
			r, err := Run(Spec{Machine: m, Workload: wl, InstrPerCore: cfg.InstrPerCore,
				ScaleInstrByClass: true,
				FootScaleNum:      cfg.FootScaleNum, FootScaleDen: cfg.FootScaleDen})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			out[wl] = r
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}
	for _, wl := range cfg.workloads() {
		p, _ := workload.Spec(wl)
		r := out[wl]
		t.AddRow(wl, p.Class.String(), stats.F2(r.AvgMPKI()),
			fmt.Sprintf("%.1f", float64(r.FootprintPages)*2048/(1<<20)))
	}
	return t, out, nil
}

// Headline summarizes the paper's abstract numbers from Figure 6/7 sweeps:
// swap-only gain over static placement, the per-feature increments, the
// gain over the best alternative scheme, and the EDP delta.
type Headline struct {
	SwapOverStatic  float64 // paper: +55%
	LockIncrement   float64 // paper: +11%
	AssocIncrement  float64 // paper: +8%
	BypassIncrement float64 // paper: +8%
	TotalOverStatic float64 // paper: +82%
	OverBestAlt     float64 // paper: +36%
	BestAlt         string
	EDPReduction    float64 // paper: 13% vs best alternative
}

// ComputeHeadline derives Headline from Figure 6 and Figure 7 sweeps.
func ComputeHeadline(f6, f7 *SweepResult) Headline {
	h := Headline{}
	rand := f6.GeoMeanSpeedup("rand")
	swap := f6.GeoMeanSpeedup("swap")
	lock := f6.GeoMeanSpeedup("+lock")
	assoc := f6.GeoMeanSpeedup("+assoc")
	byp := f6.GeoMeanSpeedup("+bypass")
	if rand > 0 {
		h.SwapOverStatic = swap/rand - 1
		h.TotalOverStatic = byp/rand - 1
	}
	if swap > 0 {
		h.LockIncrement = lock/swap - 1
	}
	if lock > 0 {
		h.AssocIncrement = assoc/lock - 1
	}
	if assoc > 0 {
		h.BypassIncrement = byp/assoc - 1
	}

	silc := f7.GeoMeanSpeedup("silc")
	best, bestLabel := 0.0, ""
	for _, v := range f7.Variants {
		if v.Label == "silc" {
			continue
		}
		if g := f7.GeoMeanSpeedup(v.Label); g > best {
			best, bestLabel = g, v.Label
		}
	}
	if best > 0 {
		h.OverBestAlt = silc/best - 1
		h.BestAlt = bestLabel
	}

	// EDP vs the best alternative, averaged over workloads.
	var silcEDP, altEDP float64
	for _, wl := range f7.Cfg.workloads() {
		silcEDP += f7.Runs["silc"][wl].EDP()
		altEDP += f7.Runs[bestLabel][wl].EDP()
	}
	if altEDP > 0 {
		h.EDPReduction = 1 - silcEDP/altEDP
	}
	return h
}

func (h Headline) String() string {
	return fmt.Sprintf(
		"swap over static: %+.0f%% (paper +55%%)\n"+
			"locking:          %+.0f%% (paper +11%%)\n"+
			"associativity:    %+.0f%% (paper +8%%)\n"+
			"bypassing:        %+.0f%% (paper +8%%)\n"+
			"total over static:%+.0f%% (paper +82%%)\n"+
			"over best alt (%s): %+.0f%% (paper +36%% over CAMEO)\n"+
			"EDP reduction:    %.0f%% (paper 13%%)",
		h.SwapOverStatic*100, h.LockIncrement*100, h.AssocIncrement*100,
		h.BypassIncrement*100, h.TotalOverStatic*100, h.BestAlt,
		h.OverBestAlt*100, h.EDPReduction*100)
}

// closeTelemetry closes any per-run telemetry writers that are closable
// (Sweep owns their lifecycle; single runs close their own files).
func closeTelemetry(tcfg *telemetry.Config) {
	if tcfg == nil {
		return
	}
	for _, w := range []io.Writer{tcfg.MetricsW, tcfg.TraceW, tcfg.ProgressW, tcfg.ProfileW} {
		if c, ok := w.(io.Closer); ok {
			c.Close()
		}
	}
}

func variantLabels(vs []Variant) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Label
	}
	return out
}

func speedupTable(title string, sw *SweepResult) *stats.Table {
	t := &stats.Table{
		Title:   title,
		Columns: append([]string{"workload"}, variantLabels(sw.Variants)...),
	}
	for _, wl := range sw.Cfg.workloads() {
		row := []string{wl}
		for _, v := range sw.Variants {
			row = append(row, stats.F2(sw.Speedup(v.Label, wl)))
		}
		t.AddRow(row...)
	}
	gm := []string{"geomean"}
	for _, v := range sw.Variants {
		gm = append(gm, stats.F2(sw.GeoMeanSpeedup(v.Label)))
	}
	t.AddRow(gm...)
	return t
}
