package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"silcfm/internal/config"
)

// fingerprintView is the hashed identity of a run: the full machine plus
// every spec field that changes simulated behavior. ShadowCheck, Telemetry,
// Health, Publish and Flightrec are deliberately absent — all of them are
// provably inert.
//
// The view's field set, names and order are load-bearing: the fingerprint is
// a hash of the canonical JSON encoding, and committed baseline manifests
// (BENCH_PR*.json) carry fingerprints produced by exactly this layout.
type fingerprintView struct {
	Machine           config.Machine
	Workload          string
	Mix               []string
	TracePath         string
	InstrPerCore      uint64
	ScaleInstrByClass bool
	FootScaleNum      int
	FootScaleDen      int
}

// Fingerprint returns the short stable hash identifying what this spec
// simulates: two specs with equal fingerprints produce byte-identical
// deterministic counters. It is the "config.fingerprint" of run manifests
// (internal/manifest) and the config identity stamped into postmortem
// bundles (internal/flightrec).
func (s Spec) Fingerprint() string {
	v := fingerprintView{
		Machine:           s.Machine,
		Workload:          s.Workload,
		Mix:               s.Mix,
		TracePath:         s.TracePath,
		InstrPerCore:      s.InstrPerCore,
		ScaleInstrByClass: s.ScaleInstrByClass,
		FootScaleNum:      s.FootScaleNum,
		FootScaleDen:      s.FootScaleDen,
	}
	// Same canonical encoding as manifest.Canonical (two-space indent plus
	// trailing newline) so fingerprints match the committed baselines
	// byte-for-byte; duplicated here because manifest imports harness.
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// The view is plain data; an encode failure is a programming error.
		panic(fmt.Sprintf("harness: fingerprint: %v", err))
	}
	sum := sha256.Sum256(append(b, '\n'))
	return hex.EncodeToString(sum[:8])
}
