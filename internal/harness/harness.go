// Package harness assembles complete simulations — workload generators,
// virtual memory, the cache hierarchy, a memory-organization scheme and the
// two DRAM devices — runs them, and reduces the results into the rows of
// every table and figure in the paper's evaluation (§IV-V).
package harness

import (
	"fmt"
	"os"
	"strings"
	"time"

	"silcfm/internal/config"
	"silcfm/internal/core"
	"silcfm/internal/cpu"
	"silcfm/internal/dram"
	"silcfm/internal/energy"
	"silcfm/internal/flightrec"
	"silcfm/internal/health"
	"silcfm/internal/mem"
	"silcfm/internal/schemes/cameo"
	"silcfm/internal/schemes/flat"
	"silcfm/internal/schemes/hma"
	"silcfm/internal/schemes/pom"
	"silcfm/internal/shadow"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry"
	"silcfm/internal/telemetry/exemplar"
	"silcfm/internal/vm"
	"silcfm/internal/workload"
)

// Spec describes one simulation.
type Spec struct {
	Machine      config.Machine
	Workload     string // Table III benchmark name
	InstrPerCore uint64 // rate-mode retirement target per core
	// ScaleInstrByClass multiplies InstrPerCore by the workload class's
	// InstrScale so every benchmark reaches comparable memory steady
	// state (see workload.MPKIClass.InstrScale).
	ScaleInstrByClass bool
	// FootScaleNum/Den scale workload footprints when the machine is
	// scaled (0 means 1).
	FootScaleNum, FootScaleDen int
	// TracePath, when set, replays a captured trace file (see
	// cmd/silcfm-trace) instead of the synthetic generator; Workload is
	// then only a label and FootScale*/ScaleInstrByClass are ignored.
	TracePath string
	// Mix, when set, runs a heterogeneous multiprogrammed mix: core i
	// runs benchmark Mix[i mod len(Mix)]. Workload is ignored. (The paper
	// evaluates homogeneous rate mode; mixes are an extension.)
	Mix []string
	// ShadowCheck runs the continuous shadow-data integrity checker
	// (internal/shadow) alongside the simulation: every demand access and
	// swap is verified against a token-level reference model. Costs
	// simulation speed; enable in tests, leave off in benchmarks.
	ShadowCheck bool
	// Telemetry, when non-nil, attaches the observability layer (epoch
	// metrics sampler, movement tracer, progress reporting — see
	// internal/telemetry). Telemetry is read-only: it never changes Cycles
	// or any counter.
	Telemetry *telemetry.Config
	// Health configures the online incident detector (internal/health).
	// nil means enabled with defaults; set Disabled to opt out entirely.
	// Queue capacities default to each device's channels × (read+write
	// queue length). Like telemetry, the detector is read-only.
	Health *health.Config
	// Publish, when set, is called once per telemetry epoch on the
	// simulation goroutine with that epoch's state and the health status:
	// the incidents currently open plus the open/close transitions since
	// the previous epoch. It is the hook the live observability hub
	// (internal/telemetry/live.Registry) attaches through; the referenced
	// state is only valid during the call.
	Publish func(telemetry.EpochState, health.Status)
	// Flightrec configures the incident flight recorder
	// (internal/flightrec). nil means enabled with defaults — every run
	// keeps a bounded ring of recent epochs and movement events and emits a
	// postmortem bundle per health incident; set Disabled to opt out. Like
	// telemetry and health, the recorder is read-only and provably inert.
	Flightrec *flightrec.Config
	// Exemplars configures the tail-latency exemplar recorder
	// (internal/telemetry/exemplar). nil means enabled with defaults —
	// every run keeps the worst-K demand accesses per service path with
	// their full span waterfalls; set Disabled to opt out. Like the other
	// observability layers, the recorder is read-only and provably inert.
	Exemplars *exemplar.Config
}

// Result is one completed simulation.
type Result struct {
	stats.Run
	Energy energy.Breakdown
	// AuditErr is non-nil when the end-of-run data-integrity audit failed.
	AuditErr error
	// ShadowErr is non-nil when the continuous shadow checker observed an
	// integrity violation (only set when Spec.ShadowCheck is enabled).
	ShadowErr error
	// Lat holds the per-path demand-completion latency histograms (see
	// stats.DemandPath); always populated.
	Lat *stats.PathLatencies
	// Attr holds the per-path latency attribution (span decomposition);
	// always populated, and its per-path sums equal Lat's by construction.
	Attr *stats.Attribution
	// ConservationErr is non-nil when the end-of-run counter-conservation
	// audit (stats.CheckConservation) found an invariant violation.
	ConservationErr error
	// Health holds the closed health incidents the online detector
	// observed, in deterministic order (empty when none fired, nil when
	// the detector was disabled).
	Health []health.Incident
	// Bundles holds the flight recorder's postmortem evidence bundles in
	// emission order (empty when no incident opened, nil when the recorder
	// was disabled). Deliberately absent from run manifests: bundles are
	// written to their own files.
	Bundles []flightrec.Bundle
	// Exemplars holds the tail-latency exemplar reservoirs at end of run,
	// grouped by path and worst-first (empty when no demand completed, nil
	// when the recorder was disabled). Manifests carry only the per-path
	// summary reduction; the full records go to -exemplars-out JSONL.
	Exemplars []exemplar.Exemplar
	// Profile is the hotness profiler, when Spec.Telemetry requested one.
	Profile *telemetry.Profiler
	// Spec is the effective spec this run executed (InstrPerCore defaulted,
	// Telemetry cleared), for manifest fingerprinting.
	Spec Spec
	// WallSeconds is host wall-clock time of the whole run, setup and
	// audits included. Host-dependent: never compare exactly.
	WallSeconds float64
	// SimCyclesPerSec is simulated cycles per host second of the event
	// loop alone — the simulator's throughput figure of merit.
	SimCyclesPerSec float64
}

// placementFor returns the first-touch allocation policy each scheme
// assumes (§IV-A).
func placementFor(s config.SchemeName) vm.Policy {
	switch s {
	case config.SchemeBaseline, config.SchemeHMA:
		// No NM in the flat space (baseline) or NM reserved for the OS
		// migrator (HMA).
		return vm.PolicyFMFirst
	case config.SchemeRandom:
		return vm.PolicyRandom
	default:
		return vm.PolicyInterleaved
	}
}

// NewController constructs the scheme named by m.Scheme over sys. Most
// callers want Run; this is the assembly hook for custom drivers and
// benchmarks.
func NewController(m config.Machine, sys *mem.System) (mem.Controller, error) {
	switch m.Scheme {
	case config.SchemeBaseline:
		return flat.NewBaseline(sys), nil
	case config.SchemeRandom:
		return flat.NewStatic(sys), nil
	case config.SchemeHMA:
		return hma.New(sys, m.HMA), nil
	case config.SchemeCAMEO:
		return cameo.New(sys, config.CAMEOConfig{}), nil
	case config.SchemeCAMEOP:
		return cameo.New(sys, config.CAMEOConfig{PrefetchLines: 3}), nil
	case config.SchemePoM:
		return pom.New(sys, m.PoM), nil
	case config.SchemeSILCFM:
		return core.New(sys, m.SILC), nil
	default:
		return nil, fmt.Errorf("harness: unknown scheme %q", m.Scheme)
	}
}

// Run executes one simulation to completion.
func Run(spec Spec) (*Result, error) {
	wallStart := time.Now()
	m := spec.Machine
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if spec.InstrPerCore == 0 {
		spec.InstrPerCore = 1 << 20
	}
	// Capture the effective spec before workload-class scaling mutates
	// InstrPerCore: the manifest fingerprint hashes the declared run, and
	// the Telemetry pointer must not outlive its writers.
	manifestSpec := spec
	manifestSpec.Telemetry = nil
	manifestSpec.Health = nil
	manifestSpec.Publish = nil
	manifestSpec.Flightrec = nil
	manifestSpec.Exemplars = nil

	gens := make([]workload.Generator, m.Cores)
	targets := make([]uint64, m.Cores)
	var needBytes uint64
	wlLabel := spec.Workload

	// lookupParams resolves and scales one benchmark's parameters.
	lookupParams := func(name string) (workload.Params, error) {
		params, ok := workload.Spec(name)
		if !ok {
			return params, fmt.Errorf("harness: unknown workload %q", name)
		}
		if spec.FootScaleNum > 0 && spec.FootScaleDen > 0 {
			params = workload.ScaleFootprint(params, spec.FootScaleNum, spec.FootScaleDen)
		}
		return params, nil
	}

	switch {
	case spec.TracePath != "":
		rp, err := loadTrace(spec.TracePath)
		if err != nil {
			return nil, err
		}
		if wlLabel == "" {
			wlLabel = rp.Name()
		}
		for i := range gens {
			gens[i] = rp.CloneAt(i, m.Cores)
			targets[i] = spec.InstrPerCore
		}
		needBytes = rp.FootprintBytes() * uint64(m.Cores)
	case len(spec.Mix) > 0:
		wlLabel = "mix(" + strings.Join(spec.Mix, ",") + ")"
		for i := range gens {
			params, err := lookupParams(spec.Mix[i%len(spec.Mix)])
			if err != nil {
				return nil, err
			}
			gens[i] = workload.NewSynthetic(params, m.Seed+int64(i)*7919)
			targets[i] = spec.InstrPerCore
			if spec.ScaleInstrByClass {
				targets[i] *= params.Class.InstrScale()
			}
			needBytes += uint64(params.FootprintPages) * m.PageSize
		}
	default:
		params, err := lookupParams(spec.Workload)
		if err != nil {
			return nil, err
		}
		if spec.ScaleInstrByClass {
			spec.InstrPerCore *= params.Class.InstrScale()
		}
		for i := range gens {
			gens[i] = workload.NewSynthetic(params, m.Seed+int64(i)*7919)
			targets[i] = spec.InstrPerCore
		}
		needBytes = uint64(params.FootprintPages) * m.PageSize * uint64(m.Cores)
	}

	// Capacity check: rate mode must fit every instance.
	if total := m.TotalCapacity(); needBytes > total {
		return nil, fmt.Errorf("harness: %s footprint %d B exceeds capacity %d B",
			wlLabel, needBytes, total)
	}

	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	ctl, err := NewController(m, sys)
	if err != nil {
		return nil, err
	}
	rawCtl := ctl

	nmBytes := m.NM.Capacity
	if m.Scheme == config.SchemeBaseline {
		nmBytes = 0
	}
	var chk *shadow.Checker
	if spec.ShadowCheck {
		chk = shadow.New(ctl, sys, nmBytes, m.FM.Capacity)
		ctl = chk
	}
	space := vm.NewAddressSpace(nmBytes, m.FM.Capacity, placementFor(m.Scheme), m.Seed)
	xlate := func(c int, va uint64) uint64 {
		return space.MustTranslate(vm.CoreVA(c, va))
	}

	// Telemetry attaches after the shadow checker so the tracer joins the
	// observer fanout without displacing it; gauges come from the raw
	// controller (the checker wrapper does not forward them).
	//
	// The health detector rides the telemetry epoch pump: the config is
	// copied so the wrapped OnEpoch (detector feed, publisher, then the
	// caller's own hook) never mutates the caller's struct.
	hcfg := health.Config{}
	if spec.Health != nil {
		hcfg = *spec.Health
	}
	if hcfg.QueueCapNM == 0 {
		hcfg.QueueCapNM = m.NM.Channels * (m.NM.ReadQueueLen + m.NM.WriteQueueLen)
	}
	if hcfg.QueueCapFM == 0 {
		hcfg.QueueCapFM = m.FM.Channels * (m.FM.ReadQueueLen + m.FM.WriteQueueLen)
	}
	det := health.NewDetector(hcfg)
	// The exemplar recorder joins the observer fanout for demand
	// issue/completion events and the OnEpoch chain (below) for epoch
	// context. It is created before the flight recorder so incident
	// captures can freeze its reservoirs at open.
	ecfg := exemplar.Config{}
	if spec.Exemplars != nil {
		ecfg = *spec.Exemplars
	}
	exr := exemplar.New(ecfg, sys, rawCtl)
	if exr != nil {
		sys.AttachObserver(exr)
	}
	// The flight recorder joins the observer fanout for movement events and
	// the OnEpoch chain (below) for epoch state + health status. It stamps
	// bundles with the same fingerprint the run manifest will carry.
	fcfg := flightrec.Config{}
	if spec.Flightrec != nil {
		fcfg = *spec.Flightrec
	}
	fcfg.Exemplars = exr.Snapshot // nil-safe; freezes the reservoirs at incident open
	rec := flightrec.New(fcfg, sys, manifestSpec.Fingerprint(), ctl.Name()+"/"+wlLabel)
	if rec != nil {
		sys.AttachObserver(rec)
	}
	tcfg := telemetry.Config{}
	if spec.Telemetry != nil {
		tcfg = *spec.Telemetry
	}
	if det != nil || spec.Publish != nil || rec != nil || exr != nil {
		userEpoch := tcfg.OnEpoch
		publish := spec.Publish
		// prevOpen carries the previous epoch's open set so every publish
		// reports the incident transitions that happened at its boundary.
		// OnEpoch runs only on the simulation goroutine, so the closure
		// state needs no lock.
		var prevOpen []health.Incident
		tcfg.OnEpoch = func(st telemetry.EpochState) {
			det.Observe(st.Sample)
			if publish != nil || rec != nil || exr != nil {
				open := det.Open()
				opened, closed := health.DiffOpen(prevOpen, open)
				prevOpen = open
				hs := health.Status{Open: open, Opened: opened, Closed: closed}
				exr.Observe(st, hs)
				rec.Observe(st, hs)
				if publish != nil {
					publish(st, hs)
				}
			}
			if userEpoch != nil {
				userEpoch(st)
			}
		}
	}
	tel := telemetry.Attach(&tcfg, sys, rawCtl)

	cx := cpu.NewComplexTargets(m, eng, gens, xlate, ctl, targets)
	var targetTotal uint64
	for _, t := range targets {
		targetTotal += t
	}
	tel.SetProgress(func() (uint64, uint64) {
		var done uint64
		for _, c := range cx.Cores {
			done += c.Stats.Instructions
		}
		return done, targetTotal
	})
	cx.Start()
	tel.Start()
	loopStart := time.Now()
	eng.RunWhile(func() bool { return !cx.AllDone() })
	loopSeconds := time.Since(loopStart).Seconds()
	if !cx.AllDone() {
		return nil, fmt.Errorf("harness: simulation deadlocked at cycle %d", eng.Now())
	}
	// Inject exemplar span waterfalls into the movement trace before Finish
	// writes it: one track per path, the end-to-end span as the parent and
	// the attribution components nested sequentially beneath it.
	if tr := tel.Tracer(); tr != nil && exr != nil {
		injectExemplarSpans(tr, exr.Snapshot())
	}
	if err := tel.Finish(); err != nil {
		return nil, fmt.Errorf("harness: telemetry: %w", err)
	}

	res := &Result{}
	res.Health = det.Finish()
	// Finish after telemetry Finish (the final partial epoch is pumped) so
	// a capture still open at end of run flushes with the full window.
	res.Bundles = rec.Finish()
	res.Exemplars = exr.Finish()
	res.Spec = manifestSpec
	res.Workload = wlLabel
	res.Scheme = ctl.Name()
	res.Cycles = cx.ExecutionCycles()
	res.Mem = *sys.Stats
	res.Mem.RowHits = [2]uint64{sys.NM.Stats().RowHits, sys.FM.Stats().RowHits}
	res.Mem.RowMisses = [2]uint64{sys.NM.Stats().RowMisses, sys.FM.Stats().RowMisses}
	// DRAM introspection totals: reduce each device's per-bank/per-channel
	// ledgers to the device-level counters stats.Memory (and the manifest)
	// carry.
	for lv, dev := range [2]*dram.Device{sys.NM, sys.FM} {
		bt := dev.TotalBankCounters()
		ct := dev.TotalChannelCounters()
		res.Mem.RowConflicts[lv] = bt.RowConflicts
		res.Mem.RefreshCloses[lv] = bt.RefreshCloses
		res.Mem.BankBusyCycles[lv] = bt.BusyCycles
		res.Mem.BusBusyCycles[lv] = ct.BusBusyCycles
		res.Mem.ReadQueueWaitCycles[lv] = ct.ReadQueueWait
		res.Mem.WriteQueueWaitCycles[lv] = ct.WriteQueueWait
	}
	for _, c := range cx.Cores {
		res.Cores = append(res.Cores, c.Stats)
	}
	res.FootprintPages = space.PagesTouched()
	res.Lat = sys.Lat
	res.Attr = sys.Attr
	res.Profile = tel.Profiler()
	// SILC-FM's dedicated metadata channel contributes dynamic energy too,
	// and its traffic joins NM's side of the byte-conservation ledger.
	var extraNM []*dram.Device
	if sc, ok := rawCtl.(*core.Controller); ok {
		sys.Stats.ExtraEnergyPJ += sc.MetaDeviceStats().DynamicEnergyPJ
		extraNM = append(extraNM, sc.MetaDevice())
	}
	res.Energy = energy.Compute(m.NM, m.FM, sys.NM.Stats(), sys.FM.Stats(), sys.Stats, res.Cycles)
	res.EnergyNJ = res.Energy.TotalNJ()

	// Spot-check data integrity for every remapping scheme. The baseline's
	// flat space is FM alone.
	if m.Scheme == config.SchemeBaseline {
		res.AuditErr = mem.AuditSample(ctl, 0, m.FM.Capacity, 97)
	} else {
		res.AuditErr = mem.AuditSample(ctl, sys.NMCap, sys.FMCap, 97)
	}
	if chk != nil {
		res.ShadowErr = chk.Check()
	}
	// Counter-conservation audit. The engine may still hold scheduled
	// background work (telemetry pump, deferred writebacks), so the tolerant
	// (non-quiesced) invariants apply here; the stress driver runs the
	// strict quiesced form after a full drain.
	res.ConservationErr = stats.CheckConservation(sys.Conservation(false, extraNM...))
	res.WallSeconds = time.Since(wallStart).Seconds()
	res.SimCyclesPerSec = stats.Ratio(float64(res.Cycles), loopSeconds)
	return res, nil
}

// injectExemplarSpans lays each exemplar's span waterfall into the trace:
// a parent duration span covering the whole access on an "exemplar:<path>"
// track, with the nonzero attribution components nested sequentially
// beneath it (Chrome complete events on one track nest by containment).
// The sequential layout is a presentation of the decomposition, not a
// claim that the components were serialized; their sum equals the parent
// duration exactly.
func injectExemplarSpans(tr *telemetry.Tracer, es []exemplar.Exemplar) {
	for i := range es {
		e := &es[i]
		track := "exemplar:" + e.Path
		op := "read"
		if e.Write {
			op = "write"
		}
		tr.AddSpan(track, fmt.Sprintf("pa=0x%x", e.PAddr), e.StartCycle, e.Latency,
			map[string]any{"op": op, "core": e.Core, "block": e.Block, "lat": e.Latency, "seq": e.Seq})
		off := e.StartCycle
		for _, sp := range e.Spans {
			if sp.Cycles == 0 {
				continue
			}
			tr.AddSpan(track, sp.Span, off, sp.Cycles, nil)
			off += sp.Cycles
		}
	}
}

// loadTrace reads a trace file into a Replay generator.
func loadTrace(path string) (*workload.Replay, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	defer f.Close()
	rp, err := workload.LoadReplay(f)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", path, err)
	}
	return rp, nil
}
