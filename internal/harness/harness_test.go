package harness

import (
	"os"
	"reflect"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry/exemplar"
	"silcfm/internal/workload"
)

// tinySpec runs fast on one CPU: 4 cores, NM 4MB / FM 16MB, footprints
// scaled 1/16. The shadow checker rides along in every test run.
func tinySpec(scheme config.SchemeName, wl string) Spec {
	m := config.Small()
	m.Scheme = scheme
	return Spec{
		Machine:      m,
		Workload:     wl,
		InstrPerCore: 150_000,
		FootScaleNum: 1,
		FootScaleDen: 16,
		ShadowCheck:  true,
	}
}

func TestRunEverySchemeCompletes(t *testing.T) {
	var base *Result
	for _, s := range append([]config.SchemeName{config.SchemeBaseline}, config.AllSchemes...) {
		r, err := Run(tinySpec(s, "milc"))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if r.AuditErr != nil {
			t.Fatalf("%s: audit: %v", s, r.AuditErr)
		}
		if r.ShadowErr != nil {
			t.Fatalf("%s: shadow: %v", s, r.ShadowErr)
		}
		if r.Cycles == 0 || r.TotalInstructions() < 4*150_000 {
			t.Fatalf("%s: cycles=%d instr=%d", s, r.Cycles, r.TotalInstructions())
		}
		if s == config.SchemeBaseline {
			base = r
			if r.Mem.ServicedNM != 0 {
				t.Fatal("baseline used NM")
			}
		} else if sp := r.Speedup(base.Cycles); sp < 0.1 || sp > 20 {
			t.Errorf("%s: implausible speedup %.2f", s, sp)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if _, err := Run(tinySpec("nope", "milc")); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := Run(tinySpec(config.SchemeSILCFM, "nope")); err == nil {
		t.Fatal("unknown workload accepted")
	}
	// Footprint beyond capacity.
	s := tinySpec(config.SchemeSILCFM, "mcf")
	s.FootScaleNum, s.FootScaleDen = 4, 1
	if _, err := Run(s); err == nil {
		t.Fatal("oversized footprint accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	// Byte-identical statistics, not just matching headline counters: any
	// hidden map-iteration or timing nondeterminism shows up somewhere in
	// stats.Run.
	a, err := Run(tinySpec(config.SchemeSILCFM, "gems"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tinySpec(config.SchemeSILCFM, "gems"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Run, b.Run) {
		t.Fatalf("nondeterministic stats.Run:\n%+v\nvs\n%+v", a.Run, b.Run)
	}
	if !reflect.DeepEqual(a.Energy, b.Energy) {
		t.Fatalf("nondeterministic energy: %+v vs %+v", a.Energy, b.Energy)
	}
}

// TestShadowAndAuditAcrossSchemesRandomized runs every scheme over a
// rotation of workloads and seeds with the shadow checker and mapping audit
// active — the harness-level counterpart of the shadow package's direct
// stress driver.
func TestShadowAndAuditAcrossSchemesRandomized(t *testing.T) {
	wls := []string{"mcf", "omnet", "gems"}
	schemes := append([]config.SchemeName{config.SchemeBaseline}, config.AllSchemes...)
	for i, s := range schemes {
		spec := tinySpec(s, wls[i%len(wls)])
		spec.InstrPerCore = 80_000
		spec.Machine.Seed = int64(100 + i)
		r, err := Run(spec)
		if err != nil {
			t.Fatalf("%s/%s: %v", s, spec.Workload, err)
		}
		if r.AuditErr != nil {
			t.Fatalf("%s/%s: audit: %v", s, spec.Workload, r.AuditErr)
		}
		if r.ShadowErr != nil {
			t.Fatalf("%s/%s: shadow: %v", s, spec.Workload, r.ShadowErr)
		}
	}
}

func TestScaleInstrByClass(t *testing.T) {
	s := tinySpec(config.SchemeBaseline, "bwaves") // low MPKI: x8
	s.ScaleInstrByClass = true
	s.InstrPerCore = 50_000
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalInstructions() < 4*8*50_000 {
		t.Fatalf("class scaling not applied: %d instructions", r.TotalInstructions())
	}
}

func TestSILCBeatsBaselineOnHotWorkload(t *testing.T) {
	// The headline sanity check at tiny scale: a bandwidth-bound workload
	// with a compact hot set must benefit from SILC-FM. Long enough to get
	// past swap-in warmup.
	bs := tinySpec(config.SchemeBaseline, "milc")
	bs.InstrPerCore = 600_000
	bs.FootScaleDen = 8
	base, err := Run(bs)
	if err != nil {
		t.Fatal(err)
	}
	ss := tinySpec(config.SchemeSILCFM, "milc")
	ss.InstrPerCore = 600_000
	ss.FootScaleDen = 8
	silc, err := Run(ss)
	if err != nil {
		t.Fatal(err)
	}
	if sp := silc.Speedup(base.Cycles); sp < 1.0 {
		t.Fatalf("SILC-FM speedup on milc = %.2f, want > 1", sp)
	}
	if silc.Mem.AccessRate() < 0.3 {
		t.Fatalf("access rate %.2f too low", silc.Mem.AccessRate())
	}
}

func tinyExp() ExpConfig {
	m := config.Small()
	return ExpConfig{
		Machine:      m,
		InstrPerCore: 60_000,
		Workloads:    []string{"milc", "xalanc"},
		FootScaleNum: 1,
		FootScaleDen: 16,
		Parallelism:  2,
	}
}

func TestSweepFigure7Shape(t *testing.T) {
	sw, tbl, err := Figure7(tinyExp())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 { // 2 workloads + geomean
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	for _, v := range Figure7Variants() {
		if sw.GeoMeanSpeedup(v.Label) <= 0 {
			t.Fatalf("%s: nonpositive geomean", v.Label)
		}
	}
	// Figure 8 derives from the same sweep.
	f8 := Figure8(sw)
	if len(f8.Rows) != 3 {
		t.Fatalf("figure 8 rows = %d", len(f8.Rows))
	}
}

func TestFigure6VariantsOrdered(t *testing.T) {
	vs := Figure6Variants()
	want := []string{"rand", "swap", "+lock", "+assoc", "+bypass"}
	if len(vs) != len(want) {
		t.Fatalf("variants = %d", len(vs))
	}
	for i, v := range vs {
		if v.Label != want[i] {
			t.Fatalf("variant %d = %s, want %s", i, v.Label, want[i])
		}
	}
	// The mutations must produce valid machines.
	for _, v := range vs {
		m := config.Default()
		v.Mutate(&m)
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", v.Label, err)
		}
	}
}

func TestTableIIISmall(t *testing.T) {
	cfg := tinyExp()
	tbl, runs, err := TableIII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || len(runs) != 2 {
		t.Fatalf("rows=%d runs=%d", len(tbl.Rows), len(runs))
	}
	if runs["milc"].AvgMPKI() <= runs["xalanc"].AvgMPKI() {
		t.Fatalf("MPKI ordering violated: milc %.1f !> xalanc %.1f",
			runs["milc"].AvgMPKI(), runs["xalanc"].AvgMPKI())
	}
}

func TestHeadlineComputation(t *testing.T) {
	cfg := tinyExp()
	cfg.Workloads = []string{"milc"}
	f6, _, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f7, _, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := ComputeHeadline(f6, f7)
	if h.BestAlt == "" {
		t.Fatal("no best alternative identified")
	}
	if h.String() == "" {
		t.Fatal("empty headline")
	}
}

func TestTraceDrivenRun(t *testing.T) {
	// Capture a short synthetic trace, then replay it through the full
	// pipeline.
	dir := t.TempDir()
	path := dir + "/t.sfmt"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.NewTraceWriter(f, "captured")
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewSynthetic(workload.Params{
		Name: "t", FootprintPages: 256, HotPages: 64, HotProb: 0.9,
		VisitSubblocksMin: 4, VisitSubblocksMax: 8, GapMean: 5,
	}, 3)
	var ref workload.Ref
	for i := 0; i < 30000; i++ {
		g.Next(&ref)
		if err := w.Write(ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m := config.Small()
	m.Scheme = config.SchemeSILCFM
	r, err := Run(Spec{Machine: m, TracePath: path, InstrPerCore: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "captured" {
		t.Fatalf("workload label = %q", r.Workload)
	}
	if r.Cycles == 0 || r.Mem.LLCMisses == 0 {
		t.Fatal("trace-driven run did nothing")
	}
	// Deterministic replay: same trace, same result.
	r2, err := Run(Spec{Machine: m, TracePath: path, InstrPerCore: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != r2.Cycles {
		t.Fatalf("trace replay nondeterministic: %d vs %d", r.Cycles, r2.Cycles)
	}
	if _, err := Run(Spec{Machine: m, TracePath: dir + "/missing.sfmt"}); err == nil {
		t.Fatal("missing trace accepted")
	}
}

func TestSchemesSeeIdenticalMissStreams(t *testing.T) {
	// The CPU side is scheme-independent: per-core reference streams are
	// identical under every scheme, so demand miss counts agree to within
	// the shared-LLC interleaving noise (scheme timing changes the order
	// in which cores touch the shared cache, nothing more).
	var counts []float64
	for _, s := range []config.SchemeName{config.SchemeBaseline, config.SchemeCAMEO, config.SchemeSILCFM} {
		r, err := Run(tinySpec(s, "gems"))
		if err != nil {
			t.Fatal(err)
		}
		var demand uint64
		for i := range r.Cores {
			demand += r.Cores[i].LLCMisses
		}
		counts = append(counts, float64(demand))
	}
	for _, c := range counts[1:] {
		if ratio := c / counts[0]; ratio < 0.99 || ratio > 1.01 {
			t.Fatalf("schemes saw substantially different miss streams: %v", counts)
		}
	}
}

func TestHeterogeneousMix(t *testing.T) {
	m := config.Small()
	m.Scheme = config.SchemeSILCFM
	r, err := Run(Spec{
		Machine:           m,
		Mix:               []string{"milc", "xalanc"},
		InstrPerCore:      50_000,
		ScaleInstrByClass: true,
		FootScaleNum:      1,
		FootScaleDen:      16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "mix(milc,xalanc)" {
		t.Fatalf("label = %q", r.Workload)
	}
	// Class scaling: xalanc (low, x8) cores retire 4x the instructions of
	// milc (high, x2) cores.
	if len(r.Cores) != 4 {
		t.Fatalf("cores = %d", len(r.Cores))
	}
	milcInstr := r.Cores[0].Instructions // core 0: milc
	xalInstr := r.Cores[1].Instructions  // core 1: xalanc
	if xalInstr < 3*milcInstr {
		t.Fatalf("class-scaled mix targets wrong: milc=%d xalanc=%d", milcInstr, xalInstr)
	}
	// Unknown mix member is rejected.
	if _, err := Run(Spec{Machine: m, Mix: []string{"milc", "nope"}, InstrPerCore: 1000}); err == nil {
		t.Fatal("bad mix accepted")
	}
}

// Paper stories at tiny scale: the qualitative relationships each figure
// depends on.

func TestPrefetchRaisesAccessRate(t *testing.T) {
	// CAMEOP's next-3-line prefetch must raise NM residency over CAMEO on
	// a spatially local workload (§IV-A / Figure 8).
	spec := func(s config.SchemeName) Spec {
		sp := tinySpec(s, "lbm")
		sp.InstrPerCore = 400_000
		sp.FootScaleDen = 8
		return sp
	}
	cam, err := Run(spec(config.SchemeCAMEO))
	if err != nil {
		t.Fatal(err)
	}
	camp, err := Run(spec(config.SchemeCAMEOP))
	if err != nil {
		t.Fatal(err)
	}
	if camp.Mem.AccessRate() <= cam.Mem.AccessRate() {
		t.Fatalf("camp access rate %.3f !> cam %.3f", camp.Mem.AccessRate(), cam.Mem.AccessRate())
	}
}

func TestPoMWastesBandwidthOnPointerChasing(t *testing.T) {
	// On a low-spatial-locality workload, PoM's whole-block migrations
	// cost far more bytes per demand byte than SILC-FM's subblock swaps
	// (§II-B vs §III-A).
	spec := func(s config.SchemeName) Spec {
		sp := tinySpec(s, "omnet")
		sp.InstrPerCore = 300_000
		sp.FootScaleDen = 8
		return sp
	}
	pom, err := Run(spec(config.SchemePoM))
	if err != nil {
		t.Fatal(err)
	}
	silc, err := Run(spec(config.SchemeSILCFM))
	if err != nil {
		t.Fatal(err)
	}
	if pom.Mem.Migrations == 0 {
		t.Skip("no PoM migrations at this scale")
	}
	// Efficiency metric: migration bytes spent per NM-serviced miss. PoM
	// pays for all 32 subblocks but omnet uses 1-4 of them; SILC-FM only
	// moves what is touched (plus history-predicted subblocks).
	perHit := func(r *Result) float64 {
		mig := r.Mem.Bytes[stats.NM][stats.Migration] + r.Mem.Bytes[stats.FM][stats.Migration]
		if r.Mem.ServicedNM == 0 {
			return 0
		}
		return float64(mig) / float64(r.Mem.ServicedNM)
	}
	pomEff, silcEff := perHit(pom), perHit(silc)
	if pomEff <= silcEff {
		t.Fatalf("PoM migration bytes/NM hit %.1f !> SILC %.1f on pointer chasing", pomEff, silcEff)
	}
}

func TestEnergyFavorsNMHeavySchemes(t *testing.T) {
	// Servicing from HBM is cheaper per bit: SILC-FM's dynamic energy per
	// demand byte must undercut the all-FM baseline's.
	bs := tinySpec(config.SchemeBaseline, "milc")
	bs.InstrPerCore = 400_000
	bs.FootScaleDen = 8
	base, err := Run(bs)
	if err != nil {
		t.Fatal(err)
	}
	ss := bs
	ss.Machine.Scheme = config.SchemeSILCFM
	silc, err := Run(ss)
	if err != nil {
		t.Fatal(err)
	}
	perByte := func(r *Result) float64 {
		demand := r.Mem.Bytes[stats.NM][stats.Demand] + r.Mem.Bytes[stats.FM][stats.Demand]
		return (r.Energy.NMDynamicNJ + r.Energy.FMDynamicNJ) / float64(demand)
	}
	// SILC moves extra migration bytes, so compare FM dynamic energy: the
	// baseline burns all of it in DDR3.
	if base.Energy.FMDynamicNJ <= silc.Energy.FMDynamicNJ {
		t.Fatalf("baseline FM energy %.0f !> silc %.0f", base.Energy.FMDynamicNJ, silc.Energy.FMDynamicNJ)
	}
	_ = perByte
}

// TestExemplarRecorderInertAndExact proves the two contracts the tail-
// exemplar recorder makes: disabling it changes nothing the simulation
// computes (inertness), and every captured exemplar's span decomposition
// sums exactly to its recorded latency, with the per-path worst matching
// the latency histogram's exact max (exactness).
func TestExemplarRecorderInertAndExact(t *testing.T) {
	on, err := Run(tinySpec(config.SchemeSILCFM, "milc"))
	if err != nil {
		t.Fatal(err)
	}
	offSpec := tinySpec(config.SchemeSILCFM, "milc")
	offSpec.Exemplars = &exemplar.Config{Disabled: true}
	off, err := Run(offSpec)
	if err != nil {
		t.Fatal(err)
	}

	if off.Exemplars != nil {
		t.Fatalf("disabled recorder produced %d exemplars", len(off.Exemplars))
	}
	if on.Cycles != off.Cycles {
		t.Fatalf("recorder changed Cycles: %d vs %d", on.Cycles, off.Cycles)
	}
	if on.Mem != off.Mem {
		t.Fatalf("recorder changed memory counters:\non  %+v\noff %+v", on.Mem, off.Mem)
	}
	if !reflect.DeepEqual(on.Run, off.Run) {
		t.Fatal("recorder changed stats.Run")
	}
	if !reflect.DeepEqual(on.Energy, off.Energy) {
		t.Fatal("recorder changed energy accounting")
	}

	if len(on.Exemplars) == 0 {
		t.Fatal("enabled recorder captured nothing")
	}
	worst := map[string]uint64{}
	counts := map[string]int{}
	prevPath, prevLat := "", uint64(0)
	for i := range on.Exemplars {
		e := &on.Exemplars[i]
		var sum uint64
		for _, sp := range e.Spans {
			sum += sp.Cycles
		}
		if sum != e.Latency {
			t.Fatalf("exemplar %d (%s): span sum %d != latency %d", i, e.Path, sum, e.Latency)
		}
		if e.CompleteCycle-e.StartCycle != e.Latency {
			t.Fatalf("exemplar %d (%s): complete-start %d != latency %d",
				i, e.Path, e.CompleteCycle-e.StartCycle, e.Latency)
		}
		if e.Path == prevPath && e.Latency > prevLat {
			t.Fatalf("path %s not worst-first: %d after %d", e.Path, e.Latency, prevLat)
		}
		if e.Path != prevPath {
			worst[e.Path] = e.Latency
		}
		prevPath, prevLat = e.Path, e.Latency
		counts[e.Path]++
	}
	for path, n := range counts {
		if n > exemplar.DefaultK {
			t.Fatalf("path %s holds %d exemplars, K=%d", path, n, exemplar.DefaultK)
		}
	}
	// The worst exemplar per path is the histogram's exact max.
	for _, s := range on.Lat.Summaries() {
		w, ok := worst[s.Path]
		if !ok {
			if s.Count > 0 {
				t.Fatalf("path %s completed %d demands but captured no exemplar", s.Path, s.Count)
			}
			continue
		}
		if w != s.Max {
			t.Fatalf("path %s: worst exemplar %d != histogram max %d", s.Path, w, s.Max)
		}
	}
}
