// Package health is an online anomaly detector for simulation runs: it
// consumes the per-epoch delta stream the telemetry sampler already
// produces (telemetry.Sample, including scheme gauges and the DRAM queue
// high-water marks) and reduces it to structured incident records for the
// windowed pathologies the paper warns about — swap thrashing that
// bandwidth bypassing is meant to suppress (SILC-FM §III-E), bypass-
// governor oscillation around the 0.8 access-rate target, lock/unlock
// churn, memory-queue saturation, and way/location-predictor collapse.
//
// The detector is pure arithmetic over sampled deltas: it never touches
// the engine or any counter, so enabling it cannot change Cycles or any
// stats.Memory field, and for a fixed seed its incident records are
// byte-deterministic (fixed struct field order, no maps, no wall clock).
package health

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"silcfm/internal/memunits"
	"silcfm/internal/telemetry"
)

// Incident kinds, in detector evaluation order.
const (
	KindSwapThrash        = "swap-thrash"
	KindBypassOscillation = "bypass-oscillation"
	KindLockChurn         = "lock-churn"
	KindQueueSaturation   = "queue-saturation"
	KindPredictorCollapse = "predictor-collapse"
	KindRowThrash         = "row-thrash"
)

// kinds fixes the evaluation (and reporting) order of the detectors.
var kinds = [...]string{
	KindSwapThrash, KindBypassOscillation, KindLockChurn,
	KindQueueSaturation, KindPredictorCollapse, KindRowThrash,
}

const numKinds = len(kinds)

// Config tunes the detector's sliding windows and thresholds. The zero
// value means "defaults"; harness.Run enables the detector on every run
// unless Disabled is set.
type Config struct {
	// Disabled turns the detector off entirely.
	Disabled bool
	// WindowEpochs is the sliding-window length every condition is
	// evaluated over (default 8 epochs).
	WindowEpochs int
	// CloseAfter is how many consecutive quiet epochs close an open
	// incident (default 2); a brief dip does not split one pathology into
	// two records.
	CloseAfter int

	// SwapThrashRatio: swap-thrash fires when the window's swapped bytes
	// (SwapsIn+SwapsOut subblocks) exceed this multiple of its demand
	// bytes (default 1.0 — the scheme moved more data than it served).
	SwapThrashRatio float64
	// MinWindowMisses is the activity floor: windows with fewer LLC
	// misses never fire swap-thrash (default 64).
	MinWindowMisses uint64

	// BypassTarget is the access-rate threshold whose repeated crossing
	// signals governor oscillation (default 0.8, the paper's Eq. 1
	// ceiling). MinCrossings is the crossings-per-window trigger
	// (default 4); the scheme's bypass_toggles gauge, when present,
	// counts toggles directly and uses the same trigger.
	BypassTarget float64
	MinCrossings uint64

	// LockChurnMin: lock-churn fires when min(locks, unlocks) over the
	// window reaches this (default 16 — blocks being locked and promptly
	// unlocked instead of staying resident).
	LockChurnMin uint64

	// QueueSatFraction and QueueSatEpochs: queue-saturation fires when a
	// device's per-epoch peak queue depth stays at or above
	// QueueSatFraction of its capacity (default 0.75) for at least
	// QueueSatEpochs epochs of the window (default WindowEpochs/2).
	// QueueCapNM/FM are the device queue capacities in requests
	// (channels x (read+write queue length)); zero disables the check
	// for that device.
	QueueSatFraction       float64
	QueueSatEpochs         int
	QueueCapNM, QueueCapFM int

	// PredictorFloor and PredictorMinSamples: predictor-collapse fires
	// when windowed predictor accuracy falls below the floor (default
	// 0.5 — worse than a coin flip) with at least PredictorMinSamples
	// predictions in the window (default 256).
	PredictorFloor      float64
	PredictorMinSamples uint64

	// RowThrashConflictRatio: row-thrash fires when the window's
	// row-buffer conflicts (either device) exceed this fraction of its row
	// operations (default 0.5 — most activates tear down a still-hot row)
	// AND the peak per-epoch bank imbalance reached RowThrashImbalance
	// (default 4.0 — the conflicts concentrate on few banks rather than
	// being uniform pressure). RowThrashMinOps is the activity floor per
	// window (default 512 row operations).
	RowThrashConflictRatio float64
	RowThrashImbalance     float64
	RowThrashMinOps        uint64
}

// withDefaults resolves zero fields to the documented defaults.
func (c Config) withDefaults() Config {
	if c.WindowEpochs <= 0 {
		c.WindowEpochs = 8
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = 2
	}
	if c.SwapThrashRatio <= 0 {
		c.SwapThrashRatio = 1.0
	}
	if c.MinWindowMisses == 0 {
		c.MinWindowMisses = 64
	}
	if c.BypassTarget <= 0 {
		c.BypassTarget = 0.8
	}
	if c.MinCrossings == 0 {
		c.MinCrossings = 4
	}
	if c.LockChurnMin == 0 {
		c.LockChurnMin = 16
	}
	if c.QueueSatFraction <= 0 {
		c.QueueSatFraction = 0.75
	}
	if c.QueueSatEpochs <= 0 {
		c.QueueSatEpochs = c.WindowEpochs / 2
		if c.QueueSatEpochs < 1 {
			c.QueueSatEpochs = 1
		}
	}
	if c.PredictorFloor <= 0 {
		c.PredictorFloor = 0.5
	}
	if c.PredictorMinSamples == 0 {
		c.PredictorMinSamples = 256
	}
	if c.RowThrashConflictRatio <= 0 {
		c.RowThrashConflictRatio = 0.5
	}
	if c.RowThrashImbalance <= 0 {
		c.RowThrashImbalance = 4.0
	}
	if c.RowThrashMinOps == 0 {
		c.RowThrashMinOps = 512
	}
	return c
}

// Evidence carries the counters that justified an incident, summed over
// its firing epochs (peaks for the queue fields). Only the fields of the
// incident's kind are populated.
type Evidence struct {
	SwapBytes       uint64 `json:"swap_bytes,omitempty"`
	DemandBytes     uint64 `json:"demand_bytes,omitempty"`
	Crossings       uint64 `json:"crossings,omitempty"`
	BypassToggles   uint64 `json:"bypass_toggles,omitempty"`
	Locks           uint64 `json:"locks,omitempty"`
	Unlocks         uint64 `json:"unlocks,omitempty"`
	PeakQueueNM     int    `json:"peak_queue_nm,omitempty"`
	PeakQueueFM     int    `json:"peak_queue_fm,omitempty"`
	PredictorHits   uint64 `json:"predictor_hits,omitempty"`
	PredictorMisses uint64 `json:"predictor_misses,omitempty"`
	RowConflicts    uint64 `json:"row_conflicts,omitempty"`
	RowOps          uint64 `json:"row_ops,omitempty"`
	// BankImbalance is the worst per-epoch max-over-mean bank skew seen
	// while the incident fired (a peak, like the queue fields).
	BankImbalance float64 `json:"bank_imbalance,omitempty"`
}

// Incident is one detected pathology: a contiguous stretch of epochs
// (quiet gaps up to CloseAfter included) during which a windowed
// condition held. Field order is fixed, so JSON encoding is
// byte-deterministic.
type Incident struct {
	Kind string `json:"kind"`
	// FirstEpoch/LastEpoch are the sampler epoch indices of the first and
	// last firing evaluation; FirstCycle is the start of the first firing
	// epoch and LastCycle the boundary of the last.
	FirstEpoch uint64 `json:"first_epoch"`
	LastEpoch  uint64 `json:"last_epoch"`
	FirstCycle uint64 `json:"first_cycle"`
	LastCycle  uint64 `json:"last_cycle"`
	// Epochs counts evaluations on which the condition held.
	Epochs uint64 `json:"epochs"`
	// PeakSeverity is the worst windowed ratio observed (1.0 = exactly at
	// threshold; larger is worse).
	PeakSeverity float64  `json:"peak_severity"`
	Evidence     Evidence `json:"evidence"`
}

// String renders the one-line report form.
func (in *Incident) String() string {
	return fmt.Sprintf("%s: epochs %d-%d, cycles %d-%d, firing %d, peak %.2f",
		in.Kind, in.FirstEpoch, in.LastEpoch, in.FirstCycle, in.LastCycle,
		in.Epochs, in.PeakSeverity)
}

// obs is one epoch's detector-relevant reduction of a telemetry.Sample.
type obs struct {
	epoch, cycle, span uint64

	misses      uint64
	swapBytes   uint64
	demandBytes uint64
	crossings   uint64
	toggles     uint64
	locks       uint64
	unlocks     uint64
	peakNM      int
	peakFM      int
	predHits    uint64
	predMisses  uint64
	rowOps      uint64
	rowConf     uint64
	imbalance   float64 // max of the two devices' per-epoch bank imbalance
}

// tracker is one kind's open-incident state machine.
type tracker struct {
	open  *Incident
	quiet int
}

// Detector consumes epoch samples and accumulates incidents. Use one
// Detector per run; it is not safe for concurrent use (the harness calls
// it from the simulation goroutine at epoch boundaries).
type Detector struct {
	cfg  Config
	ring []obs // last WindowEpochs observations, oldest first

	prevRate      float64
	prevRateValid bool
	prevToggles   float64

	track [numKinds]tracker
	done  []Incident
}

// NewDetector builds a detector with cfg's thresholds (zero fields take
// the documented defaults). Returns nil when cfg.Disabled is set; all
// Detector methods are nil-safe.
func NewDetector(cfg Config) *Detector {
	if cfg.Disabled {
		return nil
	}
	return &Detector{cfg: cfg.withDefaults()}
}

// Observe feeds one epoch sample (deltas plus gauges) to every detector.
func (d *Detector) Observe(s *telemetry.Sample) {
	if d == nil || s == nil {
		return
	}
	o := obs{
		epoch:       s.Epoch,
		cycle:       s.Cycle,
		span:        s.SpanCycles,
		misses:      s.LLCMisses,
		swapBytes:   (s.SwapsIn + s.SwapsOut) * memunits.SubblockSize,
		demandBytes: s.DemandBytesNM + s.DemandBytesFM,
		locks:       s.Locks,
		unlocks:     s.Unlocks,
		peakNM:      s.PeakQueueNM,
		peakFM:      s.PeakQueueFM,
		predHits:    s.PredictorHits,
		predMisses:  s.PredictorMisses,
		rowOps:      s.RowHitsNM + s.RowMissesNM + s.RowHitsFM + s.RowMissesFM,
		rowConf:     s.RowConflictsNM + s.RowConflictsFM,
		imbalance:   s.BankImbalanceNM,
	}
	if s.BankImbalanceFM > o.imbalance {
		o.imbalance = s.BankImbalanceFM
	}
	// Idle epochs report AccessRate 0; only epochs that actually serviced
	// misses move the crossing detector, so bursts separated by silence do
	// not read as oscillation.
	if s.LLCMisses > 0 {
		if d.prevRateValid &&
			(d.prevRate >= d.cfg.BypassTarget) != (s.AccessRate >= d.cfg.BypassTarget) {
			o.crossings = 1
		}
		d.prevRate = s.AccessRate
		d.prevRateValid = true
	}
	// The SILC-FM governor exports its cumulative toggle count as the
	// bypass_toggles gauge; difference it into a per-epoch delta.
	for _, g := range s.Gauges {
		if g.Name == "bypass_toggles" {
			if delta := g.Value - d.prevToggles; delta > 0 {
				o.toggles = uint64(delta)
			}
			d.prevToggles = g.Value
		}
	}

	d.ring = append(d.ring, o)
	if len(d.ring) > d.cfg.WindowEpochs {
		d.ring = d.ring[1:]
	}
	d.evaluate(&o)
}

// window sums the ring into one aggregate observation (peaks take max).
func (d *Detector) window() obs {
	var w obs
	for i := range d.ring {
		o := &d.ring[i]
		w.misses += o.misses
		w.swapBytes += o.swapBytes
		w.demandBytes += o.demandBytes
		w.crossings += o.crossings
		w.toggles += o.toggles
		w.locks += o.locks
		w.unlocks += o.unlocks
		if o.peakNM > w.peakNM {
			w.peakNM = o.peakNM
		}
		if o.peakFM > w.peakFM {
			w.peakFM = o.peakFM
		}
		w.predHits += o.predHits
		w.predMisses += o.predMisses
		w.rowOps += o.rowOps
		w.rowConf += o.rowConf
		if o.imbalance > w.imbalance {
			w.imbalance = o.imbalance
		}
	}
	return w
}

// evaluate runs every condition over the current window and advances the
// per-kind incident state machines with this epoch's contribution o.
func (d *Detector) evaluate(o *obs) {
	c := &d.cfg
	w := d.window()

	// swap-thrash: the window moved more bytes between levels than it
	// served to the cores.
	{
		fire := w.misses >= c.MinWindowMisses && w.demandBytes > 0 &&
			float64(w.swapBytes) > c.SwapThrashRatio*float64(w.demandBytes)
		sev := 0.0
		if fire {
			sev = float64(w.swapBytes) / float64(w.demandBytes) / c.SwapThrashRatio
		}
		d.step(KindSwapThrash, fire, sev, o, Evidence{
			SwapBytes: o.swapBytes, DemandBytes: o.demandBytes,
		})
	}
	// bypass-oscillation: the access rate keeps crossing the governor
	// target, or the governor itself keeps toggling.
	{
		worst := w.crossings
		if w.toggles > worst {
			worst = w.toggles
		}
		fire := worst >= c.MinCrossings
		sev := float64(worst) / float64(c.MinCrossings)
		if !fire {
			sev = 0
		}
		d.step(KindBypassOscillation, fire, sev, o, Evidence{
			Crossings: o.crossings, BypassToggles: o.toggles,
		})
	}
	// lock-churn: locks and unlocks both high — residency decisions are
	// being reversed as fast as they are made.
	{
		churn := w.locks
		if w.unlocks < churn {
			churn = w.unlocks
		}
		fire := churn >= c.LockChurnMin
		sev := float64(churn) / float64(c.LockChurnMin)
		if !fire {
			sev = 0
		}
		d.step(KindLockChurn, fire, sev, o, Evidence{
			Locks: o.locks, Unlocks: o.unlocks,
		})
	}
	// queue-saturation: a device's per-epoch peak depth pinned near its
	// queue capacity for much of the window.
	{
		sat := func(capacity int, peak func(*obs) int) (int, float64) {
			if capacity <= 0 {
				return 0, 0
			}
			limit := c.QueueSatFraction * float64(capacity)
			n, worst := 0, 0.0
			for i := range d.ring {
				p := peak(&d.ring[i])
				if float64(p) >= limit {
					n++
				}
				if f := float64(p) / float64(capacity); f > worst {
					worst = f
				}
			}
			return n, worst
		}
		nNM, sevNM := sat(c.QueueCapNM, func(o *obs) int { return o.peakNM })
		nFM, sevFM := sat(c.QueueCapFM, func(o *obs) int { return o.peakFM })
		fire := nNM >= c.QueueSatEpochs || nFM >= c.QueueSatEpochs
		sev := sevNM
		if sevFM > sev {
			sev = sevFM
		}
		if !fire {
			sev = 0
		}
		d.step(KindQueueSaturation, fire, sev, o, Evidence{
			PeakQueueNM: o.peakNM, PeakQueueFM: o.peakFM,
		})
	}
	// predictor-collapse: the way/location predictor is guessing worse
	// than the floor over a meaningful sample.
	{
		samples := w.predHits + w.predMisses
		acc := 0.0
		if samples > 0 {
			acc = float64(w.predHits) / float64(samples)
		}
		fire := samples >= c.PredictorMinSamples && acc < c.PredictorFloor
		sev := 0.0
		if fire {
			sev = 1 - acc
		}
		d.step(KindPredictorCollapse, fire, sev, o, Evidence{
			PredictorHits: o.predHits, PredictorMisses: o.predMisses,
		})
	}
	// row-thrash: row-buffer conflicts dominate the window's row activity
	// while the pressure concentrates on few banks — the access stream keeps
	// tearing down rows other accesses still want (the pathology a
	// row-locality-aware placement would steer around).
	{
		rate := 0.0
		if w.rowOps > 0 {
			rate = float64(w.rowConf) / float64(w.rowOps)
		}
		fire := w.rowOps >= c.RowThrashMinOps &&
			rate > c.RowThrashConflictRatio &&
			w.imbalance >= c.RowThrashImbalance
		sev := 0.0
		if fire {
			sev = rate / c.RowThrashConflictRatio
		}
		d.step(KindRowThrash, fire, sev, o, Evidence{
			RowConflicts: o.rowConf, RowOps: o.rowOps, BankImbalance: o.imbalance,
		})
	}
}

// step advances one kind's state machine: open or extend on fire, close
// after CloseAfter consecutive quiet evaluations.
func (d *Detector) step(kind string, fire bool, sev float64, o *obs, ev Evidence) {
	t := &d.track[kindIndex(kind)]
	if !fire {
		if t.open != nil {
			t.quiet++
			if t.quiet >= d.cfg.CloseAfter {
				d.done = append(d.done, *t.open)
				t.open = nil
			}
		}
		return
	}
	t.quiet = 0
	if t.open == nil {
		t.open = &Incident{
			Kind:       kind,
			FirstEpoch: o.epoch,
			FirstCycle: o.cycle - o.span,
		}
	}
	in := t.open
	in.LastEpoch = o.epoch
	in.LastCycle = o.cycle
	in.Epochs++
	if sev > in.PeakSeverity {
		in.PeakSeverity = sev
	}
	in.Evidence.SwapBytes += ev.SwapBytes
	in.Evidence.DemandBytes += ev.DemandBytes
	in.Evidence.Crossings += ev.Crossings
	in.Evidence.BypassToggles += ev.BypassToggles
	in.Evidence.Locks += ev.Locks
	in.Evidence.Unlocks += ev.Unlocks
	if ev.PeakQueueNM > in.Evidence.PeakQueueNM {
		in.Evidence.PeakQueueNM = ev.PeakQueueNM
	}
	if ev.PeakQueueFM > in.Evidence.PeakQueueFM {
		in.Evidence.PeakQueueFM = ev.PeakQueueFM
	}
	in.Evidence.PredictorHits += ev.PredictorHits
	in.Evidence.PredictorMisses += ev.PredictorMisses
	in.Evidence.RowConflicts += ev.RowConflicts
	in.Evidence.RowOps += ev.RowOps
	if ev.BankImbalance > in.Evidence.BankImbalance {
		in.Evidence.BankImbalance = ev.BankImbalance
	}
}

func kindIndex(kind string) int {
	for i, k := range kinds {
		if k == kind {
			return i
		}
	}
	panic("health: unknown kind " + kind)
}

// Open returns copies of the incidents currently firing (or inside their
// CloseAfter grace window), in kind order — the /healthz view.
func (d *Detector) Open() []Incident {
	if d == nil {
		return nil
	}
	var out []Incident
	for i := range d.track {
		if in := d.track[i].open; in != nil {
			out = append(out, *in)
		}
	}
	return out
}

// Status is the per-epoch health view handed to publish hooks
// (harness.Spec.Publish): the incidents currently open plus the open/close
// transitions that happened at this epoch boundary. Opened incidents carry
// their initial snapshot; Closed incidents carry the last open snapshot
// observed before the tracker released them (the definitive final record
// still lands in Detector.Finish's list).
type Status struct {
	Open   []Incident
	Opened []Incident
	Closed []Incident
}

// DiffOpen computes the open/close transitions between two consecutive
// epochs' Open() snapshots. The detector keeps at most one open incident
// per kind (one tracker each), so kinds key the diff; a kind reopening in
// the same epoch its predecessor closed reports as one close plus one open
// when the first epochs differ.
func DiffOpen(prev, cur []Incident) (opened, closed []Incident) {
	prevByKind := make(map[string]Incident, len(prev))
	for _, in := range prev {
		prevByKind[in.Kind] = in
	}
	curByKind := make(map[string]Incident, len(cur))
	for _, in := range cur {
		curByKind[in.Kind] = in
		if p, ok := prevByKind[in.Kind]; !ok {
			opened = append(opened, in)
		} else if p.FirstEpoch != in.FirstEpoch {
			closed = append(closed, p)
			opened = append(opened, in)
		}
	}
	for _, in := range prev {
		if _, ok := curByKind[in.Kind]; !ok {
			closed = append(closed, in)
		}
	}
	return opened, closed
}

// Finish closes any still-open incidents and returns the run's complete
// incident list, sorted by first epoch then kind. Call once, after the
// final telemetry epoch (including the partial one Finish flushes).
func (d *Detector) Finish() []Incident {
	if d == nil {
		return nil
	}
	for i := range d.track {
		if in := d.track[i].open; in != nil {
			d.done = append(d.done, *in)
			d.track[i].open = nil
		}
	}
	sort.SliceStable(d.done, func(i, j int) bool {
		if d.done[i].FirstEpoch != d.done[j].FirstEpoch {
			return d.done[i].FirstEpoch < d.done[j].FirstEpoch
		}
		return kindIndex(d.done[i].Kind) < kindIndex(d.done[j].Kind)
	})
	return append([]Incident(nil), d.done...)
}

// WriteJSONL streams incidents one JSON object per line, followed by a
// summary line with per-kind counts (keys sorted by encoding/json), the
// -health-out format. Byte-deterministic for a deterministic incident
// list.
func WriteJSONL(w io.Writer, incidents []Incident) error {
	for i := range incidents {
		b, err := json.Marshal(&incidents[i])
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	byKind := map[string]int{}
	for i := range incidents {
		byKind[incidents[i].Kind]++
	}
	summary := struct {
		Summary   bool           `json:"summary"`
		Incidents int            `json:"incidents"`
		ByKind    map[string]int `json:"by_kind,omitempty"`
	}{Summary: true, Incidents: len(incidents), ByKind: byKind}
	if len(byKind) == 0 {
		summary.ByKind = nil
	}
	b, err := json.Marshal(&summary)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
