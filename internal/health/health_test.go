package health_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/core"
	"silcfm/internal/health"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/sim"
	"silcfm/internal/telemetry"
)

const span = 10_000

// feed builds the epoch-indexed sample a detector consumes.
func feed(epoch uint64, mut func(*telemetry.Sample)) *telemetry.Sample {
	s := &telemetry.Sample{Epoch: epoch, Cycle: (epoch + 1) * span, SpanCycles: span}
	if mut != nil {
		mut(s)
	}
	return s
}

func TestSwapThrashFiresAndCloses(t *testing.T) {
	det := health.NewDetector(health.Config{WindowEpochs: 4, CloseAfter: 2})
	// Epochs 0-5 thrash (swaps double the demand), 6+ are healthy; the
	// incident must close after the window drains plus the grace epochs.
	for e := uint64(0); e < 16; e++ {
		thrash := e < 6
		det.Observe(feed(e, func(s *telemetry.Sample) {
			s.LLCMisses = 100
			s.ServicedNM = 50
			s.DemandBytesNM = 100 * memunits.SubblockSize
			if thrash {
				s.SwapsIn = 100
				s.SwapsOut = 100
			}
		}))
	}
	incidents := det.Finish()
	if len(incidents) != 1 {
		t.Fatalf("want 1 incident, got %d: %+v", len(incidents), incidents)
	}
	in := incidents[0]
	if in.Kind != health.KindSwapThrash {
		t.Fatalf("kind = %q", in.Kind)
	}
	if in.FirstEpoch != 0 {
		t.Errorf("first epoch = %d, want 0", in.FirstEpoch)
	}
	if in.FirstCycle != 0 || in.LastCycle == 0 {
		t.Errorf("cycle range [%d, %d] not anchored", in.FirstCycle, in.LastCycle)
	}
	// The 4-epoch window still exceeds demand for a couple of epochs after
	// the thrash stops, so the incident extends past epoch 5 but must have
	// closed well before the run's end.
	if in.LastEpoch < 5 || in.LastEpoch > 9 {
		t.Errorf("last epoch = %d, want within (5, 9]", in.LastEpoch)
	}
	if in.PeakSeverity <= 1 {
		t.Errorf("peak severity %.2f, want > 1 (threshold crossed)", in.PeakSeverity)
	}
	if in.Evidence.SwapBytes == 0 || in.Evidence.DemandBytes == 0 {
		t.Errorf("evidence not populated: %+v", in.Evidence)
	}
}

func TestBypassOscillationCountsCrossingsNotIdleEpochs(t *testing.T) {
	det := health.NewDetector(health.Config{WindowEpochs: 8, MinCrossings: 4})
	// Rate alternates around 0.8 every active epoch, but idle epochs
	// (zero misses, rate reported as 0) sit between them and must not
	// count as crossings.
	rates := []float64{0.9, 0, 0.9, 0, 0.9}
	for e, r := range rates {
		r := r
		det.Observe(feed(uint64(e), func(s *telemetry.Sample) {
			if r > 0 {
				s.LLCMisses = 50
				s.AccessRate = r
			}
		}))
	}
	if open := det.Open(); len(open) != 0 {
		t.Fatalf("idle gaps produced incidents: %+v", open)
	}
	// Now genuinely oscillate: four crossings within the window.
	seq := []float64{0.9, 0.7, 0.9, 0.7, 0.9}
	for i, r := range seq {
		r := r
		det.Observe(feed(uint64(5+i), func(s *telemetry.Sample) {
			s.LLCMisses = 50
			s.AccessRate = r
		}))
	}
	incidents := det.Finish()
	if len(incidents) != 1 || incidents[0].Kind != health.KindBypassOscillation {
		t.Fatalf("want one bypass-oscillation incident, got %+v", incidents)
	}
	// The window hits 4 crossings on the final epoch, so the incident spans
	// one firing evaluation whose own contribution is a single crossing.
	if incidents[0].Evidence.Crossings == 0 {
		t.Errorf("evidence crossings = 0, want the firing epoch's crossing recorded")
	}
	if incidents[0].PeakSeverity < 1 {
		t.Errorf("peak severity %.2f, want >= 1", incidents[0].PeakSeverity)
	}
}

func TestBypassToggleGaugeFires(t *testing.T) {
	det := health.NewDetector(health.Config{WindowEpochs: 4, MinCrossings: 4})
	// The governor gauge alone (cumulative toggle count) must trigger,
	// even with a steady access rate.
	toggles := []float64{2, 4, 6}
	for e, v := range toggles {
		v := v
		det.Observe(feed(uint64(e), func(s *telemetry.Sample) {
			s.LLCMisses = 50
			s.AccessRate = 0.9
			s.Gauges = []mem.Gauge{{Name: "bypass_toggles", Value: v}}
		}))
	}
	incidents := det.Finish()
	if len(incidents) != 1 || incidents[0].Kind != health.KindBypassOscillation {
		t.Fatalf("want one bypass-oscillation incident, got %+v", incidents)
	}
	// Evidence accumulates over firing epochs only: the window reaches the
	// trigger on the second epoch (cumulative 4), so the first epoch's two
	// toggles predate the incident.
	if incidents[0].Evidence.BypassToggles != 4 {
		t.Errorf("evidence toggles = %d, want 4", incidents[0].Evidence.BypassToggles)
	}
}

func TestLockChurn(t *testing.T) {
	det := health.NewDetector(health.Config{WindowEpochs: 4, LockChurnMin: 16})
	for e := uint64(0); e < 4; e++ {
		det.Observe(feed(e, func(s *telemetry.Sample) {
			s.LLCMisses = 50
			s.Locks = 10
			s.Unlocks = 9
		}))
	}
	incidents := det.Finish()
	if len(incidents) != 1 || incidents[0].Kind != health.KindLockChurn {
		t.Fatalf("want one lock-churn incident, got %+v", incidents)
	}
	ev := incidents[0].Evidence
	if ev.Locks == 0 || ev.Unlocks == 0 {
		t.Errorf("evidence not populated: %+v", ev)
	}
}

func TestQueueSaturationUsesPeaks(t *testing.T) {
	cfg := health.Config{WindowEpochs: 4, QueueSatEpochs: 2, QueueCapNM: 100}
	det := health.NewDetector(cfg)
	// Instantaneous depth at the boundary is low; the per-epoch peak is
	// pinned at capacity. Only the peak should matter.
	for e := uint64(0); e < 4; e++ {
		det.Observe(feed(e, func(s *telemetry.Sample) {
			s.LLCMisses = 50
			s.QueueNM = 1
			s.PeakQueueNM = 95
		}))
	}
	incidents := det.Finish()
	if len(incidents) != 1 || incidents[0].Kind != health.KindQueueSaturation {
		t.Fatalf("want one queue-saturation incident, got %+v", incidents)
	}
	if incidents[0].Evidence.PeakQueueNM != 95 {
		t.Errorf("evidence peak = %d, want 95", incidents[0].Evidence.PeakQueueNM)
	}
	// Same trace with saturation detection disabled (no capacity): silent.
	det2 := health.NewDetector(health.Config{WindowEpochs: 4, QueueSatEpochs: 2})
	for e := uint64(0); e < 4; e++ {
		det2.Observe(feed(e, func(s *telemetry.Sample) {
			s.LLCMisses = 50
			s.PeakQueueNM = 95
		}))
	}
	if got := det2.Finish(); len(got) != 0 {
		t.Fatalf("capacity 0 must disable the check, got %+v", got)
	}
}

func TestPredictorCollapse(t *testing.T) {
	det := health.NewDetector(health.Config{WindowEpochs: 4, PredictorMinSamples: 100})
	for e := uint64(0); e < 4; e++ {
		det.Observe(feed(e, func(s *telemetry.Sample) {
			s.LLCMisses = 50
			s.PredictorHits = 10
			s.PredictorMisses = 40
		}))
	}
	incidents := det.Finish()
	if len(incidents) != 1 || incidents[0].Kind != health.KindPredictorCollapse {
		t.Fatalf("want one predictor-collapse incident, got %+v", incidents)
	}
	if sev := incidents[0].PeakSeverity; sev < 0.75 || sev > 1 {
		t.Errorf("severity %.2f, want 1-accuracy = 0.8 ballpark", sev)
	}
}

func TestRowThrashFiresOnConflictStream(t *testing.T) {
	det := health.NewDetector(health.Config{WindowEpochs: 4})
	// A synthetic conflict stream: nearly every FM row operation is a
	// conflict and the pressure sits on one bank (imbalance far above the
	// threshold). Epochs 6+ return to a healthy streaming mix.
	for e := uint64(0); e < 16; e++ {
		thrash := e < 6
		det.Observe(feed(e, func(s *telemetry.Sample) {
			s.LLCMisses = 300
			if thrash {
				s.RowHitsFM = 20
				s.RowMissesFM = 280
				s.RowConflictsFM = 260
				s.BankImbalanceFM = 24.0 // one hot bank out of 32
			} else {
				s.RowHitsFM = 280
				s.RowMissesFM = 20
				s.BankImbalanceFM = 1.2
			}
		}))
	}
	incidents := det.Finish()
	if len(incidents) != 1 || incidents[0].Kind != health.KindRowThrash {
		t.Fatalf("want one row-thrash incident, got %+v", incidents)
	}
	in := incidents[0]
	if in.PeakSeverity <= 1 {
		t.Errorf("peak severity %.2f, want > 1", in.PeakSeverity)
	}
	ev := in.Evidence
	if ev.RowConflicts == 0 || ev.RowOps == 0 {
		t.Errorf("evidence not populated: %+v", ev)
	}
	if ev.BankImbalance != 24.0 {
		t.Errorf("evidence imbalance = %v, want the peak 24.0", ev.BankImbalance)
	}
	// The incident must have closed after the window drained (hysteresis),
	// not extended to the run's end.
	if in.LastEpoch >= 15 {
		t.Errorf("incident never closed: last epoch %d", in.LastEpoch)
	}
}

func TestRowThrashNeedsImbalance(t *testing.T) {
	// The same conflict rate with uniform bank pressure is ordinary
	// bandwidth saturation, not row thrash: it must stay quiet.
	det := health.NewDetector(health.Config{WindowEpochs: 4})
	for e := uint64(0); e < 8; e++ {
		det.Observe(feed(e, func(s *telemetry.Sample) {
			s.LLCMisses = 300
			s.RowHitsFM = 20
			s.RowMissesFM = 280
			s.RowConflictsFM = 260
			s.BankImbalanceFM = 1.1 // evenly spread
		}))
	}
	if got := det.Finish(); len(got) != 0 {
		t.Fatalf("uniform conflicts raised incidents: %+v", got)
	}
	// And below the activity floor nothing fires either.
	det2 := health.NewDetector(health.Config{WindowEpochs: 4})
	for e := uint64(0); e < 8; e++ {
		det2.Observe(feed(e, func(s *telemetry.Sample) {
			s.LLCMisses = 10
			s.RowHitsFM = 2
			s.RowMissesFM = 28
			s.RowConflictsFM = 26
			s.BankImbalanceFM = 24.0
		}))
	}
	if got := det2.Finish(); len(got) != 0 {
		t.Fatalf("sub-floor conflicts raised incidents: %+v", got)
	}
}

func TestDisabledDetectorIsNil(t *testing.T) {
	det := health.NewDetector(health.Config{Disabled: true})
	if det != nil {
		t.Fatal("Disabled config must return nil")
	}
	det.Observe(feed(0, nil)) // nil-safety
	if det.Open() != nil || det.Finish() != nil {
		t.Fatal("nil detector must stay silent")
	}
}

// thrashFeed drives one deterministic synthetic mixture through a fresh
// detector and returns the JSONL encoding of its incidents.
func thrashFeed(t *testing.T) []byte {
	t.Helper()
	det := health.NewDetector(health.Config{WindowEpochs: 4})
	for e := uint64(0); e < 32; e++ {
		det.Observe(feed(e, func(s *telemetry.Sample) {
			s.LLCMisses = 100 + e
			s.DemandBytesNM = (100 + e) * memunits.SubblockSize
			if e%11 < 4 {
				s.SwapsIn, s.SwapsOut = 200+e, 200+e
			}
			if e%2 == 0 {
				s.AccessRate = 0.9
			} else {
				s.AccessRate = 0.7
			}
			s.Locks, s.Unlocks = 8, 8
			s.PredictorHits, s.PredictorMisses = 30, 70
		}))
	}
	var buf bytes.Buffer
	if err := health.WriteJSONL(&buf, det.Finish()); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return buf.Bytes()
}

func TestIncidentsByteDeterministicAndRoundTrip(t *testing.T) {
	b1 := thrashFeed(t)
	b2 := thrashFeed(t)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("incident JSONL differs between identical feeds:\n%s\nvs\n%s", b1, b2)
	}
	// Every line round-trips: incidents decode into Incident and re-encode
	// to the same bytes; the final line is the summary.
	dec := json.NewDecoder(bytes.NewReader(b1))
	var n int
	sawSummary := false
	for dec.More() {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		var probe struct {
			Kind    string `json:"kind"`
			Summary bool   `json:"summary"`
		}
		if err := json.Unmarshal(raw, &probe); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if probe.Summary {
			sawSummary = true
			n++
			continue
		}
		var in health.Incident
		if err := json.Unmarshal(raw, &in); err != nil {
			t.Fatalf("incident line %d: %v", n, err)
		}
		re, err := json.Marshal(&in)
		if err != nil {
			t.Fatal(err)
		}
		if string(re) != string(raw) {
			t.Errorf("incident %d does not round-trip:\n%s\n%s", n, raw, re)
		}
		n++
	}
	if !sawSummary {
		t.Fatal("JSONL missing the summary line")
	}
	if n < 2 {
		t.Fatalf("feed produced %d lines; test is vacuous", n)
	}
}

// runConflictScenario hammers two far-memory blocks that map to the same
// NM congruence set through a real SILC-FM controller and returns the
// detector's incidents. With ways=1 and no locking the two blocks evict
// each other on every access (restore + install per miss); the paper's
// full design point keeps both resident.
func runConflictScenario(t *testing.T, feats config.SILCFeatures) []health.Incident {
	t.Helper()
	m := config.Small()
	m.Scheme = config.SchemeSILCFM
	m.NM = config.HBM(256 << 10)
	m.FM = config.DDR3(1 << 20)
	m.SILC.Features = feats
	m.SILC.HotThreshold = 3
	m.SILC.AgingInterval = 1 << 10

	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	ctl := core.New(sys, m.SILC)

	det := health.NewDetector(health.Config{WindowEpochs: 4})
	tel := telemetry.Attach(&telemetry.Config{
		EpochCycles: 5_000,
		OnEpoch:     func(st telemetry.EpochState) { det.Observe(st.Sample) },
	}, sys, ctl)
	tel.Start()

	// Two FM blocks in NM set 0 for every associativity that divides
	// nmBlocks: b % (nmBlocks/ways) == 0 for both.
	nmBlocks := sys.NMCap / memunits.BlockSize
	blocks := []uint64{nmBlocks, 2 * nmBlocks}
	deadline := uint64(0)
	for i := 0; i < 3000; i++ {
		b := blocks[i%2]
		sub := uint64(i%int(memunits.SubblocksPerBlock)) * memunits.SubblockSize
		ctl.Handle(&mem.Access{
			PC:    1,
			PAddr: b*memunits.BlockSize + sub,
			Start: eng.Now(),
		})
		deadline += 100
		eng.RunUntil(deadline)
	}
	if err := tel.Finish(); err != nil {
		t.Fatalf("telemetry finish: %v", err)
	}
	return det.Finish()
}

func hasKind(incidents []health.Incident, kind string) bool {
	for _, in := range incidents {
		if in.Kind == kind {
			return true
		}
	}
	return false
}

// TestConflictThrashDetectedOnDirectMappedOnly is the acceptance scenario:
// the same conflict pattern raises swap-thrash on a direct-mapped,
// featureless organization and stays quiet on the paper's full design
// point (associativity + locking + bypass absorb the conflict).
func TestConflictThrashDetectedOnDirectMappedOnly(t *testing.T) {
	direct := runConflictScenario(t, config.SILCFeatures{Ways: 1})
	if !hasKind(direct, health.KindSwapThrash) {
		t.Errorf("direct-mapped conflict run raised no swap-thrash: %+v", direct)
	}
	full := runConflictScenario(t, config.SILCFeatures{
		Locking: true, Ways: 4, Bypass: true, Predictor: true, BitVecHistory: true,
	})
	if hasKind(full, health.KindSwapThrash) {
		t.Errorf("full SILC-FM design point thrashed on the conflict pattern: %+v", full)
	}

	// Determinism of the real-simulation path: identical runs, identical
	// incident bytes.
	again := runConflictScenario(t, config.SILCFeatures{Ways: 1})
	b1, _ := json.Marshal(direct)
	b2, _ := json.Marshal(again)
	if !bytes.Equal(b1, b2) {
		t.Errorf("incidents differ between identical runs:\n%s\nvs\n%s", b1, b2)
	}
}

func TestDiffOpen(t *testing.T) {
	inc := func(kind string, firstEpoch uint64) health.Incident {
		return health.Incident{Kind: kind, FirstEpoch: firstEpoch}
	}
	kinds := func(ins []health.Incident) []string {
		var out []string
		for _, in := range ins {
			out = append(out, in.Kind)
		}
		return out
	}
	cases := []struct {
		name                string
		prev, cur           []health.Incident
		wantOpen, wantClose []string
	}{
		{"both empty", nil, nil, nil, nil},
		{"opens", nil, []health.Incident{inc(health.KindSwapThrash, 3)}, []string{health.KindSwapThrash}, nil},
		{"closes", []health.Incident{inc(health.KindSwapThrash, 3)}, nil, nil, []string{health.KindSwapThrash}},
		{"steady", []health.Incident{inc(health.KindSwapThrash, 3)}, []health.Incident{inc(health.KindSwapThrash, 3)}, nil, nil},
		{
			// Same kind, new FirstEpoch: the old incident closed and a new
			// one opened between the two observations.
			"reopen",
			[]health.Incident{inc(health.KindLockChurn, 2)},
			[]health.Incident{inc(health.KindLockChurn, 9)},
			[]string{health.KindLockChurn}, []string{health.KindLockChurn},
		},
		{
			"mixed",
			[]health.Incident{inc(health.KindSwapThrash, 1), inc(health.KindLockChurn, 2)},
			[]health.Incident{inc(health.KindLockChurn, 2), inc(health.KindQueueSaturation, 5)},
			[]string{health.KindQueueSaturation}, []string{health.KindSwapThrash},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opened, closed := health.DiffOpen(tc.prev, tc.cur)
			if got := kinds(opened); !reflect.DeepEqual(got, tc.wantOpen) {
				t.Errorf("opened = %v, want %v", got, tc.wantOpen)
			}
			if got := kinds(closed); !reflect.DeepEqual(got, tc.wantClose) {
				t.Errorf("closed = %v, want %v", got, tc.wantClose)
			}
		})
	}
}
