package health

import "fmt"

// RuleInfo is one pathology rule's human-facing metadata: what the rule
// means, the threshold it fires at (rendered from a resolved Config), and
// which counters to look at first when it opens. Surfaced in the printed
// health report, the /healthz JSON body, the dashboard tooltips and the
// postmortem renderer.
type RuleInfo struct {
	Kind        string `json:"kind"`
	Description string `json:"description"`
	// Threshold renders the firing condition with the detector's resolved
	// numeric thresholds filled in.
	Threshold string `json:"threshold"`
	// FirstLook lists the sample/evidence counters that most directly
	// explain an incident of this kind, in suggested reading order.
	FirstLook []string `json:"first_look"`
}

// Kinds returns the incident kinds in detector evaluation order.
func Kinds() []string { return append([]string(nil), kinds[:]...) }

// Rules renders every rule's metadata with cfg's thresholds resolved to
// their effective values (zero fields take the documented defaults), in
// detector evaluation order.
func (c Config) Rules() []RuleInfo {
	r := c.withDefaults()
	return []RuleInfo{
		{
			Kind: KindSwapThrash,
			Description: "The scheme moved more bytes between memory levels than it " +
				"served to the cores: migration work is evicting its own working set " +
				"instead of amortizing (the pathology SILC-FM's bandwidth bypass is " +
				"meant to suppress, §III-E).",
			Threshold: fmt.Sprintf("window swap bytes > %.2f x demand bytes with >= %d LLC misses over %d epochs",
				r.SwapThrashRatio, r.MinWindowMisses, r.WindowEpochs),
			FirstLook: []string{"swaps_in", "swaps_out", "demand_bytes_nm", "demand_bytes_fm", "migration_bytes_nm"},
		},
		{
			Kind: KindBypassOscillation,
			Description: "The access rate keeps crossing the bypass governor's target " +
				"(or the governor itself keeps toggling): placement and bypassing are " +
				"fighting each other instead of settling.",
			Threshold: fmt.Sprintf("window access-rate crossings of %.2f (or governor toggles) >= %d over %d epochs",
				r.BypassTarget, r.MinCrossings, r.WindowEpochs),
			FirstLook: []string{"access_rate", "bypassed", "gauge bypass_toggles", "serviced_nm"},
		},
		{
			Kind: KindLockChurn,
			Description: "Blocks are being locked into near memory and promptly " +
				"unlocked again: residency decisions reverse as fast as they are " +
				"made, so the lock mechanism (§III-C) pays its cost without pinning " +
				"anything long enough to matter.",
			Threshold: fmt.Sprintf("min(window locks, window unlocks) >= %d over %d epochs",
				r.LockChurnMin, r.WindowEpochs),
			FirstLook: []string{"locks", "unlocks", "gauge locked_frames", "swaps_in"},
		},
		{
			Kind: KindQueueSaturation,
			Description: "A device's per-epoch peak queue depth stayed pinned near " +
				"its capacity: the memory system is bandwidth-bound and demand " +
				"latency is dominated by queueing, not service.",
			Threshold: fmt.Sprintf("peak queue depth >= %.0f%% of device capacity in >= %d of %d epochs",
				100*r.QueueSatFraction, r.QueueSatEpochs, r.WindowEpochs),
			FirstLook: []string{"peak_queue_nm", "peak_queue_fm", "queue_nm", "queue_fm", "attribution queue span"},
		},
		{
			Kind: KindPredictorCollapse,
			Description: "The way/location predictor (§III-F) is guessing worse than " +
				"the floor: demands pay the serialized metadata-fetch retry penalty " +
				"more often than a coin flip would.",
			Threshold: fmt.Sprintf("window predictor accuracy < %.2f with >= %d predictions over %d epochs",
				r.PredictorFloor, r.PredictorMinSamples, r.WindowEpochs),
			FirstLook: []string{"predictor_hits", "predictor_misses", "attribution mispredict span"},
		},
		{
			Kind: KindRowThrash,
			Description: "Row-buffer conflicts dominate the DRAM row activity while the " +
				"pressure concentrates on few banks: the access stream keeps tearing " +
				"down rows other accesses still want, paying precharge+activate on " +
				"most operations (what a row-locality-aware placement would avoid).",
			Threshold: fmt.Sprintf("window row conflicts > %.2f x row ops with peak bank imbalance >= %.1f and >= %d row ops over %d epochs",
				r.RowThrashConflictRatio, r.RowThrashImbalance, r.RowThrashMinOps, r.WindowEpochs),
			FirstLook: []string{"row_conflicts_nm", "row_conflicts_fm", "bank_imbalance_nm", "bank_imbalance_fm", "row_hit_rate_fm", "dashboard bank heatmap"},
		},
	}
}

// Rules returns the rule metadata at the default thresholds.
func Rules() []RuleInfo { return Config{}.Rules() }

// Info returns the metadata for one kind at the default thresholds; ok is
// false for unknown kinds.
func Info(kind string) (RuleInfo, bool) {
	for _, r := range Rules() {
		if r.Kind == kind {
			return r, true
		}
	}
	return RuleInfo{}, false
}
