package manifest

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"silcfm/internal/stats"
)

// DiffOptions tunes Compare.
type DiffOptions struct {
	// Noise is the relative band (e.g. 0.10 for ±10%) within which
	// host-timing metrics may drift without counting as a breach. 0 skips
	// a metric's comparison entirely — the right setting when the two
	// manifests come from different machines (e.g. CI vs. the committed
	// baseline).
	Noise float64
	// SpeedNoise, when > 0, overrides Noise for the direction-aware
	// host.sim_cycles_per_sec band (a breach only when the new run is
	// slower by more than the band). Host timing jitters far more than
	// counters, so the speed gate usually wants a wider band than
	// wall-clock sanity checks.
	SpeedNoise float64
	// AllocNoise, when > 0, overrides Noise for the direction-aware
	// host.alloc_objects / host.alloc_bytes bands (a breach only when the
	// new run allocates more). Allocation counts are nearly deterministic,
	// so this band can be much tighter than the timing ones.
	AllocNoise float64
	// Subset allows entries present in the old manifest but absent from the
	// new one (a -short rerun of a full suite). Entries present only in the
	// new manifest always fail: a baseline must be refreshed deliberately.
	Subset bool
}

// speedBand/allocBand resolve the per-metric bands with their Noise
// fallback.
func (o DiffOptions) speedBand() float64 {
	if o.SpeedNoise > 0 {
		return o.SpeedNoise
	}
	return o.Noise
}

func (o DiffOptions) allocBand() float64 {
	if o.AllocNoise > 0 {
		return o.AllocNoise
	}
	return o.Noise
}

// Diff is the verdict of comparing two manifests.
type Diff struct {
	// Table lists every deterministic mismatch, every host-metric
	// comparison, and every entry-coverage problem, worst first.
	Table *stats.Table
	// DeterministicFails counts config/sim leaves that differ — each one is
	// a correctness or behavior regression (or an uncommitted baseline).
	DeterministicFails int
	// HostBreaches counts host metrics outside the noise band.
	HostBreaches int
	// EntriesCompared counts entries present in both manifests.
	EntriesCompared int
	// Uncovered lists old entries the new manifest did not rerun (only
	// tolerated with Subset).
	Uncovered []string
}

// OK reports whether the new manifest passes against the old.
func (d *Diff) OK() bool { return d.DeterministicFails == 0 && d.HostBreaches == 0 }

// Summary is the one-line verdict.
func (d *Diff) Summary() string {
	verdict := "PASS"
	if !d.OK() {
		verdict = "FAIL"
	}
	s := fmt.Sprintf("%s: %d entries compared, %d deterministic mismatches, %d host-timing breaches",
		verdict, d.EntriesCompared, d.DeterministicFails, d.HostBreaches)
	if len(d.Uncovered) > 0 {
		s += fmt.Sprintf(" (%d baseline entries not rerun)", len(d.Uncovered))
	}
	return s
}

// Compare diffs new against old. Deterministic leaves (everything under an
// entry's "config" and "sim" keys) must match exactly; host leaves are
// compared within opt.Noise.
func Compare(old, new *Manifest, opt DiffOptions) (*Diff, error) {
	d := &Diff{Table: &stats.Table{
		Title:   "Manifest diff (deterministic: exact; host: ±noise band)",
		Columns: []string{"entry", "metric", "old", "new", "delta", "verdict"},
	}}

	oldByID := entriesByID(old)
	newByID := entriesByID(new)

	for _, id := range sortedIDs(newByID) {
		if _, ok := oldByID[id]; !ok {
			d.DeterministicFails++
			d.Table.AddRow(id, "(entry)", "absent", "present", "", "FAIL new entry without baseline")
		}
	}
	for _, id := range sortedIDs(oldByID) {
		ne, ok := newByID[id]
		if !ok {
			d.Uncovered = append(d.Uncovered, id)
			if !opt.Subset {
				d.DeterministicFails++
				d.Table.AddRow(id, "(entry)", "present", "absent", "", "FAIL entry missing from new manifest")
			}
			continue
		}
		oe := oldByID[id]
		d.EntriesCompared++
		if err := d.compareEntry(id, oe, ne, opt); err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (d *Diff) compareEntry(id string, oe, ne Entry, opt DiffOptions) error {
	// A fingerprint mismatch means the two entries simulated different
	// machines; every sim counter would differ for a structural reason, so
	// report the one root cause instead of hundreds of symptoms.
	if oe.Config.Fingerprint != ne.Config.Fingerprint {
		d.DeterministicFails++
		d.Table.AddRow(id, "config.fingerprint", oe.Config.Fingerprint, ne.Config.Fingerprint,
			"", "FAIL config changed; refresh the baseline")
		return nil
	}

	oldLeaves, err := leaves(struct {
		Config Config `json:"config"`
		Sim    Sim    `json:"sim"`
	}{oe.Config, oe.Sim})
	if err != nil {
		return err
	}
	newLeaves, err := leaves(struct {
		Config Config `json:"config"`
		Sim    Sim    `json:"sim"`
	}{ne.Config, ne.Sim})
	if err != nil {
		return err
	}
	for _, k := range unionKeys(oldLeaves, newLeaves) {
		ov, oOK := oldLeaves[k]
		nv, nOK := newLeaves[k]
		switch {
		case !oOK:
			d.DeterministicFails++
			d.Table.AddRow(id, k, "-", nv, "", "FAIL field added")
		case !nOK:
			d.DeterministicFails++
			d.Table.AddRow(id, k, ov, "-", "", "FAIL field removed")
		case ov != nv:
			d.DeterministicFails++
			d.Table.AddRow(id, k, ov, nv, deltaStr(ov, nv), "FAIL deterministic mismatch")
		}
	}

	if opt.Noise <= 0 && opt.speedBand() <= 0 && opt.allocBand() <= 0 {
		return nil
	}
	for _, h := range []struct {
		name     string
		old, new float64
		// worseIsHigher breaches only when the new value is worse (slower /
		// bigger); getting faster or leaner is never a regression.
		worseIsHigher bool
		band          float64
	}{
		{"host.wall_seconds", oe.Host.WallSeconds, ne.Host.WallSeconds, true, opt.Noise},
		{"host.sim_cycles_per_sec", oe.Host.SimCyclesPerSec, ne.Host.SimCyclesPerSec, false, opt.speedBand()},
		{"host.alloc_objects", float64(oe.Host.AllocObjects), float64(ne.Host.AllocObjects), true, opt.allocBand()},
		{"host.alloc_bytes", float64(oe.Host.AllocBytes), float64(ne.Host.AllocBytes), true, opt.allocBand()},
	} {
		if h.band <= 0 || (h.old == 0 && h.new == 0) {
			continue
		}
		verdict, rel := "ok", 0.0
		if h.old > 0 {
			rel = h.new/h.old - 1
			breach := rel > h.band
			if !h.worseIsHigher {
				breach = rel < -h.band
			}
			if breach {
				verdict = fmt.Sprintf("FAIL outside ±%.0f%% band", h.band*100)
				d.HostBreaches++
			}
		}
		d.Table.AddRow(id, h.name,
			trimFloat(h.old), trimFloat(h.new),
			fmt.Sprintf("%+.1f%%", rel*100), verdict)
	}
	return nil
}

func entriesByID(m *Manifest) map[string]Entry {
	out := make(map[string]Entry, len(m.Entries))
	for _, e := range m.Entries {
		out[e.ID] = e
	}
	return out
}

func sortedIDs(m map[string]Entry) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// leaves flattens v's JSON form into dotted-path -> literal-text pairs
// (array indices become path segments). Numbers keep their exact JSON text
// via json.Number, so comparison never loses uint64 precision.
func leaves(v any) (map[string]string, error) {
	b, err := Canonical(v)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("manifest: flatten: %w", err)
	}
	out := map[string]string{}
	flatten("", tree, out)
	return out, nil
}

func flatten(prefix string, v any, out map[string]string) {
	switch t := v.(type) {
	case map[string]any:
		for k, c := range t {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, c, out)
		}
	case []any:
		for i, c := range t {
			flatten(fmt.Sprintf("%s[%d]", prefix, i), c, out)
		}
	case json.Number:
		out[prefix] = t.String()
	case string:
		out[prefix] = t
	case bool:
		out[prefix] = strconv.FormatBool(t)
	case nil:
		out[prefix] = "null"
	}
}

// deltaStr renders a relative delta when both leaves parse as numbers.
func deltaStr(a, b string) string {
	fa, errA := strconv.ParseFloat(a, 64)
	fb, errB := strconv.ParseFloat(b, 64)
	if errA != nil || errB != nil || fa == 0 {
		return ""
	}
	return fmt.Sprintf("%+.2f%%", (fb/fa-1)*100)
}

func unionKeys(a, b map[string]string) []string {
	seen := make(map[string]bool, len(a)+len(b))
	for k := range a {
		seen[k] = true
	}
	for k := range b {
		seen[k] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func trimFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', 0, 64)
	}
	return strconv.FormatFloat(f, 'g', 6, 64)
}
