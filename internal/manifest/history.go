package manifest

import (
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"strings"
)

// This file turns an ordered sequence of run manifests — one per PR, the
// committed BENCH_PR<N>.json baselines — into a cross-PR trajectory report:
// for every suite cell and metric, where the repo started, where it is now,
// where it peaked, and which direction it is moving. Entries are aligned by
// config fingerprint so a cell is only compared against steps that simulated
// the byte-identical machine; a renamed or reconfigured cell drops out of
// the trajectory instead of producing a nonsense curve.

// HistoryStep is one manifest in an ordered history, oldest first.
type HistoryStep struct {
	// Label names the step in reports: the manifest's own label when set,
	// otherwise the file's base name without extension.
	Label string
	Path  string
	M     *Manifest
}

// LoadHistory reads an ordered list of manifest paths into history steps.
// It needs at least two steps — a single manifest has no trajectory.
func LoadHistory(paths []string) ([]HistoryStep, error) {
	if len(paths) < 2 {
		return nil, fmt.Errorf("manifest: history needs at least 2 manifests, got %d", len(paths))
	}
	steps := make([]HistoryStep, 0, len(paths))
	for _, p := range paths {
		m, err := ReadFile(p)
		if err != nil {
			return nil, err
		}
		label := m.Label
		if label == "" {
			label = strings.TrimSuffix(filepath.Base(p), filepath.Ext(p))
		}
		steps = append(steps, HistoryStep{Label: label, Path: p, M: m})
	}
	return steps, nil
}

// NaturalSort orders paths with embedded integers compared numerically, so
// BENCH_PR10.json sorts after BENCH_PR9.json. Plain lexical order would put
// a multi-digit step before its single-digit predecessors and scramble the
// trajectory.
func NaturalSort(paths []string) {
	sort.Slice(paths, func(i, j int) bool { return naturalLess(paths[i], paths[j]) })
}

func naturalLess(a, b string) bool {
	for a != "" && b != "" {
		if isDigit(a[0]) && isDigit(b[0]) {
			da, db := digitRun(a), digitRun(b)
			na, nb := strings.TrimLeft(a[:da], "0"), strings.TrimLeft(b[:db], "0")
			if len(na) != len(nb) {
				return len(na) < len(nb)
			}
			if na != nb {
				return na < nb
			}
			// Equal values spelled differently (leading zeros): lexical.
			if a[:da] != b[:db] {
				return a[:da] < b[:db]
			}
			a, b = a[da:], b[db:]
			continue
		}
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		a, b = a[1:], b[1:]
	}
	return len(a) < len(b)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// digitRun returns the length of the leading run of digits in s.
func digitRun(s string) int {
	i := 0
	for i < len(s) && isDigit(s[i]) {
		i++
	}
	return i
}

// Trajectory metric directions.
const (
	DirImproved  = "improved"
	DirRegressed = "regressed"
	DirFlat      = "flat"
	DirChanged   = "changed" // exact metrics: any aligned value differs
	DirNone      = "n/a"     // fewer than two aligned points
)

// trajNoiseBand is the relative band inside which a host-side metric's
// last-vs-first ratio counts as flat rather than a direction.
const trajNoiseBand = 0.02

// TrajectoryPoint is one cell metric's value at one history step.
type TrajectoryPoint struct {
	Step  string  `json:"step"`
	Value float64 `json:"value"`
	// Present: the step's manifest has this entry id at all. Aligned:
	// present and its config fingerprint matches the newest step's — only
	// aligned points enter first/last/best and the direction flag.
	Present bool `json:"present"`
	Aligned bool `json:"aligned"`
}

// MetricTrajectory is one metric's curve across the history for one cell.
type MetricTrajectory struct {
	Metric string `json:"metric"`
	// HigherIsBetter orients the direction flag; Exact marks sim-determined
	// metrics where any change at all is a behavior change (no noise band).
	HigherIsBetter bool              `json:"higher_is_better"`
	Exact          bool              `json:"exact"`
	Points         []TrajectoryPoint `json:"points"`
	First          float64           `json:"first"`
	Last           float64           `json:"last"`
	Best           float64           `json:"best"`
	BestStep       string            `json:"best_step"`
	// LastOverFirst is Last/First (0 when First is 0).
	LastOverFirst float64 `json:"last_over_first"`
	Direction     string  `json:"direction"`
}

// CellTrajectory is one suite cell's metric curves.
type CellTrajectory struct {
	ID string `json:"id"`
	// Fingerprint is the newest step's config fingerprint — the alignment
	// reference every older step is matched against.
	Fingerprint  string             `json:"fingerprint"`
	AlignedSteps int                `json:"aligned_steps"`
	Metrics      []MetricTrajectory `json:"metrics"`
}

// FleetPoint is the fleet-level normalized value at one step: the geometric
// mean over aligned cells of value/first for one metric.
type FleetPoint struct {
	Step  string  `json:"step"`
	Ratio float64 `json:"ratio"`
	Cells int     `json:"cells"`
}

// FleetTrajectory is one metric's fleet-level curve.
type FleetTrajectory struct {
	Metric         string       `json:"metric"`
	HigherIsBetter bool         `json:"higher_is_better"`
	Points         []FleetPoint `json:"points"`
	Direction      string       `json:"direction"`
}

// Trajectory is the full cross-PR report: per-cell curves plus fleet-level
// geomean summaries, all derived deterministically from the input manifests.
type Trajectory struct {
	Schema int      `json:"schema"`
	Steps  []string `json:"steps"`
	// Fleet summarizes host-side metrics across cells, normalized to each
	// cell's first aligned step (so a 3x throughput jump reads as 3.00x
	// regardless of the cells' absolute rates).
	Fleet []FleetTrajectory `json:"fleet"`
	Cells []CellTrajectory  `json:"cells"`
}

// trajMetric describes one extracted metric.
type trajMetric struct {
	name         string
	higherBetter bool
	exact        bool
	fleet        bool // include in the fleet geomean summary
	format       string
	get          func(*Entry) float64
}

var trajMetrics = []trajMetric{
	{"mcyc_per_sec", true, false, true, "%.2f", func(e *Entry) float64 { return e.Host.SimCyclesPerSec / 1e6 }},
	{"alloc_objects", false, false, true, "%.0f", func(e *Entry) float64 { return float64(e.Host.AllocObjects) }},
	{"wall_seconds", false, false, false, "%.3f", func(e *Entry) float64 { return e.Host.WallSeconds }},
	{"cycles", false, true, false, "%.0f", func(e *Entry) float64 { return float64(e.Sim.Cycles) }},
	{"incidents", false, true, false, "%.0f", func(e *Entry) float64 { return float64(len(e.Sim.Incidents)) }},
}

// BuildTrajectory aligns the history's entries by id + config fingerprint
// and reduces them to per-cell and fleet-level metric curves. Output is a
// pure function of the input manifests: same files, same report.
func BuildTrajectory(steps []HistoryStep) *Trajectory {
	t := &Trajectory{Schema: Schema}
	for _, s := range steps {
		t.Steps = append(t.Steps, s.Label)
	}
	newest := steps[len(steps)-1].M

	// Index every step's entries by id.
	byID := make([]map[string]*Entry, len(steps))
	for i, s := range steps {
		byID[i] = make(map[string]*Entry, len(s.M.Entries))
		for j := range s.M.Entries {
			e := &s.M.Entries[j]
			byID[i][e.ID] = e
		}
	}

	// Cells are the newest manifest's entries, in id order (Add keeps them
	// sorted, but sort defensively — determinism is the contract here).
	ids := make([]string, 0, len(newest.Entries))
	for i := range newest.Entries {
		ids = append(ids, newest.Entries[i].ID)
	}
	sort.Strings(ids)

	for _, id := range ids {
		ref := byID[len(steps)-1][id]
		cell := CellTrajectory{ID: id, Fingerprint: ref.Config.Fingerprint}
		aligned := make([]bool, len(steps))
		for i := range steps {
			if e, ok := byID[i][id]; ok && e.Config.Fingerprint == ref.Config.Fingerprint {
				aligned[i] = true
				cell.AlignedSteps++
			}
		}
		for _, tm := range trajMetrics {
			mt := MetricTrajectory{Metric: tm.name, HigherIsBetter: tm.higherBetter, Exact: tm.exact, Direction: DirNone}
			n := 0
			for i, s := range steps {
				pt := TrajectoryPoint{Step: s.Label}
				if e, ok := byID[i][id]; ok {
					pt.Present = true
					pt.Value = tm.get(e)
					pt.Aligned = aligned[i]
				}
				mt.Points = append(mt.Points, pt)
				if !pt.Aligned {
					continue
				}
				if n == 0 {
					mt.First, mt.Best, mt.BestStep = pt.Value, pt.Value, pt.Step
				}
				mt.Last = pt.Value
				if (tm.higherBetter && pt.Value > mt.Best) || (!tm.higherBetter && pt.Value < mt.Best) {
					mt.Best, mt.BestStep = pt.Value, pt.Step
				}
				n++
			}
			if n >= 2 {
				if mt.First != 0 {
					mt.LastOverFirst = mt.Last / mt.First
				}
				mt.Direction = direction(tm, mt.Points)
			}
			cell.Metrics = append(cell.Metrics, mt)
		}
		t.Cells = append(t.Cells, cell)
	}

	t.Fleet = fleetSummary(t)
	return t
}

// direction reduces a metric's aligned points to a flag. Exact metrics flag
// "changed" if any aligned value differs from the first; host metrics
// compare last against first within the noise band.
func direction(tm trajMetric, pts []TrajectoryPoint) string {
	var first, last float64
	n := 0
	changed := false
	for _, p := range pts {
		if !p.Aligned {
			continue
		}
		if n == 0 {
			first = p.Value
		} else if p.Value != first {
			changed = true
		}
		last = p.Value
		n++
	}
	if n < 2 {
		return DirNone
	}
	if tm.exact {
		if changed {
			return DirChanged
		}
		return DirFlat
	}
	if first == 0 {
		if last == 0 {
			return DirFlat
		}
		if tm.higherBetter {
			return DirImproved
		}
		return DirRegressed
	}
	ratio := last / first
	if math.Abs(ratio-1) <= trajNoiseBand {
		return DirFlat
	}
	if (ratio > 1) == tm.higherBetter {
		return DirImproved
	}
	return DirRegressed
}

// fleetSummary reduces the per-cell curves to fleet geomeans: for each
// fleet metric and step, the geometric mean over cells of value/first
// (cells must be aligned at that step with a positive first value).
func fleetSummary(t *Trajectory) []FleetTrajectory {
	var out []FleetTrajectory
	for mi, tm := range trajMetrics {
		if !tm.fleet {
			continue
		}
		ft := FleetTrajectory{Metric: tm.name, HigherIsBetter: tm.higherBetter, Direction: DirNone}
		for si, step := range t.Steps {
			sumLog, cells := 0.0, 0
			for _, cell := range t.Cells {
				mt := cell.Metrics[mi]
				pt := mt.Points[si]
				if !pt.Aligned || mt.First <= 0 || pt.Value <= 0 {
					continue
				}
				sumLog += math.Log(pt.Value / mt.First)
				cells++
			}
			fp := FleetPoint{Step: step, Cells: cells}
			if cells > 0 {
				fp.Ratio = math.Exp(sumLog / float64(cells))
			}
			ft.Points = append(ft.Points, fp)
		}
		// Direction from the first and last steps with any covered cells.
		var first, last *FleetPoint
		for i := range ft.Points {
			if ft.Points[i].Cells == 0 {
				continue
			}
			if first == nil {
				first = &ft.Points[i]
			}
			last = &ft.Points[i]
		}
		if first != nil && last != nil && first != last {
			ratio := last.Ratio / first.Ratio
			switch {
			case math.Abs(ratio-1) <= trajNoiseBand:
				ft.Direction = DirFlat
			case (ratio > 1) == tm.higherBetter:
				ft.Direction = DirImproved
			default:
				ft.Direction = DirRegressed
			}
		}
		out = append(out, ft)
	}
	return out
}

// Markdown renders the trajectory as a deterministic report: a fleet
// summary table, then one row per cell and metric. Same trajectory, same
// bytes — ci.sh diffs the committed artifact against a regeneration.
func (t *Trajectory) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Trajectory: %s\n\n", strings.Join(t.Steps, " → "))
	fmt.Fprintf(&b, "Cells aligned by config fingerprint against %s; unaligned steps are shown as `·`.\n\n", t.Steps[len(t.Steps)-1])

	b.WriteString("## Fleet (geomean of per-cell value ÷ first aligned value)\n\n")
	fmt.Fprintf(&b, "| metric |")
	for _, s := range t.Steps {
		fmt.Fprintf(&b, " %s |", s)
	}
	b.WriteString(" direction |\n|---|")
	for range t.Steps {
		b.WriteString("---|")
	}
	b.WriteString("---|\n")
	for _, ft := range t.Fleet {
		fmt.Fprintf(&b, "| %s |", ft.Metric)
		for _, p := range ft.Points {
			if p.Cells == 0 {
				b.WriteString(" · |")
			} else {
				fmt.Fprintf(&b, " %.2fx (%d) |", p.Ratio, p.Cells)
			}
		}
		fmt.Fprintf(&b, " %s |\n", ft.Direction)
	}

	b.WriteString("\n## Cells\n\n")
	fmt.Fprintf(&b, "| cell | metric |")
	for _, s := range t.Steps {
		fmt.Fprintf(&b, " %s |", s)
	}
	b.WriteString(" best | last/first | direction |\n|---|---|")
	for range t.Steps {
		b.WriteString("---|")
	}
	b.WriteString("---|---|---|\n")
	for _, cell := range t.Cells {
		for mi, mt := range cell.Metrics {
			fmt.Fprintf(&b, "| %s | %s |", cell.ID, mt.Metric)
			for _, p := range mt.Points {
				if !p.Aligned {
					b.WriteString(" · |")
				} else {
					fmt.Fprintf(&b, " "+trajMetrics[mi].format+" |", p.Value)
				}
			}
			if mt.Direction == DirNone {
				b.WriteString(" · | · |")
			} else {
				fmt.Fprintf(&b, " "+trajMetrics[mi].format+" @%s |", mt.Best, mt.BestStep)
				if mt.LastOverFirst != 0 {
					fmt.Fprintf(&b, " %.2fx |", mt.LastOverFirst)
				} else {
					b.WriteString(" · |")
				}
			}
			fmt.Fprintf(&b, " %s |\n", mt.Direction)
		}
	}
	return b.String()
}
