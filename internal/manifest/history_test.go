package manifest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"silcfm/internal/health"
)

// histEntry builds one entry with just the fields the trajectory reads.
func histEntry(id, fp string, cycles uint64, mcyc float64, allocs uint64, incidents int) Entry {
	e := Entry{
		ID:     id,
		Config: Config{Fingerprint: fp},
		Sim:    Sim{Cycles: cycles},
		Host:   Host{SimCyclesPerSec: mcyc * 1e6, AllocObjects: allocs, WallSeconds: 0.1},
	}
	for i := 0; i < incidents; i++ {
		e.Sim.Incidents = append(e.Sim.Incidents, health.Incident{Kind: health.KindSwapThrash})
	}
	return e
}

func histStep(label string, entries ...Entry) HistoryStep {
	m := New("test", label)
	for _, e := range entries {
		m.Add(e)
	}
	return HistoryStep{Label: label, M: m}
}

func metricByName(t *testing.T, cell CellTrajectory, name string) MetricTrajectory {
	t.Helper()
	for _, mt := range cell.Metrics {
		if mt.Metric == name {
			return mt
		}
	}
	t.Fatalf("cell %s has no metric %q", cell.ID, name)
	return MetricTrajectory{}
}

func TestBuildTrajectoryAlignmentAndDirections(t *testing.T) {
	steps := []HistoryStep{
		histStep("PR1",
			histEntry("a", "fp-a", 500, 2.0, 1000, 0),
			histEntry("b", "fp-b-old", 900, 4.0, 2000, 1), // reconfigured later
		),
		histStep("PR2",
			histEntry("a", "fp-a", 500, 2.1, 1000, 0),
			histEntry("b", "fp-b", 800, 4.0, 2000, 1),
		),
		histStep("PR3",
			histEntry("a", "fp-a", 500, 6.0, 100, 0), // the 3x step
			histEntry("b", "fp-b", 777, 4.0, 2000, 0),
			histEntry("c", "fp-c", 50, 1.0, 10, 0), // new cell
		),
	}
	tr := BuildTrajectory(steps)

	if got := strings.Join(tr.Steps, ","); got != "PR1,PR2,PR3" {
		t.Fatalf("steps = %s", got)
	}
	if len(tr.Cells) != 3 {
		t.Fatalf("cells = %d, want 3 (newest manifest's entries)", len(tr.Cells))
	}

	a, b, c := tr.Cells[0], tr.Cells[1], tr.Cells[2]
	if a.ID != "a" || b.ID != "b" || c.ID != "c" {
		t.Fatalf("cell order = %s,%s,%s, want a,b,c", a.ID, b.ID, c.ID)
	}

	// Cell a: fully aligned, throughput improved 3x, allocs improved,
	// cycles exactly flat.
	if a.AlignedSteps != 3 {
		t.Errorf("a aligned steps = %d, want 3", a.AlignedSteps)
	}
	mc := metricByName(t, a, "mcyc_per_sec")
	if mc.Direction != DirImproved || mc.LastOverFirst != 3.0 || mc.Best != 6.0 || mc.BestStep != "PR3" {
		t.Errorf("a mcyc trajectory = %+v, want improved 3.00x best 6.0@PR3", mc)
	}
	if al := metricByName(t, a, "alloc_objects"); al.Direction != DirImproved || al.Best != 100 {
		t.Errorf("a allocs trajectory = %+v, want improved best 100", al)
	}
	if cy := metricByName(t, a, "cycles"); cy.Direction != DirFlat {
		t.Errorf("a cycles direction = %s, want flat", cy.Direction)
	}

	// Cell b: PR1 ran a different fingerprint, so only PR2/PR3 align;
	// cycles changed between them, and the incident went away.
	if b.AlignedSteps != 2 {
		t.Errorf("b aligned steps = %d, want 2", b.AlignedSteps)
	}
	cy := metricByName(t, b, "cycles")
	if cy.Points[0].Aligned || !cy.Points[0].Present {
		t.Errorf("b PR1 point = %+v, want present but unaligned", cy.Points[0])
	}
	if cy.Direction != DirChanged || cy.First != 800 || cy.Last != 777 {
		t.Errorf("b cycles trajectory = %+v, want changed 800->777", cy)
	}
	if in := metricByName(t, b, "incidents"); in.Direction != DirChanged || in.First != 1 || in.Last != 0 {
		t.Errorf("b incidents trajectory = %+v, want changed 1->0", in)
	}

	// Cell c: exists only at PR3 — no trajectory.
	if c.AlignedSteps != 1 {
		t.Errorf("c aligned steps = %d, want 1", c.AlignedSteps)
	}
	if mt := metricByName(t, c, "mcyc_per_sec"); mt.Direction != DirNone {
		t.Errorf("c direction = %s, want %s", mt.Direction, DirNone)
	}

	// Fleet mcyc geomean: cell a contributes 3.0 at PR3, cell b 1.0 over
	// PR2..PR3 (normalized to its own first aligned step); c has first==last.
	var fleetMc *FleetTrajectory
	for i := range tr.Fleet {
		if tr.Fleet[i].Metric == "mcyc_per_sec" {
			fleetMc = &tr.Fleet[i]
		}
	}
	if fleetMc == nil || fleetMc.Direction != DirImproved {
		t.Fatalf("fleet mcyc = %+v, want improved", fleetMc)
	}
	if p := fleetMc.Points[0]; p.Cells != 1 || p.Ratio != 1.0 {
		t.Errorf("fleet PR1 point = %+v, want 1 cell at 1.00x", p)
	}
	if p := fleetMc.Points[2]; p.Cells != 3 {
		t.Errorf("fleet PR3 point = %+v, want 3 cells", p)
	}
}

func TestTrajectoryMarkdownDeterministic(t *testing.T) {
	steps := []HistoryStep{
		histStep("PR1", histEntry("a", "fp", 500, 2.0, 1000, 0)),
		histStep("PR2", histEntry("a", "fp", 500, 6.0, 100, 0)),
	}
	md1 := BuildTrajectory(steps).Markdown()
	md2 := BuildTrajectory(steps).Markdown()
	if md1 != md2 {
		t.Fatal("Markdown output differs between identical builds")
	}
	for _, want := range []string{"PR1 → PR2", "| mcyc_per_sec |", "3.00x", "improved"} {
		if !strings.Contains(md1, want) {
			t.Errorf("markdown missing %q:\n%s", want, md1)
		}
	}
}

func TestLoadHistory(t *testing.T) {
	dir := t.TempDir()
	write := func(name, label string) string {
		m := New("test", label)
		e := histEntry("a", "fp", 500, 2.0, 1000, 0)
		m.Add(e)
		p := filepath.Join(dir, name)
		if err := m.WriteFile(p); err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1 := write("one.json", "PR1")
	p2 := write("two.json", "") // label falls back to the file name

	if _, err := LoadHistory([]string{p1}); err == nil {
		t.Error("LoadHistory with one path: want error")
	}
	steps, err := LoadHistory([]string{p1, p2})
	if err != nil {
		t.Fatalf("LoadHistory: %v", err)
	}
	if steps[0].Label != "PR1" || steps[1].Label != "two" {
		t.Errorf("labels = %q,%q, want PR1,two", steps[0].Label, steps[1].Label)
	}
	if _, err := LoadHistory([]string{p1, filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("LoadHistory with missing file: want error")
	}
	_ = os.Remove(p2)
}

func TestNaturalSortOrdersMultiDigitSteps(t *testing.T) {
	paths := []string{
		"BENCH_PR10.json", "BENCH_PR4.json", "BENCH_PR9.json",
		"BENCH_PR100.json", "BENCH_PR5.json", "BENCH_PR010.json",
	}
	NaturalSort(paths)
	want := []string{
		"BENCH_PR4.json", "BENCH_PR5.json", "BENCH_PR9.json",
		// Equal values order lexically (leading zeros first), then magnitude.
		"BENCH_PR010.json", "BENCH_PR10.json", "BENCH_PR100.json",
	}
	for i := range want {
		if paths[i] != want[i] {
			t.Fatalf("natural order %v, want %v", paths, want)
		}
	}
	mixed := []string{"b2", "a10", "a9", "a", "b"}
	NaturalSort(mixed)
	wantMixed := []string{"a", "a9", "a10", "b", "b2"}
	for i := range wantMixed {
		if mixed[i] != wantMixed[i] {
			t.Fatalf("mixed natural order %v, want %v", mixed, wantMixed)
		}
	}
}
