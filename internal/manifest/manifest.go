// Package manifest serializes completed simulation runs into canonical,
// byte-deterministic JSON run manifests, and diffs two manifests into a
// regression verdict. A manifest is the machine-readable record of what a
// run produced: the config fingerprint that identifies the simulated
// machine, every deterministic simulation counter (cycles, serviced
// demands, byte ledgers, latency histogram sums, span attribution, energy),
// and the host-side cost of producing it (wall time, simulated-cycles-per-
// second throughput, allocations).
//
// The two metric classes are deliberately separated: everything under an
// entry's "config" and "sim" keys is a pure function of the simulated
// machine and seed, so across two runs of the same code it must match
// byte-for-byte — any difference is a correctness or behavior change.
// Everything under "host" (and the manifest-level "env") depends on the
// machine the simulator ran on and is only comparable within a noise band.
// Diff enforces exactly that split.
package manifest

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"

	"silcfm/internal/harness"
	"silcfm/internal/health"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry/exemplar"
)

// Schema is the manifest format version; Decode rejects other versions so a
// stale baseline fails loudly instead of diffing garbage.
const Schema = 1

// Manifest is one run (or suite of runs) of the simulator.
type Manifest struct {
	Schema  int     `json:"schema"`
	Tool    string  `json:"tool"`
	Label   string  `json:"label,omitempty"`
	Env     Env     `json:"env"`
	Entries []Entry `json:"entries"`
}

// Env records the host environment that produced the manifest. Like Host it
// is machine-dependent and excluded from exact comparison.
type Env struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
}

// New builds an empty manifest stamped with the current environment.
func New(tool, label string) *Manifest {
	return &Manifest{
		Schema: Schema,
		Tool:   tool,
		Label:  label,
		Env:    Env{GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH},
	}
}

// Add appends an entry, keeping Entries sorted by ID so concurrently
// produced suites encode deterministically.
func (m *Manifest) Add(e Entry) {
	i := sort.Search(len(m.Entries), func(i int) bool { return m.Entries[i].ID >= e.ID })
	m.Entries = append(m.Entries, Entry{})
	copy(m.Entries[i+1:], m.Entries[i:])
	m.Entries[i] = e
}

// Entry is one simulation run.
type Entry struct {
	ID     string `json:"id"`
	Config Config `json:"config"`
	Sim    Sim    `json:"sim"`
	Host   Host   `json:"host"`
}

// Config identifies what was simulated. Fingerprint hashes the complete
// machine description plus run parameters, so two entries with equal
// fingerprints simulated byte-identical configurations; the named fields
// are the human-readable subset.
type Config struct {
	Fingerprint       string `json:"fingerprint"`
	Scheme            string `json:"scheme"`
	Workload          string `json:"workload"`
	Seed              int64  `json:"seed"`
	Cores             int    `json:"cores"`
	NMBytes           uint64 `json:"nm_bytes"`
	FMBytes           uint64 `json:"fm_bytes"`
	InstrPerCore      uint64 `json:"instr_per_core"`
	ScaleInstrByClass bool   `json:"scale_instr_by_class"`
	FootScaleNum      int    `json:"foot_scale_num,omitempty"`
	FootScaleDen      int    `json:"foot_scale_den,omitempty"`
}

// Sim holds every deterministic simulation metric. Given the same code and
// the same Config, every field is reproduced exactly on any host.
type Sim struct {
	Cycles           uint64        `json:"cycles"`
	Instructions     uint64        `json:"instructions"`
	FootprintPages   uint64        `json:"footprint_pages"`
	LLCMisses        uint64        `json:"llc_misses"`
	ServicedNM       uint64        `json:"serviced_nm"`
	ServicedFM       uint64        `json:"serviced_fm"`
	BytesNM          ClassBytes    `json:"bytes_nm"`
	BytesFM          ClassBytes    `json:"bytes_fm"`
	SwapsIn          uint64        `json:"swaps_in"`
	SwapsOut         uint64        `json:"swaps_out"`
	Locks            uint64        `json:"locks"`
	Unlocks          uint64        `json:"unlocks"`
	Migrations       uint64        `json:"migrations"`
	BypassedAccesses uint64        `json:"bypassed_accesses"`
	PredictorHits    uint64        `json:"predictor_hits"`
	PredictorMisses  uint64        `json:"predictor_misses"`
	RowHitsNM        uint64        `json:"row_hits_nm"`
	RowMissesNM      uint64        `json:"row_misses_nm"`
	RowHitsFM        uint64        `json:"row_hits_fm"`
	RowMissesFM      uint64        `json:"row_misses_fm"`
	DramNM           DramSim       `json:"dram_nm"`
	DramFM           DramSim       `json:"dram_fm"`
	OSOverheadCycles uint64        `json:"os_overhead_cycles"`
	Energy           Energy        `json:"energy"`
	Latency          []PathLatency `json:"latency,omitempty"`
	Attribution      []PathSpans   `json:"attribution,omitempty"`
	// Incidents are the run's closed health incidents (internal/health).
	// They are a pure function of the simulated machine and seed, so they
	// diff sim-exact like every counter above: a thrash incident appearing
	// or vanishing between two builds is a behavior change.
	Incidents []health.Incident `json:"incidents,omitempty"`
	// Exemplars reduces the tail-exemplar reservoirs to one summary per
	// demand path (worst access identity plus reservoir occupancy). The
	// recorder is byte-deterministic, so the summary diffs sim-exact: a
	// different worst access between two builds is a behavior change. Full
	// exemplar records are too bulky for manifests and go to the
	// -exemplars-out JSONL stream instead.
	Exemplars []exemplar.PathSummary `json:"exemplars,omitempty"`
}

// DramSim is one device's DRAM introspection ledger reduced to totals
// (internal/dram's per-bank/per-channel counters). Sim-exact like every
// other counter: a drift here means the device model's scheduling or
// refresh behavior changed.
type DramSim struct {
	RowConflicts         uint64 `json:"row_conflicts"`
	RefreshCloses        uint64 `json:"refresh_closes"`
	BusBusyCycles        uint64 `json:"bus_busy_cycles"`
	BankBusyCycles       uint64 `json:"bank_busy_cycles"`
	ReadQueueWaitCycles  uint64 `json:"read_queue_wait_cycles"`
	WriteQueueWaitCycles uint64 `json:"write_queue_wait_cycles"`
}

// ClassBytes is one level's byte ledger by traffic class.
type ClassBytes struct {
	Demand    uint64 `json:"demand"`
	Migration uint64 `json:"migration"`
	Metadata  uint64 `json:"metadata"`
}

// Energy is the run's energy breakdown in nanojoules.
type Energy struct {
	NMDynamicNJ  float64 `json:"nm_dynamic_nj"`
	FMDynamicNJ  float64 `json:"fm_dynamic_nj"`
	BackgroundNJ float64 `json:"background_nj"`
	AggregateNJ  float64 `json:"aggregate_nj"`
	TotalNJ      float64 `json:"total_nj"`
}

// PathLatency is one demand path's latency histogram reduced to exact
// (count/sum/max) and bucketed (percentile-bound) statistics.
type PathLatency struct {
	Path  string `json:"path"`
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   uint64 `json:"max"`
	P50   uint64 `json:"p50"`
	P95   uint64 `json:"p95"`
	P99   uint64 `json:"p99"`
}

// PathSpans is one demand path's span-attribution sums in cycles.
type PathSpans struct {
	Path       string `json:"path"`
	Count      uint64 `json:"count"`
	Total      uint64 `json:"total"`
	Queue      uint64 `json:"queue"`
	Service    uint64 `json:"service"`
	MetaFetch  uint64 `json:"meta_fetch"`
	SwapSerial uint64 `json:"swap_serial"`
	Mispredict uint64 `json:"mispredict"`
	Other      uint64 `json:"other"`
}

// Host holds the machine-dependent cost of producing the run. Diff compares
// these within a noise band, never exactly.
type Host struct {
	WallSeconds     float64 `json:"wall_seconds"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
	AllocObjects    uint64  `json:"alloc_objects,omitempty"`
	AllocBytes      uint64  `json:"alloc_bytes,omitempty"`
	Reps            int     `json:"reps,omitempty"`
}

// Fingerprint returns a short stable hash of v's canonical encoding.
func Fingerprint(v any) string {
	b, err := Canonical(v)
	if err != nil {
		// Every fingerprinted type in this module is plain data; an encode
		// failure is a programming error, not a runtime condition.
		panic(fmt.Sprintf("manifest: fingerprint: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

// ConfigOf derives the manifest Config from the spec a run was launched
// with (harness.Run stamps it into Result.Spec). The fingerprint itself is
// computed by harness.Spec.Fingerprint so non-manifest consumers (the
// flight recorder's postmortem bundles) share the identical identity.
func ConfigOf(spec harness.Spec) Config {
	m := spec.Machine
	return Config{
		Fingerprint:       spec.Fingerprint(),
		Scheme:            string(m.Scheme),
		Workload:          spec.Workload,
		Seed:              m.Seed,
		Cores:             m.Cores,
		NMBytes:           m.NM.Capacity,
		FMBytes:           m.FM.Capacity,
		InstrPerCore:      spec.InstrPerCore,
		ScaleInstrByClass: spec.ScaleInstrByClass,
		FootScaleNum:      spec.FootScaleNum,
		FootScaleDen:      spec.FootScaleDen,
	}
}

// FromResult reduces one completed run into a manifest entry.
func FromResult(id string, res *harness.Result) Entry {
	e := Entry{
		ID:     id,
		Config: ConfigOf(res.Spec),
		Sim: Sim{
			Cycles:           res.Cycles,
			Instructions:     res.TotalInstructions(),
			FootprintPages:   res.FootprintPages,
			LLCMisses:        res.Mem.LLCMisses,
			ServicedNM:       res.Mem.ServicedNM,
			ServicedFM:       res.Mem.ServicedFM,
			BytesNM:          classBytes(res.Mem.Bytes[stats.NM]),
			BytesFM:          classBytes(res.Mem.Bytes[stats.FM]),
			SwapsIn:          res.Mem.SwapsIn,
			SwapsOut:         res.Mem.SwapsOut,
			Locks:            res.Mem.Locks,
			Unlocks:          res.Mem.Unlocks,
			Migrations:       res.Mem.Migrations,
			BypassedAccesses: res.Mem.BypassedAccesses,
			PredictorHits:    res.Mem.PredictorHits,
			PredictorMisses:  res.Mem.PredictorMisses,
			RowHitsNM:        res.Mem.RowHits[stats.NM],
			RowMissesNM:      res.Mem.RowMisses[stats.NM],
			RowHitsFM:        res.Mem.RowHits[stats.FM],
			RowMissesFM:      res.Mem.RowMisses[stats.FM],
			DramNM:           dramSim(&res.Mem, stats.NM),
			DramFM:           dramSim(&res.Mem, stats.FM),
			OSOverheadCycles: res.Mem.OSOverheadCycles,
			Energy: Energy{
				NMDynamicNJ:  res.Energy.NMDynamicNJ,
				FMDynamicNJ:  res.Energy.FMDynamicNJ,
				BackgroundNJ: res.Energy.BackgroundNJ,
				AggregateNJ:  res.Energy.AggregateNJ,
				TotalNJ:      res.Energy.TotalNJ(),
			},
		},
		Host: Host{
			WallSeconds:     res.WallSeconds,
			SimCyclesPerSec: res.SimCyclesPerSec,
		},
	}
	if res.Lat != nil {
		for p := stats.DemandPath(0); p < stats.NumDemandPaths; p++ {
			h := &res.Lat.Hist[p]
			if h.N == 0 {
				continue
			}
			e.Sim.Latency = append(e.Sim.Latency, PathLatency{
				Path:  p.String(),
				Count: h.N,
				Sum:   h.Sum,
				Max:   h.Max,
				P50:   h.Percentile(50),
				P95:   h.Percentile(95),
				P99:   h.Percentile(99),
			})
		}
	}
	e.Sim.Incidents = append([]health.Incident(nil), res.Health...)
	e.Sim.Exemplars = exemplar.Summarize(res.Exemplars)
	if res.Attr != nil {
		for _, s := range res.Attr.Summaries() {
			e.Sim.Attribution = append(e.Sim.Attribution, PathSpans{
				Path:       s.Path,
				Count:      s.Count,
				Total:      s.Total,
				Queue:      s.Spans[stats.SpanQueue],
				Service:    s.Spans[stats.SpanService],
				MetaFetch:  s.Spans[stats.SpanMetaFetch],
				SwapSerial: s.Spans[stats.SpanSwapSerial],
				Mispredict: s.Spans[stats.SpanMispredict],
				Other:      s.Spans[stats.SpanOther],
			})
		}
	}
	return e
}

func dramSim(m *stats.Memory, lv stats.MemLevel) DramSim {
	return DramSim{
		RowConflicts:         m.RowConflicts[lv],
		RefreshCloses:        m.RefreshCloses[lv],
		BusBusyCycles:        m.BusBusyCycles[lv],
		BankBusyCycles:       m.BankBusyCycles[lv],
		ReadQueueWaitCycles:  m.ReadQueueWaitCycles[lv],
		WriteQueueWaitCycles: m.WriteQueueWaitCycles[lv],
	}
}

func classBytes(b [3]uint64) ClassBytes {
	return ClassBytes{
		Demand:    b[stats.Demand],
		Migration: b[stats.Migration],
		Metadata:  b[stats.Metadata],
	}
}

// Canonical encodes any value as canonical JSON: two-space indentation,
// struct fields in declaration order, map keys sorted, shortest round-trip
// float formatting, trailing newline. Encoding the same value always yields
// the same bytes, which is what makes exact manifest comparison meaningful.
func Canonical(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("manifest: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// Encode renders the manifest as canonical JSON.
func (m *Manifest) Encode() ([]byte, error) { return Canonical(m) }

// Decode parses a manifest, rejecting unknown schema versions.
func Decode(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: decode: %w", err)
	}
	if m.Schema != Schema {
		return nil, fmt.Errorf("manifest: schema %d, this tool reads %d", m.Schema, Schema)
	}
	return &m, nil
}

// ReadFile loads a manifest from disk.
func ReadFile(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("manifest: %w", err)
	}
	m, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("manifest: %s: %w", path, err)
	}
	return m, nil
}

// WriteFile writes the manifest to disk as canonical JSON.
func (m *Manifest) WriteFile(path string) error {
	b, err := m.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("manifest: %w", err)
	}
	return nil
}
