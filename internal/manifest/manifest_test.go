package manifest

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/harness"
	"silcfm/internal/health"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry/exemplar"
)

// testEntry builds a fully-populated synthetic entry without running a
// simulation.
func testEntry(id string) Entry {
	spec := harness.Spec{
		Machine:           config.Small(),
		Workload:          "milc",
		InstrPerCore:      20000,
		ScaleInstrByClass: true,
		FootScaleNum:      1,
		FootScaleDen:      8,
	}
	res := &harness.Result{Spec: spec}
	res.Workload = "milc"
	res.Scheme = "silc"
	res.Cycles = 123456
	res.Cores = []stats.Core{{Instructions: 20000, LLCMisses: 700}}
	res.Mem = stats.Memory{
		LLCMisses:  700,
		ServicedNM: 400,
		ServicedFM: 300,
		SwapsIn:    55,
		Locks:      3,
	}
	res.Mem.Bytes[stats.NM][stats.Demand] = 400 * 64
	res.Mem.Bytes[stats.FM][stats.Demand] = 300 * 64
	res.Mem.Bytes[stats.NM][stats.Migration] = 55 * 64
	res.FootprintPages = 77
	res.EnergyNJ = 1234.5
	res.Energy.NMDynamicNJ = 1000
	res.Energy.BackgroundNJ = 234.5
	res.Lat = stats.NewPathLatencies()
	res.Attr = &stats.Attribution{}
	for i := 0; i < 400; i++ {
		res.Lat.Observe(stats.PathNMHit, 100)
		res.Attr.Observe(stats.PathNMHit, &[stats.NumSpans]uint64{stats.SpanQueue: 40, stats.SpanService: 60})
	}
	res.WallSeconds = 0.5
	res.SimCyclesPerSec = 2e6
	res.Health = []health.Incident{{
		Kind:         health.KindSwapThrash,
		FirstEpoch:   2,
		LastEpoch:    5,
		FirstCycle:   40000,
		LastCycle:    120000,
		Epochs:       4,
		PeakSeverity: 2.25,
		Evidence:     health.Evidence{SwapBytes: 55 * 64, DemandBytes: 700 * 64},
	}}
	return FromResult(id, res)
}

func testManifest(label string, ids ...string) *Manifest {
	m := New("test", label)
	for _, id := range ids {
		m.Add(testEntry(id))
	}
	return m
}

func TestRoundTripByteIdentical(t *testing.T) {
	m := testManifest("PR0", "silc/milc", "base/milc")
	b1, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("decode round trip not deep-equal:\nin:  %+v\nout: %+v", m, got)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("re-encode not byte-identical:\n%s\nvs\n%s", b1, b2)
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	if _, err := Decode([]byte(`{"schema": 99, "tool": "x"}`)); err == nil {
		t.Fatal("want schema-version error, got nil")
	}
}

func TestAddKeepsEntriesSorted(t *testing.T) {
	m := New("test", "")
	for _, id := range []string{"c/w", "a/w", "b/w"} {
		m.Add(testEntry(id))
	}
	for i, want := range []string{"a/w", "b/w", "c/w"} {
		if m.Entries[i].ID != want {
			t.Fatalf("entry %d = %q, want %q", i, m.Entries[i].ID, want)
		}
	}
}

func TestFingerprintTracksConfig(t *testing.T) {
	e1, e2 := testEntry("x"), testEntry("x")
	if e1.Config.Fingerprint != e2.Config.Fingerprint {
		t.Fatal("same spec must fingerprint identically")
	}
	spec := harness.Spec{Machine: config.Small(), Workload: "milc", InstrPerCore: 20000}
	f1 := ConfigOf(spec).Fingerprint
	spec.Machine.SILC.HotThreshold++
	if f2 := ConfigOf(spec).Fingerprint; f1 == f2 {
		t.Fatal("changing a machine parameter must change the fingerprint")
	}
	spec.Machine.SILC.HotThreshold--
	spec.InstrPerCore++
	if f2 := ConfigOf(spec).Fingerprint; f1 == f2 {
		t.Fatal("changing the instruction target must change the fingerprint")
	}
}

func TestCompareIdenticalPasses(t *testing.T) {
	old := testManifest("a", "silc/milc")
	new := testManifest("b", "silc/milc")
	d, err := Compare(old, new, DiffOptions{Noise: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() || d.EntriesCompared != 1 {
		t.Fatalf("identical manifests must pass: %s", d.Summary())
	}
}

func TestCompareDetectsDeterministicMismatch(t *testing.T) {
	old := testManifest("a", "silc/milc")
	new := testManifest("b", "silc/milc")
	new.Entries[0].Sim.Cycles++
	d, err := Compare(old, new, DiffOptions{Noise: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() || d.DeterministicFails != 1 {
		t.Fatalf("cycle drift must fail exactly once: %s", d.Summary())
	}
	found := false
	for _, row := range d.Table.Rows {
		if row[1] == "sim.cycles" && strings.HasPrefix(row[5], "FAIL") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diff table missing sim.cycles failure: %+v", d.Table.Rows)
	}
}

func TestCompareDetectsIncidentDrift(t *testing.T) {
	// A severity change in an existing incident is a deterministic mismatch.
	old := testManifest("a", "silc/milc")
	new := testManifest("b", "silc/milc")
	new.Entries[0].Sim.Incidents[0].PeakSeverity *= 2
	d, err := Compare(old, new, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() {
		t.Fatalf("incident severity drift must fail: %s", d.Summary())
	}
	found := false
	for _, row := range d.Table.Rows {
		if strings.HasPrefix(row[1], "sim.incidents[0].peak_severity") && strings.HasPrefix(row[5], "FAIL") {
			found = true
		}
	}
	if !found {
		t.Fatalf("diff table missing incident failure: %+v", d.Table.Rows)
	}

	// An incident vanishing entirely is a behavior change too.
	gone := testManifest("c", "silc/milc")
	gone.Entries[0].Sim.Incidents = nil
	d, err = Compare(old, gone, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() {
		t.Fatalf("vanished incident must fail: %s", d.Summary())
	}
}

func TestCompareDetectsLatencyHistogramDrift(t *testing.T) {
	old := testManifest("a", "silc/milc")
	new := testManifest("b", "silc/milc")
	new.Entries[0].Sim.Latency[0].Sum += 7
	d, err := Compare(old, new, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() {
		t.Fatalf("histogram sum drift must fail: %s", d.Summary())
	}
}

func TestCompareConfigChangeIsSingleRootCause(t *testing.T) {
	old := testManifest("a", "silc/milc")
	new := New("test", "b")
	spec := harness.Spec{Machine: config.Small(), Workload: "milc", InstrPerCore: 30000}
	res := &harness.Result{Spec: spec}
	res.Cycles = 999 // would mismatch too, but must be masked by the config row
	new.Add(FromResult("silc/milc", res))
	d, err := Compare(old, new, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.DeterministicFails != 1 {
		t.Fatalf("config change must report one root-cause failure, got %d: %+v",
			d.DeterministicFails, d.Table.Rows)
	}
	if d.Table.Rows[0][1] != "config.fingerprint" {
		t.Fatalf("want config.fingerprint row, got %+v", d.Table.Rows[0])
	}
}

func TestCompareHostNoiseBand(t *testing.T) {
	old := testManifest("a", "silc/milc")

	within := testManifest("b", "silc/milc")
	within.Entries[0].Host.WallSeconds *= 1.05
	d, err := Compare(old, within, DiffOptions{Noise: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() {
		t.Fatalf("+5%% wall inside ±10%% band must pass: %s", d.Summary())
	}

	slower := testManifest("c", "silc/milc")
	slower.Entries[0].Host.WallSeconds *= 1.5
	slower.Entries[0].Host.SimCyclesPerSec /= 1.5
	d, err = Compare(old, slower, DiffOptions{Noise: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() || d.HostBreaches != 2 {
		t.Fatalf("+50%% wall and -33%% throughput must breach twice: %s", d.Summary())
	}

	// Getting faster is never a regression.
	faster := testManifest("d", "silc/milc")
	faster.Entries[0].Host.WallSeconds /= 2
	faster.Entries[0].Host.SimCyclesPerSec *= 2
	d, err = Compare(old, faster, DiffOptions{Noise: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() {
		t.Fatalf("a faster run must pass: %s", d.Summary())
	}

	// Noise 0 skips host comparison entirely (cross-machine diffs).
	d, err = Compare(old, slower, DiffOptions{Noise: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() || d.HostBreaches != 0 {
		t.Fatalf("noise 0 must skip host metrics: %s", d.Summary())
	}
}

// TestCompareSpeedAllocBands pins the direction-aware perf gates: SpeedNoise
// bounds how much slower sim_cycles_per_sec may get, AllocNoise bounds how
// much alloc_objects/alloc_bytes may grow, and each works with Noise 0 (the
// cross-machine setting where wall-clock sanity checks are meaningless).
func TestCompareSpeedAllocBands(t *testing.T) {
	base := func() *Manifest {
		m := testManifest("a", "silc/milc")
		m.Entries[0].Host.AllocObjects = 10_000
		m.Entries[0].Host.AllocBytes = 1 << 20
		return m
	}
	old := base()

	// 40% slower: inside a ±60% speed band, outside ±10%.
	slower := base()
	slower.Entries[0].Host.SimCyclesPerSec *= 0.6
	d, err := Compare(old, slower, DiffOptions{Noise: 0, SpeedNoise: 0.60})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() {
		t.Fatalf("-40%% speed inside ±60%% band must pass: %s", d.Summary())
	}
	d, err = Compare(old, slower, DiffOptions{Noise: 0, SpeedNoise: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() || d.HostBreaches != 1 {
		t.Fatalf("-40%% speed outside ±10%% band must breach once: %s", d.Summary())
	}

	// Allocating double breaches a tight alloc band (objects and bytes),
	// even with Noise and SpeedNoise unset.
	leaky := base()
	leaky.Entries[0].Host.AllocObjects *= 2
	leaky.Entries[0].Host.AllocBytes *= 2
	d, err = Compare(old, leaky, DiffOptions{Noise: 0, AllocNoise: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() || d.HostBreaches != 2 {
		t.Fatalf("2x allocs outside ±25%% band must breach twice: %s", d.Summary())
	}

	// Getting faster and leaner is never a regression, however tight the
	// bands.
	better := base()
	better.Entries[0].Host.SimCyclesPerSec *= 4
	better.Entries[0].Host.AllocObjects /= 4
	better.Entries[0].Host.AllocBytes /= 4
	d, err = Compare(old, better, DiffOptions{Noise: 0, SpeedNoise: 0.01, AllocNoise: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() {
		t.Fatalf("faster+leaner must pass any band: %s", d.Summary())
	}

	// With no per-metric override, SpeedNoise/AllocNoise fall back to Noise.
	d, err = Compare(old, leaky, DiffOptions{Noise: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() {
		t.Fatalf("alloc growth must fall back to the Noise band: %s", d.Summary())
	}
}

func TestCompareEntryCoverage(t *testing.T) {
	old := testManifest("a", "silc/milc", "silc/mcf")
	short := testManifest("b", "silc/milc")

	d, err := Compare(old, short, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() {
		t.Fatal("missing entry must fail without Subset")
	}
	d, err = Compare(old, short, DiffOptions{Subset: true})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() || len(d.Uncovered) != 1 || d.Uncovered[0] != "silc/mcf" {
		t.Fatalf("subset mode must tolerate missing entries: %s %v", d.Summary(), d.Uncovered)
	}

	// A brand-new entry always fails: the baseline must be refreshed
	// deliberately, even in subset mode.
	grown := testManifest("c", "silc/milc", "pom/milc")
	d, err = Compare(testManifest("a", "silc/milc"), grown, DiffOptions{Subset: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.OK() {
		t.Fatal("new entry without baseline must fail")
	}
}

// TestRealRunManifestDeterminism runs the same small simulation twice and
// asserts the deterministic sections encode byte-identically — the property
// the whole regression watchdog rests on.
func TestRealRunManifestDeterminism(t *testing.T) {
	spec := harness.Spec{
		Machine:           config.Small(),
		Workload:          "milc",
		InstrPerCore:      20000,
		ScaleInstrByClass: true,
		FootScaleNum:      1,
		FootScaleDen:      8,
	}
	run := func() Entry {
		res, err := harness.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.AuditErr != nil || res.ConservationErr != nil {
			t.Fatal(res.AuditErr, res.ConservationErr)
		}
		if res.WallSeconds <= 0 || res.SimCyclesPerSec <= 0 {
			t.Fatalf("host metrics not stamped: wall=%v cps=%v", res.WallSeconds, res.SimCyclesPerSec)
		}
		return FromResult("silc/milc", res)
	}
	a, b := run(), run()
	det := func(e Entry) []byte {
		e.Host = Host{}
		enc, err := Canonical(e)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	if !bytes.Equal(det(a), det(b)) {
		t.Fatalf("deterministic sections differ across identical runs:\n%s\nvs\n%s", det(a), det(b))
	}
	if a.Sim.Latency == nil || a.Sim.Attribution == nil {
		t.Fatal("real run must populate latency and attribution summaries")
	}
	d, err := Compare(&Manifest{Schema: Schema, Entries: []Entry{a}},
		&Manifest{Schema: Schema, Entries: []Entry{b}}, DiffOptions{Noise: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !d.OK() {
		t.Fatalf("identical runs must diff clean: %s\n%s", d.Summary(), d.Table)
	}
}

// TestExemplarsOnOffManifestByteInert pins the exemplar recorder's
// inertness at the manifest level: the same cell run with the recorder on
// and off must produce byte-identical deterministic sections once the
// exemplars leaf itself is set aside. Any counter the recorder perturbed
// would surface here.
func TestExemplarsOnOffManifestByteInert(t *testing.T) {
	spec := harness.Spec{
		Machine:           config.Small(),
		Workload:          "milc",
		InstrPerCore:      20000,
		ScaleInstrByClass: true,
		FootScaleNum:      1,
		FootScaleDen:      8,
	}
	run := func(disabled bool) Entry {
		s := spec
		s.Exemplars = &exemplar.Config{Disabled: disabled}
		res, err := harness.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		return FromResult("silc/milc", res)
	}
	on, off := run(false), run(true)
	if len(on.Sim.Exemplars) == 0 {
		t.Fatal("recorder-on manifest carries no exemplar summaries")
	}
	if off.Sim.Exemplars != nil {
		t.Fatal("recorder-off manifest carries exemplar summaries")
	}
	det := func(e Entry) []byte {
		e.Host = Host{}
		e.Sim.Exemplars = nil
		enc, err := Canonical(e)
		if err != nil {
			t.Fatal(err)
		}
		return enc
	}
	a, b := det(on), det(off)
	if !bytes.Equal(a, b) {
		t.Fatalf("recorder on/off manifests differ outside the exemplars leaf:\n%s\nvs\n%s", a, b)
	}
	// The summary leaf itself is sim-exact: worst latency per path matches
	// the latency histogram's exact max.
	maxByPath := map[string]uint64{}
	for _, l := range on.Sim.Latency {
		maxByPath[l.Path] = l.Max
	}
	for _, s := range on.Sim.Exemplars {
		if s.Count == 0 || s.WorstLatency != maxByPath[s.Path] {
			t.Fatalf("exemplar summary %+v disagrees with histogram max %d", s, maxByPath[s.Path])
		}
	}
}
