package mem

// fanout tees every observer event to multiple Observers in attach order,
// so independent consumers (the shadow integrity checker, the telemetry
// movement tracer) compose instead of fighting over the single Obs slot.
// It always implements SchemeObserver, forwarding scheme-level events only
// to members that handle them.
type fanout struct {
	obs []Observer
}

func (f *fanout) Demand(pa uint64, loc Location, write bool) {
	for _, o := range f.obs {
		o.Demand(pa, loc, write)
	}
}

func (f *fanout) Capture(loc Location) {
	for _, o := range f.obs {
		o.Capture(loc)
	}
}

func (f *fanout) Deliver(src, dst Location) {
	for _, o := range f.obs {
		o.Deliver(src, dst)
	}
}

func (f *fanout) Relocate(src, dst Location) {
	for _, o := range f.obs {
		o.Relocate(src, dst)
	}
}

func (f *fanout) Swap(a, b Location) {
	for _, o := range f.obs {
		if so, ok := o.(SchemeObserver); ok {
			so.Swap(a, b)
		}
	}
}

func (f *fanout) Lock(frame uint64, home bool) {
	for _, o := range f.obs {
		if so, ok := o.(SchemeObserver); ok {
			so.Lock(frame, home)
		}
	}
}

func (f *fanout) Unlock(frame uint64) {
	for _, o := range f.obs {
		if so, ok := o.(SchemeObserver); ok {
			so.Unlock(frame)
		}
	}
}

// AttachObserver adds o to the System's observer chain. The first attach
// installs o directly; later attaches tee events to every observer in
// attach order. All observers see the identical event stream.
func (s *System) AttachObserver(o Observer) {
	switch cur := s.Obs.(type) {
	case nil:
		s.Obs = o
	case *fanout:
		cur.obs = append(cur.obs, o)
	default:
		s.Obs = &fanout{obs: []Observer{cur, o}}
	}
}
