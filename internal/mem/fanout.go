package mem

import "silcfm/internal/stats"

// fanout tees every observer event to multiple Observers in attach order,
// so independent consumers (the shadow integrity checker, the telemetry
// movement tracer, the hotness profiler) compose instead of fighting over
// the single Obs slot. It always implements SchemeObserver and
// DemandObserver; which members handle those optional events is resolved
// once at attach time into typed slices, so the per-event fanout is a plain
// slice walk with no dynamic type assertions.
type fanout struct {
	obs    []Observer
	scheme []SchemeObserver      // members implementing SchemeObserver, attach order
	demand []DemandObserver      // members implementing DemandObserver, attach order
	issue  []DemandIssueObserver // members implementing DemandIssueObserver, attach order
}

// add appends o and updates the typed views.
func (f *fanout) add(o Observer) {
	f.obs = append(f.obs, o)
	if so, ok := o.(SchemeObserver); ok {
		f.scheme = append(f.scheme, so)
	}
	if do, ok := o.(DemandObserver); ok {
		f.demand = append(f.demand, do)
	}
	if io, ok := o.(DemandIssueObserver); ok {
		f.issue = append(f.issue, io)
	}
}

func (f *fanout) Demand(pa uint64, loc Location, write bool) {
	for _, o := range f.obs {
		o.Demand(pa, loc, write)
	}
}

func (f *fanout) Capture(loc Location) {
	for _, o := range f.obs {
		o.Capture(loc)
	}
}

func (f *fanout) Deliver(src, dst Location) {
	for _, o := range f.obs {
		o.Deliver(src, dst)
	}
}

func (f *fanout) Relocate(src, dst Location) {
	for _, o := range f.obs {
		o.Relocate(src, dst)
	}
}

func (f *fanout) Swap(a, b Location) {
	for _, so := range f.scheme {
		so.Swap(a, b)
	}
}

func (f *fanout) Lock(frame, block uint64, home bool) {
	for _, so := range f.scheme {
		so.Lock(frame, block, home)
	}
}

func (f *fanout) Unlock(frame, block uint64) {
	for _, so := range f.scheme {
		so.Unlock(frame, block)
	}
}

func (f *fanout) DemandComplete(a *Access, path stats.DemandPath, lat uint64) {
	for _, do := range f.demand {
		do.DemandComplete(a, path, lat)
	}
}

func (f *fanout) DemandIssue(a *Access, path stats.DemandPath, loc Location) {
	for _, io := range f.issue {
		io.DemandIssue(a, path, loc)
	}
}

// AttachObserver adds o to the System's observer chain. The first attach
// installs o directly; later attaches tee events to every observer in
// attach order.
//
// Ordering guarantee: for every event, observers are notified
// first-attached-first, synchronously, before the emitting operation
// continues. Consumers may rely on this to compose — e.g. the shadow
// integrity checker is attached before telemetry, so it has validated each
// movement before the tracer or profiler consumes it. All observers see
// the identical event stream; optional SchemeObserver / DemandObserver
// events go only to members implementing those interfaces, still in attach
// order.
func (s *System) AttachObserver(o Observer) {
	switch cur := s.Obs.(type) {
	case nil:
		s.Obs = o
	case *fanout:
		cur.add(o)
	default:
		f := &fanout{}
		f.add(cur)
		f.add(o)
		s.Obs = f
	}
	// Resolve the optional-interface views once per attach; the per-event
	// NoteSwap/NoteLock/NoteUnlock and demand-completion paths then do a nil
	// check instead of a dynamic type assertion.
	s.obsScheme, _ = s.Obs.(SchemeObserver)
	s.obsDemand, _ = s.Obs.(DemandObserver)
	s.obsIssue, _ = s.Obs.(DemandIssueObserver)
}
