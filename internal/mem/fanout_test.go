package mem

import (
	"fmt"
	"reflect"
	"testing"

	"silcfm/internal/stats"
)

// fanObs records the plain Observer stream as strings.
type fanObs struct {
	events []string
}

func (r *fanObs) Demand(pa uint64, loc Location, write bool) {
	r.events = append(r.events, fmt.Sprintf("demand %x %v %v", pa, loc, write))
}
func (r *fanObs) Capture(loc Location) {
	r.events = append(r.events, fmt.Sprintf("capture %v", loc))
}
func (r *fanObs) Deliver(src, dst Location) {
	r.events = append(r.events, fmt.Sprintf("deliver %v %v", src, dst))
}
func (r *fanObs) Relocate(src, dst Location) {
	r.events = append(r.events, fmt.Sprintf("relocate %v %v", src, dst))
}

// fanSchemeObs additionally records the SchemeObserver extension.
type fanSchemeObs struct {
	fanObs
}

func (r *fanSchemeObs) Swap(a, b Location) {
	r.events = append(r.events, fmt.Sprintf("swap %v %v", a, b))
}
func (r *fanSchemeObs) Lock(frame uint64, home bool) {
	r.events = append(r.events, fmt.Sprintf("lock %d %v", frame, home))
}
func (r *fanSchemeObs) Unlock(frame uint64) {
	r.events = append(r.events, fmt.Sprintf("unlock %d", frame))
}

func emitAll(s *System) {
	nm := Location{Level: stats.NM, DevAddr: 0}
	fm := Location{Level: stats.FM, DevAddr: 64}
	s.NoteDemand(0x40, nm, false)
	s.NoteCapture(fm)
	s.NoteDeliver(fm, nm)
	s.NoteRelocate(nm, fm)
	s.NoteSwap(nm, fm)
	s.NoteLock(3, true)
	s.NoteUnlock(3)
}

func TestAttachObserverSingle(t *testing.T) {
	_, s := newSys()
	a := &fanObs{}
	s.AttachObserver(a)
	if s.Obs != Observer(a) {
		t.Fatal("single observer should attach directly, without a fanout")
	}
}

func TestFanoutOrderingAndSchemeFiltering(t *testing.T) {
	_, s := newSys()
	plain := &fanObs{}
	scheme := &fanSchemeObs{}
	s.AttachObserver(plain)
	s.AttachObserver(scheme)

	emitAll(s)

	wantPlain := []string{
		"demand 40 {NM 0} false",
		"capture {FM 64}",
		"deliver {FM 64} {NM 0}",
		"relocate {NM 0} {FM 64}",
	}
	wantScheme := append(append([]string{}, wantPlain...),
		"swap {NM 0} {FM 64}",
		"lock 3 true",
		"unlock 3",
	)
	if !reflect.DeepEqual(plain.events, wantPlain) {
		t.Errorf("plain observer events:\n got %q\nwant %q", plain.events, wantPlain)
	}
	if !reflect.DeepEqual(scheme.events, wantScheme) {
		t.Errorf("scheme observer events:\n got %q\nwant %q", scheme.events, wantScheme)
	}
}

func TestFanoutBothSeeIdenticalStreams(t *testing.T) {
	_, s := newSys()
	a := &fanSchemeObs{}
	b := &fanSchemeObs{}
	s.AttachObserver(a)
	s.AttachObserver(b)
	// A third member joins an existing fanout rather than re-wrapping.
	c := &fanSchemeObs{}
	s.AttachObserver(c)

	emitAll(s)
	emitAll(s)

	if len(a.events) == 0 {
		t.Fatal("no events recorded")
	}
	if !reflect.DeepEqual(a.events, b.events) || !reflect.DeepEqual(a.events, c.events) {
		t.Errorf("fanout members diverged:\n a %q\n b %q\n c %q", a.events, b.events, c.events)
	}
}

func TestFanoutViaCompoundOps(t *testing.T) {
	eng, s := newSys()
	a := &fanSchemeObs{}
	b := &fanSchemeObs{}
	s.AttachObserver(a)
	s.AttachObserver(b)

	nm := Location{Level: stats.NM, DevAddr: 0}
	fm := Location{Level: stats.FM, DevAddr: 128}
	s.ExchangeSubblocks(nm, fm, nil)
	s.SwapDemand(0x80, nm, fm, false, nil)
	eng.Run()

	if len(a.events) == 0 {
		t.Fatal("compound ops emitted no events")
	}
	if !reflect.DeepEqual(a.events, b.events) {
		t.Errorf("fanout members diverged:\n a %q\n b %q", a.events, b.events)
	}
}
