package mem

import (
	"fmt"
	"reflect"
	"testing"

	"silcfm/internal/stats"
)

// fanObs records the plain Observer stream as strings.
type fanObs struct {
	events []string
}

func (r *fanObs) Demand(pa uint64, loc Location, write bool) {
	r.events = append(r.events, fmt.Sprintf("demand %x %v %v", pa, loc, write))
}
func (r *fanObs) Capture(loc Location) {
	r.events = append(r.events, fmt.Sprintf("capture %v", loc))
}
func (r *fanObs) Deliver(src, dst Location) {
	r.events = append(r.events, fmt.Sprintf("deliver %v %v", src, dst))
}
func (r *fanObs) Relocate(src, dst Location) {
	r.events = append(r.events, fmt.Sprintf("relocate %v %v", src, dst))
}

// fanSchemeObs additionally records the SchemeObserver extension.
type fanSchemeObs struct {
	fanObs
}

func (r *fanSchemeObs) Swap(a, b Location) {
	r.events = append(r.events, fmt.Sprintf("swap %v %v", a, b))
}
func (r *fanSchemeObs) Lock(frame, block uint64, home bool) {
	r.events = append(r.events, fmt.Sprintf("lock %d %d %v", frame, block, home))
}
func (r *fanSchemeObs) Unlock(frame, block uint64) {
	r.events = append(r.events, fmt.Sprintf("unlock %d %d", frame, block))
}

func emitAll(s *System) {
	nm := Location{Level: stats.NM, DevAddr: 0}
	fm := Location{Level: stats.FM, DevAddr: 64}
	s.NoteDemand(0x40, nm, false)
	s.NoteCapture(fm)
	s.NoteDeliver(fm, nm)
	s.NoteRelocate(nm, fm)
	s.NoteSwap(nm, fm)
	s.NoteLock(3, 7, true)
	s.NoteUnlock(3, 7)
}

func TestAttachObserverSingle(t *testing.T) {
	_, s := newSys()
	a := &fanObs{}
	s.AttachObserver(a)
	if s.Obs != Observer(a) {
		t.Fatal("single observer should attach directly, without a fanout")
	}
}

func TestFanoutOrderingAndSchemeFiltering(t *testing.T) {
	_, s := newSys()
	plain := &fanObs{}
	scheme := &fanSchemeObs{}
	s.AttachObserver(plain)
	s.AttachObserver(scheme)

	emitAll(s)

	wantPlain := []string{
		"demand 40 {NM 0} false",
		"capture {FM 64}",
		"deliver {FM 64} {NM 0}",
		"relocate {NM 0} {FM 64}",
	}
	wantScheme := append(append([]string{}, wantPlain...),
		"swap {NM 0} {FM 64}",
		"lock 3 7 true",
		"unlock 3 7",
	)
	if !reflect.DeepEqual(plain.events, wantPlain) {
		t.Errorf("plain observer events:\n got %q\nwant %q", plain.events, wantPlain)
	}
	if !reflect.DeepEqual(scheme.events, wantScheme) {
		t.Errorf("scheme observer events:\n got %q\nwant %q", scheme.events, wantScheme)
	}
}

func TestFanoutBothSeeIdenticalStreams(t *testing.T) {
	_, s := newSys()
	a := &fanSchemeObs{}
	b := &fanSchemeObs{}
	s.AttachObserver(a)
	s.AttachObserver(b)
	// A third member joins an existing fanout rather than re-wrapping.
	c := &fanSchemeObs{}
	s.AttachObserver(c)

	emitAll(s)
	emitAll(s)

	if len(a.events) == 0 {
		t.Fatal("no events recorded")
	}
	if !reflect.DeepEqual(a.events, b.events) || !reflect.DeepEqual(a.events, c.events) {
		t.Errorf("fanout members diverged:\n a %q\n b %q\n c %q", a.events, b.events, c.events)
	}
}

// taggedObs appends "<tag>:<event>" to a log shared across observers, so
// tests can assert the relative notification order between members.
type taggedObs struct {
	tag string
	log *[]string
}

func (o *taggedObs) note(ev string) { *o.log = append(*o.log, o.tag+":"+ev) }

func (o *taggedObs) Demand(pa uint64, loc Location, write bool) { o.note("demand") }
func (o *taggedObs) Capture(loc Location)                       { o.note("capture") }
func (o *taggedObs) Deliver(src, dst Location)                  { o.note("deliver") }
func (o *taggedObs) Relocate(src, dst Location)                 { o.note("relocate") }
func (o *taggedObs) Swap(a, b Location)                         { o.note("swap") }
func (o *taggedObs) Lock(frame, block uint64, home bool)        { o.note("lock") }
func (o *taggedObs) Unlock(frame, block uint64)                 { o.note("unlock") }
func (o *taggedObs) DemandComplete(a *Access, path stats.DemandPath, lat uint64) {
	o.note("complete")
}

// TestFanoutFirstAttachedFirstNotified pins the documented AttachObserver
// ordering guarantee: for every event, members are notified in attach
// order before the emitting operation continues.
func TestFanoutFirstAttachedFirstNotified(t *testing.T) {
	_, s := newSys()
	var log []string
	s.AttachObserver(&taggedObs{tag: "first", log: &log})
	s.AttachObserver(&taggedObs{tag: "second", log: &log})
	s.AttachObserver(&taggedObs{tag: "third", log: &log})

	emitAll(s)

	events := []string{"demand", "capture", "deliver", "relocate", "swap", "lock", "unlock"}
	var want []string
	for _, ev := range events {
		for _, tag := range []string{"first", "second", "third"} {
			want = append(want, tag+":"+ev)
		}
	}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("notification order:\n got %q\nwant %q", log, want)
	}
}

// TestFanoutForwardsDemandComplete checks that demand completions reach
// every DemandObserver member in attach order, with the span attribution
// already final (residual folded into SpanOther).
func TestFanoutForwardsDemandComplete(t *testing.T) {
	eng, s := newSys()
	var log []string
	s.AttachObserver(&taggedObs{tag: "first", log: &log})
	s.AttachObserver(&fanObs{}) // plain member: must be skipped, not crash
	s.AttachObserver(&taggedObs{tag: "second", log: &log})

	var spanSum, total uint64
	a := &Access{PAddr: 0x40, Start: eng.Now(), Done: func() {}}
	s.ServiceAccess(a, Location{Level: stats.NM, DevAddr: 0x40}, stats.PathNMHit)
	eng.Run()

	want := []string{"first:demand", "second:demand", "first:complete", "second:complete"}
	if !reflect.DeepEqual(log, want) {
		t.Errorf("demand-complete fanout:\n got %q\nwant %q", log, want)
	}
	total = eng.Now() - a.Start
	for _, v := range a.Spans() {
		spanSum += v
	}
	if spanSum != total {
		t.Errorf("span sum %d != end-to-end latency %d", spanSum, total)
	}
}

func TestFanoutViaCompoundOps(t *testing.T) {
	eng, s := newSys()
	a := &fanSchemeObs{}
	b := &fanSchemeObs{}
	s.AttachObserver(a)
	s.AttachObserver(b)

	nm := Location{Level: stats.NM, DevAddr: 0}
	fm := Location{Level: stats.FM, DevAddr: 128}
	s.ExchangeSubblocks(nm, fm, nil)
	s.SwapDemand(0x80, nm, fm, false, nil)
	eng.Run()

	if len(a.events) == 0 {
		t.Fatal("compound ops emitted no events")
	}
	if !reflect.DeepEqual(a.events, b.events) {
		t.Errorf("fanout members diverged:\n a %q\n b %q", a.events, b.events)
	}
}
