// Package mem defines the contract between the CPU side and the flat-memory
// organization schemes, wires the two DRAM devices together, and provides
// the data-integrity audit that every swapping scheme must pass: the
// mapping from flat physical subblocks to device locations must remain a
// bijection (flat memory has exactly one copy of every byte — §III-A, "data
// in NM is the only copy of the data in the physical address space").
package mem

import (
	"fmt"

	"silcfm/internal/config"
	"silcfm/internal/dram"
	"silcfm/internal/memunits"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
)

// Access is one LLC miss (or LLC writeback) entering the memory system.
type Access struct {
	Core  int
	PC    uint64
	PAddr uint64 // flat physical address; NM occupies [0, NMCapacity)
	Write bool
	// Start is the cycle at which the access entered the memory system
	// (set by the submitting core); per-path latency telemetry measures
	// completion relative to it, so serialized metadata fetches paid
	// before dispatch are included.
	Start uint64
	// Done is called when the demand data is available (reads) or accepted
	// (writes). May be nil.
	Done func()

	// spans accumulates this access's latency attribution (stats.Span):
	// devices and scheme controllers stamp named components as the access
	// moves through the system, and the completion callback from
	// DemandDone folds them into System.Attr with the residual in
	// stats.SpanOther.
	spans [stats.NumSpans]uint64

	// sys/path record the DemandDone classification so the prebound
	// completion callback below can fold the access into the accounting.
	sys  *System
	path stats.DemandPath

	// traceFn/completeFn are this access's callbacks (SpanTrace and the
	// DemandDone completion), bound lazily on first use and then reused —
	// a pooled access recycled through Reset never allocates them again.
	traceFn    func(queue, service uint64)
	completeFn func()
}

// Reset prepares a pooled Access for reuse: it reinitializes the public
// fields and clears the accumulated spans while preserving the lazily bound
// callbacks, which is what makes recycling allocation-free. Only legal once
// the previous use has fully completed.
func (a *Access) Reset(core int, pc, paddr uint64, write bool, start uint64, done func()) {
	a.Core, a.PC, a.PAddr, a.Write, a.Start, a.Done = core, pc, paddr, write, start, done
	a.sys = nil
	a.path = 0
	a.spans = [stats.NumSpans]uint64{}
}

// AddSpan charges cycles of this access's latency to span s.
func (a *Access) AddSpan(s stats.Span, cycles uint64) {
	if s >= 0 && s < stats.NumSpans {
		a.spans[s] += cycles
	}
}

// Spans returns the per-span attribution accumulated so far.
func (a *Access) Spans() [stats.NumSpans]uint64 { return a.spans }

// SpanTrace returns a dram.Request Trace callback that charges the demand
// device request's queue-wait and service time to this access. The callback
// is bound once per Access and reused across calls (and across pooled
// reuses via Reset).
func (a *Access) SpanTrace() func(queue, service uint64) {
	if a.traceFn == nil {
		a.traceFn = func(queue, service uint64) {
			a.spans[stats.SpanQueue] += queue
			a.spans[stats.SpanService] += service
		}
	}
	return a.traceFn
}

// Location is a device-level position of one subblock.
type Location struct {
	Level   stats.MemLevel
	DevAddr uint64 // subblock-aligned device-local address
}

// Controller is a flat-memory organization scheme.
type Controller interface {
	Name() string
	// Handle services one LLC miss.
	Handle(a *Access)
	// Locate reports where the subblock containing flat address pa
	// currently resides. Pure; used by audits and tests.
	Locate(pa uint64) Location
}

// Observer receives the semantic data-movement events of a System. Events
// are emitted eagerly at submission time, in dataflow order: a location's
// contents are always captured (read out) before anything overwrites them,
// and every capture is delivered exactly once. The shadow checker
// (internal/shadow) implements this to track where every flat subblock's
// data lives and to catch ordering/data-loss bugs that the end-of-run
// mapping audit cannot see.
type Observer interface {
	// Demand: flat address pa's data is accessed at loc. Reads return the
	// data stored there; writes deposit pa's new data there.
	Demand(pa uint64, loc Location, write bool)
	// Capture: the contents of loc are read out and held by the controller
	// for a later Deliver.
	Capture(loc Location)
	// Deliver: the oldest undelivered Capture of src lands at dst.
	Deliver(src, dst Location)
	// Relocate: dst takes over src's contents via a one-way copy; dst's
	// previous contents are dropped (legal only if they were never demand
	// data — e.g. HMA migrating a block into a never-used NM frame).
	Relocate(src, dst Location)
}

// SchemeObserver is an optional Observer extension for scheme-level
// semantic events the pure data-movement stream cannot express. Observers
// that only verify dataflow (the shadow checker) need not implement it;
// the telemetry tracer does.
type SchemeObserver interface {
	// Swap: an exchange between a and b was initiated (subblock swap or
	// bulk block DMA); the Capture/Deliver pairs describing its dataflow
	// follow separately.
	Swap(a, b Location)
	// Lock: NM frame was locked over the flat 2 KB block with index
	// block; home reports whether it pins the frame's own home block
	// (true) or an interleaved FM block (false).
	Lock(frame, block uint64, home bool)
	// Unlock: NM frame rejoined normal swapping; block is the flat block
	// index it had pinned.
	Unlock(frame, block uint64)
}

// DemandObserver is an optional Observer extension receiving demand
// completions with their path classification and end-to-end latency. The
// hotness profiler implements it; the callback runs after the access's
// span attribution is final, so a.Spans() is complete.
type DemandObserver interface {
	DemandComplete(a *Access, path stats.DemandPath, lat uint64)
}

// DemandIssueObserver is an optional Observer extension receiving demand
// accesses at issue time — when ServiceAccess/SwapAccess dispatches them to
// the devices, before any (possibly synchronous) completion fires. loc is
// the device location the demand targets (the src side for swaps). Schemes
// that classify completions directly through DemandDone (CAMEO's combined
// remap-read paths) bypass this hook, so issue-side context is best-effort:
// a DemandComplete may arrive for an access that never saw DemandIssue.
type DemandIssueObserver interface {
	DemandIssue(a *Access, path stats.DemandPath, loc Location)
}

// LockProbe is an optional Controller extension exposing the instantaneous
// lock state of the frame backing one flat address (SILC-FM's block
// locking). Pure and O(1); the exemplar recorder samples it at demand issue
// and completion.
type LockProbe interface {
	// LockState reports whether the NM frame currently holding pa's block
	// is locked, and if so whether it pins its own home block (home=true)
	// or an interleaved FM block. (false, false) when pa's block is not
	// NM-resident or the scheme has no locking.
	LockState(pa uint64) (locked, home bool)
}

// Gauge is one named instantaneous scheme measurement, sampled by the
// telemetry epoch sampler alongside the stats.Memory counter deltas.
type Gauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// GaugeProvider is implemented by controllers that expose internal state
// (locked frames, governor state, table occupancies) as gauges.
type GaugeProvider interface {
	Gauges() []Gauge
}

// System bundles the devices, clock and counters a controller needs.
type System struct {
	Eng   *sim.Engine
	NM    *dram.Device
	FM    *dram.Device
	NMCap uint64
	FMCap uint64
	Stats *stats.Memory

	// Lat accumulates per-path demand-completion latencies (see
	// stats.DemandPath). Always allocated by NewSystem; recording is a
	// histogram increment per access and never schedules events, so it
	// cannot perturb timing.
	Lat *stats.PathLatencies

	// Attr accumulates the per-path span decomposition of the same
	// completions (see stats.Span). Like Lat it is always allocated and
	// always recording; stats.CheckConservation proves its sums equal
	// Lat's end-to-end totals.
	Attr *stats.Attribution

	// inflight counts demand accesses whose ServicedNM/FM counter has
	// ticked but whose completion callback has not yet fired; the
	// conservation audit balances it against the histogram counts.
	inflight uint64

	// RideAlong counts bytes per level that were accounted in Stats.Bytes
	// but rode an existing device request instead of a submission of their
	// own (see AddBytesRideAlong); the conservation audit subtracts them
	// when balancing against device counters.
	RideAlong [2]uint64

	// Obs, when non-nil, receives semantic data-movement events from the
	// compound operations below (and Note* calls from schemes with custom
	// movement paths). Set it through AttachObserver, which also refreshes
	// the cached optional-interface views below; assigning the field
	// directly leaves the SchemeObserver/DemandObserver event streams
	// unwired.
	Obs Observer

	// obsScheme/obsDemand/obsIssue are Obs's optional-interface views,
	// resolved once in AttachObserver so per-event dispatch skips the type
	// assertion.
	obsScheme SchemeObserver
	obsDemand DemandObserver
	obsIssue  DemandIssueObserver

	// FaultInjectSwapOrder reintroduces the pre-fix SwapDemand write-path
	// ordering bug (demand write submitted before dst's old contents are
	// read out, destroying them). Test-only: proves the shadow checker
	// detects the hazard.
	FaultInjectSwapOrder bool

	// freeExch/freeSwap/freeRelay are free lists of pooled continuation
	// objects for the compound movement operations below, so steady-state
	// swaps and migrations schedule no closure allocations.
	freeExch  *exchOp
	freeSwap  *swapOp
	freeRelay *relayOp
}

// exchOp is the pooled continuation of one two-way exchange
// (ExchangeSubblocks / ExchangeBlocksDMA): both read-completion callbacks
// and the two-write join, method values bound once at pool-object creation.
type exchOp struct {
	s         *System
	a, b      Location
	n         uint64
	remaining int
	fin       func()

	readAFn, readBFn, joinFn func()

	next *exchOp
}

func (s *System) getExch(a, b Location, n uint64, fin func()) *exchOp {
	op := s.freeExch
	if op == nil {
		op = &exchOp{s: s}
		op.readAFn = op.readADone
		op.readBFn = op.readBDone
		op.joinFn = op.writeDone
	} else {
		s.freeExch = op.next
	}
	op.a, op.b, op.n, op.fin, op.remaining = a, b, n, fin, 2
	return op
}

func (op *exchOp) readADone() { op.s.Write(op.b, op.n, stats.Migration, op.joinFn) }
func (op *exchOp) readBDone() { op.s.Write(op.a, op.n, stats.Migration, op.joinFn) }

// writeDone joins the two migration writes; the second one recycles the op
// and then chains fin, exactly like the dram.Join(2, fin) it replaces.
func (op *exchOp) writeDone() {
	op.remaining--
	if op.remaining > 0 {
		return
	}
	s, fin := op.s, op.fin
	op.fin = nil
	op.next = s.freeExch
	s.freeExch = op
	if fin != nil {
		fin()
	}
}

// swapOp is the pooled continuation of one read-path SwapDemand: the demand
// read's completion (chain done, then push src's new data to dst) and the
// buffered migration read's completion (push dst's old data to src).
type swapOp struct {
	s        *System
	src, dst Location
	done     func()
	pending  int

	demandFn, migFn func()

	next *swapOp
}

func (s *System) getSwap(src, dst Location, done func()) *swapOp {
	op := s.freeSwap
	if op == nil {
		op = &swapOp{s: s}
		op.demandFn = op.demandDone
		op.migFn = op.migDone
	} else {
		s.freeSwap = op.next
	}
	op.src, op.dst, op.done, op.pending = src, dst, done, 2
	return op
}

func (op *swapOp) demandDone() {
	if op.done != nil {
		op.done()
	}
	op.s.Write(op.dst, memunits.SubblockSize, stats.Migration, nil)
	op.release()
}

func (op *swapOp) migDone() {
	op.s.Write(op.src, memunits.SubblockSize, stats.Migration, nil)
	op.release()
}

func (op *swapOp) release() {
	op.pending--
	if op.pending == 0 {
		op.done = nil
		op.next = op.s.freeSwap
		op.s.freeSwap = op
	}
}

// relayOp is the pooled continuation of a read-then-write copy: when the
// read completes, write n bytes to dst (migration class) with fin chained
// to the write. Used by the SwapDemand write path and RelocateBlockDMA.
type relayOp struct {
	s   *System
	dst Location
	n   uint64
	fin func()

	fn func()

	next *relayOp
}

func (s *System) getRelay(dst Location, n uint64, fin func()) *relayOp {
	op := s.freeRelay
	if op == nil {
		op = &relayOp{s: s}
		op.fn = op.run
	} else {
		s.freeRelay = op.next
	}
	op.dst, op.n, op.fin = dst, n, fin
	return op
}

func (op *relayOp) run() {
	s, dst, n, fin := op.s, op.dst, op.n, op.fin
	op.fin = nil
	op.next = s.freeRelay
	s.freeRelay = op
	s.Write(dst, n, stats.Migration, fin)
}

// NewSystem builds devices for machine m on engine eng. For the no-NM
// baseline the NM device is still constructed (idle) so accounting code is
// uniform.
func NewSystem(m config.Machine, eng *sim.Engine) *System {
	return &System{
		Eng:   eng,
		NM:    dram.New(m.NM, eng),
		FM:    dram.New(m.FM, eng),
		NMCap: m.NM.Capacity,
		FMCap: m.FM.Capacity,
		Stats: &stats.Memory{},
		Lat:   stats.NewPathLatencies(),
		Attr:  &stats.Attribution{},
	}
}

// InNM reports whether flat address pa lies in the near-memory range.
func (s *System) InNM(pa uint64) bool { return pa < s.NMCap }

// FMDev converts a flat far-memory address to a device-local address.
func (s *System) FMDev(pa uint64) uint64 { return pa - s.NMCap }

// HomeLocation returns where pa lives with no remapping at all.
func (s *System) HomeLocation(pa uint64) Location {
	if s.InNM(pa) {
		return Location{Level: stats.NM, DevAddr: pa}
	}
	return Location{Level: stats.FM, DevAddr: s.FMDev(pa)}
}

// Device returns the device backing a level.
func (s *System) Device(level stats.MemLevel) *dram.Device {
	if level == stats.NM {
		return s.NM
	}
	return s.FM
}

// NoteDemand reports a demand access to the observer, if any. Schemes with
// custom movement paths call this (and the other Note helpers) to describe
// their data flow; the compound System operations call them internally.
func (s *System) NoteDemand(pa uint64, loc Location, write bool) {
	if s.Obs != nil {
		s.Obs.Demand(pa, loc, write)
	}
}

// NoteCapture reports that loc's contents were read out for a later move.
func (s *System) NoteCapture(loc Location) {
	if s.Obs != nil {
		s.Obs.Capture(loc)
	}
}

// NoteDeliver reports that the oldest captured copy of src landed at dst.
func (s *System) NoteDeliver(src, dst Location) {
	if s.Obs != nil {
		s.Obs.Deliver(src, dst)
	}
}

// NoteRelocate reports a one-way copy of src's contents over dst.
func (s *System) NoteRelocate(src, dst Location) {
	if s.Obs != nil {
		s.Obs.Relocate(src, dst)
	}
}

// NoteSwap reports an initiated exchange to observers implementing
// SchemeObserver.
func (s *System) NoteSwap(a, b Location) {
	if so := s.obsScheme; so != nil {
		so.Swap(a, b)
	}
}

// NoteLock reports a frame lock over flat block index block to observers
// implementing SchemeObserver.
func (s *System) NoteLock(frame, block uint64, home bool) {
	if so := s.obsScheme; so != nil {
		so.Lock(frame, block, home)
	}
}

// NoteUnlock reports a frame unlock to observers implementing
// SchemeObserver; block is the flat block index the frame had pinned.
func (s *System) NoteUnlock(frame, block uint64) {
	if so := s.obsScheme; so != nil {
		so.Unlock(frame, block)
	}
}

// DemandDone classifies access a under path for the per-path latency and
// span-attribution accounting and returns the completion callback to use
// in its place: invoking it records now-Start under path, folds the
// access's spans (residual into stats.SpanOther) into Attr, notifies any
// DemandObserver, then chains to a.Done. Every callback returned here must
// be invoked exactly once; the conservation audit counts the callbacks
// still outstanding.
func (s *System) DemandDone(a *Access, path stats.DemandPath) func() {
	if s.Lat == nil {
		return a.Done
	}
	s.inflight++
	a.sys = s
	a.path = path
	if a.completeFn == nil {
		a.completeFn = a.complete
	}
	return a.completeFn
}

// complete is the DemandDone completion body, held as a prebound method
// value on the access so classification allocates nothing.
func (a *Access) complete() {
	s := a.sys
	total := s.Eng.Now() - a.Start
	var known uint64
	for sp := stats.Span(0); sp < stats.SpanOther; sp++ {
		known += a.spans[sp]
	}
	if known <= total {
		// The residual (any wait the instrumentation does not name)
		// lands in SpanOther so the span sum telescopes to the
		// end-to-end latency exactly. An overshoot is left unbalanced
		// for CheckConservation to flag instead of clamping it away.
		a.spans[stats.SpanOther] = total - known
	}
	s.Lat.Observe(a.path, total)
	if s.Attr != nil {
		s.Attr.Observe(a.path, &a.spans)
	}
	s.inflight--
	if do := s.obsDemand; do != nil {
		do.DemandComplete(a, a.path, total)
	}
	if a.Done != nil {
		a.Done()
	}
}

// InflightDemands reports demand accesses serviced but not yet completed.
func (s *System) InflightDemands() uint64 { return s.inflight }

// ServiceAccess is ServiceDemand over a full Access, recording the demand
// completion latency under path and attributing the device request's
// queue/service time to the access. Issue observers fire before the demand
// is dispatched (demand writes complete synchronously at submission, so
// this is the last point the access is reliably in flight).
func (s *System) ServiceAccess(a *Access, loc Location, path stats.DemandPath) {
	if io := s.obsIssue; io != nil {
		io.DemandIssue(a, path, loc)
	}
	s.serviceDemand(a.PAddr, loc, a.Write, a.SpanTrace(), s.DemandDone(a, path))
}

// SwapAccess is SwapDemand over a full Access, recording the demand
// completion latency under path and attributing the demand leg's
// queue/service time to the access. Issue observers see the src side (where
// the demand data currently resides) before dispatch.
func (s *System) SwapAccess(a *Access, src, dst Location, path stats.DemandPath) {
	if io := s.obsIssue; io != nil {
		io.DemandIssue(a, path, src)
	}
	s.swapDemand(a.PAddr, src, dst, a.Write, a.SpanTrace(), s.DemandDone(a, path))
}

// Read submits a read of n bytes at loc, accounted under class, invoking
// done at completion.
func (s *System) Read(loc Location, n uint64, class stats.TrafficClass, done func()) {
	s.readTraced(loc, n, class, nil, done)
}

// ReadDemand is Read with span attribution: the device charges a's
// queue-wait and service time (stats.SpanQueue / stats.SpanService).
func (s *System) ReadDemand(a *Access, loc Location, n uint64, class stats.TrafficClass, done func()) {
	s.readTraced(loc, n, class, a.SpanTrace(), done)
}

func (s *System) readTraced(loc Location, n uint64, class stats.TrafficClass, trace func(queue, service uint64), done func()) {
	s.Stats.AddBytes(loc.Level, class, n)
	s.Device(loc.Level).Submit(dram.Request{Addr: loc.DevAddr, Bytes: n, Trace: trace, Done: done})
}

// ReadMeta submits a read with an extended burst carrying meta additional
// metadata bytes (CAMEO's in-row remap entries).
func (s *System) ReadMeta(loc Location, n, meta uint64, class stats.TrafficClass, done func()) {
	s.readMetaTraced(loc, n, meta, class, nil, done)
}

// ReadMetaDemand is ReadMeta with span attribution for access a.
func (s *System) ReadMetaDemand(a *Access, loc Location, n, meta uint64, class stats.TrafficClass, done func()) {
	s.readMetaTraced(loc, n, meta, class, a.SpanTrace(), done)
}

func (s *System) readMetaTraced(loc Location, n, meta uint64, class stats.TrafficClass, trace func(queue, service uint64), done func()) {
	s.Stats.AddBytes(loc.Level, class, n)
	s.Stats.AddBytes(loc.Level, stats.Metadata, meta)
	s.Device(loc.Level).Submit(dram.Request{Addr: loc.DevAddr, Bytes: n, MetaBytes: meta, Trace: trace, Done: done})
}

// ReadBackground submits a background-priority read (bulk migration DMA,
// verification traffic): it never delays demand reads.
func (s *System) ReadBackground(loc Location, n uint64, class stats.TrafficClass, done func()) {
	s.Stats.AddBytes(loc.Level, class, n)
	s.Device(loc.Level).Submit(dram.Request{Addr: loc.DevAddr, Bytes: n, Background: true, Done: done})
}

// Write submits a write of n bytes at loc accounted under class. done may
// be nil.
func (s *System) Write(loc Location, n uint64, class stats.TrafficClass, done func()) {
	s.Stats.AddBytes(loc.Level, class, n)
	s.Device(loc.Level).Submit(dram.Request{Addr: loc.DevAddr, Bytes: n, Write: true, Done: done})
}

// AddBytesRideAlong accounts traffic that rides an existing device request
// instead of a submission of its own (CAMEO's remap-entry update folded
// into an NM demand write). It keeps Stats.Bytes complete while telling
// the conservation audit not to expect matching device-side bytes.
func (s *System) AddBytesRideAlong(level stats.MemLevel, class stats.TrafficClass, n uint64) {
	s.Stats.AddBytes(level, class, n)
	s.RideAlong[level] += n
}

// ServiceDemand accounts a demand access of flat address pa satisfied at
// loc and performs it: reads invoke done at data return; writes complete
// immediately after submission (write-release semantics at the memory
// controller) while still occupying bandwidth.
func (s *System) ServiceDemand(pa uint64, loc Location, write bool, done func()) {
	s.serviceDemand(pa, loc, write, nil, done)
}

func (s *System) serviceDemand(pa uint64, loc Location, write bool, trace func(queue, service uint64), done func()) {
	if loc.Level == stats.NM {
		s.Stats.ServicedNM++
	} else {
		s.Stats.ServicedFM++
	}
	s.NoteDemand(pa, loc, write)
	if write {
		// The demand write completes at submission, before the device
		// issues it, so there is no device time to attribute: the access's
		// end-to-end latency is exactly its pre-submission spans.
		s.Write(loc, memunits.SubblockSize, stats.Demand, nil)
		if done != nil {
			done()
		}
		return
	}
	s.readTraced(loc, memunits.SubblockSize, stats.Demand, trace, done)
}

// ExchangeSubblocks models a hardware swap of one subblock between two
// locations: both sides are read and rewritten at the opposite location.
// The demand side is NOT included; callers account it separately. fin (may
// be nil) runs when both writes complete.
func (s *System) ExchangeSubblocks(a, b Location, fin func()) {
	s.NoteSwap(a, b)
	s.NoteCapture(a)
	s.NoteCapture(b)
	s.NoteDeliver(a, b)
	s.NoteDeliver(b, a)
	op := s.getExch(a, b, memunits.SubblockSize, fin)
	s.Read(a, memunits.SubblockSize, stats.Migration, op.readAFn)
	s.Read(b, memunits.SubblockSize, stats.Migration, op.readBFn)
}

// SwapDemand services a demand access to flat address pa whose subblock
// currently resides at src while exchanging it with dst's contents — the
// interleaved swap of SILC-FM Figure 2, with the demand transfer doubling
// as one of the migration transfers.
//
// Reads: the demand read at src returns the data and feeds the migration
// write to dst; dst's old contents move to src.
//
// Writes: the new data supersedes src's old contents entirely (a full
// subblock LLC writeback), so only dst's old contents move. Ordering
// matters here — dst must be read out BEFORE the demand write lands, or
// the only copy of dst's data is destroyed. The buffered read is submitted
// first; FaultInjectSwapOrder reintroduces the reversed (buggy) order for
// checker-validation tests.
func (s *System) SwapDemand(pa uint64, src, dst Location, write bool, done func()) {
	s.swapDemand(pa, src, dst, write, nil, done)
}

func (s *System) swapDemand(pa uint64, src, dst Location, write bool, trace func(queue, service uint64), done func()) {
	s.NoteSwap(src, dst)
	if src.Level == stats.NM {
		s.Stats.ServicedNM++
	} else {
		s.Stats.ServicedFM++
	}
	if write {
		if s.FaultInjectSwapOrder {
			s.NoteDemand(pa, dst, true)
			s.NoteCapture(dst)
			s.NoteDeliver(dst, src)
			s.Write(dst, memunits.SubblockSize, stats.Demand, nil)
			s.Read(dst, memunits.SubblockSize, stats.Migration, func() {
				s.Write(src, memunits.SubblockSize, stats.Migration, nil)
			})
			if done != nil {
				done()
			}
			return
		}
		s.NoteCapture(dst)
		s.NoteDemand(pa, dst, true)
		s.NoteDeliver(dst, src)
		s.Read(dst, memunits.SubblockSize, stats.Migration, s.getRelay(src, memunits.SubblockSize, nil).fn)
		s.Write(dst, memunits.SubblockSize, stats.Demand, nil)
		if done != nil {
			done()
		}
		return
	}
	s.NoteDemand(pa, src, false)
	s.NoteCapture(src)
	s.NoteCapture(dst)
	s.NoteDeliver(src, dst)
	s.NoteDeliver(dst, src)
	op := s.getSwap(src, dst, done)
	s.readTraced(src, memunits.SubblockSize, stats.Demand, trace, op.demandFn)
	s.Read(dst, memunits.SubblockSize, stats.Migration, op.migFn)
}

// subblockAt returns the location of subblock i within the block at loc.
func subblockAt(loc Location, i uint) Location {
	return Location{Level: loc.Level, DevAddr: loc.DevAddr + uint64(i)*memunits.SubblockSize}
}

// ExchangeBlocksDMA swaps the full 2 KB blocks at a and b with
// background-priority reads (bulk migration DMA must not delay demand
// traffic). fin (may be nil) runs when both writes complete.
func (s *System) ExchangeBlocksDMA(a, b Location, fin func()) {
	s.NoteSwap(a, b)
	for i := uint(0); i < memunits.SubblocksPerBlock; i++ {
		s.NoteCapture(subblockAt(a, i))
		s.NoteCapture(subblockAt(b, i))
		s.NoteDeliver(subblockAt(a, i), subblockAt(b, i))
		s.NoteDeliver(subblockAt(b, i), subblockAt(a, i))
	}
	op := s.getExch(a, b, memunits.BlockSize, fin)
	s.ReadBackground(a, memunits.BlockSize, stats.Migration, op.readAFn)
	s.ReadBackground(b, memunits.BlockSize, stats.Migration, op.readBFn)
}

// RelocateBlockDMA copies the 2 KB block at src over dst one-way with a
// background-priority read. dst's previous contents are dropped, so this is
// only legal when they were never live demand data (e.g. a free NM frame
// whose resident flat block was never accessed). fin may be nil.
func (s *System) RelocateBlockDMA(src, dst Location, fin func()) {
	for i := uint(0); i < memunits.SubblocksPerBlock; i++ {
		s.NoteRelocate(subblockAt(src, i), subblockAt(dst, i))
	}
	s.ReadBackground(src, memunits.BlockSize, stats.Migration, s.getRelay(dst, memunits.BlockSize, fin).fn)
}

// Conservation assembles the cross-counter invariant inputs for
// stats.CheckConservation from one consistent instant between engine
// events. quiesced marks a fully drained engine (strict equalities);
// extraNM lists additional devices whose traffic is accounted against the
// NM level (SILC-FM's dedicated HBM metadata channel).
func (s *System) Conservation(quiesced bool, extraNM ...*dram.Device) stats.Conservation {
	c := stats.Conservation{
		Mem:             s.Stats,
		Lat:             s.Lat,
		Attr:            s.Attr,
		InflightDemands: s.inflight,
		RideAlongBytes:  s.RideAlong,
		Quiesced:        quiesced,
	}
	devBytes := func(d *dram.Device) uint64 {
		st := d.Stats()
		return st.BytesRead + st.BytesWritten + st.BytesMeta + d.PendingBytes()
	}
	c.DeviceBytes[stats.NM] = devBytes(s.NM)
	c.DeviceBytes[stats.FM] = devBytes(s.FM)
	for _, d := range extraNM {
		c.DeviceBytes[stats.NM] += devBytes(d)
	}
	return c
}

// Audit verifies that ctl's Locate is a bijection over every flat subblock:
// each maps to a unique in-range, aligned device location of the right
// capacity. It is O(total subblocks) and intended for small test machines
// and end-of-run checks.
func Audit(ctl Controller, nmCap, fmCap uint64) error {
	totalSubs := memunits.SubblocksIn(nmCap + fmCap)
	seenNM := make([]bool, memunits.SubblocksIn(nmCap))
	seenFM := make([]bool, memunits.SubblocksIn(fmCap))
	for sb := uint64(0); sb < totalSubs; sb++ {
		pa := memunits.SubblockBase(sb)
		loc := ctl.Locate(pa)
		if loc.DevAddr%memunits.SubblockSize != 0 {
			return fmt.Errorf("audit: subblock %d maps to unaligned %s address %#x", sb, loc.Level, loc.DevAddr)
		}
		idx := loc.DevAddr / memunits.SubblockSize
		var seen []bool
		if loc.Level == stats.NM {
			seen = seenNM
		} else {
			seen = seenFM
		}
		if idx >= uint64(len(seen)) {
			return fmt.Errorf("audit: subblock %d maps beyond %s capacity: %#x", sb, loc.Level, loc.DevAddr)
		}
		if seen[idx] {
			return fmt.Errorf("audit: two subblocks map to %s %#x (second: flat %#x)", loc.Level, loc.DevAddr, pa)
		}
		seen[idx] = true
	}
	return nil
}

// AuditSample is a cheaper spot-check over a stride of subblocks, for
// larger configurations: it verifies alignment and range, and injectivity
// among the sampled set.
func AuditSample(ctl Controller, nmCap, fmCap uint64, stride uint64) error {
	if stride == 0 {
		stride = 1
	}
	type key struct {
		level stats.MemLevel
		addr  uint64
	}
	seen := make(map[key]uint64)
	totalSubs := memunits.SubblocksIn(nmCap + fmCap)
	for sb := uint64(0); sb < totalSubs; sb += stride {
		pa := memunits.SubblockBase(sb)
		loc := ctl.Locate(pa)
		if loc.DevAddr%memunits.SubblockSize != 0 {
			return fmt.Errorf("audit: unaligned %s address %#x", loc.Level, loc.DevAddr)
		}
		cap := nmCap
		if loc.Level == stats.FM {
			cap = fmCap
		}
		if loc.DevAddr >= cap {
			return fmt.Errorf("audit: %s address %#x beyond capacity %#x", loc.Level, loc.DevAddr, cap)
		}
		k := key{loc.Level, loc.DevAddr}
		if prev, dup := seen[k]; dup {
			return fmt.Errorf("audit: flat %#x and %#x collide at %s %#x", prev, pa, loc.Level, loc.DevAddr)
		}
		seen[k] = pa
	}
	return nil
}
