// Package mem defines the contract between the CPU side and the flat-memory
// organization schemes, wires the two DRAM devices together, and provides
// the data-integrity audit that every swapping scheme must pass: the
// mapping from flat physical subblocks to device locations must remain a
// bijection (flat memory has exactly one copy of every byte — §III-A, "data
// in NM is the only copy of the data in the physical address space").
package mem

import (
	"fmt"

	"silcfm/internal/config"
	"silcfm/internal/dram"
	"silcfm/internal/memunits"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
)

// Access is one LLC miss (or LLC writeback) entering the memory system.
type Access struct {
	Core  int
	PC    uint64
	PAddr uint64 // flat physical address; NM occupies [0, NMCapacity)
	Write bool
	// Start is the cycle at which the access entered the memory system
	// (set by the submitting core); per-path latency telemetry measures
	// completion relative to it, so serialized metadata fetches paid
	// before dispatch are included.
	Start uint64
	// Done is called when the demand data is available (reads) or accepted
	// (writes). May be nil.
	Done func()
}

// Location is a device-level position of one subblock.
type Location struct {
	Level   stats.MemLevel
	DevAddr uint64 // subblock-aligned device-local address
}

// Controller is a flat-memory organization scheme.
type Controller interface {
	Name() string
	// Handle services one LLC miss.
	Handle(a *Access)
	// Locate reports where the subblock containing flat address pa
	// currently resides. Pure; used by audits and tests.
	Locate(pa uint64) Location
}

// Observer receives the semantic data-movement events of a System. Events
// are emitted eagerly at submission time, in dataflow order: a location's
// contents are always captured (read out) before anything overwrites them,
// and every capture is delivered exactly once. The shadow checker
// (internal/shadow) implements this to track where every flat subblock's
// data lives and to catch ordering/data-loss bugs that the end-of-run
// mapping audit cannot see.
type Observer interface {
	// Demand: flat address pa's data is accessed at loc. Reads return the
	// data stored there; writes deposit pa's new data there.
	Demand(pa uint64, loc Location, write bool)
	// Capture: the contents of loc are read out and held by the controller
	// for a later Deliver.
	Capture(loc Location)
	// Deliver: the oldest undelivered Capture of src lands at dst.
	Deliver(src, dst Location)
	// Relocate: dst takes over src's contents via a one-way copy; dst's
	// previous contents are dropped (legal only if they were never demand
	// data — e.g. HMA migrating a block into a never-used NM frame).
	Relocate(src, dst Location)
}

// SchemeObserver is an optional Observer extension for scheme-level
// semantic events the pure data-movement stream cannot express. Observers
// that only verify dataflow (the shadow checker) need not implement it;
// the telemetry tracer does.
type SchemeObserver interface {
	// Swap: an exchange between a and b was initiated (subblock swap or
	// bulk block DMA); the Capture/Deliver pairs describing its dataflow
	// follow separately.
	Swap(a, b Location)
	// Lock: NM frame was locked; home reports whether it pins its own
	// home block (true) or an interleaved FM block (false).
	Lock(frame uint64, home bool)
	// Unlock: NM frame rejoined normal swapping.
	Unlock(frame uint64)
}

// Gauge is one named instantaneous scheme measurement, sampled by the
// telemetry epoch sampler alongside the stats.Memory counter deltas.
type Gauge struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// GaugeProvider is implemented by controllers that expose internal state
// (locked frames, governor state, table occupancies) as gauges.
type GaugeProvider interface {
	Gauges() []Gauge
}

// System bundles the devices, clock and counters a controller needs.
type System struct {
	Eng   *sim.Engine
	NM    *dram.Device
	FM    *dram.Device
	NMCap uint64
	FMCap uint64
	Stats *stats.Memory

	// Lat accumulates per-path demand-completion latencies (see
	// stats.DemandPath). Always allocated by NewSystem; recording is a
	// histogram increment per access and never schedules events, so it
	// cannot perturb timing.
	Lat *stats.PathLatencies

	// Obs, when non-nil, receives semantic data-movement events from the
	// compound operations below (and Note* calls from schemes with custom
	// movement paths).
	Obs Observer

	// FaultInjectSwapOrder reintroduces the pre-fix SwapDemand write-path
	// ordering bug (demand write submitted before dst's old contents are
	// read out, destroying them). Test-only: proves the shadow checker
	// detects the hazard.
	FaultInjectSwapOrder bool
}

// NewSystem builds devices for machine m on engine eng. For the no-NM
// baseline the NM device is still constructed (idle) so accounting code is
// uniform.
func NewSystem(m config.Machine, eng *sim.Engine) *System {
	return &System{
		Eng:   eng,
		NM:    dram.New(m.NM, eng),
		FM:    dram.New(m.FM, eng),
		NMCap: m.NM.Capacity,
		FMCap: m.FM.Capacity,
		Stats: &stats.Memory{},
		Lat:   stats.NewPathLatencies(),
	}
}

// InNM reports whether flat address pa lies in the near-memory range.
func (s *System) InNM(pa uint64) bool { return pa < s.NMCap }

// FMDev converts a flat far-memory address to a device-local address.
func (s *System) FMDev(pa uint64) uint64 { return pa - s.NMCap }

// HomeLocation returns where pa lives with no remapping at all.
func (s *System) HomeLocation(pa uint64) Location {
	if s.InNM(pa) {
		return Location{Level: stats.NM, DevAddr: pa}
	}
	return Location{Level: stats.FM, DevAddr: s.FMDev(pa)}
}

// Device returns the device backing a level.
func (s *System) Device(level stats.MemLevel) *dram.Device {
	if level == stats.NM {
		return s.NM
	}
	return s.FM
}

// NoteDemand reports a demand access to the observer, if any. Schemes with
// custom movement paths call this (and the other Note helpers) to describe
// their data flow; the compound System operations call them internally.
func (s *System) NoteDemand(pa uint64, loc Location, write bool) {
	if s.Obs != nil {
		s.Obs.Demand(pa, loc, write)
	}
}

// NoteCapture reports that loc's contents were read out for a later move.
func (s *System) NoteCapture(loc Location) {
	if s.Obs != nil {
		s.Obs.Capture(loc)
	}
}

// NoteDeliver reports that the oldest captured copy of src landed at dst.
func (s *System) NoteDeliver(src, dst Location) {
	if s.Obs != nil {
		s.Obs.Deliver(src, dst)
	}
}

// NoteRelocate reports a one-way copy of src's contents over dst.
func (s *System) NoteRelocate(src, dst Location) {
	if s.Obs != nil {
		s.Obs.Relocate(src, dst)
	}
}

// NoteSwap reports an initiated exchange to observers implementing
// SchemeObserver.
func (s *System) NoteSwap(a, b Location) {
	if so, ok := s.Obs.(SchemeObserver); ok {
		so.Swap(a, b)
	}
}

// NoteLock reports a frame lock to observers implementing SchemeObserver.
func (s *System) NoteLock(frame uint64, home bool) {
	if so, ok := s.Obs.(SchemeObserver); ok {
		so.Lock(frame, home)
	}
}

// NoteUnlock reports a frame unlock to observers implementing
// SchemeObserver.
func (s *System) NoteUnlock(frame uint64) {
	if so, ok := s.Obs.(SchemeObserver); ok {
		so.Unlock(frame)
	}
}

// DemandDone classifies access a under path for the per-path latency
// histograms and returns the completion callback to use in its place:
// invoking it records now-Start under path, then chains to a.Done.
func (s *System) DemandDone(a *Access, path stats.DemandPath) func() {
	done := a.Done
	if s.Lat == nil {
		return done
	}
	lat, eng, start := s.Lat, s.Eng, a.Start
	return func() {
		lat.Observe(path, eng.Now()-start)
		if done != nil {
			done()
		}
	}
}

// ServiceAccess is ServiceDemand over a full Access, recording the demand
// completion latency under path.
func (s *System) ServiceAccess(a *Access, loc Location, path stats.DemandPath) {
	s.ServiceDemand(a.PAddr, loc, a.Write, s.DemandDone(a, path))
}

// SwapAccess is SwapDemand over a full Access, recording the demand
// completion latency under path.
func (s *System) SwapAccess(a *Access, src, dst Location, path stats.DemandPath) {
	s.SwapDemand(a.PAddr, src, dst, a.Write, s.DemandDone(a, path))
}

// Read submits a read of n bytes at loc, accounted under class, invoking
// done at completion.
func (s *System) Read(loc Location, n uint64, class stats.TrafficClass, done func()) {
	s.Stats.AddBytes(loc.Level, class, n)
	s.Device(loc.Level).Submit(dram.Request{Addr: loc.DevAddr, Bytes: n, Done: done})
}

// ReadMeta submits a read with an extended burst carrying meta additional
// metadata bytes (CAMEO's in-row remap entries).
func (s *System) ReadMeta(loc Location, n, meta uint64, class stats.TrafficClass, done func()) {
	s.Stats.AddBytes(loc.Level, class, n)
	s.Stats.AddBytes(loc.Level, stats.Metadata, meta)
	s.Device(loc.Level).Submit(dram.Request{Addr: loc.DevAddr, Bytes: n, MetaBytes: meta, Done: done})
}

// ReadBackground submits a background-priority read (bulk migration DMA,
// verification traffic): it never delays demand reads.
func (s *System) ReadBackground(loc Location, n uint64, class stats.TrafficClass, done func()) {
	s.Stats.AddBytes(loc.Level, class, n)
	s.Device(loc.Level).Submit(dram.Request{Addr: loc.DevAddr, Bytes: n, Background: true, Done: done})
}

// Write submits a write of n bytes at loc accounted under class. done may
// be nil.
func (s *System) Write(loc Location, n uint64, class stats.TrafficClass, done func()) {
	s.Stats.AddBytes(loc.Level, class, n)
	s.Device(loc.Level).Submit(dram.Request{Addr: loc.DevAddr, Bytes: n, Write: true, Done: done})
}

// ServiceDemand accounts a demand access of flat address pa satisfied at
// loc and performs it: reads invoke done at data return; writes complete
// immediately after submission (write-release semantics at the memory
// controller) while still occupying bandwidth.
func (s *System) ServiceDemand(pa uint64, loc Location, write bool, done func()) {
	if loc.Level == stats.NM {
		s.Stats.ServicedNM++
	} else {
		s.Stats.ServicedFM++
	}
	s.NoteDemand(pa, loc, write)
	if write {
		s.Write(loc, memunits.SubblockSize, stats.Demand, nil)
		if done != nil {
			done()
		}
		return
	}
	s.Read(loc, memunits.SubblockSize, stats.Demand, done)
}

// ExchangeSubblocks models a hardware swap of one subblock between two
// locations: both sides are read and rewritten at the opposite location.
// The demand side is NOT included; callers account it separately. fin (may
// be nil) runs when both writes complete.
func (s *System) ExchangeSubblocks(a, b Location, fin func()) {
	s.NoteSwap(a, b)
	s.NoteCapture(a)
	s.NoteCapture(b)
	s.NoteDeliver(a, b)
	s.NoteDeliver(b, a)
	join := dram.Join(2, fin)
	s.Read(a, memunits.SubblockSize, stats.Migration, func() {
		s.Write(b, memunits.SubblockSize, stats.Migration, join)
	})
	s.Read(b, memunits.SubblockSize, stats.Migration, func() {
		s.Write(a, memunits.SubblockSize, stats.Migration, join)
	})
}

// SwapDemand services a demand access to flat address pa whose subblock
// currently resides at src while exchanging it with dst's contents — the
// interleaved swap of SILC-FM Figure 2, with the demand transfer doubling
// as one of the migration transfers.
//
// Reads: the demand read at src returns the data and feeds the migration
// write to dst; dst's old contents move to src.
//
// Writes: the new data supersedes src's old contents entirely (a full
// subblock LLC writeback), so only dst's old contents move. Ordering
// matters here — dst must be read out BEFORE the demand write lands, or
// the only copy of dst's data is destroyed. The buffered read is submitted
// first; FaultInjectSwapOrder reintroduces the reversed (buggy) order for
// checker-validation tests.
func (s *System) SwapDemand(pa uint64, src, dst Location, write bool, done func()) {
	s.NoteSwap(src, dst)
	if src.Level == stats.NM {
		s.Stats.ServicedNM++
	} else {
		s.Stats.ServicedFM++
	}
	if write {
		if s.FaultInjectSwapOrder {
			s.NoteDemand(pa, dst, true)
			s.NoteCapture(dst)
			s.NoteDeliver(dst, src)
			s.Write(dst, memunits.SubblockSize, stats.Demand, nil)
			s.Read(dst, memunits.SubblockSize, stats.Migration, func() {
				s.Write(src, memunits.SubblockSize, stats.Migration, nil)
			})
			if done != nil {
				done()
			}
			return
		}
		s.NoteCapture(dst)
		s.NoteDemand(pa, dst, true)
		s.NoteDeliver(dst, src)
		s.Read(dst, memunits.SubblockSize, stats.Migration, func() {
			s.Write(src, memunits.SubblockSize, stats.Migration, nil)
		})
		s.Write(dst, memunits.SubblockSize, stats.Demand, nil)
		if done != nil {
			done()
		}
		return
	}
	s.NoteDemand(pa, src, false)
	s.NoteCapture(src)
	s.NoteCapture(dst)
	s.NoteDeliver(src, dst)
	s.NoteDeliver(dst, src)
	s.Read(src, memunits.SubblockSize, stats.Demand, func() {
		if done != nil {
			done()
		}
		s.Write(dst, memunits.SubblockSize, stats.Migration, nil)
	})
	s.Read(dst, memunits.SubblockSize, stats.Migration, func() {
		s.Write(src, memunits.SubblockSize, stats.Migration, nil)
	})
}

// subblockAt returns the location of subblock i within the block at loc.
func subblockAt(loc Location, i uint) Location {
	return Location{Level: loc.Level, DevAddr: loc.DevAddr + uint64(i)*memunits.SubblockSize}
}

// ExchangeBlocksDMA swaps the full 2 KB blocks at a and b with
// background-priority reads (bulk migration DMA must not delay demand
// traffic). fin (may be nil) runs when both writes complete.
func (s *System) ExchangeBlocksDMA(a, b Location, fin func()) {
	s.NoteSwap(a, b)
	for i := uint(0); i < memunits.SubblocksPerBlock; i++ {
		s.NoteCapture(subblockAt(a, i))
		s.NoteCapture(subblockAt(b, i))
		s.NoteDeliver(subblockAt(a, i), subblockAt(b, i))
		s.NoteDeliver(subblockAt(b, i), subblockAt(a, i))
	}
	join := dram.Join(2, fin)
	s.ReadBackground(a, memunits.BlockSize, stats.Migration, func() {
		s.Write(b, memunits.BlockSize, stats.Migration, join)
	})
	s.ReadBackground(b, memunits.BlockSize, stats.Migration, func() {
		s.Write(a, memunits.BlockSize, stats.Migration, join)
	})
}

// RelocateBlockDMA copies the 2 KB block at src over dst one-way with a
// background-priority read. dst's previous contents are dropped, so this is
// only legal when they were never live demand data (e.g. a free NM frame
// whose resident flat block was never accessed). fin may be nil.
func (s *System) RelocateBlockDMA(src, dst Location, fin func()) {
	for i := uint(0); i < memunits.SubblocksPerBlock; i++ {
		s.NoteRelocate(subblockAt(src, i), subblockAt(dst, i))
	}
	s.ReadBackground(src, memunits.BlockSize, stats.Migration, func() {
		s.Write(dst, memunits.BlockSize, stats.Migration, fin)
	})
}

// Audit verifies that ctl's Locate is a bijection over every flat subblock:
// each maps to a unique in-range, aligned device location of the right
// capacity. It is O(total subblocks) and intended for small test machines
// and end-of-run checks.
func Audit(ctl Controller, nmCap, fmCap uint64) error {
	totalSubs := memunits.SubblocksIn(nmCap + fmCap)
	seenNM := make([]bool, memunits.SubblocksIn(nmCap))
	seenFM := make([]bool, memunits.SubblocksIn(fmCap))
	for sb := uint64(0); sb < totalSubs; sb++ {
		pa := memunits.SubblockBase(sb)
		loc := ctl.Locate(pa)
		if loc.DevAddr%memunits.SubblockSize != 0 {
			return fmt.Errorf("audit: subblock %d maps to unaligned %s address %#x", sb, loc.Level, loc.DevAddr)
		}
		idx := loc.DevAddr / memunits.SubblockSize
		var seen []bool
		if loc.Level == stats.NM {
			seen = seenNM
		} else {
			seen = seenFM
		}
		if idx >= uint64(len(seen)) {
			return fmt.Errorf("audit: subblock %d maps beyond %s capacity: %#x", sb, loc.Level, loc.DevAddr)
		}
		if seen[idx] {
			return fmt.Errorf("audit: two subblocks map to %s %#x (second: flat %#x)", loc.Level, loc.DevAddr, pa)
		}
		seen[idx] = true
	}
	return nil
}

// AuditSample is a cheaper spot-check over a stride of subblocks, for
// larger configurations: it verifies alignment and range, and injectivity
// among the sampled set.
func AuditSample(ctl Controller, nmCap, fmCap uint64, stride uint64) error {
	if stride == 0 {
		stride = 1
	}
	type key struct {
		level stats.MemLevel
		addr  uint64
	}
	seen := make(map[key]uint64)
	totalSubs := memunits.SubblocksIn(nmCap + fmCap)
	for sb := uint64(0); sb < totalSubs; sb += stride {
		pa := memunits.SubblockBase(sb)
		loc := ctl.Locate(pa)
		if loc.DevAddr%memunits.SubblockSize != 0 {
			return fmt.Errorf("audit: unaligned %s address %#x", loc.Level, loc.DevAddr)
		}
		cap := nmCap
		if loc.Level == stats.FM {
			cap = fmCap
		}
		if loc.DevAddr >= cap {
			return fmt.Errorf("audit: %s address %#x beyond capacity %#x", loc.Level, loc.DevAddr, cap)
		}
		k := key{loc.Level, loc.DevAddr}
		if prev, dup := seen[k]; dup {
			return fmt.Errorf("audit: flat %#x and %#x collide at %s %#x", prev, pa, loc.Level, loc.DevAddr)
		}
		seen[k] = pa
	}
	return nil
}
