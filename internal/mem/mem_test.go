package mem

import (
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/memunits"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
)

func newSys() (*sim.Engine, *System) {
	m := config.Small()
	m.NM = config.HBM(128 << 10)
	m.FM = config.DDR3(512 << 10)
	eng := sim.NewEngine()
	return eng, NewSystem(m, eng)
}

func TestAddressHelpers(t *testing.T) {
	_, s := newSys()
	if !s.InNM(0) || !s.InNM(128<<10-1) || s.InNM(128<<10) {
		t.Fatal("InNM boundary wrong")
	}
	if s.FMDev(128<<10) != 0 {
		t.Fatal("FMDev offset wrong")
	}
	if loc := s.HomeLocation(64); loc.Level != stats.NM || loc.DevAddr != 64 {
		t.Fatalf("NM home: %+v", loc)
	}
	if loc := s.HomeLocation(128<<10 + 64); loc.Level != stats.FM || loc.DevAddr != 64 {
		t.Fatalf("FM home: %+v", loc)
	}
}

func TestReadWriteAccounting(t *testing.T) {
	eng, s := newSys()
	done := 0
	s.Read(Location{Level: stats.NM, DevAddr: 0}, 64, stats.Demand, func() { done++ })
	s.Write(Location{Level: stats.FM, DevAddr: 0}, 64, stats.Migration, nil)
	eng.Run()
	if done != 1 {
		t.Fatal("read callback missing")
	}
	if s.Stats.Bytes[stats.NM][stats.Demand] != 64 {
		t.Fatal("read bytes not accounted")
	}
	if s.Stats.Bytes[stats.FM][stats.Migration] != 64 {
		t.Fatal("write bytes not accounted")
	}
}

func TestReadMetaAccountsBothClasses(t *testing.T) {
	eng, s := newSys()
	s.ReadMeta(Location{Level: stats.NM, DevAddr: 0}, 64, 8, stats.Demand, nil)
	eng.Run()
	if s.Stats.Bytes[stats.NM][stats.Demand] != 64 || s.Stats.Bytes[stats.NM][stats.Metadata] != 8 {
		t.Fatalf("bytes: %+v", s.Stats.Bytes)
	}
}

func TestServiceDemandCounts(t *testing.T) {
	eng, s := newSys()
	reads := 0
	s.ServiceDemand(0, Location{Level: stats.NM, DevAddr: 0}, false, func() { reads++ })
	s.ServiceDemand(128<<10, Location{Level: stats.FM, DevAddr: 0}, true, func() { reads++ })
	eng.Run()
	if reads != 2 {
		t.Fatal("callbacks")
	}
	if s.Stats.ServicedNM != 1 || s.Stats.ServicedFM != 1 {
		t.Fatalf("serviced: NM=%d FM=%d", s.Stats.ServicedNM, s.Stats.ServicedFM)
	}
}

func TestExchangeSubblocksTraffic(t *testing.T) {
	eng, s := newSys()
	finished := false
	s.ExchangeSubblocks(
		Location{Level: stats.NM, DevAddr: 0},
		Location{Level: stats.FM, DevAddr: 0},
		func() { finished = true })
	eng.Run()
	if !finished {
		t.Fatal("exchange completion callback missing")
	}
	// 64B read + 64B write on each level.
	if s.Stats.Bytes[stats.NM][stats.Migration] != 128 || s.Stats.Bytes[stats.FM][stats.Migration] != 128 {
		t.Fatalf("exchange bytes: %+v", s.Stats.Bytes)
	}
	if s.NM.Stats().Reads != 1 || s.NM.Stats().Writes != 1 || s.FM.Stats().Reads != 1 || s.FM.Stats().Writes != 1 {
		t.Fatal("device ops wrong")
	}
}

// recObs records observer events as strings for order assertions.
type recObs struct{ events []string }

func (r *recObs) Demand(pa uint64, loc Location, write bool) {
	op := "R"
	if write {
		op = "W"
	}
	r.events = append(r.events, op+" demand "+loc.Level.String())
}
func (r *recObs) Capture(loc Location) { r.events = append(r.events, "capture "+loc.Level.String()) }
func (r *recObs) Deliver(src, dst Location) {
	r.events = append(r.events, "deliver "+dst.Level.String())
}
func (r *recObs) Relocate(src, dst Location) {
	r.events = append(r.events, "relocate "+dst.Level.String())
}

func eventsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSwapDemandReadTraffic(t *testing.T) {
	eng, s := newSys()
	done := false
	s.SwapDemand(128<<10,
		Location{Level: stats.FM, DevAddr: 0},
		Location{Level: stats.NM, DevAddr: 0},
		false, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("demand callback missing")
	}
	if s.Stats.ServicedFM != 1 {
		t.Fatal("demand side not counted at src level")
	}
	// Demand read of src (64B FM demand), migration write to dst, plus the
	// counterflow read of dst + write to src.
	if s.Stats.Bytes[stats.FM][stats.Demand] != 64 {
		t.Fatalf("demand bytes: %+v", s.Stats.Bytes)
	}
	if s.Stats.Bytes[stats.NM][stats.Migration] != 128 || s.Stats.Bytes[stats.FM][stats.Migration] != 64 {
		t.Fatalf("migration bytes: %+v", s.Stats.Bytes)
	}
}

// TestSwapDemandWriteOrdering pins the write-path ordering contract: the
// destination's old contents must be captured before the demand write lands,
// and the fault-injection hook must reproduce the reversed (buggy) order.
func TestSwapDemandWriteOrdering(t *testing.T) {
	eng, s := newSys()
	obs := &recObs{}
	s.AttachObserver(obs)
	src := Location{Level: stats.FM, DevAddr: 0}
	dst := Location{Level: stats.NM, DevAddr: 0}
	s.SwapDemand(128<<10, src, dst, true, nil)
	eng.Run()
	want := []string{"capture NM", "W demand NM", "deliver FM"}
	if !eventsEqual(obs.events, want) {
		t.Fatalf("fixed order = %v, want %v", obs.events, want)
	}
	// NM: one migration read + one demand write; FM: one migration write.
	if s.Stats.Bytes[stats.NM][stats.Demand] != 64 || s.Stats.Bytes[stats.NM][stats.Migration] != 64 ||
		s.Stats.Bytes[stats.FM][stats.Migration] != 64 {
		t.Fatalf("write-swap bytes: %+v", s.Stats.Bytes)
	}

	eng2, s2 := newSys()
	obs2 := &recObs{}
	s2.AttachObserver(obs2)
	s2.FaultInjectSwapOrder = true
	s2.SwapDemand(128<<10, src, dst, true, nil)
	eng2.Run()
	bad := []string{"W demand NM", "capture NM", "deliver FM"}
	if !eventsEqual(obs2.events, bad) {
		t.Fatalf("fault-injected order = %v, want %v", obs2.events, bad)
	}
}

func TestExchangeSubblocksEvents(t *testing.T) {
	eng, s := newSys()
	obs := &recObs{}
	s.AttachObserver(obs)
	s.ExchangeSubblocks(
		Location{Level: stats.NM, DevAddr: 0},
		Location{Level: stats.FM, DevAddr: 0}, nil)
	eng.Run()
	want := []string{"capture NM", "capture FM", "deliver FM", "deliver NM"}
	if !eventsEqual(obs.events, want) {
		t.Fatalf("events = %v, want %v", obs.events, want)
	}
}

func TestBlockDMATraffic(t *testing.T) {
	eng, s := newSys()
	obs := &recObs{}
	s.AttachObserver(obs)
	fin := 0
	s.ExchangeBlocksDMA(
		Location{Level: stats.NM, DevAddr: 0},
		Location{Level: stats.FM, DevAddr: 0},
		func() { fin++ })
	s.RelocateBlockDMA(
		Location{Level: stats.FM, DevAddr: 2048},
		Location{Level: stats.NM, DevAddr: 2048},
		func() { fin++ })
	eng.Run()
	if fin != 2 {
		t.Fatalf("fin callbacks = %d, want 2", fin)
	}
	// Exchange: 2KB read+write on each level. Relocate: 2KB FM read + 2KB
	// NM write.
	if s.Stats.Bytes[stats.NM][stats.Migration] != 3*2048 || s.Stats.Bytes[stats.FM][stats.Migration] != 3*2048 {
		t.Fatalf("DMA bytes: %+v", s.Stats.Bytes)
	}
	// 32 capture+capture+deliver+deliver for the exchange, 32 relocates.
	if len(obs.events) != 32*4+32 {
		t.Fatalf("event count = %d", len(obs.events))
	}
}

// fakeCtl wraps an explicit mapping for audit tests.
type fakeCtl struct {
	m map[uint64]Location
}

func (f *fakeCtl) Name() string     { return "fake" }
func (f *fakeCtl) Handle(a *Access) {}
func (f *fakeCtl) Locate(pa uint64) Location {
	if loc, ok := f.m[memunits.AlignSubblock(pa)]; ok {
		return loc
	}
	if pa < 2048 {
		return Location{Level: stats.NM, DevAddr: memunits.AlignSubblock(pa)}
	}
	return Location{Level: stats.FM, DevAddr: memunits.AlignSubblock(pa) - 2048}
}

func TestAuditDetectsCollision(t *testing.T) {
	nmCap, fmCap := uint64(2048), uint64(8192)
	ok := &fakeCtl{m: map[uint64]Location{}}
	if err := Audit(ok, nmCap, fmCap); err != nil {
		t.Fatalf("identity mapping rejected: %v", err)
	}
	// Two flat subblocks to one location.
	bad := &fakeCtl{m: map[uint64]Location{
		0:  {Level: stats.NM, DevAddr: 64},
		64: {Level: stats.NM, DevAddr: 64},
	}}
	if err := Audit(bad, nmCap, fmCap); err == nil {
		t.Fatal("audit missed a collision")
	}
	// Unaligned.
	unaligned := &fakeCtl{m: map[uint64]Location{0: {Level: stats.NM, DevAddr: 3}}}
	if err := Audit(unaligned, nmCap, fmCap); err == nil {
		t.Fatal("audit missed misalignment")
	}
	// Out of range.
	oob := &fakeCtl{m: map[uint64]Location{0: {Level: stats.NM, DevAddr: 1 << 40}}}
	if err := Audit(oob, nmCap, fmCap); err == nil {
		t.Fatal("audit missed out-of-range")
	}
}

func TestAuditSample(t *testing.T) {
	nmCap, fmCap := uint64(2048), uint64(8192)
	ok := &fakeCtl{m: map[uint64]Location{}}
	if err := AuditSample(ok, nmCap, fmCap, 3); err != nil {
		t.Fatal(err)
	}
	bad := &fakeCtl{m: map[uint64]Location{
		0:   {Level: stats.FM, DevAddr: 0},
		128: {Level: stats.FM, DevAddr: 1 << 40},
	}}
	if err := AuditSample(bad, nmCap, fmCap, 1); err == nil {
		t.Fatal("sample audit missed out-of-range")
	}
	// Stride 0 treated as 1.
	if err := AuditSample(ok, nmCap, fmCap, 0); err != nil {
		t.Fatal(err)
	}
}
