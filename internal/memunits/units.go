// Package memunits defines the address geometry used throughout the
// SILC-FM reproduction: 64-byte subblocks (the unit of data movement and of
// CPU cache lines) and 2-kilobyte large blocks (the unit of remapping,
// paging and locking), exactly as in the paper (§II).
package memunits

import "fmt"

const (
	// SubblockSize is the small-block / cache-line size in bytes.
	SubblockSize = 64
	// BlockSize is the large-block / page size in bytes.
	BlockSize = 2048
	// SubblocksPerBlock is the number of subblocks in one large block
	// (and the width of a residency bit vector).
	SubblocksPerBlock = BlockSize / SubblockSize // 32

	subblockShift = 6  // log2(SubblockSize)
	blockShift    = 11 // log2(BlockSize)
)

// Addr is a byte address, physical or virtual depending on context.
type Addr = uint64

// BlockID identifies a 2 KB large block: Addr >> 11.
type BlockID = uint64

// SubblockID identifies a 64 B subblock: Addr >> 6.
type SubblockID = uint64

// BlockOf returns the large-block number containing a.
func BlockOf(a Addr) BlockID { return a >> blockShift }

// SubblockOf returns the global subblock number containing a.
func SubblockOf(a Addr) SubblockID { return a >> subblockShift }

// SubblockIndex returns the index (0..31) of a's subblock within its block.
func SubblockIndex(a Addr) uint { return uint(a>>subblockShift) & (SubblocksPerBlock - 1) }

// BlockBase returns the first byte address of block b.
func BlockBase(b BlockID) Addr { return b << blockShift }

// SubblockBase returns the first byte address of subblock s.
func SubblockBase(s SubblockID) Addr { return s << subblockShift }

// SubblockAddr returns the byte address of subblock idx within block b.
func SubblockAddr(b BlockID, idx uint) Addr {
	return b<<blockShift | Addr(idx)<<subblockShift
}

// BlockOffset returns a's byte offset within its large block.
func BlockOffset(a Addr) uint { return uint(a) & (BlockSize - 1) }

// AlignBlock rounds a down to its block base.
func AlignBlock(a Addr) Addr { return a &^ (BlockSize - 1) }

// AlignSubblock rounds a down to its subblock base.
func AlignSubblock(a Addr) Addr { return a &^ (SubblockSize - 1) }

// BlocksIn returns how many large blocks fit in size bytes. size must be a
// multiple of BlockSize.
func BlocksIn(size uint64) uint64 { return size >> blockShift }

// SubblocksIn returns how many subblocks fit in size bytes.
func SubblocksIn(size uint64) uint64 { return size >> subblockShift }

// BitVector records per-subblock residency within one large block: bit i set
// means subblock i of the block has been swapped in from the other memory
// level (paper §III-A).
type BitVector uint32

// Set marks subblock idx.
func (v *BitVector) Set(idx uint) { *v |= 1 << (idx & 31) }

// Clear unmarks subblock idx.
func (v *BitVector) Clear(idx uint) { *v &^= 1 << (idx & 31) }

// Test reports whether subblock idx is marked.
func (v BitVector) Test(idx uint) bool { return v&(1<<(idx&31)) != 0 }

// Count returns the number of marked subblocks.
func (v BitVector) Count() int {
	n := 0
	for x := uint32(v); x != 0; x &= x - 1 {
		n++
	}
	return n
}

// Full is the vector with all 32 subblocks marked.
const Full BitVector = 1<<SubblocksPerBlock - 1

// Indices returns the marked subblock indices in ascending order, appended
// to dst (which may be nil).
func (v BitVector) Indices(dst []uint) []uint {
	for i := uint(0); i < SubblocksPerBlock; i++ {
		if v.Test(i) {
			dst = append(dst, i)
		}
	}
	return dst
}

func (v BitVector) String() string { return fmt.Sprintf("%032b", uint32(v)) }
