package memunits

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if SubblocksPerBlock != 32 {
		t.Fatalf("SubblocksPerBlock = %d, want 32 (paper: 32 bits per block)", SubblocksPerBlock)
	}
	if BlockSize != 2048 || SubblockSize != 64 {
		t.Fatalf("sizes %d/%d, want 2048/64", BlockSize, SubblockSize)
	}
}

func TestAddressArithmetic(t *testing.T) {
	a := Addr(5*BlockSize + 7*SubblockSize + 13)
	if BlockOf(a) != 5 {
		t.Errorf("BlockOf = %d, want 5", BlockOf(a))
	}
	if SubblockIndex(a) != 7 {
		t.Errorf("SubblockIndex = %d, want 7", SubblockIndex(a))
	}
	if SubblockOf(a) != 5*32+7 {
		t.Errorf("SubblockOf = %d, want %d", SubblockOf(a), 5*32+7)
	}
	if BlockOffset(a) != 7*64+13 {
		t.Errorf("BlockOffset = %d, want %d", BlockOffset(a), 7*64+13)
	}
	if AlignBlock(a) != 5*BlockSize {
		t.Errorf("AlignBlock = %d", AlignBlock(a))
	}
	if AlignSubblock(a) != 5*BlockSize+7*64 {
		t.Errorf("AlignSubblock = %d", AlignSubblock(a))
	}
	if SubblockAddr(5, 7) != 5*BlockSize+7*64 {
		t.Errorf("SubblockAddr = %d", SubblockAddr(5, 7))
	}
	if BlockBase(5) != 5*BlockSize {
		t.Errorf("BlockBase = %d", BlockBase(5))
	}
	if SubblockBase(3) != 3*64 {
		t.Errorf("SubblockBase = %d", SubblockBase(3))
	}
}

func TestCapacityHelpers(t *testing.T) {
	if BlocksIn(1<<20) != 512 {
		t.Errorf("BlocksIn(1MiB) = %d, want 512", BlocksIn(1<<20))
	}
	if SubblocksIn(1<<20) != 16384 {
		t.Errorf("SubblocksIn(1MiB) = %d, want 16384", SubblocksIn(1<<20))
	}
}

// Property: block/subblock decomposition round-trips for any address.
func TestDecomposeRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		b := BlockOf(a)
		idx := SubblockIndex(a)
		off := uint(a) & (SubblockSize - 1)
		return SubblockAddr(b, idx)+Addr(off) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitVectorBasics(t *testing.T) {
	var v BitVector
	if v.Count() != 0 {
		t.Fatal("zero vector not empty")
	}
	v.Set(0)
	v.Set(31)
	v.Set(7)
	if !v.Test(0) || !v.Test(31) || !v.Test(7) || v.Test(6) {
		t.Fatalf("Test wrong: %s", v)
	}
	if v.Count() != 3 {
		t.Fatalf("Count = %d, want 3", v.Count())
	}
	v.Clear(7)
	if v.Test(7) || v.Count() != 2 {
		t.Fatalf("Clear failed: %s", v)
	}
	idx := v.Indices(nil)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 31 {
		t.Fatalf("Indices = %v", idx)
	}
}

func TestBitVectorFull(t *testing.T) {
	if Full.Count() != SubblocksPerBlock {
		t.Fatalf("Full.Count = %d", Full.Count())
	}
	for i := uint(0); i < SubblocksPerBlock; i++ {
		if !Full.Test(i) {
			t.Fatalf("Full missing bit %d", i)
		}
	}
}

// Property: Set then Test is true; Clear then Test is false; Count matches a
// reference popcount.
func TestBitVectorProperties(t *testing.T) {
	f := func(bits uint32, idx uint8) bool {
		v := BitVector(bits)
		i := uint(idx) % 32
		v.Set(i)
		if !v.Test(i) {
			return false
		}
		v.Clear(i)
		if v.Test(i) {
			return false
		}
		ref := 0
		for j := uint(0); j < 32; j++ {
			if v.Test(j) {
				ref++
			}
		}
		return v.Count() == ref
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
