// Package cameo implements CAMEO (§II-B): the near memory is organized as a
// direct-mapped structure of 64 B lines; a requested far-memory line swaps
// with the NM-resident line of its congruence group on every access, so the
// OS sees NM+FM capacity while hot lines gravitate to NM. The remap entry
// for a group is stored next to the data in the same NM row and fetched by
// lengthening the burst, so each NM access needs a single memory request.
//
// CAMEOP is CAMEO plus a next-3-line prefetcher (§IV-A: the paper
// additionally evaluates CAMEO with prefetching to expose spatial-locality
// effects; 3 lines were found best).
package cameo

import (
	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/stats"
)

// remapEntrySize is the per-group metadata carried in the extended burst.
const remapEntrySize = 8

// Controller is the CAMEO scheme.
type Controller struct {
	sys      *mem.System
	slots    uint64 // NM lines = congruence groups
	members  int    // lines per group (1 NM + FM/NM ratio)
	prefetch int    // extra sequential lines fetched on an FM hit (CAMEOP)

	// perm[g*members+m] = location index of member m of group g:
	// location 0 is the NM slot, location k>=1 is member k's FM home.
	perm []uint8

	// nmForeign counts NM slots currently holding a line other than their
	// own member 0 (maintained incrementally by swapIntoNM; a gauge).
	nmForeign uint64

	// freeSwap recycles swapOp continuation records so steady-state FM-hit
	// swaps allocate nothing.
	freeSwap *swapOp
}

// swapOp carries one FM-hit access through its serialized continuations:
// the remap-entry check in NM (whose extended burst reads out the victim),
// then for reads the FM demand fetch. The callbacks are method values bound
// once when the record is first built, so reusing a record costs no
// allocation; each terminal callback copies what it needs to locals and
// recycles the record before issuing follow-on requests.
type swapOp struct {
	c         *Controller
	a         *mem.Access
	done      func()
	metaStart uint64
	fmLoc     mem.Location
	nmSlot    mem.Location
	evictLoc  mem.Location
	metaFn    func() // bound metaDone
	demandFn  func() // bound demandDone
	next      *swapOp
}

func (o *swapOp) release() {
	o.a = nil
	o.done = nil
	o.next = o.c.freeSwap
	o.c.freeSwap = o
}

func (o *swapOp) metaDone() {
	c := o.c
	a := o.a
	// Everything up to here was the serialized remap-entry check in NM
	// (queue + extended-burst service of the victim line): charge it as
	// metadata-fetch time on the demand path.
	a.AddSpan(stats.SpanMetaFetch, c.sys.Eng.Now()-o.metaStart)
	if a.Write {
		// Write allocate: new data lands in NM, victim goes to FM.
		done := o.done
		nmSlot, evictLoc := o.nmSlot, o.evictLoc
		o.release()
		c.sys.Write(nmSlot, memunits.SubblockSize, stats.Demand, nil)
		c.sys.Write(evictLoc, memunits.SubblockSize, stats.Migration, nil)
		if done != nil {
			done()
		}
		return
	}
	c.sys.ReadDemand(a, o.fmLoc, memunits.SubblockSize, stats.Demand, o.demandFn)
}

func (o *swapOp) demandDone() {
	// Demand data returned; install + evict in the background.
	c := o.c
	done := o.done
	nmSlot, evictLoc := o.nmSlot, o.evictLoc
	o.release()
	if done != nil {
		done()
	}
	c.sys.Write(nmSlot, memunits.SubblockSize, stats.Migration, nil)
	c.sys.Write(evictLoc, memunits.SubblockSize, stats.Migration, nil)
}

// New builds a CAMEO controller. cfg.PrefetchLines = 0 gives original
// CAMEO; 3 gives the paper's CAMEOP.
func New(sys *mem.System, cfg config.CAMEOConfig) *Controller {
	slots := memunits.SubblocksIn(sys.NMCap)
	members := int(memunits.SubblocksIn(sys.NMCap+sys.FMCap) / slots)
	c := &Controller{
		sys:      sys,
		slots:    slots,
		members:  members,
		prefetch: cfg.PrefetchLines,
		perm:     make([]uint8, slots*uint64(members)),
	}
	for g := uint64(0); g < slots; g++ {
		for m := 0; m < members; m++ {
			c.perm[g*uint64(members)+uint64(m)] = uint8(m)
		}
	}
	return c
}

// Name implements mem.Controller.
func (c *Controller) Name() string {
	if c.prefetch > 0 {
		return "camp"
	}
	return "cam"
}

// group decomposes a flat subblock number.
func (c *Controller) group(sb uint64) (g uint64, member int) {
	return sb % c.slots, int(sb / c.slots)
}

// locationOf returns member m of group g's current location index.
func (c *Controller) locationOf(g uint64, m int) int {
	return int(c.perm[g*uint64(c.members)+uint64(m)])
}

// locAddr converts a location index of group g to a device location.
func (c *Controller) locAddr(g uint64, loc int) mem.Location {
	if loc == 0 {
		return mem.Location{Level: stats.NM, DevAddr: g * memunits.SubblockSize}
	}
	return mem.Location{
		Level:   stats.FM,
		DevAddr: (uint64(loc-1)*c.slots + g) * memunits.SubblockSize,
	}
}

// Locate implements mem.Controller.
func (c *Controller) Locate(pa uint64) mem.Location {
	g, m := c.group(memunits.SubblockOf(pa))
	return c.locAddr(g, c.locationOf(g, m))
}

// swapIntoNM updates the permutation so member m occupies the NM slot; the
// previous NM resident moves to m's old location. It returns m's old
// location index.
func (c *Controller) swapIntoNM(g uint64, m int) int {
	base := g * uint64(c.members)
	oldLoc := int(c.perm[base+uint64(m)])
	for r := 0; r < c.members; r++ {
		if c.perm[base+uint64(r)] == 0 {
			c.perm[base+uint64(r)] = uint8(oldLoc)
			if r == 0 && m != 0 {
				c.nmForeign++ // the slot's own line is displaced
			}
			break
		}
	}
	if m == 0 && c.nmForeign > 0 {
		c.nmForeign-- // member 0 returned home
	}
	c.perm[base+uint64(m)] = 0
	return oldLoc
}

// Gauges implements mem.GaugeProvider.
func (c *Controller) Gauges() []mem.Gauge {
	return []mem.Gauge{
		{Name: "nm_foreign_lines", Value: float64(c.nmForeign)},
		{Name: "nm_foreign_fraction", Value: float64(c.nmForeign) / float64(c.slots)},
	}
}

// Handle implements mem.Controller.
func (c *Controller) Handle(a *mem.Access) {
	st := c.sys.Stats
	st.LLCMisses++
	sb := memunits.SubblockOf(a.PAddr)
	g, m := c.group(sb)
	loc := c.locationOf(g, m)
	nmSlot := c.locAddr(g, 0)

	if loc == 0 {
		// NM hit: one extended-burst access returns remap entry + data.
		st.ServicedNM++
		done := c.sys.DemandDone(a, stats.PathNMHit)
		c.sys.NoteDemand(a.PAddr, nmSlot, a.Write)
		if a.Write {
			// The remap-entry update rides the demand write's burst: it is
			// accounted as metadata bytes without a device request of its
			// own (the write completes at submission either way).
			c.sys.Write(nmSlot, memunits.SubblockSize, stats.Demand, nil)
			c.sys.AddBytesRideAlong(stats.NM, stats.Metadata, remapEntrySize)
			if done != nil {
				done()
			}
		} else {
			c.sys.ReadMetaDemand(a, nmSlot, memunits.SubblockSize, remapEntrySize, stats.Demand, done)
		}
		return
	}

	// FM resident. The NM line must be read anyway: its extended burst
	// holds the remap entry that proves the miss, and its data is the swap
	// victim. The FM access is serialized behind it (§III-F: the remap
	// entry has to be checked first in NM prior to accessing FM).
	st.ServicedFM++
	done := c.sys.DemandDone(a, stats.PathSwap)
	metaStart := c.sys.Eng.Now()
	fmLoc := c.locAddr(g, loc)
	evictLoc := fmLoc // the victim moves to the requested line's old home
	c.swapIntoNM(g, m)
	// Dataflow: the victim is read out of the NM slot first (its extended
	// burst proves the miss); reads pull the requested line through the NM
	// slot while writes deposit the new data there directly; the victim
	// lands at the requested line's old FM home either way.
	c.sys.NoteCapture(nmSlot)
	if a.Write {
		c.sys.NoteDemand(a.PAddr, nmSlot, true)
	} else {
		c.sys.NoteDemand(a.PAddr, fmLoc, false)
		c.sys.NoteCapture(fmLoc)
		c.sys.NoteDeliver(fmLoc, nmSlot)
	}
	c.sys.NoteDeliver(nmSlot, evictLoc)
	op := c.freeSwap
	if op == nil {
		op = &swapOp{c: c}
		op.metaFn = op.metaDone
		op.demandFn = op.demandDone
	} else {
		c.freeSwap = op.next
	}
	op.a = a
	op.done = done
	op.metaStart = metaStart
	op.fmLoc = fmLoc
	op.nmSlot = nmSlot
	op.evictLoc = evictLoc
	c.sys.ReadMeta(nmSlot, memunits.SubblockSize, remapEntrySize, stats.Migration, op.metaFn)
	c.maybePrefetch(sb)
}

// maybePrefetch swaps in the next lines after a demand miss to FM (CAMEOP:
// "a prefetcher that fetches extra 3 lines along with the miss", §IV-A).
func (c *Controller) maybePrefetch(sb uint64) {
	if c.prefetch == 0 {
		return
	}
	total := memunits.SubblocksIn(c.sys.NMCap + c.sys.FMCap)
	for i := 1; i <= c.prefetch; i++ {
		nsb := sb + uint64(i)
		if nsb >= total {
			break
		}
		g, m := c.group(nsb)
		loc := c.locationOf(g, m)
		if loc == 0 {
			continue // already NM resident
		}
		fmLoc := c.locAddr(g, loc)
		nmSlot := c.locAddr(g, 0)
		c.swapIntoNM(g, m)
		// Prefetch swap traffic: read both sides, write both sides.
		c.sys.ExchangeSubblocks(fmLoc, nmSlot, nil)
		c.sys.Stats.SwapsIn++
	}
}
