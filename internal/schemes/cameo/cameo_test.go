package cameo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
)

func newTestSystem() (*sim.Engine, *mem.System) {
	m := config.Small() // NM 4MB, FM 16MB
	eng := sim.NewEngine()
	return eng, mem.NewSystem(m, eng)
}

func TestInitialIdentityMapping(t *testing.T) {
	_, sys := newTestSystem()
	c := New(sys, config.CAMEOConfig{})
	// NM addresses map to themselves in NM; FM addresses to their FM home.
	for _, pa := range []uint64{0, 64, 4<<20 - 64, 4 << 20, 10 << 20} {
		loc := c.Locate(pa)
		want := sys.HomeLocation(pa)
		if loc != want {
			t.Fatalf("Locate(%#x) = %+v, want home %+v", pa, loc, want)
		}
	}
}

func TestSwapOnFMAccess(t *testing.T) {
	eng, sys := newTestSystem()
	c := New(sys, config.CAMEOConfig{})
	fmAddr := uint64(4 << 20) // first FM subblock: group 0, member 1
	done := false
	c.Handle(&mem.Access{PAddr: fmAddr, Done: func() { done = true }})
	eng.Run()
	if !done {
		t.Fatal("access never completed")
	}
	// Requested line now in NM.
	if loc := c.Locate(fmAddr); loc.Level != stats.NM || loc.DevAddr != 0 {
		t.Fatalf("after swap Locate = %+v, want NM slot 0", loc)
	}
	// The displaced NM line sits at the requested line's old FM home.
	if loc := c.Locate(0); loc.Level != stats.FM || loc.DevAddr != 0 {
		t.Fatalf("victim Locate = %+v, want FM home 0", loc)
	}
	if sys.Stats.ServicedFM != 1 || sys.Stats.ServicedNM != 0 {
		t.Fatalf("serviced NM=%d FM=%d", sys.Stats.ServicedNM, sys.Stats.ServicedFM)
	}
	// Second access to the same line is an NM hit.
	c.Handle(&mem.Access{PAddr: fmAddr})
	eng.Run()
	if sys.Stats.ServicedNM != 1 {
		t.Fatal("second access not serviced from NM")
	}
}

func TestAccessRateGrowsWithTemporalLocality(t *testing.T) {
	eng, sys := newTestSystem()
	c := New(sys, config.CAMEOConfig{})
	rng := rand.New(rand.NewSource(2))
	hot := make([]uint64, 64)
	for i := range hot {
		hot[i] = uint64(4<<20) + uint64(i)*64*13 // FM addresses
	}
	for i := 0; i < 4000; i++ {
		c.Handle(&mem.Access{PAddr: hot[rng.Intn(len(hot))]})
		eng.Run()
	}
	if ar := sys.Stats.AccessRate(); ar < 0.9 {
		t.Fatalf("hot-set access rate = %.3f, want > 0.9", ar)
	}
}

func TestConflictThrashing(t *testing.T) {
	// Two FM lines in the same congruence group ping-pong: every access
	// misses (CAMEO's direct-mapped weakness, §II-B).
	eng, sys := newTestSystem()
	c := New(sys, config.CAMEOConfig{})
	slots := memunits.SubblocksIn(sys.NMCap)
	a1 := uint64(4 << 20)          // group 0, member 1
	a2 := uint64(4<<20) + slots*64 // group 0, member 2
	for i := 0; i < 10; i++ {
		c.Handle(&mem.Access{PAddr: a1})
		eng.Run()
		c.Handle(&mem.Access{PAddr: a2})
		eng.Run()
	}
	if sys.Stats.ServicedNM != 0 {
		t.Fatalf("conflicting lines produced %d NM hits, want 0", sys.Stats.ServicedNM)
	}
}

func TestWriteAllocatesInNM(t *testing.T) {
	eng, sys := newTestSystem()
	c := New(sys, config.CAMEOConfig{})
	fmAddr := uint64(5 << 20)
	done := false
	c.Handle(&mem.Access{PAddr: fmAddr, Write: true, Done: func() { done = true }})
	eng.Run()
	if !done {
		t.Fatal("write never acknowledged")
	}
	if loc := c.Locate(fmAddr); loc.Level != stats.NM {
		t.Fatalf("written line not in NM: %+v", loc)
	}
	// No FM read should have happened for a full-line write.
	if sys.FM.Stats().Reads != 0 {
		t.Fatalf("full-line write read FM %d times", sys.FM.Stats().Reads)
	}
}

func TestPrefetcherPullsNeighbors(t *testing.T) {
	eng, sys := newTestSystem()
	c := New(sys, config.CAMEOConfig{PrefetchLines: 3})
	if c.Name() != "camp" {
		t.Fatalf("Name = %s", c.Name())
	}
	fmAddr := uint64(6 << 20)
	c.Handle(&mem.Access{PAddr: fmAddr})
	eng.Run()
	for i := uint64(0); i <= 3; i++ {
		if loc := c.Locate(fmAddr + i*64); loc.Level != stats.NM {
			t.Fatalf("line +%d not prefetched into NM: %+v", i, loc)
		}
	}
	// Subsequent sequential accesses hit NM.
	for i := uint64(1); i <= 3; i++ {
		c.Handle(&mem.Access{PAddr: fmAddr + i*64})
		eng.Run()
	}
	if sys.Stats.ServicedNM != 3 {
		t.Fatalf("sequential NM hits = %d, want 3", sys.Stats.ServicedNM)
	}
	// Prefetching consumed migration bandwidth.
	if sys.Stats.Bytes[stats.NM][stats.Migration] == 0 {
		t.Fatal("no migration traffic recorded for prefetches")
	}
}

func TestOriginalCAMEONoPrefetch(t *testing.T) {
	eng, sys := newTestSystem()
	c := New(sys, config.CAMEOConfig{})
	if c.Name() != "cam" {
		t.Fatalf("Name = %s", c.Name())
	}
	c.Handle(&mem.Access{PAddr: 6 << 20})
	eng.Run()
	if loc := c.Locate(6<<20 + 64); loc.Level != stats.FM {
		t.Fatal("original CAMEO must not prefetch")
	}
}

// Property: after any access sequence the location mapping stays a
// bijection (flat memory never loses or duplicates a line).
func TestMappingStaysBijective(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		eng := sim.NewEngine()
		m := config.Small()
		m.NM = config.HBM(1 << 20)
		m.FM = config.DDR3(4 << 20)
		sys := mem.NewSystem(m, eng)
		c := New(sys, config.CAMEOConfig{PrefetchLines: int(seed % 4)})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n)+20; i++ {
			pa := uint64(rng.Intn(5<<20)) &^ 63
			c.Handle(&mem.Access{PAddr: pa, Write: rng.Intn(3) == 0})
		}
		eng.Run()
		return mem.AuditSample(c, sys.NMCap, sys.FMCap, 7) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFullAuditSmall(t *testing.T) {
	eng := sim.NewEngine()
	m := config.Small()
	m.NM = config.HBM(256 << 10)
	m.FM = config.DDR3(1 << 20)
	sys := mem.NewSystem(m, eng)
	c := New(sys, config.CAMEOConfig{PrefetchLines: 3})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		c.Handle(&mem.Access{PAddr: uint64(rng.Intn(1280<<10)) &^ 63, Write: rng.Intn(4) == 0})
	}
	eng.Run()
	if err := mem.Audit(c, sys.NMCap, sys.FMCap); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataTrafficAccounted(t *testing.T) {
	eng, sys := newTestSystem()
	c := New(sys, config.CAMEOConfig{})
	c.Handle(&mem.Access{PAddr: 0}) // NM hit: extended burst carries remap
	eng.Run()
	if sys.Stats.Bytes[stats.NM][stats.Metadata] != remapEntrySize {
		t.Fatalf("metadata bytes = %d, want %d", sys.Stats.Bytes[stats.NM][stats.Metadata], remapEntrySize)
	}
}
