// Package flat implements the two non-migrating schemes of the paper's
// evaluation:
//
//   - Baseline: the normalization point of every figure — a system without
//     die-stacked DRAM at all. Every access is serviced by far memory.
//   - Random: NM and FM both OS-visible, pages placed randomly with no
//     regard to bandwidth/latency differences and never migrated (the
//     "rand" bar of Figures 6 and 7). The random placement itself is done
//     by the vm package's PolicyRandom; this controller simply routes by
//     address.
package flat

import (
	"silcfm/internal/mem"
	"silcfm/internal/stats"
)

// Baseline services everything from FM. Flat addresses are FM-local
// (the machine has no NM range).
type Baseline struct {
	sys *mem.System
}

// NewBaseline builds the no-NM controller.
func NewBaseline(sys *mem.System) *Baseline { return &Baseline{sys: sys} }

// Name implements mem.Controller.
func (b *Baseline) Name() string { return "base" }

// Handle implements mem.Controller.
func (b *Baseline) Handle(a *mem.Access) {
	b.sys.Stats.LLCMisses++
	b.sys.ServiceAccess(a, b.Locate(a.PAddr), stats.PathFM)
}

// Locate implements mem.Controller: identity into FM.
func (b *Baseline) Locate(pa uint64) mem.Location {
	return mem.Location{Level: stats.FM, DevAddr: pa}
}

// Static routes by the flat address with no remapping: accesses to the NM
// range go to NM, the rest to FM. Combined with random page placement it is
// the paper's Random scheme; combined with interleaved placement it is the
// "static placement scheme without data migration" that SILC-FM's headline
// 82% improvement is measured against.
type Static struct {
	sys *mem.System
}

// NewStatic builds the static-placement controller.
func NewStatic(sys *mem.System) *Static { return &Static{sys: sys} }

// Name implements mem.Controller.
func (s *Static) Name() string { return "rand" }

// Handle implements mem.Controller.
func (s *Static) Handle(a *mem.Access) {
	s.sys.Stats.LLCMisses++
	loc := s.Locate(a.PAddr)
	path := stats.PathFM
	if loc.Level == stats.NM {
		path = stats.PathNMHit
	}
	s.sys.ServiceAccess(a, loc, path)
}

// Locate implements mem.Controller: the home mapping.
func (s *Static) Locate(pa uint64) mem.Location { return s.sys.HomeLocation(pa) }
