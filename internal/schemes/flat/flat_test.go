package flat

import (
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
)

func TestBaselineAllFM(t *testing.T) {
	m := config.Small()
	m.Scheme = config.SchemeBaseline
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	b := NewBaseline(sys)
	if b.Name() != "base" {
		t.Fatal("name")
	}
	done := 0
	for i := uint64(0); i < 10; i++ {
		b.Handle(&mem.Access{PAddr: i * 4096, Done: func() { done++ }})
	}
	eng.Run()
	if done != 10 {
		t.Fatalf("done = %d", done)
	}
	if sys.Stats.ServicedFM != 10 || sys.Stats.ServicedNM != 0 {
		t.Fatalf("baseline serviced NM=%d FM=%d", sys.Stats.ServicedNM, sys.Stats.ServicedFM)
	}
	if sys.NM.Stats().Reads != 0 {
		t.Fatal("baseline touched NM")
	}
	if loc := b.Locate(12345 &^ 63); loc.Level != stats.FM || loc.DevAddr != 12345&^63 {
		t.Fatalf("Locate: %+v", loc)
	}
}

func TestStaticRoutesByAddress(t *testing.T) {
	m := config.Small() // NM 4MB
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	s := NewStatic(sys)
	if s.Name() != "rand" {
		t.Fatal("name")
	}
	s.Handle(&mem.Access{PAddr: 64})      // NM range
	s.Handle(&mem.Access{PAddr: 5 << 20}) // FM range
	s.Handle(&mem.Access{PAddr: 6 << 20, Write: true})
	eng.Run()
	if sys.Stats.ServicedNM != 1 || sys.Stats.ServicedFM != 2 {
		t.Fatalf("serviced NM=%d FM=%d", sys.Stats.ServicedNM, sys.Stats.ServicedFM)
	}
	if sys.Stats.AccessRate() < 0.3 || sys.Stats.AccessRate() > 0.34 {
		t.Fatalf("access rate %f", sys.Stats.AccessRate())
	}
	if err := mem.Audit(s, sys.NMCap, sys.FMCap); err != nil {
		t.Fatal(err)
	}
}
