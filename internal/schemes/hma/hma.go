// Package hma implements the epoch-based OS-managed scheme the paper uses
// as its software baseline (§II-C, HMA). The OS counts page accesses
// through PTE reference bits; at each epoch boundary it sweeps the counters,
// selects pages whose count crossed a threshold, and bulk-migrates them
// into NM — paying per-page software costs (PTE updates, TLB shootdowns)
// plus the bulk transfer itself, during which demand accesses stall. NM is
// an OS-reserved region: first-touch allocation places application pages in
// FM only (vm.PolicyFMFirst) and only epoch migration fills NM.
//
// The OS work (PTE updates, TLB shootdowns, counter sweep) stalls demand
// for its duration; the bulk page copies themselves are issued as
// background-priority DMA transfers that compete for device bandwidth
// without ever delaying demand reads. See DESIGN.md.
package hma

import (
	"sort"

	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/stats"
)

// Controller is the epoch-based OS scheme.
type Controller struct {
	sys *mem.System
	cfg config.HMAConfig

	nmBlocks uint64
	total    uint64

	cur []uint32 // cur[flat block] = location block
	inv []uint32 // inv[location block] = flat block
	ctr []uint32 // per-flat-block access count within the epoch
	// used[flat block]: the block has been demand-accessed at least once.
	// A "free" NM frame whose resident was used holds live data, so the
	// one-way migration copy may not reuse it.
	used []bool

	freeNM []uint32 // NM location blocks never yet filled

	nextEpoch    uint64
	blockedUntil uint64
	epochs       uint64 // epoch sweeps run so far
	stalled      uint64 // demands deferred behind OS epoch work

	// MaxMigratePerEpoch caps the OS migration batch (a real OS bounds its
	// stop-the-world work). Exported for tests.
	MaxMigratePerEpoch int
}

// New builds an HMA controller over sys.
func New(sys *mem.System, cfg config.HMAConfig) *Controller {
	nmBlocks := memunits.BlocksIn(sys.NMCap)
	total := memunits.BlocksIn(sys.NMCap + sys.FMCap)
	c := &Controller{
		sys:                sys,
		cfg:                cfg,
		nmBlocks:           nmBlocks,
		total:              total,
		cur:                make([]uint32, total),
		inv:                make([]uint32, total),
		ctr:                make([]uint32, total),
		used:               make([]bool, total),
		nextEpoch:          cfg.EpochCycles,
		MaxMigratePerEpoch: 8192,
	}
	for b := uint64(0); b < total; b++ {
		c.cur[b] = uint32(b)
		c.inv[b] = uint32(b)
	}
	c.freeNM = make([]uint32, 0, nmBlocks)
	for f := uint64(0); f < nmBlocks; f++ {
		c.freeNM = append(c.freeNM, uint32(f))
	}
	return c
}

// Name implements mem.Controller.
func (c *Controller) Name() string { return "hma" }

// Locate implements mem.Controller.
func (c *Controller) Locate(pa uint64) mem.Location {
	loc := uint64(c.cur[memunits.BlockOf(pa)])
	idx := memunits.SubblockIndex(pa)
	if loc < c.nmBlocks {
		return mem.Location{Level: stats.NM, DevAddr: memunits.SubblockAddr(loc, idx)}
	}
	return mem.Location{Level: stats.FM, DevAddr: memunits.SubblockAddr(loc-c.nmBlocks, idx)}
}

// Handle implements mem.Controller.
func (c *Controller) Handle(a *mem.Access) {
	c.sys.Stats.LLCMisses++
	b := memunits.BlockOf(a.PAddr)
	c.ctr[b]++
	c.used[b] = true

	now := c.sys.Eng.Now()
	if now >= c.nextEpoch {
		c.runEpoch(now)
	}
	if c.blockedUntil > now {
		// Bulk migration in progress: the request stalls behind it. Path
		// classification (and the latency clock, which started at Handle
		// entry) happens at deferred-service time so the OS stall is
		// charged to whichever level finally services the demand.
		c.stalled++
		a.AddSpan(stats.SpanSwapSerial, c.blockedUntil-now)
		c.sys.Eng.At(c.blockedUntil, func() {
			c.service(a)
		})
		return
	}
	c.service(a)
}

// service routes a demand to its current location.
func (c *Controller) service(a *mem.Access) {
	loc := c.Locate(a.PAddr)
	path := stats.PathFM
	if loc.Level == stats.NM {
		path = stats.PathNMHit
	}
	c.sys.ServiceAccess(a, loc, path)
}

// Gauges implements mem.GaugeProvider.
func (c *Controller) Gauges() []mem.Gauge {
	usable := 0
	for _, f := range c.freeNM {
		if !c.used[c.inv[f]] {
			usable++
		}
	}
	blocked := 0.0
	if c.blockedUntil > c.sys.Eng.Now() {
		blocked = 1
	}
	return []mem.Gauge{
		{Name: "epochs", Value: float64(c.epochs)},
		{Name: "free_nm_frames", Value: float64(usable)},
		{Name: "os_blocked", Value: blocked},
		{Name: "stalled_demands", Value: float64(c.stalled)},
	}
}

// runEpoch sweeps counters, migrates hot FM pages into NM (possibly
// swapping out cold NM residents) and charges software + transfer costs.
func (c *Controller) runEpoch(now uint64) {
	for now >= c.nextEpoch {
		c.nextEpoch += c.cfg.EpochCycles
	}
	c.epochs++

	// Hot FM-resident pages, hottest first.
	type cand struct {
		blk uint32
		cnt uint32
	}
	var hot []cand
	for b := uint64(0); b < c.total; b++ {
		if c.ctr[b] >= c.cfg.HotThreshold && uint64(c.cur[b]) >= c.nmBlocks {
			hot = append(hot, cand{uint32(b), c.ctr[b]})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].cnt != hot[j].cnt {
			return hot[i].cnt > hot[j].cnt
		}
		return hot[i].blk < hot[j].blk
	})
	if len(hot) > c.MaxMigratePerEpoch {
		hot = hot[:c.MaxMigratePerEpoch]
	}

	// Cold NM residents, coldest first, for swap-out. Only frames whose
	// resident was never touched are usable as free targets.
	usable := 0
	for _, f := range c.freeNM {
		if !c.used[c.inv[f]] {
			usable++
		}
	}
	var cold []cand
	if len(hot) > usable {
		for loc := uint64(0); loc < c.nmBlocks; loc++ {
			b := c.inv[loc]
			cold = append(cold, cand{b, c.ctr[b]})
		}
		sort.Slice(cold, func(i, j int) bool {
			if cold[i].cnt != cold[j].cnt {
				return cold[i].cnt < cold[j].cnt
			}
			return cold[i].blk < cold[j].blk
		})
	}

	migrated := 0
	coldIdx := 0
	for _, h := range hot {
		if frame, ok := c.popFreeFrame(); ok {
			// One-way copy: the displaced flat NM block holds no live data
			// (never accessed), so nothing needs to move the other way.
			c.sys.RelocateBlockDMA(c.locOf(uint64(c.cur[h.blk])), c.locOf(uint64(frame)), nil)
			c.swapBlocks(uint64(h.blk), uint64(c.inv[frame]))
			migrated++
			continue
		}
		// Swap with the coldest NM resident that is colder than h.
		for coldIdx < len(cold) && uint64(c.cur[cold[coldIdx].blk]) >= c.nmBlocks {
			coldIdx++ // already displaced this epoch
		}
		if coldIdx >= len(cold) || cold[coldIdx].cnt >= h.cnt {
			break
		}
		x, y := uint64(h.blk), uint64(cold[coldIdx].blk)
		c.sys.ExchangeBlocksDMA(c.locOf(uint64(c.cur[x])), c.locOf(uint64(c.cur[y])), nil)
		c.swapBlocks(x, y)
		coldIdx++
		migrated++
	}

	// Costs: the OS work (PTE updates, TLB shootdowns, sweep) stalls the
	// machine; the bulk page copies are DMA transfers issued at background
	// priority, competing for bandwidth without blocking demand reads.
	os := c.cfg.EpochFixedOverhead + uint64(migrated)*c.cfg.PerPageOSOverhead
	c.sys.Stats.OSOverheadCycles += os
	c.blockedUntil = now + os
	c.sys.Stats.Migrations += uint64(migrated)

	for i := range c.ctr {
		c.ctr[i] = 0
	}
}

// popFreeFrame returns an NM frame usable as a one-way migration target: a
// frame whose resident flat block was never demand-accessed. Frames whose
// resident has been touched hold live data and are discarded from the free
// list (only a two-way swap may displace them).
func (c *Controller) popFreeFrame() (uint32, bool) {
	for n := len(c.freeNM); n > 0; n = len(c.freeNM) {
		frame := c.freeNM[n-1]
		c.freeNM = c.freeNM[:n-1]
		if !c.used[c.inv[frame]] {
			return frame, true
		}
	}
	return 0, false
}

// locOf returns the device location of location-block loc.
func (c *Controller) locOf(loc uint64) mem.Location {
	if loc < c.nmBlocks {
		return mem.Location{Level: stats.NM, DevAddr: memunits.BlockBase(loc)}
	}
	return mem.Location{Level: stats.FM, DevAddr: memunits.BlockBase(loc - c.nmBlocks)}
}

// swapBlocks exchanges the locations of flat blocks x and y.
func (c *Controller) swapBlocks(x, y uint64) {
	lx, ly := c.cur[x], c.cur[y]
	c.cur[x], c.cur[y] = ly, lx
	c.inv[lx], c.inv[ly] = uint32(y), uint32(x)
}
