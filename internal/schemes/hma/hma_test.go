package hma

import (
	"math/rand"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
)

func newTest(epoch uint64, thresh uint32) (*sim.Engine, *mem.System, *Controller) {
	m := config.Small() // NM 4MB, FM 16MB
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	cfg := config.HMAConfig{
		EpochCycles:        epoch,
		HotThreshold:       thresh,
		PerPageOSOverhead:  1000,
		EpochFixedOverhead: 5000,
	}
	return eng, sys, New(sys, cfg)
}

// fmAddr returns the i-th FM page's base address.
func fmAddr(i int) uint64 { return 4<<20 + uint64(i)*memunits.BlockSize }

func TestNoMigrationWithinEpoch(t *testing.T) {
	eng, sys, c := newTest(1<<20, 4)
	for i := 0; i < 100; i++ {
		c.Handle(&mem.Access{PAddr: fmAddr(0)})
		eng.Run()
	}
	if loc := c.Locate(fmAddr(0)); loc.Level != stats.NM {
		// Still FM resident: migration only at epoch boundaries.
		if sys.Stats.Migrations != 0 {
			t.Fatal("migration before epoch boundary")
		}
	} else {
		t.Fatal("page moved to NM before epoch boundary")
	}
	if sys.Stats.ServicedNM != 0 {
		t.Fatal("nothing should be NM-serviced before the first epoch")
	}
}

func TestEpochMigratesHotPages(t *testing.T) {
	eng, sys, c := newTest(50000, 4)
	// Heat up pages 0..9 within the first epoch.
	for i := 0; i < 100; i++ {
		c.Handle(&mem.Access{PAddr: fmAddr(i % 10)})
		eng.Run()
	}
	if eng.Now() >= 50000 {
		t.Fatal("warmup overran the first epoch; enlarge EpochCycles")
	}
	// Cross the epoch boundary and touch once to trigger the sweep.
	eng.At(60000, func() { c.Handle(&mem.Access{PAddr: fmAddr(0)}) })
	eng.Run()
	for i := 0; i < 10; i++ {
		if loc := c.Locate(fmAddr(i)); loc.Level != stats.NM {
			t.Fatalf("hot page %d not migrated: %+v", i, loc)
		}
	}
	if sys.Stats.Migrations != 10 {
		t.Fatalf("Migrations = %d, want 10", sys.Stats.Migrations)
	}
	if sys.Stats.OSOverheadCycles == 0 {
		t.Fatal("no OS overhead charged")
	}
	if sys.Stats.Bytes[stats.NM][stats.Migration] == 0 {
		t.Fatal("no migration bytes accounted")
	}
}

func TestColdPagesStayInFM(t *testing.T) {
	eng, _, c := newTest(1000, 50)
	for i := 0; i < 200; i++ {
		c.Handle(&mem.Access{PAddr: fmAddr(i)}) // each page touched once
		eng.Run()
	}
	eng.At(5000, func() { c.Handle(&mem.Access{PAddr: fmAddr(0)}) })
	eng.Run()
	moved := 0
	for i := 0; i < 200; i++ {
		if c.Locate(fmAddr(i)).Level == stats.NM {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d below-threshold pages migrated", moved)
	}
}

func TestMigrationStallsDemand(t *testing.T) {
	eng, _, c := newTest(20000, 2)
	for i := 0; i < 50; i++ {
		c.Handle(&mem.Access{PAddr: fmAddr(i % 5)})
		eng.Run()
	}
	if eng.Now() >= 20000 {
		t.Fatal("warmup overran the first epoch")
	}
	// Trigger the epoch: this access pays the migration stall.
	var doneAt uint64
	eng.At(25000, func() {
		c.Handle(&mem.Access{PAddr: fmAddr(100), Done: func() { doneAt = eng.Now() }})
	})
	eng.Run()
	// 5 migrations x 1000 per-page + 5000 fixed = at least 10000 cycles.
	if doneAt < 25000+10000 {
		t.Fatalf("demand at epoch completed at %d; expected stall past %d", doneAt, 25000+10000)
	}
}

func TestSwapOutColdForHot(t *testing.T) {
	// Fill NM completely, then heat a new set of pages: the next epoch
	// must swap cold residents out.
	m := config.Small()
	m.NM = config.HBM(64 << 10) // 32 frames
	m.FM = config.DDR3(256 << 10)
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	c := New(sys, config.HMAConfig{EpochCycles: 1000, HotThreshold: 2, PerPageOSOverhead: 10, EpochFixedOverhead: 10})

	fmBase := uint64(64 << 10)
	page := func(i int) uint64 { return fmBase + uint64(i)*memunits.BlockSize }
	// Epoch 1: heat pages 0..31 (fills all 32 NM frames).
	for r := 0; r < 4; r++ {
		for i := 0; i < 32; i++ {
			c.Handle(&mem.Access{PAddr: page(i)})
		}
	}
	eng.Run()
	eng.At(1100, func() { c.Handle(&mem.Access{PAddr: page(0)}) })
	eng.Run()
	// Epoch 2: heat pages 40..49 much hotter than the old set.
	for r := 0; r < 8; r++ {
		for i := 40; i < 50; i++ {
			c.Handle(&mem.Access{PAddr: page(i)})
		}
	}
	eng.Run()
	eng.At(50000, func() { c.Handle(&mem.Access{PAddr: page(0)}) })
	eng.Run()
	inNM := 0
	for i := 40; i < 50; i++ {
		if c.Locate(page(i)).Level == stats.NM {
			inNM++
		}
	}
	if inNM != 10 {
		t.Fatalf("only %d/10 newly hot pages swapped into full NM", inNM)
	}
	if err := mem.Audit(c, sys.NMCap, sys.FMCap); err != nil {
		t.Fatal(err)
	}
}

func TestMigrationCapRespected(t *testing.T) {
	eng, sys, c := newTest(1000, 1)
	c.MaxMigratePerEpoch = 5
	for i := 0; i < 50; i++ {
		c.Handle(&mem.Access{PAddr: fmAddr(i)})
		c.Handle(&mem.Access{PAddr: fmAddr(i)})
	}
	eng.Run()
	eng.At(2000, func() { c.Handle(&mem.Access{PAddr: fmAddr(200)}) })
	eng.Run()
	if sys.Stats.Migrations != 5 {
		t.Fatalf("Migrations = %d, want cap 5", sys.Stats.Migrations)
	}
}

func TestAuditAfterRandomTraffic(t *testing.T) {
	m := config.Small()
	m.NM = config.HBM(256 << 10)
	m.FM = config.DDR3(1 << 20)
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	c := New(sys, config.HMAConfig{EpochCycles: 5000, HotThreshold: 3, PerPageOSOverhead: 10, EpochFixedOverhead: 10})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		pa := uint64(256<<10) + uint64(rng.Intn(1<<20))&^63
		c.Handle(&mem.Access{PAddr: pa, Write: rng.Intn(4) == 0})
		if i%500 == 0 {
			eng.Run()
		}
	}
	eng.Run()
	if err := mem.Audit(c, sys.NMCap, sys.FMCap); err != nil {
		t.Fatal(err)
	}
	if sys.Stats.Migrations == 0 {
		t.Fatal("no migrations under hot traffic")
	}
}

func TestCountersResetEachEpoch(t *testing.T) {
	eng, sys, c := newTest(1000, 10)
	// 6 accesses in epoch 1, 6 in epoch 2: never crosses 10 in one epoch.
	for i := 0; i < 6; i++ {
		c.Handle(&mem.Access{PAddr: fmAddr(3)})
	}
	eng.Run()
	eng.At(1200, func() {
		for i := 0; i < 6; i++ {
			c.Handle(&mem.Access{PAddr: fmAddr(3)})
		}
	})
	eng.Run()
	eng.At(2400, func() { c.Handle(&mem.Access{PAddr: fmAddr(3)}) })
	eng.Run()
	if sys.Stats.Migrations != 0 {
		t.Fatal("stale counts accumulated across epochs")
	}
}

// TestPopFreeFrameSkipsUsedResidents: a frame still on the free list whose
// resident flat block has been demand-accessed holds live data and must not
// be handed out as a one-way migration target.
func TestPopFreeFrameSkipsUsedResidents(t *testing.T) {
	eng, sys, c := newTest(1000, 1)
	_ = eng
	_ = sys
	// Touch the flat NM blocks resident in the two frames at the top of the
	// free stack (pop order is LIFO).
	n := len(c.freeNM)
	top, next := c.freeNM[n-1], c.freeNM[n-2]
	c.used[c.inv[top]] = true
	c.used[c.inv[next]] = true
	frame, ok := c.popFreeFrame()
	if !ok {
		t.Fatal("free frames exhausted")
	}
	if frame == top || frame == next {
		t.Fatalf("popFreeFrame returned frame %d with a live resident", frame)
	}
	if !c.used[c.inv[frame]] && len(c.freeNM) != n-3 {
		t.Fatalf("used frames not discarded: %d left, want %d", len(c.freeNM), n-3)
	}
	// Exhaustion path: mark everything used.
	for i := range c.used {
		c.used[i] = true
	}
	if _, ok := c.popFreeFrame(); ok {
		t.Fatal("popFreeFrame handed out a live frame")
	}
	if len(c.freeNM) != 0 {
		t.Fatal("free list not drained on exhaustion")
	}
}

func TestName(t *testing.T) {
	_, _, c := newTest(1000, 1)
	if c.Name() != "hma" {
		t.Fatal("name")
	}
}
