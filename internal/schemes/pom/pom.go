// Package pom implements Part of Memory (PoM, §II-B): remapping between NM
// and FM at large-block (2 KB) granularity. A far-memory block must
// accumulate enough accesses to cross a migration threshold before it is
// exchanged with an NM block of its congruence set, amortizing the cost of
// moving all 32 subblocks; until then it is serviced from FM. This captures
// both PoM properties the paper contrasts with: it misses early
// opportunities (threshold wait) and it wastes bandwidth on unused
// subblocks in low-spatial-locality workloads.
//
// The remap granularity is a congruence set holding cfg.Ways NM frames and
// the FM blocks congruent to them (the paper's related work §VI notes PoM
// and other page-based designs also saw benefits from associativity; the
// default remains direct-mapped as in §II-B). The remap table is modeled as
// SRAM-resident (the PoM paper caches it on-chip; we charge no DRAM traffic
// for it — see DESIGN.md).
package pom

import (
	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/stats"
)

// Controller is the PoM scheme.
type Controller struct {
	sys     *mem.System
	nmBlks  uint64 // NM large blocks
	sets    uint64 // congruence sets = nmBlks / ways
	ways    int    // NM frames per set
	members int    // blocks per set (ways NM + congruent FM)
	thresh  uint32

	// perm[s*members+m] = location index of member m in set s. Locations
	// 0..ways-1 are the set's NM frames; locations >= ways are the FM
	// homes of members ways, ways+1, ...
	perm []uint16
	// ctr[flat block] = accesses since last migration/decay.
	ctr []uint16

	accesses uint64 // for periodic counter decay
	decayAt  uint64
}

// New builds a PoM controller.
func New(sys *mem.System, cfg config.PoMConfig) *Controller {
	nmBlks := memunits.BlocksIn(sys.NMCap)
	total := memunits.BlocksIn(sys.NMCap + sys.FMCap)
	ways := cfg.Ways
	if ways <= 0 {
		ways = 1
	}
	if uint64(ways) > nmBlks {
		ways = int(nmBlks)
	}
	sets := nmBlks / uint64(ways)
	members := int(total / sets)
	c := &Controller{
		sys:     sys,
		nmBlks:  nmBlks,
		sets:    sets,
		ways:    ways,
		members: members,
		thresh:  cfg.MigrationThreshold,
		perm:    make([]uint16, sets*uint64(members)),
		ctr:     make([]uint16, total),
		decayAt: 1 << 18,
	}
	for s := uint64(0); s < sets; s++ {
		for m := 0; m < members; m++ {
			c.perm[s*uint64(members)+uint64(m)] = uint16(m)
		}
	}
	return c
}

// Name implements mem.Controller.
func (c *Controller) Name() string { return "pom" }

// set decomposes a flat block: member 0..ways-1 are the NM blocks congruent
// to set s; members >= ways are its FM blocks. A flat block b belongs to
// set b mod sets; its member index is b / sets.
func (c *Controller) set(b uint64) (s uint64, member int) {
	return b % c.sets, int(b / c.sets)
}

func (c *Controller) locationOf(s uint64, m int) int {
	return int(c.perm[s*uint64(c.members)+uint64(m)])
}

// blockOfLocation returns the flat block number whose home is location loc
// of set s (the inverse of set()).
func (c *Controller) blockOfLocation(s uint64, loc int) uint64 {
	return uint64(loc)*c.sets + s
}

// locAddr converts (set, location, subblock index) to a device location.
func (c *Controller) locAddr(s uint64, loc int, idx uint) mem.Location {
	blk := c.blockOfLocation(s, loc)
	if blk < c.nmBlks {
		return mem.Location{Level: stats.NM, DevAddr: memunits.SubblockAddr(blk, idx)}
	}
	return mem.Location{Level: stats.FM, DevAddr: memunits.SubblockAddr(blk-c.nmBlks, idx)}
}

// inNM reports whether a location index is one of the set's NM frames.
func (c *Controller) inNM(loc int) bool { return loc < c.ways }

// Locate implements mem.Controller.
func (c *Controller) Locate(pa uint64) mem.Location {
	s, m := c.set(memunits.BlockOf(pa))
	return c.locAddr(s, c.locationOf(s, m), memunits.SubblockIndex(pa))
}

// Handle implements mem.Controller.
func (c *Controller) Handle(a *mem.Access) {
	c.sys.Stats.LLCMisses++
	b := memunits.BlockOf(a.PAddr)
	idx := memunits.SubblockIndex(a.PAddr)
	s, m := c.set(b)
	loc := c.locationOf(s, m)

	c.maybeDecay()
	c.bumpCtr(b)

	if c.inNM(loc) {
		c.sys.ServiceAccess(a, c.locAddr(s, loc, idx), stats.PathNMHit)
		return
	}

	// FM resident: service demand from FM, then check the threshold. The
	// bulk migration runs after the demand is serviced, so the demand
	// itself never rides the swap critical path (PoM's threshold wait).
	c.sys.ServiceAccess(a, c.locAddr(s, loc, idx), stats.PathFM)
	if uint32(c.ctr[b]) >= c.thresh {
		c.migrate(s, m, loc)
		c.ctr[b] = 0
	}
}

// Gauges implements mem.GaugeProvider. The remapped-block count scans the
// permutation tables; it runs only at telemetry epoch granularity.
func (c *Controller) Gauges() []mem.Gauge {
	remapped := 0
	for s := uint64(0); s < c.sets; s++ {
		base := s * uint64(c.members)
		for m := 0; m < c.members; m++ {
			if c.inNM(int(c.perm[base+uint64(m)])) != (m < c.ways) {
				remapped++
			}
		}
	}
	// Each exchanged pair contributes two moved members; report blocks
	// promoted into NM.
	return []mem.Gauge{
		{Name: "promoted_blocks", Value: float64(remapped) / 2},
		{Name: "nm_occupied_fraction", Value: float64(remapped) / 2 / float64(c.nmBlks)},
	}
}

func (c *Controller) bumpCtr(b uint64) {
	if c.ctr[b] < ^uint16(0) {
		c.ctr[b]++
	}
}

// migrate exchanges the full 2 KB block at FM location loc (member m of
// set s) with the coldest NM frame of the set, one subblock pair at a time
// so the transfer spreads over channels like real traffic. With the
// default direct-mapped configuration, the single NM frame is the victim.
func (c *Controller) migrate(s uint64, m, loc int) {
	// Coldest NM frame = the NM location whose resident member has the
	// lowest counter.
	victimLoc := 0
	var victimCnt uint16 = ^uint16(0)
	victimMember := -1
	base := s * uint64(c.members)
	for r := 0; r < c.members; r++ {
		l := int(c.perm[base+uint64(r)])
		if !c.inNM(l) {
			continue
		}
		cnt := c.ctr[c.memberBlock(s, r)]
		if cnt < victimCnt {
			victimCnt = cnt
			victimLoc = l
			victimMember = r
		}
	}
	if victimMember < 0 {
		return // no NM frame in this set (cannot happen with ways >= 1)
	}

	// Swap the permutation entries.
	c.perm[base+uint64(victimMember)] = uint16(loc)
	c.perm[base+uint64(m)] = uint16(victimLoc)

	for idx := uint(0); idx < memunits.SubblocksPerBlock; idx++ {
		c.sys.ExchangeSubblocks(c.locAddr(s, loc, idx), c.locAddr(s, victimLoc, idx), nil)
	}
	c.sys.Stats.Migrations++
	c.sys.Stats.SwapsIn += memunits.SubblocksPerBlock
	c.sys.Stats.SwapsOut += memunits.SubblocksPerBlock
}

// memberBlock returns the flat block number of member m of set s.
func (c *Controller) memberBlock(s uint64, m int) uint64 {
	return uint64(m)*c.sets + s
}

// maybeDecay halves all counters periodically so stale warmth does not
// trigger migrations forever (PoM's benefit/cost estimation ages).
func (c *Controller) maybeDecay() {
	c.accesses++
	if c.accesses%c.decayAt != 0 {
		return
	}
	for i := range c.ctr {
		c.ctr[i] >>= 1
	}
}
