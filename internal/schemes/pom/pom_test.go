package pom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
)

func newTestSystem() (*sim.Engine, *mem.System) {
	m := config.Small() // NM 4MB, FM 16MB
	eng := sim.NewEngine()
	return eng, mem.NewSystem(m, eng)
}

func TestNoMigrationBelowThreshold(t *testing.T) {
	eng, sys := newTestSystem()
	c := New(sys, config.PoMConfig{MigrationThreshold: 16})
	fm := uint64(4 << 20)
	for i := 0; i < 15; i++ {
		c.Handle(&mem.Access{PAddr: fm})
		eng.Run()
	}
	if loc := c.Locate(fm); loc.Level != stats.FM {
		t.Fatalf("block migrated below threshold: %+v", loc)
	}
	if sys.Stats.Migrations != 0 {
		t.Fatal("migration counted below threshold")
	}
	if sys.Stats.ServicedFM != 15 {
		t.Fatalf("ServicedFM = %d", sys.Stats.ServicedFM)
	}
}

func TestMigrationAtThreshold(t *testing.T) {
	eng, sys := newTestSystem()
	c := New(sys, config.PoMConfig{MigrationThreshold: 16})
	fm := uint64(4 << 20)
	for i := 0; i < 16; i++ {
		c.Handle(&mem.Access{PAddr: fm + uint64(i%32)*64})
		eng.Run()
	}
	if loc := c.Locate(fm); loc.Level != stats.NM {
		t.Fatalf("block not migrated at threshold: %+v", loc)
	}
	if sys.Stats.Migrations != 1 {
		t.Fatalf("Migrations = %d", sys.Stats.Migrations)
	}
	// Whole 2KB moved each way: migration bytes >= 2*2048 per level side.
	if sys.Stats.Bytes[stats.NM][stats.Migration] < 2*2048 {
		t.Fatalf("NM migration bytes = %d", sys.Stats.Bytes[stats.NM][stats.Migration])
	}
	// The displaced NM block sits at the migrated block's FM home.
	if loc := c.Locate(0); loc.Level != stats.FM || loc.DevAddr != 0 {
		t.Fatalf("victim at %+v, want FM 0", loc)
	}
	// Post-migration accesses hit NM, including other subblocks of the
	// block (page-granularity benefit).
	before := sys.Stats.ServicedNM
	c.Handle(&mem.Access{PAddr: fm + 31*64})
	eng.Run()
	if sys.Stats.ServicedNM != before+1 {
		t.Fatal("subblock of migrated block not serviced from NM")
	}
}

func TestMigrationWastesBandwidthOnSparseUse(t *testing.T) {
	// Accessing a single subblock repeatedly still moves all 32 subblocks:
	// PoM's bandwidth waste on low spatial locality (§II-B).
	eng, sys := newTestSystem()
	c := New(sys, config.PoMConfig{MigrationThreshold: 4})
	fm := uint64(4 << 20)
	for i := 0; i < 4; i++ {
		c.Handle(&mem.Access{PAddr: fm})
		eng.Run()
	}
	demand := sys.Stats.Bytes[stats.NM][stats.Demand] + sys.Stats.Bytes[stats.FM][stats.Demand]
	mig := sys.Stats.Bytes[stats.NM][stats.Migration] + sys.Stats.Bytes[stats.FM][stats.Migration]
	if mig < 10*demand {
		t.Fatalf("migration bytes %d not >> demand bytes %d", mig, demand)
	}
}

func TestCounterDecay(t *testing.T) {
	eng, sys := newTestSystem()
	c := New(sys, config.PoMConfig{MigrationThreshold: 16})
	c.decayAt = 8
	fm := uint64(4 << 20)
	// 7 accesses, then enough other traffic to trigger decay, then 8 more:
	// the block must NOT migrate (7/2 + 8 = 11 < 16).
	for i := 0; i < 7; i++ {
		c.Handle(&mem.Access{PAddr: fm})
	}
	c.Handle(&mem.Access{PAddr: 0}) // 8th access triggers decay sweep
	for i := 0; i < 8; i++ {
		c.Handle(&mem.Access{PAddr: fm})
	}
	eng.Run()
	if loc := c.Locate(fm); loc.Level != stats.FM {
		t.Fatal("decayed counter still triggered migration")
	}
	_ = sys
}

func TestPermutationAudit(t *testing.T) {
	f := func(seed int64) bool {
		eng := sim.NewEngine()
		m := config.Small()
		m.NM = config.HBM(256 << 10)
		m.FM = config.DDR3(1 << 20)
		sys := mem.NewSystem(m, eng)
		c := New(sys, config.PoMConfig{MigrationThreshold: 3})
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			c.Handle(&mem.Access{PAddr: uint64(rng.Intn(1280<<10)) &^ 63, Write: rng.Intn(4) == 0})
		}
		eng.Run()
		return mem.Audit(c, sys.NMCap, sys.FMCap) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestSubblockOffsetsPreserved(t *testing.T) {
	eng, sys := newTestSystem()
	c := New(sys, config.PoMConfig{MigrationThreshold: 1})
	fm := uint64(4<<20) + 5*memunits.BlockSize + 17*64
	c.Handle(&mem.Access{PAddr: fm})
	eng.Run()
	loc := c.Locate(fm)
	if loc.Level != stats.NM {
		t.Fatalf("not migrated: %+v", loc)
	}
	if loc.DevAddr%memunits.BlockSize != 17*64 {
		t.Fatalf("subblock offset lost: %#x", loc.DevAddr)
	}
	_ = sys
}

func TestName(t *testing.T) {
	_, sys := newTestSystem()
	if New(sys, config.DefaultPoM()).Name() != "pom" {
		t.Fatal("name")
	}
}

func TestAssociativePoMHoldsMultipleHotBlocks(t *testing.T) {
	// With 4 ways, four hot FM blocks congruent to one set coexist in NM;
	// direct-mapped PoM would thrash them through a single frame.
	m := config.Small()
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	c := New(sys, config.PoMConfig{MigrationThreshold: 2, Ways: 4})
	// NM 4MB = 2048 blocks, 4 ways -> 512 sets. FM blocks congruent to set
	// 0 are flat blocks 2048, 2560, 3072, ... (multiples of sets beyond NM).
	fmBlock := func(k int) uint64 { return (2048 + uint64(k)*512) * memunits.BlockSize }
	for k := 0; k < 4; k++ {
		for i := 0; i < 2; i++ {
			c.Handle(&mem.Access{PAddr: fmBlock(k)})
			eng.Run()
		}
	}
	for k := 0; k < 4; k++ {
		if loc := c.Locate(fmBlock(k)); loc.Level != stats.NM {
			t.Fatalf("hot block %d not NM-resident under 4-way PoM: %+v", k, loc)
		}
	}
	if sys.Stats.Migrations != 4 {
		t.Fatalf("Migrations = %d, want 4", sys.Stats.Migrations)
	}
	if err := mem.AuditSample(c, sys.NMCap, sys.FMCap, 13); err != nil {
		t.Fatal(err)
	}
}

func TestAssociativePoMEvictsColdest(t *testing.T) {
	m := config.Small()
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	c := New(sys, config.PoMConfig{MigrationThreshold: 2, Ways: 2})
	// 2 ways -> 1024 sets. Set 0's FM members: 2048, 3072, 4096...
	fmBlock := func(k int) uint64 { return (2048 + uint64(k)*1024) * memunits.BlockSize }
	// Heat block 0 a lot (migrates, stays hot) and block 1 just enough to
	// migrate. Both NM frames now hold them.
	for i := 0; i < 10; i++ {
		c.Handle(&mem.Access{PAddr: fmBlock(0)})
	}
	for i := 0; i < 2; i++ {
		c.Handle(&mem.Access{PAddr: fmBlock(1)})
	}
	eng.Run()
	// A third hot block must displace block 1 (colder), not block 0.
	for i := 0; i < 3; i++ {
		c.Handle(&mem.Access{PAddr: fmBlock(2)})
	}
	eng.Run()
	if loc := c.Locate(fmBlock(0)); loc.Level != stats.NM {
		t.Fatal("hottest block evicted")
	}
	if loc := c.Locate(fmBlock(2)); loc.Level != stats.NM {
		t.Fatal("newly hot block not migrated")
	}
	if loc := c.Locate(fmBlock(1)); loc.Level != stats.FM {
		t.Fatal("coldest resident not the victim")
	}
}
