// Package shadow implements a continuous differential data-integrity
// checker for flat-memory organization schemes. It assigns every flat
// subblock a unique token, mirrors the controller's data movement at device
// granularity by consuming the semantic events a mem.System emits
// (mem.Observer), and verifies on every demand access that the data the
// controller touches is the data the flat address owns. Where mem.Audit
// only proves the Locate mapping is a bijection at one instant, the shadow
// checker also catches ordering and data-loss bugs in the movement paths
// themselves — e.g. a swap that overwrites a location before its old
// contents were read out.
//
// The model: each device subblock slot holds at most one token; moving data
// is "capture" (read the slot's token into a controller-held buffer) then
// "deliver" (write the oldest captured token of that slot elsewhere). A
// write that lands on a slot holding the only live copy of a token that was
// never captured has destroyed data, and is reported immediately.
package shadow

import (
	"fmt"

	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/stats"
)

// noToken marks a device slot that never held flat data (e.g. the idle NM
// device of the no-NM baseline).
const noToken = ^uint32(0)

// defaultSweepEvery is how many demand accesses pass between strided
// Locate-agreement sweeps.
const defaultSweepEvery = 2048

// defaultSweepStride is the sampling stride of the periodic sweep; the
// offset rotates so repeated sweeps cover different tokens.
const defaultSweepStride = 97

// Checker wraps a mem.Controller and implements mem.Observer. Install it
// with New, which hooks it into the System; route Handle calls through the
// wrapper and call Check at quiescence for the full sweep.
type Checker struct {
	inner mem.Controller
	sys   *mem.System

	nmFlatSubs uint64 // flat subblocks homed in NM
	totalSubs  uint64 // total flat subblocks = tokens
	nmDevSubs  uint64 // NM device slots
	fmDevSubs  uint64 // FM device slots

	slot    []uint32 // device slot -> resident token (noToken if none)
	tokenAt []uint64 // token -> slot holding its live copy
	written []bool   // token has carried demand-written data
	// held[slot] queues tokens captured from that slot and not yet
	// delivered; inflight[token] counts its captured copies.
	held     map[uint64][]uint32
	inflight map[uint32]int
	heldCnt  int

	// SweepEvery and SweepStride control the periodic strided sweep; zero
	// values take the defaults.
	SweepEvery  uint64
	SweepStride uint64

	accesses uint64
	events   uint64
	sweeps   uint64
	err      error
}

// New builds a checker over ctl and installs it as sys's observer. nmFlat
// and fmFlat are the flat-address capacities homed in NM and FM (for every
// scheme but the no-NM baseline these are sys.NMCap and sys.FMCap; the
// baseline homes everything in FM, nmFlat = 0).
func New(ctl mem.Controller, sys *mem.System, nmFlat, fmFlat uint64) *Checker {
	k := &Checker{
		inner:      ctl,
		sys:        sys,
		nmFlatSubs: memunits.SubblocksIn(nmFlat),
		totalSubs:  memunits.SubblocksIn(nmFlat + fmFlat),
		nmDevSubs:  memunits.SubblocksIn(sys.NMCap),
		fmDevSubs:  memunits.SubblocksIn(sys.FMCap),
		held:       make(map[uint64][]uint32),
		inflight:   make(map[uint32]int),
	}
	k.slot = make([]uint32, k.nmDevSubs+k.fmDevSubs)
	for i := range k.slot {
		k.slot[i] = noToken
	}
	k.tokenAt = make([]uint64, k.totalSubs)
	k.written = make([]bool, k.totalSubs)
	// Initial placement is the home mapping: token t sits in its flat home
	// slot (NM tokens in NM, FM tokens at their FM device offset).
	for t := uint64(0); t < k.totalSubs; t++ {
		s := t
		if t >= k.nmFlatSubs {
			s = k.nmDevSubs + (t - k.nmFlatSubs)
		}
		k.slot[s] = uint32(t)
		k.tokenAt[t] = s
	}
	sys.AttachObserver(k)
	return k
}

// Name implements mem.Controller.
func (k *Checker) Name() string { return k.inner.Name() }

// Locate implements mem.Controller.
func (k *Checker) Locate(pa uint64) mem.Location { return k.inner.Locate(pa) }

// Inner returns the wrapped controller.
func (k *Checker) Inner() mem.Controller { return k.inner }

// Handle implements mem.Controller: it forwards to the wrapped controller,
// then verifies the access left the model consistent — every captured
// subblock delivered, and Locate agreeing with the shadow placement for the
// accessed address. Periodically it runs a strided sweep over all tokens.
func (k *Checker) Handle(a *mem.Access) {
	k.inner.Handle(a)
	if k.err != nil {
		return
	}
	k.accesses++
	if k.heldCnt != 0 {
		k.failf("%d captured subblock(s) never delivered after access to flat %#x", k.heldCnt, a.PAddr)
		return
	}
	k.checkToken(memunits.SubblockOf(a.PAddr))
	every := k.SweepEvery
	if every == 0 {
		every = defaultSweepEvery
	}
	if k.accesses%every == 0 {
		k.sweep()
	}
}

// Err returns the first integrity violation observed, if any.
func (k *Checker) Err() error { return k.err }

// Accesses returns how many demand accesses the checker has seen.
func (k *Checker) Accesses() uint64 { return k.accesses }

// Events returns how many semantic data-movement events were applied.
func (k *Checker) Events() uint64 { return k.events }

// Check runs the full end-of-run verification: no undelivered captures and
// Locate agreement for every flat subblock. Call at quiescence.
func (k *Checker) Check() error {
	if k.err == nil && k.heldCnt != 0 {
		k.failf("%d captured subblock(s) never delivered at quiescence", k.heldCnt)
	}
	for t := uint64(0); t < k.totalSubs && k.err == nil; t++ {
		k.checkToken(t)
	}
	return k.err
}

// sweep spot-checks Locate agreement over a rotating stride of tokens.
func (k *Checker) sweep() {
	stride := k.SweepStride
	if stride == 0 {
		stride = defaultSweepStride
	}
	for t := k.sweeps % stride; t < k.totalSubs && k.err == nil; t += stride {
		k.checkToken(t)
	}
	k.sweeps++
}

// checkToken verifies the controller's Locate answer for token t's flat
// address against the shadow placement.
func (k *Checker) checkToken(t uint64) {
	if t >= k.totalSubs || k.err != nil {
		return
	}
	pa := memunits.SubblockBase(t)
	s, ok := k.slotOf(k.inner.Locate(pa))
	if !ok {
		k.failf("Locate(%#x) = invalid location", pa)
		return
	}
	if k.tokenAt[t] != s || k.slot[s] != uint32(t) {
		k.failf("Locate(%#x) says %s but the live copy sits at %s (slot holds %s)",
			pa, k.slotName(s), k.slotName(k.tokenAt[t]), k.tokenName(k.slot[s]))
	}
}

// --- mem.Observer ---

// Demand implements mem.Observer: flat address pa's data is accessed at
// loc. Reads must find pa's token there; writes deposit it there, which is
// only legal if the displaced contents are dead or captured.
func (k *Checker) Demand(pa uint64, loc mem.Location, write bool) {
	if k.err != nil {
		return
	}
	k.events++
	t := memunits.SubblockOf(pa)
	if t >= k.totalSubs {
		k.failf("demand to flat %#x beyond flat capacity", pa)
		return
	}
	s, ok := k.slotOf(loc)
	if !ok {
		k.failf("demand for flat %#x at invalid location %s %#x", pa, loc.Level, loc.DevAddr)
		return
	}
	if write {
		k.place(s, uint32(t), fmt.Sprintf("demand write of flat %#x", pa))
		k.written[t] = true
		return
	}
	if k.slot[s] != uint32(t) {
		k.failf("demand read of flat %#x at %s returns %s, not its own data",
			pa, k.slotName(s), k.tokenName(k.slot[s]))
	}
}

// Capture implements mem.Observer: loc's contents are read out and held.
func (k *Checker) Capture(loc mem.Location) {
	if k.err != nil {
		return
	}
	k.events++
	s, ok := k.slotOf(loc)
	if !ok {
		k.failf("capture at invalid location %s %#x", loc.Level, loc.DevAddr)
		return
	}
	v := k.slot[s]
	if v == noToken {
		k.failf("capture of %s, which holds no flat data", k.slotName(s))
		return
	}
	k.held[s] = append(k.held[s], v)
	k.inflight[v]++
	k.heldCnt++
}

// Deliver implements mem.Observer: the oldest captured copy of src lands at
// dst.
func (k *Checker) Deliver(src, dst mem.Location) {
	if k.err != nil {
		return
	}
	k.events++
	ss, ok := k.slotOf(src)
	if !ok {
		k.failf("deliver from invalid location %s %#x", src.Level, src.DevAddr)
		return
	}
	ds, ok := k.slotOf(dst)
	if !ok {
		k.failf("deliver to invalid location %s %#x", dst.Level, dst.DevAddr)
		return
	}
	q := k.held[ss]
	if len(q) == 0 {
		k.failf("deliver from %s without a prior capture (ordering bug)", k.slotName(ss))
		return
	}
	v := q[0]
	if len(q) == 1 {
		delete(k.held, ss)
	} else {
		k.held[ss] = q[1:]
	}
	k.heldCnt--
	if k.inflight[v] == 1 {
		delete(k.inflight, v)
	} else {
		k.inflight[v]--
	}
	k.place(ds, v, fmt.Sprintf("delivery of %s", k.tokenName(v)))
}

// Relocate implements mem.Observer: dst takes src's contents via a one-way
// copy; dst's old contents are dropped, legal only if they never carried
// demand-written data.
func (k *Checker) Relocate(src, dst mem.Location) {
	if k.err != nil {
		return
	}
	k.events++
	ss, ok := k.slotOf(src)
	if !ok {
		k.failf("relocate from invalid location %s %#x", src.Level, src.DevAddr)
		return
	}
	ds, ok := k.slotOf(dst)
	if !ok {
		k.failf("relocate to invalid location %s %#x", dst.Level, dst.DevAddr)
		return
	}
	v := k.slot[ss]
	if v == noToken {
		k.failf("relocate from %s, which holds no flat data", k.slotName(ss))
		return
	}
	old := k.slot[ds]
	if old == v {
		return
	}
	if old != noToken && k.tokenAt[old] == ds {
		if k.written[old] {
			k.failf("relocation into %s destroyed %s's demand-written data", k.slotName(ds), k.tokenName(old))
			return
		}
		// The displaced (never-written) token's nominal home follows the
		// exchange of ownership, mirroring the scheme's remap swap.
		k.slot[ss] = old
		k.tokenAt[old] = ss
	}
	k.slot[ds] = v
	k.tokenAt[v] = ds
}

// place moves token v's live copy to slot s, flagging data loss if s holds
// the only uncaptured live copy of another token.
func (k *Checker) place(s uint64, v uint32, what string) {
	old := k.slot[s]
	if old == v {
		return
	}
	if old != noToken && k.tokenAt[old] == s && k.inflight[old] == 0 {
		k.failf("data loss: %s overwrote %s at %s before it was read out",
			what, k.tokenName(old), k.slotName(s))
		return
	}
	k.slot[s] = v
	k.tokenAt[v] = s
}

// slotOf maps a device location to a global slot index. Locations inside a
// subblock (demand accesses carry byte addresses) map to the slot holding
// them.
func (k *Checker) slotOf(loc mem.Location) (uint64, bool) {
	i := loc.DevAddr / memunits.SubblockSize
	if loc.Level == stats.NM {
		if i >= k.nmDevSubs {
			return 0, false
		}
		return i, true
	}
	if i >= k.fmDevSubs {
		return 0, false
	}
	return k.nmDevSubs + i, true
}

// slotName renders a slot index as a device location for error messages.
func (k *Checker) slotName(s uint64) string {
	if s < k.nmDevSubs {
		return fmt.Sprintf("NM %#x", s*memunits.SubblockSize)
	}
	return fmt.Sprintf("FM %#x", (s-k.nmDevSubs)*memunits.SubblockSize)
}

// tokenName renders a token for error messages.
func (k *Checker) tokenName(t uint32) string {
	if t == noToken {
		return "no data"
	}
	return fmt.Sprintf("flat %#x's data", memunits.SubblockBase(uint64(t)))
}

// failf records the first violation; subsequent events are ignored so the
// report points at the root cause.
func (k *Checker) failf(format string, args ...interface{}) {
	if k.err == nil {
		k.err = fmt.Errorf("shadow[%s] after %d accesses / %d events: %s",
			k.inner.Name(), k.accesses, k.events, fmt.Sprintf(format, args...))
	}
}
