package shadow

import (
	"strings"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/core"
	"silcfm/internal/mem"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
)

// silcRig builds a small SILC-FM controller wrapped by the checker.
func silcRig(t *testing.T, fault bool) (*sim.Engine, *mem.System, *Checker) {
	t.Helper()
	m := config.Small()
	m.NM = config.HBM(256 << 10)
	m.FM = config.DDR3(1 << 20)
	cfg := config.DefaultSILC()
	cfg.Features.Predictor = false // keep the demand path synchronous-ish
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	sys.FaultInjectSwapOrder = fault
	ctl := core.New(sys, cfg)
	return eng, sys, New(ctl, sys, sys.NMCap, sys.FMCap)
}

// fmAddr is the flat address of subblock idx of the i-th FM block.
func fmAddr(sys *mem.System, i uint64, idx uint64) uint64 {
	return sys.NMCap + i*2048 + idx*64
}

func TestCheckerPassesCorrectSwaps(t *testing.T) {
	eng, sys, chk := silcRig(t, false)
	// Interleave a few FM subblocks, swap a home subblock back via a write,
	// and re-read everything.
	for _, idx := range []uint64{3, 7, 11} {
		chk.Handle(&mem.Access{PC: 1, PAddr: fmAddr(sys, 0, idx)})
		eng.Run()
	}
	chk.Handle(&mem.Access{PC: 2, PAddr: 3 * 64, Write: true}) // home of frame 0, swapped out
	eng.Run()
	chk.Handle(&mem.Access{PC: 3, PAddr: fmAddr(sys, 0, 7), Write: true}) // NM-resident write
	eng.Run()
	if err := chk.Err(); err != nil {
		t.Fatal(err)
	}
	if err := chk.Check(); err != nil {
		t.Fatal(err)
	}
	if chk.Events() == 0 {
		t.Fatal("checker observed no events")
	}
}

// TestCheckerFlagsSeededSwapOrderingMutation proves the tentpole claim: with
// the pre-fix write-path ordering reintroduced (demand write lands at the
// destination before its old contents are read out), the checker reports
// data loss on the first write that takes the swap path.
func TestCheckerFlagsSeededSwapOrderingMutation(t *testing.T) {
	eng, sys, chk := silcRig(t, true)
	// Interleave FM block 0's subblock 3 into frame 0 (read), then write to
	// a not-yet-resident subblock of the same block: Table I row 2 with a
	// write takes the swap path, whose mutated ordering destroys the home
	// subblock's only copy.
	chk.Handle(&mem.Access{PC: 1, PAddr: fmAddr(sys, 0, 3)})
	eng.Run()
	chk.Handle(&mem.Access{PC: 1, PAddr: fmAddr(sys, 0, 7), Write: true})
	eng.Run()
	err := chk.Err()
	if err == nil {
		t.Fatal("checker missed the seeded swap-ordering mutation")
	}
	if !strings.Contains(err.Error(), "data loss") {
		t.Fatalf("unexpected error class: %v", err)
	}
}

// TestStressFlagsSeededMutation proves the randomized driver also catches
// the seeded bug (and that the identical run without the seed is clean).
func TestStressFlagsSeededMutation(t *testing.T) {
	o := StressOptions{Scheme: config.SchemeSILCFM, Seed: 11, Ops: 8000}
	if err := RunStress(o); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	o.FaultInjectSwapOrder = true
	err := RunStress(o)
	if err == nil {
		t.Fatal("stress driver missed the seeded swap-ordering mutation")
	}
	if !strings.Contains(err.Error(), "data loss") {
		t.Fatalf("unexpected error class: %v", err)
	}
}

// TestCheckerFlagsUncapturedOverwrite unit-tests the data-loss rule via raw
// observer events: writing over a live, uncaptured token is an error.
func TestCheckerFlagsUncapturedOverwrite(t *testing.T) {
	_, sys, chk := silcRig(t, false)
	nm0 := mem.Location{Level: stats.NM, DevAddr: 0}
	// Demand-write flat FM subblock 0's data over NM slot 0 without
	// capturing the home data first.
	chk.Demand(fmAddr(sys, 0, 0), nm0, true)
	if chk.Err() == nil {
		t.Fatal("uncaptured overwrite not flagged")
	}
}

// TestCheckerFlagsDeliverWithoutCapture unit-tests the ordering rule.
func TestCheckerFlagsDeliverWithoutCapture(t *testing.T) {
	_, _, chk := silcRig(t, false)
	nm0 := mem.Location{Level: stats.NM, DevAddr: 0}
	fm0 := mem.Location{Level: stats.FM, DevAddr: 0}
	chk.Deliver(nm0, fm0)
	if err := chk.Err(); err == nil || !strings.Contains(err.Error(), "without a prior capture") {
		t.Fatalf("deliver-without-capture not flagged: %v", err)
	}
}

// TestCheckerFlagsWrittenRelocation: a one-way block copy over
// demand-written data is a loss even though the mapping stays a bijection —
// exactly the class of bug mem.Audit cannot see.
func TestCheckerFlagsWrittenRelocation(t *testing.T) {
	_, sys, chk := silcRig(t, false)
	nm0 := mem.Location{Level: stats.NM, DevAddr: 0}
	fm0 := mem.Location{Level: stats.FM, DevAddr: 0}
	chk.Demand(0, nm0, true) // flat NM subblock 0 now holds written data
	chk.Relocate(fm0, nm0)   // one-way copy clobbers it
	if err := chk.Err(); err == nil || !strings.Contains(err.Error(), "demand-written") {
		t.Fatalf("written relocation not flagged: %v", err)
	}
	_ = sys
}

// TestCheckerLocateDisagreement: a Locate answer that contradicts the data
// movement is caught at the post-access check.
func TestCheckerLocateDisagreement(t *testing.T) {
	eng, sys, chk := silcRig(t, false)
	// Move flat FM subblock (0,3) into NM behind the controller's back:
	// the controller's Locate still reports the FM home, disagreeing with
	// the shadow placement.
	sys.ExchangeSubblocks(
		mem.Location{Level: stats.NM, DevAddr: 3 * 64},
		mem.Location{Level: stats.FM, DevAddr: 3 * 64}, nil)
	eng.Run()
	chk.Handle(&mem.Access{PC: 1, PAddr: 5 * 64}) // any access triggers the check... of its own address
	eng.Run()
	if err := chk.Check(); err == nil {
		t.Fatal("Locate/shadow disagreement not flagged")
	}
}
