package shadow

import (
	"fmt"
	"math/rand"

	"silcfm/internal/config"
	"silcfm/internal/core"
	"silcfm/internal/dram"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/schemes/cameo"
	"silcfm/internal/schemes/flat"
	"silcfm/internal/schemes/hma"
	"silcfm/internal/schemes/pom"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
)

// StressOptions parameterize RunStress.
type StressOptions struct {
	Scheme config.SchemeName
	Seed   int64
	// Ops is the number of demand accesses to drive (default 20000).
	Ops int
	// FaultInjectSwapOrder seeds the pre-fix SwapDemand write-ordering bug
	// so tests can prove the checker catches it.
	FaultInjectSwapOrder bool
}

// RunStress drives one controller directly (no CPU model) with an
// adversarial access mix — uniform noise, hot-block hammering, sequential
// sweeps and congruence-set ping-pong, 30% writes — under the shadow
// checker, with periodic mapping audits. It returns the first integrity
// violation found, or nil. Aggressive scheme tunings (low thresholds, short
// epochs) make every movement path fire within a short run.
func RunStress(o StressOptions) error {
	ops := o.Ops
	if ops <= 0 {
		ops = 20000
	}
	m := config.Small()
	m.Scheme = o.Scheme
	m.NM = config.HBM(256 << 10)
	m.FM = config.DDR3(1 << 20)
	m.SILC.HotThreshold = 3
	m.SILC.AgingInterval = 1 << 10
	m.HMA.EpochCycles = 1 << 14
	m.HMA.HotThreshold = 2
	m.PoM.MigrationThreshold = 4

	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)
	sys.FaultInjectSwapOrder = o.FaultInjectSwapOrder

	var ctl mem.Controller
	switch o.Scheme {
	case config.SchemeBaseline:
		ctl = flat.NewBaseline(sys)
	case config.SchemeRandom:
		ctl = flat.NewStatic(sys)
	case config.SchemeHMA:
		ctl = hma.New(sys, m.HMA)
	case config.SchemeCAMEO:
		ctl = cameo.New(sys, config.CAMEOConfig{})
	case config.SchemeCAMEOP:
		ctl = cameo.New(sys, config.CAMEOConfig{PrefetchLines: 3})
	case config.SchemePoM:
		ctl = pom.New(sys, m.PoM)
	case config.SchemeSILCFM:
		ctl = core.New(sys, m.SILC)
	default:
		return fmt.Errorf("shadow: unknown scheme %q", o.Scheme)
	}

	nmFlat := sys.NMCap
	if o.Scheme == config.SchemeBaseline {
		nmFlat = 0
	}
	chk := New(ctl, sys, nmFlat, sys.FMCap)
	flatCap := nmFlat + sys.FMCap
	totalBlocks := flatCap / memunits.BlockSize

	rng := rand.New(rand.NewSource(o.Seed))
	hot := make([]uint64, 4)
	for i := range hot {
		hot[i] = rng.Uint64() % totalBlocks
	}
	// Congruence-conflict stride: SILC-FM's default geometry has NM-blocks /
	// ways sets, so blocks this far apart collide in one set; harmless noise
	// for the other schemes.
	const conflictStride = 32
	randSub := func() uint64 {
		return uint64(rng.Intn(int(memunits.SubblocksPerBlock))) * memunits.SubblockSize
	}
	// The SILC-FM metadata channel is a separate device whose traffic joins
	// NM's side of the byte-conservation ledger.
	var extraNM []*dram.Device
	if sc, ok := ctl.(*core.Controller); ok {
		extraNM = append(extraNM, sc.MetaDevice())
	}
	conserve := func(quiesced bool) error {
		if err := stats.CheckConservation(sys.Conservation(quiesced, extraNM...)); err != nil {
			return fmt.Errorf("shadow stress [%s]: %w", ctl.Name(), err)
		}
		return nil
	}

	var seq uint64
	for i := 0; i < ops; i++ {
		var pa uint64
		switch (i / 512) % 4 {
		case 0: // uniform noise
			pa = (rng.Uint64() % flatCap) &^ (memunits.SubblockSize - 1)
		case 1: // hot-block hammering (drives locking / migration thresholds)
			pa = hot[rng.Intn(len(hot))]*memunits.BlockSize + randSub()
		case 2: // sequential sweep (drives prefetch / history replay)
			pa = seq % flatCap
			seq += memunits.SubblockSize
		case 3: // congruence-set ping-pong (drives victimization / restore)
			b := (hot[0] + uint64(rng.Intn(8))*conflictStride) % totalBlocks
			pa = b*memunits.BlockSize + randSub()
		}
		chk.Handle(&mem.Access{
			PC:    uint64(1 + rng.Intn(8)),
			PAddr: pa,
			Write: rng.Intn(100) < 30,
			Start: eng.Now(),
		})
		if i%64 == 63 {
			eng.Run()
		}
		if i%4096 == 4095 {
			if err := chk.Err(); err != nil {
				return err
			}
			if err := mem.AuditSample(chk, nmFlat, sys.FMCap, 13); err != nil {
				return fmt.Errorf("shadow stress [%s]: %w", ctl.Name(), err)
			}
			// Mid-run the engine still holds scheduled work, so the tolerant
			// conservation invariants apply.
			if err := conserve(false); err != nil {
				return err
			}
		}
	}
	eng.Run()
	if err := mem.Audit(chk, nmFlat, sys.FMCap); err != nil {
		return fmt.Errorf("shadow stress [%s]: %w", ctl.Name(), err)
	}
	// Fully drained: the strict quiesced invariants must hold — every miss
	// serviced, nothing in flight, every byte accounted.
	if err := conserve(true); err != nil {
		return err
	}
	return chk.Check()
}
