package shadow

import (
	"testing"

	"silcfm/internal/config"
)

// allSchemes covers every implemented controller, baseline included.
var allSchemes = []config.SchemeName{
	config.SchemeBaseline,
	config.SchemeRandom,
	config.SchemeHMA,
	config.SchemeCAMEO,
	config.SchemeCAMEOP,
	config.SchemePoM,
	config.SchemeSILCFM,
}

// TestStressAllSchemes hammers every scheme with the adversarial driver
// under the shadow checker and the mapping audit. Two seeds each so both
// the access mix and the movement interleavings vary.
func TestStressAllSchemes(t *testing.T) {
	for _, s := range allSchemes {
		s := s
		t.Run(string(s), func(t *testing.T) {
			for _, seed := range []int64{1, 42} {
				if err := RunStress(StressOptions{Scheme: s, Seed: seed}); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		})
	}
}
