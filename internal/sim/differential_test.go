package sim

import (
	"math/rand"
	"testing"
)

// sched abstracts the two scheduler implementations under differential
// test: the production wheel+heap Engine and the reference plain-heap
// scheduler below (the semantics of the pre-wheel implementation).
type sched interface {
	Now() Cycle
	At(when Cycle, fn func())
	Step() bool
}

// refSched is a deliberately simple reference scheduler: one flat event
// list, minimum by exact (when, seq) scan, identical past-clamp semantics.
// It is observably equivalent to the old container/heap implementation and
// slow enough that nobody will be tempted to ship it.
type refSched struct {
	now Cycle
	seq uint64
	evs []event
}

func (r *refSched) Now() Cycle { return r.now }

func (r *refSched) At(when Cycle, fn func()) {
	if when < r.now {
		when = r.now
	}
	r.seq++
	r.evs = append(r.evs, event{when: when, seq: r.seq, fn: fn})
}

func (r *refSched) Step() bool {
	if len(r.evs) == 0 {
		return false
	}
	min := 0
	for i := 1; i < len(r.evs); i++ {
		if eventLess(r.evs[i], r.evs[min]) {
			min = i
		}
	}
	ev := r.evs[min]
	r.evs = append(r.evs[:min], r.evs[min+1:]...)
	r.now = ev.when
	ev.fn()
	return true
}

// splitmix64 gives each event a deterministic decision stream derived only
// from its ID, so both schedulers replay identical re-entrant behavior as
// long as their dispatch orders agree (and diverge visibly when not).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// scriptedRun drives s with a deterministic event program: roots scheduled
// from seed, and every fired event re-entrantly scheduling 0-3 children at
// offsets that exercise same-cycle ties (0), short delays (wheel), past
// times (clamp), and far-future delays (heap fallback). It returns the
// dispatch order as event IDs.
func scriptedRun(s sched, seed uint64, roots, maxEvents int) []int {
	var order []int
	nextID := 0
	total := 0

	var fire func(id int) func()
	fire = func(id int) func() {
		return func() {
			order = append(order, id)
			h := splitmix64(seed ^ uint64(id)*0x9e3779b9)
			children := int(h % 4) // 0..3
			for c := 0; c < children && total < maxEvents; c++ {
				hc := splitmix64(h + uint64(c))
				var when Cycle
				switch hc % 5 {
				case 0:
					when = s.Now() // same-cycle tie with anything pending
				case 1:
					// Past time: must clamp to now and dispatch after
					// already-pending same-cycle events.
					back := Cycle(hc >> 8 % 100)
					if back > s.Now() {
						back = s.Now()
					}
					when = s.Now() - back
				case 2:
					when = s.Now() + Cycle(hc>>8%8) // short: wheel path
				case 3:
					when = s.Now() + Cycle(hc>>8%(wheelSize-1)) + 1
				default:
					// Far future: beyond the wheel horizon, heap path.
					when = s.Now() + wheelSize + Cycle(hc>>8%5000)
				}
				id := nextID
				nextID++
				total++
				s.At(when, fire(id))
			}
		}
	}

	rng := rand.New(rand.NewSource(int64(seed)))
	for i := 0; i < roots; i++ {
		id := nextID
		nextID++
		total++
		when := Cycle(rng.Intn(3 * wheelSize))
		s.At(when, fire(id))
	}
	for s.Step() {
	}
	return order
}

// TestDifferentialWheelVsHeap runs the production Engine against the
// reference heap scheduler on many random event programs and requires
// identical dispatch order, event for event.
func TestDifferentialWheelVsHeap(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		got := scriptedRun(NewEngine(), seed, 40, 4000)
		want := scriptedRun(&refSched{}, seed, 40, 4000)
		if len(got) != len(want) {
			t.Fatalf("seed %d: dispatched %d events, reference dispatched %d",
				seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: dispatch order diverges at position %d: engine=%d reference=%d",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestAtPastClampReentrantOrder pins the dispatch position of a
// past-clamped event scheduled while its target cycle is already being
// drained: it keeps its fresh sequence number and therefore runs after
// every same-cycle event that was already pending — on both schedulers.
func TestAtPastClampReentrantOrder(t *testing.T) {
	run := func(s sched) []string {
		var order []string
		s.At(100, func() {
			order = append(order, "a")
			// Already-pending same-cycle events b and c are below; this
			// past-scheduled event must clamp to 100 and run after them.
			s.At(10, func() { order = append(order, "past") })
			// A same-cycle event scheduled after the past one: later seq,
			// dispatches last.
			s.At(100, func() { order = append(order, "tail") })
		})
		s.At(100, func() { order = append(order, "b") })
		s.At(100, func() { order = append(order, "c") })
		for s.Step() {
		}
		return order
	}
	want := []string{"a", "b", "c", "past", "tail"}
	for name, s := range map[string]sched{"engine": NewEngine(), "reference": &refSched{}} {
		got := run(s)
		if len(got) != len(want) {
			t.Fatalf("%s: order %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: order %v, want %v", name, got, want)
			}
		}
	}
}

// TestSteadyStateSchedulingAllocs pins the allocation-free steady state of
// the wheel path: once the buckets exist, a schedule/dispatch cycle must
// not allocate.
func TestSteadyStateSchedulingAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	// Warm up: materialize the wheel and grow each touched bucket.
	for i := 0; i < 10_000; i++ {
		e.After(Cycle(i%64), fn)
	}
	e.Run()
	avg := testing.AllocsPerRun(1000, func() {
		e.After(7, fn)
		e.Step()
	})
	if avg > 0 {
		t.Fatalf("steady-state wheel scheduling allocates %.2f objects/op, want 0", avg)
	}
}
