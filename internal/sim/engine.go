// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulator components (cores, caches, memory controllers, DRAM
// channels) share one Engine. Components schedule callbacks at absolute or
// relative cycle times; the engine dispatches them in time order, breaking
// ties by scheduling order so that a given seed always produces the same
// simulation. Everything runs on the calling goroutine.
//
// The scheduler is a bucketed time wheel with a binary-heap fallback, built
// for the simulator's hot path: almost every event lands within a few
// hundred cycles of now (DRAM timing, core wakeups), so it goes into a
// per-cycle wheel bucket with one slice append — no comparisons, no
// container/heap interface boxing, and the bucket storage is reused across
// wheel revolutions, so steady-state scheduling allocates nothing. Rare
// far-future events (telemetry epoch pumps, refresh horizons) go to a
// hand-rolled min-heap. Dispatch merges the two sources by exact
// (when, seq) order, so the hybrid is observably identical — event for
// event — to a single priority queue.
package sim

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle = uint64

// wheelBits sizes the near-term scheduling window: events within
// 2^wheelBits cycles of now take the O(1) wheel path. 1024 cycles covers
// every DRAM timing constant and typical core wakeup in the model;
// anything farther (deep-queue completions, epoch pumps at 200k cycles) is
// rare enough for the heap. Measured on the bench suite, a small wheel
// beats a larger one: the bucket working set stays cache-resident.
const (
	wheelBits = 10
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

type event struct {
	when Cycle
	seq  uint64 // tie-break: FIFO among same-cycle events
	fn   func()
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	now Cycle
	seq uint64

	// buckets[t&wheelMask] holds the events scheduled for cycle t, for t in
	// [now, now+wheelSize), in seq (FIFO) order. heads[i] is the consume
	// index into buckets[i]: drained prefixes are skipped rather than
	// shifted, and a fully drained bucket resets to len 0 keeping its
	// capacity. wheelCount totals the undispatched wheel events.
	buckets    [][]event
	heads      []int
	wheelCount int

	// scanMin is a lower bound on the earliest occupied wheel cycle: every
	// bucket for a cycle < scanMin is known empty. Dispatch resumes its
	// bucket scan here instead of rescanning from now each call (the scan
	// is the dispatch hot loop when events are sparse); At lowers it when
	// an insert lands earlier.
	scanMin Cycle

	// far is a hand-rolled min-heap ordered by (when, seq) for events at
	// least wheelSize cycles out. Events are popped directly from it when
	// due — they never migrate into the wheel — so dispatch is a two-way
	// (when, seq) merge between the wheel and this heap.
	far []event
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of scheduled events not yet dispatched.
func (e *Engine) Pending() int { return e.wheelCount + len(e.far) }

// At schedules fn to run at absolute cycle when. Scheduling in the past
// (when < Now) runs fn at the current cycle instead; the simulation clock
// never moves backwards. A past-clamped event keeps its fresh sequence
// number, so it dispatches after any same-cycle events already pending —
// including events scheduled earlier for the cycle currently being drained.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	if when-e.now < wheelSize {
		if e.buckets == nil {
			e.buckets = make([][]event, wheelSize)
			e.heads = make([]int, wheelSize)
		}
		b := int(when & wheelMask)
		e.buckets[b] = append(e.buckets[b], event{when: when, seq: e.seq, fn: fn})
		e.wheelCount++
		if when < e.scanMin {
			e.scanMin = when
		}
		return
	}
	e.farPush(event{when: when, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) { e.At(e.now+delay, fn) }

// Step dispatches the earliest pending event, advancing the clock to its
// time. It reports whether an event was dispatched.
func (e *Engine) Step() bool {
	return e.dispatchUpTo(^Cycle(0))
}

// dispatchUpTo dispatches the single earliest pending event if its time is
// <= limit, advancing the clock to it. The earliest event is the (when, seq)
// minimum across the wheel and the far heap.
func (e *Engine) dispatchUpTo(limit Cycle) bool {
	farOK := len(e.far) > 0
	var farWhen Cycle
	if farOK {
		farWhen = e.far[0].when
	}

	if e.wheelCount > 0 {
		// Scan buckets upward from now (or from scanMin, which skips the
		// prefix already proven empty). Every event in bucket t&wheelMask
		// has when == t exactly (the wheel only holds [now, now+wheelSize)),
		// so the first nonempty bucket is the earliest wheel event, already
		// in seq order.
		t := e.now
		if e.scanMin > t {
			t = e.scanMin
		}
		for ; t-e.now < wheelSize; t++ {
			if farOK && farWhen < t {
				// A far event is due strictly before the next wheel event.
				e.scanMin = t
				break
			}
			b := int(t & wheelMask)
			if e.heads[b] >= len(e.buckets[b]) {
				continue
			}
			e.scanMin = t
			if t > limit {
				return false
			}
			if farOK && farWhen == t && e.far[0].seq < e.buckets[b][e.heads[b]].seq {
				// Same-cycle tie: the far event was scheduled first.
				break
			}
			ev := e.buckets[b][e.heads[b]]
			e.buckets[b][e.heads[b]] = event{} // release the fn reference
			e.heads[b]++
			if e.heads[b] == len(e.buckets[b]) {
				e.buckets[b] = e.buckets[b][:0]
				e.heads[b] = 0
			}
			e.wheelCount--
			e.now = ev.when
			ev.fn()
			return true
		}
	}
	if !farOK || farWhen > limit {
		return false
	}
	ev := e.farPop()
	e.now = ev.when
	ev.fn()
	return true
}

// Run dispatches events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with time <= limit. The clock ends at the time
// of the last dispatched event (or limit if the next event lies beyond it).
func (e *Engine) RunUntil(limit Cycle) {
	for e.dispatchUpTo(limit) {
	}
	if e.now < limit {
		e.now = limit
	}
}

// RunWhile dispatches events until cond reports false or no events remain.
// cond is checked before every event dispatch.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// farPush inserts ev into the far heap (sift-up on a plain slice; no
// interface boxing, unlike container/heap).
func (e *Engine) farPush(ev event) {
	e.far = append(e.far, ev)
	i := len(e.far) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(e.far[i], e.far[p]) {
			break
		}
		e.far[i], e.far[p] = e.far[p], e.far[i]
		i = p
	}
}

// farPop removes and returns the (when, seq) minimum of the far heap.
func (e *Engine) farPop() event {
	top := e.far[0]
	n := len(e.far) - 1
	e.far[0] = e.far[n]
	e.far[n] = event{} // release the fn reference
	e.far = e.far[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && eventLess(e.far[r], e.far[l]) {
			min = r
		}
		if !eventLess(e.far[min], e.far[i]) {
			break
		}
		e.far[i], e.far[min] = e.far[min], e.far[i]
		i = min
	}
	return top
}

func eventLess(a, b event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}
