// Package sim provides a deterministic discrete-event simulation engine.
//
// All simulator components (cores, caches, memory controllers, DRAM
// channels) share one Engine. Components schedule callbacks at absolute or
// relative cycle times; the engine dispatches them in time order, breaking
// ties by scheduling order so that a given seed always produces the same
// simulation. Everything runs on the calling goroutine.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle = uint64

type event struct {
	when Cycle
	seq  uint64 // tie-break: FIFO among same-cycle events
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler. The zero value is ready to use.
type Engine struct {
	pq  eventHeap
	now Cycle
	seq uint64
}

// NewEngine returns an empty engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Pending reports the number of scheduled events not yet dispatched.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn to run at absolute cycle when. Scheduling in the past
// (when < Now) runs fn at the current cycle instead; the simulation clock
// never moves backwards.
func (e *Engine) At(when Cycle, fn func()) {
	if when < e.now {
		when = e.now
	}
	e.seq++
	heap.Push(&e.pq, event{when: when, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func()) { e.At(e.now+delay, fn) }

// Step dispatches the earliest pending event, advancing the clock to its
// time. It reports whether an event was dispatched.
func (e *Engine) Step() bool {
	if len(e.pq) == 0 {
		return false
	}
	ev := heap.Pop(&e.pq).(event)
	e.now = ev.when
	ev.fn()
	return true
}

// Run dispatches events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with time <= limit. The clock ends at the time
// of the last dispatched event (or limit if the next event lies beyond it).
func (e *Engine) RunUntil(limit Cycle) {
	for len(e.pq) > 0 && e.pq[0].when <= limit {
		e.Step()
	}
	if e.now < limit && (len(e.pq) == 0 || e.pq[0].when > limit) {
		e.now = limit
	}
}

// RunWhile dispatches events until cond reports false or no events remain.
// cond is checked before every event dispatch.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}
