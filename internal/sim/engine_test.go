package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: pos %d got %d", i, v)
		}
	}
}

func TestEngineAfterNesting(t *testing.T) {
	e := NewEngine()
	var trace []Cycle
	e.After(10, func() {
		trace = append(trace, e.Now())
		e.After(5, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("nested scheduling wrong: %v", trace)
	}
}

func TestEnginePastSchedulingClamps(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(100, func() {
		e.At(50, func() {
			ran = true
			if e.Now() != 100 {
				t.Errorf("past event ran at %d, want clamp to 100", e.Now())
			}
		})
	})
	e.Run()
	if !ran {
		t.Fatal("past-scheduled event never ran")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var got []Cycle
	for _, c := range []Cycle{5, 10, 15, 20} {
		c := c
		e.At(c, func() { got = append(got, c) })
	}
	e.RunUntil(12)
	if len(got) != 2 {
		t.Fatalf("RunUntil(12) dispatched %d events, want 2", len(got))
	}
	if e.Now() != 12 {
		t.Fatalf("clock after RunUntil = %d, want 12", e.Now())
	}
	e.RunUntil(100)
	if len(got) != 4 {
		t.Fatalf("remaining events not dispatched: %v", got)
	}
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.At(Cycle(i), func() { count++ })
	}
	e.RunWhile(func() bool { return count < 4 })
	if count != 4 {
		t.Fatalf("RunWhile stopped at count=%d, want 4", count)
	}
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	if e.Pending() != 0 {
		t.Fatal("fresh engine has pending events")
	}
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Step()
	if e.Pending() != 1 {
		t.Fatalf("Pending after Step = %d, want 1", e.Pending())
	}
}

// Property: for any set of scheduled times, dispatch order is the sorted
// order of those times.
func TestEngineDispatchSortedProperty(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine()
		var got []Cycle
		for _, tm := range times {
			c := Cycle(tm)
			e.At(c, func() { got = append(got, c) })
		}
		e.Run()
		want := make([]Cycle, len(times))
		for i, tm := range times {
			want[i] = Cycle(tm)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []Cycle {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		var got []Cycle
		var rec func(depth int)
		rec = func(depth int) {
			got = append(got, e.Now())
			if depth < 3 {
				for i := 0; i < 2; i++ {
					e.After(Cycle(rng.Intn(10)), func() { rec(depth + 1) })
				}
			}
		}
		e.At(0, func() { rec(0) })
		e.Run()
		return got
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("nondeterministic event count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func BenchmarkEngineScheduleDispatch(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(Cycle(i%64), fn)
		if e.Pending() > 1024 {
			for e.Pending() > 0 {
				e.Step()
			}
		}
	}
}
