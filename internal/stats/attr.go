package stats

import "fmt"

// Span names one component of a demand access's end-to-end latency. Spans
// are stamped onto the access as it moves through the devices and the
// scheme controllers; at completion the residual lands in SpanOther so the
// per-access span sum equals the end-to-end latency exactly.
type Span int

const (
	// SpanQueue is time a demand device request spent waiting behind other
	// requests (queue occupancy, bank/bus contention, refresh).
	SpanQueue Span = iota
	// SpanService is the minimal device-service time of the demand request
	// for its observed row outcome (precharge/activate + column + burst).
	SpanService
	// SpanMetaFetch is serialized remap-metadata fetch time paid before
	// dispatch (SILC-FM's predictor-off path, CAMEO's in-row remap read).
	SpanMetaFetch
	// SpanSwapSerial is time the demand was held behind scheme-level
	// serialization of migration work (HMA's end-of-epoch OS stall).
	SpanSwapSerial
	// SpanMispredict is the serialized metadata fetch paid after a
	// way/location predictor miss (§III-F): the retry penalty.
	SpanMispredict
	// SpanOther is the residual: end-to-end latency minus all stamped
	// spans. Computed once at completion; a nonzero value means a wait the
	// instrumentation does not name.
	SpanOther

	NumSpans
)

func (s Span) String() string {
	switch s {
	case SpanQueue:
		return "queue"
	case SpanService:
		return "service"
	case SpanMetaFetch:
		return "meta-fetch"
	case SpanSwapSerial:
		return "swap-serial"
	case SpanMispredict:
		return "mispredict"
	case SpanOther:
		return "other"
	default:
		return "unknown"
	}
}

// Attribution accumulates per-path span totals. Like PathLatencies it is
// always allocated and always recording — a few adds per demand completion,
// never an event — so enabling any consumer of it cannot perturb timing.
type Attribution struct {
	Spans [NumDemandPaths][NumSpans]uint64
	Count [NumDemandPaths]uint64
}

// Observe folds one completed access's spans into path's totals.
func (a *Attribution) Observe(path DemandPath, spans *[NumSpans]uint64) {
	if path < 0 || path >= NumDemandPaths {
		return
	}
	for s, v := range spans {
		a.Spans[path][s] += v
	}
	a.Count[path]++
}

// PathTotal returns the span-cycle sum for one path. By construction it
// equals the corresponding PathLatencies histogram Sum; CheckConservation
// asserts that.
func (a *Attribution) PathTotal(p DemandPath) uint64 {
	if p < 0 || p >= NumDemandPaths {
		return 0
	}
	var t uint64
	for _, v := range a.Spans[p] {
		t += v
	}
	return t
}

// SpanBreakdown is the reduced form of one path's span decomposition.
type SpanBreakdown struct {
	Path  string
	Count uint64
	Total uint64
	Spans [NumSpans]uint64
}

// Summaries reduces every populated path, in DemandPath order
// (deterministic).
func (a *Attribution) Summaries() []SpanBreakdown {
	var out []SpanBreakdown
	for p := DemandPath(0); p < NumDemandPaths; p++ {
		if a.Count[p] == 0 {
			continue
		}
		out = append(out, SpanBreakdown{
			Path:  p.String(),
			Count: a.Count[p],
			Total: a.PathTotal(p),
			Spans: a.Spans[p],
		})
	}
	return out
}

// Conservation gathers the counters CheckConservation cross-checks. The
// caller assembles it from one consistent instant between engine events
// (mem.System.Conservation does this for a live system).
type Conservation struct {
	Mem  *Memory
	Lat  *PathLatencies
	Attr *Attribution
	// InflightDemands counts demands whose ServicedNM/FM counter has
	// ticked but whose completion callback has not yet fired.
	InflightDemands uint64
	// DeviceBytes[level] sums read + written + extended-burst metadata +
	// still-queued bytes over the devices backing that level.
	DeviceBytes [2]uint64
	// RideAlongBytes[level] is traffic accounted in Memory.Bytes that rode
	// an existing device request instead of a submission of its own
	// (CAMEO's NM-hit remap update on the write path).
	RideAlongBytes [2]uint64
	// Quiesced marks a fully drained engine: strict equalities apply
	// (every LLC miss serviced, nothing in flight). With Quiesced false
	// the audit still checks exact completion and byte balance but allows
	// serviced < LLC misses for demands deferred past the end of run.
	Quiesced bool
}

// CheckConservation asserts the cross-counter invariants that tie the
// independent bookkeeping layers together: span attribution vs. latency
// histograms, demand completions vs. serviced counts vs. LLC misses, and
// memory-side byte accounting vs. device-side byte accounting. A nil error
// means every counter a consumer might read is consistent with the others.
func CheckConservation(c Conservation) error {
	if c.Mem == nil {
		return fmt.Errorf("conservation: no Memory counters")
	}

	// Span sums must reconcile exactly with the latency histograms: same
	// sample counts, same total cycles, per path.
	if c.Lat != nil && c.Attr != nil {
		for p := DemandPath(0); p < NumDemandPaths; p++ {
			h := &c.Lat.Hist[p]
			if c.Attr.Count[p] != h.N {
				return fmt.Errorf("conservation: path %s has %d attributed accesses but %d latency samples",
					p, c.Attr.Count[p], h.N)
			}
			if got := c.Attr.PathTotal(p); got != h.Sum {
				return fmt.Errorf("conservation: path %s span sum %d != end-to-end latency sum %d",
					p, got, h.Sum)
			}
		}
	}

	// Every serviced demand is either completed (one latency sample) or
	// still in flight — exactly.
	serviced := c.Mem.ServicedNM + c.Mem.ServicedFM
	if c.Lat != nil {
		var completed uint64
		for p := range c.Lat.Hist {
			completed += c.Lat.Hist[p].N
		}
		if completed+c.InflightDemands != serviced {
			return fmt.Errorf("conservation: %d completions + %d in flight != %d serviced demands",
				completed, c.InflightDemands, serviced)
		}
	}

	// Serviced demands never exceed LLC misses; once quiesced they match
	// and nothing remains in flight.
	if serviced > c.Mem.LLCMisses {
		return fmt.Errorf("conservation: %d serviced demands exceed %d LLC misses",
			serviced, c.Mem.LLCMisses)
	}
	if c.Quiesced {
		if serviced != c.Mem.LLCMisses {
			return fmt.Errorf("conservation: quiesced with %d serviced demands != %d LLC misses",
				serviced, c.Mem.LLCMisses)
		}
		if c.InflightDemands != 0 {
			return fmt.Errorf("conservation: quiesced with %d demands in flight", c.InflightDemands)
		}
	}

	// Memory-side byte accounting (at submit) must balance device-side
	// accounting (at issue) plus bytes still queued plus ride-alongs.
	for level := NM; level <= FM; level++ {
		var memBytes uint64
		for _, b := range c.Mem.Bytes[level] {
			memBytes += b
		}
		devBytes := c.DeviceBytes[level] + c.RideAlongBytes[level]
		if memBytes != devBytes {
			return fmt.Errorf("conservation: %s accounted %d bytes but devices carry %d (incl. %d ride-along)",
				level, memBytes, devBytes, c.RideAlongBytes[level])
		}
	}
	return nil
}
