package stats

import (
	"strings"
	"testing"
)

func TestSpanStrings(t *testing.T) {
	want := map[Span]string{
		SpanQueue:      "queue",
		SpanService:    "service",
		SpanMetaFetch:  "meta-fetch",
		SpanSwapSerial: "swap-serial",
		SpanMispredict: "mispredict",
		SpanOther:      "other",
	}
	for s := Span(0); s < NumSpans; s++ {
		if got := s.String(); got != want[s] {
			t.Errorf("Span(%d).String() = %q, want %q", s, got, want[s])
		}
	}
	if NumSpans.String() != "unknown" {
		t.Errorf("out-of-range span should stringify as unknown")
	}
}

func TestAttributionObserveAndSummaries(t *testing.T) {
	a := &Attribution{}
	s1 := [NumSpans]uint64{}
	s1[SpanQueue], s1[SpanService], s1[SpanOther] = 10, 30, 2
	s2 := [NumSpans]uint64{}
	s2[SpanMetaFetch], s2[SpanService] = 50, 25
	a.Observe(PathNMHit, &s1)
	a.Observe(PathMispredict, &s2)
	a.Observe(DemandPath(-1), &s1) // ignored
	a.Observe(NumDemandPaths, &s1) // ignored

	if got := a.PathTotal(PathNMHit); got != 42 {
		t.Errorf("PathTotal(nm-hit) = %d, want 42", got)
	}
	if got := a.PathTotal(PathMispredict); got != 75 {
		t.Errorf("PathTotal(mispredict) = %d, want 75", got)
	}
	sums := a.Summaries()
	if len(sums) != 2 {
		t.Fatalf("Summaries: got %d entries, want 2", len(sums))
	}
	if sums[0].Path != "nm-hit" || sums[0].Count != 1 || sums[0].Total != 42 {
		t.Errorf("unexpected nm-hit summary: %+v", sums[0])
	}
	if sums[1].Path != "mispredict" || sums[1].Spans[SpanMetaFetch] != 50 {
		t.Errorf("unexpected mispredict summary: %+v", sums[1])
	}
}

// consistent builds a Conservation whose counters all balance: two NM-hit
// demands completed, one FM demand in flight, bytes matching.
func consistent() Conservation {
	m := &Memory{LLCMisses: 3, ServicedNM: 2, ServicedFM: 1}
	m.AddBytes(NM, Demand, 128)
	m.AddBytes(FM, Migration, 64)
	lat := NewPathLatencies()
	lat.Observe(PathNMHit, 40)
	lat.Observe(PathNMHit, 60)
	attr := &Attribution{}
	sp := [NumSpans]uint64{}
	sp[SpanQueue], sp[SpanService] = 10, 30
	attr.Observe(PathNMHit, &sp)
	sp[SpanQueue], sp[SpanService] = 20, 40
	attr.Observe(PathNMHit, &sp)
	return Conservation{
		Mem: m, Lat: lat, Attr: attr,
		InflightDemands: 1,
		DeviceBytes:     [2]uint64{128, 64},
	}
}

func TestCheckConservationPasses(t *testing.T) {
	if err := CheckConservation(consistent()); err != nil {
		t.Fatalf("consistent counters rejected: %v", err)
	}
}

func TestCheckConservationDetectsImbalance(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Conservation)
		want string
	}{
		{"span sum mismatch", func(c *Conservation) { c.Attr.Spans[PathNMHit][SpanOther] += 5 }, "span sum"},
		{"count mismatch", func(c *Conservation) { c.Attr.Count[PathNMHit]++ }, "latency samples"},
		{"inflight mismatch", func(c *Conservation) { c.InflightDemands = 0 }, "in flight"},
		{"serviced over misses", func(c *Conservation) { c.Mem.LLCMisses = 2 }, "exceed"},
		{"byte mismatch", func(c *Conservation) { c.DeviceBytes[NM] -= 64 }, "bytes"},
		{"ride-along imbalance", func(c *Conservation) { c.RideAlongBytes[FM] = 8 }, "bytes"},
	}
	for _, tc := range cases {
		c := consistent()
		tc.mut(&c)
		err := CheckConservation(c)
		if err == nil {
			t.Errorf("%s: imbalance not detected", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestCheckConservationQuiesced(t *testing.T) {
	c := consistent()
	c.Quiesced = true
	if err := CheckConservation(c); err == nil {
		t.Fatal("quiesced check must reject an in-flight demand")
	}
	// Complete the in-flight FM demand; now strict equalities hold.
	c = consistent()
	c.Lat.Observe(PathFM, 100)
	sp := [NumSpans]uint64{}
	sp[SpanOther] = 100
	c.Attr.Observe(PathFM, &sp)
	c.InflightDemands = 0
	c.Quiesced = true
	if err := CheckConservation(c); err != nil {
		t.Fatalf("quiesced consistent counters rejected: %v", err)
	}
	// A deferred demand (serviced < misses) is tolerated only while running.
	c.Mem.LLCMisses++
	if err := CheckConservation(c); err == nil {
		t.Fatal("quiesced check must reject serviced != LLC misses")
	}
	c.Quiesced = false
	if err := CheckConservation(c); err != nil {
		t.Fatalf("running check should tolerate a deferred demand: %v", err)
	}
}

func TestCheckConservationRideAlongBalances(t *testing.T) {
	c := consistent()
	// 8 metadata bytes accounted memory-side that rode an existing request.
	c.Mem.AddBytes(NM, Metadata, 8)
	if err := CheckConservation(c); err == nil {
		t.Fatal("unbalanced metadata bytes not detected")
	}
	c.RideAlongBytes[NM] = 8
	if err := CheckConservation(c); err != nil {
		t.Fatalf("ride-along bytes should balance: %v", err)
	}
}
