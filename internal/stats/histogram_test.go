package stats

import "testing"

// These tests pin down the Histogram edge behavior the manifest summaries
// (count/sum/max plus percentile bounds) rely on: empty histograms, the
// single-bucket degenerate case, overflow-bucket clamping, zero bucket
// width, and the p0/p100 extremes.

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(16, 8)
	if got := h.Percentile(50); got != 0 {
		t.Errorf("empty p50 = %d, want 0", got)
	}
	if got := h.Percentile(100); got != 0 {
		t.Errorf("empty p100 = %d, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("empty mean = %v, want 0", got)
	}
	if h.N != 0 || h.Sum != 0 || h.Max != 0 {
		t.Errorf("empty histogram has state: %+v", h)
	}
}

func TestHistogramSingleBucketClampsEverything(t *testing.T) {
	// One bucket: every sample clamps into it, and every percentile falls
	// back to the observed Max once samples exceed the bucket edge.
	h := NewHistogram(10, 1)
	for _, v := range []uint64{1, 5, 9, 1000} {
		h.Add(v)
	}
	if h.N != 4 || h.Sum != 1015 || h.Max != 1000 {
		t.Fatalf("counts wrong: %+v", h)
	}
	if h.Counts[0] != 4 {
		t.Fatalf("all samples must clamp into the only bucket: %v", h.Counts)
	}
	for _, p := range []float64{50, 95, 100} {
		if got := h.Percentile(p); got != 1000 {
			t.Errorf("p%.0f = %d, want observed max 1000", p, got)
		}
	}
}

func TestHistogramOverflowBucketUsesObservedMax(t *testing.T) {
	// Samples beyond the last bucket clamp into it; the percentile bound
	// for that bucket must be the observed Max, not the nominal edge.
	h := NewHistogram(10, 4) // buckets cover [0,40); overflow clamps at 3
	h.Add(5)
	h.Add(500)
	if h.Counts[3] != 1 {
		t.Fatalf("500 must clamp into the overflow bucket: %v", h.Counts)
	}
	if got := h.Percentile(50); got != 10 {
		t.Errorf("p50 = %d, want 10 (edge of first bucket)", got)
	}
	if got := h.Percentile(100); got != 500 {
		t.Errorf("p100 = %d, want observed max 500", got)
	}
	// When the overflow bucket holds nothing above its edge, the nominal
	// edge stands.
	h2 := NewHistogram(10, 4)
	h2.Add(35)
	if got := h2.Percentile(100); got != 40 {
		t.Errorf("in-range overflow sample: p100 = %d, want nominal edge 40", got)
	}
}

func TestHistogramZeroWidthActsAsWidthOne(t *testing.T) {
	// A zero-valued Histogram (BucketWidth 0) must not divide by zero; it
	// behaves as width 1.
	h := Histogram{Counts: make([]uint64, 4)}
	h.Add(2)
	if h.Counts[2] != 1 {
		t.Fatalf("zero-width add landed wrong: %v", h.Counts)
	}
	if got := h.Percentile(100); got != 3 {
		t.Errorf("p100 = %d, want 3 (upper edge of bucket 2 at width 1)", got)
	}
}

func TestHistogramPercentileExtremes(t *testing.T) {
	h := NewHistogram(1, 100)
	for v := uint64(10); v < 20; v++ {
		h.Add(v)
	}
	// p0 needs zero samples, so it resolves at the first bucket regardless
	// of occupancy: the lowest bound the histogram can state.
	if got := h.Percentile(0); got != 1 {
		t.Errorf("p0 = %d, want 1 (edge of first bucket)", got)
	}
	// The smallest positive percentile needs one sample.
	if got := h.Percentile(0.0001); got != 11 {
		t.Errorf("p0.0001 = %d, want 11 (edge of first occupied bucket)", got)
	}
	if got := h.Percentile(100); got != 20 {
		t.Errorf("p100 = %d, want 20", got)
	}
}

func TestHistogramNoBuckets(t *testing.T) {
	// Counts=nil histograms still track N/Sum/Max (used by the exact
	// manifest fields) without panicking.
	h := &Histogram{BucketWidth: 4}
	h.Add(100)
	if h.N != 1 || h.Sum != 100 || h.Max != 100 {
		t.Fatalf("bucketless histogram state: %+v", h)
	}
	if got := h.Percentile(50); got != 100 {
		t.Errorf("bucketless p50 = %d, want Max fallback 100", got)
	}
}
