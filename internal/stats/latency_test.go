package stats

import "testing"

func TestHistogramPercentilesKnownDistribution(t *testing.T) {
	// 1..100 with width-1 buckets: value v lands in bucket v, whose upper
	// edge is v+1, so the p-th percentile bound is p+1.
	h := NewHistogram(1, 200)
	for v := uint64(1); v <= 100; v++ {
		h.Add(v)
	}
	for _, tc := range []struct {
		p    float64
		want uint64
	}{{50, 51}, {95, 96}, {99, 100}, {100, 101}} {
		if got := h.Percentile(tc.p); got != tc.want {
			t.Errorf("p%.0f = %d, want %d", tc.p, got, tc.want)
		}
	}
	if m := h.Mean(); m != 50.5 {
		t.Errorf("mean = %v, want 50.5", m)
	}
}

func TestHistogramPercentilesSkewedDistribution(t *testing.T) {
	// 90 samples at 10, 9 at 100, 1 at 1000: p50/p95 land in the low
	// buckets, p99 in the mid, p100 at the outlier.
	h := NewHistogram(1, 2000)
	for i := 0; i < 90; i++ {
		h.Add(10)
	}
	for i := 0; i < 9; i++ {
		h.Add(100)
	}
	h.Add(1000)
	if got := h.Percentile(50); got != 11 {
		t.Errorf("p50 = %d, want 11 (upper edge of bucket 10)", got)
	}
	if got := h.Percentile(95); got != 101 {
		t.Errorf("p95 = %d, want 101", got)
	}
	if got := h.Percentile(99); got != 101 {
		t.Errorf("p99 = %d, want 101", got)
	}
	if got := h.Percentile(100); got != 1001 {
		t.Errorf("p100 = %d, want 1001", got)
	}
}

func TestPathLatenciesObserveAndSummaries(t *testing.T) {
	p := NewPathLatencies()
	for i := uint64(0); i < 100; i++ {
		p.Observe(PathNMHit, 100)
	}
	p.Observe(PathSwap, 500)
	p.Observe(PathSwap, 1500)
	// Out-of-range paths are ignored, not a panic.
	p.Observe(DemandPath(99), 1)
	p.Observe(DemandPath(-1), 1)

	sums := p.Summaries()
	if len(sums) != 2 {
		t.Fatalf("want 2 populated paths, got %d: %+v", len(sums), sums)
	}
	if sums[0].Path != "nm-hit" || sums[1].Path != "swap" {
		t.Fatalf("paths out of order: %+v", sums)
	}
	nm := sums[0]
	if nm.Count != 100 || nm.Mean != 100 {
		t.Errorf("nm-hit summary: %+v", nm)
	}
	// Width-16 buckets: 100 lands in bucket 6 with upper edge 112.
	if nm.P50 != 112 || nm.P99 != 112 {
		t.Errorf("nm-hit percentiles: %+v", nm)
	}
	sw := sums[1]
	if sw.Count != 2 || sw.Mean != 1000 {
		t.Errorf("swap summary: %+v", sw)
	}
	if sw.P50 != 512 || sw.P99 != 1504 {
		t.Errorf("swap percentiles: %+v", sw)
	}
}
