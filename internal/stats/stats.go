// Package stats collects and reduces simulation counters into the metrics
// the paper reports: access rate (Eq. 1), demand-bandwidth split between NM
// and FM (Figure 8), speedup over the no-NM baseline (Figures 6, 7, 9) and
// supporting distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MemLevel distinguishes the two flat-memory levels.
type MemLevel int

const (
	NM MemLevel = iota // near memory (die-stacked HBM)
	FM                 // far memory (off-chip DDR3)
)

func (l MemLevel) String() string {
	if l == NM {
		return "NM"
	}
	return "FM"
}

// TrafficClass separates demand traffic from scheme-generated traffic;
// Figure 8 plots demand traffic only.
type TrafficClass int

const (
	Demand    TrafficClass = iota // data requested by the cores
	Migration                     // swap/migration/prefetch/writeback traffic
	Metadata                      // remap-entry and counter traffic
)

func (c TrafficClass) String() string {
	switch c {
	case Demand:
		return "demand"
	case Migration:
		return "migration"
	default:
		return "metadata"
	}
}

// Memory accumulates per-run memory-system counters. Not safe for
// concurrent use; each simulation owns one.
type Memory struct {
	LLCMisses        uint64       // requests entering the flat memory system
	ServicedNM       uint64       // demand requests whose data came from NM
	ServicedFM       uint64       // demand requests whose data came from FM
	Bytes            [2][3]uint64 // [level][class] bytes moved
	SwapsIn          uint64       // subblocks/blocks moved FM -> NM
	SwapsOut         uint64       // subblocks/blocks moved NM -> FM
	Locks            uint64       // blocks locked (SILC-FM)
	Unlocks          uint64
	Migrations       uint64 // whole-block migrations (PoM/HMA)
	BypassedAccesses uint64 // demand requests deliberately serviced from FM while bypassing
	PredictorHits    uint64
	PredictorMisses  uint64
	RowHits          [2]uint64
	RowMisses        [2]uint64 // closed-bank misses + row conflicts
	// DRAM introspection totals (internal/dram's per-bank/per-channel
	// ledgers reduced to device level; [NM, FM]).
	RowConflicts         [2]uint64 // precharge-then-activate row misses
	RefreshCloses        [2]uint64 // rows force-closed by periodic refresh
	BusBusyCycles        [2]uint64 // data-bus burst occupancy, summed over channels
	BankBusyCycles       [2]uint64 // bank command occupancy, summed over banks
	ReadQueueWaitCycles  [2]uint64 // read-queue residency (arrival to issue)
	WriteQueueWaitCycles [2]uint64 // write-queue residency (arrival to issue)
	// ExtraEnergyPJ accounts energy for traffic modeled in aggregate
	// rather than submitted to a device (HMA's bulk epoch migrations).
	ExtraEnergyPJ float64
	// OSOverheadCycles accumulates software costs (PTE updates, TLB
	// shootdowns, epoch sweeps) charged by OS-managed schemes.
	OSOverheadCycles uint64
}

// AddBytes records traffic.
func (m *Memory) AddBytes(level MemLevel, class TrafficClass, n uint64) {
	m.Bytes[level][class] += n
}

// AccessRate implements the paper's Equation 1: the fraction of LLC misses
// serviced from NM. Returns 0 for an idle run.
func (m *Memory) AccessRate() float64 {
	if m.LLCMisses == 0 {
		return 0
	}
	return float64(m.ServicedNM) / float64(m.LLCMisses)
}

// DemandNMFraction is Figure 8's metric: NM's share of demand-traffic bytes.
func (m *Memory) DemandNMFraction() float64 {
	nm, fm := m.Bytes[NM][Demand], m.Bytes[FM][Demand]
	if nm+fm == 0 {
		return 0
	}
	return float64(nm) / float64(nm+fm)
}

// TotalBytes returns all bytes moved at a level.
func (m *Memory) TotalBytes(level MemLevel) uint64 {
	t := uint64(0)
	for _, b := range m.Bytes[level] {
		t += b
	}
	return t
}

// MigrationOverheadRatio returns migration+metadata bytes per demand byte, a
// measure of the bandwidth tax a scheme pays (PoM's weakness).
func (m *Memory) MigrationOverheadRatio() float64 {
	demand := m.Bytes[NM][Demand] + m.Bytes[FM][Demand]
	if demand == 0 {
		return 0
	}
	extra := m.Bytes[NM][Migration] + m.Bytes[FM][Migration] +
		m.Bytes[NM][Metadata] + m.Bytes[FM][Metadata]
	return float64(extra) / float64(demand)
}

// Counter is one named cumulative counter, for metric exposition (the
// live observability server's Prometheus /metrics endpoint).
type Counter struct {
	Name  string
	Value uint64
}

// Counters enumerates every cumulative Memory counter in fixed
// declaration order, so exposition output is deterministic and new
// counters only need to be added here to be exported.
func (m *Memory) Counters() []Counter {
	return []Counter{
		{"llc_misses", m.LLCMisses},
		{"serviced_nm", m.ServicedNM},
		{"serviced_fm", m.ServicedFM},
		{"demand_bytes_nm", m.Bytes[NM][Demand]},
		{"demand_bytes_fm", m.Bytes[FM][Demand]},
		{"migration_bytes_nm", m.Bytes[NM][Migration]},
		{"migration_bytes_fm", m.Bytes[FM][Migration]},
		{"metadata_bytes_nm", m.Bytes[NM][Metadata]},
		{"metadata_bytes_fm", m.Bytes[FM][Metadata]},
		{"swaps_in", m.SwapsIn},
		{"swaps_out", m.SwapsOut},
		{"locks", m.Locks},
		{"unlocks", m.Unlocks},
		{"migrations", m.Migrations},
		{"bypassed_accesses", m.BypassedAccesses},
		{"predictor_hits", m.PredictorHits},
		{"predictor_misses", m.PredictorMisses},
		{"row_hits_nm", m.RowHits[NM]},
		{"row_misses_nm", m.RowMisses[NM]},
		{"row_hits_fm", m.RowHits[FM]},
		{"row_misses_fm", m.RowMisses[FM]},
		{"row_conflicts_nm", m.RowConflicts[NM]},
		{"row_conflicts_fm", m.RowConflicts[FM]},
		{"refresh_closes_nm", m.RefreshCloses[NM]},
		{"refresh_closes_fm", m.RefreshCloses[FM]},
		{"bus_busy_cycles_nm", m.BusBusyCycles[NM]},
		{"bus_busy_cycles_fm", m.BusBusyCycles[FM]},
		{"bank_busy_cycles_nm", m.BankBusyCycles[NM]},
		{"bank_busy_cycles_fm", m.BankBusyCycles[FM]},
		{"read_queue_wait_nm", m.ReadQueueWaitCycles[NM]},
		{"read_queue_wait_fm", m.ReadQueueWaitCycles[FM]},
		{"write_queue_wait_nm", m.WriteQueueWaitCycles[NM]},
		{"write_queue_wait_fm", m.WriteQueueWaitCycles[FM]},
		{"os_overhead_cycles", m.OSOverheadCycles},
	}
}

// PredictorAccuracy returns the way/location predictor hit rate.
func (m *Memory) PredictorAccuracy() float64 {
	t := m.PredictorHits + m.PredictorMisses
	if t == 0 {
		return 0
	}
	return float64(m.PredictorHits) / float64(t)
}

// Core accumulates per-core execution counters.
type Core struct {
	Instructions uint64
	MemRefs      uint64
	L1Hits       uint64
	L2Hits       uint64
	LLCMisses    uint64
	FinishCycle  uint64
	StallCycles  uint64
}

// MPKI returns LLC misses per kilo-instruction for this core.
func (c *Core) MPKI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return 1000 * float64(c.LLCMisses) / float64(c.Instructions)
}

// Run aggregates one complete simulation.
type Run struct {
	Workload       string
	Scheme         string
	Cores          []Core
	Mem            Memory
	Cycles         uint64  // execution time: when all cores finished
	EnergyNJ       float64 // total memory-system energy, nanojoules
	FootprintPages uint64  // unique 2KB pages touched
}

// TotalInstructions sums instructions over cores.
func (r *Run) TotalInstructions() uint64 {
	var t uint64
	for i := range r.Cores {
		t += r.Cores[i].Instructions
	}
	return t
}

// AvgMPKI returns the per-core average MPKI (Table III reports per-core).
func (r *Run) AvgMPKI() float64 {
	if len(r.Cores) == 0 {
		return 0
	}
	s := 0.0
	for i := range r.Cores {
		s += r.Cores[i].MPKI()
	}
	return s / float64(len(r.Cores))
}

// Speedup returns baselineCycles / r.Cycles, the paper's figure of merit.
func (r *Run) Speedup(baselineCycles uint64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baselineCycles) / float64(r.Cycles)
}

// EDP returns the energy-delay product in nanojoule-cycles.
func (r *Run) EDP() float64 { return r.EnergyNJ * float64(r.Cycles) }

// GeoMean returns the geometric mean of xs, ignoring non-positive values.
func GeoMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Histogram is a simple fixed-bucket histogram for latency distributions.
type Histogram struct {
	BucketWidth uint64
	Counts      []uint64
	N           uint64
	Sum         uint64
	Max         uint64
}

// NewHistogram creates a histogram with the given bucket width and count.
func NewHistogram(bucketWidth uint64, buckets int) *Histogram {
	return &Histogram{BucketWidth: bucketWidth, Counts: make([]uint64, buckets)}
}

// width is the effective bucket width: a zero-valued Histogram is treated
// as width 1 rather than dividing by zero.
func (h *Histogram) width() uint64 {
	if h.BucketWidth == 0 {
		return 1
	}
	return h.BucketWidth
}

// Add records a sample. Samples beyond the last bucket clamp into it.
func (h *Histogram) Add(v uint64) {
	h.N++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	if len(h.Counts) == 0 {
		return
	}
	i := v / h.width()
	if i >= uint64(len(h.Counts)) {
		i = uint64(len(h.Counts) - 1)
	}
	h.Counts[i]++
}

// Mean returns the average sample.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Percentile returns an upper bound on the p-th percentile (0<p<=100) using
// bucket upper edges.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.N == 0 {
		return 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.N)))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			edge := uint64(i+1) * h.width()
			// The overflow bucket holds clamped samples whose values can
			// exceed its nominal edge; the observed Max is the true bound.
			if i == len(h.Counts)-1 && h.Max > edge {
				return h.Max
			}
			return edge
		}
	}
	return h.Max
}

// DemandPath classifies how one demand access was serviced, for the
// per-path latency histograms. The paths follow the decision points of
// SILC-FM's demand pipeline; schemes without a given mechanism simply
// never populate that bucket.
type DemandPath int

const (
	// PathNMHit is a demand serviced from near memory with no data
	// movement.
	PathNMHit DemandPath = iota
	// PathFM is a demand serviced from far memory with no data movement
	// (non-resident block, locked-out home subblock, baseline traffic).
	PathFM
	// PathSwap is a demand that rode the critical path of a subblock swap
	// (SILC-FM Figure 2: the demand transfer doubles as a migration leg).
	PathSwap
	// PathBypass is a demand deliberately serviced from FM while the
	// bandwidth-balancing governor suppresses swaps (§III-E).
	PathBypass
	// PathMispredict is a demand that paid the serialized remap-metadata
	// fetch after a way/location predictor miss (§III-F).
	PathMispredict

	NumDemandPaths
)

func (p DemandPath) String() string {
	switch p {
	case PathNMHit:
		return "nm-hit"
	case PathFM:
		return "fm"
	case PathSwap:
		return "swap"
	case PathBypass:
		return "bypass"
	case PathMispredict:
		return "mispredict"
	default:
		return "unknown"
	}
}

// latencyBucketWidth/latencyBuckets size the per-path histograms: 16-cycle
// resolution out to 16K cycles, beyond which samples clamp into the
// overflow bucket (whose percentile bound falls back to the observed Max).
const (
	latencyBucketWidth = 16
	latencyBuckets     = 1024
)

// PathLatencies accumulates demand-latency histograms per service path.
type PathLatencies struct {
	Hist [NumDemandPaths]Histogram
}

// NewPathLatencies builds the per-path histogram set.
func NewPathLatencies() *PathLatencies {
	p := &PathLatencies{}
	for i := range p.Hist {
		p.Hist[i] = Histogram{BucketWidth: latencyBucketWidth, Counts: make([]uint64, latencyBuckets)}
	}
	return p
}

// Observe records one demand completion latency under path.
func (p *PathLatencies) Observe(path DemandPath, lat uint64) {
	if path < 0 || path >= NumDemandPaths {
		return
	}
	p.Hist[path].Add(lat)
}

// PathSummary is the reduced form of one path's latency histogram.
type PathSummary struct {
	Path          string
	Count         uint64
	Mean          float64
	P50, P95, P99 uint64
	// Max is the exact worst observed latency (not a bucket bound); the tail
	// exemplars reference it, so reports print it alongside the percentiles.
	Max uint64
}

// Summaries reduces every populated path to count/mean/p50/p95/p99/max, in
// DemandPath order (deterministic).
func (p *PathLatencies) Summaries() []PathSummary {
	var out []PathSummary
	for i := DemandPath(0); i < NumDemandPaths; i++ {
		h := &p.Hist[i]
		if h.N == 0 {
			continue
		}
		out = append(out, PathSummary{
			Path:  i.String(),
			Count: h.N,
			Mean:  h.Mean(),
			P50:   h.Percentile(50),
			P95:   h.Percentile(95),
			P99:   h.Percentile(99),
			Max:   h.Max,
		})
	}
	return out
}

// Table formats labeled rows for experiment output.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	out := t.Title + "\n"
	line := ""
	for i, c := range t.Columns {
		line += pad(c, widths[i]) + "  "
	}
	out += line + "\n"
	for _, r := range t.Rows {
		line = ""
		for i, c := range r {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			line += pad(c, w) + "  "
		}
		out += line + "\n"
	}
	return out
}

func pad(s string, w int) string {
	for len(s) < w {
		s += " "
	}
	return s
}

// CSV renders the table as comma-separated values (header row first);
// cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// SortedKeys returns map keys in sorted order, for deterministic output.
func SortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// F formats a float to 3 decimal places for table cells.
func F(x float64) string { return fmt.Sprintf("%.3f", x) }

// F2 formats a float to 2 decimal places for table cells.
func F2(x float64) string { return fmt.Sprintf("%.2f", x) }

// Ratio returns num/den, or 0 when the quotient is undefined: zero or
// non-finite denominator, or non-finite numerator. Every rate, fraction and
// ETA the drivers report funnels through this, so an idle epoch or a
// zero-length run yields 0 instead of poisoning JSONL/CSV/manifest output
// with NaN or Inf.
func Ratio(num, den float64) float64 {
	if den == 0 || math.IsInf(den, 0) || math.IsNaN(den) || math.IsInf(num, 0) || math.IsNaN(num) {
		return 0
	}
	return num / den
}
