package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccessRate(t *testing.T) {
	var m Memory
	if m.AccessRate() != 0 {
		t.Fatal("idle access rate must be 0")
	}
	m.LLCMisses = 100
	m.ServicedNM = 80
	m.ServicedFM = 20
	if got := m.AccessRate(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("AccessRate = %v, want 0.8", got)
	}
}

func TestDemandNMFraction(t *testing.T) {
	var m Memory
	m.AddBytes(NM, Demand, 300)
	m.AddBytes(FM, Demand, 100)
	m.AddBytes(NM, Migration, 9999) // must not count (Figure 8 is demand-only)
	m.AddBytes(FM, Metadata, 9999)
	if got := m.DemandNMFraction(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("DemandNMFraction = %v, want 0.75", got)
	}
}

func TestMigrationOverheadRatio(t *testing.T) {
	var m Memory
	m.AddBytes(NM, Demand, 50)
	m.AddBytes(FM, Demand, 50)
	m.AddBytes(NM, Migration, 150)
	m.AddBytes(FM, Metadata, 50)
	if got := m.MigrationOverheadRatio(); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("MigrationOverheadRatio = %v, want 2.0", got)
	}
}

func TestTotalBytesAndLevels(t *testing.T) {
	var m Memory
	m.AddBytes(NM, Demand, 1)
	m.AddBytes(NM, Migration, 2)
	m.AddBytes(NM, Metadata, 4)
	if m.TotalBytes(NM) != 7 {
		t.Fatalf("TotalBytes = %d, want 7", m.TotalBytes(NM))
	}
	if m.TotalBytes(FM) != 0 {
		t.Fatal("FM should be empty")
	}
	if NM.String() != "NM" || FM.String() != "FM" {
		t.Fatal("level names")
	}
	if Demand.String() != "demand" || Migration.String() != "migration" || Metadata.String() != "metadata" {
		t.Fatal("class names")
	}
}

func TestCoreMPKI(t *testing.T) {
	c := Core{Instructions: 2_000_000, LLCMisses: 50_000}
	if got := c.MPKI(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("MPKI = %v, want 25", got)
	}
	var z Core
	if z.MPKI() != 0 {
		t.Fatal("zero-instruction MPKI must be 0")
	}
}

func TestRunAggregates(t *testing.T) {
	r := Run{
		Cores:  []Core{{Instructions: 1000, LLCMisses: 10}, {Instructions: 1000, LLCMisses: 30}},
		Cycles: 500,
	}
	if r.TotalInstructions() != 2000 {
		t.Fatal("TotalInstructions")
	}
	if got := r.AvgMPKI(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("AvgMPKI = %v, want 20", got)
	}
	if got := r.Speedup(1000); math.Abs(got-2.0) > 1e-12 {
		t.Fatalf("Speedup = %v, want 2", got)
	}
	r.EnergyNJ = 3
	if got := r.EDP(); math.Abs(got-1500) > 1e-9 {
		t.Fatalf("EDP = %v, want 1500", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 0, -5, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("GeoMean ignoring nonpositive = %v, want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean must be 0")
	}
}

// Property: geomean lies between min and max of positive inputs.
func TestGeoMeanBounded(t *testing.T) {
	f := func(raw []uint16) bool {
		var xs []float64
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, r := range raw {
			x := float64(r) + 1
			xs = append(xs, x)
			mn, mx = math.Min(mn, x), math.Max(mx, x)
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		return g >= mn-1e-9 && g <= mx+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 5)
	for _, v := range []uint64{1, 5, 15, 25, 1000} {
		h.Add(v)
	}
	if h.N != 5 || h.Max != 1000 {
		t.Fatalf("N=%d Max=%d", h.N, h.Max)
	}
	if got := h.Mean(); math.Abs(got-209.2) > 1e-9 {
		t.Fatalf("Mean = %v", got)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Fatalf("bucket counts: %v", h.Counts)
	}
	if p := h.Percentile(50); p != 20 {
		t.Fatalf("P50 = %d, want 20", p)
	}
	var empty Histogram
	if empty.Mean() != 0 {
		t.Fatal("empty mean")
	}
}

// TestHistogramDegenerateShapes pins the fixed edge cases: a zero-valued
// Histogram (BucketWidth 0, no Counts) must accept samples without a
// divide-by-zero panic, and a zero-width histogram with buckets treats the
// width as 1.
func TestHistogramDegenerateShapes(t *testing.T) {
	var h Histogram // BucketWidth 0, Counts nil
	h.Add(7)
	h.Add(3)
	if h.N != 2 || h.Sum != 10 || h.Max != 7 {
		t.Fatalf("zero-value histogram accounting: N=%d Sum=%d Max=%d", h.N, h.Sum, h.Max)
	}
	if p := h.Percentile(99); p != 7 {
		t.Fatalf("bucketless P99 = %d, want Max", p)
	}

	hw := Histogram{Counts: make([]uint64, 4)} // width 0 -> 1
	for _, v := range []uint64{0, 1, 2, 3} {
		hw.Add(v)
	}
	for i, c := range hw.Counts {
		if c != 1 {
			t.Fatalf("width-1 bucket %d count = %d", i, c)
		}
	}
}

// TestHistogramPercentileOverflowBucket: samples clamped into the last
// bucket can exceed its nominal upper edge; the percentile answer must not
// undershoot the observed Max.
func TestHistogramPercentileOverflowBucket(t *testing.T) {
	h := NewHistogram(10, 4)
	for i := 0; i < 10; i++ {
		h.Add(1_000_000)
	}
	if p := h.Percentile(100); p != 1_000_000 {
		t.Fatalf("P100 = %d, want the true Max 1000000", p)
	}
	if p := h.Percentile(50); p != 1_000_000 {
		t.Fatalf("P50 = %d, want the true Max for an all-overflow histogram", p)
	}
	// Percentiles that resolve inside interior buckets keep the edge bound.
	h2 := NewHistogram(10, 4)
	for _, v := range []uint64{1, 1, 1, 99} {
		h2.Add(v)
	}
	if p := h2.Percentile(50); p != 10 {
		t.Fatalf("interior P50 = %d, want 10", p)
	}
}

func TestPredictorAccuracy(t *testing.T) {
	var m Memory
	if m.PredictorAccuracy() != 0 {
		t.Fatal("no samples -> 0")
	}
	m.PredictorHits, m.PredictorMisses = 9, 1
	if got := m.PredictorAccuracy(); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("accuracy = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"name", "value"}}
	tb.AddRow("bwaves", F2(1.5))
	tb.AddRow("mcf", F2(2.25))
	s := tb.String()
	if !strings.Contains(s, "bwaves") || !strings.Contains(s, "2.25") {
		t.Fatalf("table output missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), s)
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	ks := SortedKeys(m)
	if len(ks) != 3 || ks[0] != "a" || ks[1] != "b" || ks[2] != "c" {
		t.Fatalf("SortedKeys = %v", ks)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Title: "T", Columns: []string{"name", "value"}}
	tb.AddRow("plain", "1.5")
	tb.AddRow(`quo"ted`, "a,b")
	csv := tb.CSV()
	want := "name,value\nplain,1.5\n\"quo\"\"ted\",\"a,b\"\n"
	if csv != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", csv, want)
	}
}

func TestRatio(t *testing.T) {
	inf := math.Inf(1)
	nan := math.NaN()
	cases := []struct {
		num, den, want float64
	}{
		{6, 3, 2},
		{0, 5, 0},
		{5, 0, 0},  // zero denominator: the idle-epoch / empty-trace case
		{0, 0, 0},  // 0/0 would be NaN
		{-3, 0, 0}, // -3/0 would be -Inf
		{nan, 2, 0},
		{2, nan, 0},
		{inf, 2, 0},
		{2, inf, 0},
		{-8, 4, -2},
	}
	for _, c := range cases {
		if got := Ratio(c.num, c.den); got != c.want {
			t.Errorf("Ratio(%v, %v) = %v, want %v", c.num, c.den, got, c.want)
		}
	}
	if v := Ratio(1, 3); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("finite inputs produced non-finite %v", v)
	}
}
