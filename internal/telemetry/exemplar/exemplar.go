// Package exemplar is the tail-latency exemplar recorder: an always-on,
// bounded capture layer that keeps the complete life of the K slowest
// demand accesses per service path (stats.DemandPath). Aggregates answer
// "how bad is the tail"; exemplars answer "show me one concrete p99.9
// access and its life story" — the full span decomposition stamped by
// attribution plus point-in-time context sampled at issue and completion
// (device location, lock state, DRAM row/bank state, scheme gauges, open
// incidents).
//
// Like every observability layer in this repo the recorder is provably
// inert: it only copies counters into preallocated reservoirs on the
// simulation goroutine, never schedules events or touches simulation state,
// so enabling it cannot change Cycles, any stats.Memory counter, or the
// incident stream. Reservoirs are counted, never grown — K fixed-size slots
// per path with per-slot reusable gauge buffers — so the steady-state
// admission path allocates nothing. For a fixed seed its output is byte-
// deterministic: admission uses a total order (latency, then issue cycle,
// then completion sequence) with no maps in any ordered walk.
package exemplar

import (
	"silcfm/internal/health"
	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry"
)

// DefaultK is the per-path reservoir depth.
const DefaultK = 16

// Config tunes the recorder. The zero value means "defaults"; harness.Run
// attaches a recorder to every run unless Disabled is set.
type Config struct {
	// Disabled turns the recorder off entirely.
	Disabled bool
	// K is the per-path reservoir depth (default 16).
	K int
	// OnSnapshot, when set, receives a fresh worst-first snapshot of every
	// reservoir at each telemetry epoch boundary, on the simulation
	// goroutine (the live registry attaches here). Snapshots are immutable
	// once emitted, so the callback may retain and share them freely.
	OnSnapshot func([]Exemplar)
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = DefaultK
	}
	return c
}

// PointContext is the instantaneous system state sampled around one demand
// access: at issue (when the controller dispatched the demand to a device)
// and at completion (when the data returned). All queries behind it are
// pure and O(1).
type PointContext struct {
	// Cycle is when the context was sampled.
	Cycle uint64 `json:"cycle"`
	// Level/DevAddr locate the subblock the demand targeted at sample time
	// (the src side for swaps; the current Locate result at completion).
	Level   string `json:"level"`
	DevAddr uint64 `json:"dev_addr"`
	// Locked/LockHome report the scheme's lock state for the accessed block
	// (mem.LockProbe; false/false when the scheme has no locking).
	Locked   bool `json:"locked"`
	LockHome bool `json:"lock_home"`
	// RowOpen reports whether the target DRAM bank had the demand's row
	// open; BankLoad is the number of requests queued for that bank.
	RowOpen  bool `json:"row_open"`
	BankLoad int  `json:"bank_load"`
}

// SpanCycles is one named component of an exemplar's latency.
type SpanCycles struct {
	Span   string `json:"span"`
	Cycles uint64 `json:"cycles"`
}

// Exemplar is the JSON-friendly record of one captured worst-K access.
// Field order is fixed, so JSONL output is byte-deterministic.
type Exemplar struct {
	Path string `json:"path"`
	// Seq is the monotone demand-completion sequence number, the final
	// determinism tie-break.
	Seq      uint64 `json:"seq"`
	Core     int    `json:"core"`
	PC       uint64 `json:"pc"`
	PAddr    uint64 `json:"paddr"`
	Block    uint64 `json:"block"`
	Subblock uint   `json:"subblock"`
	Write    bool   `json:"write"`
	// StartCycle is when the access entered the memory system;
	// CompleteCycle when its demand data returned. Latency is their
	// difference and exactly equals the sum of Spans (the SpanOther
	// residual is stamped before completion observers run).
	StartCycle    uint64 `json:"start_cycle"`
	CompleteCycle uint64 `json:"complete_cycle"`
	Latency       uint64 `json:"latency"`
	// Spans is the full attribution decomposition in stats.Span order;
	// zero spans are included so waterfalls line up across exemplars.
	Spans [stats.NumSpans]SpanCycles `json:"spans"`
	// Issue is absent for accesses classified without passing through
	// ServiceAccess/SwapAccess (CAMEO's combined remap-read completions).
	Issue    *PointContext `json:"issue,omitempty"`
	Complete PointContext  `json:"complete"`
	// Epoch context as of the last telemetry epoch boundary before
	// completion (zero-valued before the first boundary).
	Epoch         uint64      `json:"epoch"`
	OpenIncidents []string    `json:"open_incidents,omitempty"`
	Gauges        []mem.Gauge `json:"gauges,omitempty"`
}

// pointCtx is the compact in-reservoir form of a PointContext.
type pointCtx struct {
	cycle    uint64
	loc      mem.Location
	locked   bool
	lockHome bool
	rowOpen  bool
	bankLoad int
}

// slot is one reservoir entry. The openKinds and gauges buffers are
// allocated once per slot and reused across evictions, so steady-state
// admission never allocates.
type slot struct {
	seq      uint64
	core     int
	pc       uint64
	paddr    uint64
	write    bool
	start    uint64
	complete uint64
	lat      uint64
	spans    [stats.NumSpans]uint64
	hasIssue bool
	issue    pointCtx
	done     pointCtx
	epoch    uint64
	open     []bool // health.Kinds() order
	gauges   []mem.Gauge
}

// reservoir is one path's fixed-capacity worst-K min-heap, keyed by the
// eviction order: the root is the entry closest to eviction (lowest
// latency; among ties the latest issue, then the latest completion).
type reservoir struct {
	slots []slot
	n     int
}

// evictsBefore reports whether a is evicted before b (a is "worse" to
// keep). Total order: latency asc, start cycle desc, seq desc.
func evictsBefore(a, b *slot) bool {
	if a.lat != b.lat {
		return a.lat < b.lat
	}
	if a.start != b.start {
		return a.start > b.start
	}
	return a.seq > b.seq
}

func (rv *reservoir) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !evictsBefore(&rv.slots[i], &rv.slots[p]) {
			return
		}
		rv.slots[i], rv.slots[p] = rv.slots[p], rv.slots[i]
		i = p
	}
}

func (rv *reservoir) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < rv.n && evictsBefore(&rv.slots[l], &rv.slots[m]) {
			m = l
		}
		if r < rv.n && evictsBefore(&rv.slots[r], &rv.slots[m]) {
			m = r
		}
		if m == i {
			return
		}
		rv.slots[i], rv.slots[m] = rv.slots[m], rv.slots[i]
		i = m
	}
}

// Recorder is one run's exemplar recorder. It implements mem.Observer,
// mem.DemandIssueObserver and mem.DemandObserver for the access feed, and
// is fed epoch state + health status by the harness's OnEpoch chain
// (Observe). Not safe for concurrent use: everything runs on the
// simulation goroutine.
type Recorder struct {
	cfg Config
	eng *sim.Engine
	sys *mem.System
	ctl mem.Controller
	lp  mem.LockProbe // ctl's optional lock probe, resolved once

	kinds   []string // health.Kinds(), index-aligned with slot.open
	kindIdx map[string]int

	res [stats.NumDemandPaths]reservoir
	seq uint64

	// inflight holds issue-time context keyed by the access pointer
	// (pooled accesses are stable for the life of one demand). Entries
	// are removed at completion; the map reaches the peak in-flight count
	// and then stops growing, so steady state allocates nothing.
	inflight map[*mem.Access]pointCtx

	// Epoch context as of the last Observe: copied into slots at
	// admission via per-slot buffers.
	epoch       uint64
	openNow     []bool
	epochGauges []mem.Gauge
}

// New builds a recorder over sys with cfg's bounds (zero fields take the
// documented defaults). ctl, when non-nil, provides completion-time
// Locate and (if it implements mem.LockProbe) lock-state sampling.
// Returns nil when cfg.Disabled is set; all Recorder methods are nil-safe.
func New(cfg Config, sys *mem.System, ctl mem.Controller) *Recorder {
	if cfg.Disabled {
		return nil
	}
	r := &Recorder{
		cfg:      cfg.withDefaults(),
		eng:      sys.Eng,
		sys:      sys,
		ctl:      ctl,
		kinds:    health.Kinds(),
		inflight: make(map[*mem.Access]pointCtx),
	}
	r.lp, _ = ctl.(mem.LockProbe)
	r.kindIdx = make(map[string]int, len(r.kinds))
	for i, k := range r.kinds {
		r.kindIdx[k] = i
	}
	r.openNow = make([]bool, len(r.kinds))
	for p := range r.res {
		r.res[p].slots = make([]slot, r.cfg.K)
		for i := range r.res[p].slots {
			r.res[p].slots[i].open = make([]bool, len(r.kinds))
		}
	}
	return r
}

// K returns the per-path reservoir depth.
func (r *Recorder) K() int {
	if r == nil {
		return 0
	}
	return r.cfg.K
}

// --- mem.Observer -----------------------------------------------------

// Demand/Capture/Deliver/Relocate are part of the raw dataflow stream; the
// recorder keys off the demand issue/completion events instead, so these
// are no-ops (implementing the base interface is what lets the recorder
// join the fanout).
func (r *Recorder) Demand(pa uint64, loc mem.Location, write bool) {}
func (r *Recorder) Capture(loc mem.Location)                       {}
func (r *Recorder) Deliver(src, dst mem.Location)                  {}
func (r *Recorder) Relocate(src, dst mem.Location)                 {}

// pointAt samples the instantaneous context of flat address pa serviced at
// loc: lock state plus the target bank's open-row and queue-load state.
func (r *Recorder) pointAt(pa uint64, loc mem.Location) pointCtx {
	dev := r.sys.Device(loc.Level)
	p := pointCtx{
		cycle:    r.eng.Now(),
		loc:      loc,
		rowOpen:  dev.RowOpen(loc.DevAddr),
		bankLoad: dev.BankLoad(loc.DevAddr),
	}
	if r.lp != nil {
		p.locked, p.lockHome = r.lp.LockState(pa)
	}
	return p
}

// --- mem.DemandIssueObserver ------------------------------------------

// DemandIssue captures issue-time context for a demand dispatched through
// ServiceAccess/SwapAccess, before any synchronous completion can fire.
func (r *Recorder) DemandIssue(a *mem.Access, path stats.DemandPath, loc mem.Location) {
	if r == nil {
		return
	}
	r.inflight[a] = r.pointAt(a.PAddr, loc)
}

// --- mem.DemandObserver -----------------------------------------------

// DemandComplete considers one completed access for its path's reservoir.
// The access's spans are final here (the SpanOther residual is stamped
// before completion observers run), so the captured span sum equals lat
// exactly.
func (r *Recorder) DemandComplete(a *mem.Access, path stats.DemandPath, lat uint64) {
	if r == nil {
		return
	}
	r.seq++
	ic, hasIssue := r.inflight[a]
	if hasIssue {
		delete(r.inflight, a)
	}
	if path < 0 || path >= stats.NumDemandPaths {
		return
	}
	rv := &r.res[path]
	if rv.n < len(rv.slots) {
		s := &rv.slots[rv.n]
		r.fill(s, a, lat, ic, hasIssue)
		rv.n++
		rv.siftUp(rv.n - 1)
		return
	}
	// Full reservoir: admit only if the candidate outranks the eviction
	// root. The candidate's seq is always the largest, so on a full
	// latency+issue tie the incumbent keeps its slot (first-come-keeps).
	root := &rv.slots[0]
	if lat < root.lat || (lat == root.lat && a.Start > root.start) || (lat == root.lat && a.Start == root.start) {
		return
	}
	r.fill(root, a, lat, ic, hasIssue)
	rv.siftDown(0)
}

// fill overwrites s with the completed access, reusing s's buffers.
func (r *Recorder) fill(s *slot, a *mem.Access, lat uint64, ic pointCtx, hasIssue bool) {
	s.seq = r.seq
	s.core, s.pc, s.paddr, s.write = a.Core, a.PC, a.PAddr, a.Write
	s.start = a.Start
	s.complete = r.eng.Now()
	s.lat = lat
	s.spans = a.Spans()
	s.hasIssue = hasIssue
	s.issue = ic
	loc := r.sys.HomeLocation(a.PAddr)
	if r.ctl != nil {
		loc = r.ctl.Locate(a.PAddr)
	}
	s.done = r.pointAt(a.PAddr, loc)
	s.epoch = r.epoch
	copy(s.open, r.openNow)
	s.gauges = append(s.gauges[:0], r.epochGauges...)
}

// Observe feeds one telemetry epoch boundary: the recorder keeps the
// epoch index, scheme gauges and open incident kinds as the context
// stamped onto subsequently admitted exemplars. Called by the harness's
// OnEpoch chain after the detector has stepped.
func (r *Recorder) Observe(st telemetry.EpochState, hs health.Status) {
	if r == nil || st.Sample == nil {
		return
	}
	r.epoch = st.Sample.Epoch
	r.epochGauges = append(r.epochGauges[:0], st.Sample.Gauges...)
	for i := range r.openNow {
		r.openNow[i] = false
	}
	for i := range hs.Open {
		if k, ok := r.kindIdx[hs.Open[i].Kind]; ok {
			r.openNow[k] = true
		}
	}
	if r.cfg.OnSnapshot != nil {
		r.cfg.OnSnapshot(r.Snapshot())
	}
}

// exemplarOf converts a reservoir slot into its JSON form (fresh copies:
// snapshots outlive the reservoir).
func (r *Recorder) exemplarOf(s *slot, path stats.DemandPath) Exemplar {
	e := Exemplar{
		Path:          path.String(),
		Seq:           s.seq,
		Core:          s.core,
		PC:            s.pc,
		PAddr:         s.paddr,
		Block:         uint64(memunits.BlockOf(s.paddr)),
		Subblock:      memunits.SubblockIndex(s.paddr),
		Write:         s.write,
		StartCycle:    s.start,
		CompleteCycle: s.complete,
		Latency:       s.lat,
		Complete:      jsonPoint(&s.done),
		Epoch:         s.epoch,
	}
	for sp := stats.Span(0); sp < stats.NumSpans; sp++ {
		e.Spans[sp] = SpanCycles{Span: sp.String(), Cycles: s.spans[sp]}
	}
	if s.hasIssue {
		p := jsonPoint(&s.issue)
		e.Issue = &p
	}
	for i, open := range s.open {
		if open {
			e.OpenIncidents = append(e.OpenIncidents, r.kinds[i])
		}
	}
	if len(s.gauges) > 0 {
		e.Gauges = append([]mem.Gauge(nil), s.gauges...)
	}
	return e
}

func jsonPoint(p *pointCtx) PointContext {
	return PointContext{
		Cycle:    p.cycle,
		Level:    p.loc.Level.String(),
		DevAddr:  p.loc.DevAddr,
		Locked:   p.locked,
		LockHome: p.lockHome,
		RowOpen:  p.rowOpen,
		BankLoad: p.bankLoad,
	}
}

// Snapshot returns every captured exemplar, grouped by path in
// stats.DemandPath order and worst-first within each path (latency desc,
// start cycle asc, seq asc). The result is freshly allocated and immutable;
// safe to retain. Allocation here is fine — snapshots happen at epoch
// boundaries, incident opens and end of run, never on the admission path.
func (r *Recorder) Snapshot() []Exemplar {
	if r == nil {
		return nil
	}
	var total int
	for p := range r.res {
		total += r.res[p].n
	}
	out := make([]Exemplar, 0, total)
	for p := stats.DemandPath(0); p < stats.NumDemandPaths; p++ {
		rv := &r.res[p]
		start := len(out)
		for i := 0; i < rv.n; i++ {
			out = append(out, r.exemplarOf(&rv.slots[i], p))
		}
		sortWorstFirst(out[start:])
	}
	return out
}

// sortWorstFirst insertion-sorts exemplars by latency desc, start cycle
// asc, seq asc (the reservoirs are tiny).
func sortWorstFirst(es []Exemplar) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i
		for j > 0 && rankedBelow(&es[j-1], &e) {
			es[j] = es[j-1]
			j--
		}
		es[j] = e
	}
}

// rankedBelow reports whether a ranks below b in the worst-first order.
func rankedBelow(a, b *Exemplar) bool {
	if a.Latency != b.Latency {
		return a.Latency < b.Latency
	}
	if a.StartCycle != b.StartCycle {
		return a.StartCycle > b.StartCycle
	}
	return a.Seq > b.Seq
}

// Finish returns the final snapshot. Call once, after telemetry Finish has
// pumped the final partial epoch.
func (r *Recorder) Finish() []Exemplar {
	if r == nil {
		return nil
	}
	return r.Snapshot()
}
