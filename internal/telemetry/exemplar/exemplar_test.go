package exemplar_test

import (
	"bytes"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry/exemplar"
)

// newRecorder builds a recorder over a bare idle system, so tests can feed
// the observer hooks directly with hand-built accesses.
func newRecorder(t *testing.T, k int) (*sim.Engine, *mem.System, *exemplar.Recorder) {
	t.Helper()
	eng := sim.NewEngine()
	sys := mem.NewSystem(config.Small(), eng)
	r := exemplar.New(exemplar.Config{K: k}, sys, nil)
	if r == nil {
		t.Fatal("New returned nil for an enabled config")
	}
	return eng, sys, r
}

// feed issues and completes one access at the given cycle with the given
// latency. Spans are stamped so they sum exactly to lat (all SpanService),
// mirroring the attribution invariant the recorder relies on.
func feed(eng *sim.Engine, sys *mem.System, r *exemplar.Recorder,
	path stats.DemandPath, pa, at, lat uint64) {
	eng.At(at, func() {
		a := &mem.Access{PAddr: pa, Start: at - lat}
		a.AddSpan(stats.SpanService, lat)
		r.DemandIssue(a, path, sys.HomeLocation(pa))
		r.DemandComplete(a, path, lat)
	})
}

func latenciesOf(es []exemplar.Exemplar) []uint64 {
	var out []uint64
	for i := range es {
		out = append(out, es[i].Latency)
	}
	return out
}

func TestDisabledIsNilAndNilSafe(t *testing.T) {
	eng := sim.NewEngine()
	sys := mem.NewSystem(config.Small(), eng)
	r := exemplar.New(exemplar.Config{Disabled: true}, sys, nil)
	if r != nil {
		t.Fatal("Disabled config did not return nil")
	}
	// Every method must be a no-op on the nil receiver.
	a := &mem.Access{PAddr: 64}
	r.DemandIssue(a, stats.PathNMHit, sys.HomeLocation(64))
	r.DemandComplete(a, stats.PathNMHit, 10)
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder Snapshot = %v, want nil", got)
	}
	if got := r.Finish(); got != nil {
		t.Fatalf("nil recorder Finish = %v, want nil", got)
	}
	if r.K() != 0 {
		t.Fatalf("nil recorder K = %d, want 0", r.K())
	}
}

func TestFewerThanKKeepsAll(t *testing.T) {
	eng, sys, r := newRecorder(t, 16)
	for i, lat := range []uint64{30, 10, 20} {
		feed(eng, sys, r, stats.PathNMHit, uint64(i)*64, 100+uint64(i)*100, lat)
	}
	eng.Run()
	es := r.Finish()
	if len(es) != 3 {
		t.Fatalf("captured %d exemplars, want 3", len(es))
	}
	want := []uint64{30, 20, 10}
	for i, w := range want {
		if es[i].Latency != w {
			t.Fatalf("snapshot latencies %v, want worst-first %v", latenciesOf(es), want)
		}
	}
}

func TestK1KeepsOnlyTheWorst(t *testing.T) {
	eng, sys, r := newRecorder(t, 1)
	lats := []uint64{5, 90, 12, 90, 41}
	for i, lat := range lats {
		feed(eng, sys, r, stats.PathFM, uint64(i)*64, 100+uint64(i)*100, lat)
	}
	eng.Run()
	es := r.Finish()
	if len(es) != 1 {
		t.Fatalf("K=1 reservoir holds %d exemplars, want 1", len(es))
	}
	if es[0].Latency != 90 {
		t.Fatalf("kept latency %d, want 90", es[0].Latency)
	}
	// On the full-reservoir exact tie (the second 90), the incumbent keeps
	// its slot: the survivor must be the first 90 (earlier start, earlier seq).
	if es[0].StartCycle != 200-90 {
		t.Fatalf("tie broke toward the later access: start=%d, want %d",
			es[0].StartCycle, 200-90)
	}
}

func TestEvictionBoundary(t *testing.T) {
	eng, sys, r := newRecorder(t, 2)
	for i, lat := range []uint64{10, 20, 30} {
		feed(eng, sys, r, stats.PathSwap, uint64(i)*64, 100+uint64(i)*100, lat)
	}
	// Below the root: must be rejected. Above the root: must evict it.
	feed(eng, sys, r, stats.PathSwap, 4*64, 500, 15)
	feed(eng, sys, r, stats.PathSwap, 5*64, 600, 25)
	eng.Run()
	es := r.Finish()
	got := latenciesOf(es)
	want := []uint64{30, 25}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("reservoir after boundary churn holds %v, want %v", got, want)
	}
}

func TestExactTieOrderIsPinned(t *testing.T) {
	eng, sys, r := newRecorder(t, 8)
	// Three accesses with identical latency, distinct start cycles, fed
	// out of start order. Worst-first order pins start asc then seq asc.
	for _, at := range []uint64{300, 100, 200} {
		feed(eng, sys, r, stats.PathNMHit, at, at, 50)
	}
	eng.Run()
	es := r.Finish()
	if len(es) != 3 {
		t.Fatalf("captured %d, want 3", len(es))
	}
	for i, wantStart := range []uint64{50, 150, 250} {
		if es[i].StartCycle != wantStart {
			t.Fatalf("tie order: snapshot[%d].StartCycle=%d, want %d",
				i, es[i].StartCycle, wantStart)
		}
	}
	for i := 1; i < len(es); i++ {
		if es[i].Seq <= es[i-1].Seq {
			t.Fatalf("equal-start tie must order by seq asc: %d after %d",
				es[i].Seq, es[i-1].Seq)
		}
	}
}

func TestPathsAreIndependentAndGrouped(t *testing.T) {
	eng, sys, r := newRecorder(t, 4)
	feed(eng, sys, r, stats.PathFM, 64, 100, 10)
	feed(eng, sys, r, stats.PathNMHit, 128, 200, 99)
	feed(eng, sys, r, stats.PathFM, 192, 300, 20)
	eng.Run()
	es := r.Finish()
	if len(es) != 3 {
		t.Fatalf("captured %d, want 3", len(es))
	}
	// Snapshot is grouped in stats.DemandPath order: nm-hit before fm,
	// worst-first inside each group.
	wantPaths := []string{stats.PathNMHit.String(), stats.PathFM.String(), stats.PathFM.String()}
	wantLats := []uint64{99, 20, 10}
	for i := range es {
		if es[i].Path != wantPaths[i] || es[i].Latency != wantLats[i] {
			t.Fatalf("snapshot[%d] = %s/%d, want %s/%d",
				i, es[i].Path, es[i].Latency, wantPaths[i], wantLats[i])
		}
	}
}

func TestSpanSumEqualsLatency(t *testing.T) {
	eng, _, r := newRecorder(t, 8)
	eng.At(100, func() {
		a := &mem.Access{PAddr: 64, Start: 40}
		a.AddSpan(stats.SpanQueue, 13)
		a.AddSpan(stats.SpanService, 27)
		a.AddSpan(stats.SpanMetaFetch, 11)
		a.AddSpan(stats.SpanOther, 9)
		r.DemandComplete(a, stats.PathMispredict, 60)
	})
	eng.Run()
	es := r.Finish()
	if len(es) != 1 {
		t.Fatalf("captured %d, want 1", len(es))
	}
	var sum uint64
	for _, sp := range es[0].Spans {
		sum += sp.Cycles
	}
	if sum != es[0].Latency {
		t.Fatalf("span sum %d != latency %d", sum, es[0].Latency)
	}
	if es[0].Issue != nil {
		t.Fatal("completion without DemandIssue must leave Issue nil")
	}
}

func TestSnapshotJSONLIsByteDeterministic(t *testing.T) {
	run := func() []byte {
		eng, sys, r := newRecorder(t, 4)
		for i, lat := range []uint64{40, 40, 7, 93, 21, 40} {
			feed(eng, sys, r, stats.DemandPath(i%3), uint64(i)*64, 100+uint64(i)*50, lat)
		}
		eng.Run()
		var b bytes.Buffer
		if err := exemplar.WriteJSONL(&b, r.Finish()); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("empty JSONL")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("JSONL differs between identical runs:\n%s\nvs\n%s", a, b)
	}
}

func TestSteadyStateAdmissionDoesNotAllocate(t *testing.T) {
	eng, sys, r := newRecorder(t, 4)
	loc := sys.HomeLocation(64)
	a := &mem.Access{}
	lat := uint64(100)
	// Warm up: fill the reservoir and reach the peak in-flight map size.
	for i := 0; i < 8; i++ {
		lat++
		a.Reset(0, 0, 64, false, 0, nil)
		r.DemandIssue(a, stats.PathSwap, loc)
		r.DemandComplete(a, stats.PathSwap, lat)
	}
	// Every iteration admits (latency strictly increasing), exercising the
	// full issue → evict-root → fill path. Must be allocation-free.
	allocs := testing.AllocsPerRun(200, func() {
		lat++
		a.Reset(0, 0, 64, false, 0, nil)
		r.DemandIssue(a, stats.PathSwap, loc)
		r.DemandComplete(a, stats.PathSwap, lat)
	})
	if allocs != 0 {
		t.Fatalf("steady-state admission allocates %.1f per access, want 0", allocs)
	}
	_ = eng
}

func TestSummarizeCountsAndWorst(t *testing.T) {
	eng, sys, r := newRecorder(t, 8)
	feed(eng, sys, r, stats.PathNMHit, 64, 100, 10)
	feed(eng, sys, r, stats.PathNMHit, 128, 200, 30)
	feed(eng, sys, r, stats.PathBypass, 192, 300, 77)
	eng.Run()
	sums := exemplar.Summarize(r.Finish())
	if len(sums) != 2 {
		t.Fatalf("got %d path summaries, want 2", len(sums))
	}
	if sums[0].Path != stats.PathNMHit.String() || sums[0].Count != 2 || sums[0].WorstLatency != 30 {
		t.Fatalf("nm-hit summary %+v", sums[0])
	}
	if sums[1].Path != stats.PathBypass.String() || sums[1].Count != 1 || sums[1].WorstLatency != 77 {
		t.Fatalf("bypass summary %+v", sums[1])
	}
	if sums[1].WorstSpan != stats.SpanService.String() {
		t.Fatalf("worst span %q, want %q", sums[1].WorstSpan, stats.SpanService)
	}
}
