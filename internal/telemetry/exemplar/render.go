package exemplar

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"silcfm/internal/stats"
)

// WriteJSONL streams exemplars one JSON object per line, in snapshot
// order. Field order is fixed by the Exemplar struct, so output is
// byte-deterministic.
func WriteJSONL(w io.Writer, es []Exemplar) error {
	for i := range es {
		b, err := json.Marshal(&es[i])
		if err != nil {
			return err
		}
		b = append(b, '\n')
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// waterfallWidth is the character budget of the rendered span bar.
const waterfallWidth = 40

// spanGlyphs maps stats.Span order to the bar glyph per span, so a
// waterfall is readable without color: queue '.', service '#',
// meta-fetch 'm', swap-serial 's', mispredict '!', other '-'.
var spanGlyphs = [stats.NumSpans]byte{'.', '#', 'm', 's', '!', '-'}

// RenderWaterfall writes the human-readable tail-exemplar report: per path
// (worst-first within each), a one-line summary plus a proportional span
// bar. top bounds exemplars per path (0 = all). Deterministic: pure
// function of es.
func RenderWaterfall(w io.Writer, es []Exemplar, top int) {
	if len(es) == 0 {
		fmt.Fprintln(w, "tail exemplars: none captured")
		return
	}
	fmt.Fprintln(w, "tail exemplars:")
	// Legend once, naming every glyph in span order.
	var legend []string
	for sp := stats.Span(0); sp < stats.NumSpans; sp++ {
		legend = append(legend, fmt.Sprintf("%c=%s", spanGlyphs[sp], sp))
	}
	fmt.Fprintf(w, "  spans: %s\n", strings.Join(legend, " "))
	path := ""
	n := 0
	for i := range es {
		e := &es[i]
		if e.Path != path {
			path, n = e.Path, 0
			fmt.Fprintf(w, "  %s:\n", path)
		}
		n++
		if top > 0 && n > top {
			continue
		}
		fmt.Fprintf(w, "    lat=%-7d cyc=%-10d pa=0x%-10x %s%s\n",
			e.Latency, e.StartCycle, e.PAddr, bar(e), annotations(e))
	}
}

// bar renders the proportional span waterfall of one exemplar.
func bar(e *Exemplar) string {
	if e.Latency == 0 {
		return strings.Repeat(" ", waterfallWidth)
	}
	var b strings.Builder
	used := 0
	for sp := stats.Span(0); sp < stats.NumSpans; sp++ {
		c := e.Spans[sp].Cycles
		if c == 0 {
			continue
		}
		// Round to nearest cell but keep at least one for any nonzero span,
		// so a thin-but-real component never disappears from the bar.
		cells := int((c*uint64(waterfallWidth) + e.Latency/2) / e.Latency)
		if cells == 0 {
			cells = 1
		}
		if used+cells > waterfallWidth {
			cells = waterfallWidth - used
		}
		for i := 0; i < cells; i++ {
			b.WriteByte(spanGlyphs[sp])
		}
		used += cells
	}
	for used < waterfallWidth {
		b.WriteByte(' ')
		used++
	}
	return b.String()
}

// annotations appends the point-in-time context flags worth a glance:
// write vs read, lock state, row/bank pressure at completion, and any
// incidents open when the exemplar was admitted.
func annotations(e *Exemplar) string {
	var parts []string
	if e.Write {
		parts = append(parts, "write")
	}
	if e.Complete.Locked {
		if e.Complete.LockHome {
			parts = append(parts, "locked-home")
		} else {
			parts = append(parts, "locked")
		}
	}
	if e.Issue != nil && !e.Issue.RowOpen {
		parts = append(parts, "row-closed")
	}
	if e.Issue != nil && e.Issue.BankLoad > 0 {
		parts = append(parts, fmt.Sprintf("bank-load=%d", e.Issue.BankLoad))
	}
	if len(e.OpenIncidents) > 0 {
		parts = append(parts, "incidents="+strings.Join(e.OpenIncidents, "+"))
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, " ") + "]"
}

// PathSummary reduces one path's captured exemplars to the manifest leaf:
// reservoir occupancy and the worst access's identity. Every field is a
// pure function of the simulation, so it is sim-exact in manifests.
type PathSummary struct {
	Path string `json:"path"`
	// Count is the reservoir occupancy (min(K, completions on the path)).
	Count int `json:"count"`
	// Worst* identify the slowest access: its end-to-end latency, start
	// cycle, flat block, and the largest non-other span component.
	WorstLatency uint64 `json:"worst_latency"`
	WorstStart   uint64 `json:"worst_start"`
	WorstBlock   uint64 `json:"worst_block"`
	WorstSpan    string `json:"worst_span"`
}

// Summarize reduces a snapshot (path-grouped, worst-first) to per-path
// summaries in snapshot order.
func Summarize(es []Exemplar) []PathSummary {
	var out []PathSummary
	for i := range es {
		e := &es[i]
		if len(out) == 0 || out[len(out)-1].Path != e.Path {
			out = append(out, PathSummary{
				Path:         e.Path,
				WorstLatency: e.Latency,
				WorstStart:   e.StartCycle,
				WorstBlock:   e.Block,
				WorstSpan:    dominantSpan(e),
			})
		}
		out[len(out)-1].Count++
	}
	return out
}

// dominantSpan names e's largest latency component, preferring named spans
// over the residual on ties (earlier span wins a tie, matching span order).
func dominantSpan(e *Exemplar) string {
	best := stats.Span(0)
	for sp := stats.Span(1); sp < stats.NumSpans; sp++ {
		if e.Spans[sp].Cycles > e.Spans[best].Cycles {
			best = sp
		}
	}
	return best.String()
}
