package live

import "net/http"

// handleDashboard serves the embedded zero-dependency HTML dashboard at /.
// Everything it shows is derived from /events (with an /api/runs polling
// fallback), so the page carries no server-rendered state and is safe to
// cache-bust by reload.
func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashboardHTML))
}

// dashboardHTML is the whole dashboard: inline CSS (light/dark from one
// set of role variables), inline JS, no external assets. Sparkline series
// hues and status colors follow the repo's validated palette; single-series
// sparklines are named by their column header, values are direct-labeled in
// text ink, and incidents always pair an icon with a label.
const dashboardHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>silcfm fleet</title>
<style>
:root {
  color-scheme: light dark;
  --surface: #fcfcfb; --surface-2: #f0efec; --border: #dddcd7;
  --text: #0b0b0b; --text-2: #52514e;
  --s-rate: #2a78d6; --s-queue: #eb6834;
  --ok: #0ca30c; --crit: #d03b3b; --track: #e7e6e2;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --surface-2: #242422; --border: #383835;
    --text: #ffffff; --text-2: #c3c2b7;
    --s-rate: #3987e5; --s-queue: #d95926;
    --ok: #0ca30c; --crit: #d03b3b; --track: #333331;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 16px 20px; background: var(--surface); color: var(--text);
  font: 13px/1.45 ui-monospace, SFMono-Regular, Menlo, Consolas, monospace;
}
h1 { font-size: 15px; margin: 0 0 2px; font-weight: 600; }
.sub { color: var(--text-2); margin-bottom: 14px; }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin-bottom: 16px; }
.tile {
  background: var(--surface-2); border: 1px solid var(--border); border-radius: 6px;
  padding: 8px 14px; min-width: 118px;
}
.tile .v { font-size: 20px; font-weight: 600; }
.tile .k { color: var(--text-2); font-size: 11px; }
.tile.alert .v { color: var(--crit); }
.tile.calm .v { color: var(--ok); }
table { border-collapse: collapse; width: 100%; }
th, td { text-align: left; padding: 3px 10px 3px 0; white-space: nowrap; }
th { color: var(--text-2); font-weight: 500; font-size: 11px; border-bottom: 1px solid var(--border); }
tr.group td {
  padding-top: 10px; font-weight: 600; border-bottom: 1px solid var(--border);
}
tr.group .agg { color: var(--text-2); font-weight: 400; }
td.run { color: var(--text-2); padding-left: 14px; }
.bar { width: 140px; height: 8px; background: var(--track); border-radius: 4px; overflow: hidden; display: inline-block; vertical-align: middle; }
.bar i { display: block; height: 100%; background: var(--s-rate); border-radius: 4px; }
tr.done .bar i { background: var(--ok); }
canvas.spark { vertical-align: middle; }
.sv { display: inline-block; min-width: 44px; text-align: right; color: var(--text); }
.inc { color: var(--crit); font-weight: 600; }
.okc { color: var(--ok); }
.footer { margin-top: 14px; color: var(--text-2); font-size: 11px; }
a { color: var(--s-rate); }
h2 { font-size: 13px; margin: 20px 0 6px; font-weight: 600; }
#incs td { cursor: pointer; }
#incs tr:hover td { background: var(--surface-2); }
#drill {
  margin-top: 10px; border: 1px solid var(--border); border-radius: 6px;
  background: var(--surface-2); padding: 12px 14px;
}
#drill h3 { font-size: 13px; margin: 0 0 6px; }
#drill .meta { color: var(--text-2); font-size: 11px; margin-bottom: 8px; }
#drill .rule { margin: 6px 0; font-size: 12px; }
#drill .rule b { color: var(--crit); }
#drill .sline { margin: 2px 0; }
#drill .sname { display: inline-block; width: 110px; color: var(--text-2); font-size: 11px; }
#drill .close { float: right; cursor: pointer; color: var(--text-2); }
#exs td { cursor: pointer; }
#exs tr:hover td { background: var(--surface-2); }
#exdrill {
  margin-top: 10px; border: 1px solid var(--border); border-radius: 6px;
  background: var(--surface-2); padding: 12px 14px;
}
#exdrill h3 { font-size: 13px; margin: 0 0 6px; }
#exdrill .meta { color: var(--text-2); font-size: 11px; margin-bottom: 8px; }
#exdrill .close { float: right; cursor: pointer; color: var(--text-2); }
#exdrill .wfline { margin: 3px 0; white-space: nowrap; }
#exdrill .wfid { display: inline-block; width: 230px; font-size: 11px; color: var(--text-2); }
.wfbar {
  display: inline-block; width: 320px; height: 10px; background: var(--track);
  border-radius: 3px; overflow: hidden; vertical-align: middle; font-size: 0; white-space: nowrap;
}
.wfbar i { display: inline-block; height: 100%; }
#exdrill .wfnote { font-size: 11px; color: var(--text-2); margin-left: 8px; }
#exdrill .legend { font-size: 11px; color: var(--text-2); margin: 6px 0; }
#exdrill .legend i { display: inline-block; width: 10px; height: 10px; border-radius: 2px; vertical-align: middle; margin: 0 3px 0 10px; }
</style>
</head>
<body>
<h1>silcfm fleet</h1>
<div class="sub" id="conn">connecting&hellip;</div>
<div class="tiles">
  <div class="tile"><div class="v" id="t-cells">&ndash;</div><div class="k">cells done / total</div></div>
  <div class="tile"><div class="v" id="t-mcyc">&ndash;</div><div class="k">fleet Mcyc/s (running)</div></div>
  <div class="tile"><div class="v" id="t-eta">&ndash;</div><div class="k">fleet ETA</div></div>
  <div class="tile" id="t-inc-tile"><div class="v" id="t-inc">&ndash;</div><div class="k">open incidents</div></div>
</div>
<table>
  <thead><tr>
    <th>run</th><th>progress</th><th>%</th><th>Mcyc/s</th>
    <th>access rate</th><th>queue depth</th><th>bank heat nm&nbsp;/&nbsp;fm</th><th>health</th>
  </tr></thead>
  <tbody id="tree"></tbody>
</table>
<h2 id="inc-h" style="display:none">incident postmortems</h2>
<table id="inc-table" style="display:none">
  <thead><tr>
    <th>run</th><th>trigger</th><th>epochs</th><th>pre</th><th>events</th><th>incidents</th><th></th>
  </tr></thead>
  <tbody id="incs"></tbody>
</table>
<div id="drill" style="display:none"></div>
<h2 id="ex-h" style="display:none">tail exemplars</h2>
<table id="ex-table" style="display:none">
  <thead><tr>
    <th>run</th><th>path</th><th>captured</th><th>worst latency</th><th>worst span</th><th></th>
  </tr></thead>
  <tbody id="exs"></tbody>
</table>
<div id="exdrill" style="display:none"></div>
<div class="footer">
  endpoints: <a href="/api/runs">/api/runs</a> &middot; <a href="/api/incidents">/api/incidents</a> &middot;
  <a href="/api/exemplars">/api/exemplars</a> &middot;
  <a href="/events">/events</a> &middot;
  <a href="/metrics">/metrics</a> &middot; <a href="/healthz">/healthz</a> &middot;
  <a href="/progress">/progress</a> &middot; <a href="/debug/pprof/">/debug/pprof</a>
</div>
<script>
"use strict";
var runs = new Map();   // id -> {st: RunStatus-ish, ar: [], qd: [], inc: Map(kind->true)}
var MAXPTS = 150;
var dirty = false, topoDirty = true;

function ent(id) {
  var e = runs.get(id);
  if (!e) { e = { st: { run: id, state: "running", pct: 0 }, ar: [], qd: [], dram: null, inc: new Map() }; runs.set(id, e); topoDirty = true; }
  return e;
}
function seed(list) {
  (list || []).forEach(function (st) {
    var e = ent(st.run);
    e.st = st;
    if (st.dram) e.dram = st.dram;
    if (st.open_incidents === 0) e.inc.clear();
  });
  topoDirty = true; dirty = true;
}
function fmt(x, d) { return (x == null || !isFinite(x)) ? "–" : x.toFixed(d == null ? 1 : d); }
function fmtEta(s) {
  if (!isFinite(s) || s <= 0) return "–";
  if (s < 90) return s.toFixed(0) + "s";
  if (s < 5400) return (s / 60).toFixed(1) + "m";
  return (s / 3600).toFixed(1) + "h";
}
function groupOf(id) { var i = id.indexOf("/"); return i < 0 ? id : id.slice(0, i); }

function render() {
  dirty = false;
  var ids = Array.from(runs.keys()).sort();
  var nDone = 0, mcyc = 0, eta = 0, open = 0;
  ids.forEach(function (id) {
    var st = runs.get(id).st;
    if (st.state === "done") { nDone++; }
    else {
      mcyc += st.mcyc_per_sec || 0;
      if ((st.eta_seconds || 0) > eta) eta = st.eta_seconds;
      open += st.open_incidents || 0;
    }
  });
  document.getElementById("t-cells").textContent = nDone + " / " + ids.length;
  document.getElementById("t-mcyc").textContent = fmt(mcyc, 1);
  document.getElementById("t-eta").textContent = nDone === ids.length && ids.length ? "done" : fmtEta(eta);
  document.getElementById("t-inc").textContent = open;
  document.getElementById("t-inc-tile").className = "tile " + (open ? "alert" : "calm");

  if (topoDirty) buildTree(ids);
  ids.forEach(updateRow);
}

function buildTree(ids) {
  topoDirty = false;
  var tb = document.getElementById("tree");
  tb.textContent = "";
  var last = null;
  ids.forEach(function (id) {
    var grp = groupOf(id);
    if (grp !== last) {
      last = grp;
      var tr = document.createElement("tr");
      tr.className = "group";
      tr.innerHTML = '<td>' + esc(grp) + '</td><td colspan="7" class="agg" id="g-' + cssId(grp) + '"></td>';
      tb.appendChild(tr);
    }
    var row = document.createElement("tr");
    row.id = "r-" + cssId(id);
    row.innerHTML =
      '<td class="run">' + esc(id) + '</td>' +
      '<td><span class="bar"><i style="width:0%"></i></span></td>' +
      '<td class="pct">&ndash;</td><td class="mc">&ndash;</td>' +
      '<td><canvas class="spark" data-k="ar" width="120" height="26"></canvas> <span class="sv ar">&ndash;</span></td>' +
      '<td><canvas class="spark" data-k="qd" width="120" height="26"></canvas> <span class="sv qd">&ndash;</span></td>' +
      '<td><canvas class="hm" data-d="nm" width="56" height="26"></canvas> <canvas class="hm" data-d="fm" width="56" height="26"></canvas></td>' +
      '<td class="hl">&ndash;</td>';
    tb.appendChild(row);
  });
}

function updateRow(id) {
  var row = document.getElementById("r-" + cssId(id));
  var e = runs.get(id);
  if (!row || !e) return;
  var st = e.st;
  row.className = st.state === "done" ? "done" : "";
  row.querySelector(".bar i").style.width = Math.min(100, st.pct || 0) + "%";
  row.querySelector(".pct").textContent = fmt(st.pct, 1);
  row.querySelector(".mc").textContent = fmt(st.mcyc_per_sec, 1);
  row.querySelector(".sv.ar").textContent = fmt(lastOf(e.ar), 3);
  row.querySelector(".sv.qd").textContent = fmt(lastOf(e.qd), 0);
  spark(row.querySelector('canvas[data-k="ar"]'), e.ar, cssVar("--s-rate"), "access rate");
  spark(row.querySelector('canvas[data-k="qd"]'), e.qd, cssVar("--s-queue"), "queue depth");
  heatmap(row.querySelector('canvas.hm[data-d="nm"]'), dramOf(e, "nm"));
  heatmap(row.querySelector('canvas.hm[data-d="fm"]'), dramOf(e, "fm"));
  var hl = row.querySelector(".hl");
  if (e.inc.size > 0) {
    var kinds = Array.from(e.inc.keys());
    hl.innerHTML = '<span class="inc" title="' + esc(kinds.map(ruleTip).join("\n\n")) +
      '">&#9888; ' + esc(kinds.join(", ")) + "</span>";
  } else if (st.state === "done") {
    hl.innerHTML = '<span class="okc">&#10003; done' +
      (st.total_incidents ? " (" + st.total_incidents + " incident" + (st.total_incidents > 1 ? "s" : "") + ")" : "") + "</span>";
  } else {
    hl.innerHTML = '<span class="okc">&#10003; ok</span>';
  }
  var g = document.getElementById("g-" + cssId(groupOf(id)));
  if (g) {
    var ids = Array.from(runs.keys()).filter(function (x) { return groupOf(x) === groupOf(id); });
    var done = ids.filter(function (x) { return runs.get(x).st.state === "done"; }).length;
    g.textContent = done + "/" + ids.length + " cells done";
  }
}

function lastOf(a) { return a.length ? a[a.length - 1] : null; }
function cssVar(n) { return getComputedStyle(document.documentElement).getPropertyValue(n).trim(); }
function cssId(s) { return s.replace(/[^a-zA-Z0-9_-]/g, "_"); }
function esc(s) { var d = document.createElement("i"); d.textContent = s; return d.innerHTML; }

function spark(cv, pts, color, name) {
  if (!cv) return;
  var dpr = window.devicePixelRatio || 1;
  if (cv.width !== 120 * dpr) { cv.width = 120 * dpr; cv.height = 26 * dpr; cv.style.width = "120px"; cv.style.height = "26px"; }
  var ctx = cv.getContext("2d");
  ctx.setTransform(dpr, 0, 0, dpr, 0, 0);
  ctx.clearRect(0, 0, 120, 26);
  if (pts.length < 2) return;
  var min = Math.min.apply(null, pts), max = Math.max.apply(null, pts);
  if (max - min < 1e-12) { min -= 0.5; max += 0.5; }
  ctx.strokeStyle = color; ctx.lineWidth = 2; ctx.lineJoin = "round"; ctx.beginPath();
  for (var i = 0; i < pts.length; i++) {
    var x = 1 + (118 * i) / (pts.length - 1);
    var y = 23 - (20 * (pts[i] - min)) / (max - min);
    if (i === 0) ctx.moveTo(x, y); else ctx.lineTo(x, y);
  }
  ctx.stroke();
  cv.title = name + ": last " + fmt(lastOf(pts), 3) + "  min " + fmt(min, 3) + "  max " + fmt(max, 3);
}

function dramOf(e, dev) {
  var list = e.dram || [];
  for (var i = 0; i < list.length; i++) if (list[i].device === dev) return list[i];
  return null;
}

// heatmap paints one DRAM device's per-bank row activity as a channels-by-
// banks grid (rows = channels, columns = banks): cell brightness tracks this
// epoch's accesses normalized to the hottest bank, and a cell flips to the
// critical hue once row conflicts dominate that bank's activity — a
// row-buffer thrash shows up as a bright red stripe.
function heatmap(cv, d) {
  if (!cv) return;
  var dpr = window.devicePixelRatio || 1;
  if (cv.width !== 56 * dpr) { cv.width = 56 * dpr; cv.height = 26 * dpr; cv.style.width = "56px"; cv.style.height = "26px"; }
  var ctx = cv.getContext("2d");
  ctx.setTransform(dpr, 0, 0, dpr, 0, 0);
  ctx.clearRect(0, 0, 56, 26);
  if (!d || !d.channels || !d.banks_per_channel) return;
  var acc = d.bank_accesses || [], conf = d.bank_conflicts || [];
  var max = 0;
  for (var i = 0; i < acc.length; i++) if (acc[i] > max) max = acc[i];
  var cw = 56 / d.banks_per_channel, chh = 26 / d.channels;
  for (var c = 0; c < d.channels; c++) {
    for (var b = 0; b < d.banks_per_channel; b++) {
      var k = c * d.banks_per_channel + b;
      var a = acc[k] || 0;
      if (!max || !a) continue;
      var cf = (conf[k] || 0) / a;
      ctx.globalAlpha = 0.25 + 0.75 * (a / max);
      ctx.fillStyle = cf > 0.5 ? cssVar("--crit") : cssVar("--s-rate");
      ctx.fillRect(b * cw + 0.5, c * chh + 0.5, Math.max(1, cw - 1), Math.max(1, chh - 1));
    }
  }
  ctx.globalAlpha = 1;
  cv.title = d.device + ": row hit rate " + fmt(d.row_hit_rate, 3) +
    "  bus util " + fmt(d.bus_util, 3) + "  bank imbalance " + fmt(d.bank_imbalance, 1) +
    "  row conflicts " + (d.row_conflicts || 0) +
    "  (rows = channels, cols = banks)";
}

function tick() { if (dirty) render(); }
setInterval(tick, 250);

// Rule metadata (descriptions, thresholds, first-look counters) comes from
// /healthz once; it feeds the health-column tooltips and the drill-down.
var ruleInfo = {};
fetch("/healthz").then(function (r) { return r.json(); }).then(function (d) {
  (d.rules || []).forEach(function (r) { ruleInfo[r.kind] = r; });
}).catch(function () {});
function ruleTip(kind) {
  var r = ruleInfo[kind];
  if (!r) return kind;
  return kind + ": " + r.description + "\nFires when: " + r.threshold +
    "\nLook first at: " + (r.first_look || []).join(", ");
}

// Incident postmortems: the /api/incidents list plus a click-to-drill
// evidence panel rendered from the full bundle.
function fetchIncidents() {
  fetch("/api/incidents").then(function (r) { return r.json(); }).then(function (d) {
    var list = d.incidents || [];
    if (!list.length) return;
    document.getElementById("inc-h").style.display = "";
    document.getElementById("inc-table").style.display = "";
    var tb = document.getElementById("incs");
    tb.textContent = "";
    list.forEach(function (ref) {
      var tr = document.createElement("tr");
      tr.innerHTML =
        "<td>" + esc(ref.run) + "</td>" +
        '<td><span class="inc" title="' + esc(ruleTip(ref.trigger)) + '">' + esc(ref.trigger) + "</span></td>" +
        "<td>" + ref.first_epoch + "&ndash;" + ref.last_epoch + "</td>" +
        "<td>" + ref.pre_epochs + "</td>" +
        "<td>" + ref.events + "</td>" +
        "<td>" + ref.incidents + (ref.forced ? " (forced)" : "") + "</td>" +
        "<td>view &rsaquo;</td>";
      tr.onclick = function () { openDrill(ref); };
      tb.appendChild(tr);
    });
  }).catch(function () {});
}

function openDrill(ref) {
  fetch(ref.path).then(function (r) { return r.json(); }).then(function (b) {
    var d = document.getElementById("drill");
    d.style.display = "";
    var h = '<span class="close" onclick="document.getElementById(\'drill\').style.display=\'none\'">&times; close</span>';
    h += "<h3>" + esc(b.trigger) + " &mdash; " + esc(ref.run) + "</h3>";
    h += '<div class="meta">bundle ' + ref.id + " &middot; epochs " + b.first_epoch + "&ndash;" + b.last_epoch +
      " &middot; cycles " + b.first_cycle + "&ndash;" + b.last_cycle +
      " &middot; " + b.pre_epochs + " pre-trigger epoch(s)" +
      " &middot; fingerprint " + esc(b.fingerprint) +
      ' &middot; <a href="' + esc(ref.path) + '">raw JSON</a></div>';
    (b.rules || []).forEach(function (tr) {
      h += '<div class="rule" title="' + esc(ruleTip(tr.kind)) + '"><b>' + esc(tr.kind) + "</b> open " +
        tr.open_epochs + " epoch(s), peak severity " + fmt(tr.peak_severity, 2) + "</div>";
    });
    var series = [
      ["llc_misses", function (s) { return s.llc_misses; }],
      ["access_rate", function (s) { return s.access_rate; }],
      ["swaps_in", function (s) { return s.swaps_in; }],
      ["locks", function (s) { return s.locks; }],
      ["bypassed", function (s) { return s.bypassed; }],
      ["peak_queue_nm", function (s) { return s.peak_queue_nm; }],
      ["peak_queue_fm", function (s) { return s.peak_queue_fm; }]
    ];
    series.forEach(function (sp, i) {
      h += '<div class="sline"><span class="sname">' + sp[0] + "</span>" +
        '<canvas class="spark" id="d-sp-' + i + '" width="360" height="26"></canvas> ' +
        '<span class="sv" id="d-sv-' + i + '"></span></div>';
    });
    if ((b.offenders || []).length) {
      h += '<div class="meta" style="margin-top:8px">top offender blocks: ' +
        b.offenders.map(function (o) { return o.block + " (" + o.demands + " demands)"; }).join(", ") + "</div>";
    }
    d.innerHTML = h;
    series.forEach(function (sp, i) {
      var pts = (b.epochs || []).map(function (e) { return sp[1](e.sample) || 0; });
      var cv = document.getElementById("d-sp-" + i);
      drillSpark(cv, pts, sp[0] === "access_rate" ? cssVar("--s-rate") : cssVar("--s-queue"), sp[0]);
      document.getElementById("d-sv-" + i).textContent = fmt(lastOf(pts), sp[0] === "access_rate" ? 3 : 0);
    });
    d.scrollIntoView({ behavior: "smooth", block: "nearest" });
  }).catch(function () {});
}

// drillSpark is spark() at drill-panel width (360px) — the evidence window
// is short, so wider pixels per epoch read better.
function drillSpark(cv, pts, color, name) {
  if (!cv) return;
  var dpr = window.devicePixelRatio || 1;
  cv.width = 360 * dpr; cv.height = 26 * dpr; cv.style.width = "360px"; cv.style.height = "26px";
  var ctx = cv.getContext("2d");
  ctx.setTransform(dpr, 0, 0, dpr, 0, 0);
  ctx.clearRect(0, 0, 360, 26);
  if (pts.length < 2) return;
  var min = Math.min.apply(null, pts), max = Math.max.apply(null, pts);
  if (max - min < 1e-12) { min -= 0.5; max += 0.5; }
  ctx.strokeStyle = color; ctx.lineWidth = 2; ctx.lineJoin = "round"; ctx.beginPath();
  for (var i = 0; i < pts.length; i++) {
    var x = 1 + (358 * i) / (pts.length - 1);
    var y = 23 - (20 * (pts[i] - min)) / (max - min);
    if (i === 0) ctx.moveTo(x, y); else ctx.lineTo(x, y);
  }
  ctx.stroke();
  cv.title = name + ": last " + fmt(lastOf(pts), 3) + "  min " + fmt(min, 3) + "  max " + fmt(max, 3);
}

// Tail exemplars: the /api/exemplars listing (one row per run+path with the
// worst capture) plus a click-to-drill span-waterfall panel.
var spanColor = {
  "queue": "#8a8984", "service": "#2a78d6", "meta-fetch": "#b08818",
  "swap-serial": "#eb6834", "mispredict": "#d03b3b", "other": "#55544f"
};
var exemplarRuns = [];
function fetchExemplars() {
  fetch("/api/exemplars").then(function (r) { return r.json(); }).then(function (d) {
    exemplarRuns = d.runs || [];
    renderExemplars();
  }).catch(function () {});
}
function renderExemplars() {
  var groups = []; // {run, path, list}
  exemplarRuns.forEach(function (set) {
    var byPath = new Map();
    (set.exemplars || []).forEach(function (e) {
      if (!byPath.has(e.path)) byPath.set(e.path, []);
      byPath.get(e.path).push(e);
    });
    byPath.forEach(function (list, path) { groups.push({ run: set.run, path: path, list: list }); });
  });
  if (!groups.length) return;
  document.getElementById("ex-h").style.display = "";
  document.getElementById("ex-table").style.display = "";
  var tb = document.getElementById("exs");
  tb.textContent = "";
  groups.forEach(function (g) {
    var worst = g.list[0]; // snapshots arrive worst-first per path
    var dom = "", max = -1;
    (worst.spans || []).forEach(function (sp) { if (sp.cycles > max) { max = sp.cycles; dom = sp.span; } });
    var tr = document.createElement("tr");
    tr.innerHTML =
      "<td>" + esc(g.run) + "</td><td>" + esc(g.path) + "</td>" +
      "<td>" + g.list.length + "</td><td>" + worst.latency + "</td>" +
      "<td>" + esc(dom) + "</td><td>waterfall &rsaquo;</td>";
    tr.onclick = function () { openExemplarDrill(g); };
    tb.appendChild(tr);
  });
}
function openExemplarDrill(g) {
  var d = document.getElementById("exdrill");
  d.style.display = "";
  var h = '<span class="close" onclick="document.getElementById(\'exdrill\').style.display=\'none\'">&times; close</span>';
  h += "<h3>tail exemplars &mdash; " + esc(g.run) + " / " + esc(g.path) + "</h3>";
  h += '<div class="meta">' + g.list.length + " captured, worst-first &middot; bars are the end-to-end span decomposition; widths proportional to latency " +
    worstLat(g.list) + " cycles</div>";
  h += '<div class="legend">spans:';
  Object.keys(spanColor).forEach(function (k) {
    h += '<i style="background:' + spanColor[k] + '"></i>' + esc(k);
  });
  h += "</div>";
  var maxLat = worstLat(g.list);
  g.list.forEach(function (e) {
    var w = maxLat ? Math.max(2, Math.round(320 * e.latency / maxLat)) : 320;
    var bar = '<span class="wfbar" style="width:' + w + 'px" title="' + esc(spanTip(e)) + '">';
    (e.spans || []).forEach(function (sp) {
      if (!sp.cycles || !e.latency) return;
      var sw = Math.max(1, Math.round(w * sp.cycles / e.latency));
      bar += '<i style="width:' + sw + "px;background:" + (spanColor[sp.span] || "#888") + '"></i>';
    });
    bar += "</span>";
    var notes = [];
    if (e.write) notes.push("write");
    if (e.complete && e.complete.locked) notes.push(e.complete.lock_home ? "locked-home" : "locked");
    if (e.issue && !e.issue.row_open) notes.push("row-closed");
    if (e.issue && e.issue.bank_load > 0) notes.push("bank-load=" + e.issue.bank_load);
    if ((e.open_incidents || []).length) notes.push("incidents=" + e.open_incidents.join("+"));
    h += '<div class="wfline"><span class="wfid">lat=' + e.latency + " cyc=" + e.start_cycle +
      " pa=0x" + e.paddr.toString(16) + "</span>" + bar +
    '<span class="wfnote">' + esc(notes.join(" ")) + "</span></div>";
  });
  d.innerHTML = h;
  d.scrollIntoView({ behavior: "smooth", block: "nearest" });
}
function worstLat(list) { var m = 0; list.forEach(function (e) { if (e.latency > m) m = e.latency; }); return m; }
function spanTip(e) {
  return (e.spans || []).filter(function (sp) { return sp.cycles > 0; })
    .map(function (sp) { return sp.span + "=" + sp.cycles; }).join("  ");
}

function fetchRuns() {
  fetch("/api/runs").then(function (r) { return r.json(); }).then(function (d) {
    seed(d.runs);
  }).catch(function () {});
}

var sseUp = false;
function connect() {
  if (!window.EventSource) { poll(); return; }
  var es = new EventSource("/events");
  es.addEventListener("init", function (ev) {
    sseUp = true;
    document.getElementById("conn").textContent = "live over /events";
    seed(JSON.parse(ev.data).runs);
  });
  es.addEventListener("run_start", function () { fetchRuns(); });
  es.addEventListener("run_done", function () { fetchRuns(); fetchIncidents(); fetchExemplars(); });
  es.addEventListener("epoch", function (ev) {
    var m = JSON.parse(ev.data), e = ent(m.run), ep = m.epoch;
    e.st.pct = ep.pct; e.st.mcyc_per_sec = ep.mcyc_per_sec;
    e.st.open_incidents = ep.open_incidents; e.st.state = "running";
    if (ep.dram) e.dram = ep.dram;
    e.ar.push(ep.access_rate); e.qd.push(ep.queue_nm + ep.queue_fm);
    if (e.ar.length > MAXPTS) e.ar.shift();
    if (e.qd.length > MAXPTS) e.qd.shift();
    dirty = true;
  });
  es.addEventListener("incident_open", function (ev) {
    var m = JSON.parse(ev.data);
    ent(m.run).inc.set(m.incident.kind, true); dirty = true;
  });
  es.addEventListener("incident_close", function (ev) {
    var m = JSON.parse(ev.data);
    ent(m.run).inc.delete(m.incident.kind); dirty = true;
    fetchIncidents();
  });
  es.onerror = function () {
    if (!sseUp) { es.close(); poll(); }
    else { document.getElementById("conn").textContent = "stream closed — reload to reconnect"; }
  };
}
var polling = false;
function poll() {
  if (polling) return;
  polling = true;
  document.getElementById("conn").textContent = "polling /api/runs every 2s (no SSE)";
  fetchRuns();
  setInterval(function () { fetchRuns(); fetchIncidents(); fetchExemplars(); }, 2000);
}
connect();
fetchRuns();
fetchIncidents();
fetchExemplars();
setInterval(fetchExemplars, 5000);
</script>
</body>
</html>
`
