package live_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/flightrec"
	"silcfm/internal/harness"
	"silcfm/internal/health"
	"silcfm/internal/telemetry/live"
)

// thrashSpec is the CI postmortem configuration: an 8 MB near memory under
// a milc footprint slice that reliably opens incidents and captures at
// least one flight-recorder bundle.
func thrashSpec() harness.Spec {
	m := config.Default()
	m.Scheme = config.SchemeSILCFM
	m.NM = config.HBM(8 << 20)
	m.FM = config.DDR3(32 << 20)
	return harness.Spec{
		Machine:      m,
		Workload:     "milc",
		InstrPerCore: 100_000,
		FootScaleNum: 1,
		FootScaleDen: 16,
	}
}

// TestIncidentsAPI drives the full drill-down path under concurrent load:
// a thrashing run streams bundles into the hub while a scraper hammers
// /api/incidents (race-clean by -race, inert by the byte comparison at the
// end), then the listing and per-bundle endpoints are validated against a
// hub-free rerun of the identical configuration.
func TestIncidentsAPI(t *testing.T) {
	srv, err := live.New("127.0.0.1:0")
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	defer srv.Close()

	// Empty hub: a well-formed empty listing, not null.
	code, body := get(t, srv.URL()+"/api/incidents")
	if code != http.StatusOK {
		t.Fatalf("/api/incidents status %d", code)
	}
	if !bytes.Contains(body, []byte(`"incidents": []`)) {
		t.Errorf("/api/incidents empty hub = %s, want an empty list", body)
	}

	// Scrape continuously while the run publishes and emits bundles.
	stop := make(chan struct{})
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		for {
			select {
			case <-stop:
				return
			default:
				resp, err := http.Get(srv.URL() + "/api/incidents")
				if err == nil {
					resp.Body.Close()
				}
			}
		}
	}()

	const id = "thrash/milc"
	spec := thrashSpec()
	spec.Publish = srv.Hook(id)
	spec.Flightrec = &flightrec.Config{
		OnBundle: func(b *flightrec.Bundle) { srv.AddBundle(id, b) },
	}
	res, err := harness.Run(spec)
	close(stop)
	<-scraped
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	srv.Done(id, res.Health)
	if len(res.Bundles) == 0 {
		t.Fatal("thrash config captured no bundles")
	}

	code, body = get(t, srv.URL()+"/api/incidents")
	if code != http.StatusOK {
		t.Fatalf("/api/incidents status %d", code)
	}
	var list struct {
		Incidents []live.IncidentRef `json:"incidents"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("/api/incidents not JSON: %v", err)
	}
	if len(list.Incidents) != len(res.Bundles) {
		t.Fatalf("hub lists %d bundles, run produced %d", len(list.Incidents), len(res.Bundles))
	}
	for i, ref := range list.Incidents {
		want := &res.Bundles[i]
		if ref.Run != id || ref.Trigger != want.Trigger || ref.Epochs != len(want.Epochs) {
			t.Errorf("ref %d = %+v, inconsistent with bundle %+v", i, ref, want)
		}
		code, bb := get(t, srv.URL()+ref.Path)
		if code != http.StatusOK {
			t.Fatalf("%s status %d", ref.Path, code)
		}
		dec, err := flightrec.Decode(bytes.NewReader(bb))
		if err != nil {
			t.Fatalf("%s: %v", ref.Path, err)
		}
		var canon bytes.Buffer
		if err := want.Encode(&canon); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bb, canon.Bytes()) {
			t.Errorf("%s served different bytes than the bundle's canonical encoding", ref.Path)
		}
		if dec.Fingerprint != want.Fingerprint {
			t.Errorf("%s fingerprint = %q, want %q", ref.Path, dec.Fingerprint, want.Fingerprint)
		}
	}

	// Unknown and malformed ids 404 / 400.
	if code, _ := get(t, srv.URL()+"/api/incidents/999999"); code != http.StatusNotFound {
		t.Errorf("/api/incidents/999999 status %d, want 404", code)
	}
	if code, _ := get(t, srv.URL()+"/api/incidents/bogus"); code != http.StatusBadRequest {
		t.Errorf("/api/incidents/bogus status %d, want 400", code)
	}

	// Inertness, server-on vs server-off: a hub-free rerun must reproduce
	// every bundle byte even though this run was scraped throughout.
	bare, err := harness.Run(thrashSpec())
	if err != nil {
		t.Fatalf("bare run: %v", err)
	}
	if len(bare.Bundles) != len(res.Bundles) {
		t.Fatalf("bare run captured %d bundles, hub run %d", len(bare.Bundles), len(res.Bundles))
	}
	for i := range bare.Bundles {
		var a, b bytes.Buffer
		if err := bare.Bundles[i].Encode(&a); err != nil {
			t.Fatal(err)
		}
		if err := res.Bundles[i].Encode(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("bundle %d differs between hub-attached and bare runs", i)
		}
	}
	if bare.Cycles != res.Cycles || bare.Mem != res.Mem {
		t.Errorf("hub attachment perturbed the simulation: cycles %d vs %d", res.Cycles, bare.Cycles)
	}
}

// TestHealthzRuleMetadata: the /healthz payload carries the detector's rule
// catalog so dashboards can explain what each kind means.
func TestHealthzRuleMetadata(t *testing.T) {
	srv, err := live.New("127.0.0.1:0")
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	defer srv.Close()
	publishState(srv.Hook("meta"), 1000, nil)

	_, body := get(t, srv.URL()+"/healthz")
	var hz live.Healthz
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if want := len(health.Kinds()); len(hz.Rules) != want {
		t.Fatalf("/healthz lists %d rules, want %d", len(hz.Rules), want)
	}
	for _, r := range hz.Rules {
		if r.Kind == "" || r.Description == "" || r.Threshold == "" || len(r.FirstLook) == 0 {
			t.Errorf("rule %+v missing metadata", r)
		}
	}
}
