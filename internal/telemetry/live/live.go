// Package live is the simulator's fleet observability hub: an HTTP-free
// run Registry at the core, with an opt-in embedded HTTP Server
// (silcfm-sim/-experiments/-bench -listen) as a thin view over it.
//
//	/           embedded zero-dependency HTML dashboard: sweep progress
//	            tree, fleet aggregate tiles, per-run sparklines, live over
//	            /events with an /api/runs polling fallback.
//	/api/runs   fleet aggregates plus every run's status as JSON, id-ordered.
//	/events     SSE stream: one init snapshot, then per-epoch snapshots and
//	            incident open/close transitions as they happen.
//	/metrics    Prometheus text exposition: every stats.Memory counter,
//	            scheme gauges, queue depths, per-path demand-latency
//	            percentiles labeled by run id, plus unlabeled
//	            silcfm_fleet_* aggregate families.
//	/healthz    open health incidents as JSON; non-200 while any run has
//	            an active incident.
//	/progress   per-run sweep status with instruction progress, host-side
//	            simulation rate, elapsed wall time and wall-clock ETA.
//	/debug/pprof/...  the standard net/http/pprof profiles.
//
// The simulation goroutine publishes one snapshot per telemetry epoch
// (harness.Spec.Publish -> Registry.Hook) under a short mutex; readers see
// value copies under the same mutex and never touch live simulation state,
// and event fan-out uses bounded per-subscriber queues that drop-and-count
// rather than block. The hot loop therefore never waits on a slow client,
// and cycles/counters/incidents are provably unchanged with the hub on or
// off (asserted end-to-end by ci.sh's live stage).
package live

import "strings"

// escapeLabel escapes a Prometheus label value. Callers splice the result
// directly between literal quotes — never re-quote it with %q, which would
// double-escape the backslashes added here.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}
