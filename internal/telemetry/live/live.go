// Package live is the simulator's embedded observability server: an
// opt-in HTTP endpoint (silcfm-sim/-experiments/-bench -listen) that
// exposes the state of in-flight runs while they execute.
//
//	/metrics   Prometheus text exposition: every stats.Memory counter,
//	           scheme gauges, queue depths and per-path demand-latency
//	           percentiles, labeled by run id.
//	/healthz   open health incidents as JSON; non-200 while any run has
//	           an active incident.
//	/progress  per-run sweep status with instruction progress, host-side
//	           simulation rate and wall-clock ETA.
//	/debug/pprof/...  the standard net/http/pprof profiles.
//
// The simulation goroutine publishes one snapshot per telemetry epoch
// (harness.Spec.Publish -> Server.Hook) under a short mutex; scrapers
// read the latest snapshot under the same mutex and never touch live
// simulation state, so the hot loop never blocks on a slow client and
// cycles/counters are provably unchanged with the server on or off.
package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"silcfm/internal/health"
	"silcfm/internal/mem"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry"
)

// runState is the latest published snapshot of one run.
type runState struct {
	id      string
	started time.Time

	cycle       uint64
	mem         stats.Memory
	gauges      []mem.Gauge
	lat         []stats.PathSummary
	queueNM     int
	queueFM     int
	peakQueueNM int
	peakQueueFM int
	done, total uint64

	open           []health.Incident
	finished       bool
	totalIncidents int
}

// Server serves the live observability endpoints for the runs of one
// process. Create with New, attach runs with Hook/Done, stop with Close.
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu   sync.Mutex
	runs map[string]*runState
}

// New binds addr (host:port; ":0" picks a free port) and starts serving.
func New(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	s := &Server{ln: ln, runs: map[string]*runState{}}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (resolved port when addr was ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }

// Hook registers run id and returns the per-epoch publish callback to
// install as harness.Spec.Publish. Nil-safe: a nil server returns a nil
// hook, which the harness treats as "no publisher".
func (s *Server) Hook(id string) func(telemetry.EpochState, []health.Incident) {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.runs[id] = &runState{id: id, started: time.Now()}
	s.mu.Unlock()
	return func(st telemetry.EpochState, open []health.Incident) {
		// Reduce the live state to value copies before taking the lock:
		// summarizing histograms is the expensive part and needs no mutex
		// (it runs on the sim goroutine that owns the state).
		lat := st.Lat.Summaries()
		gauges := append([]mem.Gauge(nil), st.Sample.Gauges...)
		memCopy := *st.Mem
		openCopy := append([]health.Incident(nil), open...)

		s.mu.Lock()
		defer s.mu.Unlock()
		rs := s.runs[id]
		if rs == nil || rs.finished {
			return
		}
		rs.cycle = st.Sample.Cycle
		rs.mem = memCopy
		rs.gauges = gauges
		rs.lat = lat
		rs.queueNM, rs.queueFM = st.Sample.QueueNM, st.Sample.QueueFM
		rs.peakQueueNM, rs.peakQueueFM = st.Sample.PeakQueueNM, st.Sample.PeakQueueFM
		rs.done, rs.total = st.Done, st.Total
		rs.open = openCopy
	}
}

// Done marks run id complete with its final incident list; open incidents
// clear (the run can no longer be unhealthy) and /progress reports it
// done.
func (s *Server) Done(id string, final []health.Incident) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	rs := s.runs[id]
	if rs == nil {
		rs = &runState{id: id, started: time.Now()}
		s.runs[id] = rs
	}
	rs.finished = true
	rs.open = nil
	rs.totalIncidents = len(final)
}

// sorted returns the run snapshots in id order (deterministic exposition).
// Caller must hold s.mu.
func (s *Server) sorted() []*runState {
	out := make([]*runState, 0, len(s.runs))
	for _, rs := range s.runs {
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// escapeLabel escapes a Prometheus label value.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.mu.Lock()
	runs := s.sorted()

	writeFamily := func(name, typ, help string, rows func(*runState) []string) {
		var lines []string
		for _, rs := range runs {
			lines = append(lines, rows(rs)...)
		}
		if len(lines) == 0 {
			return
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	runLabel := func(rs *runState) string { return `run="` + escapeLabel(rs.id) + `"` }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }

	writeFamily("silcfm_cycle", "gauge", "Simulated cycle at the last published epoch.",
		func(rs *runState) []string {
			return []string{fmt.Sprintf("silcfm_cycle{%s} %s", runLabel(rs), u(rs.cycle))}
		})
	writeFamily("silcfm_access_rate", "gauge", "Fraction of LLC misses serviced from near memory (paper Eq. 1).",
		func(rs *runState) []string {
			return []string{fmt.Sprintf("silcfm_access_rate{%s} %s", runLabel(rs), f(rs.mem.AccessRate()))}
		})
	// Every cumulative stats.Memory counter, one family each.
	if len(runs) > 0 {
		for i, c := range runs[0].mem.Counters() {
			i := i
			writeFamily("silcfm_"+c.Name+"_total", "counter", "Cumulative "+c.Name+" counter.",
				func(rs *runState) []string {
					cs := rs.mem.Counters()
					return []string{fmt.Sprintf("silcfm_%s_total{%s} %s", cs[i].Name, runLabel(rs), u(cs[i].Value))}
				})
		}
	}
	writeFamily("silcfm_queue_depth", "gauge", "Instantaneous device queue depth at the epoch boundary.",
		func(rs *runState) []string {
			return []string{
				fmt.Sprintf("silcfm_queue_depth{%s,device=\"nm\"} %d", runLabel(rs), rs.queueNM),
				fmt.Sprintf("silcfm_queue_depth{%s,device=\"fm\"} %d", runLabel(rs), rs.queueFM),
			}
		})
	writeFamily("silcfm_queue_depth_peak", "gauge", "Per-epoch queue-depth high-water mark.",
		func(rs *runState) []string {
			return []string{
				fmt.Sprintf("silcfm_queue_depth_peak{%s,device=\"nm\"} %d", runLabel(rs), rs.peakQueueNM),
				fmt.Sprintf("silcfm_queue_depth_peak{%s,device=\"fm\"} %d", runLabel(rs), rs.peakQueueFM),
			}
		})
	writeFamily("silcfm_scheme_gauge", "gauge", "Scheme-internal instantaneous gauges (mem.GaugeProvider).",
		func(rs *runState) []string {
			var out []string
			for _, g := range rs.gauges {
				out = append(out, fmt.Sprintf("silcfm_scheme_gauge{%s,name=%q} %s",
					runLabel(rs), escapeLabel(g.Name), f(g.Value)))
			}
			return out
		})
	writeFamily("silcfm_demand_latency_count", "counter", "Demand completions per service path.",
		func(rs *runState) []string {
			var out []string
			for _, p := range rs.lat {
				out = append(out, fmt.Sprintf("silcfm_demand_latency_count{%s,path=%q} %s",
					runLabel(rs), escapeLabel(p.Path), u(p.Count)))
			}
			return out
		})
	writeFamily("silcfm_demand_latency_cycles", "gauge", "Demand-latency percentile bounds per service path.",
		func(rs *runState) []string {
			var out []string
			for _, p := range rs.lat {
				for _, q := range []struct {
					q string
					v uint64
				}{{"0.5", p.P50}, {"0.95", p.P95}, {"0.99", p.P99}} {
					out = append(out, fmt.Sprintf("silcfm_demand_latency_cycles{%s,path=%q,quantile=%q} %s",
						runLabel(rs), escapeLabel(p.Path), q.q, u(q.v)))
				}
			}
			return out
		})
	writeFamily("silcfm_open_incidents", "gauge", "Health incidents currently active (see /healthz).",
		func(rs *runState) []string {
			return []string{fmt.Sprintf("silcfm_open_incidents{%s} %d", runLabel(rs), len(rs.open))}
		})
	writeFamily("silcfm_run_finished", "gauge", "1 once the run has completed.",
		func(rs *runState) []string {
			v := 0
			if rs.finished {
				v = 1
			}
			return []string{fmt.Sprintf("silcfm_run_finished{%s} %d", runLabel(rs), v)}
		})
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// HealthzRun is one run's slice of the /healthz body.
type HealthzRun struct {
	Run            string            `json:"run"`
	Finished       bool              `json:"finished"`
	OpenIncidents  []health.Incident `json:"open_incidents"`
	TotalIncidents int               `json:"total_incidents"`
}

// Healthz is the /healthz response body.
type Healthz struct {
	Status string       `json:"status"` // "ok" or "incident"
	Runs   []HealthzRun `json:"runs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := Healthz{Status: "ok"}
	s.mu.Lock()
	for _, rs := range s.sorted() {
		hr := HealthzRun{
			Run:            rs.id,
			Finished:       rs.finished,
			OpenIncidents:  append([]health.Incident{}, rs.open...),
			TotalIncidents: rs.totalIncidents,
		}
		if len(rs.open) > 0 {
			body.Status = "incident"
		}
		body.Runs = append(body.Runs, hr)
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	if body.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc, _ := json.MarshalIndent(&body, "", "  ")
	w.Write(append(enc, '\n'))
}

// ProgressRun is one run's slice of the /progress body.
type ProgressRun struct {
	Run        string  `json:"run"`
	State      string  `json:"state"` // "running" or "done"
	Cycle      uint64  `json:"cycle"`
	InstrDone  uint64  `json:"instr_done"`
	InstrTotal uint64  `json:"instr_total"`
	Pct        float64 `json:"pct"`
	McycPerSec float64 `json:"mcyc_per_sec"`
	EtaSeconds float64 `json:"eta_seconds"`
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	var body []ProgressRun
	s.mu.Lock()
	for _, rs := range s.sorted() {
		pr := ProgressRun{
			Run:        rs.id,
			State:      "running",
			Cycle:      rs.cycle,
			InstrDone:  rs.done,
			InstrTotal: rs.total,
		}
		if rs.finished {
			pr.State = "done"
		}
		if rs.total > 0 {
			pr.Pct = 100 * float64(rs.done) / float64(rs.total)
		}
		if elapsed := time.Since(rs.started).Seconds(); elapsed > 0 && !rs.finished {
			pr.McycPerSec = float64(rs.cycle) / elapsed / 1e6
			if rs.done > 0 && rs.total > rs.done {
				pr.EtaSeconds = elapsed * float64(rs.total-rs.done) / float64(rs.done)
			}
		}
		body = append(body, pr)
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	enc, _ := json.MarshalIndent(body, "", "  ")
	w.Write(append(enc, '\n'))
}
