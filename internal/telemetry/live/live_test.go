package live_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/harness"
	"silcfm/internal/health"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry"
	"silcfm/internal/telemetry/live"
)

// tinySpec is a small SILC-FM run, optionally publishing to a live server.
func tinySpec(publish func(telemetry.EpochState, health.Status)) harness.Spec {
	m := config.Small()
	m.Scheme = config.SchemeSILCFM
	return harness.Spec{
		Machine:      m,
		Workload:     "milc",
		InstrPerCore: 100_000,
		FootScaleNum: 1,
		FootScaleDen: 16,
		Telemetry:    &telemetry.Config{EpochCycles: 20_000},
		Publish:      publish,
	}
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestServerEndpointsAfterRealRun(t *testing.T) {
	srv, err := live.New("127.0.0.1:0")
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	defer srv.Close()

	const id = "small/milc"
	res, err := harness.Run(tinySpec(srv.Hook(id)))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	srv.Done(id, res.Health)

	// /metrics: valid exposition, and the cumulative counters match the
	// run's final totals (Done comes after the final partial epoch flush,
	// so the last published snapshot is the end-of-run state).
	code, body := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := live.ValidateExposition(body); err != nil {
		t.Errorf("/metrics is not valid Prometheus exposition: %v", err)
	}
	for _, want := range []string{
		fmt.Sprintf(`silcfm_llc_misses_total{run="%s"} %d`, id, res.Mem.LLCMisses),
		fmt.Sprintf(`silcfm_serviced_nm_total{run="%s"} %d`, id, res.Mem.ServicedNM),
		fmt.Sprintf(`silcfm_swaps_in_total{run="%s"} %d`, id, res.Mem.SwapsIn),
		fmt.Sprintf(`silcfm_run_finished{run="%s"} 1`, id),
		"# TYPE silcfm_demand_latency_cycles gauge",
		`silcfm_scheme_gauge{run="small/milc",name="locked_frames"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// /healthz: finished run, no open incidents, 200.
	code, body = get(t, srv.URL()+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", code, body)
	}
	var hz live.Healthz
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if hz.Status != "ok" || len(hz.Runs) != 1 || hz.Runs[0].Run != id || !hz.Runs[0].Finished {
		t.Errorf("/healthz = %+v, want ok/finished for %q", hz, id)
	}
	if hz.Runs[0].TotalIncidents != len(res.Health) {
		t.Errorf("/healthz total_incidents = %d, want %d", hz.Runs[0].TotalIncidents, len(res.Health))
	}

	// /progress: done, with the final instruction counts.
	code, body = get(t, srv.URL()+"/progress")
	if code != http.StatusOK {
		t.Fatalf("/progress status %d", code)
	}
	var prs []live.ProgressRun
	if err := json.Unmarshal(body, &prs); err != nil {
		t.Fatalf("/progress not JSON: %v", err)
	}
	if len(prs) != 1 || prs[0].Run != id || prs[0].State != "done" {
		t.Fatalf("/progress = %+v, want one done run %q", prs, id)
	}
	// Cores may retire a few instructions past the target in their final
	// dispatch burst, so "complete" means done >= total.
	if prs[0].InstrDone < prs[0].InstrTotal || prs[0].InstrTotal == 0 || prs[0].Pct < 100 {
		t.Errorf("/progress final counts = %+v, want done >= total and >= 100%%", prs[0])
	}
	if prs[0].Cycle == 0 {
		t.Errorf("/progress cycle = 0, want last epoch cycle")
	}

	// pprof rides along.
	if code, _ := get(t, srv.URL()+"/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
}

// publishState hands a synthetic epoch snapshot to a hook.
func publishState(hook func(telemetry.EpochState, health.Status), cycle uint64, open []health.Incident) {
	hook(telemetry.EpochState{
		Sample: &telemetry.Sample{Cycle: cycle},
		Mem:    &stats.Memory{},
		Lat:    stats.NewPathLatencies(),
		Done:   50, Total: 100,
	}, health.Status{Open: open})
}

func TestHealthzGoesUnhealthyWhileIncidentOpen(t *testing.T) {
	srv, err := live.New("127.0.0.1:0")
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	defer srv.Close()

	hook := srv.Hook("stress")
	inc := health.Incident{Kind: health.KindSwapThrash, FirstEpoch: 3, LastEpoch: 5, PeakSeverity: 2.5}
	publishState(hook, 10_000, []health.Incident{inc})

	code, body := get(t, srv.URL()+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with open incident: status %d, want 503", code)
	}
	var hz live.Healthz
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if hz.Status != "incident" || len(hz.Runs) != 1 || len(hz.Runs[0].OpenIncidents) != 1 {
		t.Fatalf("/healthz = %+v, want one open incident", hz)
	}
	if got := hz.Runs[0].OpenIncidents[0]; got.Kind != inc.Kind || got.PeakSeverity != inc.PeakSeverity {
		t.Errorf("open incident round-trip = %+v, want %+v", got, inc)
	}
	if _, body := get(t, srv.URL()+"/metrics"); !strings.Contains(string(body), `silcfm_open_incidents{run="stress"} 1`) {
		t.Errorf("/metrics does not report the open incident")
	}

	// Incident closes on the next epoch: healthy again.
	publishState(hook, 20_000, nil)
	if code, _ := get(t, srv.URL()+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz after incident closed: status %d, want 200", code)
	}

	// A late publish after Done must not resurrect the run.
	srv.Done("stress", nil)
	publishState(hook, 30_000, []health.Incident{inc})
	if code, _ := get(t, srv.URL()+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz after Done: status %d, want 200 (late publish ignored)", code)
	}
}

// TestServerDoesNotPerturbSimulation is the live-server leg of the
// telemetry-inertness invariant: a run publishing every epoch to the HTTP
// server (with the always-on health detector riding along) finishes at
// exactly the same cycle with exactly the same counters as a run with no
// server and the detector disabled.
func TestServerDoesNotPerturbSimulation(t *testing.T) {
	srv, err := live.New("127.0.0.1:0")
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	defer srv.Close()

	// Scrape concurrently while the run publishes, to exercise the mutex
	// path rather than an idle server.
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				resp, err := http.Get(srv.URL() + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
	}()

	with, err := harness.Run(tinySpec(srv.Hook("perturb")))
	close(stop)
	if err != nil {
		t.Fatalf("run with server: %v", err)
	}

	bare := tinySpec(nil)
	bare.Telemetry = nil
	bare.Health = &health.Config{Disabled: true}
	without, err := harness.Run(bare)
	if err != nil {
		t.Fatalf("run without server: %v", err)
	}

	if with.Cycles != without.Cycles {
		t.Errorf("live server changed Cycles: %d vs %d", with.Cycles, without.Cycles)
	}
	if with.Mem != without.Mem {
		t.Errorf("live server changed memory counters:\nwith    %+v\nwithout %+v", with.Mem, without.Mem)
	}
	if without.Health != nil {
		t.Errorf("disabled detector produced incidents: %+v", without.Health)
	}
	if with.Health == nil {
		t.Errorf("default detector returned nil incident slice, want non-nil (possibly empty)")
	}
}
