package live

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"silcfm/internal/flightrec"
	"silcfm/internal/health"
	"silcfm/internal/mem"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry"
	"silcfm/internal/telemetry/exemplar"
)

// runState is the latest published snapshot of one run. All fields are
// value copies taken on the simulation goroutine; readers only ever see
// them under the registry mutex.
type runState struct {
	id      string
	started time.Time

	cycle       uint64
	mem         stats.Memory
	gauges      []mem.Gauge
	lat         []stats.PathSummary
	queueNM     int
	queueFM     int
	peakQueueNM int
	peakQueueFM int
	done, total uint64

	// dram holds the latest per-device DRAM introspection slice ([nm, fm]).
	// Entries are value copies built on the sim goroutine and never mutated
	// after publish, so readers may share the slice.
	dram []DramDeviceStatus

	// exemplars is the latest tail-exemplar snapshot (path-grouped,
	// worst-first). The recorder hands over a freshly built slice each
	// epoch, so the registry stores it without copying and readers may
	// share it.
	exemplars []exemplar.Exemplar

	open           []health.Incident
	finished       bool
	totalIncidents int

	// finalElapsed/finalRate freeze the run's wall time and throughput at
	// Done (computed from the last published cycle), so finished runs keep
	// reporting their real rate instead of zero.
	finalElapsed float64
	finalRate    float64
}

// Registry is the HTTP-free fleet store at the center of the observability
// hub: every run registers through Hook, publishes one snapshot per
// telemetry epoch, and is marked complete with Done. Readers — the HTTP
// Server, a sweep engine, a job API — take deterministic id-ordered
// snapshots with Runs and Aggregate, or stream transitions with Subscribe.
//
// The publish path never blocks: snapshots are value copies taken under a
// short mutex, and events fan out to subscribers through bounded queues
// that drop-and-count rather than stall the simulation goroutine.
type Registry struct {
	mu      sync.Mutex
	runs    map[string]*runState
	subs    map[*Subscriber]struct{}
	seq     uint64 // monotone event sequence, stamped under mu
	dropped uint64 // drops accumulated from departed subscribers
	closed  bool

	// bundles is the hub's postmortem store: finalized flight-recorder
	// bundles in arrival order, bounded by maxStoredBundles (oldest drop
	// first). Bundles are immutable, so entries share the pointer the
	// recorder emitted.
	bundles        []bundleEntry
	bundleSeq      int
	bundlesDropped uint64
}

// maxStoredBundles bounds the hub-wide postmortem store.
const maxStoredBundles = 256

// bundleEntry pairs a stored bundle with the hub run id it arrived under
// and its registry-assigned stable id.
type bundleEntry struct {
	id  int
	run string
	b   *flightrec.Bundle
}

// IncidentRef is one row of the /api/incidents listing: a bundle summary
// plus the path serving the full evidence.
type IncidentRef struct {
	// ID is the registry-assigned stable bundle id (monotone per hub).
	ID int `json:"id"`
	// Run is the hub run id the bundle arrived under; Source is the label
	// the recorder itself stamped ("<scheme>/<workload>").
	Run        string `json:"run"`
	Source     string `json:"source,omitempty"`
	Trigger    string `json:"trigger"`
	FirstEpoch uint64 `json:"first_epoch"`
	LastEpoch  uint64 `json:"last_epoch"`
	PreEpochs  int    `json:"pre_epochs"`
	Epochs     int    `json:"epochs"`
	Events     int    `json:"events"`
	Incidents  int    `json:"incidents"`
	Forced     bool   `json:"forced,omitempty"`
	// Path serves the full bundle JSON.
	Path string `json:"path"`
}

// AddBundle stores one finalized postmortem bundle under hub run id run.
// Called from the simulation goroutine via flightrec.Config.OnBundle; the
// bundle must be immutable (flight-recorder bundles are). Nil-safe on both
// receiver and bundle.
func (g *Registry) AddBundle(run string, b *flightrec.Bundle) {
	if g == nil || b == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.bundles = append(g.bundles, bundleEntry{id: g.bundleSeq, run: run, b: b})
	g.bundleSeq++
	if len(g.bundles) > maxStoredBundles {
		over := len(g.bundles) - maxStoredBundles
		g.bundles = append(g.bundles[:0:0], g.bundles[over:]...)
		g.bundlesDropped += uint64(over)
	}
}

// Incidents lists the stored bundles in arrival order.
func (g *Registry) Incidents() []IncidentRef {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]IncidentRef, 0, len(g.bundles))
	for _, e := range g.bundles {
		out = append(out, IncidentRef{
			ID:         e.id,
			Run:        e.run,
			Source:     e.b.Run,
			Trigger:    e.b.Trigger,
			FirstEpoch: e.b.FirstEpoch,
			LastEpoch:  e.b.LastEpoch,
			PreEpochs:  e.b.PreEpochs,
			Epochs:     len(e.b.Epochs),
			Events:     len(e.b.Events),
			Incidents:  len(e.b.Incidents),
			Forced:     e.b.Forced,
			Path:       fmt.Sprintf("/api/incidents/%d", e.id),
		})
	}
	return out
}

// Bundle returns the stored bundle with the given registry id, or nil when
// it never existed or has been dropped by the store bound.
func (g *Registry) Bundle(id int) *flightrec.Bundle {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, e := range g.bundles {
		if e.id == id {
			return e.b
		}
	}
	return nil
}

// SetExemplars replaces run id's tail-exemplar snapshot. Called from the
// simulation goroutine via exemplar.Config.OnSnapshot; the slice must not
// be mutated afterwards (the recorder's Snapshot builds a fresh one each
// call). Nil-safe. A run unknown to the registry is created so exemplars
// survive even when the publish hook was not installed.
func (g *Registry) SetExemplars(run string, es []exemplar.Exemplar) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	rs := g.runs[run]
	if rs == nil {
		rs = &runState{id: run, started: time.Now()}
		g.runs[run] = rs
	}
	rs.exemplars = es
}

// ExemplarSet is one run's slice of the /api/exemplars body.
type ExemplarSet struct {
	Run       string              `json:"run"`
	Exemplars []exemplar.Exemplar `json:"exemplars"`
}

// Exemplars returns every run's latest tail-exemplar snapshot in id order;
// runs that have not published a snapshot are omitted.
func (g *Registry) Exemplars() []ExemplarSet {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	var out []ExemplarSet
	for _, rs := range g.sortedLocked() {
		if rs.exemplars == nil {
			continue
		}
		out = append(out, ExemplarSet{Run: rs.id, Exemplars: rs.exemplars})
	}
	return out
}

// NewRegistry returns an empty run registry.
func NewRegistry() *Registry {
	return &Registry{
		runs: map[string]*runState{},
		subs: map[*Subscriber]struct{}{},
	}
}

// RunStatus is one run's public snapshot: the /api/runs row and the basis
// of /progress and the fleet aggregates.
type RunStatus struct {
	Run        string  `json:"run"`
	State      string  `json:"state"` // "running" or "done"
	Cycle      uint64  `json:"cycle"`
	InstrDone  uint64  `json:"instr_done"`
	InstrTotal uint64  `json:"instr_total"`
	Pct        float64 `json:"pct"`
	McycPerSec float64 `json:"mcyc_per_sec"`
	EtaSeconds float64 `json:"eta_seconds"`
	// ElapsedSeconds is host wall time since Hook; frozen at Done so a
	// finished run reports the wall time of the whole run.
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	// AccessRate is the cumulative NM service fraction (paper Eq. 1).
	AccessRate     float64 `json:"access_rate"`
	QueueNM        int     `json:"queue_nm"`
	QueueFM        int     `json:"queue_fm"`
	OpenIncidents  int     `json:"open_incidents"`
	TotalIncidents int     `json:"total_incidents"`
	// Dram is the latest per-device DRAM introspection slice ([nm, fm]);
	// absent until the run publishes its first epoch.
	Dram []DramDeviceStatus `json:"dram,omitempty"`
}

// DramDeviceStatus is one DRAM device's epoch-windowed introspection view:
// headline row-locality/bus figures plus the per-bank heatmap the dashboard
// renders. BankAccesses/BankConflicts are epoch deltas flattened
// channel-major (index = channel*BanksPerChannel + bank).
type DramDeviceStatus struct {
	Device          string  `json:"device"` // "nm" or "fm"
	Channels        int     `json:"channels"`
	BanksPerChannel int     `json:"banks_per_channel"`
	RowHitRate      float64 `json:"row_hit_rate"`
	// BusUtil is the epoch's data-bus busy share; bursts booked at issue can
	// extend past the epoch boundary, so it may slightly exceed 1.
	BusUtil       float64  `json:"bus_util"`
	BankImbalance float64  `json:"bank_imbalance"`
	RowConflicts  uint64   `json:"row_conflicts"`
	BankAccesses  []uint64 `json:"bank_accesses"`
	BankConflicts []uint64 `json:"bank_conflicts"`
}

// dramStatus copies one device's sampler-owned epoch buffers into an
// immutable snapshot (the sampler reuses its buffers every epoch, so the
// bank arrays must be copied before the callback returns).
func dramStatus(dev string, de *telemetry.DramDeviceEpoch, hitRate, busUtil, imbalance float64, conflicts uint64) DramDeviceStatus {
	return DramDeviceStatus{
		Device:          dev,
		Channels:        de.Channels,
		BanksPerChannel: de.BanksPerChannel,
		RowHitRate:      hitRate,
		BusUtil:         busUtil,
		BankImbalance:   imbalance,
		RowConflicts:    conflicts,
		BankAccesses:    append([]uint64(nil), de.BankAccesses...),
		BankConflicts:   append([]uint64(nil), de.BankConflicts...),
	}
}

// Fleet is the cross-run aggregate view: the dashboard's headline tiles
// and the silcfm_fleet_* metric families.
type Fleet struct {
	Runs          int `json:"runs"`
	RunsDone      int `json:"runs_done"`
	OpenIncidents int `json:"open_incidents"`
	// TotalIncidents sums finished runs' closed-incident counts plus
	// running runs' currently-open counts.
	TotalIncidents int `json:"total_incidents"`
	// McycPerSec is the aggregate simulation throughput of the running
	// runs (finished runs no longer contribute).
	McycPerSec float64 `json:"mcyc_per_sec"`
	// EtaSeconds is the slowest running run's wall-clock ETA — when the
	// whole fleet should be done if every run stays linear.
	EtaSeconds float64 `json:"eta_seconds"`
	// Subscribers counts the attached /events streams; DroppedEvents
	// counts frames dropped across all subscribers (bounded queues drop
	// rather than block the simulation).
	Subscribers   int    `json:"subscribers"`
	DroppedEvents uint64 `json:"dropped_events"`
}

// Hook registers run id and returns the per-epoch publish callback to
// install as harness.Spec.Publish. Re-registering an id (bench reps) resets
// its snapshot. Nil-safe: a nil registry returns a nil hook, which the
// harness treats as "no publisher".
func (g *Registry) Hook(id string) func(telemetry.EpochState, health.Status) {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	g.runs[id] = &runState{id: id, started: time.Now()}
	g.emitLocked(Event{Type: EventRunStart, Run: id})
	g.mu.Unlock()
	return func(st telemetry.EpochState, hs health.Status) {
		// Reduce the live state to value copies before taking the lock:
		// summarizing histograms is the expensive part and needs no mutex
		// (it runs on the sim goroutine that owns the state).
		lat := st.Lat.Summaries()
		gauges := append([]mem.Gauge(nil), st.Sample.Gauges...)
		memCopy := *st.Mem
		openCopy := append([]health.Incident(nil), hs.Open...)
		var dramCopy []DramDeviceStatus
		if st.Dram != nil {
			sm := st.Sample
			dramCopy = []DramDeviceStatus{
				dramStatus("nm", &st.Dram.NM, sm.RowHitRateNM, sm.BusUtilNM, sm.BankImbalanceNM, sm.RowConflictsNM),
				dramStatus("fm", &st.Dram.FM, sm.RowHitRateFM, sm.BusUtilFM, sm.BankImbalanceFM, sm.RowConflictsFM),
			}
		}

		g.mu.Lock()
		defer g.mu.Unlock()
		rs := g.runs[id]
		if rs == nil || rs.finished {
			return
		}
		rs.cycle = st.Sample.Cycle
		rs.mem = memCopy
		rs.gauges = gauges
		rs.lat = lat
		rs.queueNM, rs.queueFM = st.Sample.QueueNM, st.Sample.QueueFM
		rs.peakQueueNM, rs.peakQueueFM = st.Sample.PeakQueueNM, st.Sample.PeakQueueFM
		rs.done, rs.total = st.Done, st.Total
		rs.dram = dramCopy
		rs.open = openCopy

		if len(g.subs) == 0 {
			return
		}
		for i := range hs.Opened {
			in := hs.Opened[i]
			g.emitLocked(Event{Type: EventIncidentOpen, Run: id, Incident: &in})
		}
		for i := range hs.Closed {
			in := hs.Closed[i]
			g.emitLocked(Event{Type: EventIncidentClose, Run: id, Incident: &in})
		}
		ep := EpochEvent{
			Cycle:         st.Sample.Cycle,
			InstrDone:     st.Done,
			InstrTotal:    st.Total,
			Pct:           pct(st.Done, st.Total),
			AccessRate:    st.Sample.AccessRate,
			QueueNM:       st.Sample.QueueNM,
			QueueFM:       st.Sample.QueueFM,
			PeakQueueNM:   st.Sample.PeakQueueNM,
			PeakQueueFM:   st.Sample.PeakQueueFM,
			McycPerSec:    stats.Ratio(float64(rs.cycle), time.Since(rs.started).Seconds()) / 1e6,
			OpenIncidents: len(openCopy),
			Dram:          dramCopy,
		}
		g.emitLocked(Event{Type: EventEpoch, Run: id, Epoch: &ep})
	}
}

// Done marks run id complete with its final incident list; open incidents
// clear (the run can no longer be unhealthy), and the last published cycle
// is frozen into a final elapsed/throughput figure so /progress and
// /api/runs keep reporting it.
func (g *Registry) Done(id string, final []health.Incident) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	rs := g.runs[id]
	if rs == nil {
		rs = &runState{id: id, started: time.Now()}
		g.runs[id] = rs
	}
	if !rs.finished {
		rs.finalElapsed = time.Since(rs.started).Seconds()
		rs.finalRate = stats.Ratio(float64(rs.cycle), rs.finalElapsed) / 1e6
	}
	rs.finished = true
	rs.open = nil
	rs.totalIncidents = len(final)
	g.emitLocked(Event{Type: EventRunDone, Run: id})
}

// Runs returns every run's status in id order (deterministic reads).
func (g *Registry) Runs() []RunStatus {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]RunStatus, 0, len(g.runs))
	for _, rs := range g.sortedLocked() {
		out = append(out, rs.status())
	}
	return out
}

// Aggregate reduces the fleet to its headline numbers.
func (g *Registry) Aggregate() Fleet {
	if g == nil {
		return Fleet{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.aggregateLocked()
}

func (g *Registry) aggregateLocked() Fleet {
	fl := Fleet{Subscribers: len(g.subs), DroppedEvents: g.dropped}
	for sub := range g.subs {
		fl.DroppedEvents += sub.dropped.Load()
	}
	for _, rs := range g.runs {
		fl.Runs++
		if rs.finished {
			fl.RunsDone++
			fl.TotalIncidents += rs.totalIncidents
			continue
		}
		fl.OpenIncidents += len(rs.open)
		fl.TotalIncidents += len(rs.open)
		st := rs.status()
		fl.McycPerSec += st.McycPerSec
		if st.EtaSeconds > fl.EtaSeconds {
			fl.EtaSeconds = st.EtaSeconds
		}
	}
	return fl
}

// status reduces a runState to its public snapshot. Caller holds the
// registry mutex.
func (rs *runState) status() RunStatus {
	st := RunStatus{
		Run:            rs.id,
		State:          "running",
		Cycle:          rs.cycle,
		InstrDone:      rs.done,
		InstrTotal:     rs.total,
		Pct:            pct(rs.done, rs.total),
		AccessRate:     rs.mem.AccessRate(),
		QueueNM:        rs.queueNM,
		QueueFM:        rs.queueFM,
		OpenIncidents:  len(rs.open),
		TotalIncidents: rs.totalIncidents,
		Dram:           rs.dram,
	}
	if rs.finished {
		st.State = "done"
		st.ElapsedSeconds = rs.finalElapsed
		st.McycPerSec = rs.finalRate
		return st
	}
	elapsed := time.Since(rs.started).Seconds()
	st.ElapsedSeconds = elapsed
	st.McycPerSec = stats.Ratio(float64(rs.cycle), elapsed) / 1e6
	if rs.done > 0 && rs.total > rs.done {
		st.EtaSeconds = elapsed * float64(rs.total-rs.done) / float64(rs.done)
	}
	return st
}

// sortedLocked returns the run snapshots in id order. Caller holds g.mu.
func (g *Registry) sortedLocked() []*runState {
	out := make([]*runState, 0, len(g.runs))
	for _, rs := range g.runs {
		out = append(out, rs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func pct(done, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(done) / float64(total)
}
