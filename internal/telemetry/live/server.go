package live

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"silcfm/internal/flightrec"
	"silcfm/internal/health"
	"silcfm/internal/telemetry"
	"silcfm/internal/telemetry/exemplar"
)

// shutdownTimeout bounds how long Close waits for in-flight scrapes and
// SSE streams to drain before resetting what's left.
const shutdownTimeout = 2 * time.Second

// Server is the thin HTTP view over a Registry: it owns the listener and
// the endpoint handlers, and nothing else — all run state lives in the
// registry, which sweep engines and job APIs can share without HTTP.
type Server struct {
	ln  net.Listener
	srv *http.Server
	reg *Registry
}

// New binds addr (host:port; ":0" picks a free port) and starts serving a
// fresh registry.
func New(addr string) (*Server, error) {
	return NewWith(addr, NewRegistry())
}

// NewWith binds addr and serves an existing registry — the hub shape where
// one process multiplexes many runs and the server is one view of them.
func NewWith(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	s := &Server{ln: ln, reg: reg}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleDashboard)
	mux.HandleFunc("/api/runs", s.handleRuns)
	mux.HandleFunc("/api/incidents", s.handleIncidents)
	mux.HandleFunc("/api/incidents/", s.handleIncident)
	mux.HandleFunc("/api/exemplars", s.handleExemplars)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/progress", s.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	return s, nil
}

// Registry returns the run store this server views.
func (s *Server) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Addr returns the bound address (resolved port when addr was ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close stops the server gracefully: subscriber streams are closed (which
// drains the /events handlers), then in-flight scrapes get shutdownTimeout
// to finish before any stragglers are reset.
func (s *Server) Close() error {
	s.reg.Close()
	ctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// Hook registers run id on the registry and returns the per-epoch publish
// callback to install as harness.Spec.Publish. Nil-safe: a nil server
// returns a nil hook, which the harness treats as "no publisher".
func (s *Server) Hook(id string) func(telemetry.EpochState, health.Status) {
	if s == nil {
		return nil
	}
	return s.reg.Hook(id)
}

// Done marks run id complete with its final incident list.
func (s *Server) Done(id string, final []health.Incident) {
	if s == nil {
		return
	}
	s.reg.Done(id, final)
}

// AddBundle stores one finalized postmortem bundle under hub run id run
// (the flightrec.Config.OnBundle attachment point; see Registry.AddBundle).
func (s *Server) AddBundle(run string, b *flightrec.Bundle) {
	if s == nil {
		return
	}
	s.reg.AddBundle(run, b)
}

// SetExemplars replaces hub run id run's tail-exemplar snapshot (the
// exemplar.Config.OnSnapshot attachment point; see Registry.SetExemplars).
func (s *Server) SetExemplars(run string, es []exemplar.Exemplar) {
	if s == nil {
		return
	}
	s.reg.SetExemplars(run, es)
}

func (s *Server) handleExemplars(w http.ResponseWriter, r *http.Request) {
	sets := s.reg.Exemplars()
	if sets == nil {
		sets = []ExemplarSet{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc, _ := json.MarshalIndent(struct {
		Runs []ExemplarSet `json:"runs"`
	}{sets}, "", "  ")
	w.Write(append(enc, '\n'))
}

func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	incidents := s.reg.Incidents()
	if incidents == nil {
		incidents = []IncidentRef{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc, _ := json.MarshalIndent(struct {
		Incidents []IncidentRef `json:"incidents"`
	}{incidents}, "", "  ")
	w.Write(append(enc, '\n'))
}

func (s *Server) handleIncident(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/api/incidents/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		http.Error(w, "bad incident id", http.StatusBadRequest)
		return
	}
	b := s.reg.Bundle(id)
	if b == nil {
		http.Error(w, "no such incident bundle", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	b.Encode(w)
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc, _ := json.MarshalIndent(struct {
		Fleet Fleet       `json:"fleet"`
		Runs  []RunStatus `json:"runs"`
	}{s.reg.Aggregate(), s.reg.Runs()}, "", "  ")
	w.Write(append(enc, '\n'))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	g := s.reg
	g.mu.Lock()
	runs := g.sortedLocked()

	writeFamily := func(name, typ, help string, rows func(*runState) []string) {
		var lines []string
		for _, rs := range runs {
			lines = append(lines, rows(rs)...)
		}
		if len(lines) == 0 {
			return
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, l := range lines {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	runLabel := func(rs *runState) string { return `run="` + escapeLabel(rs.id) + `"` }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }

	writeFamily("silcfm_cycle", "gauge", "Simulated cycle at the last published epoch.",
		func(rs *runState) []string {
			return []string{fmt.Sprintf("silcfm_cycle{%s} %s", runLabel(rs), u(rs.cycle))}
		})
	writeFamily("silcfm_access_rate", "gauge", "Fraction of LLC misses serviced from near memory (paper Eq. 1).",
		func(rs *runState) []string {
			return []string{fmt.Sprintf("silcfm_access_rate{%s} %s", runLabel(rs), f(rs.mem.AccessRate()))}
		})
	// Every cumulative stats.Memory counter, one family each.
	if len(runs) > 0 {
		for i, c := range runs[0].mem.Counters() {
			i := i
			writeFamily("silcfm_"+c.Name+"_total", "counter", "Cumulative "+c.Name+" counter.",
				func(rs *runState) []string {
					cs := rs.mem.Counters()
					return []string{fmt.Sprintf("silcfm_%s_total{%s} %s", cs[i].Name, runLabel(rs), u(cs[i].Value))}
				})
		}
	}
	writeFamily("silcfm_queue_depth", "gauge", "Instantaneous device queue depth at the epoch boundary.",
		func(rs *runState) []string {
			return []string{
				fmt.Sprintf("silcfm_queue_depth{%s,device=\"nm\"} %d", runLabel(rs), rs.queueNM),
				fmt.Sprintf("silcfm_queue_depth{%s,device=\"fm\"} %d", runLabel(rs), rs.queueFM),
			}
		})
	writeFamily("silcfm_queue_depth_peak", "gauge", "Per-epoch queue-depth high-water mark.",
		func(rs *runState) []string {
			return []string{
				fmt.Sprintf("silcfm_queue_depth_peak{%s,device=\"nm\"} %d", runLabel(rs), rs.peakQueueNM),
				fmt.Sprintf("silcfm_queue_depth_peak{%s,device=\"fm\"} %d", runLabel(rs), rs.peakQueueFM),
			}
		})
	// DRAM introspection families: per-device epoch-windowed gauges plus the
	// per-bank access heatmap (the scrape-side view of the dashboard panel).
	dramFamily := func(name, help string, value func(DramDeviceStatus) string) {
		writeFamily(name, "gauge", help, func(rs *runState) []string {
			var out []string
			for _, d := range rs.dram {
				out = append(out, fmt.Sprintf("%s{%s,device=\"%s\"} %s", name, runLabel(rs), d.Device, value(d)))
			}
			return out
		})
	}
	dramFamily("silcfm_dram_row_hit_rate", "Epoch row-buffer hit rate per DRAM device.",
		func(d DramDeviceStatus) string { return f(d.RowHitRate) })
	dramFamily("silcfm_dram_bus_util", "Epoch data-bus busy share per DRAM device (bursts booked at issue may push it slightly past 1).",
		func(d DramDeviceStatus) string { return f(d.BusUtil) })
	dramFamily("silcfm_dram_bank_imbalance", "Epoch max-over-mean per-bank access imbalance per DRAM device.",
		func(d DramDeviceStatus) string { return f(d.BankImbalance) })
	dramFamily("silcfm_dram_row_conflicts", "Epoch row-buffer conflicts per DRAM device (precharge-then-activate).",
		func(d DramDeviceStatus) string { return u(d.RowConflicts) })
	writeFamily("silcfm_dram_bank_accesses", "gauge", "Epoch row activity per DRAM bank (hits+misses+conflicts).",
		func(rs *runState) []string {
			var out []string
			for _, d := range rs.dram {
				for i, v := range d.BankAccesses {
					if v == 0 {
						continue
					}
					ch, bk := i/d.BanksPerChannel, i%d.BanksPerChannel
					out = append(out, fmt.Sprintf("silcfm_dram_bank_accesses{%s,device=\"%s\",channel=\"%d\",bank=\"%d\"} %s",
						runLabel(rs), d.Device, ch, bk, u(v)))
				}
			}
			return out
		})
	// Label values are escaped exactly once: escapeLabel output goes inside
	// literal quotes. (%q would re-escape the backslashes it just added.)
	writeFamily("silcfm_scheme_gauge", "gauge", "Scheme-internal instantaneous gauges (mem.GaugeProvider).",
		func(rs *runState) []string {
			var out []string
			for _, g := range rs.gauges {
				out = append(out, fmt.Sprintf("silcfm_scheme_gauge{%s,name=\"%s\"} %s",
					runLabel(rs), escapeLabel(g.Name), f(g.Value)))
			}
			return out
		})
	writeFamily("silcfm_demand_latency_count", "counter", "Demand completions per service path.",
		func(rs *runState) []string {
			var out []string
			for _, p := range rs.lat {
				out = append(out, fmt.Sprintf("silcfm_demand_latency_count{%s,path=\"%s\"} %s",
					runLabel(rs), escapeLabel(p.Path), u(p.Count)))
			}
			return out
		})
	writeFamily("silcfm_demand_latency_cycles", "gauge", "Demand-latency percentile bounds per service path.",
		func(rs *runState) []string {
			// The worst captured tail exemplar per path annotates that
			// path's p99 line in OpenMetrics exemplar syntax
			// ("value # {labels} exemplar_value"), linking the quantile
			// bound to a concrete access (address + start cycle).
			worst := map[string]*exemplar.Exemplar{}
			for i := range rs.exemplars {
				e := &rs.exemplars[i]
				if _, ok := worst[e.Path]; !ok {
					worst[e.Path] = e // snapshots are worst-first per path
				}
			}
			var out []string
			for _, p := range rs.lat {
				for _, q := range []struct {
					q string
					v uint64
				}{{"0.5", p.P50}, {"0.95", p.P95}, {"0.99", p.P99}} {
					line := fmt.Sprintf("silcfm_demand_latency_cycles{%s,path=\"%s\",quantile=\"%s\"} %s",
						runLabel(rs), escapeLabel(p.Path), q.q, u(q.v))
					if e := worst[p.Path]; e != nil && q.q == "0.99" {
						line += fmt.Sprintf(" # {pa=\"0x%x\",cycle=\"%d\"} %s", e.PAddr, e.StartCycle, u(e.Latency))
					}
					out = append(out, line)
				}
			}
			return out
		})
	writeFamily("silcfm_open_incidents", "gauge", "Health incidents currently active (see /healthz).",
		func(rs *runState) []string {
			return []string{fmt.Sprintf("silcfm_open_incidents{%s} %d", runLabel(rs), len(rs.open))}
		})
	writeFamily("silcfm_run_finished", "gauge", "1 once the run has completed.",
		func(rs *runState) []string {
			v := 0
			if rs.finished {
				v = 1
			}
			return []string{fmt.Sprintf("silcfm_run_finished{%s} %d", runLabel(rs), v)}
		})

	// Fleet-level families: unlabeled aggregates over every run in the
	// registry, the scrape-side view of the dashboard's headline tiles.
	fl := g.aggregateLocked()
	g.mu.Unlock()

	fleetFamily := func(name, typ, help, value string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s %s\n", name, help, name, typ, name, value)
	}
	fleetFamily("silcfm_fleet_runs", "gauge", "Runs registered on this hub.", strconv.Itoa(fl.Runs))
	fleetFamily("silcfm_fleet_runs_done", "gauge", "Registered runs that have completed.", strconv.Itoa(fl.RunsDone))
	fleetFamily("silcfm_fleet_open_incidents", "gauge", "Open health incidents across running runs.", strconv.Itoa(fl.OpenIncidents))
	fleetFamily("silcfm_fleet_incidents_total", "counter", "Incidents across the fleet: closed totals of finished runs plus open counts of running ones.", strconv.Itoa(fl.TotalIncidents))
	fleetFamily("silcfm_fleet_mcyc_per_sec", "gauge", "Aggregate simulation throughput of the running runs, in Mcyc/s.", f(fl.McycPerSec))
	fleetFamily("silcfm_fleet_eta_seconds", "gauge", "Slowest running run's wall-clock ETA.", f(fl.EtaSeconds))
	fleetFamily("silcfm_fleet_sse_subscribers", "gauge", "Attached /events streams.", strconv.Itoa(fl.Subscribers))
	fleetFamily("silcfm_fleet_sse_dropped_total", "counter", "Event frames dropped by full subscriber queues.", u(fl.DroppedEvents))

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// HealthzRun is one run's slice of the /healthz body.
type HealthzRun struct {
	Run            string            `json:"run"`
	Finished       bool              `json:"finished"`
	OpenIncidents  []health.Incident `json:"open_incidents"`
	TotalIncidents int               `json:"total_incidents"`
}

// Healthz is the /healthz response body.
type Healthz struct {
	Status string       `json:"status"` // "ok" or "incident"
	Runs   []HealthzRun `json:"runs"`
	// Rules is the detector's rule metadata at default thresholds: what
	// each incident kind means, when it fires, and which counters to read
	// first (the dashboard's tooltip source).
	Rules []health.RuleInfo `json:"rules"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := Healthz{Status: "ok", Rules: health.Rules()}
	s.reg.mu.Lock()
	for _, rs := range s.reg.sortedLocked() {
		hr := HealthzRun{
			Run:            rs.id,
			Finished:       rs.finished,
			OpenIncidents:  append([]health.Incident{}, rs.open...),
			TotalIncidents: rs.totalIncidents,
		}
		if len(rs.open) > 0 {
			body.Status = "incident"
		}
		body.Runs = append(body.Runs, hr)
	}
	s.reg.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	if body.Status != "ok" {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc, _ := json.MarshalIndent(&body, "", "  ")
	w.Write(append(enc, '\n'))
}

// ProgressRun is one run's slice of the /progress body.
type ProgressRun struct {
	Run        string  `json:"run"`
	State      string  `json:"state"` // "running" or "done"
	Cycle      uint64  `json:"cycle"`
	InstrDone  uint64  `json:"instr_done"`
	InstrTotal uint64  `json:"instr_total"`
	Pct        float64 `json:"pct"`
	McycPerSec float64 `json:"mcyc_per_sec"`
	EtaSeconds float64 `json:"eta_seconds"`
	// ElapsedSeconds is wall time since the run registered; frozen at Done
	// (finished runs report total wall time, and McycPerSec their final
	// whole-run rate, rather than zeros).
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

func (s *Server) handleProgress(w http.ResponseWriter, r *http.Request) {
	var body []ProgressRun
	for _, st := range s.reg.Runs() {
		body = append(body, ProgressRun{
			Run:            st.Run,
			State:          st.State,
			Cycle:          st.Cycle,
			InstrDone:      st.InstrDone,
			InstrTotal:     st.InstrTotal,
			Pct:            st.Pct,
			McycPerSec:     st.McycPerSec,
			EtaSeconds:     st.EtaSeconds,
			ElapsedSeconds: st.ElapsedSeconds,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc, _ := json.MarshalIndent(body, "", "  ")
	w.Write(append(enc, '\n'))
}
