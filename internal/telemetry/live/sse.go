package live

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"

	"silcfm/internal/health"
)

// Event types on the /events stream, in the order a run emits them.
const (
	EventRunStart      = "run_start"
	EventEpoch         = "epoch"
	EventIncidentOpen  = "incident_open"
	EventIncidentClose = "incident_close"
	EventRunDone       = "run_done"
)

// Event is one frame of the /events SSE stream (and of Subscriber.Events
// for in-process consumers). Seq is a registry-wide monotone sequence
// number; gaps at a subscriber mean its bounded queue dropped frames.
type Event struct {
	Seq  uint64 `json:"seq"`
	Type string `json:"type"`
	Run  string `json:"run"`
	// Epoch is set on "epoch" events.
	Epoch *EpochEvent `json:"epoch,omitempty"`
	// Incident is set on "incident_open"/"incident_close" events: the
	// opening snapshot, or the last open snapshot before the close.
	Incident *health.Incident `json:"incident,omitempty"`
}

// EpochEvent is the per-epoch slice of an Event: enough to drive progress
// bars and sparklines without resnapshotting the whole run.
type EpochEvent struct {
	Cycle      uint64  `json:"cycle"`
	InstrDone  uint64  `json:"instr_done"`
	InstrTotal uint64  `json:"instr_total"`
	Pct        float64 `json:"pct"`
	// AccessRate is this epoch's windowed NM service share (not the
	// cumulative run value /api/runs reports).
	AccessRate    float64 `json:"access_rate"`
	QueueNM       int     `json:"queue_nm"`
	QueueFM       int     `json:"queue_fm"`
	PeakQueueNM   int     `json:"peak_queue_nm"`
	PeakQueueFM   int     `json:"peak_queue_fm"`
	McycPerSec    float64 `json:"mcyc_per_sec"`
	OpenIncidents int     `json:"open_incidents"`
	// Dram carries the per-device DRAM introspection slice ([nm, fm]) for
	// this epoch — the dashboard bank heatmap's streaming feed.
	Dram []DramDeviceStatus `json:"dram,omitempty"`
}

// DefaultSubscriberBuffer is the per-subscriber event queue length used
// when Subscribe is given a non-positive buffer size.
const DefaultSubscriberBuffer = 256

// Subscriber is one attached event stream. Read frames from Events; the
// channel closes on Unsubscribe or registry Close. A subscriber that reads
// slower than the fleet publishes loses frames (counted by Dropped) — the
// publish path never blocks the simulation goroutine.
type Subscriber struct {
	ch      chan Event
	dropped atomic.Uint64
}

// Events is the subscriber's frame channel.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Dropped reports how many frames this subscriber's full queue discarded.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Subscribe attaches a new event stream with the given queue length
// (<= 0 selects DefaultSubscriberBuffer). On a closed registry the
// returned subscriber's channel is already closed.
func (g *Registry) Subscribe(buf int) *Subscriber {
	if buf <= 0 {
		buf = DefaultSubscriberBuffer
	}
	sub := &Subscriber{ch: make(chan Event, buf)}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		close(sub.ch)
		return sub
	}
	g.subs[sub] = struct{}{}
	return sub
}

// Unsubscribe detaches sub and closes its channel. Idempotent.
func (g *Registry) Unsubscribe(sub *Subscriber) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.subs[sub]; !ok {
		return
	}
	delete(g.subs, sub)
	g.dropped += sub.dropped.Load()
	close(sub.ch)
}

// Close detaches every subscriber (closing their channels, which drains
// any /events handlers) and refuses new subscriptions. Runs can still
// publish afterwards; their snapshots stay readable.
func (g *Registry) Close() {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	for sub := range g.subs {
		delete(g.subs, sub)
		g.dropped += sub.dropped.Load()
		close(sub.ch)
	}
}

// emitLocked stamps ev with the next sequence number and offers it to
// every subscriber without blocking: a full queue drops the frame and
// counts it. Caller holds g.mu.
func (g *Registry) emitLocked(ev Event) {
	if g.closed || len(g.subs) == 0 {
		return
	}
	g.seq++
	ev.Seq = g.seq
	for sub := range g.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
		}
	}
}

// sseInit is the first frame of every /events stream: the complete current
// fleet state, so late subscribers start from a full picture instead of an
// empty one.
type sseInit struct {
	Runs  []RunStatus `json:"runs"`
	Fleet Fleet       `json:"fleet"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	// Subscribe before the init snapshot so no transition between the
	// snapshot and the first streamed frame is lost (duplicates are fine,
	// gaps are not).
	sub := s.reg.Subscribe(0)
	defer s.reg.Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	init, err := json.Marshal(sseInit{Runs: s.reg.Runs(), Fleet: s.reg.Aggregate()})
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: init\ndata: %s\n\n", init)
	fl.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			b, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, b)
			fl.Flush()
		}
	}
}
