package live_test

import (
	"bufio"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"silcfm/internal/harness"
	"silcfm/internal/health"
	"silcfm/internal/manifest"
	"silcfm/internal/mem"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry"
	"silcfm/internal/telemetry/live"
)

// drainEvents collects everything currently buffered on sub without
// blocking.
func drainEvents(sub *live.Subscriber) []live.Event {
	var out []live.Event
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return out
			}
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestEventStreamTransitions(t *testing.T) {
	reg := live.NewRegistry()
	sub := reg.Subscribe(64)
	defer reg.Unsubscribe(sub)

	hook := reg.Hook("cell")
	inc := health.Incident{Kind: health.KindSwapThrash, FirstEpoch: 2}
	publishState(hook, 10_000, nil)
	hook(telemetry.EpochState{
		Sample: &telemetry.Sample{Cycle: 20_000},
		Mem:    &stats.Memory{},
		Lat:    stats.NewPathLatencies(),
		Done:   50, Total: 100,
	}, health.Status{Open: []health.Incident{inc}, Opened: []health.Incident{inc}})
	hook(telemetry.EpochState{
		Sample: &telemetry.Sample{Cycle: 30_000},
		Mem:    &stats.Memory{},
		Lat:    stats.NewPathLatencies(),
		Done:   100, Total: 100,
	}, health.Status{Closed: []health.Incident{inc}})
	reg.Done("cell", []health.Incident{inc})

	evs := drainEvents(sub)
	var types []string
	var lastSeq uint64
	for _, ev := range evs {
		types = append(types, ev.Type)
		if ev.Seq <= lastSeq {
			t.Errorf("seq not monotone: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
	want := []string{
		live.EventRunStart, live.EventEpoch,
		live.EventIncidentOpen, live.EventEpoch,
		live.EventIncidentClose, live.EventEpoch,
		live.EventRunDone,
	}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("event sequence = %v, want %v", types, want)
	}
	for _, ev := range evs {
		switch ev.Type {
		case live.EventIncidentOpen, live.EventIncidentClose:
			if ev.Incident == nil || ev.Incident.Kind != health.KindSwapThrash {
				t.Errorf("%s event incident = %+v, want kind %q", ev.Type, ev.Incident, health.KindSwapThrash)
			}
		case live.EventEpoch:
			if ev.Epoch == nil || ev.Epoch.Cycle == 0 {
				t.Errorf("epoch event missing payload: %+v", ev)
			}
		}
	}
}

func TestBoundedQueueDropsAndCounts(t *testing.T) {
	reg := live.NewRegistry()
	sub := reg.Subscribe(2) // room for run_start plus one epoch
	hook := reg.Hook("cell")
	const epochs = 10
	for i := 1; i <= epochs; i++ {
		publishState(hook, uint64(i)*10_000, nil)
	}
	// run_start + 10 epochs offered, 2 buffered: 9 dropped.
	if got, want := sub.Dropped(), uint64(epochs+1-2); got != want {
		t.Errorf("sub.Dropped() = %d, want %d", got, want)
	}
	if fl := reg.Aggregate(); fl.DroppedEvents != sub.Dropped() || fl.Subscribers != 1 {
		t.Errorf("aggregate = %+v, want dropped %d / 1 subscriber", fl, sub.Dropped())
	}
	// The simulation-side hook never blocked: the buffered frames are the
	// earliest ones, in order.
	evs := drainEvents(sub)
	if len(evs) != 2 || evs[0].Type != live.EventRunStart || evs[1].Type != live.EventEpoch {
		t.Fatalf("buffered events = %+v, want [run_start epoch]", evs)
	}
	// Departed subscribers' drop counts persist on the registry.
	reg.Unsubscribe(sub)
	if fl := reg.Aggregate(); fl.DroppedEvents != uint64(epochs+1-2) || fl.Subscribers != 0 {
		t.Errorf("aggregate after unsubscribe = %+v", fl)
	}
}

func TestSubscribeAfterCloseIsClosed(t *testing.T) {
	reg := live.NewRegistry()
	reg.Close()
	sub := reg.Subscribe(0)
	select {
	case _, ok := <-sub.Events():
		if ok {
			t.Fatal("got event from closed registry")
		}
	default:
		t.Fatal("subscriber channel from closed registry is open")
	}
}

// TestConcurrentSubscribersRaceClean churns subscribers while a hook
// publishes; meaningful under -race (ci.sh runs the suite with it).
func TestConcurrentSubscribersRaceClean(t *testing.T) {
	reg := live.NewRegistry()
	hook := reg.Hook("cell")
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				sub := reg.Subscribe(4)
				drainEvents(sub)
				reg.Aggregate()
				reg.Unsubscribe(sub)
			}
		}()
	}
	for i := 1; i <= 200; i++ {
		publishState(hook, uint64(i)*1000, nil)
	}
	close(done)
	wg.Wait()
	reg.Done("cell", nil)
	reg.Close()
}

// TestManifestUnchangedBySubscribers is the streaming leg of the inertness
// invariant at unit scope: the same simulation produces byte-identical
// deterministic manifest sections with zero and with three concurrent
// draining subscribers (ci.sh live asserts the same end-to-end across
// processes).
func TestManifestUnchangedBySubscribers(t *testing.T) {
	runWithSubs := func(subs int) []byte {
		reg := live.NewRegistry()
		var wg sync.WaitGroup
		for i := 0; i < subs; i++ {
			sub := reg.Subscribe(8) // small: forces the drop path too
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range sub.Events() {
				}
			}()
		}
		res, err := harness.Run(tinySpec(reg.Hook("cell")))
		if err != nil {
			t.Fatalf("run with %d subscribers: %v", subs, err)
		}
		reg.Done("cell", res.Health)
		reg.Close()
		wg.Wait()
		e := manifest.FromResult("cell", res)
		b, err := manifest.Canonical(struct {
			Config manifest.Config
			Sim    manifest.Sim
		}{e.Config, e.Sim})
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		return b
	}
	without := runWithSubs(0)
	with := runWithSubs(3)
	if string(without) != string(with) {
		t.Errorf("deterministic manifest sections differ with subscribers attached:\n%s\nvs\n%s", without, with)
	}
}

func TestMetricsEscapesHardLabelValues(t *testing.T) {
	srv, err := live.New("127.0.0.1:0")
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	defer srv.Close()
	hook := srv.Hook(`run"with\specials`)
	hook(telemetry.EpochState{
		Sample: &telemetry.Sample{
			Cycle:  1000,
			Gauges: []mem.Gauge{{Name: `gauge\name"quoted`, Value: 7}},
		},
		Mem:  &stats.Memory{},
		Lat:  stats.NewPathLatencies(),
		Done: 1, Total: 2,
	}, health.Status{})

	code, body := get(t, srv.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if err := live.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics with special label values is not valid exposition: %v", err)
	}
	// Exactly one level of escaping: backslash doubled, quote escaped.
	want := `silcfm_scheme_gauge{run="run\"with\\specials",name="gauge\\name\"quoted"} 7`
	if !strings.Contains(string(body), want) {
		t.Errorf("/metrics missing single-escaped line %q in:\n%s", want, body)
	}
}

func TestCloseIsGracefulWithSlowClient(t *testing.T) {
	srv, err := live.New("127.0.0.1:0")
	if err != nil {
		t.Fatalf("live.New: %v", err)
	}
	hook := srv.Hook("cell")
	publishState(hook, 1000, nil)

	// A slow client: opens the SSE stream and never reads another byte.
	resp, err := http.Get(srv.URL() + "/events")
	if err != nil {
		t.Fatalf("GET /events: %v", err)
	}
	defer resp.Body.Close()
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("read first SSE line: %v", err)
	}

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Errorf("Close took %v with a slow client, want graceful shutdown under ~2s", d)
	}
	// The stream the slow client held is gone.
	if _, err := io.Copy(io.Discard, br); err == nil {
		// EOF (nil from Copy) is fine too: the server closed the stream.
		_ = err
	}
}
