package live

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Prometheus text-exposition grammar, the subset /metrics emits.
var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe      = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ValidateExposition checks that body parses as Prometheus text
// exposition format (version 0.0.4): every non-comment line is
// `name{label="value",...} value` with well-formed names, quoting and a
// float-parseable sample value, and every TYPE comment declares a valid
// type. Used by the live-server tests and ci.sh's endpoint check.
func ValidateExposition(body []byte) error {
	samples := 0
	for i, line := range strings.Split(string(body), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line); err != nil {
				return fmt.Errorf("line %d: %w (%q)", i+1, err, line)
			}
			continue
		}
		if err := validateSample(line); err != nil {
			return fmt.Errorf("line %d: %w (%q)", i+1, err, line)
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("exposition contains no samples")
	}
	return nil
}

func validateComment(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return fmt.Errorf("bare # comment")
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed HELP")
		}
	case "TYPE":
		if len(fields) != 4 || !metricNameRe.MatchString(fields[2]) {
			return fmt.Errorf("malformed TYPE")
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", fields[3])
		}
	default:
		return fmt.Errorf("unknown comment keyword %q", fields[1])
	}
	return nil
}

func validateSample(line string) error {
	rest := line
	brace := strings.IndexByte(rest, '{')
	var name string
	if brace >= 0 {
		name = rest[:brace]
		end, err := validateLabels(rest[brace:])
		if err != nil {
			return err
		}
		rest = rest[brace+end:]
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return fmt.Errorf("sample missing value")
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !metricNameRe.MatchString(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	value := strings.TrimSpace(rest)
	if value == "" {
		return fmt.Errorf("sample missing value")
	}
	// An OpenMetrics exemplar annotation may follow the value:
	// `value # {label="v",...} exemplar_value`.
	var exemplar string
	if hash := strings.Index(value, " # "); hash >= 0 {
		exemplar = strings.TrimSpace(value[hash+3:])
		value = strings.TrimSpace(value[:hash])
	}
	// A timestamp may follow the value; /metrics never emits one, but
	// accept it per the format.
	valField := strings.Fields(value)[0]
	if _, err := strconv.ParseFloat(valField, 64); err != nil {
		return fmt.Errorf("bad sample value %q", valField)
	}
	if exemplar != "" {
		if len(exemplar) == 0 || exemplar[0] != '{' {
			return fmt.Errorf("exemplar missing label block")
		}
		end, err := validateLabels(exemplar)
		if err != nil {
			return fmt.Errorf("exemplar: %w", err)
		}
		ev := strings.TrimSpace(exemplar[end:])
		if ev == "" {
			return fmt.Errorf("exemplar missing value")
		}
		if _, err := strconv.ParseFloat(strings.Fields(ev)[0], 64); err != nil {
			return fmt.Errorf("bad exemplar value %q", ev)
		}
	}
	return nil
}

// validateLabels parses a `{name="value",...}` block starting at s[0]=='{'
// and returns the index just past the closing brace.
func validateLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label missing '='")
		}
		name := s[i : i+eq]
		if !labelRe.MatchString(name) {
			return 0, fmt.Errorf("bad label name %q", name)
		}
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return 0, fmt.Errorf("label value not quoted")
		}
		i++ // past opening quote
		for {
			if i >= len(s) {
				return 0, fmt.Errorf("unterminated label value")
			}
			if s[i] == '\\' {
				if i+1 >= len(s) {
					return 0, fmt.Errorf("dangling escape")
				}
				switch s[i+1] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Errorf("bad escape \\%c", s[i+1])
				}
				i += 2
				continue
			}
			if s[i] == '"' {
				i++
				break
			}
			i++
		}
		if i < len(s) && s[i] == ',' {
			i++
		}
	}
}
