package telemetry_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry"
)

// newBareSystem builds an idle system for driving the sampler directly.
func newBareSystem() (*sim.Engine, *mem.System) {
	m := config.Small()
	m.NM = config.HBM(128 << 10)
	m.FM = config.DDR3(512 << 10)
	eng := sim.NewEngine()
	return eng, mem.NewSystem(m, eng)
}

// awkwardGauges is a controller whose gauge names carry every character CSV
// treats specially, to pin down RFC 4180 header quoting.
type awkwardGauges struct{}

func (awkwardGauges) Name() string                  { return "awkward" }
func (awkwardGauges) Locate(pa uint64) mem.Location { return mem.Location{DevAddr: pa} }
func (awkwardGauges) Handle(a *mem.Access)          {}
func (awkwardGauges) Gauges() []mem.Gauge {
	return []mem.Gauge{
		{Name: `queue,depth`, Value: 1},
		{Name: `says "hi"`, Value: 2},
		{Name: "plain", Value: 3},
	}
}

func TestCSVGaugeNameQuoting(t *testing.T) {
	eng, sys := newBareSystem()
	var buf bytes.Buffer
	tel := telemetry.Attach(&telemetry.Config{MetricsW: &buf, MetricsCSV: true}, sys, awkwardGauges{})
	if tel == nil {
		t.Fatal("Attach returned nil")
	}
	// No pump needed: once any cycles have elapsed, Finish flushes the
	// first (and only) sample as the final partial epoch.
	eng.At(1, func() { sys.Stats.LLCMisses++ })
	eng.Run()
	if err := tel.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}

	rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid RFC 4180 CSV: %v\n%s", err, buf.String())
	}
	if len(rows) != 2 {
		t.Fatalf("want header + 1 sample row, got %d rows", len(rows))
	}
	header := rows[0]
	wantTail := []string{`g:queue,depth`, `g:says "hi"`, "g:plain"}
	got := header[len(header)-len(wantTail):]
	for i, want := range wantTail {
		if got[i] != want {
			t.Errorf("gauge column %d = %q, want %q", i, got[i], want)
		}
	}
	if len(rows[1]) != len(header) {
		t.Errorf("sample row has %d cells, header has %d", len(rows[1]), len(header))
	}
	// The raw header must not contain an unquoted comma-bearing name.
	line, _, _ := strings.Cut(buf.String(), "\n")
	if !strings.Contains(line, `"g:queue,depth"`) {
		t.Errorf("comma-bearing gauge name not quoted in header: %q", line)
	}
}

// TestZeroLengthRunEmitsNoSample pins the finish() fix: a run in which the
// engine never advanced must produce no epoch rows at all, not a spurious
// all-zero row.
func TestZeroLengthRunEmitsNoSample(t *testing.T) {
	for _, csv := range []bool{false, true} {
		_, sys := newBareSystem()
		var buf bytes.Buffer
		tel := telemetry.Attach(&telemetry.Config{MetricsW: &buf, MetricsCSV: csv}, sys, nil)
		tel.Start()
		if err := tel.Finish(); err != nil {
			t.Fatalf("csv=%v: finish: %v", csv, err)
		}
		if buf.Len() != 0 {
			t.Errorf("csv=%v: zero-length run emitted %q, want nothing", csv, buf.String())
		}
	}
}

// driftGauges is a controller whose gauge set shrinks mid-run, to pin the
// CSV gauge-drift guard: the vanished gauge's column must zero-fill, never
// misalign the row.
type driftGauges struct{ gauges []mem.Gauge }

func (*driftGauges) Name() string                  { return "drift" }
func (*driftGauges) Locate(pa uint64) mem.Location { return mem.Location{DevAddr: pa} }
func (*driftGauges) Handle(a *mem.Access)          {}
func (d *driftGauges) Gauges() []mem.Gauge         { return d.gauges }

func TestCSVGaugeDriftZeroFills(t *testing.T) {
	const E = 100
	eng, sys := newBareSystem()
	ctl := &driftGauges{gauges: []mem.Gauge{
		{Name: "stable", Value: 7},
		{Name: "vanishing", Value: 42},
	}}
	var buf bytes.Buffer
	tel := telemetry.Attach(&telemetry.Config{MetricsW: &buf, MetricsCSV: true, EpochCycles: E}, sys, ctl)
	tel.Start()
	eng.RunUntil(E) // first sample fixes the column order: stable, vanishing
	ctl.gauges = ctl.gauges[:1]
	eng.RunUntil(2 * E) // second sample no longer reports "vanishing"
	if err := tel.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}

	rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV after gauge drift: %v\n%s", err, buf.String())
	}
	if len(rows) != 3 {
		t.Fatalf("want header + 2 samples, got %d rows", len(rows))
	}
	header := rows[0]
	col := -1
	for i, name := range header {
		if name == "g:vanishing" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("header lost the vanished gauge column: %v", header)
	}
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			t.Fatalf("sample %d has %d cells, header has %d (misaligned)", i, len(row), len(header))
		}
	}
	if got := rows[1][col]; got != "42" {
		t.Errorf("first sample's vanishing gauge = %q, want 42", got)
	}
	if got := rows[2][col]; got != "0" {
		t.Errorf("vanished gauge cell = %q, want zero-filled 0", got)
	}
}

func TestEpochBoundaryExactMultiple(t *testing.T) {
	const E = 10_000
	eng, sys := newBareSystem()
	var buf bytes.Buffer
	tel := telemetry.Attach(&telemetry.Config{MetricsW: &buf, EpochCycles: E}, sys, nil)
	tel.Start()
	// Activity strictly inside each of the three epochs.
	for i, bump := range []uint64{3, 5, 7} {
		bump := bump
		eng.At(uint64(i)*E+E/2, func() {
			sys.Stats.LLCMisses += bump
			sys.Stats.ServicedNM += bump
		})
	}
	// The run ends exactly on an epoch boundary: the final pump tick at 3E
	// emits the last sample, and Finish must not add a spurious empty one.
	eng.RunUntil(3 * E)
	if err := tel.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}

	var samples []telemetry.Sample
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var s telemetry.Sample
		if err := dec.Decode(&s); err != nil {
			t.Fatalf("sample %d: %v", len(samples), err)
		}
		samples = append(samples, s)
	}
	if len(samples) != 3 {
		t.Fatalf("want exactly 3 samples for 3 full epochs, got %d: %+v", len(samples), samples)
	}
	var misses, span uint64
	for i, s := range samples {
		if want := uint64(i+1) * E; s.Cycle != want {
			t.Errorf("sample %d at cycle %d, want %d", i, s.Cycle, want)
		}
		if s.SpanCycles != E {
			t.Errorf("sample %d spans %d cycles, want %d", i, s.SpanCycles, E)
		}
		misses += s.LLCMisses
		span += s.SpanCycles
	}
	if misses != sys.Stats.LLCMisses {
		t.Errorf("epoch deltas sum to %d misses, run total %d", misses, sys.Stats.LLCMisses)
	}
	if span != eng.Now() {
		t.Errorf("epoch spans sum to %d cycles, run ended at %d", span, eng.Now())
	}
}

func TestProfilerIsInert(t *testing.T) {
	var pb bytes.Buffer
	with := runTiny(t, false, &telemetry.Config{ProfileW: &pb})
	without := runTiny(t, false, nil)
	if with.Cycles != without.Cycles {
		t.Errorf("profiling changed Cycles: %d vs %d", with.Cycles, without.Cycles)
	}
	if with.Mem != without.Mem {
		t.Errorf("profiling changed memory counters:\nwith    %+v\nwithout %+v", with.Mem, without.Mem)
	}
	if pb.Len() == 0 {
		t.Fatal("empty profile output")
	}
}

func TestProfileOutputIsDeterministicAndWellFormed(t *testing.T) {
	run := func() ([]byte, *telemetry.Profiler) {
		var pb bytes.Buffer
		r := runTiny(t, false, &telemetry.Config{ProfileW: &pb})
		if r.Profile == nil {
			t.Fatal("harness did not surface the profiler")
		}
		return pb.Bytes(), r.Profile
	}
	b1, p1 := run()
	b2, p2 := run()
	if !bytes.Equal(b1, b2) {
		t.Error("profile JSONL differs between identical runs")
	}
	if p1.TopOffenders(5) != p2.TopOffenders(5) {
		t.Error("TopOffenders differs between identical runs")
	}

	// Every line is valid JSON with a kind; the summary's counts match the
	// number of entry lines.
	var blocks, pcs int
	var summary struct {
		Blocks int `json:"blocks"`
		PCs    int `json:"pcs"`
	}
	sawSummary := false
	dec := json.NewDecoder(bytes.NewReader(b1))
	for dec.More() {
		var line struct {
			Kind string `json:"kind"`
		}
		raw := json.RawMessage{}
		if err := dec.Decode(&raw); err != nil {
			t.Fatalf("profile line: %v", err)
		}
		if err := json.Unmarshal(raw, &line); err != nil {
			t.Fatalf("profile line: %v", err)
		}
		switch line.Kind {
		case "block":
			blocks++
		case "pc":
			pcs++
		case "summary":
			sawSummary = true
			if err := json.Unmarshal(raw, &summary); err != nil {
				t.Fatalf("summary line: %v", err)
			}
		default:
			t.Fatalf("unknown profile line kind %q", line.Kind)
		}
	}
	if !sawSummary {
		t.Fatal("profile missing summary line")
	}
	if summary.Blocks != blocks || summary.PCs != pcs {
		t.Errorf("summary claims %d blocks / %d pcs, stream has %d / %d",
			summary.Blocks, summary.PCs, blocks, pcs)
	}
	if blocks == 0 || pcs == 0 {
		t.Fatalf("profile is empty: %d blocks, %d pcs", blocks, pcs)
	}

	top := p1.TopOffenders(5)
	for _, want := range []string{"top 5 blocks by demand", "top 5 PCs by demand", "demands", "swaps_in", "mispred"} {
		if !strings.Contains(top, want) {
			t.Errorf("TopOffenders missing %q:\n%s", want, top)
		}
	}
}

func TestProfilerBoundsEntries(t *testing.T) {
	var pb bytes.Buffer
	r := runTiny(t, false, &telemetry.Config{ProfileW: &pb, ProfileMaxEntries: 8})
	blocks, pcs, droppedBlocks, _ := r.Profile.Counts()
	if blocks > 8 || pcs > 8 {
		t.Errorf("cap violated: %d blocks, %d pcs (max 8)", blocks, pcs)
	}
	if droppedBlocks == 0 {
		t.Error("expected dropped block keys at cap 8")
	}
}

func TestAttributionReconcilesWithLatencies(t *testing.T) {
	r := runTiny(t, false, nil)
	if r.ConservationErr != nil {
		t.Fatalf("conservation: %v", r.ConservationErr)
	}
	var total uint64
	for p := stats.DemandPath(0); p < stats.NumDemandPaths; p++ {
		if got, want := r.Attr.Count[p], r.Lat.Hist[p].N; got != want {
			t.Errorf("path %s: %d attributed, %d latency samples", p, got, want)
		}
		if got, want := r.Attr.PathTotal(p), r.Lat.Hist[p].Sum; got != want {
			t.Errorf("path %s: span sum %d != latency sum %d", p, got, want)
		}
		total += r.Attr.Count[p]
	}
	if total == 0 {
		t.Fatal("no demands attributed; test is vacuous")
	}
}
