package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"silcfm/internal/mem"
	"silcfm/internal/memunits"
	"silcfm/internal/stats"
)

// DefaultProfileMaxEntries bounds each profile map (blocks, PCs) when
// Config.ProfileMaxEntries is zero. New keys arriving at the cap are counted
// as dropped rather than evicting old ones, so the set of profiled keys is a
// deterministic function of the access stream.
const DefaultProfileMaxEntries = 1 << 15

// BlockProfile aggregates activity for one flat 2 KB block: demand traffic
// (counted at completion, so latencies are final), subblock swap churn,
// lock transitions and bypass/mispredict pressure.
type BlockProfile struct {
	Block    uint64 `json:"block"`
	Demands  uint64 `json:"demands"`
	Writes   uint64 `json:"writes"`
	LatSum   uint64 `json:"lat_cycles"`
	SwapsIn  uint64 `json:"swaps_in"`  // subblocks delivered into NM
	SwapsOut uint64 `json:"swaps_out"` // subblocks delivered back to FM
	Locks    uint64 `json:"locks"`
	Unlocks  uint64 `json:"unlocks"`
	Bypass   uint64 `json:"bypass"`
	Mispred  uint64 `json:"mispredicts"`
}

// PCProfile aggregates demand activity for one program counter.
type PCProfile struct {
	PC      uint64 `json:"pc"`
	Demands uint64 `json:"demands"`
	Writes  uint64 `json:"writes"`
	LatSum  uint64 `json:"lat_cycles"`
	Swaps   uint64 `json:"swaps"` // demands that rode a swap's critical path
	Bypass  uint64 `json:"bypass"`
	Mispred uint64 `json:"mispredicts"`
}

// Profiler accumulates bounded per-block and per-PC hotness profiles from
// the observer stream. It implements mem.Observer, mem.SchemeObserver and
// mem.DemandObserver; it only increments counters — it never schedules
// events or touches simulation state — so attaching it is provably inert.
//
// Demand counts and latencies are recorded at completion (DemandComplete)
// and keyed by the flat physical block of the access, which is
// movement-invariant. Swap churn is recorded per delivered subblock and
// keyed by the flat home block of the FM endpoint of the transfer: for
// remapping schemes (SILC, CAMEO) the FM device address IS the block's home,
// so the key identifies the migrating block exactly; for HMA's
// permutation-based mapping it identifies the FM frame involved, which is an
// approximation documented in README.md.
type Profiler struct {
	nmBlocks uint64 // NM capacity in 2 KB blocks; FM home block b lives at flat block nmBlocks+b

	max     int
	blocks  map[uint64]*BlockProfile
	pcs     map[uint64]*PCProfile
	dropped [2]uint64 // [0] block keys, [1] PC keys rejected at the cap
}

// NewProfiler builds a profiler over sys's geometry holding at most
// maxEntries blocks and maxEntries PCs (<=0 selects the default).
func NewProfiler(sys *mem.System, maxEntries int) *Profiler {
	if maxEntries <= 0 {
		maxEntries = DefaultProfileMaxEntries
	}
	return &Profiler{
		nmBlocks: memunits.BlocksIn(sys.NMCap),
		max:      maxEntries,
		blocks:   make(map[uint64]*BlockProfile),
		pcs:      make(map[uint64]*PCProfile),
	}
}

// block returns the profile for flat block b, or nil once the map is full.
func (p *Profiler) block(b uint64) *BlockProfile {
	if bp, ok := p.blocks[b]; ok {
		return bp
	}
	if len(p.blocks) >= p.max {
		p.dropped[0]++
		return nil
	}
	bp := &BlockProfile{Block: b}
	p.blocks[b] = bp
	return bp
}

// pc returns the profile for program counter v, or nil once the map is full.
func (p *Profiler) pc(v uint64) *PCProfile {
	if pp, ok := p.pcs[v]; ok {
		return pp
	}
	if len(p.pcs) >= p.max {
		p.dropped[1]++
		return nil
	}
	pp := &PCProfile{PC: v}
	p.pcs[v] = pp
	return pp
}

// fmHomeBlock keys a transfer by its FM endpoint's flat home block.
func (p *Profiler) fmHomeBlock(loc mem.Location) (uint64, bool) {
	if loc.Level != stats.FM {
		return 0, false
	}
	return p.nmBlocks + memunits.BlockOf(loc.DevAddr), true
}

// churn charges one delivered subblock moving src -> dst.
func (p *Profiler) churn(src, dst mem.Location) {
	if b, ok := p.fmHomeBlock(src); ok && dst.Level == stats.NM {
		if bp := p.block(b); bp != nil {
			bp.SwapsIn++
		}
		return
	}
	if b, ok := p.fmHomeBlock(dst); ok && src.Level == stats.NM {
		if bp := p.block(b); bp != nil {
			bp.SwapsOut++
		}
	}
}

// Demand implements mem.Observer. Demands are profiled at completion
// instead (DemandComplete), where the path and latency are known.
func (p *Profiler) Demand(pa uint64, loc mem.Location, write bool) {}

// Capture implements mem.Observer.
func (p *Profiler) Capture(loc mem.Location) {}

// Deliver implements mem.Observer.
func (p *Profiler) Deliver(src, dst mem.Location) { p.churn(src, dst) }

// Relocate implements mem.Observer.
func (p *Profiler) Relocate(src, dst mem.Location) { p.churn(src, dst) }

// Swap implements mem.SchemeObserver. The data movement of a swap arrives
// as Deliver pairs, so the initiation event itself carries no extra churn.
func (p *Profiler) Swap(a, b mem.Location) {}

// Lock implements mem.SchemeObserver.
func (p *Profiler) Lock(frame, block uint64, home bool) {
	if bp := p.block(block); bp != nil {
		bp.Locks++
	}
}

// Unlock implements mem.SchemeObserver.
func (p *Profiler) Unlock(frame, block uint64) {
	if bp := p.block(block); bp != nil {
		bp.Unlocks++
	}
}

// DemandComplete implements mem.DemandObserver.
func (p *Profiler) DemandComplete(a *mem.Access, path stats.DemandPath, lat uint64) {
	if bp := p.block(memunits.BlockOf(a.PAddr)); bp != nil {
		bp.Demands++
		bp.LatSum += lat
		if a.Write {
			bp.Writes++
		}
		switch path {
		case stats.PathBypass:
			bp.Bypass++
		case stats.PathMispredict:
			bp.Mispred++
		}
	}
	if pp := p.pc(a.PC); pp != nil {
		pp.Demands++
		pp.LatSum += lat
		if a.Write {
			pp.Writes++
		}
		switch path {
		case stats.PathSwap:
			pp.Swaps++
		case stats.PathBypass:
			pp.Bypass++
		case stats.PathMispredict:
			pp.Mispred++
		}
	}
}

// Counts reports (blocks, pcs, droppedBlocks, droppedPCs).
func (p *Profiler) Counts() (blocks, pcs int, droppedBlocks, droppedPCs uint64) {
	return len(p.blocks), len(p.pcs), p.dropped[0], p.dropped[1]
}

func (p *Profiler) sortedBlocks() []*BlockProfile {
	out := make([]*BlockProfile, 0, len(p.blocks))
	for _, bp := range p.blocks {
		out = append(out, bp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Block < out[j].Block })
	return out
}

func (p *Profiler) sortedPCs() []*PCProfile {
	out := make([]*PCProfile, 0, len(p.pcs))
	for _, pp := range p.pcs {
		out = append(out, pp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PC < out[j].PC })
	return out
}

// WriteJSONL streams every profile entry as one JSON object per line —
// block entries (key ascending), then PC entries (key ascending), then a
// summary line — so output is byte-deterministic for a fixed run.
func (p *Profiler) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, bp := range p.sortedBlocks() {
		if err := enc.Encode(struct {
			Kind string `json:"kind"`
			*BlockProfile
		}{"block", bp}); err != nil {
			return err
		}
	}
	for _, pp := range p.sortedPCs() {
		if err := enc.Encode(struct {
			Kind string `json:"kind"`
			*PCProfile
		}{"pc", pp}); err != nil {
			return err
		}
	}
	return enc.Encode(struct {
		Kind          string `json:"kind"`
		Blocks        int    `json:"blocks"`
		PCs           int    `json:"pcs"`
		DroppedBlocks uint64 `json:"dropped_blocks"`
		DroppedPCs    uint64 `json:"dropped_pcs"`
	}{"summary", len(p.blocks), len(p.pcs), p.dropped[0], p.dropped[1]})
}

// hotter orders profiles for the top-offender tables: demand count
// descending, then churn descending, then key ascending (a total,
// deterministic order).
func hotter(d1, c1, k1, d2, c2, k2 uint64) bool {
	if d1 != d2 {
		return d1 > d2
	}
	if c1 != c2 {
		return c1 > c2
	}
	return k1 < k2
}

func meanLat(sum, n uint64) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(sum)/float64(n))
}

// TopOffenders renders the k hottest blocks and PCs as aligned tables.
func (p *Profiler) TopOffenders(k int) string {
	if k <= 0 {
		k = 10
	}
	blocks := p.sortedBlocks()
	sort.SliceStable(blocks, func(i, j int) bool {
		return hotter(blocks[i].Demands, blocks[i].SwapsIn+blocks[i].SwapsOut, blocks[i].Block,
			blocks[j].Demands, blocks[j].SwapsIn+blocks[j].SwapsOut, blocks[j].Block)
	})
	if len(blocks) > k {
		blocks = blocks[:k]
	}
	bt := &stats.Table{
		Title:   fmt.Sprintf("top %d blocks by demand (of %d profiled, %d dropped)", len(blocks), len(p.blocks), p.dropped[0]),
		Columns: []string{"block", "demands", "writes", "mean_lat", "swaps_in", "swaps_out", "locks", "unlocks", "bypass", "mispred"},
	}
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, b := range blocks {
		bt.AddRow(u(b.Block), u(b.Demands), u(b.Writes), meanLat(b.LatSum, b.Demands),
			u(b.SwapsIn), u(b.SwapsOut), u(b.Locks), u(b.Unlocks), u(b.Bypass), u(b.Mispred))
	}

	pcs := p.sortedPCs()
	sort.SliceStable(pcs, func(i, j int) bool {
		return hotter(pcs[i].Demands, pcs[i].Swaps, pcs[i].PC,
			pcs[j].Demands, pcs[j].Swaps, pcs[j].PC)
	})
	if len(pcs) > k {
		pcs = pcs[:k]
	}
	pt := &stats.Table{
		Title:   fmt.Sprintf("top %d PCs by demand (of %d profiled, %d dropped)", len(pcs), len(p.pcs), p.dropped[1]),
		Columns: []string{"pc", "demands", "writes", "mean_lat", "swaps", "bypass", "mispred"},
	}
	for _, c := range pcs {
		pt.AddRow("0x"+strconv.FormatUint(c.PC, 16), u(c.Demands), u(c.Writes),
			meanLat(c.LatSum, c.Demands), u(c.Swaps), u(c.Bypass), u(c.Mispred))
	}
	return bt.String() + "\n" + pt.String()
}
