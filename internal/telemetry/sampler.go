package telemetry

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"silcfm/internal/dram"
	"silcfm/internal/mem"
	"silcfm/internal/stats"
)

// Sample is one epoch's worth of activity. Counter fields are DELTAS over
// the epoch (they sum to the end-of-run totals); Cycle, AccessRate, the
// queue depths and the gauges are instantaneous at the epoch boundary.
// Field order is fixed by the struct, so JSONL output is byte-deterministic.
type Sample struct {
	Epoch      uint64 `json:"epoch"`
	Cycle      uint64 `json:"cycle"`
	SpanCycles uint64 `json:"span_cycles"`

	LLCMisses  uint64  `json:"llc_misses"`
	ServicedNM uint64  `json:"serviced_nm"`
	ServicedFM uint64  `json:"serviced_fm"`
	AccessRate float64 `json:"access_rate"` // NM share of this epoch's misses (Eq. 1 windowed)

	DemandBytesNM    uint64 `json:"demand_bytes_nm"`
	DemandBytesFM    uint64 `json:"demand_bytes_fm"`
	MigrationBytesNM uint64 `json:"migration_bytes_nm"`
	MigrationBytesFM uint64 `json:"migration_bytes_fm"`
	MetadataBytesNM  uint64 `json:"metadata_bytes_nm"`
	MetadataBytesFM  uint64 `json:"metadata_bytes_fm"`

	SwapsIn         uint64 `json:"swaps_in"`
	SwapsOut        uint64 `json:"swaps_out"`
	Locks           uint64 `json:"locks"`
	Unlocks         uint64 `json:"unlocks"`
	Migrations      uint64 `json:"migrations"`
	Bypassed        uint64 `json:"bypassed"`
	PredictorHits   uint64 `json:"predictor_hits"`
	PredictorMisses uint64 `json:"predictor_misses"`

	RowHitsNM   uint64 `json:"row_hits_nm"`
	RowMissesNM uint64 `json:"row_misses_nm"`
	RowHitsFM   uint64 `json:"row_hits_fm"`
	RowMissesFM uint64 `json:"row_misses_fm"`

	// DRAM introspection deltas/rates over the epoch. RowConflicts is the
	// precharge-then-activate subset of RowMisses; RowHitRate is
	// hits/(hits+misses); BusUtil is data-bus burst occupancy per channel
	// per cycle (bursts are booked at issue, so a boundary epoch can read
	// slightly above 1); BankImbalance is the peak bank's row operations
	// over the per-bank mean (0 when idle, 1 when perfectly balanced).
	RowConflictsNM  uint64  `json:"row_conflicts_nm"`
	RowConflictsFM  uint64  `json:"row_conflicts_fm"`
	RowHitRateNM    float64 `json:"row_hit_rate_nm"`
	RowHitRateFM    float64 `json:"row_hit_rate_fm"`
	BusUtilNM       float64 `json:"bus_util_nm"`
	BusUtilFM       float64 `json:"bus_util_fm"`
	BankImbalanceNM float64 `json:"bank_imbalance_nm"`
	BankImbalanceFM float64 `json:"bank_imbalance_fm"`

	QueueNM int `json:"queue_nm"`
	QueueFM int `json:"queue_fm"`
	// PeakQueueNM/FM are the queue-depth high-water marks over the epoch
	// (reset at each boundary); the instantaneous depths alias bursts.
	PeakQueueNM int `json:"peak_queue_nm"`
	PeakQueueFM int `json:"peak_queue_fm"`

	Gauges []mem.Gauge `json:"gauges,omitempty"`
}

// DramDeviceEpoch is one device's per-bank DRAM activity over an epoch:
// row operations and conflicts per bank, flat-indexed
// [channel*BanksPerChannel + bank]. The slices are owned by the sampler and
// overwritten each epoch; consumers must copy what they keep.
type DramDeviceEpoch struct {
	Channels        int
	BanksPerChannel int
	BankAccesses    []uint64 // row operations (hits+misses+conflicts) this epoch
	BankConflicts   []uint64 // row conflicts this epoch
}

// DramEpoch carries both devices' per-bank epoch deltas (the bank-heatmap
// feed); the device-level rates ride in Sample itself.
type DramEpoch struct {
	NM DramDeviceEpoch
	FM DramDeviceEpoch
}

// sampler snapshots counters each epoch and streams deltas. w may be nil
// when samples are only consumed in memory (Config.OnEpoch).
type sampler struct {
	w   io.Writer
	csv bool
	sys *mem.System
	gp  mem.GaugeProvider

	epoch     uint64
	lastCycle uint64
	prev      stats.Memory
	prevRow   [2][2]uint64 // [level][hit/miss]

	// DRAM introspection deltas: previous per-bank/per-channel ledger
	// snapshots and the reused per-epoch output buffers, all allocated once
	// here so the per-epoch path stays allocation-free.
	prevBank [2][]dram.BankCounters
	prevChan [2][]dram.ChannelCounters
	dram     DramEpoch

	wroteHeader bool
	gaugeNames  []string // CSV gauge column order, fixed at the first sample
}

func newSampler(w io.Writer, csv bool, sys *mem.System, gp mem.GaugeProvider) *sampler {
	s := &sampler{w: w, csv: csv, sys: sys, gp: gp}
	for lv, dev := range [2]*dram.Device{sys.NM, sys.FM} {
		ch, bk := dev.Geometry()
		s.prevBank[lv] = make([]dram.BankCounters, ch*bk)
		s.prevChan[lv] = make([]dram.ChannelCounters, ch)
		de := &s.dram.NM
		if lv == 1 {
			de = &s.dram.FM
		}
		de.Channels, de.BanksPerChannel = ch, bk
		de.BankAccesses = make([]uint64, ch*bk)
		de.BankConflicts = make([]uint64, ch*bk)
	}
	return s
}

// dramDelta folds one device's ledger into the epoch buffers and returns
// the device-level reductions: total conflicts, bus utilization over span,
// and max-over-mean bank imbalance.
func (s *sampler) dramDelta(lv int, dev *dram.Device, span uint64) (conflicts uint64, busUtil, imbalance float64) {
	de := &s.dram.NM
	if lv == 1 {
		de = &s.dram.FM
	}
	cur := dev.BankCounters()
	prev := s.prevBank[lv]
	var total, maxAcc uint64
	for i := range cur {
		acc := cur[i].Accesses() - prev[i].Accesses()
		conf := cur[i].RowConflicts - prev[i].RowConflicts
		de.BankAccesses[i] = acc
		de.BankConflicts[i] = conf
		conflicts += conf
		total += acc
		if acc > maxAcc {
			maxAcc = acc
		}
		prev[i] = cur[i]
	}
	curCh := dev.ChannelCounters()
	prevCh := s.prevChan[lv]
	var bus uint64
	for i := range curCh {
		bus += curCh[i].BusBusyCycles - prevCh[i].BusBusyCycles
		prevCh[i] = curCh[i]
	}
	busUtil = stats.Ratio(float64(bus), float64(len(curCh))*float64(span))
	imbalance = stats.Ratio(float64(maxAcc)*float64(len(cur)), float64(total))
	return
}

// sample emits one epoch row at the current cycle and returns it for
// in-memory consumers (Config.OnEpoch).
func (s *sampler) sample() (*Sample, error) {
	now := s.sys.Eng.Now()
	cur := *s.sys.Stats
	row := [2][2]uint64{
		{s.sys.NM.Stats().RowHits, s.sys.NM.Stats().RowMisses},
		{s.sys.FM.Stats().RowHits, s.sys.FM.Stats().RowMisses},
	}

	sm := Sample{
		Epoch:      s.epoch,
		Cycle:      now,
		SpanCycles: now - s.lastCycle,

		LLCMisses:  cur.LLCMisses - s.prev.LLCMisses,
		ServicedNM: cur.ServicedNM - s.prev.ServicedNM,
		ServicedFM: cur.ServicedFM - s.prev.ServicedFM,

		DemandBytesNM:    cur.Bytes[stats.NM][stats.Demand] - s.prev.Bytes[stats.NM][stats.Demand],
		DemandBytesFM:    cur.Bytes[stats.FM][stats.Demand] - s.prev.Bytes[stats.FM][stats.Demand],
		MigrationBytesNM: cur.Bytes[stats.NM][stats.Migration] - s.prev.Bytes[stats.NM][stats.Migration],
		MigrationBytesFM: cur.Bytes[stats.FM][stats.Migration] - s.prev.Bytes[stats.FM][stats.Migration],
		MetadataBytesNM:  cur.Bytes[stats.NM][stats.Metadata] - s.prev.Bytes[stats.NM][stats.Metadata],
		MetadataBytesFM:  cur.Bytes[stats.FM][stats.Metadata] - s.prev.Bytes[stats.FM][stats.Metadata],

		SwapsIn:         cur.SwapsIn - s.prev.SwapsIn,
		SwapsOut:        cur.SwapsOut - s.prev.SwapsOut,
		Locks:           cur.Locks - s.prev.Locks,
		Unlocks:         cur.Unlocks - s.prev.Unlocks,
		Migrations:      cur.Migrations - s.prev.Migrations,
		Bypassed:        cur.BypassedAccesses - s.prev.BypassedAccesses,
		PredictorHits:   cur.PredictorHits - s.prev.PredictorHits,
		PredictorMisses: cur.PredictorMisses - s.prev.PredictorMisses,

		RowHitsNM:   row[0][0] - s.prevRow[0][0],
		RowMissesNM: row[0][1] - s.prevRow[0][1],
		RowHitsFM:   row[1][0] - s.prevRow[1][0],
		RowMissesFM: row[1][1] - s.prevRow[1][1],

		QueueNM:     s.sys.NM.QueueDepth(),
		QueueFM:     s.sys.FM.QueueDepth(),
		PeakQueueNM: s.sys.NM.TakePeakQueueDepth(),
		PeakQueueFM: s.sys.FM.TakePeakQueueDepth(),
	}
	// Ratio guards the idle epoch: zero LLC misses must sample a 0 access
	// rate, not NaN (which would poison the JSONL/CSV streams and break
	// manifest byte-determinism).
	sm.AccessRate = stats.Ratio(float64(sm.ServicedNM), float64(sm.LLCMisses))
	sm.RowConflictsNM, sm.BusUtilNM, sm.BankImbalanceNM = s.dramDelta(0, s.sys.NM, sm.SpanCycles)
	sm.RowConflictsFM, sm.BusUtilFM, sm.BankImbalanceFM = s.dramDelta(1, s.sys.FM, sm.SpanCycles)
	sm.RowHitRateNM = stats.Ratio(float64(sm.RowHitsNM), float64(sm.RowHitsNM+sm.RowMissesNM))
	sm.RowHitRateFM = stats.Ratio(float64(sm.RowHitsFM), float64(sm.RowHitsFM+sm.RowMissesFM))
	if s.gp != nil {
		sm.Gauges = s.gp.Gauges()
	}

	s.epoch++
	s.lastCycle = now
	s.prev = cur
	s.prevRow = row

	if s.w == nil {
		return &sm, nil
	}
	if s.csv {
		return &sm, s.writeCSV(&sm)
	}
	enc, err := json.Marshal(&sm)
	if err != nil {
		return nil, err
	}
	enc = append(enc, '\n')
	_, err = s.w.Write(enc)
	return &sm, err
}

// finish emits the final partial epoch, if any cycles elapsed since the
// last boundary, so the delta stream sums exactly to the run totals. A
// run in which no cycles ever elapsed (epoch==0 and Now()==0) emits
// nothing rather than a spurious all-zero row.
func (s *sampler) finish() (*Sample, error) {
	if s.sys.Eng.Now() == s.lastCycle {
		return nil, nil
	}
	return s.sample()
}

// csvField quotes a cell per RFC 4180 when it contains a comma, quote or
// newline (gauge names come from scheme code and are not constrained here).
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// csvFixed lists the non-gauge CSV columns, matching Sample field order.
var csvFixed = []string{
	"epoch", "cycle", "span_cycles",
	"llc_misses", "serviced_nm", "serviced_fm", "access_rate",
	"demand_bytes_nm", "demand_bytes_fm",
	"migration_bytes_nm", "migration_bytes_fm",
	"metadata_bytes_nm", "metadata_bytes_fm",
	"swaps_in", "swaps_out", "locks", "unlocks", "migrations", "bypassed",
	"predictor_hits", "predictor_misses",
	"row_hits_nm", "row_misses_nm", "row_hits_fm", "row_misses_fm",
	"row_conflicts_nm", "row_conflicts_fm",
	"row_hit_rate_nm", "row_hit_rate_fm",
	"bus_util_nm", "bus_util_fm",
	"bank_imbalance_nm", "bank_imbalance_fm",
	"queue_nm", "queue_fm", "peak_queue_nm", "peak_queue_fm",
}

func (s *sampler) writeCSV(sm *Sample) error {
	var b strings.Builder
	if !s.wroteHeader {
		for _, g := range sm.Gauges {
			s.gaugeNames = append(s.gaugeNames, g.Name)
		}
		b.WriteString(strings.Join(csvFixed, ","))
		for _, n := range s.gaugeNames {
			b.WriteByte(',')
			b.WriteString(csvField("g:" + n))
		}
		b.WriteByte('\n')
		s.wroteHeader = true
	}
	u := func(v uint64) { b.WriteString(strconv.FormatUint(v, 10)); b.WriteByte(',') }
	u(sm.Epoch)
	u(sm.Cycle)
	u(sm.SpanCycles)
	u(sm.LLCMisses)
	u(sm.ServicedNM)
	u(sm.ServicedFM)
	b.WriteString(strconv.FormatFloat(sm.AccessRate, 'g', -1, 64))
	b.WriteByte(',')
	u(sm.DemandBytesNM)
	u(sm.DemandBytesFM)
	u(sm.MigrationBytesNM)
	u(sm.MigrationBytesFM)
	u(sm.MetadataBytesNM)
	u(sm.MetadataBytesFM)
	u(sm.SwapsIn)
	u(sm.SwapsOut)
	u(sm.Locks)
	u(sm.Unlocks)
	u(sm.Migrations)
	u(sm.Bypassed)
	u(sm.PredictorHits)
	u(sm.PredictorMisses)
	u(sm.RowHitsNM)
	u(sm.RowMissesNM)
	u(sm.RowHitsFM)
	u(sm.RowMissesFM)
	u(sm.RowConflictsNM)
	u(sm.RowConflictsFM)
	f := func(v float64) { b.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); b.WriteByte(',') }
	f(sm.RowHitRateNM)
	f(sm.RowHitRateFM)
	f(sm.BusUtilNM)
	f(sm.BusUtilFM)
	f(sm.BankImbalanceNM)
	f(sm.BankImbalanceFM)
	b.WriteString(strconv.Itoa(sm.QueueNM))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(sm.QueueFM))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(sm.PeakQueueNM))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(sm.PeakQueueFM))
	// Gauge columns follow the header order; a scheme's gauge set is fixed,
	// but guard against drift rather than misalign columns.
	byName := make(map[string]float64, len(sm.Gauges))
	for _, g := range sm.Gauges {
		byName[g.Name] = g.Value
	}
	for _, n := range s.gaugeNames {
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(byName[n], 'g', -1, 64))
	}
	b.WriteByte('\n')
	_, err := io.WriteString(s.w, b.String())
	return err
}
