package telemetry

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"silcfm/internal/mem"
	"silcfm/internal/stats"
)

// Sample is one epoch's worth of activity. Counter fields are DELTAS over
// the epoch (they sum to the end-of-run totals); Cycle, AccessRate, the
// queue depths and the gauges are instantaneous at the epoch boundary.
// Field order is fixed by the struct, so JSONL output is byte-deterministic.
type Sample struct {
	Epoch      uint64 `json:"epoch"`
	Cycle      uint64 `json:"cycle"`
	SpanCycles uint64 `json:"span_cycles"`

	LLCMisses  uint64  `json:"llc_misses"`
	ServicedNM uint64  `json:"serviced_nm"`
	ServicedFM uint64  `json:"serviced_fm"`
	AccessRate float64 `json:"access_rate"` // NM share of this epoch's misses (Eq. 1 windowed)

	DemandBytesNM    uint64 `json:"demand_bytes_nm"`
	DemandBytesFM    uint64 `json:"demand_bytes_fm"`
	MigrationBytesNM uint64 `json:"migration_bytes_nm"`
	MigrationBytesFM uint64 `json:"migration_bytes_fm"`
	MetadataBytesNM  uint64 `json:"metadata_bytes_nm"`
	MetadataBytesFM  uint64 `json:"metadata_bytes_fm"`

	SwapsIn         uint64 `json:"swaps_in"`
	SwapsOut        uint64 `json:"swaps_out"`
	Locks           uint64 `json:"locks"`
	Unlocks         uint64 `json:"unlocks"`
	Migrations      uint64 `json:"migrations"`
	Bypassed        uint64 `json:"bypassed"`
	PredictorHits   uint64 `json:"predictor_hits"`
	PredictorMisses uint64 `json:"predictor_misses"`

	RowHitsNM   uint64 `json:"row_hits_nm"`
	RowMissesNM uint64 `json:"row_misses_nm"`
	RowHitsFM   uint64 `json:"row_hits_fm"`
	RowMissesFM uint64 `json:"row_misses_fm"`

	QueueNM int `json:"queue_nm"`
	QueueFM int `json:"queue_fm"`
	// PeakQueueNM/FM are the queue-depth high-water marks over the epoch
	// (reset at each boundary); the instantaneous depths alias bursts.
	PeakQueueNM int `json:"peak_queue_nm"`
	PeakQueueFM int `json:"peak_queue_fm"`

	Gauges []mem.Gauge `json:"gauges,omitempty"`
}

// sampler snapshots counters each epoch and streams deltas. w may be nil
// when samples are only consumed in memory (Config.OnEpoch).
type sampler struct {
	w   io.Writer
	csv bool
	sys *mem.System
	gp  mem.GaugeProvider

	epoch     uint64
	lastCycle uint64
	prev      stats.Memory
	prevRow   [2][2]uint64 // [level][hit/miss]

	wroteHeader bool
	gaugeNames  []string // CSV gauge column order, fixed at the first sample
}

func newSampler(w io.Writer, csv bool, sys *mem.System, gp mem.GaugeProvider) *sampler {
	return &sampler{w: w, csv: csv, sys: sys, gp: gp}
}

// sample emits one epoch row at the current cycle and returns it for
// in-memory consumers (Config.OnEpoch).
func (s *sampler) sample() (*Sample, error) {
	now := s.sys.Eng.Now()
	cur := *s.sys.Stats
	row := [2][2]uint64{
		{s.sys.NM.Stats().RowHits, s.sys.NM.Stats().RowMisses},
		{s.sys.FM.Stats().RowHits, s.sys.FM.Stats().RowMisses},
	}

	sm := Sample{
		Epoch:      s.epoch,
		Cycle:      now,
		SpanCycles: now - s.lastCycle,

		LLCMisses:  cur.LLCMisses - s.prev.LLCMisses,
		ServicedNM: cur.ServicedNM - s.prev.ServicedNM,
		ServicedFM: cur.ServicedFM - s.prev.ServicedFM,

		DemandBytesNM:    cur.Bytes[stats.NM][stats.Demand] - s.prev.Bytes[stats.NM][stats.Demand],
		DemandBytesFM:    cur.Bytes[stats.FM][stats.Demand] - s.prev.Bytes[stats.FM][stats.Demand],
		MigrationBytesNM: cur.Bytes[stats.NM][stats.Migration] - s.prev.Bytes[stats.NM][stats.Migration],
		MigrationBytesFM: cur.Bytes[stats.FM][stats.Migration] - s.prev.Bytes[stats.FM][stats.Migration],
		MetadataBytesNM:  cur.Bytes[stats.NM][stats.Metadata] - s.prev.Bytes[stats.NM][stats.Metadata],
		MetadataBytesFM:  cur.Bytes[stats.FM][stats.Metadata] - s.prev.Bytes[stats.FM][stats.Metadata],

		SwapsIn:         cur.SwapsIn - s.prev.SwapsIn,
		SwapsOut:        cur.SwapsOut - s.prev.SwapsOut,
		Locks:           cur.Locks - s.prev.Locks,
		Unlocks:         cur.Unlocks - s.prev.Unlocks,
		Migrations:      cur.Migrations - s.prev.Migrations,
		Bypassed:        cur.BypassedAccesses - s.prev.BypassedAccesses,
		PredictorHits:   cur.PredictorHits - s.prev.PredictorHits,
		PredictorMisses: cur.PredictorMisses - s.prev.PredictorMisses,

		RowHitsNM:   row[0][0] - s.prevRow[0][0],
		RowMissesNM: row[0][1] - s.prevRow[0][1],
		RowHitsFM:   row[1][0] - s.prevRow[1][0],
		RowMissesFM: row[1][1] - s.prevRow[1][1],

		QueueNM:     s.sys.NM.QueueDepth(),
		QueueFM:     s.sys.FM.QueueDepth(),
		PeakQueueNM: s.sys.NM.TakePeakQueueDepth(),
		PeakQueueFM: s.sys.FM.TakePeakQueueDepth(),
	}
	// Ratio guards the idle epoch: zero LLC misses must sample a 0 access
	// rate, not NaN (which would poison the JSONL/CSV streams and break
	// manifest byte-determinism).
	sm.AccessRate = stats.Ratio(float64(sm.ServicedNM), float64(sm.LLCMisses))
	if s.gp != nil {
		sm.Gauges = s.gp.Gauges()
	}

	s.epoch++
	s.lastCycle = now
	s.prev = cur
	s.prevRow = row

	if s.w == nil {
		return &sm, nil
	}
	if s.csv {
		return &sm, s.writeCSV(&sm)
	}
	enc, err := json.Marshal(&sm)
	if err != nil {
		return nil, err
	}
	enc = append(enc, '\n')
	_, err = s.w.Write(enc)
	return &sm, err
}

// finish emits the final partial epoch, if any cycles elapsed since the
// last boundary, so the delta stream sums exactly to the run totals. A
// run in which no cycles ever elapsed (epoch==0 and Now()==0) emits
// nothing rather than a spurious all-zero row.
func (s *sampler) finish() (*Sample, error) {
	if s.sys.Eng.Now() == s.lastCycle {
		return nil, nil
	}
	return s.sample()
}

// csvField quotes a cell per RFC 4180 when it contains a comma, quote or
// newline (gauge names come from scheme code and are not constrained here).
func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// csvFixed lists the non-gauge CSV columns, matching Sample field order.
var csvFixed = []string{
	"epoch", "cycle", "span_cycles",
	"llc_misses", "serviced_nm", "serviced_fm", "access_rate",
	"demand_bytes_nm", "demand_bytes_fm",
	"migration_bytes_nm", "migration_bytes_fm",
	"metadata_bytes_nm", "metadata_bytes_fm",
	"swaps_in", "swaps_out", "locks", "unlocks", "migrations", "bypassed",
	"predictor_hits", "predictor_misses",
	"row_hits_nm", "row_misses_nm", "row_hits_fm", "row_misses_fm",
	"queue_nm", "queue_fm", "peak_queue_nm", "peak_queue_fm",
}

func (s *sampler) writeCSV(sm *Sample) error {
	var b strings.Builder
	if !s.wroteHeader {
		for _, g := range sm.Gauges {
			s.gaugeNames = append(s.gaugeNames, g.Name)
		}
		b.WriteString(strings.Join(csvFixed, ","))
		for _, n := range s.gaugeNames {
			b.WriteByte(',')
			b.WriteString(csvField("g:" + n))
		}
		b.WriteByte('\n')
		s.wroteHeader = true
	}
	u := func(v uint64) { b.WriteString(strconv.FormatUint(v, 10)); b.WriteByte(',') }
	u(sm.Epoch)
	u(sm.Cycle)
	u(sm.SpanCycles)
	u(sm.LLCMisses)
	u(sm.ServicedNM)
	u(sm.ServicedFM)
	b.WriteString(strconv.FormatFloat(sm.AccessRate, 'g', -1, 64))
	b.WriteByte(',')
	u(sm.DemandBytesNM)
	u(sm.DemandBytesFM)
	u(sm.MigrationBytesNM)
	u(sm.MigrationBytesFM)
	u(sm.MetadataBytesNM)
	u(sm.MetadataBytesFM)
	u(sm.SwapsIn)
	u(sm.SwapsOut)
	u(sm.Locks)
	u(sm.Unlocks)
	u(sm.Migrations)
	u(sm.Bypassed)
	u(sm.PredictorHits)
	u(sm.PredictorMisses)
	u(sm.RowHitsNM)
	u(sm.RowMissesNM)
	u(sm.RowHitsFM)
	u(sm.RowMissesFM)
	b.WriteString(strconv.Itoa(sm.QueueNM))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(sm.QueueFM))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(sm.PeakQueueNM))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(sm.PeakQueueFM))
	// Gauge columns follow the header order; a scheme's gauge set is fixed,
	// but guard against drift rather than misalign columns.
	byName := make(map[string]float64, len(sm.Gauges))
	for _, g := range sm.Gauges {
		byName[g.Name] = g.Value
	}
	for _, n := range s.gaugeNames {
		b.WriteByte(',')
		b.WriteString(strconv.FormatFloat(byName[n], 'g', -1, 64))
	}
	b.WriteByte('\n')
	_, err := io.WriteString(s.w, b.String())
	return err
}
