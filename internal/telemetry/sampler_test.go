package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"silcfm/internal/config"
	"silcfm/internal/mem"
	"silcfm/internal/sim"
)

// TestIdleEpochAccessRate pins the NaN guard on the per-epoch access rate:
// an epoch with zero LLC misses must sample AccessRate 0, and the JSONL
// stream must stay parseable with no NaN/Inf tokens. (A raw
// ServicedNM/LLCMisses division yields NaN here, which poisons the output
// and breaks manifest byte-determinism.)
func TestIdleEpochAccessRate(t *testing.T) {
	m := config.Small()
	m.NM = config.HBM(128 << 10)
	m.FM = config.DDR3(512 << 10)
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)

	var buf bytes.Buffer
	s := newSampler(&buf, false, sys, nil)

	// Three idle epochs: no accesses at all.
	for i := 0; i < 3; i++ {
		sm, err := s.sample()
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if sm.LLCMisses != 0 {
			t.Fatalf("epoch %d: expected idle epoch, got %d misses", i, sm.LLCMisses)
		}
		if sm.AccessRate != 0 {
			t.Fatalf("epoch %d: AccessRate = %v, want 0 on idle epoch", i, sm.AccessRate)
		}
	}

	out := buf.String()
	for _, tok := range []string{"NaN", "Inf", "null"} {
		if strings.Contains(out, tok) {
			t.Fatalf("JSONL stream contains %q:\n%s", tok, out)
		}
	}
	// Every line must round-trip as JSON.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", line, err)
		}
	}
}

// TestIdleEpochCSV runs the same idle-epoch stream through the CSV writer.
func TestIdleEpochCSV(t *testing.T) {
	m := config.Small()
	m.NM = config.HBM(128 << 10)
	m.FM = config.DDR3(512 << 10)
	eng := sim.NewEngine()
	sys := mem.NewSystem(m, eng)

	var buf bytes.Buffer
	s := newSampler(&buf, true, sys, nil)
	for i := 0; i < 2; i++ {
		if _, err := s.sample(); err != nil {
			t.Fatalf("sample: %v", err)
		}
	}
	if out := buf.String(); strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("CSV stream contains NaN/Inf:\n%s", out)
	}
}

// TestWallNoteGuards pins the progress-line rate/ETA arithmetic on its
// degenerate inputs: a non-positive elapsed time suppresses the note
// entirely, and a zero done-count must not divide by zero in the ETA.
func TestWallNoteGuards(t *testing.T) {
	// wallStart in the future: elapsed <= 0, no note at all.
	tt := &T{wallStart: time.Now().Add(time.Hour)}
	if note := tt.wallNote(12345, 1, 2); note != "" {
		t.Fatalf("future wallStart: note = %q, want empty", note)
	}

	// Normal elapsed, done == 0: rate prints, ETA is skipped, no NaN/Inf.
	tt = &T{wallStart: time.Now().Add(-time.Second)}
	note := tt.wallNote(1_000_000, 0, 100)
	if note == "" {
		t.Fatal("elapsed run: expected a rate note")
	}
	if strings.Contains(note, "NaN") || strings.Contains(note, "Inf") {
		t.Fatalf("note contains NaN/Inf: %q", note)
	}
	if strings.Contains(note, "eta") {
		t.Fatalf("done=0 must not produce an ETA: %q", note)
	}

	// done > 0, total > done: ETA appears and is finite.
	note = tt.wallNote(1_000_000, 50, 100)
	if !strings.Contains(note, "eta") {
		t.Fatalf("expected ETA in %q", note)
	}
	if strings.Contains(note, "NaN") || strings.Contains(note, "Inf") {
		t.Fatalf("note contains NaN/Inf: %q", note)
	}
}
