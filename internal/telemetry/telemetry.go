// Package telemetry is the observability layer of the simulator: an epoch
// sampler that streams time-series metrics (stats.Memory counter deltas plus
// scheme gauges) as JSONL or CSV, a movement-event tracer that records the
// semantic mem.Observer stream as Chrome trace-event JSON viewable in
// Perfetto, a bounded per-block / per-PC hotness profiler, and periodic
// progress reporting for long runs.
//
// All instrumentation is read-only with respect to simulation state: the
// sampler pump schedules zero-work events on the engine (which never change
// the relative order of real events, see sim.Engine's (when, seq) ordering),
// the tracer only appends to a ring buffer, and the profiler only bumps
// counters in bounded maps. Enabling telemetry therefore cannot change
// Cycles or any counter, and all output is byte-deterministic for a fixed
// seed.
package telemetry

import (
	"fmt"
	"io"
	"time"

	"silcfm/internal/mem"
	"silcfm/internal/stats"
)

// Config selects which telemetry outputs a run produces. A nil Config (or
// one with no writers) disables everything at zero cost.
type Config struct {
	// MetricsW receives one epoch sample per line (JSONL by default).
	MetricsW io.Writer
	// MetricsCSV switches the sample stream to CSV with a header row.
	MetricsCSV bool
	// EpochCycles is the sampling period in simulated cycles (default
	// 200_000: roughly 100 samples for the default single-workload run).
	EpochCycles uint64
	// TraceW receives the Chrome trace-event JSON at end of run.
	TraceW io.Writer
	// TraceLimit bounds the trace ring buffer (default 1<<18 events); the
	// oldest events are dropped first and the drop count is reported in the
	// trace's otherData.
	TraceLimit int
	// ProgressW receives a progress line each epoch.
	ProgressW io.Writer
	// ProfileW receives the per-block / per-PC hotness profile as JSONL at
	// end of run.
	ProfileW io.Writer
	// Profile collects the hotness profile without writing it (for callers
	// that only render TopOffenders); implied by ProfileW != nil.
	Profile bool
	// ProfileMaxEntries bounds each profile map (default 1<<15 blocks and
	// 1<<15 PCs; new keys past the cap are counted as dropped).
	ProfileMaxEntries int
	// OnEpoch, when non-nil, receives every epoch sample in memory — the
	// feed for the health detector (internal/health) and the live
	// observability server (internal/telemetry/live). It runs on the
	// simulation goroutine at the epoch boundary; the referenced state is
	// only valid for the duration of the call (copy, don't retain).
	OnEpoch func(EpochState)
}

// EpochState is one epoch-boundary snapshot handed to Config.OnEpoch.
// Sample holds this epoch's deltas; Mem and Lat point at the live
// cumulative state, valid only during the callback.
type EpochState struct {
	Sample *Sample
	Mem    *stats.Memory
	Lat    *stats.PathLatencies
	// Attr points at the live cumulative span attribution (valid only
	// during the callback, like Mem/Lat); consumers that want per-epoch
	// deltas difference it themselves (the flight recorder does).
	Attr *stats.Attribution
	// Dram points at the sampler-owned per-bank DRAM epoch deltas (the
	// bank-heatmap feed). Like Mem/Lat/Attr it is valid only during the
	// callback and its buffers are overwritten next epoch.
	Dram *DramEpoch
	// Done/Total are the instruction-progress probe's values (zero when
	// no probe is installed; see T.SetProgress).
	Done, Total uint64
}

// DefaultEpochCycles is the sampling period used when Config.EpochCycles is
// zero.
const DefaultEpochCycles = 200_000

// DefaultTraceLimit is the trace ring bound used when Config.TraceLimit is
// zero.
const DefaultTraceLimit = 1 << 18

// T is one run's attached telemetry. All methods are nil-safe so callers
// can thread a nil *T through unconditionally.
type T struct {
	cfg     Config
	sys     *mem.System
	sampler *sampler
	tracer  *Tracer
	prof    *Profiler
	// progress reports retired and target instructions across cores.
	progress func() (done, total uint64)
	// wallStart anchors the ETA / Mcyc-per-second figures in the progress
	// line (host wall clock; never influences simulation state).
	wallStart time.Time
	err       error
}

// Attach wires telemetry onto a system before the simulation starts. ctl is
// the raw (unwrapped) controller; if it implements mem.GaugeProvider its
// gauges ride along in every sample. Returns nil when cfg requests nothing.
func Attach(cfg *Config, sys *mem.System, ctl mem.Controller) *T {
	if cfg == nil || (cfg.MetricsW == nil && cfg.TraceW == nil && cfg.ProgressW == nil &&
		cfg.ProfileW == nil && !cfg.Profile && cfg.OnEpoch == nil) {
		return nil
	}
	t := &T{cfg: *cfg, sys: sys}
	if t.cfg.EpochCycles == 0 {
		t.cfg.EpochCycles = DefaultEpochCycles
	}
	if t.cfg.TraceLimit <= 0 {
		t.cfg.TraceLimit = DefaultTraceLimit
	}
	if t.cfg.MetricsW != nil || t.cfg.OnEpoch != nil {
		gp, _ := ctl.(mem.GaugeProvider)
		t.sampler = newSampler(t.cfg.MetricsW, t.cfg.MetricsCSV, sys, gp)
	}
	if t.cfg.TraceW != nil {
		t.tracer = NewTracer(sys.Eng, t.cfg.TraceLimit)
		sys.AttachObserver(t.tracer)
	}
	if t.cfg.ProfileW != nil || t.cfg.Profile {
		t.prof = NewProfiler(sys, t.cfg.ProfileMaxEntries)
		sys.AttachObserver(t.prof)
	}
	return t
}

// Profiler returns the attached hotness profiler, or nil when profiling was
// not requested.
func (t *T) Profiler() *Profiler {
	if t == nil {
		return nil
	}
	return t.prof
}

// Tracer returns the attached movement tracer, or nil when tracing was not
// requested. The harness uses it to inject exemplar span waterfalls after
// the engine stops, before Finish writes the trace.
func (t *T) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// SetProgress installs the instruction-progress probe used by ProgressW.
func (t *T) SetProgress(fn func() (done, total uint64)) {
	if t != nil {
		t.progress = fn
	}
}

// Start schedules the epoch pump. Call after the cores are wired (so the
// progress probe is live) and before the engine runs.
func (t *T) Start() {
	if t == nil || (t.sampler == nil && t.cfg.ProgressW == nil) {
		return
	}
	t.wallStart = time.Now()
	var pump func()
	pump = func() {
		t.tick()
		t.sys.Eng.After(t.cfg.EpochCycles, pump)
	}
	t.sys.Eng.After(t.cfg.EpochCycles, pump)
}

// tick emits one epoch sample and/or progress line at the current cycle.
func (t *T) tick() {
	t.epochSample()
	if t.cfg.ProgressW != nil {
		now := t.sys.Eng.Now()
		if t.progress != nil {
			done, total := t.progress()
			pct := 0.0
			if total > 0 {
				pct = 100 * float64(done) / float64(total)
			}
			fmt.Fprintf(t.cfg.ProgressW, "progress: cycle=%d instr=%d/%d (%.1f%%)%s\n",
				now, done, total, pct, t.wallNote(now, done, total))
		} else {
			fmt.Fprintf(t.cfg.ProgressW, "progress: cycle=%d%s\n",
				now, t.wallNote(now, 0, 0))
		}
	}
}

// epochSample takes one sampler reading and feeds OnEpoch.
func (t *T) epochSample() {
	if t.sampler == nil || t.err != nil {
		return
	}
	sm, err := t.sampler.sample()
	if err != nil {
		t.err = err
		return
	}
	t.emit(sm)
}

// emit hands one fresh sample to the OnEpoch consumer.
func (t *T) emit(sm *Sample) {
	if sm == nil || t.cfg.OnEpoch == nil {
		return
	}
	st := EpochState{Sample: sm, Mem: t.sys.Stats, Lat: t.sys.Lat, Attr: t.sys.Attr, Dram: &t.sampler.dram}
	if t.progress != nil {
		st.Done, st.Total = t.progress()
	}
	t.cfg.OnEpoch(st)
}

// wallNote renders the host-side rate and ETA suffix of a progress line
// (same arithmetic as harness.SweepResult.WallFooter): simulated Mcyc per
// host second, and the wall time left assuming retirement stays linear.
func (t *T) wallNote(cycle, done, total uint64) string {
	elapsed := time.Since(t.wallStart).Seconds()
	if elapsed <= 0 {
		return ""
	}
	// stats.Ratio guards the sub-millisecond-run and zero-done edges: a
	// zero or non-finite quotient renders as 0 instead of NaN/Inf.
	note := fmt.Sprintf(" %.1f Mcyc/s", stats.Ratio(float64(cycle), elapsed)/1e6)
	if done > 0 && total > done {
		eta := time.Duration(elapsed * stats.Ratio(float64(total-done), float64(done)) * float64(time.Second))
		note += " eta " + eta.Round(time.Second).String()
	}
	return note
}

// Finish flushes the final partial epoch (so per-epoch deltas sum exactly to
// the end-of-run totals) and writes the trace JSON. Call once, after the
// engine stops and before results are read.
func (t *T) Finish() error {
	if t == nil {
		return nil
	}
	if t.sampler != nil && t.err == nil {
		sm, err := t.sampler.finish()
		if err != nil {
			t.err = err
		} else {
			t.emit(sm)
		}
	}
	if t.tracer != nil && t.err == nil {
		t.err = t.tracer.Write(t.cfg.TraceW)
	}
	if t.prof != nil && t.cfg.ProfileW != nil && t.err == nil {
		t.err = t.prof.WriteJSONL(t.cfg.ProfileW)
	}
	return t.err
}
