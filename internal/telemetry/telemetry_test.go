package telemetry_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"silcfm/internal/config"
	"silcfm/internal/harness"
	"silcfm/internal/telemetry"
)

// runTiny executes a small SILC-FM simulation with telemetry into buffers.
func runTiny(t *testing.T, shadow bool, cfg *telemetry.Config) *harness.Result {
	t.Helper()
	m := config.Small()
	m.Scheme = config.SchemeSILCFM
	r, err := harness.Run(harness.Spec{
		Machine:      m,
		Workload:     "milc",
		InstrPerCore: 100_000,
		FootScaleNum: 1,
		FootScaleDen: 16,
		ShadowCheck:  shadow,
		Telemetry:    cfg,
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if r.ShadowErr != nil {
		t.Fatalf("shadow: %v", r.ShadowErr)
	}
	return r
}

func TestOutputsAreByteDeterministic(t *testing.T) {
	run := func() (metrics, trace []byte) {
		var mb, tb bytes.Buffer
		runTiny(t, true, &telemetry.Config{
			MetricsW:    &mb,
			EpochCycles: 20_000,
			TraceW:      &tb,
		})
		return mb.Bytes(), tb.Bytes()
	}
	m1, t1 := run()
	m2, t2 := run()
	if len(m1) == 0 || len(t1) == 0 {
		t.Fatal("empty telemetry output")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics JSONL differs between identical runs")
	}
	if !bytes.Equal(t1, t2) {
		t.Error("trace JSON differs between identical runs")
	}
}

func TestEpochDeltasSumToRunTotals(t *testing.T) {
	var mb bytes.Buffer
	r := runTiny(t, false, &telemetry.Config{MetricsW: &mb, EpochCycles: 20_000})

	var n int
	var sums telemetry.Sample
	dec := json.NewDecoder(&mb)
	for dec.More() {
		var s telemetry.Sample
		if err := dec.Decode(&s); err != nil {
			t.Fatalf("sample %d: %v", n, err)
		}
		n++
		sums.LLCMisses += s.LLCMisses
		sums.ServicedNM += s.ServicedNM
		sums.ServicedFM += s.ServicedFM
		sums.SwapsIn += s.SwapsIn
		sums.SwapsOut += s.SwapsOut
		sums.Locks += s.Locks
		sums.Unlocks += s.Unlocks
		sums.Migrations += s.Migrations
		sums.Bypassed += s.Bypassed
		sums.PredictorHits += s.PredictorHits
		sums.PredictorMisses += s.PredictorMisses
		sums.DemandBytesNM += s.DemandBytesNM
		sums.DemandBytesFM += s.DemandBytesFM
	}
	if n < 2 {
		t.Fatalf("want multiple epoch samples, got %d", n)
	}
	mem := r.Mem
	check := func(name string, got, want uint64) {
		if got != want {
			t.Errorf("%s: epoch deltas sum to %d, run total %d", name, got, want)
		}
	}
	check("llc_misses", sums.LLCMisses, mem.LLCMisses)
	check("serviced_nm", sums.ServicedNM, mem.ServicedNM)
	check("serviced_fm", sums.ServicedFM, mem.ServicedFM)
	check("swaps_in", sums.SwapsIn, mem.SwapsIn)
	check("swaps_out", sums.SwapsOut, mem.SwapsOut)
	check("locks", sums.Locks, mem.Locks)
	check("unlocks", sums.Unlocks, mem.Unlocks)
	check("migrations", sums.Migrations, mem.Migrations)
	check("bypassed", sums.Bypassed, mem.BypassedAccesses)
	check("predictor_hits", sums.PredictorHits, mem.PredictorHits)
	check("predictor_misses", sums.PredictorMisses, mem.PredictorMisses)
	check("demand_bytes_nm", sums.DemandBytesNM, mem.Bytes[0][0])
	check("demand_bytes_fm", sums.DemandBytesFM, mem.Bytes[1][0])
}

func TestTelemetryDoesNotPerturbSimulation(t *testing.T) {
	var mb, tb bytes.Buffer
	with := runTiny(t, false, &telemetry.Config{
		MetricsW: &mb, EpochCycles: 20_000, TraceW: &tb,
	})
	without := runTiny(t, false, nil)
	if with.Cycles != without.Cycles {
		t.Errorf("telemetry changed Cycles: %d vs %d", with.Cycles, without.Cycles)
	}
	if with.Mem != without.Mem {
		t.Errorf("telemetry changed memory counters:\nwith    %+v\nwithout %+v", with.Mem, without.Mem)
	}
}

func TestTraceRingBoundAndValidity(t *testing.T) {
	var tb bytes.Buffer
	const limit = 64
	runTiny(t, false, &telemetry.Config{TraceW: &tb, TraceLimit: limit})

	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
		} `json:"traceEvents"`
		OtherData struct {
			Events  uint64 `json:"events"`
			Dropped uint64 `json:"dropped"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(tb.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var real int
	lastTs := uint64(0)
	for _, e := range doc.TraceEvents {
		if e.Ph != "i" {
			// Metadata ("M") and injected exemplar spans ("X", laid in
			// after the run at their own start cycles) are outside the
			// ring's bound and arrival order.
			continue
		}
		real++
		if e.Ts < lastTs {
			t.Fatalf("trace timestamps not monotonic: %d after %d", e.Ts, lastTs)
		}
		lastTs = e.Ts
	}
	if real > limit {
		t.Errorf("ring bound violated: %d events kept, limit %d", real, limit)
	}
	if doc.OtherData.Dropped == 0 {
		t.Errorf("expected drops with limit %d (events=%d)", limit, doc.OtherData.Events)
	}
	if doc.OtherData.Events != doc.OtherData.Dropped+uint64(real) {
		t.Errorf("event accounting: total %d != dropped %d + kept %d",
			doc.OtherData.Events, doc.OtherData.Dropped, real)
	}
}

func TestCSVModeMatchesSampleCount(t *testing.T) {
	var jb, cb bytes.Buffer
	runTiny(t, false, &telemetry.Config{MetricsW: &jb, EpochCycles: 20_000})
	runTiny(t, false, &telemetry.Config{MetricsW: &cb, MetricsCSV: true, EpochCycles: 20_000})

	jn := strings.Count(jb.String(), "\n")
	lines := strings.Split(strings.TrimRight(cb.String(), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV output too short: %q", cb.String())
	}
	header := lines[0]
	if !strings.HasPrefix(header, "epoch,cycle,span_cycles,") {
		t.Errorf("unexpected CSV header: %q", header)
	}
	if !strings.Contains(header, "g:locked_frames") {
		t.Errorf("CSV header missing gauge columns: %q", header)
	}
	if got := len(lines) - 1; got != jn {
		t.Errorf("CSV rows %d != JSONL samples %d", got, jn)
	}
	cols := strings.Count(header, ",")
	for i, l := range lines[1:] {
		if strings.Count(l, ",") != cols {
			t.Fatalf("CSV row %d has %d separators, header has %d", i, strings.Count(l, ","), cols)
		}
	}
}
