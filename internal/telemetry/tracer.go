package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"silcfm/internal/mem"
	"silcfm/internal/sim"
	"silcfm/internal/stats"
)

// event kinds, also the Perfetto track (tid) assignment.
const (
	evDemand = iota
	evCapture
	evDeliver
	evRelocate
	evSwap
	evLock
	evUnlock
	numEvKinds
)

var evNames = [numEvKinds]string{
	"demand", "capture", "deliver", "relocate", "swap", "lock", "unlock",
}

// event is one recorded movement event, kept compact: the ring can hold
// hundreds of thousands of these.
type event struct {
	kind  uint8
	write bool // demand: write access; lock: home lock
	cycle uint64
	pa    uint64       // demand only
	a, b  mem.Location // a = loc/src/frame, b = dst
}

// Tracer records the semantic movement-event stream (mem.Observer plus the
// SchemeObserver extension) into a bounded ring buffer and serializes it as
// Chrome trace-event JSON, viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Timestamps are simulated cycles presented as
// microseconds (Perfetto's native unit); one trace "thread" per event kind
// keeps the tracks separable.
type Tracer struct {
	eng     *sim.Engine
	ring    []event
	next    int    // ring write position
	n       int    // events currently held (<= len(ring))
	total   uint64 // events ever observed
	dropped uint64 // events evicted from the ring

	// Synthetic duration spans injected after the run (exemplar span
	// waterfalls), each on a named track appended after the per-kind
	// instant tracks. Bounded; overflow is counted.
	spanTracks  []string
	spans       []spanEvent
	spanDropped uint64
}

// MaxExtraSpans bounds the injected duration-span list.
const MaxExtraSpans = 8192

// spanEvent is one injected duration span ("X" complete event).
type spanEvent struct {
	track      int
	name       string
	start, dur uint64
	args       map[string]any
}

// NewTracer builds a tracer holding at most limit events (oldest dropped).
func NewTracer(eng *sim.Engine, limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultTraceLimit
	}
	return &Tracer{eng: eng, ring: make([]event, 0, limit)}
}

func (t *Tracer) record(e event) {
	e.cycle = t.eng.Now()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, e)
		t.n++
		return
	}
	t.ring[t.next] = e
	t.next = (t.next + 1) % len(t.ring)
	t.dropped++
}

// Demand implements mem.Observer.
func (t *Tracer) Demand(pa uint64, loc mem.Location, write bool) {
	t.record(event{kind: evDemand, write: write, pa: pa, a: loc})
}

// Capture implements mem.Observer.
func (t *Tracer) Capture(loc mem.Location) {
	t.record(event{kind: evCapture, a: loc})
}

// Deliver implements mem.Observer.
func (t *Tracer) Deliver(src, dst mem.Location) {
	t.record(event{kind: evDeliver, a: src, b: dst})
}

// Relocate implements mem.Observer.
func (t *Tracer) Relocate(src, dst mem.Location) {
	t.record(event{kind: evRelocate, a: src, b: dst})
}

// Swap implements mem.SchemeObserver.
func (t *Tracer) Swap(a, b mem.Location) {
	t.record(event{kind: evSwap, a: a, b: b})
}

// Lock implements mem.SchemeObserver. The pinned flat block index rides in
// the pa field.
func (t *Tracer) Lock(frame, block uint64, home bool) {
	t.record(event{kind: evLock, write: home, pa: block, a: mem.Location{DevAddr: frame}})
}

// Unlock implements mem.SchemeObserver.
func (t *Tracer) Unlock(frame, block uint64) {
	t.record(event{kind: evUnlock, pa: block, a: mem.Location{DevAddr: frame}})
}

// Events reports (recorded, dropped) counts.
func (t *Tracer) Events() (total, dropped uint64) { return t.total, t.dropped }

// AddSpan injects a synthetic duration span on the named track (created on
// first use, after the per-kind instant tracks). Used after the run to lay
// exemplar span waterfalls into the trace; args keys must be fixed per call
// site so output stays byte-deterministic. Spans past MaxExtraSpans are
// counted as dropped.
func (t *Tracer) AddSpan(track, name string, start, dur uint64, args map[string]any) {
	if len(t.spans) >= MaxExtraSpans {
		t.spanDropped++
		return
	}
	tid := -1
	for i, tr := range t.spanTracks {
		if tr == track {
			tid = i
			break
		}
	}
	if tid < 0 {
		tid = len(t.spanTracks)
		t.spanTracks = append(t.spanTracks, track)
	}
	t.spans = append(t.spans, spanEvent{track: tid, name: name, start: start, dur: dur, args: args})
}

func locStr(l mem.Location) string {
	lv := "NM"
	if l.Level == stats.FM {
		lv = "FM"
	}
	return fmt.Sprintf("%s:0x%x", lv, l.DevAddr)
}

// traceEvent is the Chrome trace-event JSON shape (instant and complete
// events).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// argsOf renders an event's payload. Map keys per kind are fixed, and
// encoding/json sorts map keys, so output stays byte-deterministic.
func argsOf(e *event) map[string]any {
	switch e.kind {
	case evDemand:
		op := "read"
		if e.write {
			op = "write"
		}
		return map[string]any{"pa": fmt.Sprintf("0x%x", e.pa), "loc": locStr(e.a), "op": op}
	case evCapture:
		return map[string]any{"loc": locStr(e.a)}
	case evDeliver, evRelocate:
		return map[string]any{"src": locStr(e.a), "dst": locStr(e.b)}
	case evSwap:
		return map[string]any{"a": locStr(e.a), "b": locStr(e.b)}
	case evLock:
		kind := "interleaved"
		if e.write {
			kind = "home"
		}
		return map[string]any{"frame": e.a.DevAddr, "block": e.pa, "kind": kind}
	default: // evUnlock
		return map[string]any{"frame": e.a.DevAddr, "block": e.pa}
	}
}

// Write serializes the ring (oldest first) as a Chrome trace JSON object.
func (t *Tracer) Write(w io.Writer) error {
	bw := &errWriter{w: w}
	io.WriteString(bw, `{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(ev *traceEvent) {
		if !first {
			io.WriteString(bw, ",\n")
		} else {
			io.WriteString(bw, "\n")
			first = false
		}
		b, err := json.Marshal(ev)
		if err != nil {
			bw.err = err
			return
		}
		bw.Write(b)
	}
	// Name the per-kind tracks.
	for k := 0; k < numEvKinds; k++ {
		emit(&traceEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: k,
			Args: map[string]any{"name": evNames[k]}})
	}
	// Name the injected span tracks, after the per-kind tids.
	for i, tr := range t.spanTracks {
		emit(&traceEvent{Name: "thread_name", Ph: "M", Pid: 0, Tid: numEvKinds + i,
			Args: map[string]any{"name": tr}})
	}
	// Ring in arrival order: [next, len) then [0, next) once wrapped.
	for i := 0; i < t.n; i++ {
		e := &t.ring[(t.next+i)%len(t.ring)]
		emit(&traceEvent{
			Name: evNames[e.kind], Ph: "i", Ts: e.cycle, Pid: 0, Tid: int(e.kind),
			S: "t", Args: argsOf(e),
		})
	}
	// Injected duration spans, in insertion order.
	for i := range t.spans {
		sp := &t.spans[i]
		emit(&traceEvent{
			Name: sp.name, Ph: "X", Ts: sp.start, Dur: sp.dur, Pid: 0,
			Tid: numEvKinds + sp.track, Args: sp.args,
		})
	}
	fmt.Fprintf(bw, "\n],\"otherData\":{\"events\":%d,\"dropped\":%d,\"spans\":%d,\"spans_dropped\":%d}}\n",
		t.total, t.dropped, len(t.spans), t.spanDropped)
	return bw.err
}

// errWriter sticks at the first write error.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}
