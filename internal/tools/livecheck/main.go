// Command livecheck validates a running live observability server
// (silcfm-sim/-experiments/-bench -listen): it fetches the dashboard,
// /api/runs, the first /events SSE frame, /metrics, /healthz, /progress
// and /debug/pprof/cmdline and checks each response is well-formed. Used
// by ci.sh's live-endpoint stage.
//
// Usage:
//
//	livecheck http://127.0.0.1:8080
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"silcfm/internal/flightrec"
	"silcfm/internal/telemetry/live"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: livecheck <base-url>")
		os.Exit(2)
	}
	base := strings.TrimRight(os.Args[1], "/")
	client := &http.Client{Timeout: 10 * time.Second}
	if err := check(client, base); err != nil {
		fmt.Fprintln(os.Stderr, "livecheck:", err)
		os.Exit(1)
	}
	fmt.Println("livecheck: all endpoints ok")
}

func check(client *http.Client, base string) error {
	// /: the embedded dashboard, served as HTML with its event wiring.
	body, err := fetch(client, base+"/", http.StatusOK)
	if err != nil {
		return err
	}
	for _, want := range []string{"<title>silcfm fleet</title>", "EventSource", "/api/runs", "bank heat", "function heatmap"} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("/: dashboard missing %q", want)
		}
	}
	// Non-root unknown paths 404 instead of falling through to the dashboard.
	if _, status, err := fetchAny(client, base+"/no-such-page"); err != nil {
		return err
	} else if status != http.StatusNotFound {
		return fmt.Errorf("/no-such-page: status %d, want 404", status)
	}

	// /api/runs: fleet aggregates plus per-run statuses.
	body, err = fetch(client, base+"/api/runs", http.StatusOK)
	if err != nil {
		return err
	}
	var api struct {
		Fleet live.Fleet       `json:"fleet"`
		Runs  []live.RunStatus `json:"runs"`
	}
	if err := json.Unmarshal(body, &api); err != nil {
		return fmt.Errorf("/api/runs: %w", err)
	}
	if len(api.Runs) == 0 || api.Fleet.Runs != len(api.Runs) {
		return fmt.Errorf("/api/runs: fleet.runs=%d but %d runs listed", api.Fleet.Runs, len(api.Runs))
	}
	// Per-bank DRAM introspection: every run that has published an epoch
	// carries a well-formed [nm, fm] snapshot, and at least one run does.
	withDram := 0
	for _, rs := range api.Runs {
		if len(rs.Dram) == 0 {
			continue
		}
		withDram++
		if len(rs.Dram) != 2 {
			return fmt.Errorf("/api/runs: run %q has %d dram devices, want 2", rs.Run, len(rs.Dram))
		}
		for _, d := range rs.Dram {
			if d.Device != "nm" && d.Device != "fm" {
				return fmt.Errorf("/api/runs: run %q has dram device %q", rs.Run, d.Device)
			}
			want := d.Channels * d.BanksPerChannel
			if want <= 0 || len(d.BankAccesses) != want || len(d.BankConflicts) != want {
				return fmt.Errorf("/api/runs: run %q device %s: %dch x %dbk but %d/%d bank cells",
					rs.Run, d.Device, d.Channels, d.BanksPerChannel, len(d.BankAccesses), len(d.BankConflicts))
			}
		}
	}
	if withDram == 0 {
		return fmt.Errorf("/api/runs: no run carries a dram introspection snapshot")
	}

	// /events: the stream opens with an init snapshot consistent with
	// /api/runs (later frames only flow while runs publish, so only the
	// first frame is read here).
	if err := checkEvents(client, base, len(api.Runs)); err != nil {
		return err
	}

	// /metrics: parseable Prometheus exposition carrying the expected
	// metric families.
	body, err = fetch(client, base+"/metrics", http.StatusOK)
	if err != nil {
		return err
	}
	if err := live.ValidateExposition(body); err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	for _, family := range []string{
		"silcfm_cycle", "silcfm_access_rate", "silcfm_llc_misses_total",
		"silcfm_queue_depth_peak", "silcfm_open_incidents",
		"silcfm_row_conflicts_nm_total", "silcfm_row_conflicts_fm_total",
		"silcfm_dram_row_hit_rate", "silcfm_dram_bus_util",
		"silcfm_dram_bank_imbalance", "silcfm_dram_row_conflicts",
		"silcfm_dram_bank_accesses",
		"silcfm_fleet_runs", "silcfm_fleet_runs_done", "silcfm_fleet_mcyc_per_sec",
		"silcfm_fleet_eta_seconds", "silcfm_fleet_open_incidents",
		"silcfm_fleet_sse_subscribers", "silcfm_fleet_sse_dropped_total",
	} {
		if !strings.Contains(string(body), "# TYPE "+family+" ") {
			return fmt.Errorf("/metrics: missing family %s", family)
		}
	}
	metricsBody := string(body)

	// /api/exemplars: the hub's tail-exemplar store. Every exemplar's span
	// decomposition must sum exactly to its end-to-end latency (the
	// zero-residual invariant), and the worst one per path must annotate
	// that path's p99 line on /metrics in OpenMetrics exemplar syntax.
	body, err = fetch(client, base+"/api/exemplars", http.StatusOK)
	if err != nil {
		return err
	}
	var exs struct {
		Runs []live.ExemplarSet `json:"runs"`
	}
	if err := json.Unmarshal(body, &exs); err != nil {
		return fmt.Errorf("/api/exemplars: %w", err)
	}
	captured := 0
	for _, set := range exs.Runs {
		if set.Run == "" {
			return fmt.Errorf("/api/exemplars: set with empty run id")
		}
		for i := range set.Exemplars {
			e := &set.Exemplars[i]
			captured++
			if e.Path == "" {
				return fmt.Errorf("/api/exemplars: run %q exemplar %d has no path", set.Run, i)
			}
			var sum uint64
			for _, sp := range e.Spans {
				if sp.Span == "" {
					return fmt.Errorf("/api/exemplars: run %q exemplar %d has an unnamed span", set.Run, i)
				}
				sum += sp.Cycles
			}
			if sum != e.Latency {
				return fmt.Errorf("/api/exemplars: run %q exemplar %d: span sum %d != latency %d",
					set.Run, i, sum, e.Latency)
			}
			if e.CompleteCycle-e.StartCycle != e.Latency {
				return fmt.Errorf("/api/exemplars: run %q exemplar %d: complete-start %d != latency %d",
					set.Run, i, e.CompleteCycle-e.StartCycle, e.Latency)
			}
		}
	}
	if captured == 0 {
		return fmt.Errorf("/api/exemplars: no tail exemplars captured")
	}
	if !strings.Contains(metricsBody, `quantile="0.99"`) {
		return fmt.Errorf("/metrics: no demand-latency quantile lines")
	}
	if !strings.Contains(metricsBody, ` # {pa="0x`) {
		return fmt.Errorf("/metrics: no OpenMetrics exemplar annotation on the latency quantile family")
	}

	// /healthz: well-formed JSON with at least one run. 200 and 503 are
	// both valid server states (an open incident is not a livecheck
	// failure); anything else is.
	body, status, err := fetchAny(client, base+"/healthz")
	if err != nil {
		return err
	}
	if status != http.StatusOK && status != http.StatusServiceUnavailable {
		return fmt.Errorf("/healthz: status %d", status)
	}
	var hz live.Healthz
	if err := json.Unmarshal(body, &hz); err != nil {
		return fmt.Errorf("/healthz: %w", err)
	}
	if hz.Status != "ok" && hz.Status != "incident" {
		return fmt.Errorf("/healthz: bad status %q", hz.Status)
	}
	if (hz.Status == "incident") != (status == http.StatusServiceUnavailable) {
		return fmt.Errorf("/healthz: body status %q disagrees with HTTP %d", hz.Status, status)
	}
	if len(hz.Runs) == 0 {
		return fmt.Errorf("/healthz: no runs registered")
	}
	if len(hz.Rules) == 0 {
		return fmt.Errorf("/healthz: no rule metadata")
	}
	for _, rule := range hz.Rules {
		if rule.Kind == "" || rule.Description == "" || rule.Threshold == "" || len(rule.FirstLook) == 0 {
			return fmt.Errorf("/healthz: rule %q missing metadata", rule.Kind)
		}
	}

	// /api/incidents: well-formed bundle listing; every listed bundle's
	// drill-down path must serve a decodable postmortem bundle consistent
	// with its summary row. An empty list is valid (healthy fleet).
	body, err = fetch(client, base+"/api/incidents", http.StatusOK)
	if err != nil {
		return err
	}
	var incs struct {
		Incidents []live.IncidentRef `json:"incidents"`
	}
	if err := json.Unmarshal(body, &incs); err != nil {
		return fmt.Errorf("/api/incidents: %w", err)
	}
	for _, ref := range incs.Incidents {
		if ref.Trigger == "" || ref.Path == "" {
			return fmt.Errorf("/api/incidents: bundle %d missing trigger or path", ref.ID)
		}
		bb, err := fetch(client, base+ref.Path, http.StatusOK)
		if err != nil {
			return err
		}
		b, err := flightrec.Decode(bytes.NewReader(bb))
		if err != nil {
			return fmt.Errorf("%s: %w", ref.Path, err)
		}
		if b.Trigger != ref.Trigger || len(b.Epochs) != ref.Epochs {
			return fmt.Errorf("%s: bundle disagrees with its /api/incidents row", ref.Path)
		}
		if b.Fingerprint == "" {
			return fmt.Errorf("%s: bundle has no config fingerprint", ref.Path)
		}
	}
	// Unknown bundle ids 404.
	if _, status, err := fetchAny(client, base+"/api/incidents/999999"); err != nil {
		return err
	} else if status != http.StatusNotFound {
		return fmt.Errorf("/api/incidents/999999: status %d, want 404", status)
	}

	// /progress: well-formed JSON with the same runs.
	body, err = fetch(client, base+"/progress", http.StatusOK)
	if err != nil {
		return err
	}
	var prs []live.ProgressRun
	if err := json.Unmarshal(body, &prs); err != nil {
		return fmt.Errorf("/progress: %w", err)
	}
	if len(prs) != len(hz.Runs) {
		return fmt.Errorf("/progress: %d runs, /healthz has %d", len(prs), len(hz.Runs))
	}
	for _, pr := range prs {
		if pr.State != "running" && pr.State != "done" {
			return fmt.Errorf("/progress: run %q has bad state %q", pr.Run, pr.State)
		}
	}

	// pprof rides along.
	if _, err := fetch(client, base+"/debug/pprof/cmdline", http.StatusOK); err != nil {
		return err
	}
	return nil
}

// checkEvents opens the SSE stream and validates the init frame: correct
// content type, "event: init" first, and a data payload whose run list
// matches what /api/runs just reported.
func checkEvents(client *http.Client, base string, wantRuns int) error {
	resp, err := client.Get(base + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		return fmt.Errorf("/events: content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event != "":
			// Frame complete.
			if event != "init" {
				return fmt.Errorf("/events: first frame is %q, want init", event)
			}
			var init struct {
				Runs  []live.RunStatus `json:"runs"`
				Fleet live.Fleet       `json:"fleet"`
			}
			if err := json.Unmarshal([]byte(data), &init); err != nil {
				return fmt.Errorf("/events: init frame: %w", err)
			}
			if len(init.Runs) != wantRuns {
				return fmt.Errorf("/events: init has %d runs, /api/runs has %d", len(init.Runs), wantRuns)
			}
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("/events: %w", err)
	}
	return fmt.Errorf("/events: stream ended before the init frame")
}

func fetch(client *http.Client, url string, want int) ([]byte, error) {
	body, status, err := fetchAny(client, url)
	if err != nil {
		return nil, err
	}
	if status != want {
		return nil, fmt.Errorf("%s: status %d, want %d", url, status, want)
	}
	return body, nil
}

func fetchAny(client *http.Client, url string) ([]byte, int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", url, err)
	}
	return body, resp.StatusCode, nil
}
