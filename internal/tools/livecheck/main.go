// Command livecheck validates a running live observability server
// (silcfm-sim/-experiments/-bench -listen): it scrapes /metrics, /healthz,
// /progress and /debug/pprof/cmdline and checks each response is
// well-formed. Used by ci.sh's live-endpoint stage.
//
// Usage:
//
//	livecheck http://127.0.0.1:8080
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"silcfm/internal/telemetry/live"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: livecheck <base-url>")
		os.Exit(2)
	}
	base := strings.TrimRight(os.Args[1], "/")
	client := &http.Client{Timeout: 10 * time.Second}
	if err := check(client, base); err != nil {
		fmt.Fprintln(os.Stderr, "livecheck:", err)
		os.Exit(1)
	}
	fmt.Println("livecheck: all endpoints ok")
}

func check(client *http.Client, base string) error {
	// /metrics: parseable Prometheus exposition carrying the expected
	// metric families.
	body, err := fetch(client, base+"/metrics", http.StatusOK)
	if err != nil {
		return err
	}
	if err := live.ValidateExposition(body); err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	for _, family := range []string{
		"silcfm_cycle", "silcfm_access_rate", "silcfm_llc_misses_total",
		"silcfm_queue_depth_peak", "silcfm_open_incidents",
	} {
		if !strings.Contains(string(body), "# TYPE "+family+" ") {
			return fmt.Errorf("/metrics: missing family %s", family)
		}
	}

	// /healthz: well-formed JSON with at least one run. 200 and 503 are
	// both valid server states (an open incident is not a livecheck
	// failure); anything else is.
	body, status, err := fetchAny(client, base+"/healthz")
	if err != nil {
		return err
	}
	if status != http.StatusOK && status != http.StatusServiceUnavailable {
		return fmt.Errorf("/healthz: status %d", status)
	}
	var hz live.Healthz
	if err := json.Unmarshal(body, &hz); err != nil {
		return fmt.Errorf("/healthz: %w", err)
	}
	if hz.Status != "ok" && hz.Status != "incident" {
		return fmt.Errorf("/healthz: bad status %q", hz.Status)
	}
	if (hz.Status == "incident") != (status == http.StatusServiceUnavailable) {
		return fmt.Errorf("/healthz: body status %q disagrees with HTTP %d", hz.Status, status)
	}
	if len(hz.Runs) == 0 {
		return fmt.Errorf("/healthz: no runs registered")
	}

	// /progress: well-formed JSON with the same runs.
	body, err = fetch(client, base+"/progress", http.StatusOK)
	if err != nil {
		return err
	}
	var prs []live.ProgressRun
	if err := json.Unmarshal(body, &prs); err != nil {
		return fmt.Errorf("/progress: %w", err)
	}
	if len(prs) != len(hz.Runs) {
		return fmt.Errorf("/progress: %d runs, /healthz has %d", len(prs), len(hz.Runs))
	}
	for _, pr := range prs {
		if pr.State != "running" && pr.State != "done" {
			return fmt.Errorf("/progress: run %q has bad state %q", pr.Run, pr.State)
		}
	}

	// pprof rides along.
	if _, err := fetch(client, base+"/debug/pprof/cmdline", http.StatusOK); err != nil {
		return err
	}
	return nil
}

func fetch(client *http.Client, url string, want int) ([]byte, error) {
	body, status, err := fetchAny(client, url)
	if err != nil {
		return nil, err
	}
	if status != want {
		return nil, fmt.Errorf("%s: status %d, want %d", url, status, want)
	}
	return body, nil
}

func fetchAny(client *http.Client, url string) ([]byte, int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("%s: %w", url, err)
	}
	return body, resp.StatusCode, nil
}
