package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"silcfm/internal/config"
	"silcfm/internal/harness"
	"silcfm/internal/workload"
)

func main() {
	m := config.Default()
	wls := workload.Names
	if len(os.Args) > 1 {
		wls = os.Args[1:]
	}
	schemes := []config.SchemeName{"base", "rand", "hma", "cam", "camp", "pom", "silc"}
	type key struct {
		wl string
		s  config.SchemeName
	}
	results := map[key]*harness.Result{}
	var mu sync.Mutex
	sem := make(chan struct{}, 2)
	var wg sync.WaitGroup
	t0 := time.Now()
	for _, wl := range wls {
		for _, s := range schemes {
			wl, s := wl, s
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				mm := m
				mm.Scheme = s
				r, err := harness.Run(harness.Spec{Machine: mm, Workload: wl, InstrPerCore: 1_000_000, ScaleInstrByClass: true})
				if err != nil {
					fmt.Println(wl, s, "ERR", err)
					return
				}
				mu.Lock()
				results[key{wl, s}] = r
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	fmt.Printf("total wall: %v\n", time.Since(t0).Round(time.Second))
	fmt.Printf("%-8s %6s |", "wl", "mpki")
	for _, s := range schemes[1:] {
		fmt.Printf(" %5s", s)
	}
	fmt.Println(" | silc-ar")
	for _, wl := range wls {
		b := results[key{wl, "base"}]
		if b == nil {
			continue
		}
		fmt.Printf("%-8s %6.1f |", wl, b.AvgMPKI())
		for _, s := range schemes[1:] {
			r := results[key{wl, s}]
			if r == nil {
				fmt.Printf("  err ")
				continue
			}
			fmt.Printf(" %5.2f", float64(b.Cycles)/float64(r.Cycles))
		}
		sr := results[key{wl, "silc"}]
		fmt.Printf(" | %.2f\n", sr.Mem.AccessRate())
	}
}
