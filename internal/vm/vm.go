// Package vm implements the virtual-to-physical address translation the
// evaluation needs (§IV-A): 2 KB pages, per-core private address spaces
// (multiprogrammed rate mode must not share physical pages across
// instances), and first-touch frame allocation under pluggable placement
// policies:
//
//   - PolicyInterleaved: frames handed out round-robin across the whole
//     flat NM+FM space (hardware schemes' OS-neutral layout).
//   - PolicyRandom:      frames chosen uniformly at random (the paper's
//     "Random" static-placement scheme, and the stacked baseline of Fig. 6).
//   - PolicyFMFirst:     frames allocated from FM only (the no-NM baseline,
//     and HMA's initial layout before epoch migration).
package vm

import (
	"fmt"
	"math/rand"

	"silcfm/internal/memunits"
)

// Policy selects the first-touch frame allocation order.
type Policy int

const (
	PolicyInterleaved Policy = iota
	PolicyRandom
	PolicyFMFirst
)

func (p Policy) String() string {
	switch p {
	case PolicyInterleaved:
		return "interleaved"
	case PolicyRandom:
		return "random"
	default:
		return "fm-first"
	}
}

// AddressSpace allocates physical frames for virtual pages on first touch.
// One AddressSpace serves all cores; virtual addresses are made private per
// core by the caller embedding the core ID in high VA bits (see CoreVA).
type AddressSpace struct {
	nmFrames     uint64            // frames in [0, nmFrames) live in NM
	total        uint64            // total frames (NM + FM)
	pageTable    map[uint64]uint64 // vpage -> pframe
	freeOrder    []uint64          // remaining frames in hand-out order
	next         int
	policy       Policy
	pagesTouched uint64

	// tlb is a direct-mapped software cache over pageTable. A translation
	// is immutable once allocated (first touch, never remapped), so hits
	// need no invalidation and the cache cannot change results — it only
	// keeps the per-reference hot path off the map.
	tlb []tlbEntry
}

// tlbSize is the direct-mapped translation-cache size (power of two).
// Sized to cover the largest bench footprint (~15k pages for mcf at the
// suite's 1/8 scale) without conflict misses; at 24 B/entry the table is
// well under 1 MiB.
const tlbSize = 32768

type tlbEntry struct {
	vpage uint64
	pf    uint64
	ok    bool
}

// NewAddressSpace builds an allocator over nmBytes of NM followed by
// fmBytes of FM (NM occupies the lower physical addresses, §III).
func NewAddressSpace(nmBytes, fmBytes uint64, policy Policy, seed int64) *AddressSpace {
	nmFrames := memunits.BlocksIn(nmBytes)
	total := nmFrames + memunits.BlocksIn(fmBytes)
	a := &AddressSpace{
		nmFrames:  nmFrames,
		total:     total,
		pageTable: make(map[uint64]uint64),
		policy:    policy,
		tlb:       make([]tlbEntry, tlbSize),
	}
	switch policy {
	case PolicyFMFirst:
		a.freeOrder = make([]uint64, 0, total-nmFrames)
		for f := nmFrames; f < total; f++ {
			a.freeOrder = append(a.freeOrder, f)
		}
	case PolicyRandom:
		a.freeOrder = make([]uint64, total)
		for f := range a.freeOrder {
			a.freeOrder[f] = uint64(f)
		}
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(a.freeOrder), func(i, j int) {
			a.freeOrder[i], a.freeOrder[j] = a.freeOrder[j], a.freeOrder[i]
		})
	default: // interleaved: spread consecutive allocations across the space
		a.freeOrder = make([]uint64, 0, total)
		// A stride walk with a stride coprime to the frame count visits
		// every frame exactly once while giving early allocations a uniform
		// NM/FM mix.
		stride := total*2/5 | 1
		for gcd(stride, total) != 1 {
			stride += 2
		}
		f := uint64(0)
		for seen := uint64(0); seen < total; seen++ {
			a.freeOrder = append(a.freeOrder, f)
			f = (f + stride) % total
		}
	}
	return a
}

// CoreVA embeds a core ID into a virtual address so multiprogrammed
// instances never share pages.
func CoreVA(core int, va uint64) uint64 {
	return uint64(core)<<44 | va&(1<<44-1)
}

// Translate maps a virtual address to a flat physical address, allocating a
// frame on first touch. It returns an error when physical memory is
// exhausted.
func (a *AddressSpace) Translate(va uint64) (uint64, error) {
	vpage := va >> 11
	e := &a.tlb[vpage&(tlbSize-1)]
	if e.ok && e.vpage == vpage {
		return e.pf<<11 | va&(memunits.BlockSize-1), nil
	}
	pf, ok := a.pageTable[vpage]
	if !ok {
		if a.next >= len(a.freeOrder) {
			return 0, fmt.Errorf("vm: out of physical memory (%d frames)", a.total)
		}
		pf = a.freeOrder[a.next]
		a.next++
		a.pageTable[vpage] = pf
		a.pagesTouched++
	}
	*e = tlbEntry{vpage: vpage, pf: pf, ok: true}
	return pf<<11 | va&(memunits.BlockSize-1), nil
}

// MustTranslate is Translate for callers that have pre-sized memory.
func (a *AddressSpace) MustTranslate(va uint64) uint64 {
	pa, err := a.Translate(va)
	if err != nil {
		panic(err)
	}
	return pa
}

// PagesTouched returns the number of allocated pages (Table III footprint).
func (a *AddressSpace) PagesTouched() uint64 { return a.pagesTouched }

// InNM reports whether physical address pa falls in the NM range.
func (a *AddressSpace) InNM(pa uint64) bool { return pa>>11 < a.nmFrames }

// NMFrames returns the number of NM frames.
func (a *AddressSpace) NMFrames() uint64 { return a.nmFrames }

// TotalFrames returns the total frame count.
func (a *AddressSpace) TotalFrames() uint64 { return a.total }

// FramesFree returns how many frames remain unallocated.
func (a *AddressSpace) FramesFree() uint64 { return uint64(len(a.freeOrder) - a.next) }

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
