package vm

import (
	"testing"
	"testing/quick"

	"silcfm/internal/memunits"
)

const (
	nmBytes = 1 << 20 // 512 frames
	fmBytes = 4 << 20 // 2048 frames
)

func TestTranslateStable(t *testing.T) {
	a := NewAddressSpace(nmBytes, fmBytes, PolicyInterleaved, 1)
	va := uint64(0x12345)
	p1 := a.MustTranslate(va)
	p2 := a.MustTranslate(va)
	if p1 != p2 {
		t.Fatalf("translation not stable: %x vs %x", p1, p2)
	}
	if p1&(memunits.BlockSize-1) != va&(memunits.BlockSize-1) {
		t.Fatal("page offset not preserved")
	}
}

func TestDistinctPagesDistinctFrames(t *testing.T) {
	for _, pol := range []Policy{PolicyInterleaved, PolicyRandom, PolicyFMFirst} {
		a := NewAddressSpace(nmBytes, fmBytes, pol, 1)
		frames := map[uint64]bool{}
		n := 500
		for i := 0; i < n; i++ {
			pa := a.MustTranslate(uint64(i) * memunits.BlockSize)
			f := pa >> 11
			if frames[f] {
				t.Fatalf("%v: frame %d handed out twice", pol, f)
			}
			frames[f] = true
		}
		if a.PagesTouched() != uint64(n) {
			t.Fatalf("%v: PagesTouched = %d, want %d", pol, a.PagesTouched(), n)
		}
	}
}

func TestFMFirstNeverUsesNM(t *testing.T) {
	a := NewAddressSpace(nmBytes, fmBytes, PolicyFMFirst, 1)
	for i := 0; i < 2048; i++ {
		pa := a.MustTranslate(uint64(i) * memunits.BlockSize)
		if a.InNM(pa) {
			t.Fatalf("FM-first allocated NM frame for page %d (pa %x)", i, pa)
		}
	}
	// FM is now full.
	if _, err := a.Translate(uint64(5000) * memunits.BlockSize); err == nil {
		t.Fatal("expected out-of-memory")
	}
}

func TestInterleavedMixesEarly(t *testing.T) {
	a := NewAddressSpace(nmBytes, fmBytes, PolicyInterleaved, 1)
	nm := 0
	n := 100
	for i := 0; i < n; i++ {
		if a.InNM(a.MustTranslate(uint64(i) * memunits.BlockSize)) {
			nm++
		}
	}
	// NM is 1/5 of frames; early allocations should include some NM frames
	// (roughly 20, certainly more than 5 and fewer than 60).
	if nm < 5 || nm > 60 {
		t.Fatalf("interleaved NM share in first %d allocations = %d", n, nm)
	}
}

func TestRandomPolicyDeterministicPerSeed(t *testing.T) {
	get := func(seed int64) []uint64 {
		a := NewAddressSpace(nmBytes, fmBytes, PolicyRandom, seed)
		out := make([]uint64, 50)
		for i := range out {
			out[i] = a.MustTranslate(uint64(i) * memunits.BlockSize)
		}
		return out
	}
	a1, a2, b := get(7), get(7), get(8)
	same, diff := true, false
	for i := range a1 {
		if a1[i] != a2[i] {
			same = false
		}
		if a1[i] != b[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed produced different layouts")
	}
	if !diff {
		t.Fatal("different seeds produced identical layouts (suspicious)")
	}
}

// Property: interleaved hand-out order is a permutation of all frames.
func TestInterleavedPermutation(t *testing.T) {
	f := func(nmKB, fmKB uint8) bool {
		nmB := (uint64(nmKB%8) + 1) * 16 * memunits.BlockSize
		fmB := (uint64(fmKB%8) + 1) * 64 * memunits.BlockSize
		a := NewAddressSpace(nmB, fmB, PolicyInterleaved, 1)
		seen := make([]bool, a.TotalFrames())
		for _, f := range a.freeOrder {
			if f >= a.TotalFrames() || seen[f] {
				return false
			}
			seen[f] = true
		}
		return uint64(len(a.freeOrder)) == a.TotalFrames()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreVAIsolation(t *testing.T) {
	// Identical per-core VAs must translate to distinct physical pages when
	// wrapped with CoreVA.
	a := NewAddressSpace(nmBytes, fmBytes, PolicyInterleaved, 1)
	va := uint64(0x1000)
	p0 := a.MustTranslate(CoreVA(0, va))
	p1 := a.MustTranslate(CoreVA(1, va))
	if p0>>11 == p1>>11 {
		t.Fatal("cores share a physical page")
	}
	if CoreVA(3, va) == CoreVA(2, va) {
		t.Fatal("CoreVA collision")
	}
}

func TestFramesFree(t *testing.T) {
	a := NewAddressSpace(nmBytes, fmBytes, PolicyInterleaved, 1)
	total := a.TotalFrames()
	if a.FramesFree() != total {
		t.Fatalf("fresh FramesFree = %d, want %d", a.FramesFree(), total)
	}
	a.MustTranslate(0)
	if a.FramesFree() != total-1 {
		t.Fatal("FramesFree did not decrement")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyInterleaved.String() != "interleaved" || PolicyRandom.String() != "random" || PolicyFMFirst.String() != "fm-first" {
		t.Fatal("policy names")
	}
}
