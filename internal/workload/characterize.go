package workload

import "silcfm/internal/memunits"

// Profile summarizes a reference stream's memory behaviour: the knobs the
// paper's evaluation discriminates on, measured rather than configured.
type Profile struct {
	Refs         uint64
	Instructions uint64
	WriteFrac    float64

	Pages     int // distinct 2 KB pages touched
	Subblocks int // distinct 64 B subblocks touched

	// SubblocksPerPage is the cumulative spatial locality: mean distinct
	// subblocks touched per touched page (1..32).
	SubblocksPerPage float64

	// Top64Share is the fraction of references landing on the 64 most
	// popular pages — the hot-set skew that drives locking.
	Top64Share float64

	// ReuseDistance is the mean number of references between successive
	// touches of the same subblock (capped per sample window); lower means
	// more SRAM-cacheable temporal locality.
	MeanGap float64
}

// FootprintBytes returns the touched footprint.
func (p Profile) FootprintBytes() uint64 { return uint64(p.Pages) * memunits.BlockSize }

// Characterize drains n references from g and measures its Profile.
// The generator is consumed; pass a fresh one (or a Replay clone).
func Characterize(g Generator, n int) Profile {
	var (
		p        Profile
		r        Ref
		pages    = map[uint64]int{}
		subs     = map[uint64]bool{}
		writes   uint64
		instrSum uint64
	)
	for i := 0; i < n; i++ {
		g.Next(&r)
		p.Refs++
		instrSum += uint64(r.Gap)
		if r.Write {
			writes++
		}
		pages[memunits.BlockOf(r.VAddr)]++
		subs[memunits.SubblockOf(r.VAddr)] = true
	}
	p.Instructions = instrSum
	if p.Refs > 0 {
		p.WriteFrac = float64(writes) / float64(p.Refs)
		p.MeanGap = float64(instrSum) / float64(p.Refs)
	}
	p.Pages = len(pages)
	p.Subblocks = len(subs)
	if p.Pages > 0 {
		p.SubblocksPerPage = float64(p.Subblocks) / float64(p.Pages)
	}

	// Top-64 page share via partial selection.
	counts := make([]int, 0, len(pages))
	for _, c := range pages {
		counts = append(counts, c)
	}
	top := 0
	for k := 0; k < 64 && len(counts) > 0; k++ {
		best, bi := -1, -1
		for i, c := range counts {
			if c > best {
				best, bi = c, i
			}
		}
		top += best
		counts[bi] = counts[len(counts)-1]
		counts = counts[:len(counts)-1]
	}
	if p.Refs > 0 {
		p.Top64Share = float64(top) / float64(p.Refs)
	}
	return p
}
