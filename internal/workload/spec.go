package workload

// The 14 SPEC CPU2006 stand-ins of Table III. Footprints are per core and
// scaled to the reproduction's memory sizes (the paper's footprints are
// 1.5-27 GB against a multi-GB NM; ours keep the same pressure against a
// 128 MB NM / 512 MB FM machine). Each parameter set encodes the behaviour
// the paper attributes to that benchmark in §V.
//
// MPKI classes follow Table III: low < 11, medium 11-32, high > 32
// (measured per core at the LLC).

// Names lists the benchmarks in Table III order.
var Names = []string{
	"bwaves", "cactus", "dealII", "xalanc",
	"gcc", "gems", "leslie", "omnet", "zeusmp",
	"lbm", "lib", "mcf", "milc", "soplex",
}

var specs = map[string]Params{
	// ---- Low MPKI ----
	"bwaves": {
		// Streaming with strong spatial locality; hot set drifts between
		// phases so epoch-stale HMA decisions miss it (§V-B), and the
		// access rate stays below the 0.8 bypass trigger (§V-A).
		Name: "bwaves", Class: LowMPKI,
		FootprintPages: 5120, HotPages: 1024, HotProb: 0.78,
		SuperHotPages: 96, SuperHotProb: 0.12, ZipfS: 1.3,
		VisitSubblocksMin: 12, VisitSubblocksMax: 32,
		ReuseProb: 0.93, GapMean: 9, WriteFrac: 0.25,
		PhaseRefs: 400_000, PhaseShift: 384,
	},
	"cactus": {
		// Moderate spatial locality with a hot set wide enough to thrash a
		// direct-mapped NM: CAMEO suffers conflicts here (§V-B).
		Name: "cactus", Class: LowMPKI,
		FootprintPages: 6144, HotPages: 2560, HotProb: 0.88,
		SuperHotPages: 0, SuperHotProb: 0,
		VisitSubblocksMin: 4, VisitSubblocksMax: 12,
		ReuseProb: 0.93, GapMean: 9, WriteFrac: 0.30,
	},
	"dealII": {
		Name: "dealII", Class: LowMPKI,
		FootprintPages: 4096, HotPages: 1024, HotProb: 0.76,
		SuperHotPages: 128, SuperHotProb: 0.15, ZipfS: 1.4,
		VisitSubblocksMin: 6, VisitSubblocksMax: 16,
		ReuseProb: 0.94, GapMean: 10, WriteFrac: 0.20,
	},
	"xalanc": {
		// Heavily skewed page popularity: a handful of very hot pages that
		// address-bit indexing piles into few NM sets, so locking buys an
		// extra 14% (§V-A).
		Name: "xalanc", Class: LowMPKI,
		FootprintPages: 5120, HotPages: 1024, HotProb: 0.36,
		SuperHotPages: 640, SuperHotProb: 0.52, ZipfS: 1.2,
		VisitSubblocksMin: 3, VisitSubblocksMax: 10,
		ReuseProb: 0.93, GapMean: 9, WriteFrac: 0.15,
	},

	// ---- Medium MPKI ----
	"gcc": {
		// Many lukewarm pages, few that ever cross the hotness threshold:
		// associativity (+36%) matters far more than locking (+11%) (§V-A).
		Name: "gcc", Class: MediumMPKI,
		FootprintPages: 8192, HotPages: 2560, HotProb: 0.90,
		SuperHotPages: 16, SuperHotProb: 0.03, ZipfS: 1.2,
		VisitSubblocksMin: 3, VisitSubblocksMax: 10,
		ReuseProb: 0.86, GapMean: 7, WriteFrac: 0.25,
	},
	"gems": {
		// Many short-lived hot pages: epochs are far too slow, hardware
		// swapping reacts (§V-B: HMA degrades, CAMEO/SILC-FM improve).
		Name: "gems", Class: MediumMPKI,
		FootprintPages: 9216, HotPages: 1280, HotProb: 0.82,
		SuperHotPages: 192, SuperHotProb: 0.12, ZipfS: 1.3,
		VisitSubblocksMin: 8, VisitSubblocksMax: 24,
		ReuseProb: 0.86, GapMean: 7, WriteFrac: 0.30,
		PhaseRefs: 300_000, PhaseShift: 512,
	},
	"leslie": {
		Name: "leslie", Class: MediumMPKI,
		FootprintPages: 8192, HotPages: 1792, HotProb: 0.87,
		SuperHotPages: 128, SuperHotProb: 0.10, ZipfS: 1.3,
		VisitSubblocksMin: 10, VisitSubblocksMax: 28,
		ReuseProb: 0.85, GapMean: 7, WriteFrac: 0.30,
	},
	"omnet": {
		// Pointer-chasing: few subblocks per page visit, so whole-block
		// migration (PoM) wastes bandwidth.
		Name: "omnet", Class: MediumMPKI,
		FootprintPages: 10240, HotPages: 1792, HotProb: 0.84,
		SuperHotPages: 256, SuperHotProb: 0.12, ZipfS: 1.4,
		VisitSubblocksMin: 1, VisitSubblocksMax: 4,
		ReuseProb: 0.85, GapMean: 7, WriteFrac: 0.30,
	},
	"zeusmp": {
		Name: "zeusmp", Class: MediumMPKI,
		FootprintPages: 8192, HotPages: 1536, HotProb: 0.86,
		SuperHotPages: 160, SuperHotProb: 0.10, ZipfS: 1.3,
		VisitSubblocksMin: 6, VisitSubblocksMax: 18,
		ReuseProb: 0.87, GapMean: 7, WriteFrac: 0.25,
	},

	// ---- High MPKI ----
	"lbm": {
		// Streaming stencil: whole 2KB blocks consumed, write heavy, very
		// high bandwidth demand.
		Name: "lbm", Class: HighMPKI,
		FootprintPages: 14336, HotPages: 2048, HotProb: 0.86,
		SuperHotPages: 128, SuperHotProb: 0.08, ZipfS: 1.2,
		VisitSubblocksMin: 20, VisitSubblocksMax: 32,
		ReuseProb: 0.62, GapMean: 8, WriteFrac: 0.45,
	},
	"lib": {
		// libquantum: sequential sweeps over a large vector; HMA's fully
		// associative epoch placement does well, direct-mapped CAMEO
		// conflicts (§V-B).
		Name: "lib", Class: HighMPKI,
		FootprintPages: 12288, HotPages: 1792, HotProb: 0.92,
		SuperHotPages: 0, SuperHotProb: 0,
		VisitSubblocksMin: 16, VisitSubblocksMax: 32,
		ReuseProb: 0.64, GapMean: 8, WriteFrac: 0.20,
	},
	"mcf": {
		// Pointer chasing over a huge working set: minimal spatial
		// locality, the highest MPKI in the suite.
		Name: "mcf", Class: HighMPKI,
		FootprintPages: 15360, HotPages: 1536, HotProb: 0.72,
		SuperHotPages: 192, SuperHotProb: 0.16, ZipfS: 1.3,
		VisitSubblocksMin: 1, VisitSubblocksMax: 4,
		ReuseProb: 0.58, GapMean: 8, WriteFrac: 0.25,
	},
	"milc": {
		// Conflict-prone and so bandwidth hungry that its access rate
		// exceeds 0.8: the benchmark where bypassing pays off (§V-A) and
		// where stale epoch decisions hurt HMA (§V-B).
		Name: "milc", Class: HighMPKI,
		FootprintPages: 15360, HotPages: 1280, HotProb: 0.90,
		SuperHotPages: 256, SuperHotProb: 0.06, ZipfS: 1.2,
		VisitSubblocksMin: 8, VisitSubblocksMax: 20,
		ReuseProb: 0.62, GapMean: 8, WriteFrac: 0.35,
		PhaseRefs: 250_000, PhaseShift: 640,
	},
	"soplex": {
		Name: "soplex", Class: HighMPKI,
		FootprintPages: 12288, HotPages: 1792, HotProb: 0.84,
		SuperHotPages: 256, SuperHotProb: 0.12, ZipfS: 1.3,
		VisitSubblocksMin: 4, VisitSubblocksMax: 14,
		ReuseProb: 0.64, GapMean: 8, WriteFrac: 0.30,
	},
}

// Spec returns the parameter set for a Table III benchmark name.
func Spec(name string) (Params, bool) {
	p, ok := specs[name]
	return p, ok
}

// New builds the named benchmark's generator with the given seed. It
// returns false for unknown names.
func New(name string, seed int64) (*Synthetic, bool) {
	p, ok := specs[name]
	if !ok {
		return nil, false
	}
	return NewSynthetic(p, seed), true
}

// ByClass returns benchmark names in a class, in Table III order.
func ByClass(c MPKIClass) []string {
	var out []string
	for _, n := range Names {
		if specs[n].Class == c {
			out = append(out, n)
		}
	}
	return out
}

// ScaleFootprint returns a copy of p with the footprint and hot-set sizes
// multiplied by num/den, used when shrinking the machine for tests.
func ScaleFootprint(p Params, num, den int) Params {
	scale := func(v int) int {
		s := v * num / den
		if s < 1 && v > 0 {
			s = 1
		}
		return s
	}
	p.FootprintPages = scale(p.FootprintPages)
	p.HotPages = scale(p.HotPages)
	p.SuperHotPages = scale(p.SuperHotPages)
	p.PhaseShift = scale(p.PhaseShift)
	return p
}
