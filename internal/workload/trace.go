package workload

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace file format: a fixed header followed by fixed-size little-endian
// records. This lets cmd/silcfm-trace capture a generator's stream once and
// replay it bit-identically across schemes.
//
//	header: magic "SFMT" | version u16 | flags u16 | count u64 | name [16]byte
//	record: pc u64 | vaddr u64 | gap u32 | flags u32 (bit0 = write)

const (
	traceMagic   = "SFMT"
	traceVersion = 1
	recordSize   = 24
)

// TraceWriter streams records to an io.Writer.
type TraceWriter struct {
	w     *bufio.Writer
	count uint64
	buf   [recordSize]byte
}

// NewTraceWriter writes a header for a stream of unknown length (count 0 in
// the header; readers rely on EOF). name is truncated to 16 bytes.
func NewTraceWriter(w io.Writer, name string) (*TraceWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [32]byte
	copy(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], traceVersion)
	copy(hdr[16:32], name)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: write header: %w", err)
	}
	return &TraceWriter{w: bw}, nil
}

// Write appends one record.
func (t *TraceWriter) Write(r Ref) error {
	b := t.buf[:]
	binary.LittleEndian.PutUint64(b[0:8], r.PC)
	binary.LittleEndian.PutUint64(b[8:16], r.VAddr)
	binary.LittleEndian.PutUint32(b[16:20], r.Gap)
	var fl uint32
	if r.Write {
		fl = 1
	}
	binary.LittleEndian.PutUint32(b[20:24], fl)
	if _, err := t.w.Write(b); err != nil {
		return fmt.Errorf("trace: write record: %w", err)
	}
	t.count++
	return nil
}

// Count returns records written so far.
func (t *TraceWriter) Count() uint64 { return t.count }

// Flush flushes buffered records.
func (t *TraceWriter) Flush() error { return t.w.Flush() }

// TraceReader reads records from an io.Reader.
type TraceReader struct {
	r    *bufio.Reader
	name string
	buf  [recordSize]byte
}

// NewTraceReader validates the header and prepares to read records.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [32]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: read header: %w", err)
	}
	if string(hdr[0:4]) != traceMagic {
		return nil, errors.New("trace: bad magic")
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != traceVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	name := hdr[16:32]
	end := 0
	for end < len(name) && name[end] != 0 {
		end++
	}
	return &TraceReader{r: br, name: string(name[:end])}, nil
}

// Name returns the workload name stored in the header.
func (t *TraceReader) Name() string { return t.name }

// Read fills r with the next record; it returns io.EOF at end of trace.
func (t *TraceReader) Read(r *Ref) error {
	if _, err := io.ReadFull(t.r, t.buf[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("trace: read record: %w", err)
	}
	b := t.buf[:]
	r.PC = binary.LittleEndian.Uint64(b[0:8])
	r.VAddr = binary.LittleEndian.Uint64(b[8:16])
	r.Gap = binary.LittleEndian.Uint32(b[16:20])
	r.Write = binary.LittleEndian.Uint32(b[20:24])&1 != 0
	return nil
}

// Replay is a Generator that loops over an in-memory trace.
type Replay struct {
	name string
	refs []Ref
	pos  int
	foot uint64
}

// NewReplay wraps a record slice as a looping generator.
func NewReplay(name string, refs []Ref) (*Replay, error) {
	if len(refs) == 0 {
		return nil, errors.New("trace: empty replay")
	}
	pages := map[uint64]bool{}
	for i := range refs {
		pages[refs[i].VAddr>>11] = true
	}
	return &Replay{name: name, refs: refs, foot: uint64(len(pages)) * 2048}, nil
}

// LoadReplay reads an entire trace into a Replay generator.
func LoadReplay(r io.Reader) (*Replay, error) {
	tr, err := NewTraceReader(r)
	if err != nil {
		return nil, err
	}
	var refs []Ref
	for {
		var ref Ref
		if err := tr.Read(&ref); err != nil {
			if err == io.EOF {
				break
			}
			return nil, err
		}
		refs = append(refs, ref)
	}
	return NewReplay(tr.Name(), refs)
}

// Name implements Generator.
func (p *Replay) Name() string { return p.name }

// FootprintBytes implements Generator.
func (p *Replay) FootprintBytes() uint64 { return p.foot }

// Len returns the number of records in one loop.
func (p *Replay) Len() int { return len(p.refs) }

// Next implements Generator, wrapping around at the end of the trace.
func (p *Replay) Next(r *Ref) {
	*r = p.refs[p.pos]
	p.pos++
	if p.pos == len(p.refs) {
		p.pos = 0
	}
}

// CloneAt returns an independent replay cursor over the same records,
// starting at fraction i/n of the trace. Rate-mode simulations give each
// core its own staggered clone so instances do not move in lockstep.
func (p *Replay) CloneAt(i, n int) *Replay {
	c := *p
	if n > 0 {
		c.pos = len(p.refs) * (i % n) / n
	}
	return &c
}
