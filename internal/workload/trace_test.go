package workload

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewTraceWriter(&buf, "mcf")
	if err != nil {
		t.Fatal(err)
	}
	g, _ := New("mcf", 3)
	var want []Ref
	for i := 0; i < 1000; i++ {
		var r Ref
		g.Next(&r)
		want = append(want, r)
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 1000 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "mcf" {
		t.Fatalf("Name = %q", r.Name())
	}
	for i, wantRef := range want {
		var got Ref
		if err := r.Read(&got); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != wantRef {
			t.Fatalf("record %d: %+v != %+v", i, got, wantRef)
		}
	}
	var extra Ref
	if err := r.Read(&extra); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

// Property: arbitrary records survive serialization.
func TestTraceRoundTripProperty(t *testing.T) {
	f := func(pc, va uint64, gap uint32, write bool) bool {
		if gap == 0 {
			gap = 1
		}
		in := Ref{PC: pc, VAddr: va, Gap: gap, Write: write}
		var buf bytes.Buffer
		w, err := NewTraceWriter(&buf, "p")
		if err != nil {
			return false
		}
		if w.Write(in) != nil || w.Flush() != nil {
			return false
		}
		r, err := NewTraceReader(&buf)
		if err != nil {
			return false
		}
		var out Ref
		return r.Read(&out) == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceBadHeader(t *testing.T) {
	if _, err := NewTraceReader(strings.NewReader("BOGUSHEADERBOGUSHEADERBOGUSHEADER")); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewTraceReader(strings.NewReader("xy")); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestTraceLongNameTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewTraceWriter(&buf, "averyveryverylongworkloadname")
	if err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r, err := NewTraceReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Name()) != 16 {
		t.Fatalf("name %q not truncated to 16 bytes", r.Name())
	}
}

func TestReplayLoops(t *testing.T) {
	refs := []Ref{
		{PC: 1, VAddr: 0x1000, Gap: 2},
		{PC: 2, VAddr: 0x2000, Gap: 3, Write: true},
	}
	p, err := NewReplay("loop", refs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Name() != "loop" {
		t.Fatalf("Len=%d Name=%q", p.Len(), p.Name())
	}
	var r Ref
	for i := 0; i < 6; i++ {
		p.Next(&r)
		if r != refs[i%2] {
			t.Fatalf("iteration %d: %+v", i, r)
		}
	}
	// Footprint counts unique pages.
	if p.FootprintBytes() != 2*2048 {
		t.Fatalf("FootprintBytes = %d", p.FootprintBytes())
	}
}

func TestReplayEmptyRejected(t *testing.T) {
	if _, err := NewReplay("x", nil); err == nil {
		t.Fatal("empty replay accepted")
	}
}

func TestLoadReplay(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewTraceWriter(&buf, "gcc")
	g, _ := New("gcc", 1)
	for i := 0; i < 100; i++ {
		var r Ref
		g.Next(&r)
		w.Write(r)
	}
	w.Flush()
	p, err := LoadReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 100 || p.Name() != "gcc" {
		t.Fatalf("Len=%d Name=%q", p.Len(), p.Name())
	}
}

func TestReplayCloneAt(t *testing.T) {
	refs := make([]Ref, 8)
	for i := range refs {
		refs[i] = Ref{PC: uint64(i), VAddr: uint64(i) * 2048, Gap: 1}
	}
	p, _ := NewReplay("c", refs)
	c0 := p.CloneAt(0, 4)
	c2 := p.CloneAt(2, 4)
	var a, b Ref
	c0.Next(&a)
	c2.Next(&b)
	if a.PC != 0 || b.PC != 4 {
		t.Fatalf("staggered starts wrong: %d, %d", a.PC, b.PC)
	}
	// Clones are independent cursors.
	c0.Next(&a)
	if a.PC != 1 {
		t.Fatal("clone cursors not independent")
	}
	// n = 0 keeps the current position.
	c := p.CloneAt(3, 0)
	c.Next(&a)
	if a.PC != 0 {
		t.Fatalf("CloneAt(_, 0) moved the cursor: %d", a.PC)
	}
}
