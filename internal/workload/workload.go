// Package workload generates the memory reference streams that stand in for
// the paper's SPEC CPU2006 SimPoint slices (§IV-B). Each benchmark is a
// parameterized synthetic generator reproducing the properties the paper's
// evaluation discriminates on:
//
//   - MPKI class (Table III: low < 11, medium 11-32, high > 32), via the
//     instruction gap between references and the temporal-reuse fraction
//     that the SRAM caches absorb;
//   - footprint (unique 2 KB pages), scaled with the machine;
//   - page-level spatial locality (distinct subblocks touched per page
//     visit) — what separates PoM, CAMEO and SILC-FM's bit vectors;
//   - hot-set size, skew and churn — what separates locking, associativity
//     and epoch-based migration.
//
// Generators are deterministic per seed.
package workload

import (
	"math/rand"

	"silcfm/internal/memunits"
)

// Ref is one memory reference.
type Ref struct {
	PC    uint64
	VAddr uint64
	Write bool
	// Gap is the number of instructions executed up to and including this
	// reference since the previous one (>= 1).
	Gap uint32
}

// Generator produces an infinite reference stream.
type Generator interface {
	Name() string
	Next(r *Ref)
	// FootprintBytes is the approximate virtual footprint.
	FootprintBytes() uint64
}

// MPKIClass is Table III's grouping.
type MPKIClass int

const (
	LowMPKI MPKIClass = iota
	MediumMPKI
	HighMPKI
)

func (c MPKIClass) String() string {
	switch c {
	case LowMPKI:
		return "low"
	case MediumMPKI:
		return "medium"
	default:
		return "high"
	}
}

// InstrScale is the per-class run-length multiplier. The paper simulates
// 1 B instructions per core for every benchmark; at our scaled memory
// sizes, low-MPKI benchmarks need proportionally more instructions than
// high-MPKI ones to reach the same steady-state memory behaviour (misses
// per hot page), so rate-mode targets are scaled by class.
func (c MPKIClass) InstrScale() uint64 {
	switch c {
	case LowMPKI:
		return 8
	case MediumMPKI:
		return 4
	default:
		return 2
	}
}

// Params configures a synthetic benchmark generator.
type Params struct {
	Name  string
	Class MPKIClass

	FootprintPages int // total virtual 2KB pages per core

	// Hot-set structure.
	HotPages      int     // size of the (lukewarm) hot region, in pages
	HotProb       float64 // P(access targets the hot region)
	SuperHotPages int     // very hot subset (drives locking)
	SuperHotProb  float64 // P(access targets the super-hot subset)
	ZipfS         float64 // skew of super-hot popularity (>1; higher = more skewed)

	// Spatial locality within a page visit.
	VisitSubblocksMin int // distinct subblocks touched per visit, min
	VisitSubblocksMax int // and max (uniform); 32 = whole 2KB block

	// Temporal locality absorbed by SRAM caches.
	ReuseProb   float64 // P(re-access one of the recent addresses)
	ReuseWindow int     // how many recent addresses are eligible

	// Rate & mix.
	GapMean   int // mean instructions per memory reference
	WriteFrac float64

	// Phase behaviour: after PhaseRefs references the hot region slides by
	// PhaseShift pages (0 = stationary). Models gemsFDTD's short-lived hot
	// pages.
	PhaseRefs  uint64
	PhaseShift int
}

// Synthetic is the parameterized generator.
type Synthetic struct {
	p    Params
	rng  *rand.Rand
	zipf *rand.Zipf

	hotBase  int // rotating origin of the hot region
	refCount uint64

	// current page visit
	visitPage uint64
	visitSub  uint
	visitLeft int

	recent    []uint64
	recentPos int
}

// NewSynthetic builds a generator with the given parameters and seed.
func NewSynthetic(p Params, seed int64) *Synthetic {
	if p.ReuseWindow <= 0 {
		p.ReuseWindow = 64
	}
	if p.VisitSubblocksMin <= 0 {
		p.VisitSubblocksMin = 1
	}
	if p.VisitSubblocksMax < p.VisitSubblocksMin {
		p.VisitSubblocksMax = p.VisitSubblocksMin
	}
	if p.GapMean <= 0 {
		p.GapMean = 4
	}
	g := &Synthetic{
		p:      p,
		rng:    rand.New(rand.NewSource(seed)),
		recent: make([]uint64, 0, p.ReuseWindow),
	}
	if p.SuperHotPages > 0 {
		s := p.ZipfS
		if s <= 1 {
			s = 1.2
		}
		g.zipf = rand.NewZipf(g.rng, s, 1, uint64(p.SuperHotPages-1))
	}
	return g
}

// Name implements Generator.
func (g *Synthetic) Name() string { return g.p.Name }

// FootprintBytes implements Generator.
func (g *Synthetic) FootprintBytes() uint64 {
	return uint64(g.p.FootprintPages) * memunits.BlockSize
}

// Params returns the generator's configuration.
func (g *Synthetic) Params() Params { return g.p }

// Next implements Generator.
func (g *Synthetic) Next(r *Ref) {
	g.refCount++
	if g.p.PhaseRefs > 0 && g.refCount%g.p.PhaseRefs == 0 {
		g.hotBase = (g.hotBase + g.p.PhaseShift) % g.p.FootprintPages
	}

	// Instruction gap: 1 + geometric-ish noise around GapMean.
	gap := 1 + g.rng.Intn(2*g.p.GapMean-1)
	r.Gap = uint32(gap)
	r.Write = g.rng.Float64() < g.p.WriteFrac

	// Temporal reuse: hit the SRAM caches.
	if len(g.recent) > 0 && g.rng.Float64() < g.p.ReuseProb {
		r.VAddr = g.recent[g.rng.Intn(len(g.recent))]
		r.PC = g.pcFor(r.VAddr)
		return
	}

	// Page-visit model: touch a run of distinct subblocks in one page.
	if g.visitLeft == 0 {
		g.startVisit()
	}
	addr := memunits.SubblockAddr(g.visitPage, g.visitSub%memunits.SubblocksPerBlock)
	g.visitSub++
	g.visitLeft--

	// Spread within the subblock.
	addr |= uint64(g.rng.Intn(memunits.SubblockSize)) &^ 7
	r.VAddr = addr
	r.PC = g.pcFor(addr)
	g.remember(addr)
}

func (g *Synthetic) startVisit() {
	page := g.pickPage()
	span := g.p.VisitSubblocksMax - g.p.VisitSubblocksMin + 1
	n := g.p.VisitSubblocksMin + g.rng.Intn(span)
	start := uint(0)
	if n < memunits.SubblocksPerBlock {
		start = uint(g.rng.Intn(memunits.SubblocksPerBlock))
	}
	g.visitPage = page
	g.visitSub = start
	g.visitLeft = n
}

// pickPage selects the page for a new visit: super-hot, hot, or cold.
func (g *Synthetic) pickPage() uint64 {
	fp := g.p.FootprintPages
	roll := g.rng.Float64()
	switch {
	case g.zipf != nil && roll < g.p.SuperHotProb:
		idx := int(g.zipf.Uint64())
		return uint64((g.hotBase + idx) % fp)
	case roll < g.p.SuperHotProb+g.p.HotProb && g.p.HotPages > 0:
		idx := g.p.SuperHotPages + g.rng.Intn(g.p.HotPages)
		return uint64((g.hotBase + idx) % fp)
	default:
		return uint64(g.rng.Intn(fp))
	}
}

// pcFor derives a stable PC from the address region, so PC correlates with
// access pattern as the paper's predictor and history table assume
// (§III-A, §III-F).
func (g *Synthetic) pcFor(addr uint64) uint64 {
	page := memunits.BlockOf(addr)
	h := page * 0x9e3779b97f4a7c15
	return 0x400000 + (h>>51)<<3 // 8K distinct PCs, 8-byte aligned
}

func (g *Synthetic) remember(addr uint64) {
	if len(g.recent) < cap(g.recent) {
		g.recent = append(g.recent, addr)
		return
	}
	g.recent[g.recentPos] = addr
	g.recentPos = (g.recentPos + 1) % len(g.recent)
}
