package workload

import (
	"testing"

	"silcfm/internal/memunits"
)

func TestAllBenchmarksConstruct(t *testing.T) {
	if len(Names) != 14 {
		t.Fatalf("Table III lists 14 benchmarks, got %d", len(Names))
	}
	for _, n := range Names {
		g, ok := New(n, 1)
		if !ok {
			t.Fatalf("missing benchmark %s", n)
		}
		if g.Name() != n {
			t.Fatalf("name mismatch: %s vs %s", g.Name(), n)
		}
		var r Ref
		for i := 0; i < 1000; i++ {
			g.Next(&r)
			if r.Gap == 0 {
				t.Fatalf("%s: zero instruction gap", n)
			}
			if r.VAddr >= g.FootprintBytes() {
				t.Fatalf("%s: address %x beyond footprint %x", n, r.VAddr, g.FootprintBytes())
			}
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, ok := New("nonesuch", 1); ok {
		t.Fatal("unknown benchmark accepted")
	}
	if _, ok := Spec("nonesuch"); ok {
		t.Fatal("unknown spec accepted")
	}
}

func TestClasses(t *testing.T) {
	low, med, high := ByClass(LowMPKI), ByClass(MediumMPKI), ByClass(HighMPKI)
	if len(low) != 4 || len(med) != 5 || len(high) != 5 {
		t.Fatalf("class sizes %d/%d/%d, want 4/5/5 per Table III", len(low), len(med), len(high))
	}
	if LowMPKI.String() != "low" || MediumMPKI.String() != "medium" || HighMPKI.String() != "high" {
		t.Fatal("class names")
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	collect := func(seed int64) []Ref {
		g, _ := New("mcf", seed)
		out := make([]Ref, 500)
		for i := range out {
			g.Next(&out[i])
		}
		return out
	}
	a, b, c := collect(5), collect(5), collect(6)
	differs := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at ref %d", i)
		}
		if a[i] != c[i] {
			differs = true
		}
	}
	if !differs {
		t.Fatal("different seeds produced identical streams")
	}
}

// Spatial locality knob: lbm (streaming) must touch far more distinct
// subblocks per page than mcf (pointer chasing). This is the property that
// separates PoM from CAMEO in the paper.
func TestSpatialLocalityOrdering(t *testing.T) {
	subblocksPerPage := func(name string) float64 {
		g, _ := New(name, 1)
		var r Ref
		touched := map[uint64]map[uint]bool{}
		for i := 0; i < 200000; i++ {
			g.Next(&r)
			p := memunits.BlockOf(r.VAddr)
			if touched[p] == nil {
				touched[p] = map[uint]bool{}
			}
			touched[p][memunits.SubblockIndex(r.VAddr)] = true
		}
		tot := 0
		for _, m := range touched {
			tot += len(m)
		}
		return float64(tot) / float64(len(touched))
	}
	lbm, mcf := subblocksPerPage("lbm"), subblocksPerPage("mcf")
	if lbm < 2*mcf {
		t.Fatalf("lbm spatial %.1f !>> mcf %.1f", lbm, mcf)
	}
	if mcf > 14 {
		t.Fatalf("mcf touches %.1f cumulative subblocks/page, want pointer-chasing behaviour", mcf)
	}
	if lbm < 16 {
		t.Fatalf("lbm touches %.1f subblocks/page, want streaming behaviour", lbm)
	}
}

// Hot-set skew knob: xalanc concentrates accesses on few pages far more
// than gcc (many lukewarm pages).
func TestSkewOrdering(t *testing.T) {
	topShare := func(name string) float64 {
		g, _ := New(name, 1)
		var r Ref
		counts := map[uint64]int{}
		n := 150000
		for i := 0; i < n; i++ {
			g.Next(&r)
			counts[memunits.BlockOf(r.VAddr)]++
		}
		// share of accesses landing on the 64 most popular pages
		var all []int
		for _, c := range counts {
			all = append(all, c)
		}
		// selection of top 64 without sort package: simple partial pass
		top := 0
		for k := 0; k < 64 && len(all) > 0; k++ {
			best, bi := -1, -1
			for i, c := range all {
				if c > best {
					best, bi = c, i
				}
			}
			top += best
			all[bi] = all[len(all)-1]
			all = all[:len(all)-1]
		}
		return float64(top) / float64(n)
	}
	x, g := topShare("xalanc"), topShare("gcc")
	if x < 2*g {
		t.Fatalf("xalanc top-64 share %.3f !>> gcc %.3f", x, g)
	}
}

// Phase churn knob: a generator with PhaseRefs set must slide its hot
// region; one without must keep it stationary. (gems/milc/bwaves set
// PhaseRefs; cactus does not.)
func TestPhaseChurn(t *testing.T) {
	base := Params{
		Name: "p", FootprintPages: 4096, HotPages: 512, HotProb: 0.95,
		VisitSubblocksMin: 4, VisitSubblocksMax: 8, GapMean: 4,
	}
	hotPagesAt := func(p Params, skip int) map[uint64]bool {
		g := NewSynthetic(p, 1)
		var r Ref
		for i := 0; i < skip; i++ {
			g.Next(&r)
		}
		counts := map[uint64]int{}
		for i := 0; i < 100000; i++ {
			g.Next(&r)
			counts[memunits.BlockOf(r.VAddr)]++
		}
		hot := map[uint64]bool{}
		for page, c := range counts {
			if c >= 20 {
				hot[page] = true
			}
		}
		return hot
	}
	overlap := func(p Params) float64 {
		a := hotPagesAt(p, 0)
		b := hotPagesAt(p, 1_000_000)
		inter := 0
		for page := range a {
			if b[page] {
				inter++
			}
		}
		if len(a) == 0 {
			t.Fatal("no hot pages detected")
		}
		return float64(inter) / float64(len(a))
	}
	churny := base
	churny.PhaseRefs = 100_000
	churny.PhaseShift = 1024
	stat, churn := overlap(base), overlap(churny)
	if stat < 0.9 {
		t.Fatalf("stationary generator hot-set overlap %.2f, want ~1", stat)
	}
	if churn > 0.5 {
		t.Fatalf("phased generator hot-set overlap %.2f, want low", churn)
	}
	// And the shipped specs set the knob as documented.
	for _, n := range []string{"gems", "milc", "bwaves"} {
		p, _ := Spec(n)
		if p.PhaseRefs == 0 {
			t.Errorf("%s must have phase churn", n)
		}
	}
	for _, n := range []string{"cactus", "lib"} {
		p, _ := Spec(n)
		if p.PhaseRefs != 0 {
			t.Errorf("%s must be stationary", n)
		}
	}
}

func TestWriteFraction(t *testing.T) {
	g, _ := New("lbm", 1)
	var r Ref
	w := 0
	n := 50000
	for i := 0; i < n; i++ {
		g.Next(&r)
		if r.Write {
			w++
		}
	}
	frac := float64(w) / float64(n)
	if frac < 0.35 || frac > 0.55 {
		t.Fatalf("lbm write fraction %.2f, want ~0.45", frac)
	}
}

func TestScaleFootprint(t *testing.T) {
	p, _ := Spec("mcf")
	s := ScaleFootprint(p, 1, 4)
	if s.FootprintPages != p.FootprintPages/4 || s.HotPages != p.HotPages/4 {
		t.Fatalf("scaling wrong: %+v", s)
	}
	// Never scales a positive value to zero.
	tiny := ScaleFootprint(Params{FootprintPages: 2, HotPages: 1}, 1, 100)
	if tiny.FootprintPages == 0 || tiny.HotPages == 0 {
		t.Fatal("scaled positive field to zero")
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := NewSynthetic(Params{Name: "x", FootprintPages: 16}, 1)
	var r Ref
	for i := 0; i < 100; i++ {
		g.Next(&r) // must not panic or divide by zero
	}
	if g.Params().GapMean <= 0 || g.Params().VisitSubblocksMax <= 0 {
		t.Fatal("defaults not applied")
	}
}

func TestFootprintWithinBudget(t *testing.T) {
	// All 16 cores running the largest benchmark must fit in NM+FM
	// (640 MB) with headroom, or simulations would die of OOM frames.
	for _, n := range Names {
		p, _ := Spec(n)
		total := uint64(p.FootprintPages) * memunits.BlockSize * 16
		if total > 600<<20 {
			t.Errorf("%s: 16-core footprint %d MB exceeds budget", n, total>>20)
		}
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g, _ := New("mcf", 1)
	var r Ref
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next(&r)
	}
}

func TestCharacterize(t *testing.T) {
	g, _ := New("xalanc", 1)
	p := Characterize(g, 100_000)
	if p.Refs != 100_000 {
		t.Fatalf("Refs = %d", p.Refs)
	}
	if p.Pages == 0 || p.Subblocks < p.Pages {
		t.Fatalf("footprint: %d pages, %d subblocks", p.Pages, p.Subblocks)
	}
	if p.SubblocksPerPage < 1 || p.SubblocksPerPage > 32 {
		t.Fatalf("SubblocksPerPage = %f", p.SubblocksPerPage)
	}
	if p.WriteFrac <= 0 || p.WriteFrac >= 1 {
		t.Fatalf("WriteFrac = %f", p.WriteFrac)
	}
	if p.MeanGap < 1 {
		t.Fatalf("MeanGap = %f", p.MeanGap)
	}
	if p.FootprintBytes() != uint64(p.Pages)*2048 {
		t.Fatal("FootprintBytes")
	}
	// Skew ordering: xalanc is far more concentrated than gcc.
	gc, _ := New("gcc", 1)
	pg := Characterize(gc, 100_000)
	if p.Top64Share < 2*pg.Top64Share {
		t.Fatalf("xalanc top-64 %f !>> gcc %f", p.Top64Share, pg.Top64Share)
	}
}
