// Package silcfm is a simulation library reproducing "SILC-FM: Subblocked
// InterLeaved Cache-Like Flat Memory Organization" (Ryoo, Meswani,
// Prodromou, John — HPCA 2017).
//
// It models a heterogeneous flat memory — die-stacked HBM near memory plus
// off-chip DDR3 far memory — managed by one of seven organization schemes
// (the paper's SILC-FM plus its six comparison points), driven by a
// multicore processor model over synthetic SPEC CPU2006-like workloads, on
// top of an event-driven DRAM timing model.
//
// Quick start:
//
//	base, _ := silcfm.Run(silcfm.Options{Scheme: silcfm.Baseline, Workload: "mcf"})
//	silc, _ := silcfm.Run(silcfm.Options{Scheme: silcfm.SILCFM, Workload: "mcf"})
//	fmt.Printf("speedup %.2f at access rate %.2f\n", silc.SpeedupOver(base), silc.AccessRate)
//
// The Figure*/Table* functions regenerate every experiment of the paper's
// evaluation section; see EXPERIMENTS.md for measured-vs-paper results.
package silcfm

import (
	"fmt"
	"io"
	"os"
	"strings"

	"silcfm/internal/config"
	"silcfm/internal/flightrec"
	"silcfm/internal/harness"
	"silcfm/internal/health"
	"silcfm/internal/manifest"
	"silcfm/internal/stats"
	"silcfm/internal/telemetry"
	"silcfm/internal/telemetry/exemplar"
	"silcfm/internal/telemetry/live"
	"silcfm/internal/workload"
)

// LiveServer is the embedded observability HTTP server (see Serve): it
// exposes /metrics (Prometheus text), /healthz (open health incidents),
// /progress (per-run status with ETA) and /debug/pprof for every run
// attached through Options.Live.
type LiveServer = live.Server

// Serve binds addr (host:port; ":0" picks a free port) and starts the live
// observability server. Attach runs via Options.Live; stop with Close.
func Serve(addr string) (*LiveServer, error) { return live.New(addr) }

// Scheme names a memory-organization scheme.
type Scheme string

// The implemented schemes, as plotted in the paper's Figure 7.
const (
	// Baseline is the no-die-stacked-DRAM system every figure normalizes
	// against: far memory only.
	Baseline Scheme = "base"
	// Random places pages randomly across NM+FM and never migrates.
	Random Scheme = "rand"
	// HMA is the epoch-based OS-managed migration scheme (§II-C).
	HMA Scheme = "hma"
	// CAMEO swaps 64-byte blocks within direct-mapped congruence groups.
	CAMEO Scheme = "cam"
	// CAMEOPrefetch is CAMEO plus a next-3-line prefetcher (§IV-A).
	CAMEOPrefetch Scheme = "camp"
	// PoM migrates 2 KB blocks after an access-count threshold.
	PoM Scheme = "pom"
	// SILCFM is the paper's contribution.
	SILCFM Scheme = "silc"
)

// Schemes returns every scheme, baseline first.
func Schemes() []Scheme {
	return []Scheme{Baseline, Random, HMA, CAMEO, CAMEOPrefetch, PoM, SILCFM}
}

// Workloads returns the Table III benchmark names.
func Workloads() []string { return append([]string(nil), workload.Names...) }

// Features toggles SILC-FM's mechanisms, enabling Figure 6-style
// breakdowns. The zero value disables everything except base subblock
// swapping with a direct-mapped organization.
type Features struct {
	Locking   bool // lock hot blocks in NM (§III-C)
	Ways      int  // NM set associativity: 1, 2 or 4 (§III-C)
	Bypass    bool // bandwidth-balancing bypass at 0.8 access rate (§III-E)
	Predictor bool // way/location predictor (§III-F)
	History   bool // bit vector history replay (§III-A)
}

// FullFeatures returns the paper's chosen design point.
func FullFeatures() Features {
	return Features{Locking: true, Ways: 4, Bypass: true, Predictor: true, History: true}
}

// Tuning overrides SILC-FM's numeric parameters for ablation studies
// (§III-B/C/E/F). Zero-valued fields keep the defaults.
type Tuning struct {
	HotThreshold     uint32  // lock threshold (paper: 50; scaled default 16)
	AgingInterval    uint64  // accesses between counter right-shifts
	BypassTarget     float64 // access-rate ceiling (paper: 0.8)
	HistoryEntries   int     // bit vector history table size
	PredictorEntries int     // way/location predictor size (paper: 4K)
}

// Options configures one simulation.
type Options struct {
	Scheme   Scheme
	Workload string // a Workloads() name; default "mcf"

	// InstrPerCore is the rate-mode retirement target per core
	// (default 1M). With ScaleInstrByClass, low-MPKI workloads run
	// proportionally longer so all benchmarks reach steady state.
	InstrPerCore      uint64
	ScaleInstrByClass bool

	// Cores defaults to 16 (Table II). NMCapacity/FMCapacity default to
	// 128 MB / 512 MB; both must be multiples of 2 KB and FM a multiple
	// of NM.
	Cores      int
	NMCapacity uint64
	FMCapacity uint64

	// SILC overrides SILC-FM's feature set (nil = FullFeatures).
	SILC *Features

	// Tuning overrides SILC-FM's numeric parameters (nil = paper design
	// point, scaled); zero-valued fields keep their defaults.
	Tuning *Tuning

	// FootprintScaleDen divides every workload's footprint and hot-set
	// sizes, for running on proportionally smaller NM/FM capacities
	// (0 or 1 = unscaled).
	FootprintScaleDen int

	// TracePath replays a trace captured by cmd/silcfm-trace instead of
	// the synthetic generator; Workload then only labels the run.
	TracePath string

	// Mix runs a heterogeneous multiprogrammed mix: core i runs benchmark
	// Mix[i mod len(Mix)]. Overrides Workload. (The paper evaluates
	// homogeneous rate mode; mixes are an extension.)
	Mix []string

	// ShadowCheck runs the continuous shadow-data integrity checker
	// alongside the simulation (internal/shadow): every demand access and
	// swap is verified against a token-level reference model, and Run
	// returns an error on the first violation. Costs simulation speed.
	ShadowCheck bool

	// MetricsOut streams epoch time-series metrics to a file: one sample
	// per MetricsEpoch simulated cycles holding the stats counter deltas
	// plus scheme gauges. JSONL by default; a path ending in ".csv" (or
	// MetricsCSV) switches to CSV with a header row.
	MetricsOut   string
	MetricsCSV   bool
	MetricsEpoch uint64 // sampling period in cycles (default 200_000)

	// TraceOut writes a Chrome trace-event JSON of semantic movement
	// events (demand/capture/deliver/relocate/swap/lock), viewable in
	// Perfetto. TraceLimit bounds the in-memory event ring (default 1<<18;
	// oldest events drop first).
	TraceOut   string
	TraceLimit int

	// ProgressOut, when non-nil, receives a progress line per epoch.
	ProgressOut io.Writer

	// ProfileOut writes the per-block / per-PC hotness profile as JSONL at
	// end of run: demand counts and latency, subblock swap churn, lock
	// transitions and bypass/mispredict pressure per flat 2 KB block and per
	// program counter, plus a summary line. Profiling is passive (counter
	// increments only) and cannot change Cycles or any counter.
	ProfileOut string
	// ProfileTopK, when positive, collects the hotness profile (even
	// without ProfileOut) and renders the K hottest blocks and PCs into
	// Report.TopOffenders.
	ProfileTopK int

	// HealthOut writes the run's health incidents (plus a summary line) as
	// JSONL. The online detector itself is always on — Report.Health and
	// the manifest carry its incidents regardless — this only selects the
	// file output.
	HealthOut string

	// PostmortemOut names a directory receiving one JSON file per
	// postmortem bundle the flight recorder emitted (bundle-NNN.json,
	// created only when an incident opened). The recorder itself is always
	// on — see DisableFlightrec — this only selects the file output.
	PostmortemOut string
	// DisableFlightrec turns the incident flight recorder off entirely
	// (internal/flightrec). The recorder is inert — counters and manifests
	// are byte-identical either way — so the switch exists for proving
	// exactly that, and for shaving its fixed ring-buffer footprint.
	DisableFlightrec bool

	// ExemplarsOut writes every captured tail exemplar — the worst-K
	// slowest demand accesses per service path, with their full span
	// decomposition and issue/completion context — as JSONL at end of run.
	// The recorder itself is always on (see DisableExemplars); this only
	// selects the file output. Report.Exemplars and the manifest carry the
	// per-path summary regardless.
	ExemplarsOut string
	// DisableExemplars turns the tail-exemplar recorder off entirely
	// (internal/telemetry/exemplar). Like the flight recorder it is inert —
	// cycles, counters and manifests are byte-identical either way — so the
	// switch exists for proving exactly that.
	DisableExemplars bool

	// Live attaches this run to a live observability server (see Serve):
	// every telemetry epoch publishes a snapshot, and the run is marked
	// done (with its final incident list) when it completes. RunID names
	// the run on the server's endpoints; default "<scheme>/<workload>".
	Live  *LiveServer
	RunID string

	Seed int64
}

// Report is the outcome of one simulation. The json tags define the schema
// of silcfm-sim's -json output (rendered with the manifest package's
// canonical encoder).
type Report struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`

	Cycles       uint64 `json:"cycles"`       // rate-mode execution time in CPU cycles
	Instructions uint64 `json:"instructions"` // total retired over all cores

	AvgMPKI           float64 `json:"avg_mpki"`           // per-core LLC misses per kilo-instruction
	AccessRate        float64 `json:"access_rate"`        // paper Eq. 1: fraction of misses serviced by NM
	NMDemandFraction  float64 `json:"nm_demand_fraction"` // Figure 8 metric
	MigrationOverhead float64 `json:"migration_overhead"` // migration+metadata bytes per demand byte

	EnergyNJ float64 `json:"energy_nj"`
	EDP      float64 `json:"edp"` // energy-delay product (nJ x cycles)

	FootprintBytes uint64 `json:"footprint_bytes"` // unique pages touched x 2 KB

	Locks             uint64  `json:"locks"`
	Unlocks           uint64  `json:"unlocks"`
	Migrations        uint64  `json:"migrations"`
	SwapsIn           uint64  `json:"swaps_in"`
	SwapsOut          uint64  `json:"swaps_out"`
	BypassedAccesses  uint64  `json:"bypassed_accesses"`
	PredictorAccuracy float64 `json:"predictor_accuracy"`

	// DemandLatency breaks demand-completion latency down by service path
	// (NM hit, FM, swap critical path, bypass, predictor mispredict);
	// empty paths are omitted.
	DemandLatency []PathLatency `json:"demand_latency,omitempty"`

	// Attribution decomposes each path's total demand latency into named
	// spans (queue, device service, metadata fetch, swap serialization,
	// mispredict retry, other). For every path the span total equals the
	// DemandLatency sum exactly — verified by the counter-conservation
	// audit at end of run. Empty paths are omitted.
	Attribution []PathSpans `json:"attribution,omitempty"`

	// TopOffenders is the rendered hottest-blocks / hottest-PCs tables when
	// Options.ProfileTopK was set.
	TopOffenders string `json:"top_offenders,omitempty"`

	// Exemplars summarizes the tail-exemplar reservoirs: per service path,
	// the number of captured worst-K accesses and the identity of the very
	// slowest one. Byte-deterministic for a fixed seed, like every counter.
	// Full exemplar records (span waterfalls, issue/completion context) go
	// to Options.ExemplarsOut as JSONL.
	Exemplars []ExemplarSummary `json:"exemplars,omitempty"`

	// TailExemplars is the rendered per-path exemplar waterfall table
	// ("tail exemplars:"), printed by silcfm-sim under the latency lines.
	TailExemplars string `json:"tail_exemplars,omitempty"`

	// Health lists the incidents the online health detector observed
	// (swap-thrash, bypass oscillation, lock churn, queue saturation,
	// predictor collapse), in deterministic order. Empty means the run
	// stayed healthy; like every counter above it is byte-deterministic
	// for a fixed seed.
	Health []HealthIncident `json:"health,omitempty"`

	// WallSeconds is the host wall-clock time of the whole run, and
	// SimCyclesPerSec the simulated-cycles-per-host-second throughput of
	// the event loop. Both are host-dependent (never byte-deterministic);
	// manifests carry them under the noise-banded "host" section.
	WallSeconds     float64 `json:"wall_seconds"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// PathSpans is one service path's latency attribution, in cycles summed
// over all completions on that path.
type PathSpans struct {
	Path       string `json:"path"`
	Count      uint64 `json:"count"`
	Total      uint64 `json:"total"`
	Queue      uint64 `json:"queue"`
	Service    uint64 `json:"service"`
	MetaFetch  uint64 `json:"meta_fetch"`
	SwapSerial uint64 `json:"swap_serial"`
	Mispredict uint64 `json:"mispredict"`
	Other      uint64 `json:"other"`
}

// HealthIncident is one detected anomaly: a window of consecutive epochs
// during which one pathology condition held (see internal/health for the
// trigger definitions).
type HealthIncident struct {
	Kind         string         `json:"kind"`
	FirstEpoch   uint64         `json:"first_epoch"`
	LastEpoch    uint64         `json:"last_epoch"`
	FirstCycle   uint64         `json:"first_cycle"`
	LastCycle    uint64         `json:"last_cycle"`
	Epochs       uint64         `json:"epochs"`
	PeakSeverity float64        `json:"peak_severity"`
	Evidence     HealthEvidence `json:"evidence"`
}

// HealthEvidence carries the counters accumulated while an incident was
// firing; only the fields relevant to the incident's kind are set.
type HealthEvidence struct {
	SwapBytes       uint64 `json:"swap_bytes,omitempty"`
	DemandBytes     uint64 `json:"demand_bytes,omitempty"`
	Crossings       uint64 `json:"crossings,omitempty"`
	BypassToggles   uint64 `json:"bypass_toggles,omitempty"`
	Locks           uint64 `json:"locks,omitempty"`
	Unlocks         uint64 `json:"unlocks,omitempty"`
	PeakQueueNM     int    `json:"peak_queue_nm,omitempty"`
	PeakQueueFM     int    `json:"peak_queue_fm,omitempty"`
	PredictorHits   uint64 `json:"predictor_hits,omitempty"`
	PredictorMisses uint64 `json:"predictor_misses,omitempty"`
}

// PathLatency summarizes one service path's demand latency distribution.
type PathLatency struct {
	Path  string  `json:"path"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	// P50/P95/P99 are percentile bounds in cycles (bucket upper edges);
	// Max is the exact worst observed latency.
	P50 uint64 `json:"p50"`
	P95 uint64 `json:"p95"`
	P99 uint64 `json:"p99"`
	Max uint64 `json:"max"`
}

// ExemplarSummary is one service path's tail-exemplar reservoir reduced to
// its manifest leaf: occupancy plus the slowest access's identity.
type ExemplarSummary struct {
	Path         string `json:"path"`
	Count        int    `json:"count"`
	WorstLatency uint64 `json:"worst_latency"`
	WorstStart   uint64 `json:"worst_start"`
	WorstBlock   uint64 `json:"worst_block"`
	WorstSpan    string `json:"worst_span"`
}

// SpeedupOver returns base.Cycles / r.Cycles, the paper's figure of merit.
func (r *Report) SpeedupOver(base *Report) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(r.Cycles)
}

// machine converts Options into the internal machine description.
func (o Options) machine() (config.Machine, error) {
	m := config.Default()
	if o.Cores > 0 {
		m.Cores = o.Cores
	}
	if o.NMCapacity > 0 {
		m.NM = config.HBM(o.NMCapacity)
	}
	if o.FMCapacity > 0 {
		m.FM = config.DDR3(o.FMCapacity)
	}
	if o.Seed != 0 {
		m.Seed = o.Seed
	}
	switch o.Scheme {
	case "", SILCFM:
		m.Scheme = config.SchemeSILCFM
	case Baseline, Random, HMA, CAMEO, CAMEOPrefetch, PoM:
		m.Scheme = config.SchemeName(o.Scheme)
	default:
		return m, fmt.Errorf("silcfm: unknown scheme %q", o.Scheme)
	}
	if o.SILC != nil {
		m.SILC.Features = config.SILCFeatures{
			Locking:       o.SILC.Locking,
			Ways:          o.SILC.Ways,
			Bypass:        o.SILC.Bypass,
			Predictor:     o.SILC.Predictor,
			BitVecHistory: o.SILC.History,
		}
		if m.SILC.Features.Ways == 0 {
			m.SILC.Features.Ways = 1
		}
	}
	if o.Tuning != nil {
		if o.Tuning.HotThreshold > 0 {
			m.SILC.HotThreshold = o.Tuning.HotThreshold
		}
		if o.Tuning.AgingInterval > 0 {
			m.SILC.AgingInterval = o.Tuning.AgingInterval
		}
		if o.Tuning.BypassTarget > 0 {
			m.SILC.BypassTarget = o.Tuning.BypassTarget
		}
		if o.Tuning.HistoryEntries > 0 {
			m.SILC.HistoryEntries = o.Tuning.HistoryEntries
		}
		if o.Tuning.PredictorEntries > 0 {
			m.SILC.PredictorEntries = o.Tuning.PredictorEntries
		}
	}
	return m, m.Validate()
}

// Run executes one simulation to completion and reduces its statistics.
func Run(o Options) (*Report, error) {
	res, err := runResult(o)
	if err != nil {
		return nil, err
	}
	return reportOf(res, o.ProfileTopK), nil
}

// RunEntry executes one simulation and returns both the reduced Report and
// the run-manifest entry capturing its complete counter state, under the
// given entry ID (conventionally "<scheme>/<workload>").
func RunEntry(o Options, id string) (*Report, *manifest.Entry, error) {
	res, err := runResult(o)
	if err != nil {
		return nil, nil, err
	}
	e := manifest.FromResult(id, res)
	return reportOf(res, o.ProfileTopK), &e, nil
}

// runResult runs the simulation and enforces the end-of-run audits.
func runResult(o Options) (*harness.Result, error) {
	m, err := o.machine()
	if err != nil {
		return nil, err
	}
	wl := o.Workload
	if wl == "" && o.TracePath == "" && len(o.Mix) == 0 {
		wl = "mcf"
	}
	spec := harness.Spec{
		Machine:           m,
		Workload:          wl,
		InstrPerCore:      o.InstrPerCore,
		ScaleInstrByClass: o.ScaleInstrByClass,
		TracePath:         o.TracePath,
		Mix:               o.Mix,
		ShadowCheck:       o.ShadowCheck,
	}
	if o.FootprintScaleDen > 1 {
		spec.FootScaleNum, spec.FootScaleDen = 1, o.FootprintScaleDen
	}

	tcfg, cleanup, err := o.telemetryConfig()
	if err != nil {
		return nil, err
	}
	spec.Telemetry = tcfg
	if o.DisableFlightrec {
		spec.Flightrec = &flightrec.Config{Disabled: true}
	}
	if o.DisableExemplars {
		spec.Exemplars = &exemplar.Config{Disabled: true}
	}
	var res *harness.Result
	if o.Live != nil {
		id := o.RunID
		if id == "" {
			id = string(m.Scheme) + "/" + wl
		}
		spec.Publish = o.Live.Hook(id)
		if !o.DisableFlightrec {
			// Stream finalized bundles into the hub's incident store as they
			// are emitted; bundles are immutable, so sharing the pointer
			// across goroutines is race-free.
			hub := o.Live
			spec.Flightrec = &flightrec.Config{
				OnBundle: func(b *flightrec.Bundle) { hub.AddBundle(id, b) },
			}
		}
		if !o.DisableExemplars {
			// Publish each epoch's tail-exemplar snapshot into the hub's
			// store; snapshots are freshly built and immutable, so sharing
			// them across goroutines is race-free.
			hub := o.Live
			spec.Exemplars = &exemplar.Config{
				OnSnapshot: func(es []exemplar.Exemplar) { hub.SetExemplars(id, es) },
			}
		}
		defer func() {
			var final []health.Incident
			if res != nil {
				final = res.Health
			}
			o.Live.Done(id, final)
		}()
	}
	res, err = harness.Run(spec)
	if cerr := cleanup(); err == nil && cerr != nil {
		err = fmt.Errorf("silcfm: telemetry output: %w", cerr)
	}
	if err != nil {
		return nil, err
	}
	if o.HealthOut != "" {
		if herr := writeHealthOut(o.HealthOut, res.Health); herr != nil {
			return nil, herr
		}
	}
	if o.PostmortemOut != "" {
		if _, perr := flightrec.WriteDir(o.PostmortemOut, res.Bundles); perr != nil {
			return nil, fmt.Errorf("silcfm: postmortem output: %w", perr)
		}
	}
	if o.ExemplarsOut != "" {
		if eerr := writeExemplarsOut(o.ExemplarsOut, res.Exemplars); eerr != nil {
			return nil, eerr
		}
	}
	if res.AuditErr != nil {
		return nil, fmt.Errorf("silcfm: data-integrity audit failed: %w", res.AuditErr)
	}
	if res.ShadowErr != nil {
		return nil, fmt.Errorf("silcfm: shadow integrity check failed: %w", res.ShadowErr)
	}
	if res.ConservationErr != nil {
		return nil, fmt.Errorf("silcfm: counter-conservation audit failed: %w", res.ConservationErr)
	}
	return res, nil
}

// telemetryConfig opens the requested telemetry outputs. cleanup closes
// them and reports the first close error (flush failures matter for files).
func (o Options) telemetryConfig() (*telemetry.Config, func() error, error) {
	noop := func() error { return nil }
	if o.MetricsOut == "" && o.TraceOut == "" && o.ProgressOut == nil &&
		o.ProfileOut == "" && o.ProfileTopK <= 0 {
		return nil, noop, nil
	}
	cfg := &telemetry.Config{
		MetricsCSV:  o.MetricsCSV || strings.HasSuffix(o.MetricsOut, ".csv"),
		EpochCycles: o.MetricsEpoch,
		TraceLimit:  o.TraceLimit,
		ProgressW:   o.ProgressOut,
		Profile:     o.ProfileTopK > 0,
	}
	var files []*os.File
	open := func(path string) (*os.File, error) {
		f, err := os.Create(path)
		if err != nil {
			for _, g := range files {
				g.Close()
			}
			return nil, fmt.Errorf("silcfm: %w", err)
		}
		files = append(files, f)
		return f, nil
	}
	if o.MetricsOut != "" {
		f, err := open(o.MetricsOut)
		if err != nil {
			return nil, noop, err
		}
		cfg.MetricsW = f
	}
	if o.TraceOut != "" {
		f, err := open(o.TraceOut)
		if err != nil {
			return nil, noop, err
		}
		cfg.TraceW = f
	}
	if o.ProfileOut != "" {
		f, err := open(o.ProfileOut)
		if err != nil {
			return nil, noop, err
		}
		cfg.ProfileW = f
	}
	cleanup := func() error {
		var first error
		for _, f := range files {
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return cfg, cleanup, nil
}

// writeExemplarsOut writes the tail-exemplar JSONL file (Options.ExemplarsOut).
func writeExemplarsOut(path string, es []exemplar.Exemplar) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("silcfm: %w", err)
	}
	werr := exemplar.WriteJSONL(f, es)
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("silcfm: exemplar output: %w", werr)
	}
	return nil
}

// writeHealthOut writes the incident JSONL file (Options.HealthOut).
func writeHealthOut(path string, incidents []health.Incident) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("silcfm: %w", err)
	}
	werr := health.WriteJSONL(f, incidents)
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("silcfm: health output: %w", werr)
	}
	return nil
}

func healthIncidents(res *harness.Result) []HealthIncident {
	var out []HealthIncident
	for _, in := range res.Health {
		out = append(out, HealthIncident{
			Kind:         in.Kind,
			FirstEpoch:   in.FirstEpoch,
			LastEpoch:    in.LastEpoch,
			FirstCycle:   in.FirstCycle,
			LastCycle:    in.LastCycle,
			Epochs:       in.Epochs,
			PeakSeverity: in.PeakSeverity,
			Evidence: HealthEvidence{
				SwapBytes:       in.Evidence.SwapBytes,
				DemandBytes:     in.Evidence.DemandBytes,
				Crossings:       in.Evidence.Crossings,
				BypassToggles:   in.Evidence.BypassToggles,
				Locks:           in.Evidence.Locks,
				Unlocks:         in.Evidence.Unlocks,
				PeakQueueNM:     in.Evidence.PeakQueueNM,
				PeakQueueFM:     in.Evidence.PeakQueueFM,
				PredictorHits:   in.Evidence.PredictorHits,
				PredictorMisses: in.Evidence.PredictorMisses,
			},
		})
	}
	return out
}

func reportOf(res *harness.Result, topK int) *Report {
	r := &Report{
		Workload:          res.Workload,
		Scheme:            res.Scheme,
		Cycles:            res.Cycles,
		Instructions:      res.TotalInstructions(),
		AvgMPKI:           res.AvgMPKI(),
		AccessRate:        res.Mem.AccessRate(),
		NMDemandFraction:  res.Mem.DemandNMFraction(),
		MigrationOverhead: res.Mem.MigrationOverheadRatio(),
		EnergyNJ:          res.EnergyNJ,
		EDP:               res.EDP(),
		FootprintBytes:    res.FootprintPages * 2048,
		Locks:             res.Mem.Locks,
		Unlocks:           res.Mem.Unlocks,
		Migrations:        res.Mem.Migrations,
		SwapsIn:           res.Mem.SwapsIn,
		SwapsOut:          res.Mem.SwapsOut,
		BypassedAccesses:  res.Mem.BypassedAccesses,
		PredictorAccuracy: res.Mem.PredictorAccuracy(),
		DemandLatency:     pathLatencies(res),
		Attribution:       pathSpans(res),
		Health:            healthIncidents(res),
		WallSeconds:       res.WallSeconds,
		SimCyclesPerSec:   res.SimCyclesPerSec,
	}
	if topK > 0 && res.Profile != nil {
		r.TopOffenders = res.Profile.TopOffenders(topK)
	}
	if len(res.Exemplars) > 0 {
		for _, s := range exemplar.Summarize(res.Exemplars) {
			r.Exemplars = append(r.Exemplars, ExemplarSummary{
				Path:         s.Path,
				Count:        s.Count,
				WorstLatency: s.WorstLatency,
				WorstStart:   s.WorstStart,
				WorstBlock:   s.WorstBlock,
				WorstSpan:    s.WorstSpan,
			})
		}
		var b strings.Builder
		exemplar.RenderWaterfall(&b, res.Exemplars, reportWaterfallTop)
		r.TailExemplars = b.String()
	}
	return r
}

// reportWaterfallTop bounds the exemplars rendered per path in
// Report.TailExemplars; the full reservoirs go to Options.ExemplarsOut.
const reportWaterfallTop = 4

func pathSpans(res *harness.Result) []PathSpans {
	if res.Attr == nil {
		return nil
	}
	var out []PathSpans
	for _, s := range res.Attr.Summaries() {
		out = append(out, PathSpans{
			Path:       s.Path,
			Count:      s.Count,
			Total:      s.Total,
			Queue:      s.Spans[stats.SpanQueue],
			Service:    s.Spans[stats.SpanService],
			MetaFetch:  s.Spans[stats.SpanMetaFetch],
			SwapSerial: s.Spans[stats.SpanSwapSerial],
			Mispredict: s.Spans[stats.SpanMispredict],
			Other:      s.Spans[stats.SpanOther],
		})
	}
	return out
}

func pathLatencies(res *harness.Result) []PathLatency {
	if res.Lat == nil {
		return nil
	}
	var out []PathLatency
	for _, s := range res.Lat.Summaries() {
		out = append(out, PathLatency{
			Path: s.Path, Count: s.Count, Mean: s.Mean,
			P50: s.P50, P95: s.P95, P99: s.P99, Max: s.Max,
		})
	}
	return out
}
