package silcfm

import (
	"strings"
	"testing"
)

// tiny returns laptop-scale options that still exercise the full pipeline:
// 4 cores, NM 4 MiB, FM 16 MiB, footprints scaled 1/8.
func tiny(s Scheme, wl string) Options {
	return Options{
		Scheme:            s,
		Workload:          wl,
		InstrPerCore:      120_000,
		Cores:             4,
		NMCapacity:        4 << 20,
		FMCapacity:        16 << 20,
		FootprintScaleDen: 8,
	}
}

func TestRunDefaultsApplied(t *testing.T) {
	r, err := Run(tiny("", ""))
	if err != nil {
		t.Fatal(err)
	}
	if r.Scheme != "silc" || r.Workload != "mcf" {
		t.Fatalf("defaults: %s/%s", r.Scheme, r.Workload)
	}
	if r.Cycles == 0 || r.Instructions < 4*120_000 {
		t.Fatalf("cycles=%d instr=%d", r.Cycles, r.Instructions)
	}
}

func TestRunAllSchemes(t *testing.T) {
	for _, s := range Schemes() {
		r, err := Run(tiny(s, "milc"))
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if string(s) != r.Scheme {
			t.Fatalf("scheme echo: %s vs %s", s, r.Scheme)
		}
		if r.AccessRate < 0 || r.AccessRate > 1 {
			t.Fatalf("%s: access rate %f", s, r.AccessRate)
		}
	}
}

func TestRunRejectsGarbage(t *testing.T) {
	if _, err := Run(tiny("bogus", "milc")); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if _, err := Run(tiny(SILCFM, "bogus")); err == nil {
		t.Fatal("bogus workload accepted")
	}
	o := tiny(SILCFM, "milc")
	o.NMCapacity = 12345 // not a block multiple
	if _, err := Run(o); err == nil {
		t.Fatal("bad capacity accepted")
	}
}

func TestSpeedupOver(t *testing.T) {
	a := &Report{Cycles: 100}
	b := &Report{Cycles: 200}
	if got := a.SpeedupOver(b); got != 2 {
		t.Fatalf("SpeedupOver = %v", got)
	}
	var z Report
	if z.SpeedupOver(a) != 0 {
		t.Fatal("zero-cycle report must not divide by zero")
	}
}

func TestFeatureToggles(t *testing.T) {
	f := Features{Ways: 1} // everything else off
	o := tiny(SILCFM, "milc")
	o.SILC = &f
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Locks != 0 {
		t.Fatal("locking happened while disabled")
	}
	if r.BypassedAccesses != 0 {
		t.Fatal("bypassing happened while disabled")
	}
	// Zero Ways normalizes to direct-mapped rather than erroring.
	o.SILC = &Features{}
	if _, err := Run(o); err != nil {
		t.Fatalf("zero-value features rejected: %v", err)
	}
}

func TestWorkloadsAndSchemesLists(t *testing.T) {
	if len(Workloads()) != 14 {
		t.Fatalf("workloads = %d, want 14 (Table III)", len(Workloads()))
	}
	if len(Schemes()) != 7 {
		t.Fatalf("schemes = %d, want 7", len(Schemes()))
	}
	if Schemes()[0] != Baseline {
		t.Fatal("baseline must come first")
	}
}

func TestFullFeatures(t *testing.T) {
	f := FullFeatures()
	if !f.Locking || !f.Bypass || !f.Predictor || !f.History || f.Ways != 4 {
		t.Fatalf("FullFeatures = %+v", f)
	}
}

func tinyExperiment() ExperimentOptions {
	return ExperimentOptions{
		InstrPerCore:      40_000,
		Workloads:         []string{"milc"},
		Cores:             4,
		NMCapacity:        4 << 20,
		FMCapacity:        16 << 20,
		FootprintScaleDen: 8,
		Parallelism:       2,
	}
}

func TestExperimentTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	t3, err := TableIII(tinyExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 1 || !strings.Contains(t3.String(), "milc") {
		t.Fatalf("TableIII:\n%s", t3)
	}
	f7, err := Figure7(tinyExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if len(f7.Columns) != 7 { // workload + 6 schemes
		t.Fatalf("Figure7 columns: %v", f7.Columns)
	}
	if !strings.Contains(f7.String(), "geomean") {
		t.Fatal("Figure7 lacks geomean row")
	}
	f8, err := Figure8(tinyExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f8.Title, "0.8") {
		t.Fatalf("Figure8 title: %s", f8.Title)
	}
}

func TestHeadlineAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	h, err := ComputeHeadline(tinyExperiment())
	if err != nil {
		t.Fatal(err)
	}
	if h.BestAlt == "" || h.Text == "" {
		t.Fatalf("headline incomplete: %+v", h)
	}
}

func TestTuningOverrides(t *testing.T) {
	o := tiny(SILCFM, "milc")
	o.Tuning = &Tuning{HotThreshold: 2, AgingInterval: 1 << 14}
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	// A very low threshold must lock far more than the default.
	o2 := tiny(SILCFM, "milc")
	r2, err := Run(o2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Locks <= r2.Locks {
		t.Fatalf("threshold 2 locks (%d) not above default (%d)", r.Locks, r2.Locks)
	}
}

func TestMixThroughPublicAPI(t *testing.T) {
	o := tiny(SILCFM, "")
	o.Mix = []string{"milc", "xalanc"}
	o.InstrPerCore = 40_000
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != "mix(milc,xalanc)" {
		t.Fatalf("label %q", r.Workload)
	}
}

func TestFigure6AndFigure9Wrappers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	o := tinyExperiment()
	o.InstrPerCore = 30_000
	f6, err := Figure6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Columns) != 6 { // workload + rand/swap/+lock/+assoc/+bypass
		t.Fatalf("Figure6 columns: %v", f6.Columns)
	}
	if f6.CSV() == "" {
		t.Fatal("empty CSV")
	}
	f9, err := Figure9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Rows) != 3 {
		t.Fatalf("Figure9 rows: %d", len(f9.Rows))
	}
}
